package viyojit_test

import (
	"fmt"

	"viyojit"
)

// Example shows the complete life of durable data under Viyojit: map,
// write, power failure, recovery — with a battery an eighth the size of
// the NV-DRAM it protects.
func Example() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 16 << 20})
	if err != nil {
		panic(err)
	}
	m, err := sys.Map("data", 1<<20)
	if err != nil {
		panic(err)
	}
	if err := m.WriteAt([]byte("survives"), 0); err != nil {
		panic(err)
	}
	sys.Pump()

	report := sys.SimulatePowerFailure()
	fmt.Println("survived power failure:", report.Survived)

	recovered, _, err := sys.Recover()
	if err != nil {
		panic(err)
	}
	m2, err := recovered.Map("data", 1<<20)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 8)
	if err := m2.ReadAt(buf, 0); err != nil {
		panic(err)
	}
	fmt.Println("recovered:", string(buf))
	// Output:
	// survived power failure: true
	// recovered: survives
}

// ExampleSystem_Battery shows §8's runtime retuning: battery capacity
// changes immediately re-derive the dirty budget.
func ExampleSystem_Battery() {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 16 << 20})
	if err != nil {
		panic(err)
	}
	before := sys.DirtyBudget()
	if err := sys.Battery().Age(0.5); err != nil {
		panic(err)
	}
	fmt.Println("budget shrank:", sys.DirtyBudget() < before)
	// Output:
	// budget shrank: true
}
