// Command replay drives a volume trace against the three NV-DRAM
// systems — Viyojit, the full-battery baseline, and the §7 Mondrian
// byte-granularity tracker — and prints what each cost. Use it to
// validate a cmd/provision recommendation on the workload it came from:
//
//	tracegen -out vol.trace -skew hot
//	provision -file vol.trace        # recommends a budget
//	replay -file vol.trace -budget-frac 0.15
//
// Without -file, a representative synthetic volume is generated.
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit/internal/replay"
	"viyojit/internal/ssd"
	"viyojit/internal/trace"
)

func main() {
	file := flag.String("file", "", "trace file (cmd/tracegen format); empty generates a synthetic volume")
	budgetFrac := flag.Float64("budget-frac", 0.02, "dirty budget as a fraction of the volume")
	seed := flag.Uint64("seed", 1, "generation seed when no -file is given")
	flag.Parse()

	var v *trace.Volume
	var err error
	if *file != "" {
		f, ferr := os.Open(*file)
		if ferr != nil {
			fatal(ferr)
		}
		v, err = trace.ReadVolume(f)
		f.Close()
	} else {
		v, err = trace.Generate(trace.VolumeSpec{
			Name:                   "synthetic",
			SizeBytes:              64 << 20,
			WorstHourWriteFraction: 0.12,
			Skew:                   trace.SkewHot,
			HotFraction:            0.1,
			TouchedFraction:        0.6,
		}, 2*trace.Hour, *seed)
	}
	if err != nil {
		fatal(err)
	}

	budget := int(float64(v.TotalPages()) * *budgetFrac)
	fmt.Printf("replaying %s: %d events, %d MiB, budget %d pages (%.1f%%)\n\n",
		v.Spec.Name, len(v.Events), v.Spec.SizeBytes>>20, budget, *budgetFrac*100)

	reports, err := replay.Compare(v, budget, ssd.Config{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %8s %10s %12s %14s %12s\n",
		"System", "Faults", "Forced", "Proactive", "Peak dirty", "SSD written")
	for _, r := range reports {
		fmt.Printf("%-10s %8d %10d %12d %11d KB %9d KB\n",
			r.System, r.Faults, r.ForcedCleans, r.Proactive,
			r.PeakDirtyByte>>10, r.SSDBytes>>10)
	}
	fmt.Println("\nnv-dram is the full-battery reference: zero overhead, but its battery")
	fmt.Println("must cover the entire peak dirty footprint; viyojit bounds that footprint")
	fmt.Println("to the budget; mondrian bounds it to the bytes actually written.")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
