// Command viyojit-bench regenerates the paper's YCSB evaluation: the
// throughput, latency, and SSD-write-rate sweeps over dirty budgets
// (Figures 7, 8 and 9), the heap-scaling comparison (Figure 10), and the
// ablations (§6.3 TLB flushing, victim policies, epoch length, SSD queue
// depth, §8 battery retuning).
//
// Usage:
//
//	viyojit-bench [-ops N] [-seed S] [-quick] [-figures 7,8,9,10,ablations,overload]
//	viyojit-bench -figures overload [-clients N] [-offered-load M1,M2,...] [-deadline D]
//
// The "overload" figure drives the concurrent serving front-end
// (internal/serve) open-loop at multiples of its measured saturation
// throughput and prints the goodput-vs-offered-load curve with the shed
// breakdown — the curve must plateau, not collapse.
//
// Runs are deterministic for a given seed. -quick reduces the sweep for a
// fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"viyojit/internal/experiments"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

func main() {
	ops := flag.Int("ops", 50_000, "operations per run")
	seed := flag.Uint64("seed", 1, "experiment seed")
	quick := flag.Bool("quick", false, "reduced sweep (fewer workloads, fractions, ops)")
	figures := flag.String("figures", "7,8,9,10,ablations", "comma-separated figures to regenerate")
	jsonOut := flag.String("json", "", "also write the sweep data as JSON to this file")
	clients := flag.Int("clients", 0, "overload: concurrent client goroutines (0 = default 8)")
	offered := flag.String("offered-load", "", "overload: comma-separated offered-load multipliers of saturation (default 0.25,0.5,1,1.5,2)")
	deadline := flag.Duration("deadline", 0, "overload: per-request virtual deadline (0 = default 2ms)")
	metricsOut := flag.String("metrics", "", `dump the accumulated metrics/trace export to this file after the runs ("-" = stdout; a .json suffix selects JSON, otherwise text)`)
	flag.Parse()

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figures, ",") {
		want[strings.TrimSpace(f)] = true
	}

	opts := experiments.SweepOptions{OperationCount: *ops, Seed: *seed}
	if *quick {
		opts = experiments.QuickSweepOptions()
		opts.Seed = *seed
	}
	opts.Obs = reg

	out := os.Stdout
	if want["7"] || want["8"] || want["9"] {
		fmt.Fprintln(out, "Running the YCSB dirty-budget sweep (one line per workload × budget)...")
		sweep, err := experiments.RunSweep(opts)
		if err != nil {
			fatal(err)
		}
		if want["7"] {
			experiments.FprintFig7(out, sweep)
			fmt.Fprintln(out)
		}
		if want["8"] {
			experiments.FprintFig8(out, sweep)
			fmt.Fprintln(out)
		}
		if want["9"] {
			experiments.FprintFig9(out, sweep)
			fmt.Fprintln(out)
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			if err := experiments.WriteSweepJSON(f, sweep); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(out, "sweep data written to %s\n\n", *jsonOut)
		}
	}

	if want["10"] {
		fmt.Fprintln(out, "Running the heap-scaling comparison...")
		rows, err := experiments.RunFig10(opts)
		if err != nil {
			fatal(err)
		}
		experiments.FprintFig10(out, rows)
		fmt.Fprintln(out)
	}

	if want["ablations"] {
		fmt.Fprintln(out, "Running ablations...")
		tlbOpts := opts
		if tlbOpts.Fractions == nil {
			tlbOpts.Fractions = experiments.SummaryFractions
		}
		tlb, err := experiments.RunTLBAblation(tlbOpts)
		if err != nil {
			fatal(err)
		}
		experiments.FprintTLBAblation(out, tlb)
		fmt.Fprintln(out)

		pol, err := experiments.RunPolicyAblation(opts, 0.11)
		if err != nil {
			fatal(err)
		}
		experiments.FprintPolicyAblation(out, pol)
		fmt.Fprintln(out)

		epochs, err := experiments.RunEpochAblation(opts, 0.11,
			[]sim.Duration{250 * sim.Microsecond, sim.Millisecond, 4 * sim.Millisecond, 16 * sim.Millisecond})
		if err != nil {
			fatal(err)
		}
		experiments.FprintParamRows(out, "Ablation: epoch length (YCSB-A, 11% budget)", epochs)
		fmt.Fprintln(out)

		weights, err := experiments.RunEWMAAblation(opts, 0.11, []float64{0.1, 0.5, 0.75, 1.0})
		if err != nil {
			fatal(err)
		}
		experiments.FprintParamRows(out, "Ablation: dirty-page-pressure EWMA weight (YCSB-A, 11% budget)", weights)
		fmt.Fprintln(out)

		depths, err := experiments.RunQueueDepthAblation(opts, 0.11, []int{1, 4, 16, 64})
		if err != nil {
			fatal(err)
		}
		experiments.FprintParamRows(out, "Ablation: SSD outstanding-IO bound (YCSB-A, 11% budget)", depths)
		fmt.Fprintln(out)

		hw, err := experiments.RunHWAssistAblation(tlbOpts)
		if err != nil {
			fatal(err)
		}
		experiments.FprintHWAssistAblation(out, hw)
		fmt.Fprintln(out)

		var gran []experiments.GranularityResult
		for _, ws := range []int{64, 256, 1024, 4096} {
			g, err := experiments.RunGranularityComparison(*seed, ws, 2000)
			if err != nil {
				fatal(err)
			}
			gran = append(gran, g)
		}
		experiments.FprintGranularity(out, gran)
		fmt.Fprintln(out)

		red, err := experiments.RunSSDReductionAblation(opts, 0.11)
		if err != nil {
			fatal(err)
		}
		experiments.FprintSSDReduction(out, red)
		fmt.Fprintln(out)

		ten, err := experiments.RunTenancyExperiment(*seed, 400)
		if err != nil {
			fatal(err)
		}
		experiments.FprintTenancy(out, ten)
		fmt.Fprintln(out)

		retune, err := experiments.RunBatteryRetune(*seed)
		if err != nil {
			fatal(err)
		}
		experiments.FprintBatteryRetune(out, retune)
	}

	if want["overload"] {
		fmt.Fprintln(out, "Running the overload & shedding curve (closed-loop saturation, then the open-loop sweep)...")
		ocfg := experiments.OverloadConfig{
			Seed:     *seed,
			Clients:  *clients,
			Deadline: sim.Duration(*deadline),
			Obs:      reg,
		}
		if *quick {
			ocfg.OperationCount = 5_000
			ocfg.Multipliers = []float64{0.5, 1, 2}
		}
		if *offered != "" {
			var ms []float64
			for _, s := range strings.Split(*offered, ",") {
				var m float64
				if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &m); err != nil || m <= 0 {
					fatal(fmt.Errorf("bad -offered-load entry %q", s))
				}
				ms = append(ms, m)
			}
			ocfg.Multipliers = ms
		}
		curve, err := experiments.RunOverloadCurve(ocfg)
		if err != nil {
			fatal(err)
		}
		experiments.FprintOverload(out, curve)
	}

	if reg != nil {
		if err := dumpMetrics(reg, *metricsOut); err != nil {
			fatal(err)
		}
	}
}

// dumpMetrics writes the registry's export to path: stdout for "-",
// JSON for a .json suffix, the text exposition otherwise.
func dumpMetrics(reg *obs.Registry, path string) error {
	exp := reg.Export()
	if path == "-" {
		return exp.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = exp.WriteJSON(f)
	} else {
		err = exp.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("metrics export written to %s\n", path)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "viyojit-bench:", err)
	os.Exit(1)
}
