// Command blackbox is the flight-recorder dump tool: it walks a raw
// black-box ring image into the post-failure forensic report — the
// crash-instant dirty/budget/ladder snapshot and the event timeline.
//
// Two modes:
//
//	-in FILE: walk a saved ring image (the bytes an operator pulled off
//	  the battery-backed region, e.g. via System.BlackBoxImage) and
//	  print the forensic report. The walk is torn-tail tolerant: a
//	  truncated or corrupted image yields the longest valid record
//	  prefix, never a panic or an invented record.
//
//	default (no -in): demo — run a write workload with the recorder
//	  armed, pull the plug mid-flight, recover, and print the forensic
//	  report the reboot adopted from the crash ring. -out FILE saves
//	  the crash-instant ring image so the -in path has something real
//	  to chew on.
//
// Usage:
//
//	blackbox [-in FILE] [-out FILE] [-n N] [-size BYTES] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit"
	"viyojit/internal/blackbox"
	"viyojit/internal/sim"
)

func main() {
	in := flag.String("in", "", "walk this raw ring image instead of running the demo")
	out := flag.String("out", "", "demo mode: save the crash-instant ring image to this file")
	n := flag.Int("n", 30, "timeline length to print (0 = all)")
	size := flag.Int64("size", 8<<20, "demo mode: NV-DRAM size in bytes")
	seed := flag.Uint64("seed", 1, "demo mode: workload seed")
	flag.Parse()

	if *in != "" {
		dumpImage(*in, *n)
		return
	}
	demo(*size, *seed, *out, *n)
}

// dumpImage walks a saved ring image and prints its forensic report.
func dumpImage(path string, n int) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	w := blackbox.Walk(data)
	fmt.Printf("%s: %d bytes, %d slots\n", path, len(data), uint64(len(data))/blackbox.SlotBytes)
	rep := blackbox.BuildReport(w)
	if err := rep.WriteText(os.Stdout, n); err != nil {
		fatal(err)
	}
	if len(w.Records) == 0 {
		fmt.Println("no intact records: empty ring, or an image too damaged to adopt anything")
	}
}

// demo runs a workload into a power failure and prints the forensic
// report the recovered system adopts from the crash ring.
func demo(size int64, seed uint64, out string, n int) {
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: size, BlackBox: true})
	if err != nil {
		fatal(err)
	}
	m, err := sys.Map("demo-heap", size/2)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorder armed: %d-record ring, budget %d pages\n",
		sys.BlackBox().Slots(), sys.DirtyBudget())

	rng := sim.NewRNG(seed)
	pages := size / 2 / 4096
	for i := 0; i < int(2*pages); i++ {
		p := rng.Int63n(pages)
		if err := m.WriteAt([]byte{byte(p)}, p*4096); err != nil {
			fatal(err)
		}
		sys.Pump()
	}
	sys.BlackBox().Mark(1, int64(sys.DirtyCount()), 0)

	res := sys.SimulatePowerFailure()
	fmt.Printf("power failed at t=%v: flushed %d pages, survived=%v\n",
		sim.Duration(sys.Now()), res.PagesFlushed, res.Survived)

	if out != "" {
		img, err := sys.BlackBoxImage()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(out, img, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("crash ring image saved to %s (%d bytes) — replay with -in %s\n", out, len(img), out)
	}

	recovered, _, err := sys.Recover()
	if err != nil {
		fatal(err)
	}
	rep := recovered.Forensics()
	if rep == nil {
		fatal(fmt.Errorf("recovery adopted no forensic report"))
	}
	fmt.Println("\nforensic report adopted by the reboot:")
	if err := rep.WriteText(os.Stdout, n); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "blackbox:", err)
	os.Exit(1)
}
