// Command battery-calc regenerates the paper's motivation numbers:
// Figure 1's DRAM-vs-lithium growth gap, the §2.2 battery-sizing worked
// example (4 TB ⇒ ~300 KJ ⇒ ~10× a phone battery, ≥25× after
// deratings), and the §8 availability comparison of shutdown flush
// times.
package main

import (
	"fmt"
	"os"

	"viyojit/internal/experiments"
)

func main() {
	out := os.Stdout
	if err := experiments.FprintFig1(out); err != nil {
		fmt.Fprintln(os.Stderr, "battery-calc:", err)
		os.Exit(1)
	}
	fmt.Fprintln(out)
	experiments.FprintBatterySizing(out)
	fmt.Fprintln(out)
	if err := experiments.FprintAvailability(out); err != nil {
		fmt.Fprintln(os.Stderr, "battery-calc:", err)
		os.Exit(1)
	}
	fmt.Fprintln(out)
	if err := experiments.FprintWarmup(out, 1); err != nil {
		fmt.Fprintln(os.Stderr, "battery-calc:", err)
		os.Exit(1)
	}
}
