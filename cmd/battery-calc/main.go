// Command battery-calc regenerates the paper's motivation numbers:
// Figure 1's DRAM-vs-lithium growth gap, the §2.2 battery-sizing worked
// example (4 TB ⇒ ~300 KJ ⇒ ~10× a phone battery, ≥25× after
// deratings), and the §8 availability comparison of shutdown flush
// times.
//
// With -age and/or -wear it instead prints the online re-provisioning
// trajectory: the dirty budget at each point as the battery ages toward
// -age fraction lost and the SSD wears toward -wear full-capacity write
// passes. The computation is health.BudgetPages over
// ssd.DegradedBandwidth — byte-identical to what the runtime health
// monitor derives each tick, so operators can predict the budget a
// deployment will land on before its battery gets there.
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit/internal/battery"
	"viyojit/internal/experiments"
	"viyojit/internal/health"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

func trajectory(out *os.File, age, wear float64, dram, bw int64, derating float64) {
	pm := power.Default()
	const pageSize = 4096
	const overhead = 500 * sim.Microsecond // viyojit.New's fixedFlushOverhead
	// Provision for the facade's default: an effective budget of 12.5 %
	// of the region at the conservative (derated) bandwidth.
	conservative := int64(float64(bw) * derating)
	pages := int(dram / pageSize / 8)
	joules := battery.JoulesForPages(pm, pages, conservative, dram, pageSize) +
		pm.FlushWatts(dram)*overhead.Seconds()

	fmt.Fprintf(out, "Online re-provisioning trajectory (monitor's own derivation)\n")
	fmt.Fprintf(out, "DRAM %d GiB, SSD %d MB/s nominal, derating %.2f, battery %.1f J effective at install\n\n",
		dram>>30, bw>>20, derating, joules)
	fmt.Fprintf(out, "%6s %8s %8s %14s %12s %10s\n",
		"step", "age", "wear", "eff joules", "bw MB/s", "budget")
	const steps = 10
	for i := 0; i <= steps; i++ {
		f := float64(i) / steps
		aged := joules * (1 - age*f)
		cycles := wear * f
		eff := ssd.DegradedBandwidth(bw, cycles, 0.04, 0.25)
		b := health.BudgetPages(pm, aged, int64(float64(eff)*derating), dram, pageSize, overhead)
		fmt.Fprintf(out, "%6d %7.0f%% %8.2f %14.1f %12.1f %10d\n",
			i, age*f*100, cycles, aged, float64(eff)/(1<<20), b)
	}
	fmt.Fprintf(out, "\nprovisioned for %d pages (12.5%% of the region) at install; row 0 is the monitor's floor of the same quantity\n", pages)
}

func main() {
	age := flag.Float64("age", 0, "battery capacity fraction lost by the end of the trajectory (0 = skip)")
	wear := flag.Float64("wear", 0, "SSD full-capacity write passes accrued by the end of the trajectory (0 = skip)")
	dram := flag.Int64("dram", 64<<30, "NV-DRAM bytes for the trajectory")
	bw := flag.Int64("bw", 2<<30, "nominal SSD write bandwidth for the trajectory, bytes/sec")
	derating := flag.Float64("derating", 0.8, "conservative bandwidth fraction (matches viyojit.Config default)")
	flag.Parse()

	out := os.Stdout
	if *age > 0 || *wear > 0 {
		if *age < 0 || *age >= 1 {
			fmt.Fprintln(os.Stderr, "battery-calc: -age outside [0,1)")
			os.Exit(1)
		}
		trajectory(out, *age, *wear, *dram, *bw, *derating)
		return
	}
	if err := experiments.FprintFig1(out); err != nil {
		fmt.Fprintln(os.Stderr, "battery-calc:", err)
		os.Exit(1)
	}
	fmt.Fprintln(out)
	experiments.FprintBatterySizing(out)
	fmt.Fprintln(out)
	if err := experiments.FprintAvailability(out); err != nil {
		fmt.Fprintln(os.Stderr, "battery-calc:", err)
		os.Exit(1)
	}
	fmt.Fprintln(out)
	if err := experiments.FprintWarmup(out, 1); err != nil {
		fmt.Fprintln(os.Stderr, "battery-calc:", err)
		os.Exit(1)
	}
}
