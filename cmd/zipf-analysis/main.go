// Command zipf-analysis regenerates Figure 5: under a Zipf write
// distribution, the fraction of pages needed to cover a given percentile
// of writes shrinks as the total page count grows — the scaling argument
// that makes battery/DRAM decoupling more attractive the bigger the
// NV-DRAM.
package main

import (
	"os"

	"viyojit/internal/experiments"
)

func main() {
	experiments.FprintFig5(os.Stdout)
}
