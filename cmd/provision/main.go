// Command provision is the operator-facing sizing tool the paper implies
// (§5: the battery is "potentially determined using an analysis of the
// expected workloads similar to the one in Section 3"). It runs the §3
// analyses over the synthetic data-center applications and prints, per
// volume and per machine, the recommended dirty budget, the battery to
// provision, the §3 category, and the savings versus a full-DRAM battery.
//
// Usage:
//
//	provision [-seed S] [-percentile P] [-headroom H]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit/internal/advisor"
	"viyojit/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "trace generation seed")
	pct := flag.Float64("percentile", 0.99, "write percentile the steady-state dirty set must cover")
	headroom := flag.Float64("headroom", 1.25, "safety margin on the recommended budget")
	file := flag.String("file", "", "analyse a single trace file (cmd/tracegen format) instead of the synthetic suite")
	flag.Parse()

	opts := advisor.Options{Percentile: *pct, Headroom: *headroom}

	if *file != "" {
		analyzeFile(*file, opts)
		return
	}

	apps, err := trace.Applications(*seed)
	if err != nil {
		fatal(err)
	}

	for _, app := range apps {
		recs, agg, err := advisor.AnalyzeApplication(app, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s ==\n", app.Name)
		fmt.Printf("%-8s %10s %10s %12s %14s %-14s %s\n",
			"Volume", "Budget", "Fraction", "Battery (J)", "Savings", "Category", "")
		for i, r := range recs {
			note := ""
			if !r.WorthIt {
				note = "(decoupling buys little here)"
			}
			fmt.Printf("%-8s %7d pg %9.1f%% %12.2f %13.0f%% %-14s %s\n",
				r.Volume, r.BudgetPages, r.BudgetFraction*100,
				r.Battery.CapacityJoules,
				advisor.Savings(r, app.Volumes[i], opts)*100,
				r.Category, note)
		}
		fmt.Printf("%-8s %7d pg %9.1f%% %12.2f\n\n",
			"MACHINE", agg.BudgetPages, agg.BudgetFraction*100, agg.Battery.CapacityJoules)
	}
	fmt.Println("Battery figures are nameplate joules (after depth-of-discharge).")
	fmt.Println("Categories follow §3: decoupling pays off most for skewed-light volumes.")
}

// analyzeFile runs the advisor on one operator-supplied trace file.
func analyzeFile(path string, opts advisor.Options) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	v, err := trace.ReadVolume(f)
	if err != nil {
		fatal(err)
	}
	r, err := advisor.Analyze(v, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("volume %s: %d events over %v, %d pages\n",
		v.Spec.Name, len(v.Events), v.Duration, v.TotalPages())
	fmt.Printf("category: %s", r.Category)
	if !r.WorthIt {
		fmt.Printf(" (decoupling buys little here)")
	}
	fmt.Println()
	fmt.Printf("recommended dirty budget: %d pages (%.1f%% of the volume)\n", r.BudgetPages, r.BudgetFraction*100)
	fmt.Printf("  drivers: worst-hour burst %d pages, %0.f%%-ile hot set %d pages, headroom %.2fx\n",
		r.WorstHourPages, opts.Percentile*100, r.HotSetPages, r.Headroom)
	fmt.Printf("battery to provision: %.2f J nameplate (DoD %.0f%%)\n",
		r.Battery.CapacityJoules, r.Battery.DepthOfDischarge*100)
	fmt.Printf("savings vs full-DRAM battery: %.0f%%\n", advisor.Savings(r, v, opts)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "provision:", err)
	os.Exit(1)
}
