// Command tracegen generates a synthetic data-center volume trace and
// writes it in the repository's binary trace format, for use with
// cmd/provision -file and custom analyses. Operators with real traces
// convert them to the same format (see internal/trace/io.go for the
// layout) and get the full §3 analysis pipeline on their own data.
//
// Usage:
//
//	tracegen -out vol.trace [-size BYTES] [-hours H] [-write-frac F]
//	         [-skew zipf|unique|hot] [-theta T] [-hot-frac F] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit/internal/sim"
	"viyojit/internal/trace"
)

func main() {
	out := flag.String("out", "", "output file (required)")
	size := flag.Int64("size", 64<<20, "volume size in bytes")
	hours := flag.Float64("hours", 4, "trace duration in hours")
	writeFrac := flag.Float64("write-frac", 0.12, "worst-hour written fraction of the volume")
	skew := flag.String("skew", "zipf", "write skew: zipf, unique, or hot")
	theta := flag.Float64("theta", 0.99, "zipf exponent (skew=zipf)")
	hotFrac := flag.Float64("hot-frac", 0.1, "hot-set fraction (skew=hot)")
	touched := flag.Float64("touched", 0.6, "fraction of pages touched over the trace")
	seed := flag.Uint64("seed", 1, "generation seed")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("-out is required"))
	}
	var kind trace.SkewKind
	switch *skew {
	case "zipf":
		kind = trace.SkewZipf
	case "unique":
		kind = trace.SkewUnique
	case "hot":
		kind = trace.SkewHot
	default:
		fatal(fmt.Errorf("unknown skew %q", *skew))
	}
	spec := trace.VolumeSpec{
		Name:                   *out,
		SizeBytes:              *size,
		WorstHourWriteFraction: *writeFrac,
		Skew:                   kind,
		Theta:                  *theta,
		HotFraction:            *hotFrac,
		TouchedFraction:        *touched,
	}
	v, err := trace.Generate(spec, sim.Duration(*hours*float64(trace.Hour)), *seed)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	n, err := v.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d events, %d bytes\n", *out, len(v.Events), n)
	fmt.Printf("worst-hour written fraction: %.1f%%\n", v.WorstIntervalWrittenFraction(trace.Hour)*100)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
