// Command trace-analysis regenerates the paper's §3 workload analysis
// (Figures 2, 3 and 4) from the synthetic data-center volume traces: the
// worst-interval written fraction per volume and the page counts needed
// to cover each percentile of writes, relative to touched and to total
// pages.
//
// Usage:
//
//	trace-analysis [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit/internal/experiments"
	"viyojit/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "trace generation seed")
	flag.Parse()

	apps, err := trace.Applications(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trace-analysis:", err)
		os.Exit(1)
	}
	out := os.Stdout
	experiments.FprintFig2(out, apps)
	fmt.Fprintln(out)
	experiments.FprintFig3(out, apps)
	fmt.Fprintln(out)
	experiments.FprintFig4(out, apps)
}
