// Command powerfail is a narrated durability demonstration: it builds a
// Viyojit system with a battery covering ~12.5 % of the NV-DRAM, dirties
// far more data than the battery could flush naively, pulls the plug,
// verifies byte-for-byte durability, and reboots warm.
//
// The fault flags turn the demo adversarial: SSD write faults (transient
// errors, torn page programs, latency spikes) during the workload,
// battery capacity sag mid-run, and a power failure injected at an exact
// event-queue step instead of at the end.
//
// The silent-corruption flags (-lost-prob, -misdirect-prob, -rot-prob)
// inject faults the device acks as successes; the background scrubber
// (pace it with -scrub-share, disable it with -no-scrub) and a final
// on-demand scrub are then what stand between those faults and the
// durability check.
//
// The -serve-sweep mode runs the live-traffic exactly-once crash sweep
// instead: concurrent retrying clients drive idempotent mutations
// through a real serving front-end with a battery-backed intent journal,
// power fails at swept event steps, and every recovery is checked for
// zero lost acks and zero double-applies.
//
// The -nested-sweep mode goes one failure deeper: every outer crash
// point's recovery is itself re-crashed up to -recrash-depth times at
// seeded steps — during region restore, mid-WAL-replay, mid-intent-redo,
// mid-emergency-drain — with the recovery running on a dirty budget
// scaled by -recovery-budget-scale (the sagged-battery regime). The
// persistent recovery cursor must resume, never regress, and the same
// exactly-once oracle must hold once recovery finally completes.
//
// The -forensics flag arms the black-box flight recorder: a small
// checksummed ring of event records in battery-backed pages, charged
// against the same dirty budget as the heap. After the reboot the
// recovered system prints the forensic report walked out of the ring —
// the crash-instant dirty/budget/ladder snapshot and the event
// timeline — i.e. the machine explains its own failure.
//
// The -blackbox-sweep mode runs the flight-recorder crash sweep: the
// live-traffic exactly-once sweep with a recorder riding in every run,
// each recovered forensic report audited against the crash-instant
// oracle, plus the recorder-on vs recorder-off healthy overhead
// measurement.
//
// The -sensor-sweep mode attacks the energy telemetry instead of the
// storage: the dirty budget is derived from the fused two-gauge sensor
// while seeded injectors corrupt the gauges (the voltage gauge lying up
// to 50% high), and every swept power failure checks that the flush
// completed within TRUE battery energy, that dirty stayed within the
// fused-derived budget at every sample, and that each fault class was
// detected within its MTTD bound. -gauge-lie / -gauge-stuck /
// -gauge-drift override the voltage gauge's episode probabilities
// (setting any one replaces the whole default menu).
//
// Usage:
//
//	powerfail [-size BYTES] [-seed S] [-forensics]
//	          [-write-error-prob P] [-torn-prob P] [-spike-prob P] [-max-faults N]
//	          [-lost-prob P] [-misdirect-prob P] [-rot-prob P]
//	          [-scrub-share F] [-no-scrub]
//	          [-sag FRACTION] [-crash-step N]
//	powerfail -blackbox-sweep [-serve-points N] [-serve-clients N] [-seed S]
//	powerfail -serve-sweep [-serve-points N] [-serve-clients N] [-seed S]
//	powerfail -nested-sweep [-serve-points N] [-serve-clients N] [-seed S]
//	          [-recrash-depth N] [-recovery-budget-scale F]
//	powerfail -sensor-sweep [-serve-points N] [-serve-clients N] [-seed S]
//	          [-gauge-lie P] [-gauge-stuck P] [-gauge-drift P] [-gauge-lie-max F]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"viyojit"
	"viyojit/internal/faultinject"
	"viyojit/internal/faultinject/crashsweep"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

func main() {
	size := flag.Int64("size", 64<<20, "NV-DRAM size in bytes")
	seed := flag.Uint64("seed", 1, "workload seed")
	writeErrProb := flag.Float64("write-error-prob", 0, "probability an SSD page write fails transiently")
	tornProb := flag.Float64("torn-prob", 0, "probability an SSD page write tears (half the page lands)")
	spikeProb := flag.Float64("spike-prob", 0, "probability an SSD write completion is delayed ~1 ms")
	maxFaults := flag.Uint64("max-faults", 0, "bound on injected transient+torn faults (0 = unbounded)")
	lostProb := flag.Float64("lost-prob", 0, "probability an SSD page write is silently lost (acked, never stored)")
	misdirectProb := flag.Float64("misdirect-prob", 0, "probability an SSD page write silently lands on the wrong page")
	rotProb := flag.Float64("rot-prob", 0, "probability a write completion flips a bit in an at-rest durable page")
	scrubShare := flag.Float64("scrub-share", 0, "background scrubber's read-bandwidth share (0 = default 5%)")
	noScrub := flag.Bool("no-scrub", false, "disable the background integrity scrubber")
	sag := flag.Float64("sag", 0, "battery derating applied mid-run, e.g. 0.7 (0 = no sag)")
	crashStep := flag.Uint64("crash-step", 0, "pull the plug at this event-queue step (0 = after the workload)")
	metricsOut := flag.String("metrics", "", `dump the system's metrics/trace export to this file after the durability check ("-" = stdout; a .json suffix selects JSON, otherwise text)`)
	serveSweep := flag.Bool("serve-sweep", false, "run the live-traffic exactly-once crash sweep instead of the durability demo")
	servePoints := flag.Int("serve-points", 200, "crash points for -serve-sweep / -nested-sweep")
	serveClients := flag.Int("serve-clients", 10, "concurrent retrying clients for -serve-sweep / -nested-sweep")
	nestedSweep := flag.Bool("nested-sweep", false, "run the cascading-failure sweep: re-crash each outer crash point's recovery")
	recrashDepth := flag.Int("recrash-depth", 3, "max cascaded re-crashes inside one recovery for -nested-sweep")
	recoveryScale := flag.Float64("recovery-budget-scale", 1.0, "recovery dirty-budget scale in (0,1] for -nested-sweep (sagged-battery regime)")
	sensorSweep := flag.Bool("sensor-sweep", false, "run the lying-fuel-gauge crash sweep: budget from fused telemetry under gauge faults")
	gaugeLie := flag.Float64("gauge-lie", 0, "voltage-gauge lie-high episode probability per sample for -sensor-sweep (0 with all gauge flags zero = default menu)")
	gaugeStuck := flag.Float64("gauge-stuck", 0, "voltage-gauge stuck episode probability per sample for -sensor-sweep")
	gaugeDrift := flag.Float64("gauge-drift", 0, "voltage-gauge upward-drift episode probability per sample for -sensor-sweep")
	gaugeLieMax := flag.Float64("gauge-lie-max", 0, "max fractional over-report of a lie-high episode for -sensor-sweep (0 = 0.5)")
	forensics := flag.Bool("forensics", false, "arm the black-box flight recorder and print the recovered forensic report after the reboot")
	bbSweep := flag.Bool("blackbox-sweep", false, "run the flight-recorder crash sweep: forensic reports audited against the crash-instant oracle")
	flag.Parse()

	if *bbSweep {
		runBlackBoxSweep(*seed, *servePoints, *serveClients)
		return
	}

	if *sensorSweep {
		runSensorSweep(*seed, *servePoints, *serveClients, *gaugeLie, *gaugeStuck, *gaugeDrift, *gaugeLieMax)
		return
	}
	if *nestedSweep {
		runNestedSweep(*seed, *servePoints, *serveClients, *recrashDepth, *recoveryScale)
		return
	}
	if *serveSweep {
		runServeSweep(*seed, *servePoints, *serveClients)
		return
	}

	sys, err := viyojit.New(viyojit.Config{
		NVDRAMSize:      *size,
		Scrub:           viyojit.ScrubConfig{BandwidthShare: *scrubShare},
		DisableScrubber: *noScrub,
		BlackBox:        *forensics,
	})
	if err != nil {
		fatal(err)
	}
	if *forensics {
		fmt.Printf("black-box flight recorder armed: %d-record ring in battery-backed pages, inside the dirty budget\n",
			sys.BlackBox().Slots())
	}
	fmt.Printf("NV-DRAM: %d MiB, dirty budget: %d pages (%.1f%% of the region)\n",
		*size>>20, sys.DirtyBudget(), float64(sys.DirtyBudget())*4096*100/float64(*size))

	silent := *lostProb > 0 || *misdirectProb > 0 || *rotProb > 0
	var inj *faultinject.Injector
	if *writeErrProb > 0 || *tornProb > 0 || *spikeProb > 0 || silent {
		inj = faultinject.New(faultinject.Config{
			Seed:            *seed ^ 0xFA17,
			TransientProb:   *writeErrProb,
			TornProb:        *tornProb,
			SpikeProb:       *spikeProb,
			MaxFaults:       *maxFaults,
			LostProb:        *lostProb,
			MisdirectedProb: *misdirectProb,
			RotProb:         *rotProb,
		})
		sys.SSD().SetFaultInjector(inj)
		fmt.Printf("SSD fault injection armed: transient %.2f, torn %.2f, spike %.2f\n",
			*writeErrProb, *tornProb, *spikeProb)
		if silent {
			fmt.Printf("silent corruption armed: lost %.3f, misdirected %.3f, rot %.3f\n",
				*lostProb, *misdirectProb, *rotProb)
		}
	}
	if *sag < 0 || *sag > 1 {
		fatal(fmt.Errorf("-sag %v outside (0,1]; it is a derating fraction", *sag))
	}
	if *sag > 0 {
		// Sag a third of the way into the expected run: the budget
		// retunes automatically through the battery observer.
		faultinject.ScheduleBatterySag(sys.Events(), sys.Battery(), []faultinject.SagStep{
			{At: sim.Time(300 * sim.Microsecond), Derating: *sag},
		})
		fmt.Printf("battery sag to %.0f%% scheduled at t=300µs\n", *sag*100)
	}
	var crasher *faultinject.Crasher
	if *crashStep > 0 {
		crasher = faultinject.NewCrasher(sys.Events())
		crasher.ArmAt(*crashStep)
		fmt.Printf("power failure armed at event step %d\n", *crashStep)
	}

	heapSize := *size / 2
	m, err := sys.Map("demo-heap", heapSize)
	if err != nil {
		fatal(err)
	}

	workload := func() {
		// Dirty every page of the heap — 4x the battery's budget — with
		// a skewed rewrite pattern on top.
		rng := sim.NewRNG(*seed)
		pages := int(heapSize / 4096)
		fmt.Printf("writing to all %d heap pages (%.0fx the dirty budget)...\n",
			pages, float64(pages)/float64(sys.DirtyBudget()))
		buf := make([]byte, 128)
		for p := 0; p < pages; p++ {
			for i := range buf {
				buf[i] = byte(rng.Uint64())
			}
			if err := m.WriteAt(buf, int64(p)*4096); err != nil {
				fatal(err)
			}
			sys.Pump()
		}
		for i := 0; i < 4*pages; i++ {
			p := rng.Intn(pages / 8) // hot eighth
			if err := m.WriteAt([]byte{byte(i)}, int64(p)*4096); err != nil {
				fatal(err)
			}
			sys.Pump()
		}
	}
	var crashed bool
	if crasher != nil {
		var cp faultinject.CrashPoint
		cp, crashed = crasher.Run(workload)
		if crashed {
			fmt.Printf("\n*** power failed at event step %d (t=%v) ***\n", cp.Step, sim.Duration(cp.At))
		} else {
			fmt.Printf("workload finished before step %d; pulling the plug at the end instead\n", *crashStep)
		}
		crasher.Disarm()
	} else {
		workload()
	}

	s := sys.Stats()
	fmt.Printf("dirty now: %d pages (budget %d); faults %d, proactive cleans %d, forced cleans %d\n",
		sys.DirtyCount(), sys.DirtyBudget(), s.Faults, s.ProactiveCleans, s.ForcedCleans)
	if h := sys.Health(); h != nil {
		hs := h.Stats()
		fmt.Printf("health monitor: %d ticks, %d retunes; %d budget shrinks, %d drains completed\n",
			hs.Ticks, hs.Retunes, s.BudgetShrinks, s.DrainsCompleted)
	}
	if inj != nil {
		ist := inj.Stats()
		fmt.Printf("injected faults: %d transient, %d torn, %d latency spikes over %d writes\n",
			ist.Transients, ist.Torn, ist.LatencySpikes, ist.WritesSeen)
		if silent {
			fmt.Printf("silent faults injected: %d lost, %d misdirected, %d rot\n",
				ist.Lost, ist.Misdirected, ist.Rot)
		}
		fmt.Printf("manager under fire: %d clean errors, %d backoff retries, ladder state %v (degraded %dx)\n",
			s.CleanErrors, s.CleanRetries, sys.HealthState(), s.DegradedEnters)
		// The battery backup path is engineered to complete: faults stop
		// at the wall.
		inj.Disable()
	}
	if silent {
		// Final on-demand scrub while the system is still alive: repairs
		// re-dirty through the budget-enforced path, and the power-fail
		// flush below writes them back durably. Whatever the background
		// scrubber already caught shows in the same counters.
		detected := sys.Scrub()
		rep := sys.IntegrityReport()
		fmt.Printf("integrity scrub: %d detections this pass (%d total, %d background bursts, MTTD %v); %d repaired, %d repair kicks, %d quarantined\n",
			detected, rep.Scrub.Detections, rep.Scrub.Bursts, rep.Scrub.MTTD(),
			rep.Scrub.Repairs, rep.Scrub.RepairKicks, len(rep.Quarantined))
		for _, q := range rep.Quarantined {
			fmt.Printf("  quarantined page %d at t=%v: %s\n", q.Page, sim.Duration(q.At), q.Reason)
		}
	}

	if !crashed {
		fmt.Println("\n*** pulling the plug ***")
	}
	report := sys.SimulatePowerFailure()
	fmt.Printf("flushed %d dirty pages in %v using %.2f J of %.2f J available — survived: %v\n",
		report.PagesFlushed, report.FlushTime, report.EnergyUsedJoules,
		report.EnergyAvailableJoules, report.Survived)
	if report.EnergyAtCompletionJoules != report.EnergyAvailableJoules {
		fmt.Printf("battery capacity changed during the flush: %.2f J effective at completion; the verdict charges the smaller figure\n",
			report.EnergyAtCompletionJoules)
	}
	if !report.Survived && inj != nil {
		fmt.Println("note: the default battery is provisioned for a healthy SSD; injected latency" +
			" spikes on in-flight IOs ate the fixed flush margin. Provision spike headroom" +
			" (see EXPERIMENTS.md, fault-injection model) to survive this schedule.")
	}
	if err := sys.VerifyDurability(); err != nil {
		fatal(fmt.Errorf("durability check failed: %w", err))
	}
	fmt.Println("durability verified: every NV-DRAM byte is recoverable from the SSD")

	if *metricsOut != "" {
		if err := dumpMetrics(sys, *metricsOut); err != nil {
			fatal(err)
		}
	}

	recovered, rr, err := sys.Recover()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nrebooted warm: %d pages restored in %v (%d verified)\n",
		rr.PagesRestored, rr.RestoreTime, rr.Integrity.PagesVerified)
	if !rr.Integrity.Clean() {
		fmt.Printf("restore-time integrity: %d repaired, %d quarantined %v\n",
			len(rr.Integrity.Repaired), len(rr.Integrity.Quarantined), rr.Integrity.Quarantined)
	}
	m2, err := recovered.Map("demo-heap", heapSize)
	if err != nil {
		fatal(err)
	}
	probe := make([]byte, 1)
	if err := m2.ReadAt(probe, 0); err != nil {
		fatal(err)
	}
	fmt.Println("recovered heap readable at DRAM latency — cache starts warm")

	if *forensics {
		rep := recovered.Forensics()
		if rep == nil {
			fatal(fmt.Errorf("forensics armed but no report recovered"))
		}
		fmt.Println("\n*** forensic report from the battery-backed flight recorder ***")
		if err := rep.WriteText(os.Stdout, 20); err != nil {
			fatal(err)
		}
	}
}

// runBlackBoxSweep narrates the flight-recorder crash sweep.
func runBlackBoxSweep(seed uint64, points, clients int) {
	fmt.Printf("flight-recorder crash sweep: %d crash points, %d retrying clients, seed %#x\n",
		points, clients, seed)
	res, err := crashsweep.RunBlackBox(crashsweep.ServeConfig{
		Seed:           seed,
		Clients:        clients,
		MaxCrashPoints: points,
	})
	if err != nil {
		fatal(err)
	}
	sw := res.Serve
	fmt.Printf("baseline %d events, stride %d; %d runs crashed mid-traffic, %d ran past their step\n",
		sw.BaselineEvents, sw.Stride, sw.CrashPoints, sw.Completed)
	fmt.Printf("forensic audits: %d exact oracle matches, %d relaxed to the sequence bound by shed appends\n",
		sw.ForensicExact, sw.ForensicDropped)
	fmt.Printf("recorder pages dirty at %d of %d crash instants; %d ring appends across crashed runs, %d shed\n",
		sw.RecorderDirtyCrashes, sw.CrashPoints, sw.RecorderAppends, sw.RecorderDrops)
	fmt.Printf("healthy overhead: %d acked in %v (recorder off) vs %d acked in %v (on) — goodput delta %.2f%%\n",
		res.HealthyOffAcked, sim.Duration(res.HealthyOffNs),
		res.HealthyOnAcked, sim.Duration(res.HealthyOnNs), res.GoodputDeltaFrac*100)
	if len(sw.Violations) > 0 {
		for _, v := range sw.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION step %d: %s\n", v.Step, v.Msg)
		}
		fatal(fmt.Errorf("%d forensic violations", len(sw.Violations)))
	}
	fmt.Println("every recovered report matched its crash-instant oracle within the audit bounds")
}

// runServeSweep narrates the live-traffic exactly-once crash sweep:
// power failures injected at swept event steps while concurrent clients
// drive idempotent mutations, each followed by recovery, retry-stream
// replay, and a per-key exactly-once oracle.
func runServeSweep(seed uint64, points, clients int) {
	fmt.Printf("live-traffic crash sweep: %d crash points, %d retrying clients, seed %#x\n",
		points, clients, seed)
	res, err := crashsweep.RunServe(crashsweep.ServeConfig{
		Seed:           seed,
		Clients:        clients,
		MaxCrashPoints: points,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline %d events, stride %d; %d runs crashed mid-traffic, %d ran past their step\n",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed)
	fmt.Printf("acked %d mutations; in-doubt at crash and replayed: %d (deduped %d, recovery-redone %d, fresh %d)\n",
		res.AckedMutations, res.InDoubtReplayed, res.ReplayDeduped, res.ReplayRedone, res.ReplayFresh)
	fmt.Printf("retries of acked ops absorbed by recovered journals: %d; torn journal tails dropped: %d\n",
		res.AckedRetryDedups, res.TornOpens)
	fmt.Printf("max dirty at crash: %d pages (journal pages dirty at %d of %d crash instants)\n",
		res.MaxDirtyAtCrash, res.JournalDirtyCrashes, res.CrashPoints)
	if res.MutationBytes > 0 {
		fmt.Printf("journal write amplification: %d journal bytes / %d mutation bytes = %.2fx\n",
			res.JournalBytes, res.MutationBytes, float64(res.JournalBytes)/float64(res.MutationBytes))
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION step %d: %s\n", v.Step, v.Msg)
		}
		fatal(fmt.Errorf("%d exactly-once violations", len(res.Violations)))
	}
	fmt.Println("exactly-once held at every crash point: zero lost acks, zero double-applies")
}

// runNestedSweep narrates the cascading-failure sweep: each outer crash
// point's recovery is re-crashed at seeded in-recovery steps, on a
// possibly shrunken budget, and must resume from the persistent cursor
// until it completes and passes the exactly-once oracle.
func runNestedSweep(seed uint64, points, clients, depth int, scale float64) {
	if scale <= 0 || scale > 1 {
		fatal(fmt.Errorf("-recovery-budget-scale %v outside (0,1]", scale))
	}
	fmt.Printf("cascading-failure sweep: %d outer crash points, re-crash depth %d, recovery budget scale %.2f, %d clients, seed %#x\n",
		points, depth, scale, clients, seed)
	reg := obs.NewRegistry()
	res, err := crashsweep.RunNested(crashsweep.NestedConfig{
		ServeConfig: crashsweep.ServeConfig{
			Seed:           seed,
			Clients:        clients,
			MaxCrashPoints: points,
		},
		RecrashDepth: depth,
		BudgetScale:  scale,
		Obs:          reg,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline %d events, stride %d; %d outer crashes, %d runs completed unarmed\n",
		res.BaselineEvents, res.Stride, res.OuterCrashes, res.Completed)
	fmt.Printf("recovery budget: %d pages; max dirty at outer crash %d, at in-recovery crash %d\n",
		res.RecoveryBudget, res.MaxDirtyAtCrash, res.MaxDirtyAtInnerCrash)
	for d, n := range res.InnerByDepth {
		fmt.Printf("  depth %d: %d recoveries re-crashed\n", d+1, n)
	}
	fmt.Printf("re-crashes by recovery phase:")
	for _, ph := range []string{"restore", "wal-replay", "intent-redo", "drain"} {
		fmt.Printf(" %s %d", ph, res.InnerByPhase[ph])
	}
	fmt.Println()
	fmt.Printf("cursor: %d resumed attempts (recovery_resumes_total %d), %d fallbacks; redo workload %d intents, %d pages dirtied (recovery_redo_pages %d), %d budget stalls (recovery_budget_stalls %d)\n",
		res.Resumes, reg.Counter("recovery_resumes_total").Value(), res.Fallbacks,
		res.RedoneIntents, res.RedoPages, reg.Counter("recovery_redo_pages").Value(),
		res.BudgetStalls, reg.Counter("recovery_budget_stalls").Value())
	fmt.Printf("retry streams: acked %d mutations, in-doubt replayed %d (deduped %d, fresh %d), acked retries absorbed %d\n",
		res.AckedMutations, res.InDoubtReplayed, res.ReplayDeduped, res.ReplayFresh, res.AckedRetryDedups)
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION step %d: %s\n", v.Step, v.Msg)
		}
		fatal(fmt.Errorf("%d violations across cascaded recoveries", len(res.Violations)))
	}
	fmt.Println("exactly-once, cursor monotonicity, and dirty<=budget held at every crash depth")
}

// runSensorSweep narrates the lying-fuel-gauge crash sweep: the dirty
// budget rides the fused two-gauge estimate while seeded injectors
// corrupt the gauges, power fails at swept steps, and every run is
// audited against the battery model as ground truth — the flush must
// fit TRUE energy no matter what the gauges claimed.
func runSensorSweep(seed uint64, points, clients int, lie, stuck, drift, lieMax float64) {
	for _, p := range []float64{lie, stuck, drift} {
		if p < 0 || p > 1 {
			fatal(fmt.Errorf("gauge episode probability %v outside [0,1]", p))
		}
	}
	if lieMax < 0 || lieMax > 1 {
		fatal(fmt.Errorf("-gauge-lie-max %v outside [0,1]", lieMax))
	}
	fmt.Printf("lying-gauge crash sweep: %d crash points, %d clients, seed %#x\n", points, clients, seed)
	if lie > 0 || stuck > 0 || drift > 0 {
		fmt.Printf("voltage-gauge menu override: lie %.3f, stuck %.3f, drift %.3f\n", lie, stuck, drift)
	}
	res, err := crashsweep.RunSensor(crashsweep.SensorSweepConfig{
		Serve: crashsweep.ServeConfig{
			Seed:           seed,
			Clients:        clients,
			MaxCrashPoints: points,
		},
		Lie:          lie,
		Stuck:        stuck,
		Drift:        drift,
		LieMagnitude: lieMax,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("baseline %d events, stride %d; %d runs crashed mid-traffic, %d ran past their step\n",
		res.BaselineEvents, res.Stride, res.CrashPoints, res.Completed)
	fmt.Printf("acked %d mutations (%d client retries); max dirty at crash %d pages\n",
		res.AckedMutations, res.ClientRetries, res.MaxDirtyAtCrash)
	fmt.Printf("fault episodes injected:")
	for _, class := range []string{"lie-high", "spike", "stuck", "drift", "dropout"} {
		fmt.Printf(" %s %d", class, res.Episodes[class])
	}
	fmt.Println()
	fmt.Printf("fused-layer rejections:")
	for _, reason := range []string{"bounds", "rate", "stale", "disagree"} {
		fmt.Printf(" %s %d", reason, res.Detections[reason])
	}
	fmt.Println()
	fmt.Printf("worst detection latency (MTTD):")
	for _, class := range []string{"lie-high", "spike", "drift", "dropout"} {
		if mttd, ok := res.MaxMTTD[class]; ok {
			fmt.Printf(" %s %v", class, mttd)
		}
	}
	fmt.Println(" (stuck exempt: truth is constant under serving)")
	fmt.Printf("deepest conservative cut: fused/true %.3f; %d budget retunes, %d solo samples, %d blind samples\n",
		res.MinFusedFraction, res.Retunes, res.SoloSamples, res.BlindSamples)
	if res.EmergencyEnters > 0 {
		fmt.Printf("NOTE: %d emergency escalations — the fused estimate dipped below the flush-overhead reserve\n",
			res.EmergencyEnters)
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "VIOLATION step %d: %s\n", v.Step, v.Msg)
		}
		fatal(fmt.Errorf("%d telemetry-safety violations", len(res.Violations)))
	}
	fmt.Println("safety held at every crash point: no over-report followed, every flush fit true energy, exactly-once intact")
}

// dumpMetrics writes the system's metrics/trace export to path: stdout
// for "-", JSON for a .json suffix, the text exposition otherwise.
func dumpMetrics(sys *viyojit.System, path string) error {
	if path == "-" {
		return sys.WriteMetricsText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = sys.WriteMetricsJSON(f)
	} else {
		err = sys.WriteMetricsText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		fmt.Printf("metrics export written to %s\n", path)
	}
	return err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerfail:", err)
	os.Exit(1)
}
