// Command powerfail is a narrated durability demonstration: it builds a
// Viyojit system with a battery covering ~12.5 % of the NV-DRAM, dirties
// far more data than the battery could flush naively, pulls the plug,
// verifies byte-for-byte durability, and reboots warm.
//
// Usage:
//
//	powerfail [-size BYTES] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit"
	"viyojit/internal/sim"
)

func main() {
	size := flag.Int64("size", 64<<20, "NV-DRAM size in bytes")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: *size})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("NV-DRAM: %d MiB, dirty budget: %d pages (%.1f%% of the region)\n",
		*size>>20, sys.DirtyBudget(), float64(sys.DirtyBudget())*4096*100/float64(*size))

	heapSize := *size / 2
	m, err := sys.Map("demo-heap", heapSize)
	if err != nil {
		fatal(err)
	}

	// Dirty every page of the heap — 4x the battery's budget — with a
	// skewed rewrite pattern on top.
	rng := sim.NewRNG(*seed)
	pages := int(heapSize / 4096)
	fmt.Printf("writing to all %d heap pages (%.0fx the dirty budget)...\n",
		pages, float64(pages)/float64(sys.DirtyBudget()))
	buf := make([]byte, 128)
	for p := 0; p < pages; p++ {
		for i := range buf {
			buf[i] = byte(rng.Uint64())
		}
		if err := m.WriteAt(buf, int64(p)*4096); err != nil {
			fatal(err)
		}
		sys.Pump()
	}
	for i := 0; i < 4*pages; i++ {
		p := rng.Intn(pages / 8) // hot eighth
		if err := m.WriteAt([]byte{byte(i)}, int64(p)*4096); err != nil {
			fatal(err)
		}
		sys.Pump()
	}
	s := sys.Stats()
	fmt.Printf("dirty now: %d pages (budget %d); faults %d, proactive cleans %d, forced cleans %d\n",
		sys.DirtyCount(), sys.DirtyBudget(), s.Faults, s.ProactiveCleans, s.ForcedCleans)

	fmt.Println("\n*** pulling the plug ***")
	report := sys.SimulatePowerFailure()
	fmt.Printf("flushed %d dirty pages in %v using %.2f J of %.2f J available — survived: %v\n",
		report.PagesFlushed, report.FlushTime, report.EnergyUsedJoules,
		report.EnergyAvailableJoules, report.Survived)
	if err := sys.VerifyDurability(); err != nil {
		fatal(fmt.Errorf("durability check failed: %w", err))
	}
	fmt.Println("durability verified: every NV-DRAM byte is recoverable from the SSD")

	recovered, rr, err := sys.Recover()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nrebooted warm: %d pages restored in %v\n", rr.PagesRestored, rr.RestoreTime)
	m2, err := recovered.Map("demo-heap", heapSize)
	if err != nil {
		fatal(err)
	}
	probe := make([]byte, 1)
	if err := m2.ReadAt(probe, 0); err != nil {
		fatal(err)
	}
	fmt.Println("recovered heap readable at DRAM latency — cache starts warm")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "powerfail:", err)
	os.Exit(1)
}
