// Command health-sim demonstrates online budget re-provisioning: the
// health monitor re-deriving the dirty budget while the battery ages and
// the SSD wears, entirely on the deterministic virtual clock.
//
// Two modes back the EXPERIMENTS.md "Online re-provisioning" section:
//
//	-mode trajectory (default): run a write workload under a scheduled
//	  battery-aging curve and print the monitor's snapshot table — the
//	  budget following the battery down, with the staged drain visible
//	  in the dirty/draining columns.
//
//	-mode drain: from a full dirty set, shrink the budget by several
//	  sizes and report the virtual time until each staged drain
//	  completes (dirty ≤ new budget) — the re-provisioning latency.
//
// Usage:
//
//	health-sim [-size BYTES] [-seed S] [-mode trajectory|drain]
//	           [-age-frac F] [-age-steps N]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit"
	"viyojit/internal/battery"
	"viyojit/internal/sim"
)

func main() {
	size := flag.Int64("size", 8<<20, "NV-DRAM size in bytes")
	seed := flag.Uint64("seed", 1, "workload seed")
	mode := flag.String("mode", "trajectory", "trajectory | drain")
	ageFrac := flag.Float64("age-frac", 0.08, "battery capacity fraction lost per aging step")
	ageSteps := flag.Int("age-steps", 8, "number of scheduled aging steps")
	flag.Parse()

	switch *mode {
	case "trajectory":
		trajectory(*size, *seed, *ageFrac, *ageSteps)
	case "drain":
		drainLatency(*size, *seed)
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
}

// trajectory runs a steady write workload for 100 ms of virtual time
// while the battery loses ageFrac of its capacity every 10 ms, and
// prints the monitor's view: effective joules, bandwidth estimate, and
// the budget the monitor pushed.
func trajectory(size int64, seed uint64, ageFrac float64, ageSteps int) {
	sys, err := viyojit.New(viyojit.Config{
		NVDRAMSize: size,
		// Wear modelling on: the workload's clean traffic accrues
		// full-capacity write passes against 4× the region.
		SSD: viyojit.SSDConfig{WearCapacityBytes: 4 * size},
	})
	if err != nil {
		fatal(err)
	}
	m, err := sys.Map("heap", size/2)
	if err != nil {
		fatal(err)
	}
	if err := battery.ScheduleAging(sys.Events(), sys.Battery(), battery.AgingSchedule{
		Start:           sim.Time(10 * sim.Millisecond),
		Interval:        10 * sim.Millisecond,
		FractionPerStep: ageFrac,
		Steps:           ageSteps,
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("NV-DRAM %d MiB, initial budget %d pages, battery %.2f J effective\n",
		size>>20, sys.DirtyBudget(), sys.Battery().EffectiveJoules())
	fmt.Printf("aging schedule: -%.0f%% capacity every 10 ms, %d steps\n\n",
		ageFrac*100, ageSteps)

	rng := sim.NewRNG(seed)
	pages := size / 2 / 4096
	for sys.Now() < sim.Time(100*sim.Millisecond) {
		p := rng.Int63n(pages)
		if err := m.WriteAt([]byte{byte(p)}, p*4096); err != nil {
			fatal(err)
		}
		sys.AdvanceTime(20 * sim.Microsecond)
	}

	fmt.Printf("%10s %10s %10s %12s %8s %8s %9s %6s\n",
		"t", "state", "joules", "bw-est MB/s", "budget", "dirty", "draining", "wear")
	for i, s := range sys.Health().Snapshots() {
		if i%5 != 0 { // one row per 10 ms of the 2 ms sampling
			continue
		}
		fmt.Printf("%10v %10v %10.3f %12.1f %8d %8d %9v %6.2f\n",
			sim.Duration(s.At), s.State, s.EffectiveJoules,
			float64(s.BandwidthEstimate)/(1<<20), s.Budget, s.Dirty, s.Draining, s.WearCycles)
	}
	st := sys.Stats()
	hs := sys.Health().Stats()
	fmt.Printf("\nmonitor: %d ticks, %d retunes; manager: %d budget shrinks, %d drains completed, state %v\n",
		hs.Ticks, hs.Retunes, st.BudgetShrinks, st.DrainsCompleted, sys.HealthState())
	fmt.Printf("final budget %d pages from %.2f J effective (%.0f%% of nameplate at install)\n",
		sys.DirtyBudget(), sys.Battery().EffectiveJoules(),
		100*sys.Battery().EffectiveJoules()/(sys.Battery().EffectiveJoules()/pow(1-ageFrac, ageSteps)))
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// drainLatency measures the staged-shrink re-provisioning latency: with
// the dirty set at the full budget, shrink to a fraction of it and time
// the drain (no concurrent writes — the floor of the latency; bursts
// only extend it via forced-clean backpressure).
func drainLatency(size int64, seed uint64) {
	// Monitor off: this experiment drives SetDirtyBudget by hand to
	// isolate the staged drain's latency; a live monitor would retune
	// the budget out from under the measurement.
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: size, DisableHealthMonitor: true})
	if err != nil {
		fatal(err)
	}
	m, err := sys.Map("heap", size/2)
	if err != nil {
		fatal(err)
	}
	mgr := sys.Manager()
	budget0 := sys.DirtyBudget()
	fmt.Printf("NV-DRAM %d MiB, budget %d pages\n\n", size>>20, budget0)
	fmt.Printf("%10s %12s %14s %16s\n", "new budget", "pages cut", "drain time", "µs per page")

	_ = seed
	for _, frac := range []float64{0.75, 0.5, 0.25, 0.125} {
		// Refill the dirty set to the full budget.
		if err := mgr.SetDirtyBudget(budget0); err != nil {
			fatal(err)
		}
		for p := int64(0); sys.DirtyCount() < budget0; p++ {
			if err := m.WriteAt([]byte{byte(p)}, (p%(size/2/4096))*4096); err != nil {
				fatal(err)
			}
			sys.Pump()
		}
		target := int(float64(budget0) * frac)
		if target < 1 {
			target = 1
		}
		cut := sys.DirtyCount() - target
		start := sys.Now()
		if err := mgr.SetDirtyBudget(target); err != nil {
			fatal(err)
		}
		for mgr.Draining() {
			sys.AdvanceTime(20 * sim.Microsecond)
		}
		dt := sys.Now().Sub(start)
		fmt.Printf("%10d %12d %14v %16.2f\n",
			target, cut, dt, float64(dt)/1000/float64(cut))
	}
	st := sys.Stats()
	fmt.Printf("\n%d staged shrinks, %d drains completed, %d retune cleans\n",
		st.BudgetShrinks, st.DrainsCompleted, st.RetuneCleans)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "health-sim:", err)
	os.Exit(1)
}
