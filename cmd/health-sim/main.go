// Command health-sim demonstrates online budget re-provisioning: the
// health monitor re-deriving the dirty budget while the battery ages and
// the SSD wears, entirely on the deterministic virtual clock.
//
// Two modes back the EXPERIMENTS.md "Online re-provisioning" section:
//
//	-mode trajectory (default): run a write workload under a scheduled
//	  battery-aging curve and print the monitor's snapshot table — the
//	  budget following the battery down, with the staged drain visible
//	  in the dirty/draining columns.
//
//	-mode drain: from a full dirty set, shrink the budget by several
//	  sizes and report the virtual time until each staged drain
//	  completes (dirty ≤ new budget) — the re-provisioning latency.
//
//	-mode sensor: corrupt the voltage gauge with seeded fault episodes
//	  (-gauge-lie / -gauge-stuck / -gauge-drift probabilities) while the
//	  battery ages, and print the fused estimate against the battery
//	  model's ground truth at every monitor sample — the fused column
//	  may dip below truth (conservative) but never above it.
//
// The -blackbox flag (trajectory mode) arms the black-box flight
// recorder alongside the monitor and prints the live forensic report
// after the snapshot table: the same aging trajectory the table shows,
// read back out of the battery-backed ring — what a post-mortem would
// see had the run ended in a power failure.
//
// Usage:
//
//	health-sim [-size BYTES] [-seed S] [-mode trajectory|drain|sensor]
//	           [-age-frac F] [-age-steps N] [-blackbox]
//	           [-gauge-lie P] [-gauge-stuck P] [-gauge-drift P]
package main

import (
	"flag"
	"fmt"
	"os"

	"viyojit"
	"viyojit/internal/battery"
	"viyojit/internal/faultinject"
	"viyojit/internal/sim"
)

func main() {
	size := flag.Int64("size", 8<<20, "NV-DRAM size in bytes")
	seed := flag.Uint64("seed", 1, "workload seed")
	mode := flag.String("mode", "trajectory", "trajectory | drain | sensor")
	ageFrac := flag.Float64("age-frac", 0.08, "battery capacity fraction lost per aging step")
	ageSteps := flag.Int("age-steps", 8, "number of scheduled aging steps")
	gaugeLie := flag.Float64("gauge-lie", 0, "voltage-gauge lie-high episode probability per sample for -mode sensor (all-zero gauge flags = default menu)")
	gaugeStuck := flag.Float64("gauge-stuck", 0, "voltage-gauge stuck episode probability per sample for -mode sensor")
	gaugeDrift := flag.Float64("gauge-drift", 0, "voltage-gauge upward-drift episode probability per sample for -mode sensor")
	blackBox := flag.Bool("blackbox", false, "arm the black-box flight recorder and print the live forensic report (trajectory mode)")
	flag.Parse()

	switch *mode {
	case "trajectory":
		trajectory(*size, *seed, *ageFrac, *ageSteps, *blackBox)
	case "drain":
		drainLatency(*size, *seed)
	case "sensor":
		sensorTrajectory(*size, *seed, *ageFrac, *ageSteps, *gaugeLie, *gaugeStuck, *gaugeDrift)
	default:
		fatal(fmt.Errorf("unknown -mode %q", *mode))
	}
}

// trajectory runs a steady write workload for 100 ms of virtual time
// while the battery loses ageFrac of its capacity every 10 ms, and
// prints the monitor's view: effective joules, bandwidth estimate, and
// the budget the monitor pushed.
func trajectory(size int64, seed uint64, ageFrac float64, ageSteps int, blackBox bool) {
	sys, err := viyojit.New(viyojit.Config{
		NVDRAMSize: size,
		// Wear modelling on: the workload's clean traffic accrues
		// full-capacity write passes against 4× the region.
		SSD:      viyojit.SSDConfig{WearCapacityBytes: 4 * size},
		BlackBox: blackBox,
	})
	if err != nil {
		fatal(err)
	}
	m, err := sys.Map("heap", size/2)
	if err != nil {
		fatal(err)
	}
	if err := battery.ScheduleAging(sys.Events(), sys.Battery(), battery.AgingSchedule{
		Start:           sim.Time(10 * sim.Millisecond),
		Interval:        10 * sim.Millisecond,
		FractionPerStep: ageFrac,
		Steps:           ageSteps,
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("NV-DRAM %d MiB, initial budget %d pages, battery %.2f J effective\n",
		size>>20, sys.DirtyBudget(), sys.Battery().EffectiveJoules())
	fmt.Printf("aging schedule: -%.0f%% capacity every 10 ms, %d steps\n\n",
		ageFrac*100, ageSteps)

	rng := sim.NewRNG(seed)
	pages := size / 2 / 4096
	for sys.Now() < sim.Time(100*sim.Millisecond) {
		p := rng.Int63n(pages)
		if err := m.WriteAt([]byte{byte(p)}, p*4096); err != nil {
			fatal(err)
		}
		sys.AdvanceTime(20 * sim.Microsecond)
	}

	fmt.Printf("%10s %10s %10s %12s %8s %8s %9s %6s\n",
		"t", "state", "joules", "bw-est MB/s", "budget", "dirty", "draining", "wear")
	for i, s := range sys.Health().Snapshots() {
		if i%5 != 0 { // one row per 10 ms of the 2 ms sampling
			continue
		}
		fmt.Printf("%10v %10v %10.3f %12.1f %8d %8d %9v %6.2f\n",
			sim.Duration(s.At), s.State, s.EffectiveJoules,
			float64(s.BandwidthEstimate)/(1<<20), s.Budget, s.Dirty, s.Draining, s.WearCycles)
	}
	st := sys.Stats()
	hs := sys.Health().Stats()
	fmt.Printf("\nmonitor: %d ticks, %d retunes; manager: %d budget shrinks, %d drains completed, state %v\n",
		hs.Ticks, hs.Retunes, st.BudgetShrinks, st.DrainsCompleted, sys.HealthState())
	fmt.Printf("final budget %d pages from %.2f J effective (%.0f%% of nameplate at install)\n",
		sys.DirtyBudget(), sys.Battery().EffectiveJoules(),
		100*sys.Battery().EffectiveJoules()/(sys.Battery().EffectiveJoules()/pow(1-ageFrac, ageSteps)))

	if blackBox {
		rep, err := sys.BlackBoxReport()
		if err != nil {
			fatal(err)
		}
		fmt.Println("\nlive forensic report from the battery-backed flight recorder:")
		if err := rep.WriteText(os.Stdout, 15); err != nil {
			fatal(err)
		}
	}
}

func pow(x float64, n int) float64 {
	out := 1.0
	for i := 0; i < n; i++ {
		out *= x
	}
	return out
}

// sensorTrajectory runs the trajectory workload with the voltage gauge
// under seeded fault episodes and prints the fused estimate next to the
// battery model's ground truth at every monitor sample. The point of
// the table is the one-sided error: fused/true dips below 1 whenever
// the fusion turns conservative, and never rises above it.
func sensorTrajectory(size int64, seed uint64, ageFrac float64, ageSteps int, lie, stuck, drift float64) {
	sys, err := viyojit.New(viyojit.Config{
		NVDRAMSize: size,
		// Slow device: the transfer term dominates the fixed flush
		// overhead, so a conservative telemetry dip shrinks the budget
		// proportionally instead of zeroing it through the overhead
		// reserve and tripping ReadOnly (the regime the lying-gauge
		// crash sweep studies, for the same reason).
		SSD: viyojit.SSDConfig{WriteBandwidth: 16 << 20},
	})
	if err != nil {
		fatal(err)
	}
	m, err := sys.Map("heap", size/2)
	if err != nil {
		fatal(err)
	}
	if lie == 0 && stuck == 0 && drift == 0 {
		lie, stuck, drift = 0.05, 0.02, 0.02
	}
	inj := faultinject.NewSensorInjector(faultinject.SensorConfig{
		Seed:      seed ^ 0x6A06E, // decorrelate from the workload stream
		LieProb:   lie,
		StuckProb: stuck,
		DriftProb: drift,
	})
	// The voltage gauge (estimator 1) takes the faults; the coulomb
	// counter stays honest, so the fusion always has a floor to stand on.
	sys.Sensor().Estimator(1).SetCorruptor(inj)
	if err := battery.ScheduleAging(sys.Events(), sys.Battery(), battery.AgingSchedule{
		Start:           sim.Time(10 * sim.Millisecond),
		Interval:        10 * sim.Millisecond,
		FractionPerStep: ageFrac,
		Steps:           ageSteps,
	}); err != nil {
		fatal(err)
	}
	fmt.Printf("NV-DRAM %d MiB, initial budget %d pages, battery %.2f J effective\n",
		size>>20, sys.DirtyBudget(), sys.Battery().EffectiveJoules())
	fmt.Printf("voltage-gauge faults armed: lie %.3f, stuck %.3f, drift %.3f per sample; aging -%.0f%% every 10 ms\n\n",
		lie, stuck, drift, ageFrac*100)

	rng := sim.NewRNG(seed)
	pages := size / 2 / 4096
	for sys.Now() < sim.Time(100*sim.Millisecond) {
		p := rng.Int63n(pages)
		if err := m.WriteAt([]byte{byte(p)}, p*4096); err != nil {
			fatal(err)
		}
		sys.AdvanceTime(20 * sim.Microsecond)
	}

	fmt.Printf("%10s %10s %10s %10s %10s %8s %8s\n",
		"t", "state", "true J", "fused J", "fused/true", "budget", "dirty")
	overReports := 0
	for i, s := range sys.Health().Snapshots() {
		if s.EffectiveJoules > s.TrueJoules {
			overReports++
		}
		if i%2 != 0 { // one row per 4 ms of the 2 ms sampling
			continue
		}
		fmt.Printf("%10v %10v %10.3f %10.3f %10.3f %8d %8d\n",
			sim.Duration(s.At), s.State, s.TrueJoules, s.EffectiveJoules,
			s.EffectiveJoules/s.TrueJoules, s.Budget, s.Dirty)
	}

	fs := sys.Sensor().Stats()
	episodes := map[string]int{}
	for _, ep := range inj.Episodes() {
		episodes[ep.Class.String()]++
	}
	hs := sys.Health().Stats()
	fmt.Printf("\nepisodes injected: %v over %d fused samples\n", episodes, fs.Samples)
	fmt.Printf("fused-layer rejections: bounds %d, rate %d, stale %d, disagree %d; %d re-trusts, %d solo, %d blind\n",
		fs.BoundsRejects, fs.RateRejects, fs.StaleDropouts, fs.Disagreements,
		fs.Retrusts, fs.SoloSamples, fs.BlindSamples)
	fmt.Printf("monitor: %d ticks, %d retunes, %d emergencies; final budget %d from fused %.3f J (true %.3f J)\n",
		hs.Ticks, hs.Retunes, hs.EmergencyEnters, sys.DirtyBudget(),
		sys.Sensor().EffectiveJoules(), sys.Battery().EffectiveJoules())
	if overReports > 0 {
		fatal(fmt.Errorf("%d samples over-reported ground truth — the conservatism invariant is broken", overReports))
	}
	fmt.Println("every sample held fused ≤ true: the budget never trusted a lie")
}

// drainLatency measures the staged-shrink re-provisioning latency: with
// the dirty set at the full budget, shrink to a fraction of it and time
// the drain (no concurrent writes — the floor of the latency; bursts
// only extend it via forced-clean backpressure).
func drainLatency(size int64, seed uint64) {
	// Monitor off: this experiment drives SetDirtyBudget by hand to
	// isolate the staged drain's latency; a live monitor would retune
	// the budget out from under the measurement.
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: size, DisableHealthMonitor: true})
	if err != nil {
		fatal(err)
	}
	m, err := sys.Map("heap", size/2)
	if err != nil {
		fatal(err)
	}
	mgr := sys.Manager()
	budget0 := sys.DirtyBudget()
	fmt.Printf("NV-DRAM %d MiB, budget %d pages\n\n", size>>20, budget0)
	fmt.Printf("%10s %12s %14s %16s\n", "new budget", "pages cut", "drain time", "µs per page")

	_ = seed
	for _, frac := range []float64{0.75, 0.5, 0.25, 0.125} {
		// Refill the dirty set to the full budget.
		if err := mgr.SetDirtyBudget(budget0); err != nil {
			fatal(err)
		}
		for p := int64(0); sys.DirtyCount() < budget0; p++ {
			if err := m.WriteAt([]byte{byte(p)}, (p%(size/2/4096))*4096); err != nil {
				fatal(err)
			}
			sys.Pump()
		}
		target := int(float64(budget0) * frac)
		if target < 1 {
			target = 1
		}
		cut := sys.DirtyCount() - target
		start := sys.Now()
		if err := mgr.SetDirtyBudget(target); err != nil {
			fatal(err)
		}
		for mgr.Draining() {
			sys.AdvanceTime(20 * sim.Microsecond)
		}
		dt := sys.Now().Sub(start)
		fmt.Printf("%10d %12d %14v %16.2f\n",
			target, cut, dt, float64(dt)/1000/float64(cut))
	}
	st := sys.Stats()
	fmt.Printf("\n%d staged shrinks, %d drains completed, %d retune cleans\n",
		st.BudgetShrinks, st.DrainsCompleted, st.RetuneCleans)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "health-sim:", err)
	os.Exit(1)
}
