// Benchmarks that regenerate every table and figure in the paper's
// evaluation. Each BenchmarkFigN_* prints the corresponding table once
// (guarded by sync.Once — figures are deterministic) and reports the
// figure's headline numbers as benchmark metrics. Run them all with:
//
//	go test -bench=. -benchmem
//
// The mapping from benchmark to paper figure is DESIGN.md §4's
// per-experiment index.
package viyojit

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"

	"viyojit/internal/dist"
	"viyojit/internal/experiments"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvfs"
	"viyojit/internal/pheap"
	"viyojit/internal/ptx"
	"viyojit/internal/sim"
	"viyojit/internal/trace"
	"viyojit/internal/wal"
	"viyojit/internal/ycsb"
)

// benchOps keeps the full-grid sweeps affordable; shapes are stable well
// below this (the simulation is deterministic).
const benchOps = 10_000

// sweepCache shares one full sweep across the Fig 7/8/9 benchmarks,
// exactly as one set of runs feeds all three figures in the paper.
var (
	sweepOnce sync.Once
	sweepVal  *experiments.Sweep
	sweepErr  error
)

func fullSweep(b *testing.B) *experiments.Sweep {
	b.Helper()
	sweepOnce.Do(func() {
		sweepVal, sweepErr = experiments.RunSweep(experiments.SweepOptions{
			OperationCount: benchOps,
			Seed:           1,
		})
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepVal
}

var printOnce sync.Map

// printTable prints a figure's table exactly once per process.
func printTable(name string, fn func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fn()
		fmt.Println()
	}
}

func BenchmarkFig1_ScalingGap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig1", func() {
			if err := experiments.FprintFig1(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
	b.ReportMetric(50000, "dram-growth-25y")
	b.ReportMetric(3.3, "lithium-growth-25y")
}

func BenchmarkTable_BatterySizing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("sizing", func() { experiments.FprintBatterySizing(os.Stdout) })
	}
}

// traceCache shares the generated application traces across Figs 2-4.
var (
	traceOnce sync.Once
	traceVal  []trace.Application
	traceErr  error
)

func tracesFor(b *testing.B) []trace.Application {
	b.Helper()
	traceOnce.Do(func() { traceVal, traceErr = trace.Applications(1) })
	if traceErr != nil {
		b.Fatal(traceErr)
	}
	return traceVal
}

func BenchmarkFig2_WrittenFraction(b *testing.B) {
	apps := tracesFor(b)
	for i := 0; i < b.N; i++ {
		printTable("fig2", func() { experiments.FprintFig2(os.Stdout, apps) })
	}
	// Headline: the share of volumes under the 15 % line.
	total, under := 0, 0
	for _, app := range apps {
		for _, v := range app.Volumes {
			total++
			if v.WorstIntervalWrittenFraction(trace.Hour) < 0.15 {
				under++
			}
		}
	}
	b.ReportMetric(float64(under)/float64(total)*100, "%volumes<15%/hr")
}

func BenchmarkFig3_SkewTouched(b *testing.B) {
	apps := tracesFor(b)
	for i := 0; i < b.N; i++ {
		printTable("fig3", func() { experiments.FprintFig3(os.Stdout, apps) })
	}
}

func BenchmarkFig4_SkewTotal(b *testing.B) {
	apps := tracesFor(b)
	for i := 0; i < b.N; i++ {
		printTable("fig4", func() { experiments.FprintFig4(os.Stdout, apps) })
	}
}

func BenchmarkFig5_ZipfShrinkage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig5", func() { experiments.FprintFig5(os.Stdout) })
	}
	b.ReportMetric(dist.ZipfCoverage(10_000, dist.ZipfianConstant, 0.90)*100, "F90@10k-%pages")
	b.ReportMetric(dist.ZipfCoverage(10_000_000, dist.ZipfianConstant, 0.90)*100, "F90@10M-%pages")
}

func BenchmarkFig7_Throughput(b *testing.B) {
	var s *experiments.Sweep
	for i := 0; i < b.N; i++ {
		s = fullSweep(b)
	}
	printTable("fig7", func() { experiments.FprintFig7(os.Stdout, s) })
	for _, ws := range s.Workloads {
		for _, p := range ws.Points {
			if p.BudgetFraction < 0.12 {
				b.ReportMetric(experiments.ThroughputOverheadPercent(p, ws.Baseline),
					ws.Workload.Name+"-overhead@11%-%")
			}
		}
	}
}

func BenchmarkFig8_Latency(b *testing.B) {
	var s *experiments.Sweep
	for i := 0; i < b.N; i++ {
		s = fullSweep(b)
	}
	printTable("fig8", func() { experiments.FprintFig8(os.Stdout, s) })
	ws := s.Workloads[0] // YCSB-A
	p99 := ws.Points[0].Result.LatencyOf(ws.Workload.PrimaryOp).Quantile(0.99)
	base := ws.Baseline.Result.LatencyOf(ws.Workload.PrimaryOp).Quantile(0.99)
	b.ReportMetric(p99.Microseconds(), "A-p99@11%-us")
	b.ReportMetric(base.Microseconds(), "A-p99-baseline-us")
}

func BenchmarkFig9_WriteRate(b *testing.B) {
	var s *experiments.Sweep
	for i := 0; i < b.N; i++ {
		s = fullSweep(b)
	}
	printTable("fig9", func() { experiments.FprintFig9(os.Stdout, s) })
	b.ReportMetric(s.Workloads[0].Points[0].WriteRateMBps, "A-writerate@11%-MB/s")
}

func BenchmarkFig10_HeapScaling(b *testing.B) {
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFig10(experiments.SweepOptions{
			Workloads:      []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadB, ycsb.WorkloadC, ycsb.WorkloadF},
			OperationCount: benchOps,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("fig10", func() { experiments.FprintFig10(os.Stdout, rows) })
}

func BenchmarkAblation_TLBFlush(b *testing.B) {
	var rows []experiments.TLBAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTLBAblation(experiments.SweepOptions{
			Fractions:      []float64{0.11, 0.23},
			OperationCount: 40_000,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-tlb", func() { experiments.FprintTLBAblation(os.Stdout, rows) })
	b.ReportMetric(float64(rows[0].WithoutFlushFaults)/float64(rows[0].WithFlushFaults), "fault-ratio-noflush")
}

func BenchmarkAblation_VictimPolicy(b *testing.B) {
	var rows []experiments.PolicyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunPolicyAblation(experiments.SweepOptions{
			OperationCount: benchOps,
			Seed:           1,
		}, 0.11)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-policy", func() { experiments.FprintPolicyAblation(os.Stdout, rows) })
}

func BenchmarkAblation_EpochLength(b *testing.B) {
	var rows []experiments.ParamRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunEpochAblation(experiments.SweepOptions{
			OperationCount: benchOps,
			Seed:           1,
		}, 0.11, []sim.Duration{250 * sim.Microsecond, sim.Millisecond, 4 * sim.Millisecond, 16 * sim.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-epoch", func() {
		experiments.FprintParamRows(os.Stdout, "Ablation: epoch length (YCSB-A, 11% budget)", rows)
	})
}

func BenchmarkAblation_EWMAWeight(b *testing.B) {
	var rows []experiments.ParamRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunEWMAAblation(experiments.SweepOptions{
			OperationCount: benchOps,
			Seed:           1,
		}, 0.11, []float64{0.1, 0.5, 0.75, 1.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-ewma", func() {
		experiments.FprintParamRows(os.Stdout, "Ablation: dirty-page-pressure EWMA weight (YCSB-A, 11% budget)", rows)
	})
}

func BenchmarkAblation_QueueDepth(b *testing.B) {
	var rows []experiments.ParamRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunQueueDepthAblation(experiments.SweepOptions{
			OperationCount: benchOps,
			Seed:           1,
		}, 0.11, []int{1, 4, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-depth", func() {
		experiments.FprintParamRows(os.Stdout, "Ablation: SSD outstanding-IO bound (YCSB-A, 11% budget)", rows)
	})
}

func BenchmarkAblation_HWAssist(b *testing.B) {
	var rows []experiments.HWAssistRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunHWAssistAblation(experiments.SweepOptions{
			Fractions:      []float64{0.11, 0.46},
			OperationCount: benchOps,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-hw", func() { experiments.FprintHWAssistAblation(os.Stdout, rows) })
	b.ReportMetric(rows[0].SWP99.Microseconds(), "SW-p99@11%-us")
	b.ReportMetric(rows[0].HWP99.Microseconds(), "HW-p99@11%-us")
}

func BenchmarkAblation_ByteGranularity(b *testing.B) {
	var rows []experiments.GranularityResult
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, ws := range []int{64, 256, 1024, 4096} {
			r, err := experiments.RunGranularityComparison(1, ws, 2000)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, r)
		}
	}
	printTable("abl-gran", func() { experiments.FprintGranularity(os.Stdout, rows) })
	b.ReportMetric(rows[0].BatteryRatio, "battery-ratio@64B")
	b.ReportMetric(rows[0].TrafficRatio, "traffic-ratio@64B")
}

func BenchmarkTable_TenancyMultiplexing(b *testing.B) {
	var r experiments.TenancyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunTenancyExperiment(1, 400)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("tenancy", func() { experiments.FprintTenancy(os.Stdout, r) })
	b.ReportMetric(float64(r.StaticForcedCleans), "static-forced-cleans")
	b.ReportMetric(float64(r.PooledForcedCleans), "pooled-forced-cleans")
}

func BenchmarkAblation_SSDReduction(b *testing.B) {
	var rows []experiments.ReductionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunSSDReductionAblation(experiments.SweepOptions{
			OperationCount: benchOps,
			Seed:           1,
		}, 0.11)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("abl-ssd-reduce", func() { experiments.FprintSSDReduction(os.Stdout, rows) })
	b.ReportMetric(rows[3].TransferRatio, "bus-bytes-ratio-both")
}

func BenchmarkTable_Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("availability", func() {
			if err := experiments.FprintAvailability(os.Stdout); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkTable_BatteryRetune(b *testing.B) {
	var r experiments.RetuneReport
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.RunBatteryRetune(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTable("retune", func() { experiments.FprintBatteryRetune(os.Stdout, r) })
	if !r.SurvivedOnHalf {
		b.Fatal("retuned system lost data on power failure")
	}
}

// BenchmarkServeThroughput measures the concurrent serving front-end's
// closed-loop throughput across client counts. The simulation itself is
// single-goroutine, so virtual-time goodput is flat across the sweep by
// design — what the sweep surfaces is the host-side coordination cost
// (queue handoff, cond wakeups) as contention grows, plus the goodput
// metric for each width.
func BenchmarkServeThroughput(b *testing.B) {
	for _, clients := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			var last ycsb.ConcurrentResult
			for i := 0; i < b.N; i++ {
				var err error
				last, err = experiments.RunOverloadPoint(experiments.OverloadConfig{
					Seed:           1,
					Clients:        clients,
					OperationCount: 4_000,
				}, 0) // closed loop: saturation throughput
				if err != nil {
					b.Fatal(err)
				}
			}
			if last.Completed == 0 {
				b.Fatal("no operations completed")
			}
			b.ReportMetric(last.Goodput/1000, "goodput-kops/vsec")
			b.ReportMetric(float64(last.Shed()), "shed-ops")
		})
	}
}

// BenchmarkObsHotPath measures one full observability record set — the
// instruments a served request touches (counter, gauge, histogram, span
// begin/finish) — in host ns/op. The guard: zero B/op, zero allocs/op;
// TestObsRecordPathZeroAlloc enforces the same bound as a plain test so
// a regression fails `go test` without anyone reading benchmark output.
//
// The bare variant is the registry alone; the blackbox-sink variant is
// the same record set with the flight recorder teed onto every
// instrument — the marginal price of always-on crash forensics on the
// hot path, and its zero-alloc guard (the recorder encodes into a
// recorder-owned buffer; TestAppendZeroAlloc in internal/blackbox
// enforces the same bound as a plain test).
func BenchmarkObsHotPath(b *testing.B) {
	run := func(b *testing.B, cfg Config) {
		sys, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer sys.Close()
		reg := sys.Metrics()
		c := reg.Counter("bench_requests_total")
		// A ruled gauge: when the recorder is teed in, every change is a
		// full ring append — the expensive edge of the tee. The counter,
		// histogram, and span stay rule-misses, pricing the lookup.
		g := reg.Gauge("health_derived_budget_pages")
		h := reg.Histogram("bench_latency_ns")
		tr := reg.Tracer()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.Set(int64(i&63) + 1)
			h.Record(sim.Duration(1000 + i&1023))
			sp := tr.Begin("bench.request", sim.Time(i))
			tr.Finish(sp, sim.Time(i+1), "ok")
		}
		b.StopTimer()
		if rec := sys.BlackBox(); rec != nil && rec.LastSeq() < uint64(b.N/2) {
			b.Fatalf("recorder appended %d of %d ruled gauge changes; the tee is not measuring the append path", rec.LastSeq(), b.N)
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, Config{NVDRAMSize: 8 << 20})
	})
	b.Run("blackbox-sink", func(b *testing.B) {
		run(b, Config{NVDRAMSize: 8 << 20, BlackBox: true})
	})
}

// TestObsRecordPathZeroAlloc asserts the instruments the serve dispatch
// loop records onto — fetched from a real System's registry, exactly as
// the subsystems hold them — allocate nothing per operation, so enabling
// observability cannot move BenchmarkServeThroughput's allocation count.
func TestObsRecordPathZeroAlloc(t *testing.T) {
	sys, err := New(Config{NVDRAMSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	reg := sys.Metrics()
	c := reg.Counter("serve_submitted_total")
	g := reg.Gauge("serve_queue_depth")
	h := reg.Histogram("serve_latency_normal_ns")
	tr := reg.Tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(3)
		g.SetMax(5)
		h.Record(12345)
		sp := tr.Begin("serve.request", 1)
		tr.Finish(sp, 2, "ok")
	})
	if allocs != 0 {
		t.Fatalf("obs record path allocates %.1f/op; the serve hot path must stay allocation-free", allocs)
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the core data path (host-time ns/op; these measure
// the library itself, not the modelled system).

func BenchmarkMicro_FirstWriteFault(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 1 << 30, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("bench", 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	buf := []byte{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Each write hits a fresh page: full fault path.
		off := (int64(i) % (1 << 30 / 4096)) * 4096
		if err := m.WriteAt(buf, off); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_WarmWrite(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("bench", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	buf := []byte{1}
	if err := m.WriteAt(buf, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_Read(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("bench", 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.ReadAt(buf, int64(i%16000)*64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_KVStorePut(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 64 << 20, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("kv", 32<<20)
	if err != nil {
		b.Fatal(err)
	}
	heap, err := pheap.Format(m)
	if err != nil {
		b.Fatal(err)
	}
	store, err := kvstore.Create(heap, 4096)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key%06d", i%2000))
		if err := store.Put(key, val); err != nil {
			b.Fatal(err)
		}
		sys.Pump()
	}
}

func BenchmarkMicro_KVStoreGet(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 64 << 20, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("kv", 32<<20)
	if err != nil {
		b.Fatal(err)
	}
	heap, err := pheap.Format(m)
	if err != nil {
		b.Fatal(err)
	}
	store, err := kvstore.Create(heap, 4096)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 256)
	for i := 0; i < 2000; i++ {
		if err := store.Put([]byte(fmt.Sprintf("key%06d", i)), val); err != nil {
			b.Fatal(err)
		}
		sys.Pump()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := store.Get([]byte(fmt.Sprintf("key%06d", i%2000))); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
		sys.Pump()
	}
}

func BenchmarkMicro_ZipfianNext(b *testing.B) {
	z := dist.NewScrambledZipfian(sim.NewRNG(1), 1_000_000, dist.ZipfianConstant)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}

func BenchmarkMicro_PowerFailFlush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := New(Config{NVDRAMSize: 32 << 20})
		if err != nil {
			b.Fatal(err)
		}
		m, err := sys.Map("pf", 16<<20)
		if err != nil {
			b.Fatal(err)
		}
		for p := 0; p < sys.DirtyBudget(); p++ {
			if err := m.WriteAt([]byte{1}, int64(p)*4096); err != nil {
				b.Fatal(err)
			}
			sys.Pump()
		}
		b.StartTimer()
		report := sys.SimulatePowerFailure()
		if !report.Survived {
			b.Fatal("flush did not survive")
		}
	}
}

func BenchmarkMicro_NVFSCreateWrite(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 64 << 20, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("fs", 32<<20)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := nvfs.Format(m)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/f%07d", i%500)
		if i < 500 {
			if err := fs.Create(path); err != nil {
				b.Fatal(err)
			}
		}
		if err := fs.WriteFile(path, data, 0); err != nil {
			b.Fatal(err)
		}
		sys.Pump()
	}
}

func BenchmarkMicro_NVFSRead(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 64 << 20, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("fs", 32<<20)
	if err != nil {
		b.Fatal(err)
	}
	fs, err := nvfs.Format(m)
	if err != nil {
		b.Fatal(err)
	}
	if err := fs.Create("/hot"); err != nil {
		b.Fatal(err)
	}
	if err := fs.WriteFile("/hot", make([]byte, 64<<10), 0); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.ReadFile("/hot", buf, int64(i%16)*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicro_WALAppend(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 64 << 20, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("log", 48<<20)
	if err != nil {
		b.Fatal(err)
	}
	l, err := wal.Create(m)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			if errors.Is(err, wal.ErrFull) {
				b.StopTimer()
				if err := l.Reset(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				continue
			}
			b.Fatal(err)
		}
		sys.Pump()
	}
}

func BenchmarkMicro_PTXUpdate(b *testing.B) {
	sys, err := New(Config{NVDRAMSize: 64 << 20, Battery: BatteryConfig{CapacityJoules: 1e6}})
	if err != nil {
		b.Fatal(err)
	}
	m, err := sys.Map("tx", 32<<20)
	if err != nil {
		b.Fatal(err)
	}
	h, err := ptx.Create(m, 256<<10)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Update(func(tx *ptx.Tx) error {
			return tx.Write(payload, int64(i%1000)*64)
		}); err != nil {
			b.Fatal(err)
		}
		sys.Pump()
	}
}
