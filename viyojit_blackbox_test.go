package viyojit

import (
	"bytes"
	"strings"
	"testing"

	"viyojit/internal/sim"
)

// TestBlackBoxForensicsAcrossPowerFailure is the facade-level loop: a
// recorder-enabled system takes writes, crashes, recovers, and the
// forensic report read from the battery-backed ring names the
// crash-instant dirty level and ladder state the live system actually
// had.
func TestBlackBoxForensicsAcrossPowerFailure(t *testing.T) {
	sys := newTestSystem(t, Config{BlackBox: true})
	if sys.BlackBox() == nil {
		t.Fatal("BlackBox() nil with Config.BlackBox set")
	}
	m, err := sys.Map("heap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := []byte("forensics payload")
	for i := 0; i < 200; i++ {
		if err := m.WriteAt(buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	sys.AdvanceTime(50 * sim.Millisecond)

	// A live walk must already see the boot record and gauge traffic.
	live, err := sys.BlackBoxReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Walk.Records) == 0 || live.Walk.LastSeq == 0 {
		t.Fatalf("live report empty: %+v", live.Walk)
	}

	preDirty := sys.DirtyCount()
	preLadder := int64(sys.HealthState())
	preSeq := sys.BlackBox().LastSeq()
	preDrops := sys.BlackBox().Dropped()

	report := sys.SimulatePowerFailure()
	if !report.Survived {
		t.Fatalf("flush not covered: %+v", report)
	}
	if err := sys.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
	// The seal froze the recorder at the crash instant.
	if got := sys.BlackBox().LastSeq(); got != preSeq {
		t.Fatalf("recorder advanced past the seal: %d -> %d", preSeq, got)
	}

	recovered, _, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	rep := recovered.Forensics()
	if rep == nil {
		t.Fatal("Forensics() nil after recovery with black box enabled")
	}
	if rep.Walk.LastSeq != preSeq {
		t.Fatalf("adopted seq %d, want crash-instant %d", rep.Walk.LastSeq, preSeq)
	}
	if rep.Walk.Torn != 0 {
		t.Fatalf("clean shutdown left %d torn slots", rep.Walk.Torn)
	}
	if preDrops == 0 {
		if rep.CrashDirty != int64(preDirty) {
			t.Fatalf("crash-instant dirty: report %d, oracle %d", rep.CrashDirty, preDirty)
		}
		// The ladder gauge tees only on transitions; on a run that stayed
		// Healthy with the boot record aged out of the window, -1
		// (unknowable) is the honest report. Anything else must match.
		if rep.FinalLadder != -1 && rep.FinalLadder != preLadder {
			t.Fatalf("final ladder: report %d, oracle %d", rep.FinalLadder, preLadder)
		}
		if rep.Complete && rep.FinalLadder == -1 {
			t.Fatal("complete history reported an unknowable ladder")
		}
	}
	if len(rep.Dirty) == 0 {
		t.Fatal("no dirty trajectory recorded")
	}
	var out bytes.Buffer
	if err := rep.WriteText(&out, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "crash instant") {
		t.Fatalf("report text lacks crash instant:\n%s", out.String())
	}

	// The recovered recorder continues the sequence — post-crash records
	// sort after pre-crash ones, and the recovery itself left a record.
	if got := recovered.BlackBox().LastSeq(); got <= preSeq {
		t.Fatalf("recovered recorder seq %d, want > %d", got, preSeq)
	}
}

// TestBlackBoxFlushAllConverges: a clean shutdown with the recorder on
// must drain — the quiesce keeps the dirty-gauge tee from re-dirtying
// ring pages under FlushAll — and leave the SSD byte-equal.
func TestBlackBoxFlushAllConverges(t *testing.T) {
	sys := newTestSystem(t, Config{BlackBox: true})
	m, err := sys.Map("heap", 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := m.WriteAt([]byte("drain me"), int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	sys.FlushAll()
	if n := sys.DirtyCount(); n != 0 {
		t.Fatalf("FlushAll left %d dirty pages", n)
	}
	if err := sys.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
	// The recorder resumed: later traffic still lands in the ring.
	seq := sys.BlackBox().LastSeq()
	if err := m.WriteAt([]byte("post-flush"), 0); err != nil {
		t.Fatal(err)
	}
	if got := sys.BlackBox().LastSeq(); got <= seq {
		t.Fatalf("recorder did not resume after FlushAll: seq %d -> %d", seq, got)
	}
}

// TestBlackBoxDisabledAccessors: the default configuration pays nothing
// and the accessors say so.
func TestBlackBoxDisabledAccessors(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if sys.BlackBox() != nil {
		t.Fatal("recorder present without Config.BlackBox")
	}
	if _, err := sys.BlackBoxReport(); err == nil {
		t.Fatal("BlackBoxReport succeeded with recorder disabled")
	}
	if sys.Forensics() != nil {
		t.Fatal("Forensics non-nil on a fresh system")
	}
}
