package viyojit

import (
	"bytes"
	"sync"
	"testing"
)

// TestCloseIdempotent: Close twice (and after a power failure) must be
// a no-op the second time, not a double-stop.
func TestCloseIdempotent(t *testing.T) {
	sys := newTestSystem(t, Config{})
	sys.Close()
	sys.Close()

	failed := newTestSystem(t, Config{})
	if rep := failed.SimulatePowerFailure(); !rep.Survived {
		t.Fatalf("power failure not survived: %+v", rep)
	}
	failed.Close()
	failed.Close()
}

// TestRecoverQuiescesOldSystem: Recover closes the source system, and a
// later explicit Close is absorbed. The durable source stays readable,
// so Recover is itself repeatable — each call yields an independent
// fresh System with the same restored bytes.
func TestRecoverQuiescesOldSystem(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, err := sys.Map("heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("survives any number of reboots")
	if err := m.WriteAt(payload, 512); err != nil {
		t.Fatal(err)
	}
	if rep := sys.SimulatePowerFailure(); !rep.Survived {
		t.Fatalf("power failure not survived: %+v", rep)
	}

	readBack := func(ns *System) []byte {
		t.Helper()
		nm, err := ns.Map("heap", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(payload))
		if err := nm.ReadAt(got, 512); err != nil {
			t.Fatal(err)
		}
		return got
	}

	first, _, err := sys.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	second, _, err := sys.Recover()
	if err != nil {
		t.Fatalf("second Recover from the same source: %v", err)
	}
	defer second.Close()
	if got := readBack(first); !bytes.Equal(got, payload) {
		t.Fatalf("first recovery read %q, want %q", got, payload)
	}
	if got := readBack(second); !bytes.Equal(got, payload) {
		t.Fatalf("second recovery read %q, want %q", got, payload)
	}
	sys.Close() // already quiesced by Recover; must be a no-op
}

// TestCloseRecoverRace: the lifecycle entry points must be safe to race
// (run under -race in CI). Many goroutines close and recover the same
// system at once; exactly the usual shutdown-path hazard.
func TestCloseRecoverRace(t *testing.T) {
	sys := newTestSystem(t, Config{})
	m, err := sys.Map("heap", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt([]byte("raced"), 0); err != nil {
		t.Fatal(err)
	}
	if rep := sys.SimulatePowerFailure(); !rep.Survived {
		t.Fatalf("power failure not survived: %+v", rep)
	}

	var wg sync.WaitGroup
	recovered := make([]*System, 4)
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			sys.Close()
		}()
		go func(slot int) {
			defer wg.Done()
			ns, _, err := sys.Recover()
			if err != nil {
				t.Errorf("racing Recover: %v", err)
				return
			}
			recovered[slot] = ns
		}(i)
	}
	wg.Wait()
	for _, ns := range recovered {
		if ns != nil {
			ns.Close()
		}
	}
}

// TestRecoverWithBudgetScale: the recovered system comes up under a
// budget re-derived from the battery charge on hand, scaled for the
// sagged-battery regime — and the scaled figure is what the manager
// actually enforces.
func TestRecoverWithBudgetScale(t *testing.T) {
	sys := newTestSystem(t, Config{})
	if _, err := sys.Map("heap", 1<<20); err != nil {
		t.Fatal(err)
	}
	if rep := sys.SimulatePowerFailure(); !rep.Survived {
		t.Fatalf("power failure not survived: %+v", rep)
	}

	full, fullReport, err := sys.RecoverWith(RecoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if fullReport.BudgetPages < 1 {
		t.Fatalf("full-scale recovery budget %d, want >= 1", fullReport.BudgetPages)
	}
	if got := full.DirtyBudget(); got != fullReport.BudgetPages {
		t.Fatalf("manager budget %d != reported %d", got, fullReport.BudgetPages)
	}

	half, halfReport, err := sys.RecoverWith(RecoverOptions{BudgetScale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer half.Close()
	if halfReport.BudgetPages >= fullReport.BudgetPages {
		t.Fatalf("half-scale budget %d not below full-scale %d", halfReport.BudgetPages, fullReport.BudgetPages)
	}
	if halfReport.BudgetPages < 1 {
		t.Fatalf("half-scale budget %d below the one-page floor", halfReport.BudgetPages)
	}
	if got := half.DirtyBudget(); got != halfReport.BudgetPages {
		t.Fatalf("manager budget %d != reported %d", got, halfReport.BudgetPages)
	}

	if _, _, err := sys.RecoverWith(RecoverOptions{BudgetScale: 1.5}); err == nil {
		t.Fatal("budget scale 1.5 accepted")
	}
	if _, _, err := sys.RecoverWith(RecoverOptions{BudgetScale: -0.1}); err == nil {
		t.Fatal("budget scale -0.1 accepted")
	}
}
