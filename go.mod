module viyojit

go 1.22
