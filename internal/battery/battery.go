// Package battery models the server-integrated Li-ion battery that makes
// DRAM non-volatile, including the real-world deratings §2.2 of the paper
// enumerates: depth-of-discharge limits for lifetime, ageing, and ambient
// derating. It converts a provisioned battery into a dirty budget — the
// number of pages that may be dirty in NV-DRAM at once — via the power
// model, and supports runtime capacity changes (battery cell failures,
// §8) so the budget can be retuned without stopping the server.
package battery

import (
	"errors"
	"fmt"
	"math"

	"viyojit/internal/power"
)

// ErrInvalid is the sentinel every battery input-validation error
// wraps; test with errors.Is. Capacity mutations arrive from runtime
// control paths (operator tooling, telemetry-driven retuning), so a
// NaN or Inf slipping through here would poison every budget derived
// downstream — ordered comparisons alone wave NaN through, which is
// why each guard rejects non-finite values explicitly.
var ErrInvalid = errors.New("battery: invalid input")

// finitePositive reports whether v is a usable capacity-like value:
// finite and strictly positive. NaN fails (every comparison with NaN
// is false, so `v > 0` alone would not reject it via the complement
// check `v <= 0`).
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}

// Config describes a provisioned battery.
type Config struct {
	// CapacityJoules is the nameplate capacity.
	CapacityJoules float64
	// DepthOfDischarge is the usable fraction per discharge cycle.
	// Datacenter batteries are typically not discharged below 50 % so
	// they last 3–4 years (paper §2.2); 0 selects 0.5.
	DepthOfDischarge float64
	// Derating is a further multiplicative usable fraction covering
	// ageing, temperature, and humidity variation. 0 selects 1.0 (new
	// battery, nominal conditions).
	Derating float64
}

func (c Config) withDefaults() Config {
	if c.DepthOfDischarge == 0 {
		c.DepthOfDischarge = 0.5
	}
	if c.Derating == 0 {
		c.Derating = 1.0
	}
	return c
}

func (c Config) validate() error {
	if !finitePositive(c.CapacityJoules) {
		return fmt.Errorf("%w: capacity %v J must be positive and finite", ErrInvalid, c.CapacityJoules)
	}
	if !finitePositive(c.DepthOfDischarge) || c.DepthOfDischarge > 1 {
		return fmt.Errorf("%w: depth of discharge %v outside (0,1]", ErrInvalid, c.DepthOfDischarge)
	}
	if !finitePositive(c.Derating) || c.Derating > 1 {
		return fmt.Errorf("%w: derating %v outside (0,1]", ErrInvalid, c.Derating)
	}
	return nil
}

// Battery is a provisioned battery whose effective capacity can change at
// runtime. It is not safe for concurrent use.
type Battery struct {
	cfg       Config
	nameplate float64 // current nameplate capacity (declines with ageing)
	onChange  []func(*Battery)
	onShrink  []func(*Battery, float64)
}

// New creates a battery from cfg.
func New(cfg Config) (*Battery, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Battery{cfg: cfg, nameplate: cfg.CapacityJoules}, nil
}

// MustNew is New that panics on error, for tests and examples with
// literal configurations.
func MustNew(cfg Config) *Battery {
	b, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return b
}

// NameplateJoules returns the current (possibly aged) nameplate capacity.
func (b *Battery) NameplateJoules() float64 { return b.nameplate }

// EffectiveJoules returns the energy actually available for a backup
// flush after depth-of-discharge and derating.
func (b *Battery) EffectiveJoules() float64 {
	return b.nameplate * b.cfg.DepthOfDischarge * b.cfg.Derating
}

// OnChange registers a callback invoked after any capacity change. The
// Viyojit manager uses it to retune the dirty budget at runtime (§8).
func (b *Battery) OnChange(fn func(*Battery)) {
	b.onChange = append(b.onChange, fn)
}

// OnShrink registers a callback invoked immediately BEFORE a capacity
// change that would reduce the effective joules, with the projected new
// effective capacity. It is the safe-shrink hook: the Viyojit manager
// drains the dirty set down to what the projected capacity covers while
// the battery still holds its current charge, so "dirty ≤ pages the
// battery can flush" is never violated, even transiently, by a capacity
// step-down. Growth-only changes skip these observers.
func (b *Battery) OnShrink(fn func(b *Battery, projectedEffectiveJoules float64)) {
	b.onShrink = append(b.onShrink, fn)
}

func (b *Battery) notify() {
	for _, fn := range b.onChange {
		fn(b)
	}
}

// prepare runs the shrink observers if the pending change reduces the
// effective capacity.
func (b *Battery) prepare(projected float64) {
	if projected >= b.EffectiveJoules() {
		return
	}
	for _, fn := range b.onShrink {
		fn(b, projected)
	}
}

// SetCapacityJoules replaces the nameplate capacity — modelling cell
// failures, replacement, or capacity reallocation between co-located
// tenants — and notifies observers. Shrink observers run before the
// change applies (see OnShrink). Non-positive, NaN, and infinite
// capacities are rejected with an error wrapping ErrInvalid.
func (b *Battery) SetCapacityJoules(j float64) error {
	if !finitePositive(j) {
		return fmt.Errorf("%w: capacity %v J must be positive and finite", ErrInvalid, j)
	}
	b.prepare(j * b.cfg.DepthOfDischarge * b.cfg.Derating)
	b.nameplate = j
	b.notify()
	return nil
}

// SetDerating replaces the runtime derating factor — modelling ambient
// temperature excursions or measured voltage sag that reduce (or, back
// in range, restore) the usable fraction of the pack — and notifies
// observers. Shrink observers run before a reducing change applies.
// Unlike Age this is reversible: raising the derating back restores the
// effective capacity. Values outside (0,1], NaN, and Inf are rejected
// with an error wrapping ErrInvalid (NaN would pass a bare range check
// — both ordered comparisons are false — then scale every future
// EffectiveJoules to NaN).
func (b *Battery) SetDerating(d float64) error {
	if !finitePositive(d) || d > 1 {
		return fmt.Errorf("%w: derating %v outside (0,1]", ErrInvalid, d)
	}
	b.prepare(b.nameplate * b.cfg.DepthOfDischarge * d)
	b.cfg.Derating = d
	b.notify()
	return nil
}

// Derating returns the current runtime derating factor.
func (b *Battery) Derating() float64 { return b.cfg.Derating }

// Age reduces the nameplate capacity by the given fraction (0 ≤ f < 1)
// and notifies observers. Shrink observers run before the change applies.
func (b *Battery) Age(fraction float64) error {
	if math.IsNaN(fraction) || fraction < 0 || fraction >= 1 {
		return fmt.Errorf("%w: ageing fraction %v outside [0,1)", ErrInvalid, fraction)
	}
	b.prepare(b.nameplate * (1 - fraction) * b.cfg.DepthOfDischarge * b.cfg.Derating)
	b.nameplate *= 1 - fraction
	b.notify()
	return nil
}

// DirtyBudgetPages converts the battery's effective energy into the
// maximum number of pages that may be dirty at once (paper §5.1): the
// energy sustains the server for effective/watts seconds, during which a
// conservative writeBandwidth drains bytes to the SSD.
//
// dramBytes is the total NV-DRAM installed (it sets the flush-time power
// draw), pageSize the tracking granularity.
func (b *Battery) DirtyBudgetPages(m power.Model, writeBandwidth, dramBytes int64, pageSize int) int {
	bytes := m.SustainableBytes(b.EffectiveJoules(), writeBandwidth, dramBytes)
	if bytes <= 0 {
		return 0
	}
	return int(bytes / int64(pageSize))
}

// JoulesForPages returns the effective energy required to flush nPages —
// the inverse of DirtyBudgetPages, used for provisioning: "how much
// battery do I need for this budget?".
func JoulesForPages(m power.Model, nPages int, writeBandwidth, dramBytes int64, pageSize int) float64 {
	return m.FlushEnergyJoules(int64(nPages)*int64(pageSize), writeBandwidth, dramBytes)
}

// ProvisionFor returns a battery Config whose *effective* capacity (after
// depth-of-discharge dod and derating) covers flushing flushBytes. It is
// the sizing helper behind cmd/battery-calc.
func ProvisionFor(m power.Model, flushBytes, writeBandwidth, dramBytes int64, dod, derating float64) Config {
	if dod == 0 {
		dod = 0.5
	}
	if derating == 0 {
		derating = 1.0
	}
	needed := m.FlushEnergyJoules(flushBytes, writeBandwidth, dramBytes)
	return Config{
		CapacityJoules:   needed / (dod * derating),
		DepthOfDischarge: dod,
		Derating:         derating,
	}
}
