package battery

import (
	"fmt"

	"viyojit/internal/sim"
)

// AgingSchedule describes a gradual capacity decline driven by the
// simulation clock: every Interval of virtual time the nameplate loses
// FractionPerStep of its then-current capacity. It is the runtime signal
// the health monitor closes the loop on — batteries derate continuously
// in deployment, not once at install time (paper §2.2).
type AgingSchedule struct {
	// Start is the virtual time of the first aging step.
	Start sim.Time
	// Interval is the spacing between steps; it must be positive.
	Interval sim.Duration
	// FractionPerStep is the multiplicative capacity loss per step, in
	// [0, 1).
	FractionPerStep float64
	// Steps bounds the schedule; 0 means it runs for the lifetime of
	// the event queue.
	Steps int
}

func (s AgingSchedule) validate() error {
	if s.Interval <= 0 {
		return fmt.Errorf("battery: aging interval %v must be positive", s.Interval)
	}
	if s.FractionPerStep < 0 || s.FractionPerStep >= 1 {
		return fmt.Errorf("battery: aging fraction %v outside [0,1)", s.FractionPerStep)
	}
	return nil
}

// ScheduleAging arms the schedule on the simulation's shared event queue:
// each step calls b.Age(FractionPerStep), which runs the battery's shrink
// and change observers (budget drain and retune) in order. The schedule
// self-perpetuates off its own scheduled times, so drivers that advance
// the clock in large jumps still observe one step per interval.
func ScheduleAging(events *sim.Queue, b *Battery, s AgingSchedule) error {
	if err := s.validate(); err != nil {
		return err
	}
	var arm func(at sim.Time, remaining int)
	arm = func(at sim.Time, remaining int) {
		events.Schedule(at, func(now sim.Time) {
			if err := b.Age(s.FractionPerStep); err != nil {
				panic(fmt.Sprintf("battery: scheduled aging: %v", err))
			}
			if remaining == 1 {
				return
			}
			next := remaining
			if next > 0 {
				next--
			}
			arm(at.Add(s.Interval), next)
		})
	}
	arm(s.Start, s.Steps)
	return nil
}
