package battery

import (
	"math"
	"testing"

	"viyojit/internal/sim"
)

// The safe-shrink contract: shrink observers run BEFORE the capacity
// mutation, with the projected new effective joules, while the battery
// still reports its old capacity — that ordering is what lets the
// manager drain the dirty set down to the projected coverage before the
// energy actually disappears.
func TestOnShrinkRunsBeforeMutation(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	var sawCurrent, sawProjected float64
	calls := 0
	b.OnShrink(func(bb *Battery, projected float64) {
		calls++
		sawCurrent = bb.EffectiveJoules()
		sawProjected = projected
	})
	if err := b.SetCapacityJoules(400); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("shrink observer ran %d times, want 1", calls)
	}
	if sawCurrent != 1000 {
		t.Fatalf("observer saw effective %v during the shrink, want the pre-change 1000", sawCurrent)
	}
	if sawProjected != 400 {
		t.Fatalf("observer projected %v, want 400", sawProjected)
	}
	if b.EffectiveJoules() != 400 {
		t.Fatalf("effective after shrink = %v, want 400", b.EffectiveJoules())
	}
}

func TestOnShrinkSkipsGrowth(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	shrinks := 0
	changes := 0
	b.OnShrink(func(*Battery, float64) { shrinks++ })
	b.OnChange(func(*Battery) { changes++ })
	if err := b.SetCapacityJoules(2000); err != nil {
		t.Fatal(err)
	}
	if shrinks != 0 {
		t.Fatalf("growth ran %d shrink observers", shrinks)
	}
	if changes != 1 {
		t.Fatalf("growth ran %d change observers, want 1", changes)
	}
}

func TestSetDeratingShrinksAndRestores(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	var projected []float64
	b.OnShrink(func(_ *Battery, p float64) { projected = append(projected, p) })
	if err := b.SetDerating(0.5); err != nil {
		t.Fatal(err)
	}
	if b.EffectiveJoules() != 500 {
		t.Fatalf("effective after derate = %v, want 500", b.EffectiveJoules())
	}
	// Unlike Age, derating is reversible: raising it restores capacity
	// and must not run shrink observers.
	if err := b.SetDerating(1); err != nil {
		t.Fatal(err)
	}
	if b.EffectiveJoules() != 1000 {
		t.Fatalf("effective after restore = %v, want 1000", b.EffectiveJoules())
	}
	if len(projected) != 1 || projected[0] != 500 {
		t.Fatalf("shrink observers saw %v, want [500]", projected)
	}
	if err := b.SetDerating(1.5); err == nil {
		t.Fatal("derating 1.5 accepted")
	}
}

func TestScheduleAgingSteps(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	if err := ScheduleAging(events, b, AgingSchedule{
		Start:           sim.Time(sim.Millisecond),
		Interval:        sim.Millisecond,
		FractionPerStep: 0.1,
		Steps:           3,
	}); err != nil {
		t.Fatal(err)
	}
	// A driver that jumps the clock far past every step still observes
	// one step per interval: the schedule self-perpetuates at its own
	// scheduled times, and Steps bounds it at 3.
	events.RunUntil(clock, sim.Time(10*sim.Millisecond))
	want := 1000 * 0.9 * 0.9 * 0.9
	if got := b.NameplateJoules(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("nameplate after bounded schedule = %v, want %v", got, want)
	}
}

func TestScheduleAgingRunsShrinkObservers(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	var projected []float64
	b.OnShrink(func(_ *Battery, p float64) { projected = append(projected, p) })
	if err := ScheduleAging(events, b, AgingSchedule{
		Interval:        sim.Millisecond,
		FractionPerStep: 0.5,
		Steps:           2,
	}); err != nil {
		t.Fatal(err)
	}
	events.RunUntil(clock, sim.Time(5*sim.Millisecond))
	if len(projected) != 2 || projected[0] != 500 || projected[1] != 250 {
		t.Fatalf("shrink observers saw %v, want [500 250]", projected)
	}
}

func TestScheduleAgingValidation(t *testing.T) {
	events := sim.NewQueue()
	b := MustNew(Config{CapacityJoules: 1000})
	if err := ScheduleAging(events, b, AgingSchedule{Interval: 0, FractionPerStep: 0.1}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if err := ScheduleAging(events, b, AgingSchedule{Interval: sim.Millisecond, FractionPerStep: 1}); err == nil {
		t.Fatal("fraction 1 accepted")
	}
	if err := ScheduleAging(events, b, AgingSchedule{Interval: sim.Millisecond, FractionPerStep: -0.1}); err == nil {
		t.Fatal("negative fraction accepted")
	}
}
