package battery

import (
	"math"
	"testing"
	"testing/quick"

	"viyojit/internal/power"
)

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{CapacityJoules: 0},
		{CapacityJoules: -10},
		{CapacityJoules: 100, DepthOfDischarge: 1.5},
		{CapacityJoules: 100, DepthOfDischarge: -0.1},
		{CapacityJoules: 100, Derating: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestDefaultDepthOfDischarge(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000})
	// Paper §2.2: DoD 50 % halves the effective capacity.
	if b.EffectiveJoules() != 500 {
		t.Fatalf("effective = %v, want 500", b.EffectiveJoules())
	}
}

func TestDeratingCompounds(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 0.5, Derating: 0.7})
	if got := b.EffectiveJoules(); math.Abs(got-350) > 1e-9 {
		t.Fatalf("effective = %v, want 350", got)
	}
}

func TestSetCapacityNotifies(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000})
	var seen []float64
	b.OnChange(func(bb *Battery) { seen = append(seen, bb.EffectiveJoules()) })
	if err := b.SetCapacityJoules(600); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || seen[0] != 300 {
		t.Fatalf("onChange saw %v, want [300]", seen)
	}
	if err := b.SetCapacityJoules(0); err == nil {
		t.Fatal("SetCapacityJoules(0) succeeded")
	}
}

func TestAge(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000})
	if err := b.Age(0.2); err != nil {
		t.Fatal(err)
	}
	if b.NameplateJoules() != 800 {
		t.Fatalf("nameplate after 20%% ageing = %v", b.NameplateJoules())
	}
	if err := b.Age(1.0); err == nil {
		t.Fatal("Age(1.0) succeeded")
	}
	if err := b.Age(-0.1); err == nil {
		t.Fatal("Age(-0.1) succeeded")
	}
}

func TestDirtyBudgetPages(t *testing.T) {
	m := power.Default()
	const bw = 2 << 30 // 2 GB/s
	const dram = 64 << 30
	const pageSize = 4096

	// A battery provisioned for exactly 1 GiB of flush should budget
	// ~1 GiB / 4 KiB pages.
	j := JoulesForPages(m, (1<<30)/pageSize, bw, dram, pageSize)
	b := MustNew(Config{CapacityJoules: j, DepthOfDischarge: 1, Derating: 1})
	got := b.DirtyBudgetPages(m, bw, dram, pageSize)
	want := (1 << 30) / pageSize
	if math.Abs(float64(got-want)) > float64(want)/1e3 {
		t.Fatalf("budget = %d pages, want ~%d", got, want)
	}
}

func TestDirtyBudgetHalvedByDoD(t *testing.T) {
	m := power.Default()
	const bw, dram, ps = 2 << 30, 64 << 30, 4096
	full := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1})
	half := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 0.5})
	f, h := full.DirtyBudgetPages(m, bw, dram, ps), half.DirtyBudgetPages(m, bw, dram, ps)
	if h > f/2+1 || h < f/2-1 {
		t.Fatalf("DoD 0.5 budget = %d, want ~%d", h, f/2)
	}
}

func TestProvisionForRoundTrips(t *testing.T) {
	m := power.Default()
	const bw, dram, ps = 4 << 30, 4 << 40, 4096
	flushBytes := int64(32 << 30)
	cfg := ProvisionFor(m, flushBytes, bw, dram, 0.5, 0.8)
	b := MustNew(cfg)
	pages := b.DirtyBudgetPages(m, bw, dram, ps)
	wantPages := int(flushBytes / ps)
	if math.Abs(float64(pages-wantPages)) > float64(wantPages)/1e3 {
		t.Fatalf("provisioned budget = %d pages, want ~%d", pages, wantPages)
	}
}

// Property: the budget is monotone in battery capacity.
func TestBudgetMonotoneProperty(t *testing.T) {
	m := power.Default()
	f := func(a, b uint32) bool {
		ja, jb := float64(a%1_000_000)+1, float64(b%1_000_000)+1
		if ja > jb {
			ja, jb = jb, ja
		}
		ba := MustNew(Config{CapacityJoules: ja})
		bb := MustNew(Config{CapacityJoules: jb})
		return ba.DirtyBudgetPages(m, 2<<30, 64<<30, 4096) <= bb.DirtyBudgetPages(m, 2<<30, 64<<30, 4096)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
