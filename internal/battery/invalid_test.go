package battery

// Poisoned-input hardening: a telemetry or operator path handing the
// battery model NaN/Inf must get a typed error back, never a silent
// state change — EffectiveJoules feeds the dirty budget, and NaN there
// sails through every ordered comparison downstream.

import (
	"errors"
	"math"
	"testing"
)

func TestSetCapacityRejectsNonFinite(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	for _, j := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 0, -5} {
		if err := b.SetCapacityJoules(j); !errors.Is(err, ErrInvalid) {
			t.Errorf("SetCapacityJoules(%v) = %v, want ErrInvalid", j, err)
		}
	}
	if got := b.EffectiveJoules(); got != 1000 {
		t.Fatalf("effective joules %v after rejected updates, want untouched 1000", got)
	}
}

func TestSetDeratingRejectsNonFinite(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	for _, d := range []float64{math.NaN(), math.Inf(1), 0, -0.1, 1.5} {
		if err := b.SetDerating(d); !errors.Is(err, ErrInvalid) {
			t.Errorf("SetDerating(%v) = %v, want ErrInvalid", d, err)
		}
	}
	if got := b.EffectiveJoules(); got != 1000 {
		t.Fatalf("effective joules %v after rejected updates, want untouched 1000", got)
	}
}

func TestAgeRejectsNaN(t *testing.T) {
	b := MustNew(Config{CapacityJoules: 1000, DepthOfDischarge: 1, Derating: 1})
	for _, f := range []float64{math.NaN(), -0.1, 1, 2} {
		if err := b.Age(f); !errors.Is(err, ErrInvalid) {
			t.Errorf("Age(%v) = %v, want ErrInvalid", f, err)
		}
	}
}

func TestNewRejectsNonFiniteConfig(t *testing.T) {
	bad := []Config{
		{CapacityJoules: math.NaN()},
		{CapacityJoules: math.Inf(1)},
		{CapacityJoules: 100, DepthOfDischarge: math.NaN()},
		{CapacityJoules: 100, Derating: math.NaN()},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrInvalid) {
			t.Errorf("New(%+v) = %v, want ErrInvalid", cfg, err)
		}
	}
}
