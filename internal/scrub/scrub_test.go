package scrub

import (
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

type harness struct {
	clock  *sim.Clock
	events *sim.Queue
	region *nvdram.Region
	dev    *ssd.SSD
	mgr    *core.Manager
	scr    *Scrubber
}

func newHarness(t testing.TB, pages, budget int, cfg Config) *harness {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: int64(pages) * 4096})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	return &harness{clock: clock, events: events, region: region, dev: dev,
		mgr: mgr, scr: New(clock, events, dev, mgr, cfg)}
}

// seed dirties pages 0..n-1 through the fault path and drains every
// clean, leaving n intact durable pages.
func (h *harness) seed(t testing.TB, n int) {
	t.Helper()
	for p := 0; p < n; p++ {
		if err := h.region.WriteAt([]byte{byte(p + 1)}, int64(p)*4096); err != nil {
			t.Fatalf("write page %d: %v", p, err)
		}
		h.mgr.Pump()
	}
	h.mgr.FlushAll()
	if h.mgr.DirtyCount() != 0 {
		t.Fatalf("seed left %d dirty pages", h.mgr.DirtyCount())
	}
}

func TestScrubAllDetectsAndRepairs(t *testing.T) {
	h := newHarness(t, 8, 4, Config{})
	h.seed(t, 6)
	if !h.dev.CorruptPage(3, 42, 0xFF) {
		t.Fatal("nothing to corrupt")
	}
	if got := h.scr.ScrubAll(); got != 1 {
		t.Fatalf("ScrubAll detected %d corruptions, want 1", got)
	}
	st := h.scr.Stats()
	if st.Repairs != 1 || st.Quarantines != 0 {
		t.Fatalf("repairs=%d quarantines=%d, want 1/0", st.Repairs, st.Quarantines)
	}
	// The repair re-dirtied the page and kicked a clean; let it land.
	h.mgr.FlushAll()
	if err := h.dev.VerifyPage(3); err != nil {
		t.Fatalf("page still corrupt after repair: %v", err)
	}
	if h.scr.ScrubAll() != 0 {
		t.Fatal("second pass re-detected a repaired page")
	}
	if h.mgr.Stats().RepairRedirties != 1 {
		t.Fatalf("manager recorded %d repair re-dirties, want 1", h.mgr.Stats().RepairRedirties)
	}
}

// TestScrubRepairRespectsBudget fills the dirty set to the budget before
// scrubbing a corrupt clean page: the repair must force cleans to make
// room, never push dirty past the bound (the manager panics if it does).
func TestScrubRepairRespectsBudget(t *testing.T) {
	h := newHarness(t, 16, 2, Config{})
	h.seed(t, 8)
	// Fill the budget with fresh dirty pages.
	for p := 8; p < 10; p++ {
		if err := h.region.WriteAt([]byte{0xEE}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		h.mgr.Pump()
	}
	if h.mgr.DirtyCount() != 2 {
		t.Fatalf("dirty count %d, want budget-full 2", h.mgr.DirtyCount())
	}
	h.dev.CorruptPage(1, 0, 0x01)
	forcedBefore := h.mgr.Stats().ForcedCleans
	if got := h.scr.ScrubAll(); got != 1 {
		t.Fatalf("detected %d, want 1", got)
	}
	if h.mgr.DirtyCount() > 2 {
		t.Fatalf("repair pushed dirty count to %d, budget is 2", h.mgr.DirtyCount())
	}
	if h.mgr.Stats().ForcedCleans == forcedBefore {
		t.Fatal("repair admitted a page into a full budget without forcing a clean")
	}
	h.mgr.FlushAll()
	if err := h.dev.VerifyPage(1); err != nil {
		t.Fatalf("page still corrupt after budget-constrained repair: %v", err)
	}
}

func TestScrubQuarantineAndClear(t *testing.T) {
	h := newHarness(t, 8, 4, Config{DisableRepair: true})
	h.seed(t, 4)
	h.dev.CorruptPage(2, 7, 0x10)
	if h.scr.ScrubAll() != 1 {
		t.Fatal("corruption not detected")
	}
	if h.scr.QuarantineCount() != 1 {
		t.Fatalf("quarantine size %d, want 1", h.scr.QuarantineCount())
	}
	q := h.scr.Quarantine()
	if len(q) != 1 || q[0].Page != 2 || q[0].Reason == "" {
		t.Fatalf("quarantine record %+v", q)
	}
	// Re-detection of the same page counts Requarantine, not Detections.
	if h.scr.ScrubAll() != 0 {
		t.Fatal("quarantined page counted as a fresh detection")
	}
	if h.scr.Stats().Requarantine == 0 {
		t.Fatal("re-scan of a quarantined page not recorded")
	}
	// An application rewrite re-cleans the page; the next pass clears it.
	if err := h.region.WriteAt([]byte{0x55}, 2*4096); err != nil {
		t.Fatal(err)
	}
	h.mgr.Pump()
	h.mgr.FlushAll()
	h.scr.ScrubAll()
	if h.scr.QuarantineCount() != 0 || h.scr.Stats().Cleared != 1 {
		t.Fatalf("quarantine not cleared after rewrite: count=%d cleared=%d",
			h.scr.QuarantineCount(), h.scr.Stats().Cleared)
	}
}

// TestScrubBackgroundPacing runs the paced background scan on the sim
// clock: bursts fire at the bandwidth-share cadence, the walk completes
// passes, and a corruption planted mid-run is detected with a positive
// mean time to detect.
func TestScrubBackgroundPacing(t *testing.T) {
	h := newHarness(t, 16, 4, Config{BandwidthShare: 0.5, BurstPages: 4})
	h.seed(t, 12)
	h.scr.Start()
	if !h.scr.Running() {
		t.Fatal("scrubber not running after Start")
	}
	h.dev.CorruptPage(9, 100, 0x42)
	for i := 0; i < 400 && h.scr.Stats().Detections == 0; i++ {
		h.clock.Advance(10 * sim.Microsecond)
		h.mgr.Pump()
	}
	st := h.scr.Stats()
	if st.Detections != 1 {
		t.Fatalf("background scan never detected the corruption: %+v", st)
	}
	if st.Bursts == 0 || st.PagesScanned == 0 {
		t.Fatalf("no paced bursts ran: %+v", st)
	}
	if st.MTTD() <= 0 {
		t.Fatalf("MTTD = %v, want > 0 (oracle knew the corruption time)", st.MTTD())
	}
	// Let the run continue: the walk must wrap into full passes.
	for i := 0; i < 400 && h.scr.Stats().Passes == 0; i++ {
		h.clock.Advance(10 * sim.Microsecond)
		h.mgr.Pump()
	}
	if h.scr.Stats().Passes == 0 {
		t.Fatal("scan never completed a pass")
	}
	h.scr.Stop()
	if h.scr.Running() {
		t.Fatal("scrubber still running after Stop")
	}
	before := h.scr.Stats().Bursts
	h.clock.Advance(10 * sim.Millisecond)
	h.mgr.Pump()
	if h.scr.Stats().Bursts != before {
		t.Fatal("bursts kept firing after Stop")
	}
}

// TestScrubVerifyOnly: a scrubber with no manager quarantines instead of
// repairing — the standalone-device configuration.
func TestScrubVerifyOnly(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	dev := ssd.New(clock, events, ssd.Config{})
	data := make([]byte, 4096)
	for p := mmu.PageID(0); p < 3; p++ {
		if _, err := dev.WritePageSync(p, data); err != nil {
			t.Fatal(err)
		}
	}
	scr := New(clock, events, dev, nil, Config{})
	dev.CorruptPage(1, 0, 0x04)
	if scr.ScrubAll() != 1 {
		t.Fatal("corruption not detected")
	}
	if scr.QuarantineCount() != 1 || scr.Stats().Repairs != 0 {
		t.Fatalf("verify-only scrubber did not quarantine: %+v", scr.Stats())
	}
	det, q := scr.ScrubErrors()
	if det != 1 || q != 1 {
		t.Fatalf("ScrubErrors = (%d, %d), want (1, 1)", det, q)
	}
}
