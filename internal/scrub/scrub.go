// Package scrub is the background integrity scrubber for the durable
// store. Viyojit's guarantee — everything outside the dirty budget is
// already durable on the SSD — is only as good as the SSD's bytes, and
// silent corruption (bit rot at rest, lost and misdirected writes)
// degrades them without any error ever reaching the host. The scrubber
// closes that gap: it walks the durable page set on the simulation
// clock at a configurable share of the device's read bandwidth,
// verifies every page against its recorded checksum, and acts on what
// it finds.
//
//   - Repairable: the page's authoritative copy lives in NV-DRAM (the
//     region is the source of truth for every page it covers). The
//     scrubber asks the core manager for a forced re-clean
//     (Manager.RepairPage) — a budget-enforced re-dirty plus immediate
//     clean, so `dirty ≤ budget` holds even mid-repair and the rewrite
//     flows through the normal clean path with all its retry and
//     accounting machinery.
//   - Unrepairable: the manager is closed, writes are blocked by the
//     degradation ladder, or the page lies outside the region. The page
//     is quarantined and reported — never silently left to be restored
//     as good data.
//
// Detection feeds internal/health: fresh scrub detections are a ladder
// escalation signal alongside clean-error streaks and budget shortfall.
//
// The scrubber charges no global clock time for verification itself (a
// real scrubber's reads compete for device bandwidth, not for the
// host's CPU); its bandwidth share is modelled purely by pacing — each
// burst of pages is followed by the idle gap that pins the scan rate to
// share × read bandwidth.
package scrub

import (
	"sort"

	"viyojit/internal/core"
	"viyojit/internal/mmu"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// Config parameterises the scrubber.
type Config struct {
	// BandwidthShare is the fraction of the device's read bandwidth the
	// background scan may consume, modelled by pacing. 0 selects 0.05;
	// the share must stay in (0, 1].
	BandwidthShare float64
	// BurstPages is the number of pages verified per scan burst. 0
	// selects 8.
	BurstPages int
	// DisableRepair makes the scrubber detect-and-quarantine only —
	// measurement runs use it to observe raw corruption accumulation.
	DisableRepair bool
	// Obs is the observability registry the scrubber mirrors its
	// counters onto and records burst spans through. nil disables the
	// mirror (Stats still works).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.BandwidthShare == 0 {
		c.BandwidthShare = 0.05
	}
	if c.BurstPages == 0 {
		c.BurstPages = 8
	}
	return c
}

// Quarantined records one page the scrubber detected as corrupt and
// could not repair.
type Quarantined struct {
	Page   mmu.PageID
	At     sim.Time // detection time
	Reason string   // why repair was not possible
}

// Stats counts scrubber activity since construction.
type Stats struct {
	Bursts       uint64
	PagesScanned uint64
	Passes       uint64 // complete walks of the durable set
	Detections   uint64 // checksum failures found
	Repairs      uint64 // clean pages re-dirtied and resubmitted
	RepairKicks  uint64 // dirty pages whose pending clean was kicked early
	Quarantines  uint64 // detections with no repair path
	Requarantine uint64 // re-detections of already-quarantined pages
	Cleared      uint64 // quarantined pages found intact again (overwritten)

	// TotalDetectLatency sums, over detections with a known corruption
	// time, the gap between corruption and detection — the numerator of
	// mean time to detect.
	TotalDetectLatency sim.Duration
	timedDetections    uint64
}

// MTTD returns the mean time from corruption to detection over the
// detections whose corruption time the oracle knew (0 with none).
func (s Stats) MTTD() sim.Duration {
	if s.timedDetections == 0 {
		return 0
	}
	return s.TotalDetectLatency / sim.Duration(s.timedDetections)
}

// Scrubber walks the durable set verifying checksums. It is not safe
// for concurrent use; everything runs on the owning simulation's
// goroutine.
type Scrubber struct {
	clock  *sim.Clock
	events *sim.Queue
	dev    *ssd.SSD
	mgr    *core.Manager // nil = verify/quarantine only
	cfg    Config

	cursor     mmu.PageID // walk position: next burst starts above this page
	started    bool       // cursor is meaningful (mid-pass)
	running    bool
	inBurst    bool // re-entrancy guard: RepairPage pumps events
	next       *sim.Event
	quarantine map[mmu.PageID]Quarantined
	stats      Stats

	// Registry mirror (nil-safe: a scrubber without Config.Obs records
	// into nil instruments, which no-op). The Stats struct stays the
	// source of truth; the instruments expose the same counts on the
	// system-wide registry plus the quarantine level as a gauge.
	st instruments
	tr *obs.Tracer
}

type instruments struct {
	bursts       *obs.Counter
	pagesScanned *obs.Counter
	passes       *obs.Counter
	detections   *obs.Counter
	repairs      *obs.Counter
	repairKicks  *obs.Counter
	quarantines  *obs.Counter
	cleared      *obs.Counter
	quarantined  *obs.Gauge
}

func newInstruments(r *obs.Registry) instruments {
	if r == nil {
		return instruments{}
	}
	return instruments{
		bursts:       r.Counter("scrub_bursts_total"),
		pagesScanned: r.Counter("scrub_pages_scanned_total"),
		passes:       r.Counter("scrub_passes_total"),
		detections:   r.Counter("scrub_detections_total"),
		repairs:      r.Counter("scrub_repairs_total"),
		repairKicks:  r.Counter("scrub_repair_kicks_total"),
		quarantines:  r.Counter("scrub_quarantines_total"),
		cleared:      r.Counter("scrub_cleared_total"),
		quarantined:  r.Gauge("scrub_quarantined_pages"),
	}
}

// New creates a scrubber over dev, repairing through mgr (nil for a
// verify-only scrubber). It does not start scanning; call Start.
func New(clock *sim.Clock, events *sim.Queue, dev *ssd.SSD, mgr *core.Manager, cfg Config) *Scrubber {
	cfg = cfg.withDefaults()
	return &Scrubber{
		clock:      clock,
		events:     events,
		dev:        dev,
		mgr:        mgr,
		cfg:        cfg,
		quarantine: make(map[mmu.PageID]Quarantined),
		st:         newInstruments(cfg.Obs),
		tr:         cfg.Obs.Tracer(),
	}
}

// Config returns the effective (defaulted) configuration.
func (s *Scrubber) Config() Config { return s.cfg }

// Stats returns a snapshot of the counters.
func (s *Scrubber) Stats() Stats { return s.stats }

// Quarantine returns the currently quarantined pages, sorted.
func (s *Scrubber) Quarantine() []Quarantined {
	out := make([]Quarantined, 0, len(s.quarantine))
	for _, q := range s.quarantine {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Page < out[j].Page })
	return out
}

// QuarantineCount returns the number of quarantined pages.
func (s *Scrubber) QuarantineCount() int { return len(s.quarantine) }

// Running reports whether the background scan is armed.
func (s *Scrubber) Running() bool { return s.running }

// burstGap is the pacing interval that pins the scan rate to
// share × read bandwidth: the virtual time a burst's reads would occupy
// on the device, stretched by 1/share.
func (s *Scrubber) burstGap() sim.Duration {
	bytes := int64(s.cfg.BurstPages) * int64(s.dev.Config().PageSize)
	seconds := float64(bytes) / (s.cfg.BandwidthShare * float64(s.dev.Config().ReadBandwidth))
	return sim.Duration(seconds * float64(sim.Second))
}

// Start arms the background scan; the first burst fires one pacing gap
// from now. Starting a running scrubber is a no-op.
func (s *Scrubber) Start() {
	if s.running {
		return
	}
	s.running = true
	s.scheduleNext()
}

// Stop cancels the background scan (a synchronous ScrubAll still works).
func (s *Scrubber) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.next != nil {
		s.events.Cancel(s.next)
		s.next = nil
	}
}

func (s *Scrubber) scheduleNext() {
	s.next = s.events.Schedule(s.clock.Now().Add(s.burstGap()), s.burstEvent)
}

// burstEvent is one paced scan step. It skips (but keeps the cadence)
// while writes are blocked — during an emergency drain or power-fail
// flush every divergence is about to be overwritten, and quarantining
// mid-flush would report pages the flush is busy fixing — and while a
// nested burst is already on the stack (RepairPage pumps the event
// queue, which can fire the next scheduled burst).
func (s *Scrubber) burstEvent(sim.Time) {
	if !s.running {
		return
	}
	if s.mgr != nil && s.mgr.Closed() {
		// Detached manager: the system is shutting down or crashed;
		// stop rather than quarantine everything the flush wrote.
		s.running = false
		s.next = nil
		return
	}
	if s.inBurst || (s.mgr != nil && s.mgr.WritesBlocked()) {
		s.scheduleNext()
		return
	}
	s.inBurst = true
	s.stats.Bursts++
	s.st.bursts.Inc()
	sp := s.tr.Begin("scrub.burst", s.clock.Now())
	detBefore := s.stats.Detections
	s.scanBurst()
	code := "ok"
	if s.stats.Detections > detBefore {
		code = "detect"
	}
	s.tr.Finish(sp, s.clock.Now(), code)
	s.inBurst = false
	s.scheduleNext()
}

// scanBurst verifies the next BurstPages pages of the walk.
func (s *Scrubber) scanBurst() {
	pages := s.dev.DurablePageList()
	if len(pages) == 0 {
		return
	}
	// Resume above the cursor; wrap (completing the pass) when the tail
	// is shorter than the burst.
	start := 0
	if s.started {
		start = sort.Search(len(pages), func(i int) bool { return pages[i] > s.cursor })
	}
	s.started = true
	for n := 0; n < s.cfg.BurstPages; n++ {
		if start >= len(pages) {
			s.stats.Passes++
			s.st.passes.Inc()
			start = 0
			if n > 0 {
				break // don't re-scan pages within one burst
			}
		}
		p := pages[start]
		start++
		s.cursor = p
		s.checkPage(p)
	}
}

// ScrubAll runs one full synchronous pass over the durable set,
// ignoring pacing — the on-demand scrub viyojit.Scrub exposes. It
// returns the number of detections this pass.
func (s *Scrubber) ScrubAll() uint64 {
	if s.inBurst {
		return 0
	}
	s.inBurst = true
	defer func() { s.inBurst = false }()
	before := s.stats.Detections
	for _, p := range s.dev.DurablePageList() {
		s.checkPage(p)
	}
	s.stats.Passes++
	s.st.passes.Inc()
	return s.stats.Detections - before
}

// checkPage verifies one page and repairs or quarantines on mismatch.
func (s *Scrubber) checkPage(page mmu.PageID) {
	s.stats.PagesScanned++
	s.st.pagesScanned.Inc()
	if err := s.dev.VerifyPage(page); err == nil {
		if _, wasQ := s.quarantine[page]; wasQ {
			// A later application write re-cleaned the page; the durable
			// copy is good again.
			delete(s.quarantine, page)
			s.stats.Cleared++
			s.st.cleared.Inc()
			s.st.quarantined.Set(int64(len(s.quarantine)))
		}
		return
	}
	if _, wasQ := s.quarantine[page]; wasQ {
		s.stats.Requarantine++
		return
	}
	s.stats.Detections++
	s.st.detections.Inc()
	if at, known := s.dev.CorruptedSince(page); known {
		s.stats.TotalDetectLatency += s.clock.Now().Sub(at)
		s.stats.timedDetections++
	}

	if s.cfg.DisableRepair {
		s.quarantinePage(page, "repair disabled")
		return
	}
	if s.mgr == nil {
		s.quarantinePage(page, "no manager to repair through")
		return
	}
	dirtyBefore := s.mgr.IsDirty(page)
	if err := s.mgr.RepairPage(page); err != nil {
		s.quarantinePage(page, err.Error())
		return
	}
	if dirtyBefore {
		s.stats.RepairKicks++
		s.st.repairKicks.Inc()
	} else {
		s.stats.Repairs++
		s.st.repairs.Inc()
	}
}

func (s *Scrubber) quarantinePage(page mmu.PageID, reason string) {
	s.stats.Quarantines++
	s.st.quarantines.Inc()
	s.quarantine[page] = Quarantined{Page: page, At: s.clock.Now(), Reason: reason}
	s.st.quarantined.Set(int64(len(s.quarantine)))
}

// ScrubErrors implements the health monitor's scrub-signal interface:
// cumulative detections and the current quarantine size.
func (s *Scrubber) ScrubErrors() (detections uint64, quarantined int) {
	return s.stats.Detections, len(s.quarantine)
}
