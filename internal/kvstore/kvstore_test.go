package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"viyojit/internal/pheap"
	"viyojit/internal/sim"
)

// memStore mirrors the pheap test store.
type memStore struct{ data []byte }

func newMemStore(size int) *memStore { return &memStore{data: make([]byte, size)} }

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(m.data[off:], p)
	return nil
}

func newTestStore(t testing.TB, heapBytes, buckets int) (*Store, *memStore) {
	t.Helper()
	ms := newMemStore(heapBytes)
	heap, err := pheap.Format(ms)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Create(heap, buckets)
	if err != nil {
		t.Fatal(err)
	}
	return s, ms
}

func TestPutGetRoundTrip(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 64)
	if err := s.Put([]byte("user1"), []byte("alice")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("user1"))
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if string(v) != "alice" {
		t.Fatalf("value = %q", v)
	}
}

func TestGetMiss(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 64)
	_, ok, err := s.Get([]byte("absent"))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("miss reported as hit")
	}
}

func TestUpdateInPlace(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 64)
	if err := s.Put([]byte("k"), []byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("k"), []byte("bb")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Get([]byte("k"))
	if !ok || string(v) != "bb" {
		t.Fatalf("after shrink update: %q ok=%v", v, ok)
	}
	n, _ := s.Len()
	if n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
	if s.Stats().Updates != 1 || s.Stats().Inserts != 1 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}

func TestUpdateGrowsRecord(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 64)
	if err := s.Put([]byte("k"), []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 500)
	if err := s.Put([]byte("k"), big); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := s.Get([]byte("k"))
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("grown value lost")
	}
	n, _ := s.Len()
	if n != 1 {
		t.Fatalf("len = %d after grow", n)
	}
}

func TestDelete(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 8)
	for i := 0; i < 20; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := s.Delete([]byte("key7"))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, ok, _ := s.Get([]byte("key7")); ok {
		t.Fatal("deleted key still present")
	}
	// Other keys in the same bucket survive.
	for i := 0; i < 20; i++ {
		if i == 7 {
			continue
		}
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("key%d", i))); !ok {
			t.Fatalf("key%d lost after unrelated delete", i)
		}
	}
	n, _ := s.Len()
	if n != 19 {
		t.Fatalf("len = %d, want 19", n)
	}
	if ok, _ := s.Delete([]byte("key7")); ok {
		t.Fatal("double delete reported success")
	}
}

func TestReadModifyWrite(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 8)
	if err := s.Put([]byte("ctr"), []byte{5}); err != nil {
		t.Fatal(err)
	}
	ok, err := s.ReadModifyWrite([]byte("ctr"), func(old []byte) []byte {
		return []byte{old[0] + 1}
	})
	if err != nil || !ok {
		t.Fatalf("rmw: %v %v", ok, err)
	}
	v, _, _ := s.Get([]byte("ctr"))
	if v[0] != 6 {
		t.Fatalf("counter = %d, want 6", v[0])
	}
	if ok, _ := s.ReadModifyWrite([]byte("none"), func(b []byte) []byte { return b }); ok {
		t.Fatal("rmw on absent key reported success")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, _ := newTestStore(t, 1<<20, 8)
	if err := s.Put(nil, []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestChainCollisions(t *testing.T) {
	// One bucket forces every key onto a single chain.
	s, _ := newTestStore(t, 1<<20, 1)
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := s.Get([]byte(fmt.Sprintf("key-%03d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("val-%03d", i) {
			t.Fatalf("key %d: %q ok=%v err=%v", i, v, ok, err)
		}
	}
	if s.Stats().ChainSteps == 0 {
		t.Fatal("no chain traversal recorded on a single-bucket store")
	}
}

func TestGetTouchesMetadata(t *testing.T) {
	// The access-clock write on the read path is what makes YCSB-C dirty
	// pages in the paper; assert the underlying store sees writes from a
	// pure Get.
	s, ms := newTestStore(t, 1<<20, 8)
	if err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	snapshot := make([]byte, len(ms.data))
	copy(snapshot, ms.data)
	if _, ok, _ := s.Get([]byte("k")); !ok {
		t.Fatal("get missed")
	}
	if bytes.Equal(snapshot, ms.data) {
		t.Fatal("Get performed no stores; Redis metadata behaviour not modelled")
	}
}

func TestCreateValidation(t *testing.T) {
	ms := newMemStore(1 << 20)
	heap, _ := pheap.Format(ms)
	if _, err := Create(heap, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestOpenRecoversStore(t *testing.T) {
	ms := newMemStore(1 << 20)
	heap, _ := pheap.Format(ms)
	s1, err := Create(heap, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s1.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate recovery: reopen the heap and store from raw bytes.
	heap2, err := pheap.Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(heap2)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := s2.Len()
	if n != 10 {
		t.Fatalf("recovered len = %d, want 10", n)
	}
	for i := 0; i < 10; i++ {
		v, ok, err := s2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered k%d = %q ok=%v err=%v", i, v, ok, err)
		}
	}
}

func TestOpenWithoutRootFails(t *testing.T) {
	ms := newMemStore(1 << 20)
	heap, _ := pheap.Format(ms)
	if _, err := Open(heap); err == nil {
		t.Fatal("Open on rootless heap succeeded")
	}
}

func TestManyBucketsMultiSegment(t *testing.T) {
	// More buckets than one segment holds (8192) forces the multi-segment
	// directory path.
	s, _ := newTestStore(t, 1<<22, 10000)
	for i := 0; i < 200; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		if _, ok, _ := s.Get([]byte(fmt.Sprintf("key%d", i))); !ok {
			t.Fatalf("key%d lost in multi-segment store", i)
		}
	}
}

// Property: the store agrees with a map shadow under arbitrary op
// sequences.
func TestShadowMapProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		s, _ := newTestStore(t, 1<<22, 64)
		rng := sim.NewRNG(seed)
		shadow := map[string]string{}
		keys := make([]string, 30)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", i)
		}
		for i := 0; i < int(steps)%200+1; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(4) {
			case 0, 1: // put
				v := fmt.Sprintf("val-%d", rng.Intn(1000))
				if s.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				shadow[k] = v
			case 2: // get
				v, ok, err := s.Get([]byte(k))
				if err != nil {
					return false
				}
				want, wantOK := shadow[k]
				if ok != wantOK || (ok && string(v) != want) {
					return false
				}
			case 3: // delete
				ok, err := s.Delete([]byte(k))
				if err != nil {
					return false
				}
				_, wantOK := shadow[k]
				if ok != wantOK {
					return false
				}
				delete(shadow, k)
			}
		}
		n, err := s.Len()
		if err != nil {
			return false
		}
		return int(n) == len(shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestForEach(t *testing.T) {
	s, _ := newTestStore(t, 1<<21, 64)
	want := map[string]string{}
	for i := 0; i < 100; i++ {
		k, v := fmt.Sprintf("key%03d", i), fmt.Sprintf("val%03d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	got := map[string]string{}
	if err := s.ForEach(func(k, v []byte) error {
		got[string(k)] = string(v)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("walked %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("record %s = %q, want %q", k, got[k], v)
		}
	}
	// Abort propagates.
	boom := errors.New("stop")
	if err := s.ForEach(func(k, v []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("abort error = %v", err)
	}
}
