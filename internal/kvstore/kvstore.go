// Package kvstore is a Redis-like in-memory key-value store whose keys,
// values, and metadata all live in a persistent heap on NV-DRAM — the
// role the paper's modified Redis plays in the evaluation (§6.1).
//
// Faithfulness notes that matter for the experiments:
//
//   - Every structure (bucket directory, hash chains, records) is stored
//     in the heap, so every operation's metadata updates dirty NV-DRAM
//     pages through Viyojit's fault path.
//   - Reads update per-record access metadata (Redis's LRU clock), which
//     is why the paper observes stores — and Viyojit overhead — even
//     under the nominally read-only YCSB-C (§6.2).
//   - After a power failure, Open over the recovered heap finds all data
//     again: the store starts warm, the paper's headline motivation.
package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"viyojit/internal/pheap"
)

const (
	// bucketsPerSegment bounds one bucket-array allocation to the heap's
	// maximum block size (8 KiB of pointers).
	bucketsPerSegment = pheap.MaxAlloc / 8

	// Root block layout: [nBuckets u64][count u64][accessClock u64]
	// [segment pointers ...].
	rootHeaderSize = 24

	// Entry block layout: [next u64][meta u64][keyLen u32][valLen u32]
	// [key bytes][value bytes].
	entryHeaderSize = 24
)

// DefaultMetaInterval is how many hits pass between per-entry metadata
// writes on the read path. Redis's LRU clock has coarse (seconds)
// resolution, so a hot entry's lru field is rewritten on only a small
// fraction of its accesses; the interval models that. The global access
// clock (one hot page) is still written on every hit.
const DefaultMetaInterval = 16

// Store is the KV store handle. It is not safe for concurrent use.
type Store struct {
	heap     *pheap.Heap
	root     pheap.Ptr
	nBuckets uint64
	segments []pheap.Ptr

	metaInterval uint64
	stats        Stats
}

// SetMetaInterval overrides how often reads write per-entry metadata: an
// entry's meta field is written on every k-th hit (k=1 writes on every
// hit, the conservative extreme; k=0 resets to the default).
func (s *Store) SetMetaInterval(k int) {
	if k <= 0 {
		s.metaInterval = DefaultMetaInterval
		return
	}
	s.metaInterval = uint64(k)
}

// Stats counts store operations since the handle was created.
type Stats struct {
	Gets       uint64
	Hits       uint64
	Puts       uint64
	Inserts    uint64 // subset of Puts that created a record
	Updates    uint64 // subset of Puts that replaced a value
	Deletes    uint64
	ChainSteps uint64 // hash-chain links traversed
}

// Create formats a store with nBuckets hash buckets inside an
// already-formatted heap and records it as the heap root.
func Create(heap *pheap.Heap, nBuckets int) (*Store, error) {
	if nBuckets <= 0 {
		return nil, fmt.Errorf("kvstore: nBuckets %d must be positive", nBuckets)
	}
	nSegs := (nBuckets + bucketsPerSegment - 1) / bucketsPerSegment
	root, err := heap.Alloc(rootHeaderSize + 8*nSegs)
	if err != nil {
		return nil, fmt.Errorf("kvstore: allocating root: %w", err)
	}
	s := &Store{heap: heap, root: root, nBuckets: uint64(nBuckets), metaInterval: DefaultMetaInterval}
	var hdr [rootHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(nBuckets))
	binary.LittleEndian.PutUint64(hdr[8:], 0)  // count
	binary.LittleEndian.PutUint64(hdr[16:], 0) // access clock
	if err := heap.Write(root, 0, hdr[:]); err != nil {
		return nil, err
	}
	s.segments = make([]pheap.Ptr, nSegs)
	for i := range s.segments {
		segBuckets := bucketsPerSegment
		if i == nSegs-1 {
			segBuckets = nBuckets - i*bucketsPerSegment
		}
		seg, err := heap.Alloc(8 * segBuckets)
		if err != nil {
			return nil, fmt.Errorf("kvstore: allocating bucket segment %d: %w", i, err)
		}
		// Zero the segment: reused heap blocks may hold stale bytes.
		zero := make([]byte, 8*segBuckets)
		if err := heap.Write(seg, 0, zero); err != nil {
			return nil, err
		}
		s.segments[i] = seg
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], uint64(seg))
		if err := heap.Write(root, rootHeaderSize+8*i, p[:]); err != nil {
			return nil, err
		}
	}
	if err := heap.SetRoot(root); err != nil {
		return nil, err
	}
	return s, nil
}

// Open attaches to the store recorded as the heap's root — the recovery
// path after a power cycle.
func Open(heap *pheap.Heap) (*Store, error) {
	root, err := heap.Root()
	if err != nil {
		return nil, err
	}
	if root == 0 {
		return nil, fmt.Errorf("kvstore: heap has no root; use Create")
	}
	var hdr [rootHeaderSize]byte
	if err := heap.Read(root, 0, hdr[:]); err != nil {
		return nil, err
	}
	nBuckets := binary.LittleEndian.Uint64(hdr[0:])
	if nBuckets == 0 {
		return nil, fmt.Errorf("kvstore: corrupt root: zero buckets")
	}
	s := &Store{heap: heap, root: root, nBuckets: nBuckets, metaInterval: DefaultMetaInterval}
	nSegs := (int(nBuckets) + bucketsPerSegment - 1) / bucketsPerSegment
	s.segments = make([]pheap.Ptr, nSegs)
	for i := range s.segments {
		var p [8]byte
		if err := heap.Read(root, rootHeaderSize+8*i, p[:]); err != nil {
			return nil, err
		}
		s.segments[i] = pheap.Ptr(binary.LittleEndian.Uint64(p[:]))
	}
	return s, nil
}

// Stats returns a snapshot of the operation counters.
func (s *Store) Stats() Stats { return s.stats }

// hashKey is FNV-1a over the key bytes.
func hashKey(key []byte) uint64 {
	h := uint64(0xCBF29CE484222325)
	for _, b := range key {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return h
}

// bucketLoc returns the segment pointer and byte offset holding the
// chain-head pointer for key.
func (s *Store) bucketLoc(key []byte) (pheap.Ptr, int) {
	b := hashKey(key) % s.nBuckets
	return s.segments[b/bucketsPerSegment], int(b%bucketsPerSegment) * 8
}

func (s *Store) readPtr(block pheap.Ptr, off int) (pheap.Ptr, error) {
	var buf [8]byte
	if err := s.heap.Read(block, off, buf[:]); err != nil {
		return 0, err
	}
	return pheap.Ptr(binary.LittleEndian.Uint64(buf[:])), nil
}

func (s *Store) writePtr(block pheap.Ptr, off int, p pheap.Ptr) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(p))
	return s.heap.Write(block, off, buf[:])
}

// entryMeta reads an entry's header fields.
func (s *Store) entryHeader(e pheap.Ptr) (next pheap.Ptr, keyLen, valLen int, err error) {
	var hdr [entryHeaderSize]byte
	if err = s.heap.Read(e, 0, hdr[:]); err != nil {
		return
	}
	next = pheap.Ptr(binary.LittleEndian.Uint64(hdr[0:]))
	keyLen = int(binary.LittleEndian.Uint32(hdr[16:]))
	valLen = int(binary.LittleEndian.Uint32(hdr[20:]))
	return
}

// findEntry walks key's chain, returning the entry, its predecessor link
// location (block + offset of the pointer to the entry), and the value
// length. found is false on miss.
func (s *Store) findEntry(key []byte) (entry pheap.Ptr, prevBlock pheap.Ptr, prevOff int, valLen int, found bool, err error) {
	segPtr, off := s.bucketLoc(key)
	prevBlock, prevOff = segPtr, off
	cur, err := s.readPtr(segPtr, off)
	if err != nil {
		return 0, 0, 0, 0, false, err
	}
	for cur != 0 {
		s.stats.ChainSteps++
		next, kl, vl, err := s.entryHeader(cur)
		if err != nil {
			return 0, 0, 0, 0, false, err
		}
		if kl == len(key) {
			kbuf := make([]byte, kl)
			if err := s.heap.Read(cur, entryHeaderSize, kbuf); err != nil {
				return 0, 0, 0, 0, false, err
			}
			if bytes.Equal(kbuf, key) {
				return cur, prevBlock, prevOff, vl, true, nil
			}
		}
		prevBlock, prevOff = cur, 0 // next pointer lives at entry offset 0
		cur = next
	}
	return 0, prevBlock, prevOff, 0, false, nil
}

// touch updates access metadata on a hit — the Redis bookkeeping that
// makes even pure reads store into NV-DRAM (paper §6.1 on YCSB-C). The
// global access clock (one hot page) is written on every hit; the
// per-entry meta field only on every metaInterval-th hit, modelling
// Redis's coarse-resolution LRU clock.
func (s *Store) touch(entry pheap.Ptr) error {
	var clk [8]byte
	if err := s.heap.Read(s.root, 16, clk[:]); err != nil {
		return err
	}
	c := binary.LittleEndian.Uint64(clk[:]) + 1
	binary.LittleEndian.PutUint64(clk[:], c)
	if err := s.heap.Write(s.root, 16, clk[:]); err != nil {
		return err
	}
	if s.metaInterval <= 1 || s.stats.Hits%s.metaInterval == 1 {
		return s.heap.Write(entry, 8, clk[:]) // entry meta = current clock
	}
	return nil
}

// Get returns a copy of key's value, or ok=false on miss. A hit writes
// access metadata (see touch).
func (s *Store) Get(key []byte) (value []byte, ok bool, err error) {
	s.stats.Gets++
	entry, _, _, valLen, found, err := s.findEntry(key)
	if err != nil || !found {
		return nil, false, err
	}
	s.stats.Hits++
	value = make([]byte, valLen)
	if err := s.heap.Read(entry, entryHeaderSize+len(key), value); err != nil {
		return nil, false, err
	}
	if err := s.touch(entry); err != nil {
		return nil, false, err
	}
	return value, true, nil
}

// Put stores value under key, inserting or updating as needed.
func (s *Store) Put(key, value []byte) error {
	s.stats.Puts++
	if len(key) == 0 {
		return fmt.Errorf("kvstore: empty key")
	}
	entry, prevBlock, prevOff, _, found, err := s.findEntry(key)
	if err != nil {
		return err
	}
	if found {
		s.stats.Updates++
		usable, err := s.heap.UsableSize(entry)
		if err != nil {
			return err
		}
		if entryHeaderSize+len(key)+len(value) <= usable {
			// In-place update: rewrite value bytes and length.
			if err := s.heap.Write(entry, entryHeaderSize+len(key), value); err != nil {
				return err
			}
			var vl [4]byte
			binary.LittleEndian.PutUint32(vl[:], uint32(len(value)))
			if err := s.heap.Write(entry, 20, vl[:]); err != nil {
				return err
			}
			return s.touch(entry)
		}
		// Grow: allocate a replacement, splice it in, free the old.
		next, err := s.readPtr(entry, 0)
		if err != nil {
			return err
		}
		newEntry, err := s.writeEntry(next, key, value)
		if err != nil {
			return err
		}
		if err := s.writePtr(prevBlock, prevOff, newEntry); err != nil {
			return err
		}
		return s.heap.Free(entry)
	}
	// Insert at chain head.
	s.stats.Inserts++
	segPtr, off := s.bucketLoc(key)
	head, err := s.readPtr(segPtr, off)
	if err != nil {
		return err
	}
	newEntry, err := s.writeEntry(head, key, value)
	if err != nil {
		return err
	}
	if err := s.writePtr(segPtr, off, newEntry); err != nil {
		return err
	}
	return s.adjustCount(+1)
}

// writeEntry allocates and fills a new entry block.
func (s *Store) writeEntry(next pheap.Ptr, key, value []byte) (pheap.Ptr, error) {
	total := entryHeaderSize + len(key) + len(value)
	entry, err := s.heap.Alloc(total)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint64(buf[0:], uint64(next))
	binary.LittleEndian.PutUint64(buf[8:], 0) // meta
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[20:], uint32(len(value)))
	copy(buf[entryHeaderSize:], key)
	copy(buf[entryHeaderSize+len(key):], value)
	if err := s.heap.Write(entry, 0, buf); err != nil {
		return 0, err
	}
	return entry, nil
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key []byte) (bool, error) {
	s.stats.Deletes++
	entry, prevBlock, prevOff, _, found, err := s.findEntry(key)
	if err != nil || !found {
		return false, err
	}
	next, err := s.readPtr(entry, 0)
	if err != nil {
		return false, err
	}
	if err := s.writePtr(prevBlock, prevOff, next); err != nil {
		return false, err
	}
	if err := s.heap.Free(entry); err != nil {
		return false, err
	}
	return true, s.adjustCount(-1)
}

// ReadModifyWrite reads key's value, applies fn, and stores the result —
// YCSB-F's operation. It returns ok=false (without calling fn) on miss.
func (s *Store) ReadModifyWrite(key []byte, fn func(old []byte) []byte) (bool, error) {
	value, ok, err := s.Get(key)
	if err != nil || !ok {
		return false, err
	}
	return true, s.Put(key, fn(value))
}

// Len returns the number of records.
func (s *Store) Len() (uint64, error) {
	var buf [8]byte
	if err := s.heap.Read(s.root, 8, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (s *Store) adjustCount(delta int64) error {
	var buf [8]byte
	if err := s.heap.Read(s.root, 8, buf[:]); err != nil {
		return err
	}
	c := binary.LittleEndian.Uint64(buf[:])
	c = uint64(int64(c) + delta)
	binary.LittleEndian.PutUint64(buf[:], c)
	return s.heap.Write(s.root, 8, buf[:])
}

// ForEach invokes fn for every record (in unspecified order), passing
// copies of the key and value. fn returning an error aborts the walk.
// It is the verification/export walk a recovery procedure runs after
// reopening a store.
func (s *Store) ForEach(fn func(key, value []byte) error) error {
	for _, seg := range s.segments {
		segBuckets := bucketsPerSegment
		// The last segment may be shorter.
		if usable, err := s.heap.UsableSize(seg); err != nil {
			return err
		} else if usable/8 < segBuckets {
			segBuckets = usable / 8
		}
		for b := 0; b < segBuckets; b++ {
			cur, err := s.readPtr(seg, b*8)
			if err != nil {
				return err
			}
			for cur != 0 {
				next, kl, vl, err := s.entryHeader(cur)
				if err != nil {
					return err
				}
				kv := make([]byte, kl+vl)
				if err := s.heap.Read(cur, entryHeaderSize, kv); err != nil {
					return err
				}
				if err := fn(kv[:kl:kl], kv[kl:]); err != nil {
					return err
				}
				cur = next
			}
		}
	}
	return nil
}
