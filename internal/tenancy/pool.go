// Package tenancy implements the paper's §6.3 deployment vision: battery
// as a first-class, schedulable resource. A Pool divides one battery's
// dirty budget among co-located tenants and periodically reallocates it
// — "techniques similar to memory ballooning" — in proportion to each
// tenant's dirty-page pressure, so bursty tenants borrow budget that
// quiet tenants are not using (statistical multiplexing).
//
// Rebalancing is safe by construction: shrinking a tenant's budget goes
// through core.Manager.SetDirtyBudgetSync, which cleans the tenant down
// before returning, and donors shrink before receivers grow, so the sum
// of budgets never exceeds the battery's total.
package tenancy

import (
	"fmt"

	"viyojit/internal/core"
	"viyojit/internal/sim"
)

// Tenant is one NV-DRAM consumer in the pool.
type Tenant struct {
	Name string
	// Manager is the tenant's Viyojit manager.
	Manager *core.Manager
	// MinPages is the tenant's guaranteed floor: rebalancing never takes
	// its budget below this.
	MinPages int

	granted int
}

// Granted returns the tenant's current budget grant in pages.
func (t *Tenant) Granted() int { return t.granted }

// Stats counts pool activity.
type Stats struct {
	Rebalances     uint64
	PagesMoved     uint64
	ShrinkFailures uint64
}

// Pool shares totalPages of dirty budget among tenants.
type Pool struct {
	clock  *sim.Clock
	events *sim.Queue

	totalPages int
	tenants    []*Tenant
	period     sim.Duration
	event      *sim.Event
	closed     bool

	stats Stats
}

// NewPool creates a pool backed by totalPages of battery-derived budget,
// rebalancing every period (0 selects 10 ms — several epochs, so the
// pressure estimates have settled).
func NewPool(clock *sim.Clock, events *sim.Queue, totalPages int, period sim.Duration) (*Pool, error) {
	if totalPages < 1 {
		return nil, fmt.Errorf("tenancy: total budget %d pages must be positive", totalPages)
	}
	if period == 0 {
		period = 10 * sim.Millisecond
	}
	p := &Pool{clock: clock, events: events, totalPages: totalPages, period: period}
	p.event = events.Schedule(clock.Now().Add(period), p.tick)
	return p, nil
}

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// Tenants returns the attached tenants. The slice is a copy: the pool
// mutates its own list on Attach/Detach, and handing out the backing
// array would let an observer iterate it while a rebalance or detach
// rewrites it underneath.
func (p *Pool) Tenants() []*Tenant {
	out := make([]*Tenant, len(p.tenants))
	copy(out, p.tenants)
	return out
}

// Attach adds a tenant and re-grants the pool's budget equally across all
// tenants (respecting floors). The tenant's manager budget is overwritten
// by the pool from now on.
func (p *Pool) Attach(name string, mgr *core.Manager, minPages int) (*Tenant, error) {
	if minPages < 1 {
		minPages = 1
	}
	floors := minPages
	for _, t := range p.tenants {
		floors += t.MinPages
	}
	if floors > p.totalPages {
		return nil, fmt.Errorf("tenancy: floors (%d pages) exceed the pool's %d", floors, p.totalPages)
	}
	t := &Tenant{Name: name, Manager: mgr, MinPages: minPages}
	p.tenants = append(p.tenants, t)
	p.grantEqually()
	return t, nil
}

// grantEqually splits the budget evenly (plus floors), used at attach
// time before pressure data exists.
func (p *Pool) grantEqually() {
	n := len(p.tenants)
	if n == 0 {
		return
	}
	share := p.totalPages / n
	grants := make([]int, n)
	rem := p.totalPages
	for i, t := range p.tenants {
		g := share
		if g < t.MinPages {
			g = t.MinPages
		}
		grants[i] = g
		rem -= g
	}
	// Distribute any remainder (or recover any overshoot) left to right.
	for i := 0; rem != 0 && i < n; i++ {
		if rem > 0 {
			grants[i]++
			rem--
		} else if grants[i] > p.tenants[i].MinPages {
			grants[i]--
			rem++
		}
	}
	p.apply(grants)
}

// Rebalance reallocates the budget: each tenant keeps its floor, and the
// surplus is shared in proportion to dirty-page pressure (with equal
// shares when no tenant has pressure).
func (p *Pool) Rebalance() {
	n := len(p.tenants)
	if n == 0 {
		return
	}
	p.stats.Rebalances++

	var totalPressure float64
	pressures := make([]float64, n)
	floors := 0
	for i, t := range p.tenants {
		pressures[i] = t.Manager.Pressure()
		totalPressure += pressures[i]
		floors += t.MinPages
	}
	surplus := p.totalPages - floors
	grants := make([]int, n)
	used := 0
	for i, t := range p.tenants {
		share := 0
		if totalPressure > 0 {
			share = int(float64(surplus) * pressures[i] / totalPressure)
		} else {
			share = surplus / n
		}
		grants[i] = t.MinPages + share
		used += grants[i]
	}
	// Hand any rounding remainder to the most pressured tenant.
	if rem := p.totalPages - used; rem > 0 {
		best := 0
		for i := 1; i < n; i++ {
			if pressures[i] > pressures[best] {
				best = i
			}
		}
		grants[best] += rem
	}
	p.apply(grants)
}

// apply commits grants: donors shrink first (synchronously cleaning down
// if needed), then receivers grow, so the durability bound across the
// pool never exceeds the battery.
func (p *Pool) apply(grants []int) {
	type change struct {
		t     *Tenant
		grant int
	}
	var shrinks, grows []change
	for i, t := range p.tenants {
		g := grants[i]
		if g == t.granted {
			continue
		}
		if g < t.granted || t.granted == 0 {
			shrinks = append(shrinks, change{t, g})
		} else {
			grows = append(grows, change{t, g})
		}
	}
	for _, c := range shrinks {
		// Synchronous: the freed pages must actually be clean before the
		// grow phase hands their coverage to another tenant.
		if err := c.t.Manager.SetDirtyBudgetSync(c.grant); err != nil {
			p.stats.ShrinkFailures++
			continue
		}
		p.stats.PagesMoved += uint64(abs(c.t.granted - c.grant))
		c.t.granted = c.grant
	}
	for _, c := range grows {
		if err := c.t.Manager.SetDirtyBudget(c.grant); err != nil {
			p.stats.ShrinkFailures++
			continue
		}
		p.stats.PagesMoved += uint64(abs(c.t.granted - c.grant))
		c.t.granted = c.grant
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// tick is the periodic rebalance.
func (p *Pool) tick(at sim.Time) {
	if p.closed {
		return
	}
	p.Rebalance()
	p.event = p.events.Schedule(at.Add(p.period), p.tick)
}

// TotalGranted returns the sum of current grants (always ≤ the pool
// total).
func (p *Pool) TotalGranted() int {
	sum := 0
	for _, t := range p.tenants {
		sum += t.granted
	}
	return sum
}

// Close stops the periodic rebalancing.
func (p *Pool) Close() {
	p.closed = true
	p.events.Cancel(p.event)
}

// Detach removes a tenant from the pool, leaving its manager with its
// current grant frozen (the operator is expected to re-derive that
// tenant's budget from a dedicated battery). The freed share returns to
// the pool at the next rebalance.
func (p *Pool) Detach(t *Tenant) error {
	for i, cur := range p.tenants {
		if cur == t {
			p.tenants = append(p.tenants[:i], p.tenants[i+1:]...)
			p.Rebalance()
			return nil
		}
	}
	return fmt.Errorf("tenancy: tenant %q not in pool", t.Name)
}
