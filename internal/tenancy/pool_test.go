package tenancy

import (
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// tenv is one tenant's full stack on a shared clock/queue.
type tenv struct {
	region *nvdram.Region
	mgr    *core.Manager
}

func newTenv(t testing.TB, clock *sim.Clock, events *sim.Queue, pages, budget int) *tenv {
	t.Helper()
	region, err := nvdram.New(clock, nvdram.Config{Size: int64(pages) * 4096})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	return &tenv{region: region, mgr: mgr}
}

func (e *tenv) write(t testing.TB, page int, b byte) {
	t.Helper()
	if err := e.region.WriteAt([]byte{b}, int64(page)*4096); err != nil {
		t.Fatal(err)
	}
}

func TestPoolValidation(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	if _, err := NewPool(clock, events, 0, 0); err == nil {
		t.Fatal("zero-budget pool accepted")
	}
	p, err := NewPool(clock, events, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := newTenv(t, clock, events, 64, 8)
	if _, err := p.Attach("a", a.mgr, 8); err != nil {
		t.Fatal(err)
	}
	b := newTenv(t, clock, events, 64, 8)
	if _, err := p.Attach("b", b.mgr, 8); err == nil {
		t.Fatal("floors exceeding pool accepted")
	}
}

func TestAttachSplitsEqually(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 100, 0)
	a := newTenv(t, clock, events, 256, 10)
	b := newTenv(t, clock, events, 256, 10)
	ta, err := p.Attach("a", a.mgr, 5)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := p.Attach("b", b.mgr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ta.Granted()+tb.Granted() != 100 {
		t.Fatalf("grants %d + %d != 100", ta.Granted(), tb.Granted())
	}
	if ta.Granted() != tb.Granted() {
		t.Fatalf("grants unequal: %d vs %d", ta.Granted(), tb.Granted())
	}
	if a.mgr.DirtyBudget() != ta.Granted() {
		t.Fatal("manager budget not synced with grant")
	}
}

func TestRebalanceFollowsPressure(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 128, 10*sim.Millisecond)
	hot := newTenv(t, clock, events, 512, 16)
	cold := newTenv(t, clock, events, 512, 16)
	th, _ := p.Attach("hot", hot.mgr, 8)
	tc, _ := p.Attach("cold", cold.mgr, 8)

	// The hot tenant dirties fresh pages every epoch; the cold one is
	// idle. Run past several rebalance periods.
	page := 0
	for step := 0; step < 40; step++ {
		for i := 0; i < 6; i++ {
			hot.write(t, page%512, byte(page+1))
			page++
		}
		clock.Advance(sim.Millisecond)
		events.RunUntil(clock, clock.Now())
	}
	if p.Stats().Rebalances == 0 {
		t.Fatal("no rebalances happened")
	}
	if th.Granted() <= tc.Granted() {
		t.Fatalf("pressured tenant granted %d ≤ idle tenant's %d", th.Granted(), tc.Granted())
	}
	if tc.Granted() < 8 {
		t.Fatalf("idle tenant pushed below its floor: %d", tc.Granted())
	}
	if p.TotalGranted() > 128 {
		t.Fatalf("grants %d exceed the pool's battery", p.TotalGranted())
	}
}

func TestRebalanceNeverExceedsTotalMidway(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 64, sim.Millisecond)
	a := newTenv(t, clock, events, 256, 8)
	b := newTenv(t, clock, events, 256, 8)
	ta, _ := p.Attach("a", a.mgr, 4)
	tb, _ := p.Attach("b", b.mgr, 4)

	// Fill both tenants to their grants, then force many rebalances with
	// asymmetric pressure; the combined dirty total must never exceed
	// the pool.
	for i := 0; i < ta.Granted(); i++ {
		a.write(t, i, 1)
	}
	for i := 0; i < tb.Granted(); i++ {
		b.write(t, i, 1)
	}
	page := 0
	for step := 0; step < 30; step++ {
		a.write(t, page%256, byte(step+1))
		page++
		clock.Advance(sim.Millisecond)
		events.RunUntil(clock, clock.Now())
		if sum := a.mgr.DirtyCount() + b.mgr.DirtyCount(); sum > 64 {
			t.Fatalf("combined dirty %d exceeds pooled battery 64", sum)
		}
	}
}

func TestIdlePoolSharesEqually(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 60, sim.Millisecond)
	a := newTenv(t, clock, events, 64, 8)
	b := newTenv(t, clock, events, 64, 8)
	ta, _ := p.Attach("a", a.mgr, 5)
	tb, _ := p.Attach("b", b.mgr, 5)
	clock.Advance(10 * sim.Millisecond)
	events.RunUntil(clock, clock.Now())
	// With zero pressure everywhere, the surplus splits evenly.
	if diff := abs(ta.Granted() - tb.Granted()); diff > 1 {
		t.Fatalf("idle grants diverged: %d vs %d", ta.Granted(), tb.Granted())
	}
}

func TestCloseStopsRebalancing(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 64, sim.Millisecond)
	a := newTenv(t, clock, events, 64, 8)
	if _, err := p.Attach("a", a.mgr, 4); err != nil {
		t.Fatal(err)
	}
	p.Close()
	before := p.Stats().Rebalances
	clock.Advance(20 * sim.Millisecond)
	events.RunUntil(clock, clock.Now())
	if p.Stats().Rebalances != before {
		t.Fatal("rebalancing continued after Close")
	}
}

func TestDetach(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 64, 0)
	a := newTenv(t, clock, events, 64, 8)
	b := newTenv(t, clock, events, 64, 8)
	ta, _ := p.Attach("a", a.mgr, 4)
	tb, _ := p.Attach("b", b.mgr, 4)
	if err := p.Detach(ta); err != nil {
		t.Fatal(err)
	}
	if len(p.Tenants()) != 1 {
		t.Fatalf("tenants after detach = %d", len(p.Tenants()))
	}
	// The remaining tenant inherits the whole pool at the forced
	// rebalance.
	if tb.Granted() != 64 {
		t.Fatalf("remaining tenant granted %d, want 64", tb.Granted())
	}
	if err := p.Detach(ta); err == nil {
		t.Fatal("double detach succeeded")
	}
}

func TestTenantsReturnsCopy(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	p, _ := NewPool(clock, events, 64, 0)
	a := newTenv(t, clock, events, 64, 8)
	b := newTenv(t, clock, events, 64, 8)
	ta, _ := p.Attach("a", a.mgr, 4)
	p.Attach("b", b.mgr, 4)

	// An observer's snapshot must be insulated from pool mutations in
	// both directions: scribbling on the snapshot cannot corrupt the
	// pool, and a detach cannot rewrite the snapshot underneath the
	// observer (the pool's Detach compacts its own slice in place).
	snap := p.Tenants()
	snap[0] = nil
	if got := p.Tenants()[0]; got == nil || got.Name != "a" {
		t.Fatal("mutating the returned slice reached into the pool")
	}
	snap = p.Tenants()
	if err := p.Detach(ta); err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 || snap[0] == nil || snap[1] == nil {
		t.Fatalf("detach rewrote an observer's snapshot: %v", snap)
	}
	if snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot order changed: %q, %q", snap[0].Name, snap[1].Name)
	}
}
