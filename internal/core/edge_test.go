package core

import (
	"testing"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

func TestUnmapWithInFlightCleans(t *testing.T) {
	// Unmap must wait for in-range cleans already on the wire, then
	// persist the rest, even when the SSD is slow.
	clock := sim.NewClock()
	events := sim.NewQueue()
	h := &harness{clock: clock, events: events}
	var err error
	h.region, err = newRegionImpl(clock, 32)
	if err != nil {
		t.Fatal(err)
	}
	h.dev = ssd.New(clock, events, ssd.Config{WriteBandwidth: 1 << 20, PerIOLatency: 2 * sim.Millisecond})
	h.mgr, err = NewManager(clock, events, h.region, h.dev, Config{DirtyBudgetPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	mp, err := h.mgr.Map("m", 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if err := mp.WriteAt([]byte{byte(p + 1)}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
	}
	// Kick off a clean manually, then unmap immediately.
	h.mgr.startClean(h.region.PageOf(mp.Base()))
	if err := h.mgr.Unmap(mp); err != nil {
		t.Fatal(err)
	}
	if h.mgr.DirtyCount() != 0 {
		t.Fatalf("dirty after unmap = %d", h.mgr.DirtyCount())
	}
	for p := 0; p < 8; p++ {
		durable, ok := h.dev.Durable(mmu.PageID(p))
		if !ok || durable[0] != byte(p+1) {
			t.Fatalf("page %d not persisted by unmap", p)
		}
	}
}

// newRegionImpl builds a bare region for tests that wire custom SSD
// configurations.
func newRegionImpl(clock *sim.Clock, pages int) (*nvdram.Region, error) {
	return nvdram.New(clock, nvdram.Config{Size: int64(pages) * 4096})
}

func TestSkippedEpochStat(t *testing.T) {
	// An epoch tick that stalls past a full epoch (glacial SSD, deep
	// proactive cleaning) makes the next tick fire reentrantly and be
	// skipped — counted, not corrupted.
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := newRegionImpl(clock, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Glacial device: 4 KiB takes ~40 ms, queue depth 1.
	dev := ssd.New(clock, events, ssd.Config{WriteBandwidth: 100 << 10, MaxOutstanding: 1})
	mgr, err := NewManager(clock, events, region, dev, Config{DirtyBudgetPages: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Sustained dirtying forces deep proactive cleaning whose submissions
	// stall past epochs.
	for p := 0; p < 200; p++ {
		if err := region.WriteAt([]byte{byte(p | 1)}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		mgr.Pump()
	}
	clock.Advance(50 * sim.Millisecond)
	mgr.Pump()
	if mgr.DirtyCount() > 16 {
		t.Fatalf("budget violated under overload: %d", mgr.DirtyCount())
	}
	// The stat is allowed to be zero on some schedules; the hard
	// requirement is that the system stayed consistent, verified above
	// and by the invariant checks that run on every transition.
	_ = mgr.Stats().SkippedEpochs
}

func TestCleanOneSyncNoVictimReturnsFalse(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	// Empty dirty set: nothing to clean.
	if h.mgr.cleanOneSync() {
		t.Fatal("cleanOneSync succeeded with an empty dirty set")
	}
}

func TestSetDirtyBudgetToCurrentCountIsCleanFree(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 8})
	for p := 0; p < 5; p++ {
		h.writePage(t, p, byte(p+1))
	}
	before := h.mgr.Stats().RetuneCleans
	if err := h.mgr.SetDirtyBudget(5); err != nil {
		t.Fatal(err)
	}
	if h.mgr.Stats().RetuneCleans != before {
		t.Fatal("retune to exactly the dirty count forced cleans")
	}
	if h.mgr.DirtyBudget() != 5 {
		t.Fatalf("budget = %d", h.mgr.DirtyBudget())
	}
}

func TestBudgetOneSurvives(t *testing.T) {
	// The degenerate minimum budget: every new page evicts the previous.
	h := newHarness(t, 16, Config{DirtyBudgetPages: 1})
	for p := 0; p < 10; p++ {
		h.writePage(t, p, byte(p+1))
		if h.mgr.DirtyCount() > 1 {
			t.Fatalf("dirty %d with budget 1", h.mgr.DirtyCount())
		}
	}
	h.mgr.FlushAll()
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
}

func TestPressureNeverNegative(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 32})
	for e := 0; e < 100; e++ {
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump()
		if h.mgr.Pressure() < 0 {
			t.Fatalf("pressure went negative: %v", h.mgr.Pressure())
		}
	}
}

func TestSampling(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 16, SampleEvery: sim.Millisecond})
	for p := 0; p < 10; p++ {
		h.writePage(t, p, byte(p+1))
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump()
	}
	samples := h.mgr.Samples()
	if len(samples) < 8 {
		t.Fatalf("got %d samples, want ~10", len(samples))
	}
	var prev sim.Time
	for _, s := range samples {
		if s.At < prev {
			t.Fatal("samples out of order")
		}
		prev = s.At
		if s.Dirty < 0 || s.Dirty > 16 {
			t.Fatalf("sample dirty %d outside [0, budget]", s.Dirty)
		}
	}
	// The ring must see the growing dirty set.
	if samples[len(samples)-1].Dirty == 0 {
		t.Fatal("final sample shows no dirty pages")
	}
	// Close stops sampling.
	h.mgr.Close()
	n := len(h.mgr.Samples())
	h.clock.Advance(10 * sim.Millisecond)
	h.mgr.Pump()
	if len(h.mgr.Samples()) != n {
		t.Fatal("sampling continued after Close")
	}
}

func TestSamplingDisabledByDefault(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 8})
	h.clock.Advance(20 * sim.Millisecond)
	h.mgr.Pump()
	if len(h.mgr.Samples()) != 0 {
		t.Fatal("samples recorded without SampleEvery")
	}
}
