// Degradation ladder: the four-rung health state machine the health
// monitor drives the manager through when the SSD or battery can no
// longer sustain normal operation.
//
//	Healthy → Degraded → EmergencyFlush → ReadOnly
//
// Healthy and Degraded are the manager's own territory: consecutive
// clean errors enter Degraded (extra cleaning headroom, see epochTick)
// and either a success streak or a quiet period heals it. The top two
// rungs are escalations an external policy — internal/health's monitor,
// or an operator — commands explicitly:
//
//   - EmergencyFlush blocks all writes (every page is re-protected, so
//     stores fail with mmu.ErrProtected) and drains the entire dirty set
//     to the SSD with a bounded number of attempts per page. It is the
//     response to a battery that can no longer cover even the drained
//     dirty set, or to an SSD erroring so persistently that shrinking
//     exposure to zero is the only safe posture.
//   - ReadOnly is the terminal fallback for an effectively dead SSD:
//     writes stay blocked forever, but everything already flushed
//     remains durable and readable — the ladder never un-persists data.
//
// Recovery is explicit too: Resume de-escalates back below
// EmergencyFlush once the policy's hysteresis is satisfied.
package core

import (
	"fmt"

	"viyojit/internal/mmu"
)

// HealthState is the manager's rung on the degradation ladder. Higher
// values are worse; comparisons like state >= StateDegraded are
// meaningful.
type HealthState int

const (
	// StateHealthy is normal operation.
	StateHealthy HealthState = iota
	// StateDegraded means recent cleans failed; the epoch task keeps
	// extra dirty-set headroom (see Config.DegradeAfterErrors).
	StateDegraded
	// StateEmergencyFlush means writes are blocked while the dirty set
	// is force-drained to the SSD.
	StateEmergencyFlush
	// StateReadOnly means the SSD is considered dead: writes are blocked
	// permanently (until an explicit Resume after repair); reads and
	// already-durable data are unaffected.
	StateReadOnly
)

// String returns the rung name.
func (s HealthState) String() string {
	switch s {
	case StateHealthy:
		return "Healthy"
	case StateDegraded:
		return "Degraded"
	case StateEmergencyFlush:
		return "EmergencyFlush"
	case StateReadOnly:
		return "ReadOnly"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// HealthState returns the manager's current rung on the ladder.
func (m *Manager) HealthState() HealthState { return m.state }

// writesBlocked reports whether the ladder has writes blocked (the top
// two rungs).
func (m *Manager) writesBlocked() bool { return m.state >= StateEmergencyFlush }

// WritesBlocked reports whether stores to the region currently fail with
// mmu.ErrProtected because the ladder blocked them.
func (m *Manager) WritesBlocked() bool { return m.writesBlocked() }

// blockWrites re-protects every page so any store traps and — with the
// fault handler refusing to unprotect while writesBlocked (software
// mode) or no handler registered (hardware-assist mode) — fails with
// mmu.ErrProtected. Protect is idempotent, so already-protected clean
// and mid-clean pages are unaffected.
func (m *Manager) blockWrites() {
	pt := m.region.PageTable()
	for p := 0; p < m.region.NumPages(); p++ {
		pt.Protect(mmu.PageID(p))
	}
}

// unblockWrites restores the protection state normal operation expects:
// in software mode only dirty, not-in-flight pages are writable (clean
// pages stay protected so their first write traps); in hardware-assist
// mode nothing is protected.
func (m *Manager) unblockWrites() {
	pt := m.region.PageTable()
	if m.cfg.HardwareAssist {
		for p := 0; p < m.region.NumPages(); p++ {
			pt.Unprotect(mmu.PageID(p))
		}
		return
	}
	for page, dp := range m.dirty {
		if !dp.cleaning {
			pt.Unprotect(page)
		}
	}
}

// EnterEmergencyFlush escalates to the EmergencyFlush rung: writes are
// blocked and the whole dirty set is drained with at most
// Config.EmergencyMaxAttempts SSD writes per page. It returns the number
// of pages still dirty afterwards — 0 means everything is durable and
// the caller may Resume; non-zero means the SSD refused even the bounded
// drain and the caller decides between RetryDrain and EnterReadOnly.
// Calling it while already at or above EmergencyFlush just re-runs the
// drain.
func (m *Manager) EnterEmergencyFlush() int {
	if m.state < StateEmergencyFlush {
		m.setState(StateEmergencyFlush)
		m.st.emergencyEnters.Inc()
		m.blockWrites()
	}
	return m.emergencyDrain()
}

// RetryDrain re-runs the bounded emergency drain (each page's attempt
// budget is reset). It is only meaningful at the EmergencyFlush rung;
// elsewhere it reports the dirty count unchanged.
func (m *Manager) RetryDrain() int {
	if m.state != StateEmergencyFlush {
		return len(m.dirty)
	}
	return m.emergencyDrain()
}

// emergencyDrain submits every dirty page to the SSD, giving each page
// up to EmergencyMaxAttempts tries, and blocks (in virtual time) until
// the set is empty or every remaining page has exhausted its attempts.
// The clean-completion failure path suppresses both the unprotect and
// the auto-retry while writes are blocked (see startClean), so attempt
// accounting stays entirely here.
func (m *Manager) emergencyDrain() int {
	for _, dp := range m.dirty {
		if !dp.cleaning {
			dp.attempts = 0
		}
	}
	for len(m.dirty) > 0 {
		submitted := false
		// Sorted submission order keeps the drain's timing and trace
		// deterministic across same-seed runs (map order is not).
		for _, page := range m.sortedDirtyPages() {
			if dp, ok := m.dirty[page]; ok && !dp.cleaning && dp.attempts < m.cfg.EmergencyMaxAttempts {
				m.st.emergencyCleans.Inc()
				m.startClean(page)
				submitted = true
			}
		}
		if !submitted && m.inflightCleans() == 0 {
			// Every remaining page burned its attempts.
			break
		}
		if !m.events.Step(m.clock) {
			if m.inflightCleans() == 0 {
				break
			}
			panic("core: emergency drain blocked with no pending events")
		}
	}
	return len(m.dirty)
}

// EnterReadOnly escalates to the terminal ReadOnly rung: writes are
// blocked (idempotently — the usual path arrives here from
// EmergencyFlush, where they already are) and stay blocked until an
// explicit Resume. Nothing already durable is touched.
func (m *Manager) EnterReadOnly() {
	if m.state == StateReadOnly {
		return
	}
	if m.state < StateEmergencyFlush {
		m.blockWrites()
	}
	m.setState(StateReadOnly)
	m.st.readOnlyEnters.Inc()
}

// Resume de-escalates from a write-blocking rung back down to Healthy or
// Degraded — the health policy calls it once its recovery hysteresis is
// satisfied (drain finished and the device answers again, or the SSD was
// replaced). Writes unblock and the error streaks reset so the lower
// rungs start fresh. Resuming *to* a write-blocking rung is rejected.
func (m *Manager) Resume(to HealthState) error {
	if to >= StateEmergencyFlush {
		return fmt.Errorf("core: cannot resume to write-blocking state %v", to)
	}
	if m.state < StateEmergencyFlush {
		m.setState(to)
		return nil
	}
	m.setState(to)
	m.errorStreak = 0
	m.healthyStreak = 0
	m.st.resumes.Inc()
	m.unblockWrites()
	m.checkInvariant()
	return nil
}
