package core

import (
	"bytes"
	"testing"
)

func TestMapAllocatesAndIsUsable(t *testing.T) {
	h := newHarness(t, 32, Config{DirtyBudgetPages: 8})
	mp, err := h.mgr.Map("heap", 3*4096)
	if err != nil {
		t.Fatal(err)
	}
	if mp.Size() != 3*4096 || mp.Name() != "heap" {
		t.Fatalf("mapping = %q size %d", mp.Name(), mp.Size())
	}
	data := []byte("persistent payload")
	if err := mp.WriteAt(data, 4096+7); err != nil {
		t.Fatal(err)
	}
	h.mgr.Pump()
	got := make([]byte, len(data))
	if err := mp.ReadAt(got, 4096+7); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q, want %q", got, data)
	}
}

func TestMapRoundsUpToPages(t *testing.T) {
	h := newHarness(t, 32, Config{DirtyBudgetPages: 8})
	a, err := h.mgr.Map("a", 100) // occupies 1 page
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.mgr.Map("b", 4097) // occupies 2 pages
	if err != nil {
		t.Fatal(err)
	}
	if a.Base() == b.Base() {
		t.Fatal("mappings overlap")
	}
	if b.Base()-a.Base() < 4096 {
		t.Fatalf("mapping b at %d too close to a at %d", b.Base(), a.Base())
	}
}

func TestMapBoundsChecked(t *testing.T) {
	h := newHarness(t, 32, Config{DirtyBudgetPages: 8})
	mp, _ := h.mgr.Map("m", 4096)
	if err := mp.WriteAt([]byte{1}, 4096); err == nil {
		t.Fatal("write past mapping size succeeded")
	}
	if err := mp.ReadAt(make([]byte, 2), 4095); err == nil {
		t.Fatal("read past mapping size succeeded")
	}
	if err := mp.WriteAt([]byte{1}, -1); err == nil {
		t.Fatal("negative offset write succeeded")
	}
}

func TestMapExhaustion(t *testing.T) {
	h := newHarness(t, 4, Config{DirtyBudgetPages: 2})
	if _, err := h.mgr.Map("big", 5*4096); err == nil {
		t.Fatal("oversized map succeeded")
	}
	if _, err := h.mgr.Map("ok", 4*4096); err != nil {
		t.Fatal(err)
	}
	if _, err := h.mgr.Map("more", 4096); err == nil {
		t.Fatal("map beyond capacity succeeded")
	}
	if _, err := h.mgr.Map("zero", 0); err == nil {
		t.Fatal("zero-size map succeeded")
	}
}

func TestUnmapPersistsAndFrees(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	mp, _ := h.mgr.Map("m", 2*4096)
	payload := []byte{0xDE, 0xAD}
	if err := mp.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	base := mp.Base()
	if err := h.mgr.Unmap(mp); err != nil {
		t.Fatal(err)
	}
	// Data was persisted to the SSD before release.
	durable, ok := h.dev.Durable(h.region.PageOf(base))
	if !ok || durable[0] != 0xDE || durable[1] != 0xAD {
		t.Fatal("unmap did not persist mapping contents")
	}
	// The extent is reusable.
	again, err := h.mgr.Map("again", 2*4096)
	if err != nil {
		t.Fatal(err)
	}
	if again.Base() != base {
		t.Fatalf("freed extent not reused first-fit: got base %d, want %d", again.Base(), base)
	}
	// Accessing the dead mapping errors.
	if err := mp.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write through unmapped handle succeeded")
	}
	if err := h.mgr.Unmap(mp); err == nil {
		t.Fatal("double unmap succeeded")
	}
}

func TestUnmapLeavesPagesProtected(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	mp, _ := h.mgr.Map("m", 4096)
	if err := mp.WriteAt([]byte{1}, 0); err != nil {
		t.Fatal(err)
	}
	page := h.region.PageOf(mp.Base())
	if err := h.mgr.Unmap(mp); err != nil {
		t.Fatal(err)
	}
	if !h.region.PageTable().IsProtected(page) {
		t.Fatal("page writable after unmap; next tenant's first write would not trap")
	}
	if h.mgr.DirtyCount() != 0 {
		t.Fatalf("dirty count after unmap = %d", h.mgr.DirtyCount())
	}
}

func TestFreeListCoalesces(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	a, _ := h.mgr.Map("a", 2*4096)
	b, _ := h.mgr.Map("b", 2*4096)
	c, _ := h.mgr.Map("c", 2*4096)
	if err := h.mgr.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Unmap(c); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Unmap(b); err != nil {
		t.Fatal(err)
	}
	// All three extents plus the tail must have coalesced into one run of
	// 8 pages.
	big, err := h.mgr.Map("big", 8*4096)
	if err != nil {
		t.Fatalf("free list did not coalesce: %v", err)
	}
	if big.Base() != 0 {
		t.Fatalf("coalesced map at base %d, want 0", big.Base())
	}
}

func TestMappingsListed(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	a, _ := h.mgr.Map("a", 4096)
	if got := h.mgr.Mappings(); len(got) != 1 || got[0] != a {
		t.Fatalf("Mappings() = %v", got)
	}
	if err := h.mgr.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if got := h.mgr.Mappings(); len(got) != 0 {
		t.Fatalf("Mappings() after unmap = %v", got)
	}
}

func TestUnmapForeignMappingRejected(t *testing.T) {
	h1 := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	h2 := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	mp, _ := h1.mgr.Map("m", 4096)
	if err := h2.mgr.Unmap(mp); err == nil {
		t.Fatal("unmap of foreign mapping succeeded")
	}
	if err := h2.mgr.Unmap(nil); err == nil {
		t.Fatal("unmap of nil succeeded")
	}
}
