package core

import (
	"testing"

	"viyojit/internal/battery"
	"viyojit/internal/power"
	"viyojit/internal/sim"
)

// A battery capacity drop whose event lands during the virtual time a
// power-fail flush occupies must be charged against the verdict: the
// energy that "was available" at the failure instant was never all
// deliverable. PowerFailWith re-samples at completion and takes the
// smaller reading.
func TestPowerFailWithBatteryShrinkMidFlush(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 32})
	for p := 0; p < 16; p++ {
		h.writePage(t, p, byte(p+1))
	}
	h.mgr.FlushAll()
	for p := 0; p < 16; p++ { // re-dirty: these are what the flush covers
		h.writePage(t, p, byte(p+0x40))
	}

	// The flush takes ~90 µs (16 pages at 2 GiB/s plus one per-IO
	// latency); size the battery so the starting energy covers it with
	// ~25 % headroom, then halve the capacity 50 µs in — mid-flush.
	pm := power.Default()
	watts := pm.FlushWatts(h.region.Size())
	flushTime := h.dev.Config().PerIOLatency + h.dev.FlushTimeFor(16)
	startJ := watts * flushTime.Seconds() * 1.25
	batt := battery.MustNew(battery.Config{CapacityJoules: startJ, DepthOfDischarge: 1, Derating: 1})
	h.events.Schedule(sim.Time(50*sim.Microsecond), func(sim.Time) {
		if err := batt.SetCapacityJoules(startJ / 2); err != nil {
			t.Error(err)
		}
	})

	report := h.mgr.PowerFailWith(pm, batt.EffectiveJoules)
	if report.EnergyAvailableJoules != startJ {
		t.Fatalf("start sample %v J, want %v", report.EnergyAvailableJoules, startJ)
	}
	if report.EnergyAtCompletionJoules != startJ/2 {
		t.Fatalf("completion sample %v J, want the sagged %v", report.EnergyAtCompletionJoules, startJ/2)
	}
	// Against the starting sample alone the flush fits (1.25× headroom);
	// against the halved battery it does not — the verdict must say so.
	if report.EnergyUsedJoules > report.EnergyAvailableJoules {
		t.Fatalf("flush used %v J, exceeding even the pre-sag %v — test premise broken",
			report.EnergyUsedJoules, report.EnergyAvailableJoules)
	}
	if report.EnergyUsedJoules <= report.EnergyAtCompletionJoules {
		t.Fatalf("flush used %v J, within the sagged %v — test premise broken",
			report.EnergyUsedJoules, report.EnergyAtCompletionJoules)
	}
	if report.Survived {
		t.Fatal("flush reported survival against energy the battery no longer held")
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability after the flush itself: %v", err)
	}
}

// With a fixed energy source the two samples agree and the verdict is
// the classic single-sample one.
func TestPowerFailFixedEnergySamplesAgree(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 32})
	for p := 0; p < 8; p++ {
		h.writePage(t, p, byte(p+1))
	}
	report := h.mgr.PowerFail(power.Default(), 1000)
	if report.EnergyAvailableJoules != 1000 || report.EnergyAtCompletionJoules != 1000 {
		t.Fatalf("samples %v/%v, want 1000/1000",
			report.EnergyAvailableJoules, report.EnergyAtCompletionJoules)
	}
	if !report.Survived {
		t.Fatal("1 kJ did not cover an 8-page flush")
	}
}
