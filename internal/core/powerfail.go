package core

import (
	"bytes"
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/power"
	"viyojit/internal/sim"
)

// PowerFailReport describes what happened during a simulated power-loss
// flush.
type PowerFailReport struct {
	// DirtyAtFailure is the dirty-set size when power was lost.
	DirtyAtFailure int
	// PagesFlushed is the number of pages written during the
	// battery-powered flush (in-flight IOs completing plus the rest of
	// the dirty set).
	PagesFlushed int
	// FlushTime is how long the flush ran.
	FlushTime sim.Duration
	// EnergyUsedJoules is the energy the flush consumed given the power
	// model.
	EnergyUsedJoules float64
	// EnergyAvailableJoules is what the battery could supply when the
	// failure hit.
	EnergyAvailableJoules float64
	// EnergyAtCompletionJoules is the battery's effective energy
	// re-sampled after the flush finished. A battery capacity change
	// that lands while the flush is in flight (cell dropout, scheduled
	// ageing step) makes this smaller than EnergyAvailableJoules; the
	// survival verdict uses the smaller of the two. With a fixed energy
	// source the fields are equal.
	EnergyAtCompletionJoules float64
	// Survived reports whether the flush finished within the available
	// energy — the durability guarantee.
	Survived bool
}

// PowerFail simulates a power-loss event: the epoch task stops, every
// dirty page is flushed to the SSD on battery power, and the report says
// whether the provisioned energy covered the flush. availableJoules is
// the battery's effective energy at the instant of failure; pm is the
// power model used to convert flush time into energy.
//
// After PowerFail returns the manager is stopped (as the server would
// be); verify durability with VerifyDurability and rebuild state with the
// recovery package.
func (m *Manager) PowerFail(pm power.Model, availableJoules float64) PowerFailReport {
	return m.PowerFailWith(pm, func() float64 { return availableJoules })
}

// PowerFailWith is PowerFail against a live energy source: available is
// sampled when the failure hits and again after the flush completes, so
// a battery that shrinks mid-flush (an ageing step or cell dropout whose
// event fires during the virtual time the flush occupies) cannot yield a
// false success. The verdict charges the flush against the smaller of
// the two samples — the conservative reading of "did the battery cover
// it".
func (m *Manager) PowerFailWith(pm power.Model, available func() float64) PowerFailReport {
	report := PowerFailReport{
		DirtyAtFailure:        len(m.dirty),
		EnergyAvailableJoules: available(),
	}
	m.events.Cancel(m.epochEvent)
	m.closed = true

	start := m.clock.Now()
	sp := m.tr.Begin("core.powerfail_flush", start)
	defer func() {
		code := "ok"
		if !report.Survived {
			code = "error"
		}
		m.tr.Finish(sp, m.clock.Now(), code)
	}()
	// In-flight cleans complete first (their IOs are already on the
	// wire); the remainder of the dirty set streams out as one
	// sequential backup write at full device bandwidth.
	m.dev.WaitIdle()
	batch := make(map[mmu.PageID][]byte, len(m.dirty))
	pt := m.region.PageTable()
	for page := range m.dirty {
		pt.Protect(page) // no further mutation during the backup
		// RawPage, not PageData: during the streaming backup the
		// DRAM-side copy is DMA that overlaps the (5× slower) device
		// transfer, so no serial copy time is charged. WriteBatch copies
		// the bytes before returning.
		batch[page] = m.region.RawPage(page)
	}
	m.dev.WriteBatch(batch)
	for page := range m.dirty {
		delete(m.dirty, page)
		pt.ClearDirty(page)
	}
	m.noteDirtyLevel()
	m.noteDrainProgress()
	// Deliver any events whose time has come during the flush — a
	// scheduled battery ageing step, for example — before re-sampling
	// the energy, so the completion check sees the battery as it is now,
	// not as it was when power failed.
	m.events.RunUntil(m.clock, m.clock.Now())
	report.EnergyAtCompletionJoules = available()

	report.PagesFlushed = report.DirtyAtFailure
	report.FlushTime = m.clock.Now().Sub(start)
	watts := pm.FlushWatts(m.region.Size())
	report.EnergyUsedJoules = watts * report.FlushTime.Seconds()
	covered := report.EnergyAvailableJoules
	if report.EnergyAtCompletionJoules < covered {
		covered = report.EnergyAtCompletionJoules
	}
	report.Survived = report.EnergyUsedJoules <= covered
	return report
}

// VerifyDurability checks, byte for byte, that the SSD holds the latest
// contents of every page of the region: a page must either be durable on
// the SSD with identical contents, or never have been written (still all
// zero). It returns nil if the NV-DRAM contents would be fully
// recoverable, and a descriptive error naming the first divergent page
// otherwise.
func (m *Manager) VerifyDurability() error {
	for p := 0; p < m.region.NumPages(); p++ {
		page := mmu.PageID(p)
		live := m.region.RawPage(page)
		durable, ok := m.dev.Durable(page)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("core: page %d diverges from durable copy", page)
			}
			continue
		}
		if !allZero(live) {
			return fmt.Errorf("core: page %d has data but no durable copy", page)
		}
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
