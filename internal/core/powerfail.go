package core

import (
	"bytes"
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/power"
	"viyojit/internal/sim"
)

// PowerFailReport describes what happened during a simulated power-loss
// flush.
type PowerFailReport struct {
	// DirtyAtFailure is the dirty-set size when power was lost.
	DirtyAtFailure int
	// PagesFlushed is the number of pages written during the
	// battery-powered flush (in-flight IOs completing plus the rest of
	// the dirty set).
	PagesFlushed int
	// FlushTime is how long the flush ran.
	FlushTime sim.Duration
	// EnergyUsedJoules is the energy the flush consumed given the power
	// model.
	EnergyUsedJoules float64
	// EnergyAvailableJoules is what the battery could supply.
	EnergyAvailableJoules float64
	// Survived reports whether the flush finished within the available
	// energy — the durability guarantee.
	Survived bool
}

// PowerFail simulates a power-loss event: the epoch task stops, every
// dirty page is flushed to the SSD on battery power, and the report says
// whether the provisioned energy covered the flush. availableJoules is
// the battery's effective energy at the instant of failure; pm is the
// power model used to convert flush time into energy.
//
// After PowerFail returns the manager is stopped (as the server would
// be); verify durability with VerifyDurability and rebuild state with the
// recovery package.
func (m *Manager) PowerFail(pm power.Model, availableJoules float64) PowerFailReport {
	report := PowerFailReport{
		DirtyAtFailure:        len(m.dirty),
		EnergyAvailableJoules: availableJoules,
	}
	m.events.Cancel(m.epochEvent)
	m.closed = true

	start := m.clock.Now()
	// In-flight cleans complete first (their IOs are already on the
	// wire); the remainder of the dirty set streams out as one
	// sequential backup write at full device bandwidth.
	m.dev.WaitIdle()
	batch := make(map[mmu.PageID][]byte, len(m.dirty))
	pt := m.region.PageTable()
	for page := range m.dirty {
		pt.Protect(page) // no further mutation during the backup
		// RawPage, not PageData: during the streaming backup the
		// DRAM-side copy is DMA that overlaps the (5× slower) device
		// transfer, so no serial copy time is charged. WriteBatch copies
		// the bytes before returning.
		batch[page] = m.region.RawPage(page)
	}
	m.dev.WriteBatch(batch)
	for page := range m.dirty {
		delete(m.dirty, page)
		pt.ClearDirty(page)
	}
	report.PagesFlushed = report.DirtyAtFailure
	report.FlushTime = m.clock.Now().Sub(start)
	watts := pm.FlushWatts(m.region.Size())
	report.EnergyUsedJoules = watts * report.FlushTime.Seconds()
	report.Survived = report.EnergyUsedJoules <= availableJoules
	return report
}

// VerifyDurability checks, byte for byte, that the SSD holds the latest
// contents of every page of the region: a page must either be durable on
// the SSD with identical contents, or never have been written (still all
// zero). It returns nil if the NV-DRAM contents would be fully
// recoverable, and a descriptive error naming the first divergent page
// otherwise.
func (m *Manager) VerifyDurability() error {
	for p := 0; p < m.region.NumPages(); p++ {
		page := mmu.PageID(p)
		live := m.region.RawPage(page)
		durable, ok := m.dev.Durable(page)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("core: page %d diverges from durable copy", page)
			}
			continue
		}
		if !allZero(live) {
			return fmt.Errorf("core: page %d has data but no durable copy", page)
		}
	}
	return nil
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
