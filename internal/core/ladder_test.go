package core

import (
	"errors"
	"testing"

	"viyojit/internal/faultinject"
	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// TestStagedShrinkInvariantUnderBursts is the budget-shrink property
// test: after SetDirtyBudget shrinks 32 → 8 under a continuing write
// burst, `DirtyCount ≤ effective budget` holds at every event step, and
// the effective budget itself is the monotone ratchet — it starts at the
// level the old budget covered and only moves down until the drain
// completes.
func TestStagedShrinkInvariantUnderBursts(t *testing.T) {
	h := newHarness(t, 128, Config{DirtyBudgetPages: 32})
	for p := 0; p < 32; p++ {
		h.writePage(t, p, byte(p+1))
	}
	if h.mgr.DirtyCount() != 32 {
		t.Fatalf("setup: dirty %d, want 32", h.mgr.DirtyCount())
	}

	prevBound := h.mgr.EffectiveDirtyBudget()
	check := func(where string) {
		d, eb := h.mgr.DirtyCount(), h.mgr.EffectiveDirtyBudget()
		if d > eb {
			t.Fatalf("%s: dirty %d > effective budget %d", where, d, eb)
		}
		if h.mgr.Draining() {
			if eb > prevBound {
				t.Fatalf("%s: drain ratchet rose %d -> %d", where, prevBound, eb)
			}
			if eb > 32 {
				t.Fatalf("%s: effective budget %d above old budget 32", where, eb)
			}
		}
		prevBound = eb
	}
	h.events.SetFireHook(func(step uint64, at sim.Time) { check("event step") })
	defer h.events.SetFireHook(nil)

	if err := h.mgr.SetDirtyBudget(8); err != nil {
		t.Fatal(err)
	}
	if !h.mgr.Draining() && h.mgr.DirtyCount() > 8 {
		t.Fatal("shrink below dirty count did not start a drain")
	}
	check("after shrink")

	// Concurrent write burst across the whole region: admissions must
	// pay forced cleans against the ratchet, never breach it.
	rng := sim.NewRNG(7)
	for i := 0; i < 300; i++ {
		page := int(rng.Int63n(128))
		if err := h.region.WriteAt([]byte{byte(i + 1)}, int64(page)*4096); err != nil {
			t.Fatalf("burst write %d: %v", i, err)
		}
		check("after write")
		h.clock.Advance(2 * sim.Microsecond)
		h.mgr.Pump()
	}

	for i := 0; i < 100 && h.mgr.Draining(); i++ {
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump()
	}
	if h.mgr.Draining() {
		t.Fatal("drain never completed")
	}
	if d := h.mgr.DirtyCount(); d > 8 {
		t.Fatalf("dirty %d above new budget 8 after drain", d)
	}
	if h.mgr.Stats().DrainsCompleted == 0 {
		t.Fatal("no drain completion recorded")
	}
}

// TestEmergencyFlushBlocksWritesAndDrains: on a healthy SSD the
// emergency rung drains everything, rejects writes with
// mmu.ErrProtected, and Resume restores normal operation.
func TestEmergencyFlushBlocksWritesAndDrains(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 8})
	for p := 0; p < 4; p++ {
		h.writePage(t, p, byte(p+1))
	}
	if remaining := h.mgr.EnterEmergencyFlush(); remaining != 0 {
		t.Fatalf("emergency drain left %d pages on a healthy SSD", remaining)
	}
	if st := h.mgr.HealthState(); st != StateEmergencyFlush {
		t.Fatalf("state %v, want EmergencyFlush", st)
	}
	if err := h.region.WriteAt([]byte{0xEE}, 0); !errors.Is(err, mmu.ErrProtected) {
		t.Fatalf("write while blocked: err %v, want ErrProtected", err)
	}
	if h.mgr.Stats().WritesBlocked == 0 {
		t.Fatal("no blocked write counted")
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability after emergency drain: %v", err)
	}
	if err := h.mgr.Resume(StateEmergencyFlush); err == nil {
		t.Fatal("Resume to a write-blocking state accepted")
	}
	if err := h.mgr.Resume(StateHealthy); err != nil {
		t.Fatal(err)
	}
	h.writePage(t, 5, 0xAB)
	if h.mgr.DirtyCount() != 1 {
		t.Fatalf("dirty %d after resumed write, want 1", h.mgr.DirtyCount())
	}
}

// TestDeadSSDLadderToReadOnly drives the full ladder: a dead SSD fails
// the bounded emergency drain, the manager falls back to ReadOnly,
// nothing previously flushed is lost, and a repaired device recovers via
// RetryDrain + Resume.
func TestDeadSSDLadderToReadOnly(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 8, EmergencyMaxAttempts: 2})
	// Two pages flushed while the device is healthy...
	h.writePage(t, 0, 0x11)
	h.writePage(t, 1, 0x22)
	h.mgr.FlushAll()
	// ...then four more dirtied just before the device dies.
	for p := 2; p < 6; p++ {
		h.writePage(t, p, byte(p))
	}
	inj := faultinject.New(faultinject.Config{TransientProb: 1}) // MaxFaults 0: dead forever
	h.dev.SetFaultInjector(inj)

	remaining := h.mgr.EnterEmergencyFlush()
	if remaining != 4 {
		t.Fatalf("drain against dead SSD left %d pages, want 4", remaining)
	}
	if h.mgr.RetryDrain() != 4 {
		t.Fatal("retry drain unexpectedly succeeded on a dead SSD")
	}
	h.mgr.EnterReadOnly()
	if st := h.mgr.HealthState(); st != StateReadOnly {
		t.Fatalf("state %v, want ReadOnly", st)
	}
	if err := h.region.WriteAt([]byte{0xEE}, 0); !errors.Is(err, mmu.ErrProtected) {
		t.Fatalf("write in ReadOnly: err %v, want ErrProtected", err)
	}
	// Previously flushed pages are still durable with their flushed
	// contents — the fallback never un-persists data.
	for p, want := range map[mmu.PageID]byte{0: 0x11, 1: 0x22} {
		data, ok := h.dev.Durable(p)
		if !ok || data[0] != want {
			t.Fatalf("page %d: durable=%v first byte %#x, want %#x", p, ok, data[0], want)
		}
	}

	// SSD replaced: drains succeed again, Resume reopens writes.
	inj.Disable()
	h.mgr.Resume(StateEmergencyFlush) // rejected: still a blocking state
	if st := h.mgr.HealthState(); st != StateReadOnly {
		t.Fatalf("rejected Resume changed state to %v", st)
	}
	// Re-enter the drain rung and finish the flush on the healthy device.
	if got := h.mgr.RetryDrain(); got != 4 {
		// RetryDrain is only live at EmergencyFlush.
		t.Fatalf("RetryDrain at ReadOnly drained to %d; want untouched 4", got)
	}
	if err := h.mgr.Resume(StateDegraded); err != nil {
		t.Fatal(err)
	}
	if remaining := h.mgr.EnterEmergencyFlush(); remaining != 0 {
		t.Fatalf("drain on repaired SSD left %d pages", remaining)
	}
	if err := h.mgr.Resume(StateHealthy); err != nil {
		t.Fatal(err)
	}
	h.writePage(t, 7, 0x77)
	if err := h.mgr.VerifyDurability(); err == nil {
		// Page 7 is dirty (not yet flushed): durability check must flag
		// it, proving the write actually landed post-recovery.
		t.Fatal("VerifyDurability passed with a dirty page outstanding")
	}
}

// TestTimeBasedHeal (satellite fix): a degraded manager on an idle
// system — no cleans at all, so the success-streak path can't run —
// returns to Healthy once HealAfterQuiet of virtual time passes without
// a clean error.
func TestTimeBasedHeal(t *testing.T) {
	h := newHarness(t, 16, Config{
		DirtyBudgetPages:   2,
		DegradeAfterErrors: 2,
		HealAfterQuiet:     5 * sim.Millisecond,
	})
	h.writePage(t, 0, 1)
	h.writePage(t, 1, 2)
	// The next admission forces a clean; the injector fails exactly two
	// of them (then runs dry), building the streak that enters Degraded.
	inj := faultinject.New(faultinject.Config{TransientProb: 1, MaxFaults: 2})
	h.dev.SetFaultInjector(inj)
	h.writePage(t, 2, 3)
	if !h.mgr.Degraded() {
		t.Fatalf("not degraded after %d clean errors (streak %d)",
			h.mgr.Stats().CleanErrors, h.mgr.ErrorStreak())
	}
	// Idle: just let epochs tick with no writes and no cleans.
	for i := 0; i < 12; i++ {
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump()
	}
	if h.mgr.Degraded() {
		t.Fatal("still degraded after 12 ms of quiet (HealAfterQuiet 5 ms)")
	}
	if h.mgr.ErrorStreak() != 0 {
		t.Fatalf("error streak %d survived the heal", h.mgr.ErrorStreak())
	}
}
