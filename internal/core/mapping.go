package core

import (
	"fmt"
	"sort"

	"viyojit/internal/mmu"
)

// Mapping is a named, page-aligned range of the managed NV-DRAM region —
// the handle Viyojit's mmap-like API returns (paper §4.3). Reads and
// writes through a mapping go through the manager's fault path, so dirty
// tracking and budgeting apply transparently.
type Mapping struct {
	mgr  *Manager
	name string
	base int64 // byte offset of the first page
	size int64 // requested size in bytes
	live bool
}

// Name returns the name the mapping was created with.
func (mp *Mapping) Name() string { return mp.name }

// Size returns the mapping's size in bytes.
func (mp *Mapping) Size() int64 { return mp.size }

// Base returns the mapping's byte offset within the region (exposed for
// tooling; applications address relative to the mapping).
func (mp *Mapping) Base() int64 { return mp.base }

func (mp *Mapping) checkAccess(off int64, n int) error {
	if !mp.live {
		return fmt.Errorf("core: access to unmapped mapping %q", mp.name)
	}
	if off < 0 || int64(n) < 0 || off+int64(n) > mp.size {
		return fmt.Errorf("core: mapping %q: range [%d,%d) outside size %d", mp.name, off, off+int64(n), mp.size)
	}
	return nil
}

// WriteAt stores p at offset off within the mapping. First writes to a
// page trap into the manager, which may first clean a victim page if the
// dirty budget is exhausted.
func (mp *Mapping) WriteAt(p []byte, off int64) error {
	if err := mp.checkAccess(off, len(p)); err != nil {
		return err
	}
	return mp.mgr.region.WriteAt(p, mp.base+off)
}

// ReadAt fills p from offset off within the mapping. Reads are always at
// DRAM latency; Viyojit never read-protects pages.
func (mp *Mapping) ReadAt(p []byte, off int64) error {
	if err := mp.checkAccess(off, len(p)); err != nil {
		return err
	}
	return mp.mgr.region.ReadAt(p, mp.base+off)
}

// TelemetryWritable reports whether a write to [off, off+n) of the
// mapping could proceed right now without blocking: no page in the
// range is mid-clean (a write would stall on the in-flight IO), writes
// are not ladder-blocked, and admitting the range's not-yet-dirty pages
// stays within the effective dirty budget (so the fault path would not
// force a synchronous clean). This is the admission gate for the
// black-box flight recorder, which must degrade to sampling rather
// than ever stall the goroutine feeding it. Like the rest of the
// manager's bookkeeping it must be called from the simulation
// goroutine.
func (mp *Mapping) TelemetryWritable(off, n int64) bool {
	if mp == nil || !mp.live || off < 0 || n <= 0 || off+n > mp.size {
		return false
	}
	m := mp.mgr
	ps := int64(m.region.PageSize())
	first := mmu.PageID((mp.base + off) / ps)
	last := mmu.PageID((mp.base + off + n - 1) / ps)
	need := 0
	for p := first; p <= last; p++ {
		if dp, ok := m.dirty[p]; ok {
			if dp.cleaning {
				return false
			}
			continue // already dirty: writing costs nothing
		}
		need++
	}
	if need == 0 {
		return true
	}
	if m.writesBlocked() {
		return false
	}
	return len(m.dirty)+need <= m.effectiveBudget()
}

// pageRange returns the half-open page range [first, last) the mapping
// occupies.
func (mp *Mapping) pageRange() (mmu.PageID, mmu.PageID) {
	ps := int64(mp.mgr.region.PageSize())
	first := mmu.PageID(mp.base / ps)
	pages := (mp.size + ps - 1) / ps
	return first, first + mmu.PageID(pages)
}

// freeRange is a free page-aligned extent in the region allocator.
type freeRange struct {
	startPage int64
	pages     int64
}

// Map allocates a named, page-aligned mapping of size bytes from the
// region, first-fit. The pages were write-protected at manager startup
// (or re-protected when a previous mapping was unmapped), so the first
// write to each page traps as the design requires.
func (m *Manager) Map(name string, size int64) (*Mapping, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: Map %q with size %d", name, size)
	}
	ps := int64(m.region.PageSize())
	pages := (size + ps - 1) / ps
	m.initAllocator()
	for i, fr := range m.free {
		if fr.pages < pages {
			continue
		}
		base := fr.startPage * ps
		if fr.pages == pages {
			m.free = append(m.free[:i], m.free[i+1:]...)
		} else {
			m.free[i] = freeRange{startPage: fr.startPage + pages, pages: fr.pages - pages}
		}
		mp := &Mapping{mgr: m, name: name, base: base, size: size, live: true}
		m.mappings = append(m.mappings, mp)
		return mp, nil
	}
	return nil, fmt.Errorf("core: Map %q: no contiguous %d pages free in region of %d pages", name, pages, m.region.NumPages())
}

// Unmap persists and releases a mapping: every dirty page in its range is
// cleaned to the SSD (munmap of a persistent region must not lose data),
// the pages are re-protected for the next tenant of the address range,
// and the extent returns to the allocator.
func (m *Manager) Unmap(mp *Mapping) error {
	if mp == nil || mp.mgr != m {
		return fmt.Errorf("core: Unmap of foreign mapping")
	}
	if !mp.live {
		return fmt.Errorf("core: double Unmap of mapping %q", mp.name)
	}
	first, last := mp.pageRange()
	// Clean every in-range dirty page, restarting cleans as needed: in
	// hardware-assist mode a page rewritten after its snapshot completes
	// its IO while STAYING dirty, so a single pass could stall.
	for {
		pending := false
		started := false
		for page := first; page < last; page++ {
			dp, ok := m.dirty[page]
			if !ok {
				continue
			}
			pending = true
			if !dp.cleaning {
				m.st.unmapCleans.Inc()
				m.startClean(page)
				started = true
			}
		}
		if !pending {
			break
		}
		if !m.events.Step(m.clock) && !started {
			panic("core: Unmap blocked with no pending events")
		}
	}
	mp.live = false
	for i, cur := range m.mappings {
		if cur == mp {
			m.mappings = append(m.mappings[:i], m.mappings[i+1:]...)
			break
		}
	}
	ps := int64(m.region.PageSize())
	m.freeExtent(int64(first), (mp.size+ps-1)/ps)
	return nil
}

// Mappings returns the live mappings (for tooling and the power-failure
// checker).
func (m *Manager) Mappings() []*Mapping {
	out := make([]*Mapping, len(m.mappings))
	copy(out, m.mappings)
	return out
}

// initAllocator lazily seeds the free list with the whole region.
func (m *Manager) initAllocator() {
	if m.allocInit {
		return
	}
	m.allocInit = true
	m.free = []freeRange{{startPage: 0, pages: int64(m.region.NumPages())}}
}

// freeExtent returns a page extent to the allocator, coalescing
// neighbours.
func (m *Manager) freeExtent(startPage, pages int64) {
	m.free = append(m.free, freeRange{startPage: startPage, pages: pages})
	sort.Slice(m.free, func(i, j int) bool { return m.free[i].startPage < m.free[j].startPage })
	merged := m.free[:0]
	for _, fr := range m.free {
		if n := len(merged); n > 0 && merged[n-1].startPage+merged[n-1].pages == fr.startPage {
			merged[n-1].pages += fr.pages
		} else {
			merged = append(merged, fr)
		}
	}
	m.free = merged
}
