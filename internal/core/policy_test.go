package core

import (
	"testing"

	"viyojit/internal/mmu"
)

func pi(page mmu.PageID, history uint64, seq uint64) PageInfo {
	return PageInfo{Page: page, History: history, DirtiedSeq: seq}
}

func firstPage(t *testing.T, p VictimPolicy, cands []PageInfo) mmu.PageID {
	t.Helper()
	cp := make([]PageInfo, len(cands))
	copy(cp, cands)
	p.Order(cp)
	return cp[0].Page
}

func TestLRUUpdatePicksColdest(t *testing.T) {
	cands := []PageInfo{
		pi(1, 1<<63, 10),      // updated this epoch: hot
		pi(2, 1<<10, 11),      // updated 53 epochs ago: cold
		pi(3, 1<<63|1<<5, 12), // hot and old activity
	}
	if got := firstPage(t, LRUUpdate{}, cands); got != 2 {
		t.Fatalf("LRU-update victim = %d, want 2 (coldest)", got)
	}
}

func TestLRUUpdateTieBreaksByDirtiedSeqThenPage(t *testing.T) {
	cands := []PageInfo{pi(9, 0, 5), pi(4, 0, 3), pi(7, 0, 3)}
	cp := make([]PageInfo, len(cands))
	copy(cp, cands)
	LRUUpdate{}.Order(cp)
	if cp[0].Page != 4 || cp[1].Page != 7 || cp[2].Page != 9 {
		t.Fatalf("tie-break order = %v", cp)
	}
}

func TestFIFOOrdersByDirtiedSeq(t *testing.T) {
	cands := []PageInfo{
		pi(1, 1<<63, 30),
		pi(2, 0, 10),
		pi(3, 1<<62, 20),
	}
	if got := firstPage(t, FIFO{}, cands); got != 2 {
		t.Fatalf("FIFO victim = %d, want 2 (oldest dirtied)", got)
	}
}

func TestLFUPicksLeastFrequent(t *testing.T) {
	cands := []PageInfo{
		pi(1, 1<<63|1<<62|1<<61, 1), // 3 updates
		pi(2, 1<<63, 2),             // 1 update, most recent
		pi(3, 1<<3|1<<2, 3),         // 2 updates
	}
	if got := firstPage(t, LFU{}, cands); got != 2 {
		t.Fatalf("LFU victim = %d, want 2 (fewest updates)", got)
	}
}

func TestMRUUpdatePicksHottest(t *testing.T) {
	cands := []PageInfo{
		pi(1, 1<<63, 1),
		pi(2, 1<<10, 2),
	}
	if got := firstPage(t, MRUUpdate{}, cands); got != 1 {
		t.Fatalf("MRU-update victim = %d, want 1 (hottest)", got)
	}
}

func TestRandomIsDeterministicPerSeed(t *testing.T) {
	cands := []PageInfo{pi(1, 0, 1), pi(2, 0, 2), pi(3, 0, 3), pi(4, 0, 4), pi(5, 0, 5)}
	a := make([]PageInfo, len(cands))
	b := make([]PageInfo, len(cands))
	copy(a, cands)
	copy(b, cands)
	NewRandom(7).Order(a)
	NewRandom(7).Order(b)
	for i := range a {
		if a[i].Page != b[i].Page {
			t.Fatalf("same-seed Random orders differ: %v vs %v", a, b)
		}
	}
}

func TestRandomIsAPermutation(t *testing.T) {
	cands := make([]PageInfo, 20)
	for i := range cands {
		cands[i] = pi(mmu.PageID(i), 0, uint64(i))
	}
	NewRandom(1).Order(cands)
	seen := map[mmu.PageID]bool{}
	for _, c := range cands {
		if seen[c.Page] {
			t.Fatalf("Random duplicated page %d", c.Page)
		}
		seen[c.Page] = true
	}
	if len(seen) != 20 {
		t.Fatalf("Random dropped pages: %d/20", len(seen))
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]VictimPolicy{
		"lru-update": LRUUpdate{},
		"fifo":       FIFO{},
		"lfu":        LFU{},
		"random":     NewRandom(0),
		"mru-update": MRUUpdate{},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}
