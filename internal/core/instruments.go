package core

import (
	"sort"

	"viyojit/internal/mmu"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

// instruments is the manager's registry-backed metric storage. Every
// counter the old Stats struct held as a plain field now lives on an
// atomic obs instrument, so Stats() — and a registry Snapshot — can be
// read from any goroutine while the dispatch loop mutates. The exported
// Stats shape is unchanged; it is reconstructed from atomic loads.
type instruments struct {
	faults          *obs.Counter
	pagesDirtied    *obs.Counter
	forcedCleans    *obs.Counter
	proactiveCleans *obs.Counter
	unmapCleans     *obs.Counter
	retuneCleans    *obs.Counter
	cleansCompleted *obs.Counter
	cleanErrors     *obs.Counter
	cleanRetries    *obs.Counter
	degradedEnters  *obs.Counter
	degradedEpochs  *obs.Counter
	repairRedirties *obs.Counter
	repairCleans    *obs.Counter
	emergencyEnters *obs.Counter
	emergencyCleans *obs.Counter
	readOnlyEnters  *obs.Counter
	resumes         *obs.Counter
	writesBlocked   *obs.Counter
	budgetGrows     *obs.Counter
	budgetShrinks   *obs.Counter
	drainsCompleted *obs.Counter
	epochs          *obs.Counter
	skippedEpochs   *obs.Counter
	faultWaitNS     *obs.Counter

	dirtyPages  *obs.Gauge // current dirty-set size (budget occupancy)
	dirtyBudget *obs.Gauge // operative bound (drain ratchet while draining)
	maxDirty    *obs.Gauge // high-water mark of the dirty set
	healthState *obs.Gauge // ladder rung ordinal (HealthState)
	pressure    *obs.Gauge // EWMA pressure estimate, milli-pages

	cleanStall   *obs.Histogram // time fault/notify handlers blocked on cleans
	cleanLatency *obs.Histogram // submit→durable latency of completed cleans
}

func newInstruments(r *obs.Registry) *instruments {
	return &instruments{
		faults:          r.Counter("core_faults_total"),
		pagesDirtied:    r.Counter("core_pages_dirtied_total"),
		forcedCleans:    r.Counter("core_forced_cleans_total"),
		proactiveCleans: r.Counter("core_proactive_cleans_total"),
		unmapCleans:     r.Counter("core_unmap_cleans_total"),
		retuneCleans:    r.Counter("core_retune_cleans_total"),
		cleansCompleted: r.Counter("core_cleans_completed_total"),
		cleanErrors:     r.Counter("core_clean_errors_total"),
		cleanRetries:    r.Counter("core_clean_retries_total"),
		degradedEnters:  r.Counter("core_degraded_enters_total"),
		degradedEpochs:  r.Counter("core_degraded_epochs_total"),
		repairRedirties: r.Counter("core_repair_redirties_total"),
		repairCleans:    r.Counter("core_repair_cleans_total"),
		emergencyEnters: r.Counter("core_emergency_enters_total"),
		emergencyCleans: r.Counter("core_emergency_cleans_total"),
		readOnlyEnters:  r.Counter("core_readonly_enters_total"),
		resumes:         r.Counter("core_resumes_total"),
		writesBlocked:   r.Counter("core_writes_blocked_total"),
		budgetGrows:     r.Counter("core_budget_grows_total"),
		budgetShrinks:   r.Counter("core_budget_shrinks_total"),
		drainsCompleted: r.Counter("core_drains_completed_total"),
		epochs:          r.Counter("core_epochs_total"),
		skippedEpochs:   r.Counter("core_skipped_epochs_total"),
		faultWaitNS:     r.Counter("core_fault_wait_ns_total"),
		dirtyPages:      r.Gauge("core_dirty_pages"),
		dirtyBudget:     r.Gauge("core_dirty_budget_pages"),
		maxDirty:        r.Gauge("core_max_dirty_pages"),
		healthState:     r.Gauge("core_health_state"),
		pressure:        r.Gauge("core_pressure_millipages"),
		cleanStall:      r.Histogram("core_clean_stall_ns"),
		cleanLatency:    r.Histogram("core_clean_latency_ns"),
	}
}

// Stats returns a snapshot of the counters. Safe to call from any
// goroutine: every field is an atomic load.
func (m *Manager) Stats() Stats {
	return Stats{
		Faults:           m.st.faults.Value(),
		PagesDirtied:     m.st.pagesDirtied.Value(),
		ForcedCleans:     m.st.forcedCleans.Value(),
		ProactiveCleans:  m.st.proactiveCleans.Value(),
		UnmapCleans:      m.st.unmapCleans.Value(),
		RetuneCleans:     m.st.retuneCleans.Value(),
		CleansCompleted:  m.st.cleansCompleted.Value(),
		CleanErrors:      m.st.cleanErrors.Value(),
		CleanRetries:     m.st.cleanRetries.Value(),
		DegradedEnters:   m.st.degradedEnters.Value(),
		DegradedEpochs:   m.st.degradedEpochs.Value(),
		RepairRedirties:  m.st.repairRedirties.Value(),
		RepairCleans:     m.st.repairCleans.Value(),
		EmergencyEnters:  m.st.emergencyEnters.Value(),
		EmergencyCleans:  m.st.emergencyCleans.Value(),
		ReadOnlyEnters:   m.st.readOnlyEnters.Value(),
		Resumes:          m.st.resumes.Value(),
		WritesBlocked:    m.st.writesBlocked.Value(),
		BudgetGrows:      m.st.budgetGrows.Value(),
		BudgetShrinks:    m.st.budgetShrinks.Value(),
		DrainsCompleted:  m.st.drainsCompleted.Value(),
		Epochs:           m.st.epochs.Value(),
		SkippedEpochs:    m.st.skippedEpochs.Value(),
		MaxDirtyObserved: int(m.st.maxDirty.Value()),
		FaultWaitTotal:   sim.Duration(m.st.faultWaitNS.Value()),
	}
}

// noteDirtyLevel publishes the dirty-set size after a mutation; the
// high-water mark ratchets with it.
func (m *Manager) noteDirtyLevel() {
	n := int64(len(m.dirty))
	m.st.dirtyPages.Set(n)
	m.st.maxDirty.SetMax(n)
}

// noteBudgetLevel publishes the operative bound after a retune or a
// drain-ratchet move.
func (m *Manager) noteBudgetLevel() {
	m.st.dirtyBudget.Set(int64(m.effectiveBudget()))
}

// noteFaultWait charges the time a fault/notify handler spent blocked on
// cleans; actual stalls (non-zero waits) also land in the clean-stall
// histogram — the paper's tail-latency mechanism made directly visible.
func (m *Manager) noteFaultWait(wait sim.Duration) {
	m.st.faultWaitNS.Add(uint64(wait))
	if wait > 0 {
		m.st.cleanStall.Record(wait)
	}
}

// setState moves the ladder rung and mirrors it onto the health gauge.
func (m *Manager) setState(s HealthState) {
	m.state = s
	m.st.healthState.Set(int64(s))
}

// sortedDirtyPages returns the dirty set's page IDs in ascending order.
// Whole-set drain paths (FlushAll, emergency drain) iterate this instead
// of ranging the map so submission order — and therefore completion
// times, span order, and exports — is identical across same-seed runs.
func (m *Manager) sortedDirtyPages() []mmu.PageID {
	pages := make([]mmu.PageID, 0, len(m.dirty))
	for page := range m.dirty {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}
