package core

import (
	"testing"
	"testing/quick"

	"viyojit/internal/mmu"
	"viyojit/internal/power"
	"viyojit/internal/sim"
)

func newHWHarness(t testing.TB, pages, budget int) *harness {
	t.Helper()
	return newHarness(t, pages, Config{DirtyBudgetPages: budget, HardwareAssist: true})
}

func TestHWNoProtectionNoTraps(t *testing.T) {
	h := newHWHarness(t, 16, 8)
	pt := h.region.PageTable()
	for p := 0; p < 16; p++ {
		if pt.IsProtected(mmu.PageID(p)) {
			t.Fatalf("page %d protected in hardware-assist mode", p)
		}
	}
	for p := 0; p < 6; p++ {
		h.writePage(t, p, byte(p+1))
	}
	if got := pt.Stats().Faults; got != 0 {
		t.Fatalf("hardware mode took %d protection faults", got)
	}
	if h.mgr.DirtyCount() != 6 {
		t.Fatalf("dirty count = %d, want 6", h.mgr.DirtyCount())
	}
	if h.mgr.Stats().PagesDirtied != 6 {
		t.Fatalf("pages dirtied = %d", h.mgr.Stats().PagesDirtied)
	}
}

func TestHWBudgetEnforced(t *testing.T) {
	h := newHWHarness(t, 32, 4)
	for p := 0; p < 20; p++ {
		h.writePage(t, p, byte(p+1))
		if h.mgr.DirtyCount() > 4 {
			t.Fatalf("dirty %d exceeds budget 4", h.mgr.DirtyCount())
		}
	}
	if h.mgr.Stats().ForcedCleans == 0 {
		t.Fatal("no at-budget interrupts taken")
	}
}

func TestHWFirstWriteCheaperThanSW(t *testing.T) {
	measure := func(hw bool) sim.Duration {
		h := newHarness(t, 64, Config{DirtyBudgetPages: 32, HardwareAssist: hw})
		t0 := h.clock.Now()
		for p := 0; p < 16; p++ {
			h.writePage(t, p, 1)
		}
		return h.clock.Now().Sub(t0)
	}
	sw, hw := measure(false), measure(true)
	if hw >= sw {
		t.Fatalf("hardware first-writes (%v) not cheaper than software (%v)", hw, sw)
	}
}

func TestHWRewriteDuringCleanStaysDirty(t *testing.T) {
	h := newHWHarness(t, 16, 8)
	h.writePage(t, 3, 0x11)
	// Start a clean of page 3 manually, then write to it before the IO
	// completes: hardware mode has no protection, so the write lands,
	// and the completion must NOT mark the page clean.
	h.mgr.startClean(3)
	if err := h.region.WriteAt([]byte{0x22}, 3*4096); err != nil {
		t.Fatal(err)
	}
	h.dev.WaitIdle()
	h.mgr.Pump()
	if _, ok := h.mgr.dirty[3]; !ok {
		t.Fatal("rewritten page marked clean; its latest bytes are not durable")
	}
	// A full flush then makes the new contents durable.
	h.mgr.FlushAll()
	durable, ok := h.dev.Durable(3)
	if !ok || durable[0] != 0x22 {
		t.Fatalf("latest contents not durable after flush: %v", durable[:1])
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
}

func TestHWPowerFailDurability(t *testing.T) {
	h := newHWHarness(t, 64, 16)
	for p := 0; p < 40; p++ {
		h.writePage(t, p, byte(p+1))
	}
	pm := power.Default()
	joules := pm.FlushWatts(h.region.Size()) * (h.dev.FlushTimeFor(16) + 10*sim.Millisecond).Seconds()
	report := h.mgr.PowerFail(pm, joules)
	if !report.Survived {
		t.Fatal("hardware-mode flush did not survive")
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
}

func TestHWEpochScansStillTrackRecency(t *testing.T) {
	h := newHWHarness(t, 16, 3)
	// Hot pages 1, 2; cold page 0.
	h.writePage(t, 0, 1)
	h.writePage(t, 1, 2)
	h.writePage(t, 2, 3)
	for e := 0; e < 5; e++ {
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump()
		h.writePage(t, 1, byte(10+e))
		h.writePage(t, 2, byte(20+e))
	}
	h.writePage(t, 3, 9) // forces eviction of the cold page
	if _, still := h.mgr.dirty[0]; still {
		t.Fatal("cold page not chosen as victim in hardware mode")
	}
	for _, hot := range []mmu.PageID{1, 2} {
		if _, ok := h.mgr.dirty[hot]; !ok {
			t.Fatalf("hot page %d evicted in hardware mode", hot)
		}
	}
}

// Property: hardware mode preserves the budget invariant and durability
// under random workloads, exactly like software mode.
func TestHWBudgetInvariantProperty(t *testing.T) {
	f := func(seed uint64, budgetRaw uint8, nOps uint16) bool {
		const pages = 64
		budget := int(budgetRaw)%16 + 1
		h := newHarness(t, pages, Config{DirtyBudgetPages: budget, HardwareAssist: true})
		rng := sim.NewRNG(seed)
		shadow := make([]byte, pages)
		ops := int(nOps)%400 + 1
		for i := 0; i < ops; i++ {
			p := rng.Intn(pages)
			marker := byte(rng.Uint64()) | 1
			if err := h.region.WriteAt([]byte{marker}, int64(p)*4096); err != nil {
				return false
			}
			shadow[p] = marker
			h.mgr.Pump()
			if h.mgr.DirtyCount() > budget {
				return false
			}
			if rng.Intn(4) == 0 {
				h.clock.Advance(sim.Millisecond)
				h.mgr.Pump()
			}
		}
		buf := make([]byte, 1)
		for p := 0; p < pages; p++ {
			if err := h.region.ReadAt(buf, int64(p)*4096); err != nil || buf[0] != shadow[p] {
				return false
			}
		}
		h.mgr.FlushAll()
		return h.mgr.VerifyDurability() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHWUnmapWithRewrittenClean(t *testing.T) {
	h := newHWHarness(t, 32, 16)
	mp, err := h.mgr.Map("m", 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 8; p++ {
		if err := mp.WriteAt([]byte{byte(p + 1)}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
	}
	// Start a clean and rewrite the page before the IO completes, so the
	// completion leaves it dirty (rewritten); Unmap must still converge.
	h.mgr.startClean(0)
	if err := mp.WriteAt([]byte{0x99}, 0); err != nil {
		t.Fatal(err)
	}
	if err := h.mgr.Unmap(mp); err != nil {
		t.Fatal(err)
	}
	durable, ok := h.dev.Durable(0)
	if !ok || durable[0] != 0x99 {
		t.Fatalf("unmap persisted stale contents: %v", durable[:1])
	}
	if h.mgr.DirtyCount() != 0 {
		t.Fatalf("dirty after unmap = %d", h.mgr.DirtyCount())
	}
}
