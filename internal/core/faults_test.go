package core

import (
	"testing"
	"testing/quick"

	"viyojit/internal/faultinject"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// newFaultedHarness is newHarness plus a faultinject.Injector wired into
// the SSD, so tests can script clean-path write failures.
func newFaultedHarness(t testing.TB, pages int, cfg Config, fcfg faultinject.Config) (*harness, *faultinject.Injector) {
	t.Helper()
	h := newHarness(t, pages, cfg)
	inj := faultinject.New(fcfg)
	h.dev.SetFaultInjector(inj)
	return h, inj
}


// retryPending reports whether any dirty page is waiting on a scheduled
// clean retry (failed at least once, not currently being cleaned).
func (m *Manager) retryPending() bool {
	for _, dp := range m.dirty {
		if !dp.cleaning && dp.attempts > 0 {
			return true
		}
	}
	return false
}

// settle advances virtual time in small steps until the SSD is idle and
// no retry is pending — bounded, unlike draining the queue (the epoch
// tick reschedules itself forever).
func settle(t testing.TB, h *harness) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		h.clock.Advance(100 * sim.Microsecond)
		h.mgr.Pump()
		if h.dev.Outstanding() == 0 && !h.mgr.retryPending() {
			return
		}
	}
	t.Fatal("simulation did not settle within 100 ms of virtual time")
}

// TestCleanRetryRecoversFromTransientError is the deterministic
// retry-with-backoff scenario: the SSD rejects the first two attempts to
// clean a page, the manager retries with exponential backoff, the third
// attempt lands — and the dirty count never exceeds the budget at any
// point in between. (Forced cleans on the blocked-write path resubmit
// inline instead — see TestBudgetEnforcedDespiteFailingCleans.)
func TestCleanRetryRecoversFromTransientError(t *testing.T) {
	const budget = 4
	h, inj := newFaultedHarness(t, 8, Config{DirtyBudgetPages: budget}, faultinject.Config{})
	inj.FailNextWrites(2)

	h.writePage(t, 0, 0xA1)
	h.writePage(t, 1, 0xB2)
	h.mgr.startClean(0) // the proactive path: async, retried on failure

	for i := 0; i < 200 && h.mgr.Stats().CleansCompleted == 0; i++ {
		h.clock.Advance(50 * sim.Microsecond)
		h.mgr.Pump()
		if got := h.mgr.DirtyCount(); got > budget {
			t.Fatalf("dirty count %d exceeds budget %d while retrying", got, budget)
		}
	}
	st := h.mgr.Stats()
	if st.CleansCompleted == 0 {
		t.Fatal("clean never completed despite retries")
	}
	if st.CleanErrors != 2 {
		t.Fatalf("CleanErrors = %d, want 2 (both scripted failures hit the clean path)", st.CleanErrors)
	}
	if st.CleanRetries != 2 {
		t.Fatalf("CleanRetries = %d, want 2 (each failure resubmitted after backoff)", st.CleanRetries)
	}
	if got := h.dev.Stats().WriteErrors; got != 2 {
		t.Fatalf("SSD WriteErrors = %d, want 2", got)
	}

	// The retried page's final contents are the ones that became durable.
	h.mgr.FlushAll()
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability after retry recovery: %v", err)
	}
}

// TestCleanRetryBacksOffExponentially pins the retry schedule: with a
// 100 µs base, the first resubmission comes ~100 µs after the failure,
// the second ~200 µs after the next.
func TestCleanRetryBacksOffExponentially(t *testing.T) {
	h, inj := newFaultedHarness(t, 4,
		Config{DirtyBudgetPages: 4, CleanRetryBackoff: 100 * sim.Microsecond},
		faultinject.Config{})
	inj.FailNextWrites(2)

	h.writePage(t, 0, 0x01)
	h.mgr.startClean(0)

	until := func(cond func(Stats) bool) sim.Duration {
		start := h.clock.Now()
		for i := 0; i < 10000 && !cond(h.mgr.Stats()); i++ {
			h.clock.Advance(5 * sim.Microsecond)
			h.mgr.Pump()
		}
		if !cond(h.mgr.Stats()) {
			t.Fatalf("condition not reached; stats %+v", h.mgr.Stats())
		}
		return h.clock.Now().Sub(start)
	}
	until(func(s Stats) bool { return s.CleanErrors == 1 })
	d1 := until(func(s Stats) bool { return s.CleanRetries == 1 })
	if d1 < 80*sim.Microsecond || d1 > 120*sim.Microsecond {
		t.Fatalf("first retry after %v, want ~100 µs", d1)
	}
	until(func(s Stats) bool { return s.CleanErrors == 2 })
	d2 := until(func(s Stats) bool { return s.CleanRetries == 2 })
	if d2 < 180*sim.Microsecond || d2 > 220*sim.Microsecond {
		t.Fatalf("second retry after %v, want ~200 µs (doubled)", d2)
	}
	until(func(s Stats) bool { return s.CleansCompleted >= 1 })
}

// TestBudgetEnforcedDespiteFailingCleans: a write blocked on a full
// budget cannot afford backoff — the forced-clean loop resubmits inline
// until a clean lands, and the budget holds throughout.
func TestBudgetEnforcedDespiteFailingCleans(t *testing.T) {
	const budget = 2
	h, inj := newFaultedHarness(t, 8, Config{DirtyBudgetPages: budget}, faultinject.Config{})
	inj.FailNextWrites(3)

	h.writePage(t, 0, 0xA1)
	h.writePage(t, 1, 0xB2)
	h.writePage(t, 2, 0xC3) // blocks until a clean finally lands
	if got := h.mgr.DirtyCount(); got > budget {
		t.Fatalf("dirty count %d exceeds budget %d after forced clean", got, budget)
	}
	st := h.mgr.Stats()
	if st.CleanErrors != 3 {
		t.Fatalf("CleanErrors = %d, want 3", st.CleanErrors)
	}
	if st.CleansCompleted == 0 {
		t.Fatal("forced clean never landed")
	}
	settle(t, h)
	h.mgr.FlushAll()
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability: %v", err)
	}
}

// TestDegradedModeEntersAndHeals: enough consecutive clean failures trip
// degraded mode; consecutive successes heal it.
func TestDegradedModeEntersAndHeals(t *testing.T) {
	const budget = 1
	h, inj := newFaultedHarness(t, 16,
		Config{DirtyBudgetPages: budget, DegradeAfterErrors: 3, HealAfterCleans: 2},
		faultinject.Config{})
	inj.FailNextWrites(3)

	h.writePage(t, 0, 0x11)
	h.writePage(t, 1, 0x22) // forced clean of page 0 fails 3× then lands
	settle(t, h)
	st := h.mgr.Stats()
	if st.DegradedEnters != 1 {
		t.Fatalf("DegradedEnters = %d, want 1 after 3 consecutive failures", st.DegradedEnters)
	}

	// One success so far (the 4th attempt); one more heals.
	if !h.mgr.Degraded() {
		t.Fatal("manager healed after a single successful clean, HealAfterCleans is 2")
	}
	h.writePage(t, 2, 0x33) // forces another (now healthy) clean
	settle(t, h)
	if h.mgr.Degraded() {
		t.Fatalf("manager still degraded after %d clean successes", h.mgr.Stats().CleansCompleted)
	}
}

// TestDegradedEpochsCountAndExtraCleaning: while degraded, epoch ticks
// are counted and the proactive-clean threshold shrinks (cleaning starts
// earlier, keeping more headroom against an unreliable SSD).
func TestDegradedEpochsCountAndExtraCleaning(t *testing.T) {
	const budget = 8
	h, inj := newFaultedHarness(t, 32,
		Config{DirtyBudgetPages: budget, DegradeAfterErrors: 2, HealAfterCleans: 100},
		faultinject.Config{})
	inj.FailNextWrites(2)

	// Dirty past the degraded threshold (budget/2 = 4 after halving)
	// but below the healthy one, then trip degradation via two failed
	// proactive cleans.
	for p := 0; p < 6; p++ {
		h.writePage(t, p, byte(0x40+p))
	}
	h.clock.Advance(sim.Millisecond) // epoch tick → proactive cleans → 2 failures
	h.mgr.Pump()
	settle(t, h)
	if !h.mgr.Degraded() {
		t.Fatalf("not degraded after %d clean errors (streak threshold 2)", h.mgr.Stats().CleanErrors)
	}
	before := h.mgr.Stats().DegradedEpochs
	h.clock.Advance(sim.Millisecond)
	h.mgr.Pump()
	after := h.mgr.Stats().DegradedEpochs
	if after <= before {
		t.Fatalf("DegradedEpochs did not advance across an epoch tick while degraded (%d → %d)", before, after)
	}
}

// TestTornCleanIsRetriedAndConverges: a torn page program leaves garbage
// on the SSD, but the page stays dirty in DRAM and the retry overwrites
// the torn copy — the stores converge.
func TestTornCleanIsRetriedAndConverges(t *testing.T) {
	const budget = 1
	h, inj := newFaultedHarness(t, 4, Config{DirtyBudgetPages: budget}, faultinject.Config{})
	inj.ScriptAt(0, ssd.FaultDecision{Fault: ssd.FaultTorn})

	h.writePage(t, 0, 0x77)
	h.writePage(t, 1, 0x88) // forces a clean of page 0, which tears
	settle(t, h)
	if got := h.dev.Stats().TornWrites; got != 1 {
		t.Fatalf("TornWrites = %d, want 1", got)
	}
	h.mgr.FlushAll()
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability after torn clean: %v", err)
	}
}

// TestBudgetInvariantUnderSSDFaults is the fault-injected version of
// TestBudgetInvariantProperty: a random mix of reads and writes over
// many epochs with transient, torn, and latency-spiked SSD writes — the
// dirty count must respect the budget after every single operation, and
// the data must survive a final flush.
func TestBudgetInvariantUnderSSDFaults(t *testing.T) {
	f := func(seed uint64, budgetRaw uint8, nOps uint16) bool {
		const pages = 48
		budget := int(budgetRaw)%12 + 2
		h, _ := newFaultedHarness(t, pages, Config{DirtyBudgetPages: budget}, faultinject.Config{
			Seed:          seed ^ 0xF0F0,
			TransientProb: 0.10,
			TornProb:      0.05,
			SpikeProb:     0.10,
			MaxFaults:     48,
		})
		rng := sim.NewRNG(seed)
		shadow := make([]byte, pages)
		buf := make([]byte, 1)
		ops := int(nOps)%400 + 50
		for i := 0; i < ops; i++ {
			p := rng.Intn(pages)
			if rng.Float64() < 0.4 { // mixed workload: 40% reads
				if err := h.region.ReadAt(buf, int64(p)*4096); err != nil {
					return false
				}
				if buf[0] != shadow[p] {
					return false
				}
			} else {
				marker := byte(rng.Uint64()) | 1
				if err := h.region.WriteAt([]byte{marker}, int64(p)*4096); err != nil {
					return false
				}
				shadow[p] = marker
			}
			h.mgr.Pump()
			if h.mgr.DirtyCount() > budget {
				return false
			}
			if rng.Intn(4) == 0 {
				h.clock.Advance(sim.Millisecond)
				h.mgr.Pump()
			}
		}
		settle(t, h)
		if h.mgr.DirtyCount() > budget {
			return false
		}
		h.mgr.FlushAll()
		return h.mgr.VerifyDurability() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
