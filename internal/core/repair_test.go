package core

import (
	"bytes"
	"errors"
	"testing"

	"viyojit/internal/mmu"
)

func TestRepairPageRedirtiesAndRecleans(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	h.writePage(t, 2, 0xAB)
	h.mgr.FlushAll()
	if h.mgr.DirtyCount() != 0 {
		t.Fatalf("dirty count %d before repair", h.mgr.DirtyCount())
	}
	if err := h.mgr.RepairPage(2); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !h.mgr.IsDirty(2) {
		t.Fatal("repaired page not re-dirtied")
	}
	if h.mgr.Stats().RepairRedirties != 1 {
		t.Fatalf("RepairRedirties = %d, want 1", h.mgr.Stats().RepairRedirties)
	}
	h.mgr.FlushAll()
	durable, ok := h.dev.Durable(2)
	if !ok || !bytes.Equal(durable, h.region.RawPage(2)) {
		t.Fatal("repair re-clean did not refresh the durable copy")
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability after repair: %v", err)
	}
}

// TestRepairPageDirtyKicksClean: repairing an already-dirty page must
// not double-admit it — it kicks an immediate clean instead.
func TestRepairPageDirtyKicksClean(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	h.writePage(t, 1, 0x11)
	before := h.mgr.DirtyCount()
	if err := h.mgr.RepairPage(1); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if h.mgr.DirtyCount() != before {
		t.Fatalf("repair of a dirty page changed dirty count %d -> %d", before, h.mgr.DirtyCount())
	}
	if h.mgr.Stats().RepairCleans != 1 {
		t.Fatalf("RepairCleans = %d, want 1", h.mgr.Stats().RepairCleans)
	}
	h.mgr.FlushAll()
}

// TestRepairPageBudgetFull: a repair into a budget-full dirty set forces
// room first; the invariant (checked on every transition, panics on
// violation) must hold throughout.
func TestRepairPageBudgetFull(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 2})
	for p := 0; p < 6; p++ {
		h.writePage(t, p, byte(p+1))
	}
	h.mgr.FlushAll()
	h.writePage(t, 6, 0x66)
	h.writePage(t, 7, 0x77)
	if h.mgr.DirtyCount() != 2 {
		t.Fatalf("dirty count %d, want budget-full 2", h.mgr.DirtyCount())
	}
	forced := h.mgr.Stats().ForcedCleans
	if err := h.mgr.RepairPage(0); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if h.mgr.DirtyCount() > 2 {
		t.Fatalf("dirty count %d exceeds budget after repair", h.mgr.DirtyCount())
	}
	if h.mgr.Stats().ForcedCleans == forced {
		t.Fatal("repair admitted into a full budget without forcing a clean")
	}
	h.mgr.FlushAll()
}

func TestRepairPageErrors(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	h.writePage(t, 0, 0x01)
	h.mgr.FlushAll()
	if err := h.mgr.RepairPage(mmu.PageID(h.region.NumPages())); !errors.Is(err, ErrRepairNoSource) {
		t.Fatalf("out-of-region repair: err = %v, want ErrRepairNoSource", err)
	}
	h.mgr.EnterReadOnly()
	if err := h.mgr.RepairPage(0); !errors.Is(err, ErrRepairBlocked) {
		t.Fatalf("blocked repair: err = %v, want ErrRepairBlocked", err)
	}
	h.mgr.Close()
	if err := h.mgr.RepairPage(0); !errors.Is(err, ErrRepairClosed) {
		t.Fatalf("closed repair: err = %v, want ErrRepairClosed", err)
	}
}

func TestEnterDegraded(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	if h.mgr.HealthState() != StateHealthy {
		t.Fatalf("initial state %v", h.mgr.HealthState())
	}
	h.mgr.EnterDegraded()
	if h.mgr.HealthState() != StateDegraded {
		t.Fatalf("state %v after EnterDegraded", h.mgr.HealthState())
	}
	if h.mgr.Stats().DegradedEnters == 0 {
		t.Fatal("DegradedEnters not counted")
	}
	// Idempotent from Degraded or above.
	h.mgr.EnterDegraded()
	if h.mgr.HealthState() != StateDegraded {
		t.Fatal("second EnterDegraded changed state")
	}
}
