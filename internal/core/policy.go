package core

import (
	"math/bits"
	"sort"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// PageInfo is the per-page evidence a victim policy orders by.
type PageInfo struct {
	Page mmu.PageID
	// History is the 64-epoch aging word: each epoch it shifts right one
	// bit, and the top bit is set if the page was updated during that
	// epoch. Larger values mean more recently (and more frequently)
	// updated.
	History uint64
	// DirtiedSeq is a monotone sequence number assigned when the page
	// last entered the dirty set.
	DirtiedSeq uint64
}

// VictimPolicy orders dirty pages victim-first: after Order returns,
// cands[0] is the page the manager should clean next. Implementations
// must be deterministic given their inputs (Random carries its own seeded
// generator).
type VictimPolicy interface {
	// Name identifies the policy in stats and benchmark output.
	Name() string
	// Order sorts cands in place, best victim first.
	Order(cands []PageInfo)
}

// LRUUpdate is the paper's policy (§5.2): clean the least recently
// updated page first, using the 64-epoch aging history. Ties (equal
// histories, common when many pages were updated in the same epochs)
// break toward the page that became dirty earliest, then by page number
// for determinism.
type LRUUpdate struct{}

// Name implements VictimPolicy.
func (LRUUpdate) Name() string { return "lru-update" }

// Order implements VictimPolicy.
func (LRUUpdate) Order(cands []PageInfo) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].History != cands[j].History {
			return cands[i].History < cands[j].History
		}
		if cands[i].DirtiedSeq != cands[j].DirtiedSeq {
			return cands[i].DirtiedSeq < cands[j].DirtiedSeq
		}
		return cands[i].Page < cands[j].Page
	})
}

// FIFO cleans pages in the order they became dirty, ignoring update
// recency. It is an ablation baseline: cheaper to maintain but blind to
// re-dirtying.
type FIFO struct{}

// Name implements VictimPolicy.
func (FIFO) Name() string { return "fifo" }

// Order implements VictimPolicy.
func (FIFO) Order(cands []PageInfo) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].DirtiedSeq != cands[j].DirtiedSeq {
			return cands[i].DirtiedSeq < cands[j].DirtiedSeq
		}
		return cands[i].Page < cands[j].Page
	})
}

// LFU cleans the page with the fewest updates in the history window,
// breaking ties toward the older last update. It is an ablation
// alternative that weights frequency over recency.
type LFU struct{}

// Name implements VictimPolicy.
func (LFU) Name() string { return "lfu" }

// Order implements VictimPolicy.
func (LFU) Order(cands []PageInfo) {
	sort.Slice(cands, func(i, j int) bool {
		pi, pj := bits.OnesCount64(cands[i].History), bits.OnesCount64(cands[j].History)
		if pi != pj {
			return pi < pj
		}
		if cands[i].History != cands[j].History {
			return cands[i].History < cands[j].History
		}
		return cands[i].Page < cands[j].Page
	})
}

// Random cleans a uniformly random dirty page. It is the ablation floor:
// any useful recency signal must beat it.
type Random struct {
	rng *sim.RNG
}

// NewRandom returns a Random policy with its own deterministic stream.
func NewRandom(seed uint64) *Random { return &Random{rng: sim.NewRNG(seed)} }

// Name implements VictimPolicy.
func (*Random) Name() string { return "random" }

// Order implements VictimPolicy.
func (r *Random) Order(cands []PageInfo) {
	// Sort first so the shuffle is a deterministic function of the
	// candidate set, not of map iteration order upstream.
	sort.Slice(cands, func(i, j int) bool { return cands[i].Page < cands[j].Page })
	for i := len(cands) - 1; i > 0; i-- {
		j := r.rng.Intn(i + 1)
		cands[i], cands[j] = cands[j], cands[i]
	}
}

// MRUUpdate cleans the MOST recently updated page first — a deliberately
// adversarial policy that quantifies how much victim choice matters (it
// keeps evicting the hot set).
type MRUUpdate struct{}

// Name implements VictimPolicy.
func (MRUUpdate) Name() string { return "mru-update" }

// Order implements VictimPolicy.
func (MRUUpdate) Order(cands []PageInfo) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].History != cands[j].History {
			return cands[i].History > cands[j].History
		}
		return cands[i].Page < cands[j].Page
	})
}
