package core

// Scrub repair support. When the scrubber (internal/scrub) finds a
// durable page whose SSD copy fails checksum verification but whose
// NV-DRAM copy is authoritative (the page is clean: DRAM == what the SSD
// *should* hold), the fix is a forced re-clean — re-dirty the page and
// push it back through the normal clean path so the standard completion
// handling, retry/backoff, and durability bookkeeping all apply. The
// re-dirty is budget-enforced exactly like a write fault: admitting the
// page may force other cleans first, so `dirty ≤ budget` holds at every
// step even while repairing.

import (
	"errors"
	"fmt"

	"viyojit/internal/mmu"
)

var (
	// ErrRepairClosed means the manager was closed; the caller should
	// quarantine instead.
	ErrRepairClosed = errors.New("core: cannot repair through a closed manager")
	// ErrRepairBlocked means the ladder has writes blocked
	// (EmergencyFlush/ReadOnly); repair must wait or quarantine.
	ErrRepairBlocked = errors.New("core: writes blocked; cannot re-dirty for repair")
	// ErrRepairNoSource means the page is outside the managed region, so
	// there is no authoritative DRAM copy to repair from.
	ErrRepairNoSource = errors.New("core: page outside the region; no authoritative copy")
)

// RepairPage re-persists page from its authoritative NV-DRAM copy. A
// page already dirty just has its clean kicked (its corruption window
// closes when the in-flight or next clean lands); a clean page is
// re-dirtied through budget-enforced admission — forcing other cleans
// first if the set is at budget — and submitted immediately. The repair
// write goes through startClean, so injected faults, retries, and stats
// behave exactly as for any other clean.
func (m *Manager) RepairPage(page mmu.PageID) error {
	if m.closed {
		return ErrRepairClosed
	}
	if m.writesBlocked() {
		return ErrRepairBlocked
	}
	if int(page) >= m.region.NumPages() {
		return fmt.Errorf("%w: page %d, region has %d pages", ErrRepairNoSource, page, m.region.NumPages())
	}
	if dp, ok := m.dirty[page]; ok {
		// The latest contents are already queued to become durable; an
		// in-flight or fresh clean overwrites the corrupt image.
		if !dp.cleaning {
			m.st.repairCleans.Inc()
			m.startClean(page)
		}
		return nil
	}

	// Budget-enforced admission, mirroring the fault path: the repair
	// must never push the dirty set past what the battery covers.
	for len(m.dirty) >= m.effectiveBudget() {
		m.st.forcedCleans.Inc()
		if !m.cleanOneSync() {
			panic(fmt.Sprintf("core: dirty set %d at budget %d with no cleanable victim", len(m.dirty), m.effectiveBudget()))
		}
	}
	// cleanOneSync pumps events; the world may have changed under us.
	if m.closed {
		return ErrRepairClosed
	}
	if m.writesBlocked() {
		return ErrRepairBlocked
	}

	m.dirtySeq++
	m.dirty[page] = &dirtyPage{seq: m.dirtySeq}
	m.ageHistory(page)
	m.st.repairRedirties.Inc()
	m.noteDirtyLevel()
	m.checkInvariant()
	m.startClean(page)
	return nil
}

// IsDirty reports whether page is in the dirty set (its latest contents
// not yet durable). The scrubber uses it to pick the repair source: a
// dirty page's SSD copy is expected to be stale, so a checksum mismatch
// there is not yet corruption of record.
func (m *Manager) IsDirty(page mmu.PageID) bool {
	_, ok := m.dirty[page]
	return ok
}

// Closed reports whether the manager has been detached (Close called).
func (m *Manager) Closed() bool { return m.closed }

// EnterDegraded escalates to the Degraded rung on an external signal —
// the health monitor's response to scrub detections. The manager's own
// error-streak entry and streak/quiet heal paths apply unchanged;
// escalation above Degraded remains the policy's explicit call.
func (m *Manager) EnterDegraded() {
	if m.state == StateHealthy {
		m.setState(StateDegraded)
		m.healthyStreak = 0
		m.st.degradedEnters.Inc()
	}
}
