// Package core implements the paper's primary contribution: the Viyojit
// manager, which presents battery-backed DRAM whose full capacity is
// durable while only a bounded number of pages — the dirty budget derived
// from the provisioned battery — is ever dirty.
//
// The mechanism follows §5 of the paper:
//
//  1. At startup every NV-DRAM page is write-protected.
//  2. A write to a protected page traps; the fault handler counts the page
//     into the dirty set and unprotects it so subsequent writes proceed at
//     DRAM speed.
//  3. If the dirty set is at the budget, the handler first cleans a victim
//     (re-protect → copy to SSD → remove from the dirty set) before
//     admitting the new page, so the bound holds at every instant.
//  4. An epoch timer (1 ms default) walks the page table, reading and
//     clearing hardware dirty bits (flushing the TLB first so the bits are
//     fresh), maintains a 64-epoch per-page update history, estimates the
//     dirty-page pressure with an exponentially decaying average, and
//     proactively cleans least-recently-updated pages down to
//     budget − pressure so bursts don't block on the SSD.
package core

import (
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// Config tunes the manager. The zero value of optional fields selects the
// paper's settings.
type Config struct {
	// DirtyBudgetPages is the hard bound on simultaneously dirty pages.
	// It must be at least 1. Derive it from a battery with
	// battery.DirtyBudgetPages.
	DirtyBudgetPages int
	// Epoch is the dirty-bit scan period; 0 selects 1 ms (paper §6.1).
	Epoch sim.Duration
	// EWMAWeight is the weight on the current epoch's new-dirty count in
	// the pressure estimate; 0 selects 0.75 (paper §5.3).
	EWMAWeight float64
	// TLBFlushOnScan controls whether epoch scans flush the TLB for
	// precise dirty bits. The paper's system does (§5.2); disabling it is
	// the §6.3 ablation. Use the DisableTLBFlush field to turn it off.
	DisableTLBFlush bool
	// Policy selects victims for cleaning; nil selects LRUUpdate.
	Policy VictimPolicy
	// SampleEvery records a (time, dirty count, pressure) sample at that
	// period for observability; 0 disables sampling. Samples are kept in
	// a bounded ring (the most recent MaxSamples).
	SampleEvery sim.Duration
	// HardwareAssist selects the §5.4 MMU-offload design: no page is
	// ever write-protected; instead the MMU signals the manager when a
	// write sets a clear dirty bit, so the common-case first write to a
	// page carries no trap cost. Only the at-budget case pays an
	// interrupt (the store stalls until a victim is cleaned). The paper
	// proposes this to eradicate the software implementation's tail
	// latency; the ablation benchmarks compare both modes.
	HardwareAssist bool
	// CleanRetryBackoff is the delay before resubmitting a clean whose
	// SSD write failed; it doubles per consecutive failure of the same
	// page, capped at CleanRetryMax. 0 selects 100 µs.
	CleanRetryBackoff sim.Duration
	// CleanRetryMax caps the per-page backoff. 0 selects 10 ms.
	CleanRetryMax sim.Duration
	// DegradeAfterErrors is the number of consecutive failed cleans
	// after which the manager enters the Degraded rung of the health
	// ladder: the epoch task's effective cleaning threshold is halved
	// (extra dirty-set headroom while the SSD is unreliable). 0
	// selects 3.
	DegradeAfterErrors int
	// HealAfterCleans is the number of consecutive successful cleans
	// that exits degraded mode — the fast heal path for a busy system.
	// 0 selects 8.
	HealAfterCleans int
	// HealAfterQuiet is the hysteresis window for the time-based heal
	// path: a degraded manager returns to Healthy once this much
	// virtual time has passed since the last clean error, checked on
	// epoch ticks. It exists so a mostly-idle system — too few cleans
	// to ever accumulate HealAfterCleans successes — still heals. 0
	// selects 20 ms.
	HealAfterQuiet sim.Duration
	// EmergencyMaxAttempts is the number of write attempts each dirty
	// page gets per emergency-flush drain round before the drain gives
	// up on it (the health monitor escalates to ReadOnly when drains
	// keep failing). 0 selects 3.
	EmergencyMaxAttempts int
	// Obs is the observability registry the manager publishes its
	// counters, gauges, histograms, and clean spans onto. nil creates a
	// private registry so Stats() always works; pass the system-wide
	// registry (viyojit.System does) to aggregate across subsystems.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Epoch == 0 {
		c.Epoch = sim.Millisecond
	}
	if c.EWMAWeight == 0 {
		c.EWMAWeight = 0.75
	}
	if c.Policy == nil {
		c.Policy = LRUUpdate{}
	}
	if c.CleanRetryBackoff == 0 {
		c.CleanRetryBackoff = 100 * sim.Microsecond
	}
	if c.CleanRetryMax == 0 {
		c.CleanRetryMax = 10 * sim.Millisecond
	}
	if c.DegradeAfterErrors == 0 {
		c.DegradeAfterErrors = 3
	}
	if c.HealAfterCleans == 0 {
		c.HealAfterCleans = 8
	}
	if c.HealAfterQuiet == 0 {
		c.HealAfterQuiet = 20 * sim.Millisecond
	}
	if c.EmergencyMaxAttempts == 0 {
		c.EmergencyMaxAttempts = 3
	}
	return c
}

// Stats counts manager activity since construction.
type Stats struct {
	Faults           uint64 // write-protection traps taken
	PagesDirtied     uint64 // admissions to the dirty set
	ForcedCleans     uint64 // synchronous cleans on the fault path (budget hit)
	ProactiveCleans  uint64 // background cleans initiated by the epoch task
	UnmapCleans      uint64 // cleans forced by Unmap
	RetuneCleans     uint64 // cleans forced by a budget decrease
	CleansCompleted  uint64 // SSD write-backs that finished
	CleanErrors      uint64 // SSD write-backs that failed (transient or torn)
	CleanRetries     uint64 // failed cleans resubmitted after backoff
	DegradedEnters   uint64 // transitions into SSD-degraded mode
	DegradedEpochs   uint64 // epoch ticks run while degraded
	RepairRedirties  uint64 // clean pages re-dirtied to repair SSD corruption
	RepairCleans     uint64 // cleans kicked early on already-dirty corrupt pages
	EmergencyEnters  uint64 // transitions into EmergencyFlush
	EmergencyCleans  uint64 // cleans submitted by emergency drains
	ReadOnlyEnters   uint64 // transitions into ReadOnly
	Resumes          uint64 // de-escalations back down the ladder
	WritesBlocked    uint64 // faults rejected while writes were blocked
	BudgetGrows      uint64 // retunes that raised (or kept) the budget
	BudgetShrinks    uint64 // retunes that started a staged drain
	DrainsCompleted  uint64 // staged drains that reached their target
	Epochs           uint64
	SkippedEpochs    uint64 // reentrant ticks skipped under overload
	MaxDirtyObserved int
	FaultWaitTotal   sim.Duration // time fault handlers spent waiting on cleans
}

// Manager is the Viyojit dirty-budget manager for one NV-DRAM region. It
// is not safe for concurrent use; the simulation is single-goroutine.
type Manager struct {
	clock  *sim.Clock
	events *sim.Queue
	region *nvdram.Region
	dev    *ssd.SSD
	cfg    Config

	// budget is the target dirty-page bound. During a staged shrink
	// (draining true) the operative bound is drainBound, a monotone
	// ratchet that starts at the dirty level the previous budget
	// covered and follows the set down to budget; see SetDirtyBudget.
	budget     int
	draining   bool
	drainBound int

	// dirty holds every page whose latest contents are not yet durable,
	// including pages re-protected and in flight to the SSD. Its size is
	// the quantity the battery must cover and never exceeds the
	// effective budget.
	dirty    map[mmu.PageID]*dirtyPage
	dirtySeq uint64

	// history is the per-page 64-epoch aging word (see PageInfo.History).
	// Aging is applied lazily: histEpoch records the epoch index at
	// which history[p] was last brought current, and ageHistory shifts
	// by the elapsed delta on demand. This keeps each epoch tick O(dirty
	// set) instead of O(region pages) — only dirty pages can be victims,
	// so only their histories need to be current.
	history    []uint64
	histEpoch  []uint64
	epochIndex uint64

	// victimQueue is the policy-ordered list of clean candidates, rebuilt
	// each epoch; entries are skipped lazily if their page is no longer
	// eligible.
	victimQueue []PageInfo
	victimPos   int

	newDirtyThisEpoch int
	pressure          float64
	inEpoch           bool
	closed            bool

	// SSD health tracking: the degradation ladder (ladder.go) plus the
	// streak counters that drive its bottom two rungs.
	state         HealthState
	errorStreak   int      // consecutive failed cleans
	healthyStreak int      // consecutive successful cleans since last error
	lastErrorAt   sim.Time // when the last clean error completed (time-based heal)

	epochEvent    *sim.Event
	scanBuf       []mmu.PageID
	dirtyPagesBuf []mmu.PageID

	// mmap-like allocator state (mapping.go).
	mappings  []*Mapping
	free      []freeRange
	allocInit bool

	samples     []Sample
	sampleEvent *sim.Event

	// st holds the registry-backed atomic counters/gauges/histograms
	// (instruments.go); tr records clean operations as trace spans.
	st *instruments
	tr *obs.Tracer
}

// Sample is one observability data point (see Config.SampleEvery).
type Sample struct {
	At       sim.Time
	Dirty    int
	Pressure float64
}

// MaxSamples bounds the sampling ring.
const MaxSamples = 4096

// dirtyPage is the tracked state of one dirty page.
type dirtyPage struct {
	seq      uint64
	cleaning bool // SSD write in flight (page re-protected in SW mode)
	// rewritten marks a hardware-assist page written again after its
	// clean's snapshot was taken: the completing IO must not mark it
	// clean.
	rewritten bool
	// attempts counts consecutive failed cleans of this page; it drives
	// the exponential retry backoff and resets on success.
	attempts int
}

// NewManager wires a manager onto a region and backing device sharing one
// clock and event queue, write-protects every page (paper step 1), and
// starts the epoch task.
func NewManager(clock *sim.Clock, events *sim.Queue, region *nvdram.Region, dev *ssd.SSD, cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	if cfg.DirtyBudgetPages < 1 {
		return nil, fmt.Errorf("core: dirty budget %d pages; need at least 1", cfg.DirtyBudgetPages)
	}
	if dev.Config().PageSize != region.PageSize() {
		return nil, fmt.Errorf("core: SSD page size %d != region page size %d", dev.Config().PageSize, region.PageSize())
	}
	if cfg.EWMAWeight < 0 || cfg.EWMAWeight > 1 {
		return nil, fmt.Errorf("core: EWMA weight %v outside [0,1]", cfg.EWMAWeight)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		clock:     clock,
		events:    events,
		region:    region,
		dev:       dev,
		cfg:       cfg,
		budget:    cfg.DirtyBudgetPages,
		dirty:     make(map[mmu.PageID]*dirtyPage),
		history:   make([]uint64, region.NumPages()),
		histEpoch: make([]uint64, region.NumPages()),
		st:        newInstruments(reg),
		tr:        reg.Tracer(),
	}
	m.noteBudgetLevel()
	pt := region.PageTable()
	if cfg.HardwareAssist {
		// §5.4: the MMU counts dirty transitions itself; no protection,
		// no startup cost, no first-write traps.
		pt.SetDirtyNotifier(m.handleDirtyNotify)
	} else {
		pt.SetFaultHandler(m.handleFault)
		for p := 0; p < region.NumPages(); p++ {
			pt.Protect(mmu.PageID(p))
		}
	}
	m.scheduleEpoch()
	if cfg.SampleEvery > 0 {
		m.scheduleSample(clock.Now().Add(cfg.SampleEvery))
	}
	return m, nil
}

// scheduleSample arms the next observability sample.
func (m *Manager) scheduleSample(at sim.Time) {
	m.sampleEvent = m.events.Schedule(at, func(t sim.Time) {
		if m.closed {
			return
		}
		m.samples = append(m.samples, Sample{At: t, Dirty: len(m.dirty), Pressure: m.pressure})
		if len(m.samples) > MaxSamples {
			m.samples = m.samples[len(m.samples)-MaxSamples:]
		}
		m.scheduleSample(t.Add(m.cfg.SampleEvery))
	})
}

// Samples returns the recorded observability ring (most recent
// MaxSamples), oldest first.
func (m *Manager) Samples() []Sample {
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// Region returns the managed NV-DRAM region.
func (m *Manager) Region() *nvdram.Region { return m.region }

// SSD returns the backing device.
func (m *Manager) SSD() *ssd.SSD { return m.dev }

// Config returns the effective configuration.
func (m *Manager) Config() Config { return m.cfg }

// DirtyCount returns the current size of the dirty set (including pages
// in flight to the SSD, whose latest contents are not yet durable).
func (m *Manager) DirtyCount() int { return len(m.dirty) }

// DirtyBudget returns the current budget in pages.
func (m *Manager) DirtyBudget() int { return m.budget }

// Pressure returns the current dirty-page-pressure estimate (expected new
// dirty pages next epoch).
func (m *Manager) Pressure() float64 { return m.pressure }

// Pump delivers any events due at or before the current virtual time
// (epoch ticks, IO completions). Workload drivers call it after each
// operation so background activity interleaves with foreground work.
func (m *Manager) Pump() { m.events.RunUntil(m.clock, m.clock.Now()) }

// Close stops the epoch task and waits for in-flight cleans to complete.
// The dirty set is left as is: Close models detaching the manager, not a
// clean shutdown (use FlushAll for that).
func (m *Manager) Close() {
	if m.closed {
		return
	}
	m.closed = true
	m.events.Cancel(m.epochEvent)
	m.events.Cancel(m.sampleEvent)
	m.dev.WaitIdle()
}

// scheduleEpoch arms the first epoch tick.
func (m *Manager) scheduleEpoch() {
	m.scheduleEpochAt(m.clock.Now().Add(m.cfg.Epoch))
}

// scheduleEpochAt arms an epoch tick at an absolute time. Ticks chain off
// their *scheduled* time, not the (possibly far ahead) clock, so a driver
// that advances the clock in large steps still observes one tick per
// epoch when it pumps events.
func (m *Manager) scheduleEpochAt(at sim.Time) {
	m.epochEvent = m.events.Schedule(at, m.epochTick)
}

// handleFault is the write-protection fault handler (flowchart steps 3–8).
func (m *Manager) handleFault(page mmu.PageID) {
	m.st.faults.Inc()
	if m.writesBlocked() {
		// EmergencyFlush/ReadOnly: leave the page protected so the MMU
		// reports the write as failed to the caller (mmu.ErrProtected).
		m.st.writesBlocked.Inc()
		return
	}
	waitStart := m.clock.Now()

	// A fault on a page that is mid-clean means the application wrote to
	// a page whose SSD copy-out is in flight. The page was re-protected
	// before the copy started precisely so this write traps (paper §5.1);
	// wait for the IO to complete, after which the page is clean and the
	// fault proceeds as a fresh dirtying.
	if dp, ok := m.dirty[page]; ok {
		if !dp.cleaning {
			// The page is dirty and unprotected; a fault here means the
			// protection state and dirty set disagree.
			panic(fmt.Sprintf("core: fault on dirty, unprotected page %d", page))
		}
		for {
			cur, still := m.dirty[page]
			if !still || cur != dp {
				break
			}
			if !cur.cleaning {
				// The in-flight clean failed: the completion handler
				// un-protected the page and left it in the dirty set, so
				// the blocked write proceeds on the existing entry at no
				// further cost (the retry will re-snapshot it later).
				m.noteFaultWait(m.clock.Now().Sub(waitStart))
				return
			}
			if !m.events.Step(m.clock) {
				panic("core: waiting for in-flight clean with no pending events")
			}
		}
	}

	// Enforce the budget: admitting this page must not exceed the
	// effective bound. During a staged shrink every clean also lowers
	// the drain ratchet, so a fault taken mid-drain pays for the whole
	// remaining drain — the backpressure that lets the transition make
	// progress against a sustained write burst.
	for len(m.dirty) >= m.effectiveBudget() {
		m.st.forcedCleans.Inc()
		if !m.cleanOneSync() {
			panic(fmt.Sprintf("core: dirty set %d at budget %d with no cleanable victim", len(m.dirty), m.effectiveBudget()))
		}
	}
	m.noteFaultWait(m.clock.Now().Sub(waitStart))

	// Admit the page (step 8): unprotect, count, record. Update recency
	// is NOT marked here: the paper's system learns recency only from
	// the epoch walks (§5.2), and the post-fault write sets the PTE
	// dirty bit that the next walk observes. (This is also what makes
	// the §6.3 TLB ablation bite: without flushes the walk misses
	// re-updates and hot pages look cold.)
	m.region.PageTable().Unprotect(page)
	m.dirtySeq++
	m.dirty[page] = &dirtyPage{seq: m.dirtySeq}
	m.ageHistory(page) // bring the page's decayed history current
	m.newDirtyThisEpoch++
	m.st.pagesDirtied.Inc()
	m.noteDirtyLevel()
	m.checkInvariant()
}

// ageHistory applies the epochs of decay that have accrued since page's
// history was last brought current.
func (m *Manager) ageHistory(page mmu.PageID) {
	delta := m.epochIndex - m.histEpoch[page]
	if delta >= 64 {
		m.history[page] = 0
	} else {
		m.history[page] >>= delta
	}
	m.histEpoch[page] = m.epochIndex
}

// handleDirtyNotify is the §5.4 hardware path: the MMU signals that a
// write set a clear dirty bit. The store is modelled as stalling until
// this handler returns, so budget enforcement here is as strict as the
// software fault path — but the common case (budget slack available) is
// nearly free.
func (m *Manager) handleDirtyNotify(page mmu.PageID) {
	if dp, ok := m.dirty[page]; ok {
		// Already tracked. A notification for a tracked page means its
		// dirty bit had been cleared — by an epoch scan (nothing to do)
		// or by an in-progress clean's snapshot (the copy is stale).
		if dp.cleaning {
			dp.rewritten = true
		}
		return
	}
	waitStart := m.clock.Now()
	for len(m.dirty) >= m.effectiveBudget() {
		// The at-budget case pays the interrupt the §5.4 MMU raises.
		m.st.faults.Inc()
		m.clock.Advance(hwInterruptCost)
		m.st.forcedCleans.Inc()
		if !m.cleanOneSync() {
			panic(fmt.Sprintf("core: dirty set %d at budget %d with no cleanable victim", len(m.dirty), m.effectiveBudget()))
		}
	}
	m.noteFaultWait(m.clock.Now().Sub(waitStart))

	m.dirtySeq++
	m.dirty[page] = &dirtyPage{seq: m.dirtySeq}
	m.ageHistory(page)
	m.newDirtyThisEpoch++
	m.st.pagesDirtied.Inc()
	m.noteDirtyLevel()
	m.checkInvariant()
}

// hwInterruptCost is the price of the §5.4 at-budget interrupt: cheaper
// than a full write-protection trap (no protection change, no TLB
// invalidation, no retry) but not free.
const hwInterruptCost = 2 * sim.Microsecond

// nextVictim returns the next eligible victim page from the policy-ordered
// queue, or false if none is eligible (all dirty pages already cleaning).
func (m *Manager) nextVictim() (mmu.PageID, bool) {
	for m.victimPos < len(m.victimQueue) {
		cand := m.victimQueue[m.victimPos]
		m.victimPos++
		if dp, ok := m.dirty[cand.Page]; ok && !dp.cleaning && dp.seq == cand.DirtiedSeq {
			return cand.Page, true
		}
	}
	// Queue exhausted (or stale mid-epoch): rebuild from the live dirty
	// set so the fault path can always find a victim.
	m.rebuildVictimQueue()
	for m.victimPos < len(m.victimQueue) {
		cand := m.victimQueue[m.victimPos]
		m.victimPos++
		if dp, ok := m.dirty[cand.Page]; ok && !dp.cleaning && dp.seq == cand.DirtiedSeq {
			return cand.Page, true
		}
	}
	return 0, false
}

// rebuildVictimQueue re-sorts the live, not-in-flight dirty pages with the
// configured policy.
func (m *Manager) rebuildVictimQueue() {
	m.victimQueue = m.victimQueue[:0]
	for page, dp := range m.dirty {
		if dp.cleaning {
			continue
		}
		m.victimQueue = append(m.victimQueue, PageInfo{Page: page, History: m.history[page], DirtiedSeq: dp.seq})
	}
	m.cfg.Policy.Order(m.victimQueue)
	m.victimPos = 0
}

// startClean re-protects page and submits its contents to the SSD. The
// page stays in the dirty set (its latest contents are not durable) until
// the IO completes. Returns false if no victim was available.
func (m *Manager) startClean(page mmu.PageID) {
	dp := m.dirty[page]
	dp.cleaning = true
	pt := m.region.PageTable()
	if m.cfg.HardwareAssist {
		// §5.4: no protection exists. Clear the dirty bit (re-arming the
		// MMU's transition signal) so a write after this snapshot marks
		// the entry rewritten and the completion below keeps it dirty.
		pt.ClearDirty(page)
	} else {
		// Re-protect BEFORE copying so a concurrent write cannot slip
		// into the copied image and then be lost when the page is marked
		// clean (paper §5.1 step 6).
		pt.Protect(page)
	}
	data := m.region.PageData(page)
	sp := m.tr.Begin("core.clean", m.clock.Now())
	m.dev.WritePageAsync(page, data, func(at sim.Time, err error) {
		// If the entry was replaced (page re-dirtied after a waiter saw
		// this clean complete), leave the new entry alone.
		cur, ok := m.dirty[page]
		if err != nil {
			// The write failed (transient error or torn program): the
			// page's latest contents are NOT durable, so it must stay in
			// the dirty set. Return it to the plain dirty state — in
			// software mode that means unprotecting again, restoring the
			// "dirty ∧ ¬cleaning ⇒ unprotected" invariant — and resubmit
			// after an exponential backoff.
			m.st.cleanErrors.Inc()
			m.tr.Finish(sp, at, "error")
			m.noteCleanError(at)
			if !ok || cur != dp {
				return
			}
			dp.cleaning = false
			dp.rewritten = false
			dp.attempts++
			if m.writesBlocked() {
				// Emergency drain: keep the page protected (writes stay
				// blocked) and let the drain loop manage attempts; the
				// auto-retry would defeat its attempt bound.
				return
			}
			if !m.cfg.HardwareAssist {
				pt.Unprotect(page)
			}
			if !m.closed {
				m.scheduleCleanRetry(page, dp, at.Add(m.retryBackoff(dp.attempts)))
			}
			return
		}
		m.st.cleansCompleted.Inc()
		m.st.cleanLatency.Record(at.Sub(sp.Start))
		m.tr.Finish(sp, at, "ok")
		m.noteCleanSuccess()
		if !ok || cur != dp {
			return
		}
		dp.attempts = 0
		if dp.rewritten {
			// Hardware assist: the page was written after the snapshot;
			// the durable copy is stale, so the page stays dirty and
			// becomes cleanable again.
			dp.cleaning = false
			dp.rewritten = false
			return
		}
		// The snapshot's contents are now durable.
		delete(m.dirty, page)
		pt.ClearDirty(page)
		m.noteDirtyLevel()
		m.noteDrainProgress()
	})
}

// retryBackoff returns the delay before the attempts-th resubmission of
// a failed clean: exponential from CleanRetryBackoff, capped at
// CleanRetryMax.
func (m *Manager) retryBackoff(attempts int) sim.Duration {
	d := m.cfg.CleanRetryBackoff
	for i := 1; i < attempts && d < m.cfg.CleanRetryMax; i++ {
		d *= 2
	}
	if d > m.cfg.CleanRetryMax {
		d = m.cfg.CleanRetryMax
	}
	return d
}

// scheduleCleanRetry arms a resubmission of page's clean at the given
// time. The retry is skipped if by then the manager closed, the page
// left the dirty set, its entry was replaced, or another path (forced
// clean, Unmap, epoch task) already restarted the clean.
func (m *Manager) scheduleCleanRetry(page mmu.PageID, dp *dirtyPage, at sim.Time) {
	m.events.Schedule(at, func(sim.Time) {
		if m.closed {
			return
		}
		cur, ok := m.dirty[page]
		if !ok || cur != dp || cur.cleaning {
			return
		}
		m.st.cleanRetries.Inc()
		m.startClean(page)
	})
}

// noteCleanError advances the SSD health tracker after a failed clean,
// entering the Degraded rung once the consecutive-error threshold is hit.
// Escalation beyond Degraded is the health monitor's decision, never
// automatic.
func (m *Manager) noteCleanError(at sim.Time) {
	m.healthyStreak = 0
	m.errorStreak++
	m.lastErrorAt = at
	if m.state == StateHealthy && m.errorStreak >= m.cfg.DegradeAfterErrors {
		m.setState(StateDegraded)
		m.st.degradedEnters.Inc()
	}
}

// noteCleanSuccess advances the health tracker after a successful clean,
// leaving degraded mode after a long enough healthy streak (the
// time-based heal path runs on epoch ticks; see epochTick).
func (m *Manager) noteCleanSuccess() {
	m.errorStreak = 0
	if m.state != StateDegraded {
		return
	}
	m.healthyStreak++
	if m.healthyStreak >= m.cfg.HealAfterCleans {
		m.setState(StateHealthy)
		m.healthyStreak = 0
	}
}

// Degraded reports whether the manager is at or above the Degraded rung:
// recent cleans failed, so the epoch task keeps extra dirty-set headroom
// until the device proves healthy again.
func (m *Manager) Degraded() bool { return m.state >= StateDegraded }

// ErrorStreak returns the current run of consecutive failed cleans — the
// signal the health monitor escalates on.
func (m *Manager) ErrorStreak() int { return m.errorStreak }

// cleanOneSync cleans one victim synchronously: it virtually blocks until
// the dirty set shrinks, (re)starting cleans as needed. Re-selection
// matters in hardware-assist mode: an in-flight clean of a page that was
// rewritten after its snapshot completes WITHOUT shrinking the dirty set,
// so the victim must be picked again (now with fresh contents). Returns
// false if no victim is eligible and nothing is in flight.
func (m *Manager) cleanOneSync() bool {
	before := len(m.dirty)
	started := false
	for len(m.dirty) >= before {
		if !started || m.inflightCleans() == 0 {
			// Start a victim immediately (paper §5.1 steps 6–7); pick
			// again only if everything in flight completed without
			// shrinking the set (the hardware-assist rewritten case).
			if page, ok := m.nextVictim(); ok {
				m.startClean(page)
				started = true
			} else if m.inflightCleans() == 0 {
				return false
			}
		}
		if !m.events.Step(m.clock) {
			panic("core: blocked on clean with no pending events")
		}
	}
	return true
}

func (m *Manager) inflightCleans() int {
	n := 0
	for _, dp := range m.dirty {
		if dp.cleaning {
			n++
		}
	}
	return n
}

// epochTick is the periodic maintenance task (paper §5.2–§5.3).
func (m *Manager) epochTick(at sim.Time) {
	if m.closed {
		return
	}
	if m.inEpoch {
		// A previous tick is still running (its proactive IO submissions
		// stalled past a full epoch). Skip this round rather than
		// corrupting shared state; the system is overloaded anyway.
		m.st.skippedEpochs.Inc()
		m.scheduleEpochAt(at.Add(m.cfg.Epoch))
		return
	}
	m.inEpoch = true
	m.st.epochs.Inc()
	m.epochIndex++

	// Time-based heal (hysteresis): a degraded manager on a mostly-idle
	// system may never see HealAfterCleans consecutive successes simply
	// because nothing needs cleaning. If no clean has *failed* for
	// HealAfterQuiet of virtual time, return to Healthy here instead —
	// and reset the error streak, which on an idle system has no
	// success to reset it, so a single later error doesn't instantly
	// re-enter Degraded off the stale count.
	if m.state == StateDegraded && at.Sub(m.lastErrorAt) >= m.cfg.HealAfterQuiet {
		m.setState(StateHealthy)
		m.errorStreak = 0
		m.healthyStreak = 0
	}

	// Read and clear hardware dirty bits for the known-to-be-dirty pages
	// only — clean pages are write-protected and cannot have been updated
	// without a fault — flushing the TLB first so the bits are fresh
	// (unless the §6.3 ablation disables it).
	m.dirtyPagesBuf = m.dirtyPagesBuf[:0]
	for page := range m.dirty {
		m.dirtyPagesBuf = append(m.dirtyPagesBuf, page)
	}
	m.scanBuf = m.region.PageTable().CheckAndClearDirtyPages(m.dirtyPagesBuf, m.scanBuf[:0], !m.cfg.DisableTLBFlush)

	// Age the dirty pages' histories to this epoch, then mark the ones
	// the scan observed as updated. (Clean pages age lazily when they
	// are next dirtied; see ageHistory.)
	for _, p := range m.dirtyPagesBuf {
		m.ageHistory(p)
	}
	for _, p := range m.scanBuf {
		m.history[p] |= 1 << 63
	}

	// Dirty-page pressure: EWMA of new dirty pages per epoch.
	w := m.cfg.EWMAWeight
	m.pressure = w*float64(m.newDirtyThisEpoch) + (1-w)*m.pressure
	m.newDirtyThisEpoch = 0
	m.st.pressure.Set(int64(m.pressure * 1000))

	// Proactive copying: clean least-recently-updated pages until the
	// dirty set can absorb the predicted burst without blocking.
	threshold := m.effectiveBudget() - int(m.pressure+0.5)
	if threshold < 0 {
		threshold = 0
	}
	if m.state == StateDegraded {
		// Graceful degradation: while the SSD is erroring, halve the
		// effective cleaning threshold (clean down further) so the dirty
		// set keeps extra headroom for retries before the budget blocks
		// writers. Restored automatically once cleans succeed again
		// (noteCleanSuccess).
		m.st.degradedEpochs.Inc()
		threshold /= 2
	}
	m.rebuildVictimQueue()
	// Count in-flight cleans as already-on-their-way reductions.
	target := len(m.dirty) - m.inflightCleans()
	for target > threshold {
		page, ok := m.nextVictim()
		if !ok {
			break
		}
		m.st.proactiveCleans.Inc()
		m.startClean(page)
		target--
	}

	m.inEpoch = false
	m.scheduleEpochAt(at.Add(m.cfg.Epoch))
	m.checkInvariant()
}

// FlushAll synchronously cleans every dirty page — the clean-shutdown
// path. After it returns, the dirty set is empty and every page's
// contents are durable. Pages are submitted in sorted order so flush
// timing and the trace log are identical across same-seed runs.
func (m *Manager) FlushAll() {
	for len(m.dirty) > 0 {
		started := false
		for _, page := range m.sortedDirtyPages() {
			if dp, ok := m.dirty[page]; ok && !dp.cleaning {
				m.startClean(page)
				started = true
			}
		}
		if !m.events.Step(m.clock) && !started {
			panic("core: FlushAll blocked with no pending events")
		}
	}
}

// SetDirtyBudget retunes the budget at runtime (paper §8: battery cell
// failures, ageing, or capacity reallocation between tenants). Growth —
// and any target the dirty set already fits under — applies immediately.
// A shrink below the current dirty count starts a *staged drain*: the
// operative bound becomes drainBound, a ratchet initialised to the
// current dirty count (which the old budget covered) that only moves
// down, one notch per page cleaned, until it reaches the target. New
// admissions are throttled against the ratchet, so writers arriving
// mid-drain pay forced cleans (backpressure) instead of violating the
// bound, and "dirty ≤ effective budget" holds at every instant of the
// transition. The call returns without waiting for the drain; use
// SetDirtyBudgetSync or CompleteDrain when the caller needs the old
// semantics.
func (m *Manager) SetDirtyBudget(pages int) error {
	if pages < 1 {
		return fmt.Errorf("core: dirty budget %d pages; need at least 1", pages)
	}
	if pages >= len(m.dirty) {
		// The dirty set already fits: no transition needed. This also
		// ends any in-progress drain whose target just rose above the
		// current level.
		m.budget = pages
		if m.draining {
			m.draining = false
			m.st.drainsCompleted.Inc()
		}
		m.st.budgetGrows.Inc()
		m.noteBudgetLevel()
		m.checkInvariant()
		return nil
	}
	if m.draining && pages >= m.budget {
		// Already draining to a tighter target; keep the ratchet.
		m.budget = pages
		m.noteBudgetLevel()
		m.checkInvariant()
		return nil
	}
	if !m.draining {
		m.draining = true
		m.drainBound = len(m.dirty)
	}
	m.budget = pages
	m.st.budgetShrinks.Inc()
	m.noteBudgetLevel()
	m.kickDrain()
	m.checkInvariant()
	return nil
}

// SetDirtyBudgetSync is SetDirtyBudget followed by CompleteDrain: it
// returns only once the dirty set fits the new budget, restoring the
// synchronous retune semantics the tenancy reallocator and the
// power-fail path rely on.
func (m *Manager) SetDirtyBudgetSync(pages int) error {
	if err := m.SetDirtyBudget(pages); err != nil {
		return err
	}
	return m.CompleteDrain()
}

// CompleteDrain synchronously runs an in-progress staged drain to its
// target. It is a no-op when no drain is in progress. The safe-shrink
// battery hook calls it so the dirty set is covered by the *projected*
// capacity before the battery actually loses the energy.
func (m *Manager) CompleteDrain() error {
	for m.draining {
		m.st.retuneCleans.Inc()
		if !m.cleanOneSync() {
			return fmt.Errorf("core: cannot drain dirty set %d to budget %d", len(m.dirty), m.budget)
		}
	}
	return nil
}

// kickDrain starts proactive cleans toward the drain target so a staged
// shrink makes progress even on an idle system (no faults to piggyback
// forced cleans on, and the next epoch tick may be most of a
// millisecond away).
func (m *Manager) kickDrain() {
	excess := len(m.dirty) - m.inflightCleans() - m.budget
	for excess > 0 {
		page, ok := m.nextVictim()
		if !ok {
			break
		}
		m.st.retuneCleans.Inc()
		m.startClean(page)
		excess--
	}
}

// noteDrainProgress ratchets the drain bound down after a dirty-set
// removal and finishes the drain when the set reaches the target. Every
// deletion path (clean completion, power-fail flush) reports here so the
// ratchet can never lag the set.
func (m *Manager) noteDrainProgress() {
	if !m.draining {
		return
	}
	if len(m.dirty) < m.drainBound {
		m.drainBound = len(m.dirty)
	}
	if m.drainBound <= m.budget {
		m.draining = false
		m.st.drainsCompleted.Inc()
	}
	m.noteBudgetLevel()
}

// effectiveBudget is the operative dirty-page bound: the target budget,
// or the drain ratchet while a staged shrink is in progress.
func (m *Manager) effectiveBudget() int {
	if m.draining {
		return m.drainBound
	}
	return m.budget
}

// EffectiveDirtyBudget exposes the operative bound (see effectiveBudget)
// for monitors and tests.
func (m *Manager) EffectiveDirtyBudget() int { return m.effectiveBudget() }

// Draining reports whether a staged budget shrink is in progress.
func (m *Manager) Draining() bool { return m.draining }

// checkInvariant asserts the durability bound. It is cheap (a map length
// comparison) and runs on every state transition; a violation is a bug in
// the manager, never a recoverable condition.
func (m *Manager) checkInvariant() {
	if len(m.dirty) > m.effectiveBudget() {
		panic(fmt.Sprintf("core: INVARIANT VIOLATED: %d dirty pages > effective budget %d (budget %d, draining %v)",
			len(m.dirty), m.effectiveBudget(), m.budget, m.draining))
	}
}
