package core

import (
	"testing"
	"testing/quick"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// harness bundles a manager with its simulation plumbing.
type harness struct {
	clock  *sim.Clock
	events *sim.Queue
	region *nvdram.Region
	dev    *ssd.SSD
	mgr    *Manager
}

func newHarness(t testing.TB, pages int, cfg Config) *harness {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: int64(pages) * 4096})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := NewManager(clock, events, region, dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{clock: clock, events: events, region: region, dev: dev, mgr: mgr}
}

// writePage writes one marker byte into the given page through the region
// (exercising the fault path) and pumps events.
func (h *harness) writePage(t testing.TB, page int, marker byte) {
	t.Helper()
	if err := h.region.WriteAt([]byte{marker}, int64(page)*4096); err != nil {
		t.Fatalf("write page %d: %v", page, err)
	}
	h.mgr.Pump()
}

func TestNewManagerValidation(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, _ := nvdram.New(clock, nvdram.Config{Size: 4 * 4096})
	dev := ssd.New(clock, events, ssd.Config{})
	if _, err := NewManager(clock, events, region, dev, Config{DirtyBudgetPages: 0}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewManager(clock, events, region, dev, Config{DirtyBudgetPages: 1, EWMAWeight: 2}); err == nil {
		t.Fatal("EWMA weight 2 accepted")
	}
	badDev := ssd.New(clock, events, ssd.Config{PageSize: 8192})
	if _, err := NewManager(clock, events, region, badDev, Config{DirtyBudgetPages: 1}); err == nil {
		t.Fatal("mismatched page sizes accepted")
	}
}

func TestAllPagesProtectedAtStartup(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	pt := h.region.PageTable()
	for p := 0; p < 8; p++ {
		if !pt.IsProtected(mmu.PageID(p)) {
			t.Fatalf("page %d not protected at startup", p)
		}
	}
}

func TestFirstWriteFaultsSecondDoesNot(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	h.writePage(t, 2, 0xAA)
	if got := h.mgr.Stats().Faults; got != 1 {
		t.Fatalf("faults after first write = %d, want 1", got)
	}
	h.writePage(t, 2, 0xBB)
	if got := h.mgr.Stats().Faults; got != 1 {
		t.Fatalf("faults after repeat write = %d, want 1", got)
	}
	if h.mgr.DirtyCount() != 1 {
		t.Fatalf("dirty count = %d, want 1", h.mgr.DirtyCount())
	}
}

func TestBudgetEnforcedWithForcedClean(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 3})
	for p := 0; p < 10; p++ {
		h.writePage(t, p, byte(p+1))
		if h.mgr.DirtyCount() > 3 {
			t.Fatalf("dirty count %d exceeds budget 3 after writing page %d", h.mgr.DirtyCount(), p)
		}
	}
	s := h.mgr.Stats()
	if s.ForcedCleans == 0 && s.ProactiveCleans == 0 {
		t.Fatal("no cleans despite writing past the budget")
	}
	if s.MaxDirtyObserved > 3 {
		t.Fatalf("max dirty observed = %d > budget", s.MaxDirtyObserved)
	}
}

func TestForcedCleanEvictsColdestPage(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 3, Epoch: sim.Millisecond})
	// Dirty pages 0, 1, 2, then keep 1 and 2 hot across several epochs so
	// the aging history clearly separates them from page 0.
	h.writePage(t, 0, 1)
	h.writePage(t, 1, 2)
	h.writePage(t, 2, 3)
	for e := 0; e < 5; e++ {
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump() // epoch boundary
		h.writePage(t, 1, byte(10+e))
		h.writePage(t, 2, byte(20+e))
	}
	// Budget full: writing page 3 must evict page 0 (the cold one).
	h.writePage(t, 3, 9)
	if _, stillDirty := h.mgr.dirty[0]; stillDirty {
		t.Fatal("cold page 0 not chosen as victim")
	}
	for _, hot := range []mmu.PageID{1, 2} {
		if _, ok := h.mgr.dirty[hot]; !ok {
			t.Fatalf("hot page %d was evicted instead of the cold one", hot)
		}
	}
	// Page 0's contents must now be durable.
	durable, ok := h.dev.Durable(0)
	if !ok || durable[0] != 1 {
		t.Fatal("evicted page's contents not durable on SSD")
	}
}

func TestProactiveCleaningKeepsSlack(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 16, Epoch: sim.Millisecond})
	// Dirty a steady stream of fresh pages: 4 new pages per epoch.
	page := 0
	for e := 0; e < 12; e++ {
		for i := 0; i < 4; i++ {
			h.writePage(t, page%64, byte(page))
			page++
		}
		h.clock.Advance(sim.Millisecond)
		h.mgr.Pump()
	}
	s := h.mgr.Stats()
	if s.ProactiveCleans == 0 {
		t.Fatal("no proactive cleans under sustained dirtying")
	}
	// With pressure ≈ 4 pages/epoch, the steady-state dirty count should
	// sit below the budget, leaving slack.
	if h.mgr.DirtyCount() >= 16 {
		t.Fatalf("dirty count %d has no slack below budget 16", h.mgr.DirtyCount())
	}
	if h.mgr.Pressure() < 1 {
		t.Fatalf("pressure = %v, want >= 1 with 4 new pages/epoch", h.mgr.Pressure())
	}
}

func TestPressureTracksEWMA(t *testing.T) {
	h := newHarness(t, 256, Config{DirtyBudgetPages: 200, Epoch: sim.Millisecond, EWMAWeight: 0.75})
	// Epoch 1: dirty 8 fresh pages. Pressure = 0.75*8 + 0.25*0 = 6.
	for p := 0; p < 8; p++ {
		h.writePage(t, p, 1)
	}
	h.clock.Advance(sim.Millisecond)
	h.mgr.Pump()
	if got := h.mgr.Pressure(); got < 5.9 || got > 6.1 {
		t.Fatalf("pressure after first epoch = %v, want 6", got)
	}
	// Epoch 2: no new pages. Pressure = 0.75*0 + 0.25*6 = 1.5.
	h.clock.Advance(sim.Millisecond)
	h.mgr.Pump()
	if got := h.mgr.Pressure(); got < 1.4 || got > 1.6 {
		t.Fatalf("pressure after idle epoch = %v, want 1.5", got)
	}
}

func TestWriteToCleaningPageWaitsAndRedirties(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 2})
	h.writePage(t, 0, 1)
	h.writePage(t, 1, 2)
	// Fill the budget; the next write forces a clean of page 0 or 1.
	h.writePage(t, 2, 3)
	// Now write to whichever page was cleaned: it must fault again and be
	// re-admitted with fresh contents.
	var cleaned int
	for p := 0; p < 2; p++ {
		if _, ok := h.mgr.dirty[mmu.PageID(p)]; !ok {
			cleaned = p
			break
		}
	}
	h.writePage(t, cleaned, 0x77)
	if h.mgr.DirtyCount() > 2 {
		t.Fatalf("budget violated: %d", h.mgr.DirtyCount())
	}
	buf := make([]byte, 1)
	if err := h.region.ReadAt(buf, int64(cleaned)*4096); err != nil || buf[0] != 0x77 {
		t.Fatalf("re-dirtied page lost data: %v %v", buf, err)
	}
}

func TestFlushAllEmptiesDirtySet(t *testing.T) {
	h := newHarness(t, 32, Config{DirtyBudgetPages: 8})
	for p := 0; p < 6; p++ {
		h.writePage(t, p, byte(p+1))
	}
	h.mgr.FlushAll()
	if h.mgr.DirtyCount() != 0 {
		t.Fatalf("dirty count after FlushAll = %d", h.mgr.DirtyCount())
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("durability check failed after FlushAll: %v", err)
	}
}

func TestVerifyDurabilityDetectsDivergence(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4})
	h.writePage(t, 1, 0x42)
	// Page 1 is dirty and not yet on the SSD.
	if err := h.mgr.VerifyDurability(); err == nil {
		t.Fatal("VerifyDurability passed with a dirty page")
	}
	h.mgr.FlushAll()
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFailFlushesWithinEnergy(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 16})
	for p := 0; p < 16; p++ {
		h.writePage(t, p, byte(p+1))
	}
	pm := power.Default()
	// Provision energy for the budget's transfer time plus per-IO latency
	// headroom (provisioning must be conservative; paper §5.1).
	watts := pm.FlushWatts(h.region.Size())
	flushTime := h.dev.FlushTimeFor(16) + 10*sim.Millisecond
	joules := watts * flushTime.Seconds()

	report := h.mgr.PowerFail(pm, joules)
	if report.DirtyAtFailure != 16 {
		t.Fatalf("dirty at failure = %d, want 16", report.DirtyAtFailure)
	}
	if !report.Survived {
		t.Fatalf("flush did not survive: used %v J of %v J", report.EnergyUsedJoules, report.EnergyAvailableJoules)
	}
	if err := h.mgr.VerifyDurability(); err != nil {
		t.Fatalf("data lost across power failure: %v", err)
	}
}

func TestPowerFailUnderProvisionedReportsFailure(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 32})
	for p := 0; p < 32; p++ {
		h.writePage(t, p, byte(p+1))
	}
	report := h.mgr.PowerFail(power.Default(), 1e-9) // essentially no battery
	if report.Survived {
		t.Fatal("flush reported survival with no energy")
	}
}

func TestSetDirtyBudgetDecreaseCleansDown(t *testing.T) {
	h := newHarness(t, 64, Config{DirtyBudgetPages: 16})
	for p := 0; p < 16; p++ {
		h.writePage(t, p, byte(p+1))
	}
	if err := h.mgr.SetDirtyBudgetSync(5); err != nil {
		t.Fatal(err)
	}
	if h.mgr.DirtyCount() > 5 {
		t.Fatalf("dirty count %d exceeds retuned budget 5", h.mgr.DirtyCount())
	}
	if h.mgr.Draining() {
		t.Fatal("sync retune left a drain in progress")
	}
	if h.mgr.Stats().RetuneCleans == 0 {
		t.Fatal("no retune cleans recorded")
	}
	if err := h.mgr.SetDirtyBudget(0); err == nil {
		t.Fatal("SetDirtyBudget(0) accepted")
	}
}

func TestSetDirtyBudgetIncreaseIsImmediate(t *testing.T) {
	h := newHarness(t, 16, Config{DirtyBudgetPages: 2})
	h.writePage(t, 0, 1)
	h.writePage(t, 1, 2)
	if err := h.mgr.SetDirtyBudget(8); err != nil {
		t.Fatal(err)
	}
	before := h.mgr.Stats().ForcedCleans
	for p := 2; p < 8; p++ {
		h.writePage(t, p, byte(p))
	}
	if h.mgr.Stats().ForcedCleans != before {
		t.Fatal("forced cleans occurred despite raised budget")
	}
}

func TestEpochsAdvance(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4, Epoch: sim.Millisecond})
	h.clock.Advance(10 * sim.Millisecond)
	h.mgr.Pump()
	if got := h.mgr.Stats().Epochs; got < 9 || got > 11 {
		t.Fatalf("epochs after 10 ms = %d, want ~10", got)
	}
}

func TestCloseStopsEpochTask(t *testing.T) {
	h := newHarness(t, 8, Config{DirtyBudgetPages: 4, Epoch: sim.Millisecond})
	h.mgr.Close()
	h.mgr.Close() // idempotent
	before := h.mgr.Stats().Epochs
	h.clock.Advance(10 * sim.Millisecond)
	h.mgr.Pump()
	if h.mgr.Stats().Epochs != before {
		t.Fatal("epoch task ran after Close")
	}
}

// Property: under an arbitrary write workload, the dirty count never
// exceeds the budget and no data is ever lost.
func TestBudgetInvariantProperty(t *testing.T) {
	f := func(seed uint64, budgetRaw uint8, nOps uint16) bool {
		const pages = 64
		budget := int(budgetRaw)%16 + 1
		h := newHarness(t, pages, Config{DirtyBudgetPages: budget})
		rng := sim.NewRNG(seed)
		shadow := make([]byte, pages)
		ops := int(nOps)%500 + 1
		for i := 0; i < ops; i++ {
			p := rng.Intn(pages)
			marker := byte(rng.Uint64()) | 1
			if err := h.region.WriteAt([]byte{marker}, int64(p)*4096); err != nil {
				return false
			}
			shadow[p] = marker
			h.mgr.Pump()
			if h.mgr.DirtyCount() > budget {
				return false
			}
			// Occasionally advance across epoch boundaries.
			if rng.Intn(4) == 0 {
				h.clock.Advance(sim.Millisecond)
				h.mgr.Pump()
			}
		}
		// All data still readable and correct.
		buf := make([]byte, 1)
		for p := 0; p < pages; p++ {
			if err := h.region.ReadAt(buf, int64(p)*4096); err != nil {
				return false
			}
			if buf[0] != shadow[p] {
				return false
			}
		}
		// After a full flush, everything is durable.
		h.mgr.FlushAll()
		return h.mgr.VerifyDurability() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: power failure at an arbitrary point never loses data when the
// battery covers the budget.
func TestPowerFailDurabilityProperty(t *testing.T) {
	pm := power.Default()
	f := func(seed uint64, nOps uint16) bool {
		const pages, budget = 64, 8
		h := newHarness(t, pages, Config{DirtyBudgetPages: budget})
		rng := sim.NewRNG(seed)
		ops := int(nOps)%300 + 1
		for i := 0; i < ops; i++ {
			p := rng.Intn(pages)
			if err := h.region.WriteAt([]byte{byte(rng.Uint64())}, int64(p)*4096); err != nil {
				return false
			}
			h.mgr.Pump()
			if rng.Intn(3) == 0 {
				h.clock.Advance(sim.Millisecond)
				h.mgr.Pump()
			}
		}
		// Battery provisioned for the budget plus SSD latency headroom.
		watts := pm.FlushWatts(h.region.Size())
		joules := watts * (h.dev.FlushTimeFor(budget) + 10*sim.Millisecond).Seconds()
		report := h.mgr.PowerFail(pm, joules)
		return report.Survived && h.mgr.VerifyDurability() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
