package ssd

// End-to-end data integrity for the durable store. The device keeps a
// per-page checksum alongside every page it believes it has durably
// written — the model of a host-side (ZFS-parent-style) checksum table:
// the checksum records what the host *intended* and was *acked*, while
// the store records what the device actually holds. The two diverge
// under the silent fault classes hybrid DRAM/NVM lifetime studies show
// dominate long-horizon failures:
//
//   - at-rest bit rot: stored bytes mutate, checksum unchanged;
//   - lost writes: the device acks but never persists — checksum advances
//     to the new contents, the store keeps the old;
//   - misdirected writes: the data lands on the wrong page — the intended
//     page's checksum advances without its data, the victim's data
//     changes without its checksum;
//   - torn programs: a prefix lands; the host saw an error, so the
//     checksum stays at the previous ack and mismatches the mixed image.
//
// In every case VerifyPage observes checksum ≠ contents, so silent
// corruption is always *detectable* even when it is not preventable.
// The scrubber (internal/scrub) walks the durable set calling VerifyPage
// and repairs from the authoritative NV-DRAM copy; recovery
// (internal/recovery) verifies on restore so a power cycle never
// silently reloads corrupt bytes.

import (
	"errors"
	"fmt"
	"hash/crc64"
	"sort"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// ErrCorruptPage is returned by VerifyPage/ReadPageVerified when a page's
// durable contents do not match its recorded checksum: the bytes in the
// store are not the bytes the host was acked for.
var ErrCorruptPage = errors.New("ssd: page contents do not match checksum (silent corruption)")

// crcTab is the checksum polynomial table. CRC-64/ECMA is deterministic
// across runs and platforms, which the seeded sweeps require.
var crcTab = crc64.MakeTable(crc64.ECMA)

// Checksum returns the integrity checksum of a page image — exposed so
// tests and recovery tooling can compute the same fingerprint the device
// records.
func Checksum(data []byte) uint64 { return crc64.Checksum(data, crcTab) }

// noteCorrupt records that page's durable copy no longer matches what the
// host was acked for — a simulation-side oracle keyed by the time the
// first still-unrepaired corruption landed. It backs mean-time-to-detect
// measurement and the crash sweep's "no undetected escapes" assertion;
// host-side code must never consult it to make recovery decisions (the
// checksums are the host's only legitimate signal).
func (d *SSD) noteCorrupt(page mmu.PageID) {
	if d.corruptAt == nil {
		d.corruptAt = make(map[mmu.PageID]sim.Time)
	}
	if _, ok := d.corruptAt[page]; !ok {
		d.corruptAt[page] = d.clock.Now()
	}
}

// clearCorrupt drops the oracle entry after a successful full-page write
// replaced the corrupt image.
func (d *SSD) clearCorrupt(page mmu.PageID) {
	delete(d.corruptAt, page)
}

// CorruptedSince reports when the page's oldest still-unrepaired injected
// corruption landed. It is measurement oracle, not host state: use it for
// MTTD accounting and sweep assertions only.
func (d *SSD) CorruptedSince(page mmu.PageID) (sim.Time, bool) {
	at, ok := d.corruptAt[page]
	return at, ok
}

// CorruptOracle returns, sorted, every page whose durable copy currently
// diverges from its last acked contents because of injected corruption.
// Like CorruptedSince it exists for sweeps and stats, not recovery.
func (d *SSD) CorruptOracle() []mmu.PageID {
	out := make([]mmu.PageID, 0, len(d.corruptAt))
	for p := range d.corruptAt {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DurablePageList returns, sorted, every page the host or device has any
// durable claim about: pages with stored contents plus pages whose
// checksum was acked but whose data was lost entirely. Scrubbers and
// verified restore walk this list so a fully lost write (checksum
// recorded, nothing in the store) is still visited and detected.
func (d *SSD) DurablePageList() []mmu.PageID {
	seen := make(map[mmu.PageID]struct{}, len(d.store)+len(d.sums))
	out := make([]mmu.PageID, 0, len(d.store)+len(d.sums))
	for p := range d.store {
		seen[p] = struct{}{}
		out = append(out, p)
	}
	for p := range d.sums {
		if _, ok := seen[p]; !ok {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DurableChecksum returns the recorded checksum for page — the
// fingerprint of the contents the host was last acked for.
func (d *SSD) DurableChecksum(page mmu.PageID) (uint64, bool) {
	s, ok := d.sums[page]
	return s, ok
}

// VerifyPage checks a page's durable contents against its recorded
// checksum without charging device time (the scrubber models its read
// bandwidth by pacing, and restore paths charge reads explicitly). It
// returns nil for an intact page or a page with no durable claim, and an
// error wrapping ErrCorruptPage otherwise.
func (d *SSD) VerifyPage(page mmu.PageID) error {
	d.stats.VerifyChecks++
	d.st.verifyChecks.Inc()
	data, hasData := d.store[page]
	sum, hasSum := d.sums[page]
	switch {
	case !hasData && !hasSum:
		return nil
	case !hasData:
		d.stats.VerifyFailures++
		d.st.verifyFailures.Inc()
		return fmt.Errorf("%w: page %d acked but absent from the store (lost write)", ErrCorruptPage, page)
	case !hasSum:
		d.stats.VerifyFailures++
		d.st.verifyFailures.Inc()
		return fmt.Errorf("%w: page %d present with no acked checksum (misdirected or torn write)", ErrCorruptPage, page)
	case Checksum(data) != sum:
		d.stats.VerifyFailures++
		d.st.verifyFailures.Inc()
		return fmt.Errorf("%w: page %d", ErrCorruptPage, page)
	}
	return nil
}

// ReadPageVerified is ReadPage with integrity checking: read bandwidth
// and latency are charged, then the contents are validated against the
// recorded checksum. On corruption it returns the (untrusted) bytes that
// are present along with an error wrapping ErrCorruptPage; a page with
// no durable claim returns (nil, nil) like ReadPage.
func (d *SSD) ReadPageVerified(page mmu.PageID) ([]byte, error) {
	data := d.ReadPage(page)
	if err := d.VerifyPage(page); err != nil {
		return data, err
	}
	return data, nil
}

// CorruptPage XORs pattern into the stored byte at off — the direct
// at-rest corruption hook tests, CLIs, and fuzzers use (the fault
// injector's RotProb flows through the same mutation). The checksum is
// deliberately left alone: that is what makes the damage silent. It
// reports whether the page had stored contents to corrupt.
func (d *SSD) CorruptPage(page mmu.PageID, off int, pattern byte) bool {
	data, ok := d.store[page]
	if !ok || len(data) == 0 || pattern == 0 {
		return false
	}
	data[off%len(data)] ^= pattern
	d.stats.RotEvents++
	d.noteCorrupt(page)
	return true
}

// applyRot flips one deterministically chosen bit in one at-rest durable
// page — the FaultDecision.Rot path. seed selects both the victim page
// (from the sorted durable list, so the choice is stable for a given
// store) and the bit. No-op on an empty store.
func (d *SSD) applyRot(seed uint64) {
	if len(d.store) == 0 {
		return
	}
	pages := make([]mmu.PageID, 0, len(d.store))
	for p := range d.store {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	victim := pages[seed%uint64(len(pages))]
	data := d.store[victim]
	bit := (seed / uint64(len(pages))) % uint64(len(data)*8)
	data[bit/8] ^= 1 << (bit % 8)
	d.stats.RotEvents++
	d.noteCorrupt(victim)
}

// misdirectTarget picks the page a misdirected write actually lands on:
// a deterministic other member of the durable set. If the store has no
// other page to hit, the write degrades to a fully lost write (the data
// lands nowhere), which the caller models by returning (0, false).
func (d *SSD) misdirectTarget(intended mmu.PageID, seed uint64) (mmu.PageID, bool) {
	candidates := make([]mmu.PageID, 0, len(d.store))
	for p := range d.store {
		if p != intended {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return 0, false
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	return candidates[seed%uint64(len(candidates))], true
}
