// Package ssd models the flash SSD that backs the NV-DRAM: the durability
// domain Viyojit copies dirty pages into. The model captures what the
// paper's mechanism depends on — finite write bandwidth, per-IO latency, a
// bounded number of outstanding requests (16 in the paper's experiments),
// verifiable durable contents, and wear accounting — while staying on the
// deterministic virtual clock.
package ssd

import (
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// Config describes the device.
type Config struct {
	// PageSize is the transfer unit in bytes; it must match the NV-DRAM
	// page size. 0 selects 4096.
	PageSize int
	// WriteBandwidth is the sustained write bandwidth in bytes/second.
	// 0 selects 2 GB/s (a mid-range datacenter NVMe drive; the paper's
	// sizing example assumes 4 GB/s, which cmd/battery-calc uses).
	WriteBandwidth int64
	// ReadBandwidth is the sustained read bandwidth in bytes/second.
	// 0 selects 3 GB/s.
	ReadBandwidth int64
	// PerIOLatency is the fixed device latency added to every IO.
	// 0 selects 60 µs (a 2017-era datacenter SSD write).
	PerIOLatency sim.Duration
	// MaxOutstanding bounds the number of in-flight IOs; submissions
	// beyond the bound virtually block until a slot frees. 0 selects 16,
	// the value the paper's evaluation fixes.
	MaxOutstanding int
	// Dedup enables content-addressed write deduplication (§7's
	// suggested traffic reduction): duplicate page contents transfer
	// only a fingerprint record.
	Dedup bool
	// Compression enables transfer-size compression (§7): the bus cost
	// of a write is its estimated compressed size.
	Compression bool
	// WearCapacityBytes is the modelled flash capacity used for
	// wear-driven bandwidth degradation: as cumulative writes approach
	// and exceed full-capacity passes, sustained write bandwidth
	// declines (program/erase cycles slow and garbage collection eats
	// into the channel). 0 disables degradation; WearBytesPerCell still
	// reports wear against any capacity the caller supplies.
	WearCapacityBytes int64
	// WearBandwidthDecay is the fraction of nominal write bandwidth
	// lost per full-capacity write pass when WearCapacityBytes is set.
	// 0 selects 0.04 (4 % per pass, roughly linearised from published
	// NAND endurance curves).
	WearBandwidthDecay float64
	// WearBandwidthFloor is the lower bound on the degraded bandwidth
	// as a fraction of nominal. 0 selects 0.25.
	WearBandwidthFloor float64
	// MeasureWindow is the number of recent write completions kept for
	// the measured-bandwidth/latency estimators the health monitor
	// samples. 0 selects 64.
	MeasureWindow int
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 2 << 30
	}
	if c.ReadBandwidth == 0 {
		c.ReadBandwidth = 3 << 30
	}
	if c.PerIOLatency == 0 {
		c.PerIOLatency = 60 * sim.Microsecond
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 16
	}
	if c.WearBandwidthDecay == 0 {
		c.WearBandwidthDecay = 0.04
	}
	if c.WearBandwidthFloor == 0 {
		c.WearBandwidthFloor = 0.25
	}
	if c.MeasureWindow == 0 {
		c.MeasureWindow = 64
	}
	return c
}

// Stats counts device activity since construction.
type Stats struct {
	WritesSubmitted uint64
	WritesCompleted uint64
	ReadsCompleted  uint64
	BytesWritten    uint64
	BytesRead       uint64
	SubmitStalls    uint64 // submissions that had to wait for a queue slot
	WriteErrors     uint64 // completions that reported a transient fault
	TornWrites      uint64 // completions that reported a torn write
	LatencySpikes   uint64 // IOs delayed by injected extra latency
	LostWrites      uint64 // completions acked without persisting (injected)
	Misdirected     uint64 // completions whose data landed on the wrong page (injected)
	RotEvents       uint64 // at-rest bit corruptions applied (injected)
	VerifyChecks    uint64 // checksum verifications performed
	VerifyFailures  uint64 // verifications that found corruption
	MaxQueueDepth   int
	BusyUntil       sim.Time // device busy horizon (for utilisation)
	TotalWriteLag   sim.Duration
	completedForAvg uint64
}

// AvgWriteLatency returns the mean submit-to-completion latency of
// completed writes.
func (s Stats) AvgWriteLatency() sim.Duration {
	if s.completedForAvg == 0 {
		return 0
	}
	return s.TotalWriteLag / sim.Duration(s.completedForAvg)
}

// SSD is the device model. It is not safe for concurrent use; all activity
// happens on the owning simulation's goroutine.
type SSD struct {
	clock  *sim.Clock
	events *sim.Queue
	cfg    Config

	store     map[mmu.PageID][]byte   // durable page contents
	sums      map[mmu.PageID]uint64   // per-page checksums of last acked contents (integrity.go)
	corruptAt map[mmu.PageID]sim.Time // oracle: first unrepaired silent corruption per page
	dedup     map[uint64]struct{}     // content fingerprints (Dedup)
	faults    FaultInjector           // nil = never errors (fault.go)
	inflight  int
	bandwidth sim.Time // next time the write channel is free
	stats     Stats
	reduction ReductionStats

	// window is the ring of recent write completions backing the
	// measured-bandwidth/latency estimators (see MeasuredWriteBandwidth).
	window []measureSample
	winPos int

	// st mirrors the counters onto an observability registry
	// (instruments.go); zero-valued until AttachObs.
	st instruments
}

// measureSample is one completed write in the measurement window.
type measureSample struct {
	submitted sim.Time
	done      sim.Time
	bytes     int // 0 for a failed (transient/torn) write: no goodput
}

// New creates an SSD on the given clock and event queue. The event queue
// must be the simulation's shared queue: IO completions are delivered
// through it so they interleave correctly with epoch ticks and other
// events.
func New(clock *sim.Clock, events *sim.Queue, cfg Config) *SSD {
	return &SSD{
		clock:  clock,
		events: events,
		cfg:    cfg.withDefaults(),
		store:  make(map[mmu.PageID][]byte),
		sums:   make(map[mmu.PageID]uint64),
	}
}

// Config returns the effective (defaulted) configuration.
func (d *SSD) Config() Config { return d.cfg }

// Stats returns a snapshot of the counters.
func (d *SSD) Stats() Stats { return d.stats }

// Outstanding returns the number of in-flight IOs.
func (d *SSD) Outstanding() int { return d.inflight }

// transferTime returns the bandwidth cost of moving n bytes at bw
// bytes/sec.
func transferTime(n int, bw int64) sim.Duration {
	return sim.Duration(int64(n) * int64(sim.Second) / bw)
}

// WritePageAsync submits a durable write of data to page. If the device
// queue is full the submission virtually blocks — events (including other
// completions) fire — until a slot frees. onComplete, if non-nil, runs at
// the IO's completion time; a non-nil error (ErrWriteFault, ErrTornWrite)
// means the page's latest contents are NOT durable and the caller must
// resubmit. The page bytes are snapshotted at submission, so the caller
// may reuse or mutate data as soon as WritePageAsync returns.
func (d *SSD) WritePageAsync(page mmu.PageID, data []byte, onComplete func(sim.Time, error)) {
	if len(data) != d.cfg.PageSize {
		panic(fmt.Sprintf("ssd: write of %d bytes, want page size %d", len(data), d.cfg.PageSize))
	}
	// Snapshot before anything can yield to the event loop: the stall
	// loop below and the completion both run arbitrary events, and the
	// caller's buffer may be a live DRAM page that keeps changing. A
	// durable write must persist the bytes as of submission, not as of
	// completion — without the copy, later DRAM stores would silently
	// rewrite "durable" contents through the retained slice.
	snap := make([]byte, len(data))
	copy(snap, data)
	data = snap
	for d.inflight >= d.cfg.MaxOutstanding {
		d.stats.SubmitStalls++
		d.st.submitStalls.Inc()
		if !d.events.Step(d.clock) {
			panic("ssd: queue full with no pending events; completion event lost")
		}
	}
	d.inflight++
	if d.inflight > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = d.inflight
	}
	d.stats.WritesSubmitted++
	d.st.writesSubmitted.Inc()
	d.st.queueDepth.Set(int64(d.inflight))
	d.st.queueMax.SetMax(int64(d.inflight))

	var fault FaultDecision
	if d.faults != nil {
		fault = d.faults.WriteFault(page, data)
	}

	submitted := d.clock.Now()
	start := submitted
	if d.bandwidth > start {
		start = d.bandwidth
	}
	xfer := transferTime(d.transferBytes(data), d.EffectiveWriteBandwidth())
	d.bandwidth = start.Add(xfer)
	done := d.bandwidth.Add(d.cfg.PerIOLatency)
	if fault.ExtraLatency > 0 {
		d.stats.LatencySpikes++
		done = done.Add(fault.ExtraLatency)
	}
	if done > d.stats.BusyUntil {
		d.stats.BusyUntil = done
	}

	d.events.Schedule(done, func(at sim.Time) {
		var err error
		goodput := 0
		switch fault.Fault {
		case FaultTransient:
			// The attempt consumed bus time but nothing landed.
			d.stats.WriteErrors++
			d.st.writeErrors.Inc()
			err = ErrWriteFault
		case FaultTorn:
			d.stats.TornWrites++
			d.st.tornWrites.Inc()
			d.applyTorn(page, data)
			err = ErrTornWrite
		case FaultLost:
			// Acked but never persisted: the host sees success, so the
			// checksum advances to the new contents while the store keeps
			// the old — the classic silent divergence only a scrub or a
			// verified restore can expose.
			d.stats.LostWrites++
			d.stats.BytesWritten += uint64(len(data))
			goodput = len(data)
			d.sums[page] = Checksum(data)
			d.noteCorrupt(page)
		case FaultMisdirected:
			// Acked for the intended page, landed on a victim: the
			// intended page's checksum advances without its data, and the
			// victim's data changes under its unchanged checksum. Both
			// are now checksum-detectable. With nothing else to hit, the
			// write degrades to lost semantics.
			d.stats.Misdirected++
			d.stats.BytesWritten += uint64(len(data))
			goodput = len(data)
			d.sums[page] = Checksum(data)
			d.noteCorrupt(page)
			if victim, ok := d.misdirectTarget(page, fault.MisdirectSeed); ok {
				d.store[victim] = data
				d.noteCorrupt(victim)
			} else {
				d.stats.LostWrites++
			}
		default:
			d.store[page] = data
			d.sums[page] = Checksum(data)
			d.clearCorrupt(page)
			d.stats.BytesWritten += uint64(len(data))
			goodput = len(data)
		}
		if fault.Rot {
			d.applyRot(fault.RotSeed)
		}
		d.inflight--
		d.stats.WritesCompleted++
		d.stats.TotalWriteLag += at.Sub(submitted)
		d.stats.completedForAvg++
		d.st.writesCompleted.Inc()
		d.st.bytesWritten.Add(uint64(goodput))
		d.st.queueDepth.Set(int64(d.inflight))
		d.st.writeLatency.Record(at.Sub(submitted))
		d.recordSample(measureSample{submitted: submitted, done: at, bytes: goodput})
		if onComplete != nil {
			onComplete(at, err)
		}
	})
}

// WritePageSync submits a write and virtually blocks until it completes.
// It returns the completion time and the IO's error (nil unless a fault
// injector failed it).
func (d *SSD) WritePageSync(page mmu.PageID, data []byte) (sim.Time, error) {
	var doneAt sim.Time
	var doneErr error
	finished := false
	d.WritePageAsync(page, data, func(at sim.Time, err error) {
		doneAt = at
		doneErr = err
		finished = true
	})
	for !finished {
		if !d.events.Step(d.clock) {
			panic("ssd: sync write never completed; completion event lost")
		}
	}
	return doneAt, doneErr
}

// WaitIdle virtually blocks until every in-flight IO has completed.
func (d *SSD) WaitIdle() {
	for d.inflight > 0 {
		if !d.events.Step(d.clock) {
			panic("ssd: in-flight IOs with no pending events")
		}
	}
}

// WriteBatch durably stores a set of pages as one streaming write: the
// backup path taken on power failure, where pages are written out
// sequentially at full device bandwidth rather than as latency-bound
// random IOs. It waits for in-flight IOs first, charges one PerIOLatency
// plus the aggregate transfer time, and returns the completion time.
func (d *SSD) WriteBatch(pages map[mmu.PageID][]byte) sim.Time {
	d.WaitIdle()
	total := 0
	for page, data := range pages {
		if len(data) != d.cfg.PageSize {
			panic(fmt.Sprintf("ssd: batch write of %d bytes to page %d, want page size %d", len(data), page, d.cfg.PageSize))
		}
		total += d.transferBytes(data)
	}
	if total == 0 {
		return d.clock.Now()
	}
	d.clock.Advance(d.cfg.PerIOLatency + transferTime(total, d.EffectiveWriteBandwidth()))
	for page, data := range pages {
		cp := make([]byte, len(data))
		copy(cp, data)
		d.store[page] = cp
		d.sums[page] = Checksum(cp)
		d.clearCorrupt(page)
		d.stats.BytesWritten += uint64(len(data))
		d.stats.WritesCompleted++
		d.stats.WritesSubmitted++
		d.st.bytesWritten.Add(uint64(len(data)))
		d.st.writesCompleted.Inc()
		d.st.writesSubmitted.Inc()
	}
	return d.clock.Now()
}

// ReadPage synchronously reads a page's durable contents, returning a copy
// (nil if the page was never written). Read bandwidth and latency are
// charged.
func (d *SSD) ReadPage(page mmu.PageID) []byte {
	d.clock.Advance(d.cfg.PerIOLatency + transferTime(d.cfg.PageSize, d.cfg.ReadBandwidth))
	d.stats.ReadsCompleted++
	d.stats.BytesRead += uint64(d.cfg.PageSize)
	d.st.readsCompleted.Inc()
	d.st.bytesRead.Add(uint64(d.cfg.PageSize))
	data, ok := d.store[page]
	if !ok {
		return nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// SeedDurable installs contents into the durable store without modelling
// an IO. It exists for power-cycle recovery: the "new" device object a
// rebooted system constructs represents the same physical SSD, whose
// contents survived, so seeding is a modelling operation, not a write.
func (d *SSD) SeedDurable(page mmu.PageID, data []byte) {
	if len(data) != d.cfg.PageSize {
		panic(fmt.Sprintf("ssd: seed of %d bytes, want page size %d", len(data), d.cfg.PageSize))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.store[page] = cp
	d.sums[page] = Checksum(cp)
}

// Durable returns the stored contents of page without charging time, for
// durability verification. The returned slice must not be modified.
func (d *SSD) Durable(page mmu.PageID) ([]byte, bool) {
	data, ok := d.store[page]
	return data, ok
}

// DurablePages returns the number of pages with durable contents.
func (d *SSD) DurablePages() int { return len(d.store) }

// FlushTimeFor returns the time needed to write n pages back-to-back at
// the device's sustained (wear-degraded) bandwidth — the quantity battery
// provisioning is computed from (paper §5.1).
func (d *SSD) FlushTimeFor(nPages int) sim.Duration {
	return transferTime(nPages*d.cfg.PageSize, d.EffectiveWriteBandwidth())
}

// WearBytesPerCell returns total bytes written divided by capacity — a
// proxy for program/erase wear given capacityBytes of flash. The paper's
// portability goal (§4.3) is that dirty budgeting must not overwhelm the
// SSD with write traffic; Fig 9 quantifies the write rate and this helper
// supports the same accounting.
func (d *SSD) WearBytesPerCell(capacityBytes int64) float64 {
	if capacityBytes <= 0 {
		return 0
	}
	return float64(d.stats.BytesWritten) / float64(capacityBytes)
}

// WearCycles returns the number of full-capacity write passes accumulated
// against the configured WearCapacityBytes (0 if wear modelling is off).
func (d *SSD) WearCycles() float64 {
	return d.WearBytesPerCell(d.cfg.WearCapacityBytes)
}

// DegradedBandwidth is the wear model as a pure function: nominal write
// bandwidth reduced by decay per full-capacity write pass, floored at
// floor×nominal. Exposed so provisioning tools (cmd/battery-calc) can
// print the same trajectory the device — and hence the health monitor —
// computes at runtime.
func DegradedBandwidth(nominal int64, cycles, decay, floor float64) int64 {
	f := 1 - decay*cycles
	if f < floor {
		f = floor
	}
	return int64(float64(nominal) * f)
}

// EffectiveWriteBandwidth returns the sustained write bandwidth after
// wear degradation: nominal when WearCapacityBytes is 0.
func (d *SSD) EffectiveWriteBandwidth() int64 {
	if d.cfg.WearCapacityBytes <= 0 {
		return d.cfg.WriteBandwidth
	}
	return DegradedBandwidth(d.cfg.WriteBandwidth, d.WearCycles(),
		d.cfg.WearBandwidthDecay, d.cfg.WearBandwidthFloor)
}

// recordSample appends one completed write to the measurement ring.
func (d *SSD) recordSample(s measureSample) {
	if len(d.window) < d.cfg.MeasureWindow {
		d.window = append(d.window, s)
		return
	}
	d.window[d.winPos] = s
	d.winPos = (d.winPos + 1) % len(d.window)
}

// MeasuredWriteBandwidth returns the write goodput observed over the
// measurement window: successful bytes divided by the *busy* time — the
// sum of each IO's submit-to-completion span. Busy time rather than wall
// span so idle gaps between writes on a quiet system don't read as a
// slow device; under pipelining, queue wait makes the estimate
// conservative, which is the safe direction for budget derivation. It
// returns 0 when fewer than two completions have been observed —
// callers fall back to the nominal model. Failed writes contribute time
// but no bytes, so a device that is erroring measures slow, which is
// exactly what the health monitor should see.
func (d *SSD) MeasuredWriteBandwidth() int64 {
	if len(d.window) < 2 {
		return 0
	}
	var bytes int64
	var busy sim.Duration
	for _, s := range d.window {
		bytes += int64(s.bytes)
		busy += s.done.Sub(s.submitted)
	}
	if busy <= 0 {
		return 0
	}
	return int64(float64(bytes) / busy.Seconds())
}

// ResetMeasurement clears the measurement window. The health monitor
// calls it when resuming from an outage: the window is full of the
// outage's zero-goodput samples, and with writes blocked during the
// outage no new samples arrive to displace them — left in place they
// would pin the measured estimate at zero forever.
func (d *SSD) ResetMeasurement() {
	d.window = d.window[:0]
	d.winPos = 0
}

// MeasuredWriteLatency returns the mean submit-to-completion latency over
// the measurement window (0 with no samples).
func (d *SSD) MeasuredWriteLatency() sim.Duration {
	if len(d.window) == 0 {
		return 0
	}
	var total sim.Duration
	for _, s := range d.window {
		total += s.done.Sub(s.submitted)
	}
	return total / sim.Duration(len(d.window))
}
