// Package ssd models the flash SSD that backs the NV-DRAM: the durability
// domain Viyojit copies dirty pages into. The model captures what the
// paper's mechanism depends on — finite write bandwidth, per-IO latency, a
// bounded number of outstanding requests (16 in the paper's experiments),
// verifiable durable contents, and wear accounting — while staying on the
// deterministic virtual clock.
package ssd

import (
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// Config describes the device.
type Config struct {
	// PageSize is the transfer unit in bytes; it must match the NV-DRAM
	// page size. 0 selects 4096.
	PageSize int
	// WriteBandwidth is the sustained write bandwidth in bytes/second.
	// 0 selects 2 GB/s (a mid-range datacenter NVMe drive; the paper's
	// sizing example assumes 4 GB/s, which cmd/battery-calc uses).
	WriteBandwidth int64
	// ReadBandwidth is the sustained read bandwidth in bytes/second.
	// 0 selects 3 GB/s.
	ReadBandwidth int64
	// PerIOLatency is the fixed device latency added to every IO.
	// 0 selects 60 µs (a 2017-era datacenter SSD write).
	PerIOLatency sim.Duration
	// MaxOutstanding bounds the number of in-flight IOs; submissions
	// beyond the bound virtually block until a slot frees. 0 selects 16,
	// the value the paper's evaluation fixes.
	MaxOutstanding int
	// Dedup enables content-addressed write deduplication (§7's
	// suggested traffic reduction): duplicate page contents transfer
	// only a fingerprint record.
	Dedup bool
	// Compression enables transfer-size compression (§7): the bus cost
	// of a write is its estimated compressed size.
	Compression bool
}

func (c Config) withDefaults() Config {
	if c.PageSize == 0 {
		c.PageSize = 4096
	}
	if c.WriteBandwidth == 0 {
		c.WriteBandwidth = 2 << 30
	}
	if c.ReadBandwidth == 0 {
		c.ReadBandwidth = 3 << 30
	}
	if c.PerIOLatency == 0 {
		c.PerIOLatency = 60 * sim.Microsecond
	}
	if c.MaxOutstanding == 0 {
		c.MaxOutstanding = 16
	}
	return c
}

// Stats counts device activity since construction.
type Stats struct {
	WritesSubmitted uint64
	WritesCompleted uint64
	ReadsCompleted  uint64
	BytesWritten    uint64
	BytesRead       uint64
	SubmitStalls    uint64 // submissions that had to wait for a queue slot
	WriteErrors     uint64 // completions that reported a transient fault
	TornWrites      uint64 // completions that reported a torn write
	LatencySpikes   uint64 // IOs delayed by injected extra latency
	MaxQueueDepth   int
	BusyUntil       sim.Time // device busy horizon (for utilisation)
	TotalWriteLag   sim.Duration
	completedForAvg uint64
}

// AvgWriteLatency returns the mean submit-to-completion latency of
// completed writes.
func (s Stats) AvgWriteLatency() sim.Duration {
	if s.completedForAvg == 0 {
		return 0
	}
	return s.TotalWriteLag / sim.Duration(s.completedForAvg)
}

// SSD is the device model. It is not safe for concurrent use; all activity
// happens on the owning simulation's goroutine.
type SSD struct {
	clock  *sim.Clock
	events *sim.Queue
	cfg    Config

	store     map[mmu.PageID][]byte // durable page contents
	dedup     map[uint64]struct{}   // content fingerprints (Dedup)
	faults    FaultInjector         // nil = never errors (fault.go)
	inflight  int
	bandwidth sim.Time // next time the write channel is free
	stats     Stats
	reduction ReductionStats
}

// New creates an SSD on the given clock and event queue. The event queue
// must be the simulation's shared queue: IO completions are delivered
// through it so they interleave correctly with epoch ticks and other
// events.
func New(clock *sim.Clock, events *sim.Queue, cfg Config) *SSD {
	return &SSD{
		clock:  clock,
		events: events,
		cfg:    cfg.withDefaults(),
		store:  make(map[mmu.PageID][]byte),
	}
}

// Config returns the effective (defaulted) configuration.
func (d *SSD) Config() Config { return d.cfg }

// Stats returns a snapshot of the counters.
func (d *SSD) Stats() Stats { return d.stats }

// Outstanding returns the number of in-flight IOs.
func (d *SSD) Outstanding() int { return d.inflight }

// transferTime returns the bandwidth cost of moving n bytes at bw
// bytes/sec.
func transferTime(n int, bw int64) sim.Duration {
	return sim.Duration(int64(n) * int64(sim.Second) / bw)
}

// WritePageAsync submits a durable write of data to page. If the device
// queue is full the submission virtually blocks — events (including other
// completions) fire — until a slot frees. onComplete, if non-nil, runs at
// the IO's completion time; a non-nil error (ErrWriteFault, ErrTornWrite)
// means the page's latest contents are NOT durable and the caller must
// resubmit. The data slice is retained until completion; callers must
// pass an unshared copy (nvdram.Region.PageData does).
func (d *SSD) WritePageAsync(page mmu.PageID, data []byte, onComplete func(sim.Time, error)) {
	if len(data) != d.cfg.PageSize {
		panic(fmt.Sprintf("ssd: write of %d bytes, want page size %d", len(data), d.cfg.PageSize))
	}
	for d.inflight >= d.cfg.MaxOutstanding {
		d.stats.SubmitStalls++
		if !d.events.Step(d.clock) {
			panic("ssd: queue full with no pending events; completion event lost")
		}
	}
	d.inflight++
	if d.inflight > d.stats.MaxQueueDepth {
		d.stats.MaxQueueDepth = d.inflight
	}
	d.stats.WritesSubmitted++

	var fault FaultDecision
	if d.faults != nil {
		fault = d.faults.WriteFault(page, data)
	}

	submitted := d.clock.Now()
	start := submitted
	if d.bandwidth > start {
		start = d.bandwidth
	}
	xfer := transferTime(d.transferBytes(data), d.cfg.WriteBandwidth)
	d.bandwidth = start.Add(xfer)
	done := d.bandwidth.Add(d.cfg.PerIOLatency)
	if fault.ExtraLatency > 0 {
		d.stats.LatencySpikes++
		done = done.Add(fault.ExtraLatency)
	}
	if done > d.stats.BusyUntil {
		d.stats.BusyUntil = done
	}

	d.events.Schedule(done, func(at sim.Time) {
		var err error
		switch fault.Fault {
		case FaultTransient:
			// The attempt consumed bus time but nothing landed.
			d.stats.WriteErrors++
			err = ErrWriteFault
		case FaultTorn:
			d.stats.TornWrites++
			d.applyTorn(page, data)
			err = ErrTornWrite
		default:
			d.store[page] = data
			d.stats.BytesWritten += uint64(len(data))
		}
		d.inflight--
		d.stats.WritesCompleted++
		d.stats.TotalWriteLag += at.Sub(submitted)
		d.stats.completedForAvg++
		if onComplete != nil {
			onComplete(at, err)
		}
	})
}

// WritePageSync submits a write and virtually blocks until it completes.
// It returns the completion time and the IO's error (nil unless a fault
// injector failed it).
func (d *SSD) WritePageSync(page mmu.PageID, data []byte) (sim.Time, error) {
	var doneAt sim.Time
	var doneErr error
	finished := false
	d.WritePageAsync(page, data, func(at sim.Time, err error) {
		doneAt = at
		doneErr = err
		finished = true
	})
	for !finished {
		if !d.events.Step(d.clock) {
			panic("ssd: sync write never completed; completion event lost")
		}
	}
	return doneAt, doneErr
}

// WaitIdle virtually blocks until every in-flight IO has completed.
func (d *SSD) WaitIdle() {
	for d.inflight > 0 {
		if !d.events.Step(d.clock) {
			panic("ssd: in-flight IOs with no pending events")
		}
	}
}

// WriteBatch durably stores a set of pages as one streaming write: the
// backup path taken on power failure, where pages are written out
// sequentially at full device bandwidth rather than as latency-bound
// random IOs. It waits for in-flight IOs first, charges one PerIOLatency
// plus the aggregate transfer time, and returns the completion time.
func (d *SSD) WriteBatch(pages map[mmu.PageID][]byte) sim.Time {
	d.WaitIdle()
	total := 0
	for page, data := range pages {
		if len(data) != d.cfg.PageSize {
			panic(fmt.Sprintf("ssd: batch write of %d bytes to page %d, want page size %d", len(data), page, d.cfg.PageSize))
		}
		total += d.transferBytes(data)
	}
	if total == 0 {
		return d.clock.Now()
	}
	d.clock.Advance(d.cfg.PerIOLatency + transferTime(total, d.cfg.WriteBandwidth))
	for page, data := range pages {
		cp := make([]byte, len(data))
		copy(cp, data)
		d.store[page] = cp
		d.stats.BytesWritten += uint64(len(data))
		d.stats.WritesCompleted++
		d.stats.WritesSubmitted++
	}
	return d.clock.Now()
}

// ReadPage synchronously reads a page's durable contents, returning a copy
// (nil if the page was never written). Read bandwidth and latency are
// charged.
func (d *SSD) ReadPage(page mmu.PageID) []byte {
	d.clock.Advance(d.cfg.PerIOLatency + transferTime(d.cfg.PageSize, d.cfg.ReadBandwidth))
	d.stats.ReadsCompleted++
	d.stats.BytesRead += uint64(d.cfg.PageSize)
	data, ok := d.store[page]
	if !ok {
		return nil
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out
}

// SeedDurable installs contents into the durable store without modelling
// an IO. It exists for power-cycle recovery: the "new" device object a
// rebooted system constructs represents the same physical SSD, whose
// contents survived, so seeding is a modelling operation, not a write.
func (d *SSD) SeedDurable(page mmu.PageID, data []byte) {
	if len(data) != d.cfg.PageSize {
		panic(fmt.Sprintf("ssd: seed of %d bytes, want page size %d", len(data), d.cfg.PageSize))
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	d.store[page] = cp
}

// Durable returns the stored contents of page without charging time, for
// durability verification. The returned slice must not be modified.
func (d *SSD) Durable(page mmu.PageID) ([]byte, bool) {
	data, ok := d.store[page]
	return data, ok
}

// DurablePages returns the number of pages with durable contents.
func (d *SSD) DurablePages() int { return len(d.store) }

// FlushTimeFor returns the time needed to write n pages back-to-back at
// the device's sustained bandwidth — the quantity battery provisioning is
// computed from (paper §5.1).
func (d *SSD) FlushTimeFor(nPages int) sim.Duration {
	return transferTime(nPages*d.cfg.PageSize, d.cfg.WriteBandwidth)
}

// WearBytesPerCell returns total bytes written divided by capacity — a
// proxy for program/erase wear given capacityBytes of flash. The paper's
// portability goal (§4.3) is that dirty budgeting must not overwhelm the
// SSD with write traffic; Fig 9 quantifies the write rate and this helper
// supports the same accounting.
func (d *SSD) WearBytesPerCell(capacityBytes int64) float64 {
	if capacityBytes <= 0 {
		return 0
	}
	return float64(d.stats.BytesWritten) / float64(capacityBytes)
}
