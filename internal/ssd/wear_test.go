package ssd

import (
	"testing"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

func TestDegradedBandwidth(t *testing.T) {
	const nominal = int64(1000)
	cases := []struct {
		cycles float64
		want   int64
	}{
		{0, 1000},
		{1, 960},    // one full pass at 4 % decay
		{5, 800},    // linear region
		{100, 250},  // floored at 25 %
		{1000, 250}, // floor holds arbitrarily deep
	}
	for _, c := range cases {
		if got := DegradedBandwidth(nominal, c.cycles, 0.04, 0.25); got != c.want {
			t.Errorf("DegradedBandwidth(cycles=%v) = %d, want %d", c.cycles, got, c.want)
		}
	}
}

func TestEffectiveWriteBandwidthTracksWear(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	// Wear capacity of 8 pages: every 8 page writes is one full pass.
	d := New(clock, events, Config{
		WriteBandwidth:    1 << 20,
		WearCapacityBytes: 8 * 4096,
	})
	if got := d.EffectiveWriteBandwidth(); got != 1<<20 {
		t.Fatalf("unworn bandwidth = %d, want nominal %d", got, 1<<20)
	}
	data := make([]byte, 4096)
	for p := 0; p < 16; p++ { // two full passes
		if _, err := d.WritePageSync(mmu.PageID(p%4), data); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.WearCycles(); got != 2 {
		t.Fatalf("wear cycles = %v, want 2", got)
	}
	want := DegradedBandwidth(1<<20, 2, 0.04, 0.25)
	if got := d.EffectiveWriteBandwidth(); got != want {
		t.Fatalf("worn bandwidth = %d, want %d", got, want)
	}
}

func TestEffectiveWriteBandwidthNominalWithoutWearConfig(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	d := New(clock, events, Config{WriteBandwidth: 1 << 20})
	data := make([]byte, 4096)
	for p := 0; p < 64; p++ {
		if _, err := d.WritePageSync(mmu.PageID(p), data); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.EffectiveWriteBandwidth(); got != 1<<20 {
		t.Fatalf("bandwidth with wear modelling off = %d, want nominal", got)
	}
}

// The measured-bandwidth estimator must charge busy time, not wall
// time: a healthy device on a quiet system (long idle gaps between
// writes) measures its true per-IO goodput, not a figure diluted by
// the silence.
func TestMeasuredWriteBandwidthIgnoresIdleGaps(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	d := New(clock, events, Config{}) // 2 GB/s, 60 µs per-IO latency
	if got := d.MeasuredWriteBandwidth(); got != 0 {
		t.Fatalf("measured with no samples = %d, want 0", got)
	}
	data := make([]byte, 4096)
	for p := 0; p < 10; p++ {
		if _, err := d.WritePageSync(mmu.PageID(p), data); err != nil {
			t.Fatal(err)
		}
		clock.Advance(sim.Millisecond) // quiet system: long gaps
	}
	// Per-IO goodput: 4096 B over ~(60 µs + 4096/2 GiB) ≈ 66 MB/s. Wall
	// span over 10 ms of mostly idle time would read ~4 MB/s — an order
	// of magnitude low.
	got := d.MeasuredWriteBandwidth()
	if got < 40<<20 || got > 100<<20 {
		t.Fatalf("measured bandwidth = %d B/s, want ~66 MB/s (busy-time accounting)", got)
	}
	if lat := d.MeasuredWriteLatency(); lat < 60*sim.Microsecond || lat > 70*sim.Microsecond {
		t.Fatalf("measured latency = %v, want ~62 µs", lat)
	}
}

// Failed writes occupy the device but deliver no goodput, so an
// erroring device measures slow — the signal the health monitor keys
// its budget shrink on.
func TestMeasuredWriteBandwidthFailedWritesCountNoGoodput(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	d := New(clock, events, Config{})
	d.SetFaultInjector(failEverything{})
	data := make([]byte, 4096)
	for p := 0; p < 4; p++ {
		if _, err := d.WritePageSync(mmu.PageID(p), data); err == nil {
			t.Fatal("injected fault did not surface")
		}
	}
	if got := d.MeasuredWriteBandwidth(); got != 0 {
		t.Fatalf("measured goodput on an all-failing device = %d, want 0", got)
	}
	if lat := d.MeasuredWriteLatency(); lat <= 0 {
		t.Fatal("failed writes recorded no latency")
	}
}

// failEverything is a minimal FaultInjector: every write fails
// transiently.
type failEverything struct{}

func (failEverything) WriteFault(mmu.PageID, []byte) FaultDecision {
	return FaultDecision{Fault: FaultTransient}
}
