package ssd

import (
	"bytes"
	"testing"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

func TestContentHash(t *testing.T) {
	if contentHash(nil) != contentHash([]byte{}) {
		t.Fatal("nil and empty slices hash differently")
	}
	a := bytes.Repeat([]byte{0xAB}, 4096)
	if contentHash(a) != contentHash(append([]byte(nil), a...)) {
		t.Fatal("equal contents hash differently")
	}
	b := append([]byte(nil), a...)
	b[4095] ^= 1 // tail byte, exercises the byte-wise remainder loop
	if contentHash(a) == contentHash(b) {
		t.Fatal("single-byte difference not reflected in hash")
	}
	c := append([]byte(nil), a...)
	c[0] ^= 1 // word-path byte
	if contentHash(a) == contentHash(c) {
		t.Fatal("leading-byte difference not reflected in hash")
	}
	// Odd lengths split between the word and tail loops.
	if contentHash(a[:13]) == contentHash(a[:12]) {
		t.Fatal("length not reflected in hash")
	}
}

func TestEstimateCompressedSizeExact(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want int
	}{
		{"empty input", nil, 0},
		{"single byte", []byte{7}, 1},                              // header would exceed input: capped
		{"short run below threshold", []byte{5, 5, 5}, 3},          // capped at input size
		{"run at threshold", []byte{5, 5, 5, 5}, 4},                // token+header still ≥ input: capped
		{"all zero page", make([]byte, 4096), 11},                  // header + one token
		{"two runs", append(bytes.Repeat([]byte{1}, 100), bytes.Repeat([]byte{2}, 100)...), 14},
	}
	for _, c := range cases {
		if got := EstimateCompressedSize(c.data); got != c.want {
			t.Errorf("%s: size %d, want %d", c.name, got, c.want)
		}
	}
	// Incompressible data is capped at the input size.
	noisy := make([]byte, 256)
	for i := range noisy {
		noisy[i] = byte(i*7 + 3)
	}
	if got := EstimateCompressedSize(noisy); got != len(noisy) {
		t.Fatalf("incompressible data estimated at %d, want cap %d", got, len(noisy))
	}
}

func TestTransferBytesDedup(t *testing.T) {
	clock := sim.NewClock()
	d := New(clock, sim.NewQueue(), Config{Dedup: true})
	page := bytes.Repeat([]byte{0x5A}, int(d.cfg.PageSize))

	if got := d.transferBytes(page); got != len(page) {
		t.Fatalf("first write of content transferred %d bytes, want full %d", got, len(page))
	}
	if got := d.transferBytes(page); got != dedupRecordBytes {
		t.Fatalf("duplicate content transferred %d bytes, want %d (fingerprint record)", got, dedupRecordBytes)
	}
	st := d.ReductionStats()
	if st.DedupHits != 1 {
		t.Fatalf("DedupHits = %d, want 1", st.DedupHits)
	}
	if st.DedupBytesSaved != uint64(len(page)-dedupRecordBytes) {
		t.Fatalf("DedupBytesSaved = %d, want %d", st.DedupBytesSaved, len(page)-dedupRecordBytes)
	}
}

func TestTransferBytesCompression(t *testing.T) {
	clock := sim.NewClock()
	d := New(clock, sim.NewQueue(), Config{Compression: true})
	page := make([]byte, 4096) // all zero: maximally compressible

	if got := d.transferBytes(page); got != 11 {
		t.Fatalf("zero page transferred %d bytes, want 11", got)
	}
	st := d.ReductionStats()
	if st.CompressedWrites != 1 || st.CompressionSaved != 4096-11 {
		t.Fatalf("compression stats %+v, want 1 write saving %d", st, 4096-11)
	}

	// Incompressible pages transfer in full and are not counted.
	noisy := make([]byte, 4096)
	for i := range noisy {
		noisy[i] = byte(i*31 + 7)
	}
	if got := d.transferBytes(noisy); got != len(noisy) {
		t.Fatalf("incompressible page transferred %d bytes, want %d", got, len(noisy))
	}
	if st := d.ReductionStats(); st.CompressedWrites != 1 {
		t.Fatalf("incompressible page counted as compressed: %+v", st)
	}
}

func TestTransferBytesDisabled(t *testing.T) {
	clock := sim.NewClock()
	d := New(clock, sim.NewQueue(), Config{})
	page := make([]byte, 4096)
	if got := d.transferBytes(page); got != len(page) {
		t.Fatalf("reductions disabled but transfer = %d, want %d", got, len(page))
	}
	if got := d.transferBytes(page); got != len(page) {
		t.Fatalf("reductions disabled but repeat transfer = %d, want %d", got, len(page))
	}
	if st := d.ReductionStats(); st != (ReductionStats{}) {
		t.Fatalf("reduction stats %+v with reductions disabled", st)
	}
}

// TestDedupReducesChargedBandwidth: the reduction feeds the timing
// model — a duplicate page's write completes faster than the original's
// because only the fingerprint record crosses the bus.
func TestDedupReducesChargedBandwidth(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	d := New(clock, events, Config{Dedup: true})
	page := bytes.Repeat([]byte{0x11}, int(d.cfg.PageSize))

	first, err := d.WritePageSync(mmu.PageID(0), page)
	if err != nil {
		t.Fatal(err)
	}
	second, err := d.WritePageSync(mmu.PageID(1), page)
	if err != nil {
		t.Fatal(err)
	}
	if dupCost, fullCost := second.Sub(first), first.Sub(0); dupCost >= fullCost {
		t.Fatalf("duplicate write took %v, original %v; dedup saved nothing", dupCost, fullCost)
	}
	// BytesWritten counts logical page bytes (the wear model), not the
	// reduced bus transfer.
	if got := d.Stats().BytesWritten; got != uint64(2*len(page)) {
		t.Fatalf("BytesWritten = %d, want %d", got, 2*len(page))
	}
}
