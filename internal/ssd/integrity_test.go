package ssd

import (
	"bytes"
	"errors"
	"testing"

	"viyojit/internal/mmu"
)

// scriptInjector replays a fixed list of decisions, then none.
type scriptInjector struct {
	decisions []FaultDecision
	i         int
}

func (s *scriptInjector) WriteFault(mmu.PageID, []byte) FaultDecision {
	if s.i >= len(s.decisions) {
		return FaultDecision{}
	}
	d := s.decisions[s.i]
	s.i++
	return d
}

func TestVerifyPageIntactAndCorrupt(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	data := page(0x5A, 4096)
	if _, err := d.WritePageSync(7, data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := d.VerifyPage(7); err != nil {
		t.Fatalf("intact page failed verification: %v", err)
	}
	if err := d.VerifyPage(99); err != nil {
		t.Fatalf("never-written page failed verification: %v", err)
	}
	if !d.CorruptPage(7, 1234, 0x01) {
		t.Fatal("CorruptPage reported nothing to corrupt")
	}
	if err := d.VerifyPage(7); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corrupt page verified clean (err = %v)", err)
	}
	if _, err := d.ReadPageVerified(7); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("ReadPageVerified returned corrupt bytes without error (err = %v)", err)
	}
	if _, known := d.CorruptedSince(7); !known {
		t.Fatal("oracle lost the corruption time")
	}
	// A full rewrite re-cleans the page: checksum re-acked, oracle cleared.
	if _, err := d.WritePageSync(7, data); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if err := d.VerifyPage(7); err != nil {
		t.Fatalf("rewritten page failed verification: %v", err)
	}
	if _, known := d.CorruptedSince(7); known {
		t.Fatal("oracle still marks a rewritten page corrupt")
	}
	st := d.Stats()
	if st.VerifyFailures == 0 || st.RotEvents != 1 {
		t.Fatalf("stats did not record the detection: %+v", st)
	}
}

// TestWriteAsyncSnapshotsBuffer is the aliasing regression test: the
// device must capture the caller's bytes at submission, not at
// completion — a caller reusing its buffer while the IO is in flight
// must not change what lands durably (or what the checksum covers).
func TestWriteAsyncSnapshotsBuffer(t *testing.T) {
	d, c, q := newTestSSD(Config{})
	buf := page(0xAA, 4096)
	want := append([]byte(nil), buf...)
	d.WritePageAsync(3, buf, nil)
	for i := range buf {
		buf[i] = 0xEE // caller reuses the buffer mid-flight
	}
	q.Drain(c)
	got, ok := d.Durable(3)
	if !ok || !bytes.Equal(got, want) {
		t.Fatal("durable contents follow the caller's buffer: submission snapshot missing")
	}
	if err := d.VerifyPage(3); err != nil {
		t.Fatalf("page failed verification after buffer reuse: %v", err)
	}
}

func TestLostWriteDetected(t *testing.T) {
	d, c, q := newTestSSD(Config{})
	d.SetFaultInjector(&scriptInjector{decisions: []FaultDecision{{Fault: FaultLost}}})

	// A fully lost first write: the store never sees the page, but the
	// device acked it — only the checksum claim records that it existed.
	d.WritePageAsync(5, page(0x11, 4096), nil)
	q.Drain(c)
	if _, ok := d.Durable(5); ok {
		t.Fatal("lost write landed in the store")
	}
	if err := d.VerifyPage(5); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("lost write not detected (err = %v)", err)
	}
	found := false
	for _, p := range d.DurablePageList() {
		if p == 5 {
			found = true
		}
	}
	if !found {
		t.Fatal("lost page absent from DurablePageList: restore would silently skip it")
	}

	// A lost overwrite: old bytes stay, checksum moved on.
	if _, err := d.WritePageSync(6, page(0x22, 4096)); err != nil {
		t.Fatalf("seed write: %v", err)
	}
	d.SetFaultInjector(&scriptInjector{decisions: []FaultDecision{{Fault: FaultLost}}})
	d.WritePageAsync(6, page(0x33, 4096), nil)
	q.Drain(c)
	got, _ := d.Durable(6)
	if !bytes.Equal(got, page(0x22, 4096)) {
		t.Fatal("lost overwrite mutated the store")
	}
	if err := d.VerifyPage(6); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("stale page passed verification after a lost overwrite (err = %v)", err)
	}
	if d.Stats().LostWrites != 2 {
		t.Fatalf("LostWrites = %d, want 2", d.Stats().LostWrites)
	}
}

func TestMisdirectedWriteDetected(t *testing.T) {
	d, c, q := newTestSSD(Config{})
	for p := mmu.PageID(1); p <= 2; p++ {
		if _, err := d.WritePageSync(p, page(byte(p), 4096)); err != nil {
			t.Fatalf("seed write %d: %v", p, err)
		}
	}
	d.SetFaultInjector(&scriptInjector{decisions: []FaultDecision{{Fault: FaultMisdirected}}})
	d.WritePageAsync(1, page(0x77, 4096), nil)
	q.Drain(c)
	// Intended page: checksum advanced, bytes did not.
	if err := d.VerifyPage(1); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("misdirected write's intended page passed verification (err = %v)", err)
	}
	// Victim page (the only other durable page): bytes overwritten under
	// its old checksum.
	if got, _ := d.Durable(2); !bytes.Equal(got, page(0x77, 4096)) {
		t.Fatal("misdirected write did not land on the victim page")
	}
	if err := d.VerifyPage(2); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("misdirected write's victim page passed verification (err = %v)", err)
	}
	if d.Stats().Misdirected != 1 {
		t.Fatalf("Misdirected = %d, want 1", d.Stats().Misdirected)
	}
}

func TestRotDecisionDetected(t *testing.T) {
	d, c, q := newTestSSD(Config{})
	for p := mmu.PageID(0); p < 4; p++ {
		if _, err := d.WritePageSync(p, page(0x40+byte(p), 4096)); err != nil {
			t.Fatalf("seed write %d: %v", p, err)
		}
	}
	d.SetFaultInjector(&scriptInjector{decisions: []FaultDecision{{Rot: true, RotSeed: 12345}}})
	d.WritePageAsync(0, page(0x99, 4096), nil)
	q.Drain(c)
	oracle := d.CorruptOracle()
	if len(oracle) != 1 {
		t.Fatalf("rot corrupted %d pages, want 1", len(oracle))
	}
	if err := d.VerifyPage(oracle[0]); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("rotted page %d passed verification (err = %v)", oracle[0], err)
	}
}

// FuzzVerifyPage: any single-byte XOR of a durable page's contents must
// be caught by verification (CRC64 is linear: a nonzero delta anywhere
// changes the checksum), and a zero pattern — no actual mutation — must
// keep the page clean.
func FuzzVerifyPage(f *testing.F) {
	f.Add([]byte("seed content"), uint32(0), byte(0x01))
	f.Add([]byte{}, uint32(4095), byte(0xFF))
	f.Add([]byte{0xAB, 0xCD}, uint32(70000), byte(0x80))
	f.Add([]byte("x"), uint32(17), byte(0))
	f.Fuzz(func(t *testing.T, content []byte, off uint32, pattern byte) {
		d, _, _ := newTestSSD(Config{})
		data := make([]byte, 4096)
		copy(data, content)
		if _, err := d.WritePageSync(9, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := d.VerifyPage(9); err != nil {
			t.Fatalf("intact page failed verification: %v", err)
		}
		mutated := d.CorruptPage(9, int(off), pattern)
		if mutated != (pattern != 0) {
			t.Fatalf("CorruptPage mutated=%v with pattern %#x", mutated, pattern)
		}
		err := d.VerifyPage(9)
		if mutated && !errors.Is(err, ErrCorruptPage) {
			t.Fatalf("corruption at off %d pattern %#x escaped verification (err = %v)", off, pattern, err)
		}
		if !mutated && err != nil {
			t.Fatalf("unmutated page failed verification: %v", err)
		}
	})
}
