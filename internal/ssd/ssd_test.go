package ssd

import (
	"bytes"
	"testing"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

func newTestSSD(cfg Config) (*SSD, *sim.Clock, *sim.Queue) {
	c := sim.NewClock()
	q := sim.NewQueue()
	return New(c, q, cfg), c, q
}

func page(b byte, size int) []byte {
	return bytes.Repeat([]byte{b}, size)
}

func TestDefaults(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	cfg := d.Config()
	if cfg.PageSize != 4096 || cfg.MaxOutstanding != 16 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestSyncWriteDurable(t *testing.T) {
	d, c, _ := newTestSSD(Config{})
	data := page(0x5A, 4096)
	t0 := c.Now()
	done, err := d.WritePageSync(7, data)
	if err != nil {
		t.Fatalf("sync write error: %v", err)
	}
	if done <= t0 {
		t.Fatal("sync write completed instantaneously")
	}
	got, ok := d.Durable(7)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("durable contents missing or wrong after sync write")
	}
	if d.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after sync write", d.Outstanding())
	}
}

func TestWrongSizePanics(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("short write did not panic")
		}
	}()
	d.WritePageAsync(0, []byte{1, 2, 3}, nil)
}

func TestAsyncCompletionOrderAndBandwidth(t *testing.T) {
	d, c, q := newTestSSD(Config{WriteBandwidth: 1 << 20, PerIOLatency: sim.Microsecond}) // 1 MiB/s: 4 KiB takes ~3.9 ms
	var completions []sim.Time
	for i := 0; i < 3; i++ {
		d.WritePageAsync(mmu.PageID(i), page(byte(i), 4096), func(at sim.Time, _ error) {
			completions = append(completions, at)
		})
	}
	q.Drain(c)
	if len(completions) != 3 {
		t.Fatalf("%d completions, want 3", len(completions))
	}
	// Bandwidth serialises transfers: completions must be spaced by at
	// least the transfer time of one page.
	xfer := sim.Duration(4096 * int64(sim.Second) / (1 << 20))
	for i := 1; i < 3; i++ {
		gap := completions[i].Sub(completions[i-1])
		if gap < xfer {
			t.Fatalf("completions %d and %d spaced %v, want >= %v", i-1, i, gap, xfer)
		}
	}
}

func TestQueueDepthBoundEnforced(t *testing.T) {
	d, c, q := newTestSSD(Config{MaxOutstanding: 4, WriteBandwidth: 1 << 20})
	for i := 0; i < 20; i++ {
		d.WritePageAsync(mmu.PageID(i), page(byte(i), 4096), nil)
		if d.Outstanding() > 4 {
			t.Fatalf("outstanding = %d exceeds bound 4", d.Outstanding())
		}
	}
	q.Drain(c)
	if d.Stats().SubmitStalls == 0 {
		t.Fatal("expected submit stalls with a full queue")
	}
	if d.Stats().MaxQueueDepth != 4 {
		t.Fatalf("max queue depth = %d, want 4", d.Stats().MaxQueueDepth)
	}
	if d.Stats().WritesCompleted != 20 {
		t.Fatalf("completed = %d, want 20", d.Stats().WritesCompleted)
	}
}

func TestWaitIdle(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	for i := 0; i < 5; i++ {
		d.WritePageAsync(mmu.PageID(i), page(1, 4096), nil)
	}
	d.WaitIdle()
	if d.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after WaitIdle", d.Outstanding())
	}
	if d.DurablePages() != 5 {
		t.Fatalf("durable pages = %d, want 5", d.DurablePages())
	}
}

func TestReadPage(t *testing.T) {
	d, c, _ := newTestSSD(Config{})
	data := page(0x42, 4096)
	d.WritePageSync(3, data)
	t0 := c.Now()
	got := d.ReadPage(3)
	if !bytes.Equal(got, data) {
		t.Fatal("read returned wrong contents")
	}
	if c.Now() == t0 {
		t.Fatal("read charged no time")
	}
	if d.ReadPage(99) != nil {
		t.Fatal("read of never-written page returned data")
	}
	// Returned slice must not alias the store.
	got[0] = 0
	if durable, _ := d.Durable(3); durable[0] != 0x42 {
		t.Fatal("ReadPage aliases durable store")
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	d.WritePageSync(1, page(0x01, 4096))
	d.WritePageSync(1, page(0x02, 4096))
	got, _ := d.Durable(1)
	if got[0] != 0x02 {
		t.Fatal("overwrite did not keep latest contents")
	}
	if d.DurablePages() != 1 {
		t.Fatalf("durable pages = %d, want 1", d.DurablePages())
	}
}

func TestFlushTimeFor(t *testing.T) {
	d, _, _ := newTestSSD(Config{WriteBandwidth: 4 << 30}) // paper's 4 GB/s
	// 1 GiB of pages at 4 GiB/s = 0.25 s.
	n := (1 << 30) / 4096
	got := d.FlushTimeFor(n)
	want := sim.Duration(int64(sim.Second) / 4)
	if got != want {
		t.Fatalf("FlushTimeFor = %v, want %v", got, want)
	}
}

func TestStatsAndWear(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	for i := 0; i < 10; i++ {
		d.WritePageSync(mmu.PageID(i), page(1, 4096))
	}
	s := d.Stats()
	if s.BytesWritten != 10*4096 {
		t.Fatalf("bytes written = %d", s.BytesWritten)
	}
	if s.AvgWriteLatency() <= 0 {
		t.Fatal("average write latency not tracked")
	}
	if w := d.WearBytesPerCell(10 * 4096); w != 1.0 {
		t.Fatalf("wear = %v, want 1.0", w)
	}
	if d.WearBytesPerCell(0) != 0 {
		t.Fatal("wear with zero capacity should be 0")
	}
}

func TestCompletionsInterleaveWithOtherEvents(t *testing.T) {
	// A foreground sync write must let unrelated events (e.g. epoch
	// ticks) fire while it waits.
	d, c, q := newTestSSD(Config{WriteBandwidth: 1 << 20, PerIOLatency: sim.Millisecond})
	tickFired := false
	q.Schedule(c.Now().Add(10*sim.Microsecond), func(sim.Time) { tickFired = true })
	d.WritePageSync(0, page(9, 4096))
	if !tickFired {
		t.Fatal("pending event did not fire during sync write wait")
	}
}

func TestSeedDurable(t *testing.T) {
	d, _, _ := newTestSSD(Config{})
	data := page(0x77, 4096)
	d.SeedDurable(5, data)
	got, ok := d.Durable(5)
	if !ok || !bytes.Equal(got, data) {
		t.Fatal("seeded contents missing")
	}
	// Seeding copies: mutating the source must not alias the store.
	data[0] = 0
	if got, _ := d.Durable(5); got[0] != 0x77 {
		t.Fatal("SeedDurable aliased caller memory")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short seed did not panic")
		}
	}()
	d.SeedDurable(6, []byte{1})
}

func TestWriteBatchStreaming(t *testing.T) {
	d, c, _ := newTestSSD(Config{WriteBandwidth: 1 << 20, PerIOLatency: sim.Millisecond})
	batch := map[mmu.PageID][]byte{}
	for i := 0; i < 8; i++ {
		batch[mmu.PageID(i)] = page(byte(i+1), 4096)
	}
	t0 := c.Now()
	d.WriteBatch(batch)
	elapsed := c.Now().Sub(t0)
	// One latency + aggregate transfer, NOT one latency per page.
	xfer := sim.Duration(8 * 4096 * int64(sim.Second) / (1 << 20))
	want := sim.Millisecond + xfer
	if elapsed != want {
		t.Fatalf("batch took %v, want %v (single-latency streaming)", elapsed, want)
	}
	for i := 0; i < 8; i++ {
		got, ok := d.Durable(mmu.PageID(i))
		if !ok || got[0] != byte(i+1) {
			t.Fatalf("page %d not durable after batch", i)
		}
	}
	// Empty batch is free.
	t1 := c.Now()
	d.WriteBatch(nil)
	if c.Now() != t1 {
		t.Fatal("empty batch charged time")
	}
}

func TestDedupSkipsDuplicateTransfers(t *testing.T) {
	d, c, _ := newTestSSD(Config{Dedup: true, WriteBandwidth: 1 << 20, PerIOLatency: 0})
	data := page(0xAA, 4096)
	d.WritePageSync(0, data)
	first := c.Now()
	// Same contents to a different page: dedup hit, near-zero transfer.
	d.WritePageSync(1, page(0xAA, 4096))
	dupCost := c.Now().Sub(first)
	fullCost := sim.Duration(4096 * int64(sim.Second) / (1 << 20))
	if dupCost >= fullCost/4 {
		t.Fatalf("dedup write cost %v, want far below full transfer %v", dupCost, fullCost)
	}
	if d.ReductionStats().DedupHits != 1 {
		t.Fatalf("dedup hits = %d", d.ReductionStats().DedupHits)
	}
	// Durable contents are still correct for both pages.
	for p := mmu.PageID(0); p <= 1; p++ {
		got, ok := d.Durable(p)
		if !ok || got[0] != 0xAA {
			t.Fatalf("page %d contents wrong after dedup", p)
		}
	}
}

func TestCompressionShrinksTransfers(t *testing.T) {
	d, c, _ := newTestSSD(Config{Compression: true, WriteBandwidth: 1 << 20, PerIOLatency: 0})
	t0 := c.Now()
	d.WritePageSync(0, page(0x00, 4096)) // all-same page compresses hard
	compressed := c.Now().Sub(t0)
	full := sim.Duration(4096 * int64(sim.Second) / (1 << 20))
	if compressed >= full/10 {
		t.Fatalf("compressible write cost %v, want ≪ %v", compressed, full)
	}
	if d.ReductionStats().CompressedWrites != 1 {
		t.Fatalf("compressed writes = %d", d.ReductionStats().CompressedWrites)
	}
}

func TestEstimateCompressedSize(t *testing.T) {
	if got := EstimateCompressedSize(nil); got != 0 {
		t.Fatalf("empty estimate = %d", got)
	}
	runs := bytes.Repeat([]byte{7}, 4096)
	if got := EstimateCompressedSize(runs); got > 16 {
		t.Fatalf("uniform page estimate = %d, want tiny", got)
	}
	random := make([]byte, 4096)
	for i := range random {
		random[i] = byte(i*131 + i>>3)
	}
	if got := EstimateCompressedSize(random); got != 4096 {
		t.Fatalf("incompressible estimate = %d, want capped at 4096", got)
	}
}
