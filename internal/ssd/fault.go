package ssd

// Fault injection surface. The device model itself never errors; real
// flash does — transient program failures, latency spikes from internal
// GC, and torn (partial) page programs when power sags mid-write. A
// FaultInjector installed with SetFaultInjector decides the fate of each
// submitted write, so adversarial failure schedules stay deterministic:
// the injector (internal/faultinject provides a seeded one) is the only
// source of randomness and runs on the virtual clock.

import (
	"errors"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// WriteFault classifies an injected write failure.
type WriteFault int

const (
	// FaultNone lets the write proceed normally.
	FaultNone WriteFault = iota
	// FaultTransient fails the IO: the completion reports ErrWriteFault
	// and the durable store is unchanged. The device consumed bus time
	// for the attempt.
	FaultTransient
	// FaultTorn models a program failure mid-write: the first half of
	// the page lands durably, the rest keeps its previous contents (or
	// zeroes if the page was never written), and the completion reports
	// ErrTornWrite. A correct consumer must keep the page dirty and
	// rewrite it in full.
	FaultTorn
	// FaultLost models a lost write: the device acks success but never
	// persists the data. The completion reports nil — the host believes
	// the page durable — while the store keeps its previous contents.
	// Only the page checksum (recorded at ack) can expose the lie.
	FaultLost
	// FaultMisdirected models a misdirected write: the device acks
	// success for the intended page but the data lands on a different
	// durable page, silently corrupting the victim while leaving the
	// intended page stale. With no other durable page to hit it degrades
	// to FaultLost semantics.
	FaultMisdirected
)

// FaultDecision is the injector's verdict for one write.
type FaultDecision struct {
	Fault WriteFault
	// ExtraLatency is added to the IO's completion time — a latency
	// spike. It composes with any Fault.
	ExtraLatency sim.Duration
	// Rot, when set, flips one bit in one at-rest durable page at the
	// IO's completion time — silent bit rot. It composes with any Fault;
	// RotSeed deterministically selects the victim page and bit.
	Rot     bool
	RotSeed uint64
	// MisdirectSeed deterministically selects the victim page of a
	// FaultMisdirected write.
	MisdirectSeed uint64
}

// FaultInjector decides the fate of each submitted page write. It is
// consulted once per WritePageAsync submission (retries are new
// submissions and are consulted again). Implementations must be
// deterministic for reproducible runs.
type FaultInjector interface {
	WriteFault(page mmu.PageID, data []byte) FaultDecision
}

// ErrWriteFault is reported by a completion whose IO was failed by the
// installed FaultInjector; the durable store is unchanged.
var ErrWriteFault = errors.New("ssd: transient write error (injected)")

// ErrTornWrite is reported by a completion whose IO tore: only a prefix
// of the page landed durably. The caller must rewrite the full page.
var ErrTornWrite = errors.New("ssd: torn page write (injected)")

// SetFaultInjector installs (or, with nil, removes) the write fault
// injector. Only WritePageAsync/WritePageSync consult it; WriteBatch —
// the battery-powered power-fail flush — is exempt, matching the paper's
// assumption that the backup path itself is engineered to complete
// (faultinject models battery shortfall separately via capacity sag).
func (d *SSD) SetFaultInjector(fi FaultInjector) { d.faults = fi }

// applyTorn installs the torn image for page: the first half of data
// over whatever the durable store previously held. The page checksum is
// left at the previous ack, so the mixed image is checksum-detectable,
// and the corruption oracle records the divergence until a full rewrite
// lands.
func (d *SSD) applyTorn(page mmu.PageID, data []byte) {
	torn := make([]byte, len(data))
	if prev, ok := d.store[page]; ok {
		copy(torn, prev)
	}
	copy(torn[:len(data)/2], data[:len(data)/2])
	d.store[page] = torn
	d.noteCorrupt(page)
}
