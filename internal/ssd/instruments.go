package ssd

import "viyojit/internal/obs"

// instruments mirrors the device counters onto an observability
// registry. The struct is a value; with no registry attached every
// field is nil and the obs methods no-op, so the hot paths record
// unconditionally. Stats remains the source of truth — the mirror
// exists so exports and concurrent readers see device activity without
// touching the single-goroutine Stats struct.
type instruments struct {
	writesSubmitted *obs.Counter
	writesCompleted *obs.Counter
	readsCompleted  *obs.Counter
	bytesWritten    *obs.Counter
	bytesRead       *obs.Counter
	submitStalls    *obs.Counter
	writeErrors     *obs.Counter
	tornWrites      *obs.Counter
	verifyChecks    *obs.Counter
	verifyFailures  *obs.Counter

	queueDepth *obs.Gauge
	queueMax   *obs.Gauge

	writeLatency *obs.Histogram
}

// AttachObs mirrors the device's counters onto reg. Call before
// traffic; counting starts from the attach point (prior activity is
// not back-filled). A nil registry detaches the mirror.
func (d *SSD) AttachObs(reg *obs.Registry) {
	if reg == nil {
		d.st = instruments{}
		return
	}
	d.st = instruments{
		writesSubmitted: reg.Counter("ssd_writes_submitted_total"),
		writesCompleted: reg.Counter("ssd_writes_completed_total"),
		readsCompleted:  reg.Counter("ssd_reads_completed_total"),
		bytesWritten:    reg.Counter("ssd_bytes_written_total"),
		bytesRead:       reg.Counter("ssd_bytes_read_total"),
		submitStalls:    reg.Counter("ssd_submit_stalls_total"),
		writeErrors:     reg.Counter("ssd_write_errors_total"),
		tornWrites:      reg.Counter("ssd_torn_writes_total"),
		verifyChecks:    reg.Counter("ssd_verify_checks_total"),
		verifyFailures:  reg.Counter("ssd_verify_failures_total"),
		queueDepth:      reg.Gauge("ssd_queue_depth"),
		queueMax:        reg.Gauge("ssd_queue_max"),
		writeLatency:    reg.Histogram("ssd_write_latency_ns"),
	}
}
