package ssd

import "encoding/binary"

// §7 of the paper notes that "the write bandwidth to secondary storage
// could be further reduced by using compression and de-duplication". This
// file models both, as optional device features:
//
//   - Dedup: content-addressed — a page whose contents already exist
//     anywhere in the durable store transfers only a fingerprint record
//     instead of the data.
//   - Compression: the transfer length is the estimated compressed size
//     (a run-length/diversity estimator; real devices use LZ-class
//     compressors whose ratio this approximates for the structured data
//     the workloads write).

// ReductionStats counts the §7 savings.
type ReductionStats struct {
	DedupHits        uint64
	DedupBytesSaved  uint64
	CompressedWrites uint64
	CompressionSaved uint64
}

// contentHash is FNV-1a over the page contents — the dedup fingerprint.
// (A production system would use a cryptographic hash; collision handling
// is irrelevant to the bandwidth model.)
func contentHash(data []byte) uint64 {
	h := uint64(0xCBF29CE484222325)
	// Hash 8 bytes at a time for speed; the tail byte-wise.
	i := 0
	for ; i+8 <= len(data); i += 8 {
		h ^= binary.LittleEndian.Uint64(data[i:])
		h *= 0x100000001B3
	}
	for ; i < len(data); i++ {
		h ^= uint64(data[i])
		h *= 0x100000001B3
	}
	return h
}

// dedupRecordBytes is the metadata written instead of a duplicate page's
// contents (fingerprint + mapping entry).
const dedupRecordBytes = 64

// EstimateCompressedSize approximates an LZ-class compressor's output
// size for data: each maximal run of a repeated byte costs ~3 bytes, each
// literal byte 1, plus a small header, capped at the input size.
func EstimateCompressedSize(data []byte) int {
	if len(data) == 0 {
		return 0
	}
	size := 8 // header
	i := 0
	for i < len(data) {
		j := i + 1
		for j < len(data) && data[j] == data[i] {
			j++
		}
		run := j - i
		if run >= 4 {
			size += 3 // (byte, length) token
		} else {
			size += run
		}
		i = j
	}
	if size > len(data) {
		size = len(data)
	}
	return size
}

// transferBytes returns how many bytes actually cross the bus for a page
// write, applying the enabled reductions, and updates the counters.
func (d *SSD) transferBytes(data []byte) int {
	n := len(data)
	if d.cfg.Dedup {
		h := contentHash(data)
		if d.dedup == nil {
			d.dedup = make(map[uint64]struct{})
		}
		if _, ok := d.dedup[h]; ok {
			d.reduction.DedupHits++
			d.reduction.DedupBytesSaved += uint64(n - dedupRecordBytes)
			return dedupRecordBytes
		}
		d.dedup[h] = struct{}{}
	}
	if d.cfg.Compression {
		c := EstimateCompressedSize(data)
		if c < n {
			d.reduction.CompressedWrites++
			d.reduction.CompressionSaved += uint64(n - c)
			n = c
		}
	}
	return n
}

// ReductionStats returns the dedup/compression savings counters.
func (d *SSD) ReductionStats() ReductionStats { return d.reduction }
