package obs

import (
	"math"
	"strings"
	"testing"

	"viyojit/internal/sim"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("fresh counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
}

func TestCounterOverflowWraps(t *testing.T) {
	// Documented semantics: modulo 2^64, no saturation, no panic.
	var c Counter
	c.Add(math.MaxUint64)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("MaxUint64+1 = %d, want wrap to 0", c.Value())
	}
	c.Add(7)
	if c.Value() != 7 {
		t.Fatalf("post-wrap counter = %d, want 7", c.Value())
	}
}

func TestNilCounterNoops(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter Value = %d, want 0", c.Value())
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-15)
	if g.Value() != -5 {
		t.Fatalf("gauge = %d, want -5", g.Value())
	}
	g.SetMax(3) // raises: 3 > -5
	if g.Value() != 3 {
		t.Fatalf("SetMax(3) on -5 = %d, want 3", g.Value())
	}
	g.SetMax(1) // no-op: 1 <= 3
	if g.Value() != 3 {
		t.Fatalf("SetMax(1) on 3 = %d, want 3", g.Value())
	}
}

func TestGaugeOverflowSemantics(t *testing.T) {
	// Add wraps modulo 2^64 like any Go atomic; Set always wins.
	var g Gauge
	g.Set(math.MaxInt64)
	g.Add(1)
	if g.Value() != math.MinInt64 {
		t.Fatalf("MaxInt64+1 = %d, want MinInt64 wrap", g.Value())
	}
	g.Set(0)
	if g.Value() != 0 {
		t.Fatalf("Set(0) after wrap = %d, want 0", g.Value())
	}
}

func TestNilGaugeNoops(t *testing.T) {
	var g *Gauge
	g.Set(1)
	g.Add(1)
	g.SetMax(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge Value = %d, want 0", g.Value())
	}
}

func TestNilRegistryHandsOutNoopInstruments(t *testing.T) {
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil || r.Tracer() != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// The full chain must be callable without panics.
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Record(1)
	sp := r.Tracer().Begin("op", 0)
	r.Tracer().Finish(sp, 0, "ok")
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if e := r.Export(); len(e.Trace.Spans) != 0 {
		t.Fatal("nil registry export must be empty")
	}
}

func TestRegistryGetOrCreateShares(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same counter name must share storage")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("same gauge name must share storage")
	}
	if r.Histogram("a") != r.Histogram("a") {
		t.Fatal("same histogram name must share storage")
	}
}

func TestSnapshotSortedByName(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		r.Counter(name).Inc()
		r.Gauge(name).Set(1)
		r.Histogram(name).Record(1)
	}
	s := r.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q", s.Counters[i-1].Name, s.Counters[i].Name)
		}
	}
	for i := 1; i < len(s.Gauges); i++ {
		if s.Gauges[i-1].Name >= s.Gauges[i].Name {
			t.Fatalf("gauges not sorted")
		}
	}
	for i := 1; i < len(s.Histograms); i++ {
		if s.Histograms[i-1].Name >= s.Histograms[i].Name {
			t.Fatalf("histograms not sorted")
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	const overflow = sim.Duration(math.MaxInt64 / 2) // far beyond the covered range

	cases := []struct {
		name    string
		samples []sim.Duration
		count   uint64
		min     int64 // checked only when count > 0
		max     int64
		mean    int64
	}{
		{name: "empty", samples: nil, count: 0},
		{
			name:    "single sample",
			samples: []sim.Duration{1500},
			count:   1, min: 1500, max: 1500, mean: 1500,
		},
		{
			name:    "negative clamps to zero",
			samples: []sim.Duration{-50},
			count:   1, min: 0, max: 0, mean: 0,
		},
		{
			name:    "bucket boundary power of two",
			samples: []sim.Duration{1024, 1024, 1024},
			count:   3, min: 1024, max: 1024, mean: 1024,
		},
		{
			name:    "overflow lands in last bucket",
			samples: []sim.Duration{overflow},
			count:   1, min: int64(overflow), max: int64(overflow), mean: int64(overflow),
		},
		{
			name:    "mixed spread",
			samples: []sim.Duration{10, 100, 1000, 10000, 100000},
			count:   5, min: 10, max: 100000, mean: 22222,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram()
			for _, d := range tc.samples {
				h.Record(d)
			}
			s := h.snap("h")
			if s.Count != tc.count {
				t.Fatalf("count = %d, want %d", s.Count, tc.count)
			}
			if tc.count == 0 {
				if len(s.Buckets) != 0 || s.Min != 0 || s.Max != 0 {
					t.Fatalf("empty histogram must export a bare snap, got %+v", s)
				}
				if q := h.Quantile(0.5); q != 0 {
					t.Fatalf("empty quantile = %v, want 0", q)
				}
				return
			}
			if s.Min != tc.min || s.Max != tc.max {
				t.Fatalf("min/max = %d/%d, want %d/%d", s.Min, s.Max, tc.min, tc.max)
			}
			if s.Mean != tc.mean {
				t.Fatalf("mean = %d, want %d", s.Mean, tc.mean)
			}
			// Every quantile must respect the recorded range and be
			// monotone in q.
			if s.P50 < s.Min || s.P999 > s.Max {
				t.Fatalf("quantiles outside [min,max]: %+v", s)
			}
			if s.P50 > s.P90 || s.P90 > s.P99 || s.P99 > s.P999 {
				t.Fatalf("quantiles not monotone: %+v", s)
			}
			var total uint64
			for _, b := range s.Buckets {
				total += b.Count
			}
			if total != tc.count {
				t.Fatalf("bucket counts sum to %d, want %d", total, tc.count)
			}
		})
	}
}

func TestHistogramSingleSampleQuantilesExact(t *testing.T) {
	h := newHistogram()
	h.Record(7777)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got := h.Quantile(q); got != 7777 {
			t.Fatalf("Quantile(%v) = %v, want exactly 7777", q, got)
		}
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// Two well-separated clusters: the median must sit in the low
	// cluster's bucket, p99 in the high one, and interpolation must keep
	// both within one bucket width (2^(1/8) ≈ 9 %) of the true value.
	h := newHistogram()
	for i := 0; i < 90; i++ {
		h.Record(1000)
	}
	for i := 0; i < 10; i++ {
		h.Record(1_000_000)
	}
	p50 := int64(h.Quantile(0.50))
	if p50 < 1000 || p50 > 1100 {
		t.Fatalf("p50 = %d, want within one bucket of 1000", p50)
	}
	p99 := int64(h.Quantile(0.99))
	if p99 < 930_000 || p99 > 1_000_000 {
		t.Fatalf("p99 = %d, want within one bucket of 1e6 (clamped at max)", p99)
	}
	if q0 := int64(h.Quantile(0)); q0 != 1000 {
		t.Fatalf("Quantile(0) = %d, want min 1000", q0)
	}
	if q1 := int64(h.Quantile(1)); q1 != 1_000_000 {
		t.Fatalf("Quantile(1) = %d, want max 1e6", q1)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, d := range []sim.Duration{0, 1, 2, 3, 255, 256, 257, 1 << 20, 1 << 39, math.MaxInt64} {
		idx := bucketIndex(d)
		if idx < 0 || idx >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", d, idx)
		}
		if idx < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", d, idx, prev)
		}
		prev = idx
	}
	if bucketIndex(math.MaxInt64) != numBuckets-1 {
		t.Fatal("max duration must land in the overflow bucket")
	}
}

func TestTracerScopeAndParentage(t *testing.T) {
	tr := newTracer(16)
	root := tr.Begin("root", 10)
	if root.Parent != 0 {
		t.Fatalf("unscoped span parent = %d, want 0", root.Parent)
	}
	prev := tr.SetScope(root.ID)
	if prev != 0 {
		t.Fatalf("previous scope = %d, want 0", prev)
	}
	child := tr.Begin("child", 20)
	if child.Parent != root.ID {
		t.Fatalf("scoped span parent = %d, want %d", child.Parent, root.ID)
	}
	tr.SetScope(prev)
	after := tr.Begin("after", 30)
	if after.Parent != 0 {
		t.Fatalf("post-restore span parent = %d, want 0", after.Parent)
	}
	tr.Finish(child, 25, "ok")
	tr.Finish(root, 40, "ok")
	snap := tr.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(snap.Spans))
	}
	// Completion order, not begin order.
	if snap.Spans[0].Name != "child" || snap.Spans[1].Name != "root" {
		t.Fatalf("spans out of completion order: %+v", snap.Spans)
	}
	if snap.Spans[0].Duration() != 5 {
		t.Fatalf("child duration = %v, want 5", snap.Spans[0].Duration())
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := newTracer(4)
	for i := 0; i < 10; i++ {
		sp := tr.Begin("op", sim.Time(i))
		tr.Finish(sp, sim.Time(i+1), "ok")
	}
	snap := tr.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("ring holds %d spans, want 4", len(snap.Spans))
	}
	if snap.Evicted != 6 {
		t.Fatalf("evicted = %d, want 6", snap.Evicted)
	}
	// The survivors are the newest four, still in completion order.
	if snap.Spans[0].ID != 7 || snap.Spans[3].ID != 10 {
		t.Fatalf("wrong survivors: %+v", snap.Spans)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", 0)
	if sp.ID != 0 {
		t.Fatal("nil tracer must hand out zero spans")
	}
	tr.Finish(sp, 1, "ok")
	tr.SetScope(5)
	if s := tr.Snapshot(); len(s.Spans) != 0 {
		t.Fatal("nil tracer snapshot must be empty")
	}
}

func TestFinishDropsZeroSpan(t *testing.T) {
	tr := newTracer(4)
	tr.Finish(Span{}, 10, "ok") // from a nil tracer's Begin
	if s := tr.Snapshot(); len(s.Spans) != 0 {
		t.Fatal("zero span must not be recorded")
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total").Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat_ns").Record(1000)
	sp := r.Tracer().Begin("serve.request", 5)
	r.Tracer().Finish(sp, 15, "ok")

	var sb strings.Builder
	if err := r.Export().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "counter requests_total 3\n" +
		"gauge depth -2\n" +
		"hist lat_ns count=1 sum=1000 min=1000 max=1000 mean=1000 p50=1000 p90=1000 p99=1000 p999=1000\n" +
		"span 1 parent=0 serve.request start=5 end=15 dur=10 code=ok\n"
	if sb.String() != want {
		t.Fatalf("text exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestRecordPathZeroAlloc is the hot-path guard: counter increments,
// gauge stores, histogram records, and span begin/finish must not
// allocate (ISSUE 6 acceptance: zero allocations on the record path).
func TestRecordPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	tr := r.Tracer()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(9)
		g.Add(-1)
		g.SetMax(12)
		h.Record(12345)
		sp := tr.Begin("op", 1)
		tr.Finish(sp, 2, "ok")
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f times per op, want 0", allocs)
	}
}

func TestSnapshotConcurrentWithRecording(t *testing.T) {
	// Smoke for the -race matrix: hammer every instrument from several
	// goroutines while snapshotting. Correctness of totals is asserted
	// after the recorders quiesce.
	r := NewRegistry()
	const goroutines = 8
	const per = 2000
	done := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			c := r.Counter("c")
			g := r.Gauge("g")
			h := r.Histogram("h")
			tr := r.Tracer()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Set(int64(j))
				h.Record(sim.Duration(j))
				sp := tr.Begin("op", sim.Time(j))
				tr.Finish(sp, sim.Time(j+1), "ok")
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.Export()
			}
		}
	}()
	for i := 0; i < goroutines; i++ {
		<-done
	}
	close(stop)
	if got := r.Counter("c").Value(); got != goroutines*per {
		t.Fatalf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Histogram("h").Count(); got != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*per)
	}
}
