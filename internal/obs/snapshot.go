package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// CounterSnap is one counter's value at snapshot time.
type CounterSnap struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSnap is one gauge's level at snapshot time.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket. Index is the bucket
// number in the fixed log-bucket geometry (8 per octave, 40 octaves).
type BucketSnap struct {
	Index int    `json:"i"`
	Count uint64 `json:"n"`
}

// HistogramSnap summarises one histogram: exact count/sum/min/max/mean
// plus interpolated quantiles, and the sparse bucket array for tools
// that want the full shape. All durations are integer nanoseconds of
// virtual time — no floats, so exports are byte-stable.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   uint64       `json:"count"`
	Sum     int64        `json:"sum,omitempty"`
	Min     int64        `json:"min,omitempty"`
	Max     int64        `json:"max,omitempty"`
	Mean    int64        `json:"mean,omitempty"`
	P50     int64        `json:"p50,omitempty"`
	P90     int64        `json:"p90,omitempty"`
	P99     int64        `json:"p99,omitempty"`
	P999    int64        `json:"p999,omitempty"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Export bundles metrics and trace: the full observability state of one
// run, and the byte-compared unit of the golden regression tests.
type Export struct {
	Metrics Snapshot      `json:"metrics"`
	Trace   TraceSnapshot `json:"trace"`
}

// WriteJSON writes the export as indented JSON. Output is deterministic:
// instruments are sorted by name, spans are in completion order, and
// every quantity is an integer.
func (e Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteText writes a line-oriented human-readable exposition:
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=N sum=S min=m max=M mean=µ p50=… p90=… p99=… p999=…
//	span <id> parent=<id> <name> start=S end=E dur=D code=<code>
//	span_open <id> parent=<id> <name> start=S
//
// Like WriteJSON the output is deterministic for a deterministic run.
func (e Export) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, c := range e.Metrics.Counters {
		fmt.Fprintf(bw, "counter %s %d\n", c.Name, c.Value)
	}
	for _, g := range e.Metrics.Gauges {
		fmt.Fprintf(bw, "gauge %s %d\n", g.Name, g.Value)
	}
	for _, h := range e.Metrics.Histograms {
		fmt.Fprintf(bw, "hist %s count=%d sum=%d min=%d max=%d mean=%d p50=%d p90=%d p99=%d p999=%d\n",
			h.Name, h.Count, h.Sum, h.Min, h.Max, h.Mean, h.P50, h.P90, h.P99, h.P999)
	}
	for _, s := range e.Trace.Spans {
		fmt.Fprintf(bw, "span %d parent=%d %s start=%d end=%d dur=%d code=%s\n",
			s.ID, s.Parent, s.Name, int64(s.Start), int64(s.End), int64(s.Duration()), s.Code)
	}
	for _, s := range e.Trace.Open {
		fmt.Fprintf(bw, "span_open %d parent=%d %s start=%d\n",
			s.ID, s.Parent, s.Name, int64(s.Start))
	}
	if e.Trace.OpenDropped > 0 {
		fmt.Fprintf(bw, "spans_open_dropped %d\n", e.Trace.OpenDropped)
	}
	if e.Trace.Evicted > 0 {
		fmt.Fprintf(bw, "spans_evicted %d\n", e.Trace.Evicted)
	}
	return bw.Flush()
}
