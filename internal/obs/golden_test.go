package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"viyojit"
	"viyojit/internal/experiments"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
	"viyojit/internal/ycsb"
)

// The golden harness runs canonical seeded single-goroutine scenarios
// and byte-compares the full metrics/trace export. Any silent
// behavioral drift — one extra clean, a reordered shed, a changed stall
// — shows up as a golden diff. Regenerate intentionally with
//
//	go test ./internal/obs -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden export files")

// scenarios are the canonical runs. Each must be fully deterministic:
// seeded, virtual-timed, and single-goroutine (the concurrent serve
// path is host-schedule-dependent, so goldens script load through the
// simulation goroutine instead).
var scenarios = []struct {
	name string
	run  func(t *testing.T) *obs.Registry
}{
	{name: "ycsb", run: runYCSBScenario},
	{name: "overload", run: runOverloadScenario},
	{name: "crashsweep", run: runCrashScenario},
}

// runYCSBScenario is a small seeded YCSB-A run through the experiments
// harness — the same assembly the paper's sweep uses.
func runYCSBScenario(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := experiments.YCSBConfig{
		Workload:       ycsb.WorkloadA,
		HeapBytes:      2 << 20,
		OperationCount: 2_000,
		Seed:           7,
		Obs:            reg,
	}
	if _, err := experiments.RunViyojit(cfg, experiments.BudgetPages(cfg, 0.11)); err != nil {
		t.Fatalf("ycsb scenario: %v", err)
	}
	return reg
}

// runOverloadScenario drives the cleaning path far past the dirty
// budget: every heap page dirtied, then a hot eighth rewritten, all on
// the simulation goroutine. Forced cleans, budget occupancy, pressure,
// and clean-stall histograms all move.
func runOverloadScenario(t *testing.T) *obs.Registry {
	t.Helper()
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 8 << 20})
	if err != nil {
		t.Fatalf("overload scenario: %v", err)
	}
	defer sys.Close()
	m, err := sys.Map("golden-heap", 4<<20)
	if err != nil {
		t.Fatalf("overload scenario: %v", err)
	}
	rng := sim.NewRNG(11)
	pages := int((4 << 20) / 4096)
	buf := make([]byte, 64)
	for p := 0; p < pages; p++ {
		for i := range buf {
			buf[i] = byte(rng.Uint64())
		}
		if err := m.WriteAt(buf, int64(p)*4096); err != nil {
			t.Fatalf("overload scenario: %v", err)
		}
		sys.Pump()
	}
	for i := 0; i < 2*pages; i++ {
		p := rng.Intn(pages / 8)
		if err := m.WriteAt([]byte{byte(i)}, int64(p)*4096); err != nil {
			t.Fatalf("overload scenario: %v", err)
		}
		sys.Pump()
	}
	sys.AdvanceTime(5 * sim.Millisecond)
	sys.FlushAll()
	return sys.Metrics()
}

// runCrashScenario is the powerfail demo in miniature: dirty beyond the
// budget, sag the battery mid-run, pull the plug, verify durability.
func runCrashScenario(t *testing.T) *obs.Registry {
	t.Helper()
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 8 << 20})
	if err != nil {
		t.Fatalf("crash scenario: %v", err)
	}
	sys.Events().Schedule(sim.Time(200*sim.Microsecond), func(sim.Time) {
		_ = sys.Battery().SetDerating(0.8)
	})
	m, err := sys.Map("crash-heap", 2<<20)
	if err != nil {
		t.Fatalf("crash scenario: %v", err)
	}
	rng := sim.NewRNG(23)
	pages := int((2 << 20) / 4096)
	buf := make([]byte, 32)
	for p := 0; p < pages; p++ {
		for i := range buf {
			buf[i] = byte(rng.Uint64())
		}
		if err := m.WriteAt(buf, int64(p)*4096); err != nil {
			t.Fatalf("crash scenario: %v", err)
		}
		sys.Pump()
	}
	report := sys.SimulatePowerFailure()
	if !report.Survived {
		t.Fatalf("crash scenario: flush not covered by battery: %+v", report)
	}
	if err := sys.VerifyDurability(); err != nil {
		t.Fatalf("crash scenario: %v", err)
	}
	return sys.Metrics()
}

// exportBytes renders a registry both ways; the golden files keep the
// text form (line-diffable), the JSON form backs the byte-identity
// assertions.
func exportBytes(t *testing.T, reg *obs.Registry) (text, jsonBytes []byte) {
	t.Helper()
	exp := reg.Export()
	var tb, jb bytes.Buffer
	if err := exp.WriteText(&tb); err != nil {
		t.Fatal(err)
	}
	if err := exp.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), jb.Bytes()
}

// TestGoldenDeterminism runs every scenario twice and requires the two
// exports to be byte-identical, text and JSON — same seed, same bytes.
func TestGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenarios are full runs; skipped in -short")
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			text1, json1 := exportBytes(t, sc.run(t))
			text2, json2 := exportBytes(t, sc.run(t))
			if !bytes.Equal(text1, text2) {
				t.Errorf("%s: two same-seed runs diverge in the text export:\n%s", sc.name, firstDiff(text1, text2))
			}
			if !bytes.Equal(json1, json2) {
				t.Errorf("%s: two same-seed runs diverge in the JSON export", sc.name)
			}
		})
	}
}

// TestGoldenFiles compares each scenario's text export against the
// committed golden under testdata/. A diff means system behavior
// changed: inspect it, and only then -update.
func TestGoldenFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("golden scenarios are full runs; skipped in -short")
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			text, _ := exportBytes(t, sc.run(t))
			path := filepath.Join("testdata", sc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, text, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(text))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
			}
			if !bytes.Equal(text, want) {
				t.Errorf("%s: export drifted from golden — behavior changed silently?\n%s", sc.name, firstDiff(want, text))
			}
		})
	}
}

// firstDiff renders the first divergent line of two text exports.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// FuzzSnapshotJSON checks the JSON exposition round-trips: whatever an
// export serialises to must decode back to an equivalent export and
// re-encode to the identical bytes (encode ∘ decode is the identity on
// the image of encode).
func FuzzSnapshotJSON(f *testing.F) {
	f.Add(uint64(3), int64(-5), int64(1500), int64(0), "ok")
	f.Add(uint64(0), int64(9e18), int64(1), int64(1<<40), "shed_overload")
	f.Add(^uint64(0), int64(-1<<62), int64(12345), int64(-1), "error")
	f.Fuzz(func(t *testing.T, cv uint64, gv int64, d1, d2 int64, code string) {
		reg := obs.NewRegistry()
		reg.Counter("fuzz_counter").Add(cv)
		reg.Gauge("fuzz_gauge").Set(gv)
		h := reg.Histogram("fuzz_hist")
		h.Record(sim.Duration(d1))
		h.Record(sim.Duration(d2))
		tr := reg.Tracer()
		sp := tr.Begin("fuzz.op", sim.Time(d1))
		tr.Finish(sp, sim.Time(d2), code)

		var first bytes.Buffer
		if err := reg.Export().WriteJSON(&first); err != nil {
			t.Fatal(err)
		}
		var decoded obs.Export
		if err := json.Unmarshal(first.Bytes(), &decoded); err != nil {
			t.Fatalf("export does not parse back: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := decoded.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("JSON round-trip not stable:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}
