package obs

import (
	"sync"
	"sync/atomic"

	"viyojit/internal/sim"
)

// SpanID identifies a span within one tracer. IDs are sequential from 1
// in Begin order, which makes trace exports deterministic for seeded
// runs: same seed, same IDs, same log.
type SpanID uint64

// Span is an in-flight operation. It is a plain value: Begin hands it
// out, the caller carries it (typically in a closure it already has),
// and Finish records it. No allocation, no map of live spans.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	Start  sim.Time
}

// SpanRecord is one finished span in the trace log.
type SpanRecord struct {
	ID     SpanID   `json:"id"`
	Parent SpanID   `json:"parent,omitempty"`
	Name   string   `json:"name"`
	Start  sim.Time `json:"start"`
	End    sim.Time `json:"end"`
	// Code classifies the outcome: "ok", "error", "shed_overload",
	// "shed_deadline", "read_only", …. Static strings only — the record
	// path must not format.
	Code string `json:"code"`
}

// Duration returns the span's elapsed virtual time.
func (r SpanRecord) Duration() sim.Duration { return r.End.Sub(r.Start) }

// TraceSnapshot is the exported trace log: finished spans in completion
// order, plus how many older spans the bounded ring evicted. Open holds
// the spans that were still in flight at snapshot time (Begin with no
// Finish yet), in Begin order with End/Code zero — the operation that
// was executing when the snapshot (or the power failure) hit. Both tail
// fields are omitted from JSON when empty so snapshots of quiesced runs
// are unchanged.
type TraceSnapshot struct {
	Spans       []SpanRecord `json:"spans"`
	Evicted     uint64       `json:"evicted,omitempty"`
	Open        []SpanRecord `json:"open,omitempty"`
	OpenDropped uint64       `json:"open_dropped,omitempty"`
}

// defaultSpanCap bounds the finished-span ring. Old spans are evicted
// FIFO; Evicted in the snapshot says how many. 4096 spans ≈ a few
// hundred KB, enough to hold the interesting tail of any test scenario.
const defaultSpanCap = 4096

// openSpanCap bounds the in-flight span table. The simulator's span
// producers nest at most a few levels (request → clean → scrub), so 64
// is generous; spans begun past the cap are still valid and Finish
// normally, they just aren't listed as open (OpenDropped counts them).
const openSpanCap = 64

// Tracer records spans into a fixed-capacity ring. Begin/Finish are
// safe from any goroutine and allocation-free; Snapshot copies under
// the same lock Finish takes, so it is consistent and race-free.
//
// The "scope" is the ambient parent span: the serve dispatch loop sets
// it around request execution so that clean and scrub operations the
// manager starts underneath become child spans without any plumbing
// through core's APIs. Scope is owned by the single dispatch/simulation
// goroutine; it is stored atomically only so concurrent Snapshot calls
// race-detect clean.
type Tracer struct {
	nextID atomic.Uint64
	scope  atomic.Uint64

	mu      sync.Mutex
	ring    []SpanRecord
	start   int // index of oldest record
	n       int // records in ring
	evicted uint64

	// open tracks in-flight spans (Begin without Finish) in a fixed
	// preallocated table so Snapshot can expose what was executing at
	// the crash instant. openN is the live prefix length; insertion is
	// in Begin order and removal compacts, so the prefix stays ordered.
	open        []Span
	openN       int
	openDropped uint64

	// sink receives finished spans; set during wiring (see
	// Registry.SetSink), read on the Finish path without
	// synchronisation.
	sink Sink
}

func newTracer(capacity int) *Tracer {
	return &Tracer{ring: make([]SpanRecord, capacity), open: make([]Span, openSpanCap)}
}

func (t *Tracer) setSink(s Sink) {
	if t != nil {
		t.sink = s
	}
}

// Begin starts a span at virtual time `at`, parented to the current
// scope. Nil tracers return a zero span that Finish ignores.
func (t *Tracer) Begin(name string, at sim.Time) Span {
	if t == nil {
		return Span{}
	}
	sp := Span{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: SpanID(t.scope.Load()),
		Name:   name,
		Start:  at,
	}
	t.trackOpen(sp)
	return sp
}

// BeginChild starts a span with an explicit parent, ignoring the scope.
func (t *Tracer) BeginChild(name string, parent SpanID, at sim.Time) Span {
	if t == nil {
		return Span{}
	}
	sp := Span{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Start:  at,
	}
	t.trackOpen(sp)
	return sp
}

func (t *Tracer) trackOpen(sp Span) {
	t.mu.Lock()
	if t.openN < len(t.open) {
		t.open[t.openN] = sp
		t.openN++
	} else {
		t.openDropped++
	}
	t.mu.Unlock()
}

// Finish records the span as completed at `end` with the given outcome
// code. Zero spans (from a nil tracer's Begin) are dropped.
func (t *Tracer) Finish(sp Span, end sim.Time, code string) {
	if t == nil || sp.ID == 0 {
		return
	}
	t.mu.Lock()
	for i := 0; i < t.openN; i++ {
		if t.open[i].ID == sp.ID {
			copy(t.open[i:t.openN-1], t.open[i+1:t.openN])
			t.open[t.openN-1] = Span{}
			t.openN--
			break
		}
	}
	if t.n == len(t.ring) {
		// Evict the oldest.
		t.start = (t.start + 1) % len(t.ring)
		t.n--
		t.evicted++
	}
	idx := (t.start + t.n) % len(t.ring)
	rec := SpanRecord{ID: sp.ID, Parent: sp.Parent, Name: sp.Name, Start: sp.Start, End: end, Code: code}
	t.ring[idx] = rec
	t.n++
	t.mu.Unlock()
	if t.sink != nil {
		// Outside the lock: the sink may be arbitrarily slow but must
		// not deadlock against Snapshot.
		t.sink.SpanFinished(rec)
	}
}

// SetScope installs span id as the ambient parent for subsequent Begin
// calls and returns the previous scope so callers can restore it:
//
//	prev := tr.SetScope(sp.ID)
//	defer tr.SetScope(prev)
//
// Only the dispatch/simulation goroutine should set scope.
func (t *Tracer) SetScope(id SpanID) SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.scope.Swap(uint64(id)))
}

// Snapshot copies the finished-span log in completion order, plus the
// spans still open at snapshot time (marked by a zero End/Code).
func (t *Tracer) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceSnapshot{Evicted: t.evicted, OpenDropped: t.openDropped}
	if t.n > 0 {
		out.Spans = make([]SpanRecord, t.n)
		for i := 0; i < t.n; i++ {
			out.Spans[i] = t.ring[(t.start+i)%len(t.ring)]
		}
	}
	if t.openN > 0 {
		out.Open = make([]SpanRecord, t.openN)
		for i, sp := range t.open[:t.openN] {
			out.Open[i] = SpanRecord{ID: sp.ID, Parent: sp.Parent, Name: sp.Name, Start: sp.Start}
		}
	}
	return out
}
