package obs

import (
	"math"
	"sync/atomic"

	"viyojit/internal/sim"
)

// Histogram is a concurrent log-bucketed duration histogram: constant
// memory, lock-free recording, exact mean once quiescent, and quantiles
// accurate to the bucket growth factor (2^(1/8) ≈ 9 % relative error)
// refined by linear interpolation within the landing bucket. The bucket
// geometry matches internal/ycsb's single-threaded histogram so the two
// report comparable shapes.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 while empty
	max     atomic.Int64 // math.MinInt64 while empty
}

const (
	// bucketsPerOctave sub-buckets per power of two.
	bucketsPerOctave = 8
	// maxOctaves covers 1 ns .. ~2^40 ns (~18 minutes of virtual time).
	maxOctaves = 40
	numBuckets = bucketsPerOctave * maxOctaves
)

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// bucketIndex maps a duration to its bucket. Durations below 1 ns land
// in bucket 0; durations beyond the covered range land in the overflow
// (last) bucket.
func bucketIndex(d sim.Duration) int {
	if d < 1 {
		d = 1
	}
	idx := int(math.Log2(float64(d)) * bucketsPerOctave)
	if idx < 0 {
		idx = 0
	}
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// bucketLower returns the inclusive lower bound of a bucket.
func bucketLower(idx int) float64 {
	return math.Exp2(float64(idx) / bucketsPerOctave)
}

// Record adds one sample. Negative durations clamp to zero. Safe from
// any goroutine; no-op on a nil histogram; never allocates.
func (h *Histogram) Record(d sim.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	v := int64(d)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of samples; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snap freezes the histogram into an exportable summary. Only non-empty
// buckets are exported, keeping golden files and JSON payloads small.
func (h *Histogram) snap(name string) HistogramSnap {
	s := HistogramSnap{Name: name}
	var counts [numBuckets]uint64
	for i := range h.buckets {
		if c := h.buckets[i].Load(); c > 0 {
			counts[i] = c
			s.Buckets = append(s.Buckets, BucketSnap{Index: i, Count: c})
		}
	}
	s.Count = h.count.Load()
	if s.Count == 0 {
		return s
	}
	s.Sum = h.sum.Load()
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.Mean = s.Sum / int64(s.Count)
	s.P50 = quantile(&counts, s.Count, s.Min, s.Max, 0.50)
	s.P90 = quantile(&counts, s.Count, s.Min, s.Max, 0.90)
	s.P99 = quantile(&counts, s.Count, s.Min, s.Max, 0.99)
	s.P999 = quantile(&counts, s.Count, s.Min, s.Max, 0.999)
	return s
}

// Quantile returns the approximate q-quantile (q in [0,1]) of the live
// histogram. Intended for tests and ad-hoc inspection; exports use snap
// so all quantiles derive from one consistent bucket read.
func (h *Histogram) Quantile(q float64) sim.Duration {
	if h == nil {
		return 0
	}
	var counts [numBuckets]uint64
	var total uint64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	return sim.Duration(quantile(&counts, total, h.min.Load(), h.max.Load(), q))
}

// quantile walks the cumulative bucket counts to the target rank and
// linearly interpolates within the landing bucket, clamping to the
// recorded min/max so single-sample and boundary cases are exact.
func quantile(counts *[numBuckets]uint64, total uint64, min, max int64, q float64) int64 {
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < target {
			continue
		}
		// Rank `target` lands in bucket i. Interpolate between the
		// bucket's bounds by the rank's position within the bucket.
		before := cum - c
		frac := float64(target-before) / float64(c)
		lo, hi := bucketLower(i), bucketLower(i+1)
		v := int64(lo + frac*(hi-lo))
		if v > max {
			v = max
		}
		if v < min {
			v = min
		}
		return v
	}
	return max
}
