package obs_test

import (
	"bytes"
	"strings"
	"testing"

	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

// recordingSink captures every tee event for assertions.
type recordingSink struct {
	counters []string
	gauges   []string
	gaugeVal map[string]int64
	spans    []obs.SpanRecord
}

func newRecordingSink() *recordingSink {
	return &recordingSink{gaugeVal: map[string]int64{}}
}

func (s *recordingSink) CounterAdd(name string, delta, total uint64) {
	s.counters = append(s.counters, name)
}

func (s *recordingSink) GaugeSet(name string, v int64) {
	s.gauges = append(s.gauges, name)
	s.gaugeVal[name] = v
}

func (s *recordingSink) SpanFinished(rec obs.SpanRecord) {
	s.spans = append(s.spans, rec)
}

func TestSinkSeesExistingAndFutureInstruments(t *testing.T) {
	reg := obs.NewRegistry()
	pre := reg.Counter("pre_total")
	preG := reg.Gauge("pre_gauge")

	sink := newRecordingSink()
	reg.SetSink(sink)

	pre.Inc()
	preG.Set(4)
	reg.Counter("post_total").Add(3)
	reg.Gauge("post_gauge").Set(-2)

	if want := []string{"pre_total", "post_total"}; strings.Join(sink.counters, ",") != strings.Join(want, ",") {
		t.Fatalf("counter tee order: %v", sink.counters)
	}
	if want := []string{"pre_gauge", "post_gauge"}; strings.Join(sink.gauges, ",") != strings.Join(want, ",") {
		t.Fatalf("gauge tee order: %v", sink.gauges)
	}
	if sink.gaugeVal["post_gauge"] != -2 {
		t.Fatalf("gauge value teed: %v", sink.gaugeVal)
	}
}

func TestSinkGaugeTeeFiresOnlyOnChange(t *testing.T) {
	reg := obs.NewRegistry()
	sink := newRecordingSink()
	reg.SetSink(sink)
	g := reg.Gauge("level")
	g.Set(5)
	g.Set(5) // no change: silent
	g.Set(6)
	g.Add(0)    // no change: silent
	g.SetMax(4) // below current: silent
	g.SetMax(9)
	if len(sink.gauges) != 3 {
		t.Fatalf("gauge tee fired %d times, want 3: %v", len(sink.gauges), sink.gauges)
	}
	if sink.gaugeVal["level"] != 9 {
		t.Fatalf("final teed value %d", sink.gaugeVal["level"])
	}
}

func TestSinkSpanTee(t *testing.T) {
	reg := obs.NewRegistry()
	sink := newRecordingSink()
	reg.SetSink(sink)
	tr := reg.Tracer()
	sp := tr.Begin("op", 10)
	tr.Finish(sp, 30, "ok")
	if len(sink.spans) != 1 || sink.spans[0].Name != "op" || sink.spans[0].End != 30 {
		t.Fatalf("span tee: %+v", sink.spans)
	}
}

func TestSinkDetach(t *testing.T) {
	reg := obs.NewRegistry()
	sink := newRecordingSink()
	reg.SetSink(sink)
	reg.Counter("c").Inc()
	reg.SetSink(nil)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1)
	if len(sink.counters) != 1 || len(sink.gauges) != 0 {
		t.Fatalf("detached sink still fed: %v %v", sink.counters, sink.gauges)
	}
}

func TestNilRegistrySetSink(t *testing.T) {
	var reg *obs.Registry
	reg.SetSink(newRecordingSink()) // must not panic
	reg.Counter("x").Inc()
}

// TestOpenSpansExported is the regression test for the dropped
// in-flight-span fix: a span begun but not finished must appear in the
// export, marked unfinished, and disappear once finished.
func TestOpenSpansExported(t *testing.T) {
	reg := obs.NewRegistry()
	tr := reg.Tracer()
	done := tr.Begin("finished.op", 5)
	tr.Finish(done, 9, "ok")
	open := tr.Begin("inflight.op", 10)

	exp := reg.Export()
	if len(exp.Trace.Open) != 1 {
		t.Fatalf("open spans in export: %d, want 1", len(exp.Trace.Open))
	}
	rec := exp.Trace.Open[0]
	if rec.Name != "inflight.op" || rec.Start != 10 || rec.End != 0 || rec.Code != "" {
		t.Fatalf("open span record: %+v", rec)
	}
	var buf bytes.Buffer
	if err := exp.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "span_open") || !strings.Contains(buf.String(), "inflight.op") {
		t.Fatalf("text export lacks the open span:\n%s", buf.String())
	}

	// Finishing clears it from the open set and lands it in the log.
	tr.Finish(open, 20, "ok")
	exp = reg.Export()
	if len(exp.Trace.Open) != 0 {
		t.Fatalf("open set after finish: %d", len(exp.Trace.Open))
	}
	if len(exp.Trace.Spans) != 2 {
		t.Fatalf("finished spans: %d", len(exp.Trace.Spans))
	}
}

func TestOpenSpansNestedOrder(t *testing.T) {
	reg := obs.NewRegistry()
	tr := reg.Tracer()
	outer := tr.Begin("outer", 1)
	prev := tr.SetScope(outer.ID)
	inner := tr.Begin("inner", 2)
	tr.SetScope(prev)

	exp := reg.Export()
	if len(exp.Trace.Open) != 2 ||
		exp.Trace.Open[0].Name != "outer" || exp.Trace.Open[1].Name != "inner" {
		t.Fatalf("open spans: %+v", exp.Trace.Open)
	}
	if exp.Trace.Open[1].Parent != outer.ID {
		t.Fatalf("inner's parent: %d, want %d", exp.Trace.Open[1].Parent, outer.ID)
	}
	// Finish out of order: the compaction must keep the survivor.
	tr.Finish(outer, 3, "ok")
	exp = reg.Export()
	if len(exp.Trace.Open) != 1 || exp.Trace.Open[0].Name != "inner" {
		t.Fatalf("open spans after outer finish: %+v", exp.Trace.Open)
	}
	tr.Finish(inner, 4, "ok")
}

// TestOpenSpanTableBounded: spans begun past the fixed table are still
// valid, still Finish into the log, and are counted as OpenDropped.
func TestOpenSpanTableBounded(t *testing.T) {
	reg := obs.NewRegistry()
	tr := reg.Tracer()
	var spans []obs.Span
	for i := 0; i < 70; i++ {
		spans = append(spans, tr.Begin("burst", sim.Time(i)))
	}
	exp := reg.Export()
	if len(exp.Trace.Open) != 64 {
		t.Fatalf("open table size: %d, want 64", len(exp.Trace.Open))
	}
	if exp.Trace.OpenDropped != 6 {
		t.Fatalf("OpenDropped = %d, want 6", exp.Trace.OpenDropped)
	}
	for _, sp := range spans {
		tr.Finish(sp, 100, "ok")
	}
	exp = reg.Export()
	if len(exp.Trace.Open) != 0 || len(exp.Trace.Spans) != 70 {
		t.Fatalf("after finishing all: open=%d finished=%d", len(exp.Trace.Open), len(exp.Trace.Spans))
	}
}

// TestSinkedRecordPathZeroAlloc extends the hot-path allocation guard:
// the instruments stay allocation-free with a sink attached.
func TestSinkedRecordPathZeroAlloc(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetSink(noopSink{})
	c := reg.Counter("zero_alloc_total")
	g := reg.Gauge("zero_alloc_gauge")
	h := reg.Histogram("zero_alloc_hist")
	tr := reg.Tracer()
	var lvl int64
	if n := testing.AllocsPerRun(200, func() {
		c.Inc()
		lvl++
		g.Set(lvl)
		g.SetMax(lvl)
		h.Record(sim.Duration(lvl))
		sp := tr.Begin("zero.alloc", sim.Time(lvl))
		tr.Finish(sp, sim.Time(lvl+1), "ok")
	}); n != 0 {
		t.Fatalf("record path with sink attached allocates %.1f/op", n)
	}
}

// noopSink is the cheapest possible sink: the guard above measures the
// tee machinery itself, not a particular consumer.
type noopSink struct{}

func (noopSink) CounterAdd(string, uint64, uint64) {}
func (noopSink) GaugeSet(string, int64)            {}
func (noopSink) SpanFinished(obs.SpanRecord)       {}
