// Package obs is the unified observability hub: a metrics registry
// (counters, gauges, log-bucketed histograms) plus lightweight trace
// spans, all keyed to simulated time. It exists to make the paper's
// quantitative argument observable — dirty-budget occupancy, clean-stall
// latency, SSD write pressure, shed breakdowns — through one consistent
// snapshot instead of ad-hoc counters scattered across packages.
//
// Two properties shape every type here:
//
//   - Hot-path recording is cheap and allocation-free: instruments are
//     plain atomics, spans are values finished into a preallocated ring.
//     Recording is safe from any goroutine; Snapshot is safe to call
//     concurrently with the serve dispatch loop.
//
//   - Exposition is deterministic. The simulator is seeded and
//     virtual-timed, so identical seeds must produce byte-identical
//     metric and trace exports. Instruments are therefore keyed by name
//     and emitted in sorted order, span IDs are sequential, and no wall
//     clock ever leaks into an export. Determinism turns observability
//     into a regression instrument: golden exports (obs/golden_test.go)
//     fail on silent behavioral drift.
//
// Every instrument method is nil-safe: a nil *Registry hands out nil
// instruments and a nil instrument's methods no-op, so packages can
// instrument unconditionally and callers that don't care pass nothing.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Sink observes instrument updates as they happen: counter increments,
// gauge level changes, and finished trace spans. It is the tee that
// feeds the black-box flight recorder without any per-call-site
// plumbing — producers keep talking to the registry they already have.
//
// Sink implementations must be allocation-free and must never block or
// call back into the registry/tracer that feeds them: the tee fires on
// the instrument hot path (and, for spans, after the tracer's ring
// lock is released).
type Sink interface {
	// CounterAdd reports a counter increment: the delta just applied
	// and the resulting total.
	CounterAdd(name string, delta, total uint64)
	// GaugeSet reports a gauge level change. It fires only when the
	// stored value actually changed, so idempotent re-Sets are free.
	GaugeSet(name string, v int64)
	// SpanFinished reports a completed trace span.
	SpanFinished(rec SpanRecord)
}

// Counter is a monotonically increasing uint64. Overflow wraps modulo
// 2^64 (the Go atomic addition semantics); at one increment per
// simulated nanosecond that is ~584 years of virtual time, so wrapping
// is documented rather than guarded.
type Counter struct {
	v atomic.Uint64

	// name and sink are set at creation (under the registry lock) or by
	// SetSink before concurrent recording starts; the hot path reads
	// them without synchronisation.
	name string
	sink Sink
}

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() {
	if c != nil {
		v := c.v.Add(1)
		if c.sink != nil {
			c.sink.CounterAdd(c.name, 1, v)
		}
	}
}

// Add adds n. No-op on a nil counter.
func (c *Counter) Add(n uint64) {
	if c != nil {
		v := c.v.Add(n)
		if c.sink != nil {
			c.sink.CounterAdd(c.name, n, v)
		}
	}
}

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level: queue depth, dirty pages,
// budget, health-state ordinal. Set/Add saturate nothing — the value is
// whatever was last written.
type Gauge struct {
	v atomic.Int64

	// name and sink: same discipline as Counter.
	name string
	sink Sink
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	old := g.v.Swap(v)
	if g.sink != nil && old != v {
		g.sink.GaugeSet(g.name, v)
	}
}

// Add adjusts the gauge by delta (which may be negative). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.v.Add(delta)
	if g.sink != nil && delta != 0 {
		g.sink.GaugeSet(g.name, v)
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (max dirty observed, max queue depth). No-op on nil.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			if g.sink != nil {
				g.sink.GaugeSet(g.name, v)
			}
			return
		}
	}
}

// Value returns the current level; 0 on a nil gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds every instrument by name. Instruments are get-or-create:
// two callers asking for the same name share the same atomic storage,
// which is how packages publish and the facade exposes without plumbing
// struct fields around.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	tracer *Tracer
	sink   Sink
}

// NewRegistry returns an empty registry with an attached tracer.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		tracer: newTracer(defaultSpanCap),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{name: name, sink: r.sink}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name, sink: r.sink}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. A
// nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Tracer returns the registry's span tracer; nil on a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// SetSink attaches a tee to every instrument — existing and future —
// and to the tracer's finished-span path. Pass nil to detach.
//
// Attachment is not synchronised against concurrent recording: call
// SetSink during wiring, before the goroutines that record have
// started (the same discipline the simulator uses for every other
// configuration hook). No-op on a nil registry.
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = s
	for name, c := range r.counts {
		c.name, c.sink = name, s
	}
	for name, g := range r.gauges {
		g.name, g.sink = name, s
	}
	r.mu.Unlock()
	r.tracer.setSink(s)
}

// Snapshot returns a point-in-time copy of every instrument, sorted by
// name. It is safe to call concurrently with recording; each instrument
// is read atomically (a histogram's fields are individually atomic, so
// a snapshot taken mid-record may see a sample in the bucket array but
// not yet in the sum — totals are exact once recording quiesces).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var s Snapshot
	s.Counters = make([]CounterSnap, 0, len(r.counts))
	for name, c := range r.counts {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	s.Gauges = make([]GaugeSnap, 0, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	s.Histograms = make([]HistogramSnap, 0, len(r.hists))
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snap(name))
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Export bundles the metrics snapshot with the trace log — the unit the
// golden regression tests serialise and compare byte-for-byte.
func (r *Registry) Export() Export {
	if r == nil {
		return Export{}
	}
	return Export{
		Metrics: r.Snapshot(),
		Trace:   r.tracer.Snapshot(),
	}
}
