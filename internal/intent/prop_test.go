package intent

import (
	"fmt"
	"testing"

	"viyojit/internal/sim"
)

// oracleClient models the protocol contract a RetryingClient obeys: it
// issues sequence numbers in order, keeps at most W requests
// outstanding (it only issues seq n once every seq ≤ n−W has been
// observed acked), and may legally retry exactly the seqs it has issued
// but not yet observed an ack for — including ones the *server*
// completed whose ack was lost to a crash.
type oracleClient struct {
	id       uint64
	next     uint64          // next seq to issue
	observed map[uint64]bool // acks the client has seen
	issued   map[uint64]bool
}

func (c *oracleClient) mayIssue(window uint64) bool {
	if c.next <= window {
		return true
	}
	for s := uint64(1); s <= c.next-window; s++ {
		if !c.observed[s] {
			return false
		}
	}
	return true
}

// legalRetries is the set the window invariant protects: issued but not
// observed-acked.
func (c *oracleClient) legalRetries() []uint64 {
	var out []uint64
	for s := range c.issued {
		if !c.observed[s] {
			out = append(out, s)
		}
	}
	return out
}

// Property: journal GC never drops a seq an oracle client could still
// legally retry. Whatever interleaving of issues, server completions
// and lost acks occurs, every legal retry must Lookup as in-flight or
// done — never below-window.
func TestWindowInvariantProperty(t *testing.T) {
	for _, seed := range []uint64{1, 42, 0x5EED, 0xBAD5EED, 31337} {
		seed := seed
		t.Run(fmt.Sprintf("seed-%#x", seed), func(t *testing.T) {
			rng := sim.NewRNG(seed)
			window := 2 + rng.Intn(9) // W ∈ [2,10]
			j, _ := mustCreate(t, 1<<20, window)
			clients := make([]*oracleClient, 4)
			for i := range clients {
				clients[i] = &oracleClient{
					id:       uint64(i + 1),
					next:     1,
					observed: make(map[uint64]bool),
					issued:   make(map[uint64]bool),
				}
			}
			for step := 0; step < 4000; step++ {
				c := clients[rng.Intn(len(clients))]
				switch rng.Intn(4) {
				case 0, 1: // issue the next request
					if !c.mayIssue(uint64(window)) {
						continue
					}
					s := c.next
					if err := j.Begin(c.id, s, s*13, []byte(fmt.Sprintf("k%d", s%7)), []byte("v"), false); err != nil {
						t.Fatalf("step %d: Begin(%d,%d): %v", step, c.id, s, err)
					}
					c.issued[s] = true
					c.next++
				case 2: // server completes an outstanding request; ack delivered
					s, ok := pickOutstanding(rng, j, c)
					if !ok {
						continue
					}
					if err := j.Complete(c.id, s, 1, nil); err != nil {
						t.Fatalf("step %d: Complete(%d,%d): %v", step, c.id, s, err)
					}
					c.observed[s] = true
				case 3: // server completes but the ack is LOST (crash window)
					s, ok := pickOutstanding(rng, j, c)
					if !ok {
						continue
					}
					if err := j.Complete(c.id, s, 1, nil); err != nil {
						t.Fatalf("step %d: lost-ack Complete(%d,%d): %v", step, c.id, s, err)
					}
					// c.observed NOT updated: the client will retry this seq.
				}
				// The invariant, checked at every step for every client.
				for _, cl := range clients {
					for _, s := range cl.legalRetries() {
						if _, st := j.Lookup(cl.id, s); st == StateBelowWindow {
							t.Fatalf("step %d: window=%d client %d legal retry seq %d was GC'd (low advanced past it)",
								step, window, cl.id, s)
						}
					}
				}
			}
		})
	}
}

// pickOutstanding returns a random seq the journal holds in-flight for
// the client.
func pickOutstanding(rng *sim.RNG, j *Journal, c *oracleClient) (uint64, bool) {
	var open []uint64
	for s := range c.issued {
		if _, st := j.Lookup(c.id, s); st == StateInFlight {
			open = append(open, s)
		}
	}
	if len(open) == 0 {
		return 0, false
	}
	// deterministic order for the RNG draw
	min := open[0]
	for _, s := range open {
		if s < min {
			min = s
		}
	}
	max := min
	for _, s := range open {
		if s > max {
			max = s
		}
	}
	for tries := 0; tries < 64; tries++ {
		s := min + uint64(rng.Int63n(int64(max-min+1)))
		if _, st := j.Lookup(c.id, s); st == StateInFlight {
			return s, true
		}
	}
	return min, true
}
