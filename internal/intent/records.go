package intent

import (
	"encoding/binary"

	"viyojit/internal/obs"
	"viyojit/internal/wal"
)

// Record formats (wal payload bytes; the wal adds length/seq/checksum):
//
//	kIntent:     kind u8 | client u64 | seq u64 | opSum u64 | flags u8 |
//	             keyLen u16 | valLen u32 | key | val
//	kResult:     kind u8 | client u64 | seq u64 | code u8 | resLen u32 | res
//	kSnapClient: kind u8 | client u64 | low u64 | maxSeq u64
//	kSnapEntry:  kind u8 | client u64 | seq u64 | state u8 | opSum u64 |
//	             code u8 | flags u8 | keyLen u16 | valLen u32 | resLen u32 |
//	             key | val | res
//
// flags bit0 = tombstone (the redo deletes the key instead of writing
// it). state for kSnapEntry: 0 in-flight, 1 done.

const flagTombstone = 1

func encodeIntent(client, seq, opSum uint64, key, val []byte, tombstone bool) []byte {
	p := make([]byte, 1+8+8+8+1+2+4+len(key)+len(val))
	p[0] = kIntent
	binary.LittleEndian.PutUint64(p[1:], client)
	binary.LittleEndian.PutUint64(p[9:], seq)
	binary.LittleEndian.PutUint64(p[17:], opSum)
	if tombstone {
		p[25] = flagTombstone
	}
	binary.LittleEndian.PutUint16(p[26:], uint16(len(key)))
	binary.LittleEndian.PutUint32(p[28:], uint32(len(val)))
	copy(p[32:], key)
	copy(p[32+len(key):], val)
	return p
}

func encodeResult(client, seq uint64, code byte, res []byte) []byte {
	p := make([]byte, 1+8+8+1+4+len(res))
	p[0] = kResult
	binary.LittleEndian.PutUint64(p[1:], client)
	binary.LittleEndian.PutUint64(p[9:], seq)
	p[17] = code
	binary.LittleEndian.PutUint32(p[18:], uint32(len(res)))
	copy(p[22:], res)
	return p
}

func encodeSnapClient(client, low, maxSeq uint64) []byte {
	p := make([]byte, 1+8+8+8)
	p[0] = kSnapClient
	binary.LittleEndian.PutUint64(p[1:], client)
	binary.LittleEndian.PutUint64(p[9:], low)
	binary.LittleEndian.PutUint64(p[17:], maxSeq)
	return p
}

func encodeSnapEntry(client, seq uint64, e *entry) []byte {
	p := make([]byte, 1+8+8+1+8+1+1+2+4+4+len(e.key)+len(e.val)+len(e.result))
	p[0] = kSnapEntry
	binary.LittleEndian.PutUint64(p[1:], client)
	binary.LittleEndian.PutUint64(p[9:], seq)
	if e.done {
		p[17] = 1
	}
	binary.LittleEndian.PutUint64(p[18:], e.opSum)
	p[26] = e.code
	if e.tombstone {
		p[27] = flagTombstone
	}
	binary.LittleEndian.PutUint16(p[28:], uint16(len(e.key)))
	binary.LittleEndian.PutUint32(p[30:], uint32(len(e.val)))
	binary.LittleEndian.PutUint32(p[34:], uint32(len(e.result)))
	off := 38
	off += copy(p[off:], e.key)
	off += copy(p[off:], e.val)
	copy(p[off:], e.result)
	return p
}

// Record is the decoded form of one journal record, used by replay and
// by harnesses auditing the raw journal.
type Record struct {
	Kind      byte
	Client    uint64
	Seq       uint64
	OpSum     uint64
	Done      bool
	Code      byte
	Tombstone bool
	Low       uint64 // kSnapClient
	MaxSeq    uint64 // kSnapClient
	Key       []byte
	Val       []byte
	Result    []byte
}

// decode parses a record payload; !ok means the bytes do not form a
// well-shaped record of any known kind.
func decode(p []byte) (Record, bool) {
	if len(p) == 0 {
		return Record{}, false
	}
	switch p[0] {
	case kIntent:
		if len(p) < 32 {
			return Record{}, false
		}
		kl := int(binary.LittleEndian.Uint16(p[26:]))
		vl := int(binary.LittleEndian.Uint32(p[28:]))
		if len(p) != 32+kl+vl {
			return Record{}, false
		}
		return Record{
			Kind:      kIntent,
			Client:    binary.LittleEndian.Uint64(p[1:]),
			Seq:       binary.LittleEndian.Uint64(p[9:]),
			OpSum:     binary.LittleEndian.Uint64(p[17:]),
			Tombstone: p[25]&flagTombstone != 0,
			Key:       append([]byte(nil), p[32:32+kl]...),
			Val:       append([]byte(nil), p[32+kl:32+kl+vl]...),
		}, true
	case kResult:
		if len(p) < 22 {
			return Record{}, false
		}
		rl := int(binary.LittleEndian.Uint32(p[18:]))
		if len(p) != 22+rl {
			return Record{}, false
		}
		return Record{
			Kind:   kResult,
			Client: binary.LittleEndian.Uint64(p[1:]),
			Seq:    binary.LittleEndian.Uint64(p[9:]),
			Done:   true,
			Code:   p[17],
			Result: append([]byte(nil), p[22:22+rl]...),
		}, true
	case kSnapClient:
		if len(p) != 25 {
			return Record{}, false
		}
		return Record{
			Kind:   kSnapClient,
			Client: binary.LittleEndian.Uint64(p[1:]),
			Low:    binary.LittleEndian.Uint64(p[9:]),
			MaxSeq: binary.LittleEndian.Uint64(p[17:]),
		}, true
	case kSnapEntry:
		if len(p) < 38 {
			return Record{}, false
		}
		kl := int(binary.LittleEndian.Uint16(p[28:]))
		vl := int(binary.LittleEndian.Uint32(p[30:]))
		rl := int(binary.LittleEndian.Uint32(p[34:]))
		if len(p) != 38+kl+vl+rl {
			return Record{}, false
		}
		off := 38
		return Record{
			Kind:      kSnapEntry,
			Client:    binary.LittleEndian.Uint64(p[1:]),
			Seq:       binary.LittleEndian.Uint64(p[9:]),
			Done:      p[17] == 1,
			OpSum:     binary.LittleEndian.Uint64(p[18:]),
			Code:      p[26],
			Tombstone: p[27]&flagTombstone != 0,
			Key:       append([]byte(nil), p[off:off+kl]...),
			Val:       append([]byte(nil), p[off+kl:off+kl+vl]...),
			Result:    append([]byte(nil), p[off+kl+vl:off+kl+vl+rl]...),
		}, true
	}
	return Record{}, false
}

// ReplayRecords walks the committed prefix of a journal's *active* half
// read-only, invoking fn per decoded record. It reports whether the
// prefix ended on a torn tail. Harnesses use it to check that a rebuilt
// dedup table equals what the raw journal prefix implies.
func ReplayRecords(store Store, fn func(Record) error) (torn bool, err error) {
	var hdr [32]byte
	if err := store.ReadAt(hdr[:], 0); err != nil {
		return false, err
	}
	if binary.LittleEndian.Uint64(hdr[offMagic:]) != journalMagic {
		return false, ErrNoJournal
	}
	gen := binary.LittleEndian.Uint64(hdr[offGen:])
	halfSize := int64(binary.LittleEndian.Uint64(hdr[offHalf:]))
	if halfSize < minHalfBytes || headerBytes+2*halfSize > store.Size() {
		return false, ErrNoJournal
	}
	j := &Journal{store: store, halfSize: halfSize}
	l, err := wal.Open(j.half(gen))
	if err != nil {
		return false, err
	}
	err = l.Replay(func(seq uint64, payload []byte) error {
		rec, ok := decode(payload)
		if !ok {
			return nil // unknown payload; integrity already vouched by the wal
		}
		return fn(rec)
	})
	if err != nil {
		return false, err
	}
	return l.LastStop() == wal.StopTorn, nil
}

// RebuildTable replays a journal read-only into a fresh dedup table and
// returns its Snapshot — the "journal prefix" side of the
// table-equals-prefix invariant the crash sweep checks.
func RebuildTable(store Store) (map[uint64]ClientSnapshot, bool, error) {
	j2, err := Open(store, obs.NewRegistry())
	if err != nil {
		return nil, false, err
	}
	return j2.Snapshot(), j2.TornOpen(), nil
}
