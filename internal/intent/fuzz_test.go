package intent

import (
	"bytes"
	"testing"
)

// FuzzIntentReplay throws arbitrary bytes — including truncated and
// bit-flipped images of real journals — at the recovery path. Open and
// ReplayRecords must never panic; when Open does accept the image, the
// journal must remain protocol-usable.
func FuzzIntentReplay(f *testing.F) {
	// Seed 1: a healthy journal with live traffic and a compaction.
	healthy := newMemStore(MinStoreBytes)
	if j, err := Create(healthy, Config{Window: 4}); err == nil {
		for s := uint64(1); s <= 12; s++ {
			_ = j.Begin(1, s, s*3, []byte("key"), bytes.Repeat([]byte("v"), 40), s%4 == 0)
			if s%2 == 0 {
				_ = j.Complete(1, s, byte(s), []byte("r"))
			}
		}
		_ = j.Compact()
	}
	f.Add(healthy.data)
	// Seed 2: truncated mid-journal.
	f.Add(healthy.data[:len(healthy.data)/2])
	// Seed 3: empty and garbage.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, MinStoreBytes))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Pad to the minimum so size validation isn't the only path hit.
		buf := make([]byte, MinStoreBytes)
		copy(buf, data)
		ms := &memStore{data: buf}

		j, err := Open(ms, nil)
		if err == nil {
			// Whatever the bytes said, the journal must still work.
			if _, st := j.Lookup(999, 1); st != StateNew && st != StateBelowWindow {
				t.Fatalf("fresh client lookup state = %v", st)
			}
			seq := uint64(1)
			if w := j.table[999]; w != nil && w.low > seq {
				seq = w.low
			}
			if err := j.Begin(999, seq, 7, []byte("k"), []byte("v"), false); err == nil {
				if _, st := j.Lookup(999, seq); st != StateInFlight {
					t.Fatalf("post-Begin state = %v", st)
				}
				_ = j.Complete(999, seq, 1, nil)
			}
		}

		n := 0
		if torn, err := ReplayRecords(ms, func(Record) error { n++; return nil }); err == nil {
			_ = torn
		}

		// Truncations of the (possibly rewritten) image must also never panic.
		for _, cut := range []int{0, 1, headerBytes - 1, headerBytes, len(buf) / 2, len(buf) - 3} {
			short := make([]byte, cut)
			copy(short, buf[:cut])
			_, _ = Open(&memStore{data: short}, nil)
		}
	})
}
