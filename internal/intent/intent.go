// Package intent is the per-client idempotency journal that makes
// serving exactly-once across power failure. It lives *inside* the
// battery-backed region: the store it writes is a core.Manager mapping,
// so every journal append is a budget-accounted dirty-page write flushed
// by the same powerfail path as application data — durability
// bookkeeping is billed like any other write traffic.
//
// Protocol (driven by the serve dispatch loop):
//
//	Lookup(client, seq)  -> StateNew: fresh request
//	Begin(client, seq, opSum, redoKey, redoVal, tombstone)
//	    ... apply the mutation to the store ...
//	Complete(client, seq, code, result)
//	    ... ack the client ...
//
// The intent record carries the *computed* redo image (the exact bytes
// the mutation will write), not the operation. That closes the classic
// double-apply window: if power fails after the apply but before the
// result record, the retry finds the in-flight intent and re-applies the
// recorded redo — a blind, idempotent Put/Delete — instead of re-running
// a read-modify-write against already-mutated state.
//
// Crash-consistency layering:
//
//   - Records go through internal/wal (length+seq+checksum, record bytes
//     before head pointer), so recovery replays a committed prefix and
//     rejects the torn tail.
//   - The journal is two wal halves behind a header page. Compaction
//     (when the active half fills) snapshots the live dedup table into
//     the *inactive* half, then flips the active-generation word — an
//     8-byte in-page write, which the NV-DRAM region applies
//     all-or-nothing — so a crash at any instant leaves one fully valid
//     half.
//   - Per-client windows bound the table: a client with window W issues
//     seq n only after every seq ≤ n−W is acked, so entries below
//     maxSeq−W+1 can never be legally retried and are GC'd.
package intent

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"viyojit/internal/obs"
	"viyojit/internal/wal"
)

// Store is the NV-DRAM surface the journal lives in (same shape as
// wal.Store / pheap.Store — typically a core.Manager mapping).
type Store = wal.Store

const (
	journalMagic uint64 = 0x56494A494E544A31 // "VIJINTJ1"

	offMagic  = 0
	offGen    = 8
	offHalf   = 16
	offWindow = 24

	headerBytes = 4096 // the header owns the first page

	// DefaultWindow is the per-client sliding dedup window: how many of
	// a client's most recent sequence numbers stay retryable.
	DefaultWindow = 16

	// MinStoreBytes is the smallest store Create accepts: a header page
	// plus two halves each big enough for a wal.Log.
	MinStoreBytes = headerBytes + 2*minHalfBytes
	minHalfBytes  = 8192
)

// Record kinds.
const (
	kIntent     byte = 1 // a mutation is about to be applied
	kResult     byte = 2 // the mutation completed; result cached for dedup
	kSnapClient byte = 3 // compaction: a client's window bounds
	kSnapEntry  byte = 4 // compaction: one live table entry
)

// Typed errors. Match with errors.Is.
var (
	// ErrNoJournal: the store does not hold a journal (bad magic) — the
	// caller should Create one rather than Open.
	ErrNoJournal = errors.New("intent: store holds no journal")

	// ErrStaleSeq: the sequence number is below the client's dedup
	// window — it was GC'd, which (by the window invariant) means the
	// client already saw its ack and is violating the protocol by
	// retrying it.
	ErrStaleSeq = errors.New("intent: sequence below dedup window (already acked and GC'd)")

	// ErrSeqReuse: a Begin for a (client, seq) that already has an
	// entry, or a retry whose op checksum differs from the recorded
	// intent — the client reused a sequence number for a different op.
	ErrSeqReuse = errors.New("intent: sequence number reused for a different operation")

	// ErrJournalFull: even after compaction there is no room for the
	// record. The live table outgrew a half — back off and retry, or
	// provision a larger journal mapping.
	ErrJournalFull = errors.New("intent: journal full (live dedup state exceeds half capacity)")
)

// State classifies a (client, seq) pair for the dispatch loop.
type State int

const (
	// StateNew: never seen — run the full Begin/apply/Complete protocol.
	StateNew State = iota
	// StateInFlight: intent recorded, no result — the op may or may not
	// have been applied before a crash; re-apply the recorded redo.
	StateInFlight
	// StateDone: result recorded — return the cached result, do NOT
	// re-apply.
	StateDone
	// StateBelowWindow: GC'd — the client already saw the ack.
	StateBelowWindow
)

func (s State) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateInFlight:
		return "in-flight"
	case StateDone:
		return "done"
	case StateBelowWindow:
		return "below-window"
	}
	return "unknown"
}

// Entry is the dedup table's view of one journaled request. Slices
// alias journal-owned memory; callers must not mutate them.
type Entry struct {
	OpSum     uint64
	Done      bool
	Code      byte
	Tombstone bool
	RedoKey   []byte // in-flight only: the key the redo writes
	RedoVal   []byte // in-flight only: the exact bytes to (re-)apply
	Result    []byte // done only: the cached result returned on dedup
}

type entry struct {
	opSum     uint64
	done      bool
	code      byte
	tombstone bool
	key, val  []byte // redo image, cleared once done
	result    []byte
}

type clientWin struct {
	low     uint64 // lowest retryable seq; everything below is GC'd
	maxSeq  uint64
	entries map[uint64]*entry
}

// Config parameterises Create.
type Config struct {
	// Window is the per-client sliding dedup window (default
	// DefaultWindow). Persisted in the header; Open restores it.
	Window int
	// Obs receives the journal's instruments; nil uses a private
	// registry.
	Obs *obs.Registry
}

// Stats is a point-in-time summary of journal activity.
type Stats struct {
	Begins      uint64
	Completes   uint64
	GCDropped   uint64
	Compactions uint64
	AppendBytes uint64 // record payload bytes appended (journal write traffic)
	StaleSkips  uint64 // replayed records below the window, ignored
	Replayed    uint64 // records replayed at Open
	LiveEntries int
	Clients     int
	Gen         uint64
	HeadBytes   int64 // next append offset within the active half
	HalfBytes   int64 // capacity of each half
}

// instruments groups the obs counters (journal write traffic is a
// first-class observable: it is the write amplification the
// exactly-once guarantee costs).
type instruments struct {
	begins      *obs.Counter
	completes   *obs.Counter
	gcDropped   *obs.Counter
	compactions *obs.Counter
	appendBytes *obs.Counter
	staleSkips  *obs.Counter
	replayed    *obs.Counter
	tornOpens   *obs.Counter
	unjournaled *obs.Counter
	liveEntries *obs.Gauge
	liveClients *obs.Gauge
}

func newInstruments(r *obs.Registry) instruments {
	return instruments{
		begins:      r.Counter("intent_begins_total"),
		completes:   r.Counter("intent_completes_total"),
		gcDropped:   r.Counter("intent_gc_dropped_total"),
		compactions: r.Counter("intent_compactions_total"),
		appendBytes: r.Counter("intent_append_bytes_total"),
		staleSkips:  r.Counter("intent_stale_records_total"),
		replayed:    r.Counter("intent_replayed_records_total"),
		tornOpens:   r.Counter("intent_torn_opens_total"),
		unjournaled: r.Counter("intent_unjournaled_results_total"),
		liveEntries: r.Gauge("intent_live_entries"),
		liveClients: r.Gauge("intent_live_clients"),
	}
}

// Journal is the idempotency journal. Like the rest of the simulated
// stack it is single-goroutine: only the serve dispatch loop touches it.
type Journal struct {
	store    Store
	log      *wal.Log
	gen      uint64
	halfSize int64
	window   uint64

	table map[uint64]*clientWin

	torn bool // last Open stopped on a torn tail (crash signature)

	st    instruments
	stats Stats
}

// subWindow exposes a byte range of the parent store as a wal.Store.
type subWindow struct {
	store Store
	off   int64
	size  int64
}

func (w subWindow) Size() int64 { return w.size }

func (w subWindow) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > w.size {
		return fmt.Errorf("intent: half read out of range [%d,%d)", off, off+int64(len(p)))
	}
	return w.store.ReadAt(p, w.off+off)
}

func (w subWindow) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > w.size {
		return fmt.Errorf("intent: half write out of range [%d,%d)", off, off+int64(len(p)))
	}
	return w.store.WriteAt(p, w.off+off)
}

func (j *Journal) half(gen uint64) subWindow {
	return subWindow{store: j.store, off: headerBytes + int64(gen&1)*j.halfSize, size: j.halfSize}
}

// Create formats a fresh journal across the store.
func Create(store Store, cfg Config) (*Journal, error) {
	if store.Size() < MinStoreBytes {
		return nil, fmt.Errorf("intent: store of %d bytes too small (min %d)", store.Size(), MinStoreBytes)
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	halfSize := (store.Size() - headerBytes) / 2
	halfSize -= halfSize % 4096 // page-align so halves never share a page
	j := &Journal{
		store:    store,
		gen:      0,
		halfSize: halfSize,
		window:   uint64(cfg.Window),
		table:    make(map[uint64]*clientWin),
		st:       newInstruments(cfg.Obs),
	}
	l, err := wal.Create(j.half(0))
	if err != nil {
		return nil, err
	}
	j.log = l
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[offGen:], 0)
	binary.LittleEndian.PutUint64(hdr[offHalf:], uint64(halfSize))
	binary.LittleEndian.PutUint64(hdr[offWindow:], j.window)
	if err := store.WriteAt(hdr[offGen:offWindow+8], offGen); err != nil {
		return nil, err
	}
	// Magic last: a crash mid-Create leaves a store Open rejects.
	binary.LittleEndian.PutUint64(hdr[:8], journalMagic)
	if err := store.WriteAt(hdr[:8], offMagic); err != nil {
		return nil, err
	}
	return j, nil
}

// Open attaches to an existing journal (the recovery path) and rebuilds
// the dedup table by replaying the active half's committed prefix.
// Torn tails are tolerated: the record torn by the crash is the one
// whose request was never acked, so dropping it is exactly right.
func Open(store Store, reg *obs.Registry) (*Journal, error) {
	var hdr [32]byte
	if err := store.ReadAt(hdr[:], 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(hdr[offMagic:]) != journalMagic {
		return nil, ErrNoJournal
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	j := &Journal{
		store:    store,
		gen:      binary.LittleEndian.Uint64(hdr[offGen:]),
		halfSize: int64(binary.LittleEndian.Uint64(hdr[offHalf:])),
		window:   binary.LittleEndian.Uint64(hdr[offWindow:]),
		table:    make(map[uint64]*clientWin),
		st:       newInstruments(reg),
	}
	if j.halfSize < minHalfBytes || headerBytes+2*j.halfSize > store.Size() || j.window == 0 {
		return nil, fmt.Errorf("intent: corrupt journal header (half=%d window=%d store=%d)",
			j.halfSize, j.window, store.Size())
	}
	l, err := wal.Open(j.half(j.gen))
	if err != nil {
		return nil, fmt.Errorf("intent: active half: %w", err)
	}
	j.log = l
	err = l.Replay(func(seq uint64, payload []byte) error {
		j.stats.Replayed++
		j.st.replayed.Inc()
		j.applyRecord(payload)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if l.LastStop() == wal.StopTorn {
		j.torn = true
		j.st.tornOpens.Inc()
	}
	j.publishGauges()
	return j, nil
}

// TornOpen reports whether the last Open stopped on a torn tail — the
// signature of a crash mid-append. The torn record's request was never
// acked, so it is safe (and correct) that it vanished.
func (j *Journal) TornOpen() bool { return j.torn }

// Window returns the per-client dedup window.
func (j *Journal) Window() int { return int(j.window) }

// Gen returns the active half's generation (flips on compaction).
func (j *Journal) Gen() uint64 { return j.gen }

// Stats returns a snapshot of journal activity.
func (j *Journal) Stats() Stats {
	s := j.stats
	s.Gen = j.gen
	s.HeadBytes = j.log.Head()
	s.HalfBytes = j.halfSize
	s.Clients = len(j.table)
	for _, w := range j.table {
		s.LiveEntries += len(w.entries)
	}
	return s
}

func (j *Journal) publishGauges() {
	live := 0
	for _, w := range j.table {
		live += len(w.entries)
	}
	j.st.liveEntries.Set(int64(live))
	j.st.liveClients.Set(int64(len(j.table)))
}

func (j *Journal) win(client uint64) *clientWin {
	w := j.table[client]
	if w == nil {
		w = &clientWin{low: 1, entries: make(map[uint64]*entry)}
		j.table[client] = w
	}
	return w
}

// Lookup classifies a (client, seq) pair. The returned Entry is only
// meaningful for StateInFlight (redo image) and StateDone (cached
// result).
func (j *Journal) Lookup(client, seq uint64) (Entry, State) {
	w := j.table[client]
	if w == nil {
		return Entry{}, StateNew
	}
	if seq < w.low {
		return Entry{}, StateBelowWindow
	}
	e := w.entries[seq]
	if e == nil {
		return Entry{}, StateNew
	}
	view := Entry{OpSum: e.opSum, Done: e.done, Code: e.code, Tombstone: e.tombstone,
		RedoKey: e.key, RedoVal: e.val, Result: e.result}
	if e.done {
		return view, StateDone
	}
	return view, StateInFlight
}

// Begin journals the intent to apply a mutation: the op checksum (for
// seq-reuse detection) and the redo image (key, value-or-tombstone) a
// post-crash retry will re-apply. Must be called before the mutation
// touches the store.
func (j *Journal) Begin(client, seq, opSum uint64, redoKey, redoVal []byte, tombstone bool) error {
	if client == 0 || seq == 0 {
		return fmt.Errorf("intent: client and seq must be non-zero")
	}
	if len(redoKey) > 0xFFFF {
		return fmt.Errorf("intent: redo key of %d bytes exceeds 64KiB", len(redoKey))
	}
	w := j.win(client)
	if seq < w.low {
		return ErrStaleSeq
	}
	if w.entries[seq] != nil {
		return ErrSeqReuse
	}
	payload := encodeIntent(client, seq, opSum, redoKey, redoVal, tombstone)
	if err := j.append(payload); err != nil {
		return err
	}
	e := &entry{opSum: opSum, tombstone: tombstone,
		key: append([]byte(nil), redoKey...), val: append([]byte(nil), redoVal...)}
	w.entries[seq] = e
	if seq > w.maxSeq {
		w.maxSeq = seq
	}
	j.gcLocked(w)
	j.stats.Begins++
	j.st.begins.Inc()
	j.publishGauges()
	return nil
}

// Complete journals the mutation's result, making the (client, seq)
// pair dedupable. If the result record cannot be journaled even after
// compaction, the in-memory table is still updated and the condition is
// counted: losing a result record at a crash only costs an extra redo
// re-apply on retry, never a double-apply.
func (j *Journal) Complete(client, seq uint64, code byte, result []byte) error {
	w := j.table[client]
	if w == nil {
		return fmt.Errorf("intent: Complete for unknown client %d", client)
	}
	if seq < w.low {
		return ErrStaleSeq
	}
	e := w.entries[seq]
	if e == nil {
		return fmt.Errorf("intent: Complete for unjournaled seq %d (client %d)", seq, client)
	}
	err := j.append(encodeResult(client, seq, code, result))
	if err != nil {
		j.stats.Completes++ // table still advances; see doc comment
		j.st.unjournaled.Inc()
	} else {
		j.stats.Completes++
		j.st.completes.Inc()
	}
	e.done = true
	e.code = code
	e.result = append([]byte(nil), result...)
	e.key, e.val = nil, nil // redo image no longer needed
	return err
}

// append writes one record to the active half, compacting into the
// other half when full.
func (j *Journal) append(payload []byte) error {
	_, err := j.log.Append(payload)
	if errors.Is(err, wal.ErrFull) {
		if cerr := j.Compact(); cerr != nil {
			return cerr
		}
		_, err = j.log.Append(payload)
		if errors.Is(err, wal.ErrFull) {
			return ErrJournalFull
		}
	}
	if err == nil {
		j.stats.AppendBytes += uint64(len(payload))
		j.st.appendBytes.Add(uint64(len(payload)))
	}
	return err
}

// Compact snapshots the live dedup table into the inactive half and
// flips the active generation. The flip is an 8-byte in-page header
// write — all-or-nothing under the region's per-page write fault — so a
// crash anywhere during compaction leaves exactly one valid journal:
// the old half (flip not yet visible) or the new one (flip landed).
func (j *Journal) Compact() error {
	nl, err := wal.Create(j.half(j.gen + 1))
	if err != nil {
		return err
	}
	clients := make([]uint64, 0, len(j.table))
	for c := range j.table {
		clients = append(clients, c)
	}
	sort.Slice(clients, func(a, b int) bool { return clients[a] < clients[b] })
	var snapBytes uint64
	for _, c := range clients {
		w := j.table[c]
		p := encodeSnapClient(c, w.low, w.maxSeq)
		if _, err := nl.Append(p); err != nil {
			return snapErr(err)
		}
		snapBytes += uint64(len(p))
		seqs := make([]uint64, 0, len(w.entries))
		for s := range w.entries {
			seqs = append(seqs, s)
		}
		sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
		for _, s := range seqs {
			p := encodeSnapEntry(c, s, w.entries[s])
			if _, err := nl.Append(p); err != nil {
				return snapErr(err)
			}
			snapBytes += uint64(len(p))
		}
	}
	// Commit point: flip the generation word.
	var g [8]byte
	binary.LittleEndian.PutUint64(g[:], j.gen+1)
	if err := j.store.WriteAt(g[:], offGen); err != nil {
		return err
	}
	j.gen++
	j.log = nl
	j.stats.Compactions++
	j.stats.AppendBytes += snapBytes
	j.st.compactions.Inc()
	j.st.appendBytes.Add(snapBytes)
	return nil
}

func snapErr(err error) error {
	if errors.Is(err, wal.ErrFull) {
		return ErrJournalFull
	}
	return err
}

// gcLocked drops entries below the window's new low-water mark. Safety
// is the window invariant: a client with window W only issues seq n
// after every seq ≤ n−W has been acked, so nothing below maxSeq−W+1 can
// legally be retried.
func (j *Journal) gcLocked(w *clientWin) {
	if w.maxSeq < j.window {
		return
	}
	newLow := w.maxSeq - j.window + 1
	if newLow <= w.low {
		return
	}
	for s := w.low; s < newLow; s++ {
		if _, ok := w.entries[s]; ok {
			delete(w.entries, s)
			j.stats.GCDropped++
			j.st.gcDropped.Inc()
		}
	}
	w.low = newLow
}

// applyRecord folds one replayed record into the table. Records below a
// client's window (possible when live appends follow a compaction
// snapshot) are counted and skipped; malformed records are skipped too
// — the wal checksum already vouched for their integrity, so a decode
// failure means the payload predates this format and dropping it is the
// conservative choice.
func (j *Journal) applyRecord(payload []byte) {
	rec, ok := decode(payload)
	if !ok {
		j.stats.StaleSkips++
		j.st.staleSkips.Inc()
		return
	}
	switch rec.Kind {
	case kIntent:
		w := j.win(rec.Client)
		if rec.Seq < w.low {
			j.skipStale()
			return
		}
		w.entries[rec.Seq] = &entry{opSum: rec.OpSum, tombstone: rec.Tombstone,
			key: rec.Key, val: rec.Val}
		if rec.Seq > w.maxSeq {
			w.maxSeq = rec.Seq
		}
		j.gcLocked(w)
	case kResult:
		w := j.table[rec.Client]
		if w == nil || rec.Seq < w.low {
			j.skipStale()
			return
		}
		e := w.entries[rec.Seq]
		if e == nil {
			j.skipStale()
			return
		}
		e.done = true
		e.code = rec.Code
		e.result = rec.Result
		e.key, e.val = nil, nil
	case kSnapClient:
		w := j.win(rec.Client)
		if rec.Low > w.low {
			w.low = rec.Low
		}
		if rec.MaxSeq > w.maxSeq {
			w.maxSeq = rec.MaxSeq
		}
	case kSnapEntry:
		w := j.win(rec.Client)
		if rec.Seq < w.low {
			j.skipStale()
			return
		}
		e := &entry{opSum: rec.OpSum, tombstone: rec.Tombstone}
		if rec.Done {
			e.done = true
			e.code = rec.Code
			e.result = rec.Result
		} else {
			e.key, e.val = rec.Key, rec.Val
		}
		w.entries[rec.Seq] = e
		if rec.Seq > w.maxSeq {
			w.maxSeq = rec.Seq
		}
	default:
		j.skipStale()
	}
}

func (j *Journal) skipStale() {
	j.stats.StaleSkips++
	j.st.staleSkips.Inc()
}

// ClientSnapshot is a test/verification view of one client's window.
type ClientSnapshot struct {
	Low     uint64
	MaxSeq  uint64
	Entries map[uint64]Entry
}

// Snapshot exports the whole dedup table (deep-copied) so harnesses can
// compare a rebuilt table against the journal prefix.
func (j *Journal) Snapshot() map[uint64]ClientSnapshot {
	out := make(map[uint64]ClientSnapshot, len(j.table))
	for c, w := range j.table {
		cs := ClientSnapshot{Low: w.low, MaxSeq: w.maxSeq, Entries: make(map[uint64]Entry, len(w.entries))}
		for s, e := range w.entries {
			view := Entry{OpSum: e.opSum, Done: e.done, Code: e.code, Tombstone: e.tombstone}
			view.RedoKey = append([]byte(nil), e.key...)
			view.RedoVal = append([]byte(nil), e.val...)
			view.Result = append([]byte(nil), e.result...)
			cs.Entries[s] = view
		}
		out[c] = cs
	}
	return out
}

// PendingIntent is one in-flight intent (journaled Begin without a
// Complete) in the deterministic replay order.
type PendingIntent struct {
	Client uint64
	Seq    uint64
	Entry  Entry
}

// Pending lists every in-flight intent sorted by (client, seq). This is
// the canonical redo order for restartable recovery: replaying the list
// by index is deterministic across attempts, so a persistent cursor
// counting completed redos identifies exactly which intents a resumed
// recovery may skip. Entry slices are deep-copied.
func (j *Journal) Pending() []PendingIntent {
	var out []PendingIntent
	for c, w := range j.table {
		for s, e := range w.entries {
			if e.done {
				continue
			}
			view := Entry{OpSum: e.opSum, Done: e.done, Code: e.code, Tombstone: e.tombstone}
			view.RedoKey = append([]byte(nil), e.key...)
			view.RedoVal = append([]byte(nil), e.val...)
			out = append(out, PendingIntent{Client: c, Seq: s, Entry: view})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Client != out[b].Client {
			return out[a].Client < out[b].Client
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// Checksum is the op checksum clients record with an intent: FNV-1a
// over the key, the value image and a caller-chosen tag. Retrying the
// same logical op yields the same sum; reusing a seq for a different op
// does not.
func Checksum(key, val []byte, tag uint64) uint64 {
	h := uint64(0xCBF29CE484222325)
	mix := func(bs []byte) {
		var l [8]byte
		binary.LittleEndian.PutUint64(l[:], uint64(len(bs)))
		for _, b := range l {
			h ^= uint64(b)
			h *= 0x100000001B3
		}
		for _, b := range bs {
			h ^= uint64(b)
			h *= 0x100000001B3
		}
	}
	mix(key)
	mix(val)
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], tag)
	mix(t[:])
	return h
}
