package intent

import (
	"fmt"
	"testing"
)

// TestPendingDeterministicOrder checks that Pending lists exactly the
// in-flight intents, sorted by (client, seq) regardless of the map
// iteration order they live under — the redo-order contract restartable
// recovery's cursor indexes into.
func TestPendingDeterministicOrder(t *testing.T) {
	j, ms := mustCreate(t, 1<<16, 8)
	// Interleave clients and seqs; complete some so only true
	// in-flights remain.
	type op struct {
		client, seq uint64
		done        bool
	}
	ops := []op{
		{3, 1, false}, {1, 2, true}, {2, 1, false}, {1, 1, false},
		{3, 2, true}, {2, 3, false}, {2, 2, true},
	}
	for _, o := range ops {
		key := []byte(fmt.Sprintf("k%d-%d", o.client, o.seq))
		val := []byte(fmt.Sprintf("v%d-%d", o.client, o.seq))
		if err := j.Begin(o.client, o.seq, Checksum(key, val, 0), key, val, false); err != nil {
			t.Fatalf("Begin(%d,%d): %v", o.client, o.seq, err)
		}
		if o.done {
			if err := j.Complete(o.client, o.seq, 0, nil); err != nil {
				t.Fatalf("Complete(%d,%d): %v", o.client, o.seq, err)
			}
		}
	}

	want := []struct{ client, seq uint64 }{{1, 1}, {2, 1}, {2, 3}, {3, 1}}
	check := func(j *Journal, label string) {
		t.Helper()
		got := j.Pending()
		if len(got) != len(want) {
			t.Fatalf("%s: %d pending, want %d: %+v", label, len(got), len(want), got)
		}
		for i, w := range want {
			p := got[i]
			if p.Client != w.client || p.Seq != w.seq {
				t.Fatalf("%s: pending[%d] = (%d,%d), want (%d,%d)", label, i, p.Client, p.Seq, w.client, w.seq)
			}
			if p.Entry.Done {
				t.Fatalf("%s: pending[%d] marked done", label, i)
			}
			wantKey := fmt.Sprintf("k%d-%d", w.client, w.seq)
			if string(p.Entry.RedoKey) != wantKey {
				t.Fatalf("%s: pending[%d] redo key %q, want %q", label, i, p.Entry.RedoKey, wantKey)
			}
			// Deep copy: mutating the view must not touch the journal.
			p.Entry.RedoKey[0] ^= 0xFF
			if e, _ := j.Lookup(w.client, w.seq); string(e.RedoKey) != wantKey {
				t.Fatalf("%s: Pending aliases journal memory", label)
			}
		}
	}
	check(j, "live")

	// The same list must come back after a crash-reopen (rebuilt table).
	j2, err := Open(ms, nil)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	check(j2, "reopened")

	if got := mustCreateEmptyPending(t); got != 0 {
		t.Fatalf("fresh journal has %d pending, want 0", got)
	}
}

func mustCreateEmptyPending(t *testing.T) int {
	t.Helper()
	j, _ := mustCreate(t, 1<<16, 8)
	return len(j.Pending())
}
