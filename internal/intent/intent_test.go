package intent

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"viyojit/internal/obs"
)

type memStore struct{ data []byte }

func newMemStore(size int) *memStore { return &memStore{data: make([]byte, size)} }

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(m.data[off:], p)
	return nil
}

func mustCreate(t *testing.T, size int, window int) (*Journal, *memStore) {
	t.Helper()
	ms := newMemStore(size)
	j, err := Create(ms, Config{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	return j, ms
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(newMemStore(MinStoreBytes-1), Config{}); err == nil {
		t.Fatal("undersized store accepted")
	}
	if _, err := Create(newMemStore(MinStoreBytes), Config{}); err != nil {
		t.Fatalf("minimum store rejected: %v", err)
	}
}

func TestOpenRejectsNonJournal(t *testing.T) {
	if _, err := Open(newMemStore(1<<16), nil); !errors.Is(err, ErrNoJournal) {
		t.Fatalf("err = %v, want ErrNoJournal", err)
	}
}

func TestProtocolStates(t *testing.T) {
	j, _ := mustCreate(t, 1<<16, 8)

	if _, st := j.Lookup(7, 1); st != StateNew {
		t.Fatalf("unseen pair state = %v", st)
	}
	sum := Checksum([]byte("k"), []byte("v1"), 0)
	if err := j.Begin(7, 1, sum, []byte("k"), []byte("v1"), false); err != nil {
		t.Fatal(err)
	}
	e, st := j.Lookup(7, 1)
	if st != StateInFlight || !bytes.Equal(e.RedoKey, []byte("k")) || !bytes.Equal(e.RedoVal, []byte("v1")) || e.OpSum != sum {
		t.Fatalf("in-flight view = %+v state %v", e, st)
	}
	if err := j.Complete(7, 1, 3, []byte("res")); err != nil {
		t.Fatal(err)
	}
	e, st = j.Lookup(7, 1)
	if st != StateDone || e.Code != 3 || !bytes.Equal(e.Result, []byte("res")) {
		t.Fatalf("done view = %+v state %v", e, st)
	}
	if e.RedoKey != nil || e.RedoVal != nil {
		t.Fatal("redo image retained after Complete")
	}
}

func TestBeginValidation(t *testing.T) {
	j, _ := mustCreate(t, 1<<16, 8)
	if err := j.Begin(0, 1, 0, []byte("k"), nil, true); err == nil {
		t.Fatal("zero client accepted")
	}
	if err := j.Begin(1, 0, 0, []byte("k"), nil, true); err == nil {
		t.Fatal("zero seq accepted")
	}
	if err := j.Begin(1, 1, 0, []byte("k"), nil, true); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(1, 1, 0, []byte("k"), nil, true); !errors.Is(err, ErrSeqReuse) {
		t.Fatalf("duplicate Begin err = %v, want ErrSeqReuse", err)
	}
}

func TestWindowGC(t *testing.T) {
	const W = 4
	j, _ := mustCreate(t, 1<<16, W)
	for s := uint64(1); s <= 10; s++ {
		if err := j.Begin(1, s, s, []byte("k"), []byte("v"), false); err != nil {
			t.Fatalf("seq %d: %v", s, err)
		}
		if err := j.Complete(1, s, 0, nil); err != nil {
			t.Fatalf("seq %d: %v", s, err)
		}
	}
	// maxSeq=10, W=4 → low=7: seqs 7..10 retryable, 1..6 GC'd.
	for s := uint64(1); s <= 6; s++ {
		if _, st := j.Lookup(1, s); st != StateBelowWindow {
			t.Fatalf("seq %d state = %v, want below-window", s, st)
		}
	}
	for s := uint64(7); s <= 10; s++ {
		if _, st := j.Lookup(1, s); st != StateDone {
			t.Fatalf("seq %d state = %v, want done", s, st)
		}
	}
	if err := j.Begin(1, 3, 3, []byte("k"), []byte("v"), false); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("below-window Begin err = %v, want ErrStaleSeq", err)
	}
	if err := j.Complete(1, 3, 0, nil); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("below-window Complete err = %v, want ErrStaleSeq", err)
	}
	if got := j.Stats().GCDropped; got != 6 {
		t.Fatalf("GCDropped = %d, want 6", got)
	}
}

func TestCompactionPreservesTableAndSurvivesReopen(t *testing.T) {
	// Small journal so live traffic forces several compactions.
	j, ms := mustCreate(t, MinStoreBytes+4096*4, 6)
	val := bytes.Repeat([]byte("x"), 200)
	for s := uint64(1); s <= 200; s++ {
		client := uint64(1 + s%3)
		if err := j.Begin(client, 1+(s-1)/3, s, []byte(fmt.Sprintf("key-%d", s%17)), val, false); err != nil {
			t.Fatalf("seq %d: %v", s, err)
		}
		if err := j.Complete(client, 1+(s-1)/3, byte(s%5), []byte("r")); err != nil {
			t.Fatalf("seq %d: %v", s, err)
		}
	}
	if j.Stats().Compactions == 0 {
		t.Fatal("no compaction triggered; test is vacuous")
	}
	before := j.Snapshot()
	j2, err := Open(ms, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, before, j2.Snapshot())
	if j2.Gen() != j.Gen() {
		t.Fatalf("reopened gen %d != live gen %d", j2.Gen(), j.Gen())
	}
	if j2.Window() != 6 {
		t.Fatalf("window not persisted: %d", j2.Window())
	}
}

func TestExplicitCompactIdempotentState(t *testing.T) {
	j, ms := mustCreate(t, 1<<16, 8)
	for s := uint64(1); s <= 5; s++ {
		if err := j.Begin(2, s, s, []byte("k"), []byte("v"), false); err != nil {
			t.Fatal(err)
		}
	}
	gen := j.Gen()
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if j.Gen() != gen+1 {
		t.Fatalf("gen after compact = %d, want %d", j.Gen(), gen+1)
	}
	j2, err := Open(ms, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, j.Snapshot(), j2.Snapshot())
}

func TestJournalFullAndUnjournaledComplete(t *testing.T) {
	// Minimum-size journal: each half has 4096 record bytes. Two fat
	// in-flight intents fill a half AND their compaction snapshot, so a
	// third Begin has nowhere to go even after compaction.
	j, _ := mustCreate(t, MinStoreBytes, 16)
	fat := bytes.Repeat([]byte("z"), 1800)
	if err := j.Begin(1, 1, 1, []byte("a"), fat, false); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(1, 2, 2, []byte("b"), fat, false); err != nil {
		t.Fatal(err)
	}
	if err := j.Begin(1, 3, 3, []byte("c"), fat, false); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("third fat Begin err = %v, want ErrJournalFull", err)
	}
	if _, st := j.Lookup(1, 3); st != StateNew {
		t.Fatalf("failed Begin left table entry: state %v", st)
	}
	// A fat result cannot be journaled either — Complete reports the
	// error but the table must still advance (retry costs one extra
	// redo re-apply, never a double apply).
	if err := j.Complete(1, 1, 9, bytes.Repeat([]byte("r"), 600)); err == nil {
		t.Fatal("expected unjournaled-complete error")
	}
	e, st := j.Lookup(1, 1)
	if st != StateDone || e.Code != 9 {
		t.Fatalf("table did not advance on unjournaled complete: %v %+v", st, e)
	}
}

func TestChecksumDistinguishesOps(t *testing.T) {
	a := Checksum([]byte("k"), []byte("v"), 0)
	if a != Checksum([]byte("k"), []byte("v"), 0) {
		t.Fatal("checksum not deterministic")
	}
	for _, other := range []uint64{
		Checksum([]byte("k"), []byte("w"), 0),
		Checksum([]byte("l"), []byte("v"), 0),
		Checksum([]byte("k"), []byte("v"), 1),
		Checksum([]byte("kv"), nil, 0),
	} {
		if other == a {
			t.Fatal("checksum collision across distinct ops")
		}
	}
}

func assertSnapshotsEqual(t *testing.T, a, b map[uint64]ClientSnapshot) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("client count %d != %d", len(a), len(b))
	}
	for c, ca := range a {
		cb, ok := b[c]
		if !ok {
			t.Fatalf("client %d missing", c)
		}
		if ca.Low != cb.Low || ca.MaxSeq != cb.MaxSeq {
			t.Fatalf("client %d window (%d,%d) != (%d,%d)", c, ca.Low, ca.MaxSeq, cb.Low, cb.MaxSeq)
		}
		if len(ca.Entries) != len(cb.Entries) {
			t.Fatalf("client %d entry count %d != %d", c, len(ca.Entries), len(cb.Entries))
		}
		for s, ea := range ca.Entries {
			eb, ok := cb.Entries[s]
			if !ok {
				t.Fatalf("client %d seq %d missing", c, s)
			}
			if ea.OpSum != eb.OpSum || ea.Done != eb.Done || ea.Code != eb.Code ||
				ea.Tombstone != eb.Tombstone ||
				!bytes.Equal(ea.RedoKey, eb.RedoKey) || !bytes.Equal(ea.RedoVal, eb.RedoVal) ||
				!bytes.Equal(ea.Result, eb.Result) {
				t.Fatalf("client %d seq %d entry mismatch:\n  %+v\n  %+v", c, s, ea, eb)
			}
		}
	}
}

// cutStore models power failure mid-write: the first `budget` bytes of
// write traffic land, everything after is lost, possibly tearing a
// record or header write down the middle.
type cutStore struct {
	*memStore
	budget int
}

func (c *cutStore) WriteAt(p []byte, off int64) error {
	if c.budget <= 0 {
		return nil // power is gone; writes vanish
	}
	n := len(p)
	if n > c.budget {
		n = c.budget
	}
	c.budget -= n
	return c.memStore.WriteAt(p[:n], off)
}

// Crash-prefix property: cut the write stream at every byte budget and
// the journal must reopen with a table that is a consistent prefix of
// the committed protocol history — acked (Completed) requests may only
// disappear wholesale with their intent (never resurface as in-flight
// with a *different* redo), and nothing ever decodes as garbage.
func TestCrashCutPrefix(t *testing.T) {
	type opRec struct {
		seq   uint64
		sum   uint64
		acked bool
	}
	runHistory := func(st Store) []opRec {
		j, err := Create(st, Config{Window: 4})
		if err != nil {
			return nil // header itself torn; Open must reject, checked below
		}
		var hist []opRec
		val := bytes.Repeat([]byte("v"), 64)
		for s := uint64(1); s <= 40; s++ {
			if err := j.Begin(1, s, s*7, []byte(fmt.Sprintf("key-%d", s)), val, s%5 == 0); err != nil {
				break
			}
			hist = append(hist, opRec{seq: s, sum: s * 7})
			if s%3 != 0 { // leave every third op in flight
				if err := j.Complete(1, s, byte(s), nil); err != nil {
					break
				}
				hist[len(hist)-1].acked = true
			}
		}
		return hist
	}

	// Full run to size the write stream.
	full := &cutStore{memStore: newMemStore(1 << 15), budget: 1 << 30}
	fullHist := runHistory(full)
	if len(fullHist) != 40 {
		t.Fatalf("full history ran %d ops, want 40", len(fullHist))
	}
	total := (1 << 30) - full.budget

	for cut := 0; cut <= total; cut += 97 {
		cs := &cutStore{memStore: newMemStore(1 << 15), budget: cut}
		hist := runHistory(cs)
		j2, err := Open(cs.memStore, nil)
		if errors.Is(err, ErrNoJournal) {
			continue // crashed before the magic landed — correct refusal
		}
		if err != nil {
			t.Fatalf("cut %d: reopen failed: %v", cut, err)
		}
		snap := j2.Snapshot()[1]
		for _, op := range hist {
			e, ok := snap.Entries[op.seq]
			if !ok {
				continue // lost with the torn tail or GC'd — allowed
			}
			if e.OpSum != op.sum {
				t.Fatalf("cut %d: seq %d rebuilt with wrong opSum %d (want %d)", cut, op.seq, e.OpSum, op.sum)
			}
		}
		_ = hist
	}
}
