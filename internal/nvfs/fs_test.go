package nvfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

type memStore struct{ data []byte }

func newMemStore(size int) *memStore { return &memStore{data: make([]byte, size)} }

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(m.data[off:], p)
	return nil
}

func newTestFS(t testing.TB, size int) *FS {
	t.Helper()
	fs, err := Format(newMemStore(size))
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFormatValidation(t *testing.T) {
	if _, err := Format(newMemStore(BlockSize * 2)); err == nil {
		t.Fatal("tiny store accepted")
	}
}

func TestOpenRejectsUnformatted(t *testing.T) {
	if _, err := Open(newMemStore(1 << 20)); err == nil {
		t.Fatal("unformatted store mounted")
	}
}

func TestCreateWriteReadFile(t *testing.T) {
	fs := newTestFS(t, 4<<20)
	if err := fs.Create("/hello.txt"); err != nil {
		t.Fatal(err)
	}
	data := []byte("hello, persistent file system")
	if err := fs.WriteFile("/hello.txt", data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := fs.ReadFile("/hello.txt", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	info, err := fs.Stat("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) || info.IsDir || info.Name != "hello.txt" {
		t.Fatalf("stat = %+v", info)
	}
}

func TestDirectoriesNestAndList(t *testing.T) {
	fs := newTestFS(t, 4<<20)
	if err := fs.Mkdir("/var"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/var/log"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/var/log/app.log"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/var/run"); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.ReadDir("/var")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	if !names["log"] || !names["run"] {
		t.Fatalf("names = %v", names)
	}
	root, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(root) != 1 || root[0].Name != "var" || !root[0].IsDir {
		t.Fatalf("root = %+v", root)
	}
}

func TestErrorCases(t *testing.T) {
	fs := newTestFS(t, 4<<20)
	if err := fs.Create("/a.txt"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a.txt"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := fs.ReadFile("/missing", make([]byte, 1), 0); !errors.Is(err, ErrNotExist) {
		t.Fatalf("missing read: %v", err)
	}
	if err := fs.WriteFile("/", []byte{1}, 0); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write to dir: %v", err)
	}
	if _, err := fs.ReadDir("/a.txt"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir on file: %v", err)
	}
	if err := fs.Create("/missing/child"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("create under missing dir: %v", err)
	}
	if err := fs.Create("/" + string(make([]byte, MaxNameLen+1))); !errors.Is(err, ErrBadName) {
		t.Fatalf("long name: %v", err)
	}
	if err := fs.Create("/a/../b"); !errors.Is(err, ErrBadName) {
		t.Fatalf("dot-dot path: %v", err)
	}
}

func TestRemove(t *testing.T) {
	fs := newTestFS(t, 4<<20)
	if err := fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/d/f", bytes.Repeat([]byte{1}, 10000), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove of non-empty dir: %v", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/d/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("removed file still stats: %v", err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if entries, err := fs.ReadDir("/"); err != nil || len(entries) != 0 {
		t.Fatalf("root after removals: %v %v", entries, err)
	}
	// The freed space is reusable.
	if err := fs.Create("/fresh"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/fresh", bytes.Repeat([]byte{2}, 10000), 0); err != nil {
		t.Fatal(err)
	}
}

func TestLargeFileSpansIndirect(t *testing.T) {
	fs := newTestFS(t, 8<<20)
	if err := fs.Create("/big"); err != nil {
		t.Fatal(err)
	}
	// Past the 12 direct blocks (48 KiB) into the indirect range.
	data := make([]byte, 200*1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := fs.WriteFile("/big", data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := fs.ReadFile("/big", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("indirect-range contents corrupted")
	}
	// Sparse write far into the file: the hole reads as zeros.
	if err := fs.Truncate("/big"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/big", []byte{0xAA}, 100*1024); err != nil {
		t.Fatal(err)
	}
	hole := make([]byte, 64)
	if err := fs.ReadFile("/big", hole, 1024); err != nil {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole did not read as zeros")
		}
	}
}

func TestFileTooBig(t *testing.T) {
	fs := newTestFS(t, 64<<20)
	if err := fs.Create("/huge"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/huge", []byte{1}, MaxFileSize); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("write past max size: %v", err)
	}
}

func TestNoSpace(t *testing.T) {
	fs := newTestFS(t, 64*BlockSize)
	if err := fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i < 1000; i++ {
		if err = fs.WriteFile("/f", make([]byte, BlockSize), int64(i)*BlockSize); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrNoSpace) && !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("filling the volume ended with %v", err)
	}
}

func TestReopenPreservesTree(t *testing.T) {
	ms := newMemStore(4 << 20)
	fs1, err := Format(ms)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs1.Mkdir("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := fs1.Create("/etc/conf"); err != nil {
		t.Fatal(err)
	}
	if err := fs1.WriteFile("/etc/conf", []byte("key=value"), 0); err != nil {
		t.Fatal(err)
	}
	fs2, err := Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	if err := fs2.ReadFile("/etc/conf", got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "key=value" {
		t.Fatalf("reopened read = %q", got)
	}
}

// Property: the FS agrees with an in-memory shadow under random
// create/write/read/remove sequences.
func TestShadowProperty(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		fs := newTestFS(t, 8<<20)
		rng := sim.NewRNG(seed)
		shadow := map[string][]byte{}
		names := make([]string, 12)
		for i := range names {
			names[i] = fmt.Sprintf("/file-%02d", i)
		}
		for i := 0; i < int(steps)%120+1; i++ {
			name := names[rng.Intn(len(names))]
			switch rng.Intn(5) {
			case 0: // create
				err := fs.Create(name)
				if _, exists := shadow[name]; exists {
					if !errors.Is(err, ErrExist) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					shadow[name] = []byte{}
				}
			case 1, 2: // write (append-ish)
				data, exists := shadow[name]
				buf := make([]byte, rng.Intn(3000)+1)
				for j := range buf {
					buf[j] = byte(rng.Uint64())
				}
				off := int64(0)
				if len(data) > 0 {
					off = rng.Int63n(int64(len(data)) + 1)
				}
				err := fs.WriteFile(name, buf, off)
				if !exists {
					if !errors.Is(err, ErrNotExist) {
						return false
					}
					continue
				}
				if err != nil {
					return false
				}
				end := off + int64(len(buf))
				if end > int64(len(data)) {
					grown := make([]byte, end)
					copy(grown, data)
					data = grown
				}
				copy(data[off:], buf)
				shadow[name] = data
			case 3: // read + compare
				data, exists := shadow[name]
				if !exists || len(data) == 0 {
					continue
				}
				got := make([]byte, len(data))
				if err := fs.ReadFile(name, got, 0); err != nil {
					return false
				}
				if !bytes.Equal(got, data) {
					return false
				}
			case 4: // remove
				err := fs.Remove(name)
				if _, exists := shadow[name]; exists {
					if err != nil {
						return false
					}
					delete(shadow, name)
				} else if !errors.Is(err, ErrNotExist) {
					return false
				}
			}
		}
		// Final listing matches the shadow.
		entries, err := fs.ReadDir("/")
		if err != nil {
			return false
		}
		if len(entries) != len(shadow) {
			return false
		}
		for _, e := range entries {
			data, ok := shadow["/"+e.Name]
			if !ok || e.Size != int64(len(data)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRename(t *testing.T) {
	fs := newTestFS(t, 4<<20)
	if err := fs.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/f", []byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/a/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("old name still present: %v", err)
	}
	got := make([]byte, 7)
	if err := fs.ReadFile("/b/g", got, 0); err != nil || string(got) != "payload" {
		t.Fatalf("renamed contents: %q %v", got, err)
	}
	// Same-parent rename.
	if err := fs.Rename("/b/g", "/b/h"); err != nil {
		t.Fatal(err)
	}
	if err := fs.ReadFile("/b/h", got, 0); err != nil || string(got) != "payload" {
		t.Fatalf("same-dir rename: %q %v", got, err)
	}
	entries, err := fs.ReadDir("/b")
	if err != nil || len(entries) != 1 || entries[0].Name != "h" {
		t.Fatalf("dir after renames: %+v %v", entries, err)
	}
	// Destination collision rejected.
	if err := fs.Create("/b/other"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/b/h", "/b/other"); !errors.Is(err, ErrExist) {
		t.Fatalf("rename onto existing: %v", err)
	}
	// Missing source rejected.
	if err := fs.Rename("/nope", "/b/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename of missing: %v", err)
	}
	// Directories rename too.
	if err := fs.Rename("/b", "/c"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("/c/h"); err != nil {
		t.Fatalf("renamed directory lost children: %v", err)
	}
}
