// Package nvfs is a small persistent file system on battery-backed DRAM
// — the first application class the paper's introduction lists as an NVM
// beneficiary (its refs include BPFS, PMFS, NOVA), and the setting of
// §3's analysis: "file system volumes hosted entirely in NV-DRAM". Every
// metadata and data structure lives in the NV-DRAM store, so the whole
// file system — superblock, bitmap, inodes, directories, file contents —
// is durable under Viyojit with a fraction-sized battery.
//
// On-store layout (4 KiB blocks):
//
//	block 0:            superblock
//	blocks 1..B:        block-allocation bitmap (1 bit per block)
//	blocks B+1..B+I:    inode table (64 B inodes)
//	remaining blocks:   file and directory data
//
// Files use 12 direct block pointers plus one single-indirect block
// (max file size ≈ 4.2 MiB at 4 KiB blocks). Directories are files of
// fixed 64-byte entries. The design goal is a *real, tested* FS substrate
// at honest scope — not a POSIX clone.
//
// Crash consistency: operations order their writes so that a power
// failure leaves the tree traversable (data and inode before the
// directory entry that publishes them); Viyojit supplies the byte
// durability underneath.
package nvfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Store is the NV-DRAM surface (same shape as pheap.Store).
type Store interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

// Geometry and layout constants.
const (
	BlockSize = 4096

	magic = 0x5649594F4A465331 // "VIYOJFS1"

	inodeSize      = 64
	directPointers = 12
	ptrSize        = 4
	ptrsPerBlock   = BlockSize / ptrSize

	// MaxFileSize is the largest file the inode geometry addresses.
	MaxFileSize = (directPointers + ptrsPerBlock) * BlockSize

	dirEntrySize = 64
	// MaxNameLen bounds one path component.
	MaxNameLen = dirEntrySize - 5 // inode u32 + nameLen u8

	rootInode = 0
)

// Errors returned by the file system.
var (
	ErrNotExist   = errors.New("nvfs: no such file or directory")
	ErrExist      = errors.New("nvfs: already exists")
	ErrNotDir     = errors.New("nvfs: not a directory")
	ErrIsDir      = errors.New("nvfs: is a directory")
	ErrNotEmpty   = errors.New("nvfs: directory not empty")
	ErrNoSpace    = errors.New("nvfs: no space left on volume")
	ErrNoInodes   = errors.New("nvfs: no free inodes")
	ErrFileTooBig = errors.New("nvfs: file exceeds maximum size")
	ErrBadName    = errors.New("nvfs: invalid name")
)

// kind values stored in inodes.
const (
	kindFree = 0
	kindFile = 1
	kindDir  = 2
)

// FS is an open file system. It is not safe for concurrent use.
type FS struct {
	store Store

	nBlocks      uint32
	nInodes      uint32
	bitmapStart  uint32 // block index
	bitmapBlocks uint32
	inodeStart   uint32 // block index
	dataStart    uint32 // first allocatable block
}

// superblock layout offsets (within block 0).
const (
	sbMagic        = 0
	sbNBlocks      = 8
	sbNInodes      = 12
	sbBitmapStart  = 16
	sbBitmapBlocks = 20
	sbInodeStart   = 24
	sbDataStart    = 28
	sbSize         = 32
)

// Format initialises a fresh file system across the store, with one
// inode per 16 data blocks (a classic ratio), and returns it mounted.
func Format(store Store) (*FS, error) {
	totalBlocks := store.Size() / BlockSize
	if totalBlocks < 8 {
		return nil, fmt.Errorf("nvfs: store of %d bytes too small", store.Size())
	}
	if totalBlocks > 1<<31 {
		return nil, fmt.Errorf("nvfs: store too large for 32-bit block pointers")
	}
	nBlocks := uint32(totalBlocks)

	bitmapBlocks := (nBlocks + BlockSize*8 - 1) / (BlockSize * 8)
	nInodes := nBlocks / 16
	if nInodes < 16 {
		nInodes = 16
	}
	inodeBlocks := (nInodes*inodeSize + BlockSize - 1) / BlockSize

	fs := &FS{
		store:        store,
		nBlocks:      nBlocks,
		nInodes:      nInodes,
		bitmapStart:  1,
		bitmapBlocks: bitmapBlocks,
		inodeStart:   1 + bitmapBlocks,
		dataStart:    1 + bitmapBlocks + inodeBlocks,
	}
	if fs.dataStart >= nBlocks {
		return nil, fmt.Errorf("nvfs: store too small for metadata (%d metadata blocks of %d)", fs.dataStart, nBlocks)
	}

	// Zero the metadata region (bitmap + inode table).
	zero := make([]byte, BlockSize)
	for b := fs.bitmapStart; b < fs.dataStart; b++ {
		if err := store.WriteAt(zero, int64(b)*BlockSize); err != nil {
			return nil, err
		}
	}
	// Superblock.
	sb := make([]byte, sbSize)
	binary.LittleEndian.PutUint64(sb[sbMagic:], magic)
	binary.LittleEndian.PutUint32(sb[sbNBlocks:], nBlocks)
	binary.LittleEndian.PutUint32(sb[sbNInodes:], nInodes)
	binary.LittleEndian.PutUint32(sb[sbBitmapStart:], fs.bitmapStart)
	binary.LittleEndian.PutUint32(sb[sbBitmapBlocks:], bitmapBlocks)
	binary.LittleEndian.PutUint32(sb[sbInodeStart:], fs.inodeStart)
	binary.LittleEndian.PutUint32(sb[sbDataStart:], fs.dataStart)
	if err := store.WriteAt(sb, 0); err != nil {
		return nil, err
	}
	// Root directory: inode 0, empty.
	root := inode{kind: kindDir}
	if err := fs.writeInode(rootInode, &root); err != nil {
		return nil, err
	}
	return fs, nil
}

// Open mounts an existing file system (the recovery path), validating
// the superblock.
func Open(store Store) (*FS, error) {
	sb := make([]byte, sbSize)
	if err := store.ReadAt(sb, 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(sb[sbMagic:]) != magic {
		return nil, fmt.Errorf("nvfs: bad magic; store is not an nvfs volume")
	}
	fs := &FS{
		store:        store,
		nBlocks:      binary.LittleEndian.Uint32(sb[sbNBlocks:]),
		nInodes:      binary.LittleEndian.Uint32(sb[sbNInodes:]),
		bitmapStart:  binary.LittleEndian.Uint32(sb[sbBitmapStart:]),
		bitmapBlocks: binary.LittleEndian.Uint32(sb[sbBitmapBlocks:]),
		inodeStart:   binary.LittleEndian.Uint32(sb[sbInodeStart:]),
		dataStart:    binary.LittleEndian.Uint32(sb[sbDataStart:]),
	}
	if int64(fs.nBlocks)*BlockSize > store.Size() || fs.dataStart >= fs.nBlocks {
		return nil, fmt.Errorf("nvfs: superblock geometry inconsistent with store")
	}
	return fs, nil
}

// --- path resolution ---------------------------------------------------

// splitPath normalises and splits an absolute path; "" and "/" yield nil
// (the root).
func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	parts := strings.Split(path, "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." || len(p) > MaxNameLen {
			return nil, fmt.Errorf("%w: %q", ErrBadName, p)
		}
	}
	return parts, nil
}

// resolve walks the path to an inode number.
func (fs *FS) resolve(path string) (uint32, *inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, nil, err
	}
	cur := uint32(rootInode)
	ino, err := fs.readInode(cur)
	if err != nil {
		return 0, nil, err
	}
	for _, name := range parts {
		if ino.kind != kindDir {
			return 0, nil, fmt.Errorf("%w: %s", ErrNotDir, path)
		}
		next, _, err := fs.dirLookup(cur, ino, name)
		if err != nil {
			return 0, nil, err
		}
		cur = next
		if ino, err = fs.readInode(cur); err != nil {
			return 0, nil, err
		}
	}
	return cur, ino, nil
}

// resolveParent returns the parent directory's inode number/state and the
// final path component.
func (fs *FS) resolveParent(path string) (uint32, *inode, string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return 0, nil, "", err
	}
	if len(parts) == 0 {
		return 0, nil, "", fmt.Errorf("%w: empty path", ErrBadName)
	}
	dirPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	dirIno, dir, err := fs.resolve(dirPath)
	if err != nil {
		return 0, nil, "", err
	}
	if dir.kind != kindDir {
		return 0, nil, "", fmt.Errorf("%w: %s", ErrNotDir, dirPath)
	}
	return dirIno, dir, parts[len(parts)-1], nil
}
