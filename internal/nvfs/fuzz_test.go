package nvfs

import "testing"

// FuzzPaths hardens path handling: arbitrary byte strings fed to every
// path-taking operation must produce errors or correct behaviour, never
// panics or cross-file corruption.
func FuzzPaths(f *testing.F) {
	f.Add("/normal/file.txt")
	f.Add("//double//slashes//")
	f.Add("/../../../etc/passwd")
	f.Add("/")
	f.Add("")
	f.Add("/ünïcödé/✓")
	f.Add("/a\x00b")
	f.Add("/" + string(make([]byte, 300)))

	f.Fuzz(func(t *testing.T, path string) {
		fs := newTestFS(t, 1<<20)
		if err := fs.Mkdir("/dir"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Create("/dir/sentinel"); err != nil {
			t.Fatal(err)
		}
		if err := fs.WriteFile("/dir/sentinel", []byte("guard"), 0); err != nil {
			t.Fatal(err)
		}

		// Exercise every path-taking entry point; errors are fine.
		_ = fs.Create(path)
		_ = fs.Mkdir(path)
		_, _ = fs.Stat(path)
		_ = fs.WriteFile(path, []byte("x"), 0)
		_ = fs.ReadFile(path, make([]byte, 1), 0)
		_, _ = fs.ReadDir(path)
		_ = fs.Rename(path, "/dir/renamed")
		_ = fs.Remove(path)

		// The sentinel must be unscathed regardless of what the fuzzer
		// did (unless it legitimately named and removed it).
		if info, err := fs.Stat("/dir/sentinel"); err == nil {
			if info.Size != 5 {
				t.Fatalf("sentinel size corrupted to %d by path %q", info.Size, path)
			}
			got := make([]byte, 5)
			if err := fs.ReadFile("/dir/sentinel", got, 0); err != nil || string(got) != "guard" {
				t.Fatalf("sentinel contents corrupted by path %q", path)
			}
		}
	})
}
