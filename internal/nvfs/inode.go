package nvfs

import (
	"encoding/binary"
	"fmt"
)

// inode is the in-memory form of one 64-byte on-store inode.
//
// On-store layout:
//
//	kind u8 | pad [3]u8 | size u32 | direct [12]u32 | indirect u32
type inode struct {
	kind     uint8
	size     uint32
	direct   [directPointers]uint32
	indirect uint32
}

func (fs *FS) inodeOffset(n uint32) int64 {
	return int64(fs.inodeStart)*BlockSize + int64(n)*inodeSize
}

func (fs *FS) readInode(n uint32) (*inode, error) {
	if n >= fs.nInodes {
		return nil, fmt.Errorf("nvfs: inode %d out of range", n)
	}
	var buf [inodeSize]byte
	if err := fs.store.ReadAt(buf[:], fs.inodeOffset(n)); err != nil {
		return nil, err
	}
	ino := &inode{
		kind: buf[0],
		size: binary.LittleEndian.Uint32(buf[4:]),
	}
	for i := 0; i < directPointers; i++ {
		ino.direct[i] = binary.LittleEndian.Uint32(buf[8+4*i:])
	}
	ino.indirect = binary.LittleEndian.Uint32(buf[8+4*directPointers:])
	return ino, nil
}

func (fs *FS) writeInode(n uint32, ino *inode) error {
	if n >= fs.nInodes {
		return fmt.Errorf("nvfs: inode %d out of range", n)
	}
	var buf [inodeSize]byte
	buf[0] = ino.kind
	binary.LittleEndian.PutUint32(buf[4:], ino.size)
	for i := 0; i < directPointers; i++ {
		binary.LittleEndian.PutUint32(buf[8+4*i:], ino.direct[i])
	}
	binary.LittleEndian.PutUint32(buf[8+4*directPointers:], ino.indirect)
	return fs.store.WriteAt(buf[:], fs.inodeOffset(n))
}

// allocInode finds a free inode (linear scan; inode 0 is the root).
func (fs *FS) allocInode(kind uint8) (uint32, error) {
	for n := uint32(1); n < fs.nInodes; n++ {
		ino, err := fs.readInode(n)
		if err != nil {
			return 0, err
		}
		if ino.kind == kindFree {
			fresh := inode{kind: kind}
			if err := fs.writeInode(n, &fresh); err != nil {
				return 0, err
			}
			return n, nil
		}
	}
	return 0, ErrNoInodes
}

// --- block allocation ---------------------------------------------------

// allocBlock finds, marks, and zeroes a free data block. Block number 0
// is never handed out (it is the superblock), so 0 doubles as the nil
// pointer in inodes.
func (fs *FS) allocBlock() (uint32, error) {
	var word [8]byte
	bitmapBase := int64(fs.bitmapStart) * BlockSize
	// Scan 64-block words; word w's bit i is block w*64+i, so the scan
	// must be word-aligned regardless of where dataStart falls.
	firstWord := int64(fs.dataStart) / 64
	lastWord := (int64(fs.nBlocks) + 63) / 64
	for w := firstWord; w < lastWord; w++ {
		off := bitmapBase + w*8
		if err := fs.store.ReadAt(word[:], off); err != nil {
			return 0, err
		}
		bits := binary.LittleEndian.Uint64(word[:])
		if bits == ^uint64(0) {
			continue
		}
		for i := 0; i < 64; i++ {
			blk := w*64 + int64(i)
			if blk < int64(fs.dataStart) {
				continue
			}
			if blk >= int64(fs.nBlocks) {
				break
			}
			if bits&(1<<uint(i)) == 0 {
				bits |= 1 << uint(i)
				binary.LittleEndian.PutUint64(word[:], bits)
				if err := fs.store.WriteAt(word[:], off); err != nil {
					return 0, err
				}
				zero := make([]byte, BlockSize)
				if err := fs.store.WriteAt(zero, blk*BlockSize); err != nil {
					return 0, err
				}
				return uint32(blk), nil
			}
		}
	}
	return 0, ErrNoSpace
}

// freeBlock clears a block's bitmap bit. Freeing block 0 is a no-op (nil
// pointer).
func (fs *FS) freeBlock(blk uint32) error {
	if blk == 0 {
		return nil
	}
	if blk < fs.dataStart || blk >= fs.nBlocks {
		return fmt.Errorf("nvfs: free of metadata block %d", blk)
	}
	off := int64(fs.bitmapStart)*BlockSize + int64(blk)/8
	var b [1]byte
	if err := fs.store.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] &^= 1 << uint(blk%8)
	return fs.store.WriteAt(b[:], off)
}

// --- file block mapping ---------------------------------------------------

// blockFor returns the data block holding file block index bi, allocating
// (and wiring) it if alloc is set. Returns 0 when the block is a hole and
// alloc is false.
func (fs *FS) blockFor(n uint32, ino *inode, bi int, alloc bool) (uint32, error) {
	if bi < directPointers {
		blk := ino.direct[bi]
		if blk == 0 && alloc {
			var err error
			if blk, err = fs.allocBlock(); err != nil {
				return 0, err
			}
			ino.direct[bi] = blk
			if err := fs.writeInode(n, ino); err != nil {
				return 0, err
			}
		}
		return blk, nil
	}
	ii := bi - directPointers
	if ii >= ptrsPerBlock {
		return 0, ErrFileTooBig
	}
	if ino.indirect == 0 {
		if !alloc {
			return 0, nil
		}
		blk, err := fs.allocBlock()
		if err != nil {
			return 0, err
		}
		ino.indirect = blk
		if err := fs.writeInode(n, ino); err != nil {
			return 0, err
		}
	}
	var ptr [ptrSize]byte
	ptrOff := int64(ino.indirect)*BlockSize + int64(ii)*ptrSize
	if err := fs.store.ReadAt(ptr[:], ptrOff); err != nil {
		return 0, err
	}
	blk := binary.LittleEndian.Uint32(ptr[:])
	if blk == 0 && alloc {
		var err error
		if blk, err = fs.allocBlock(); err != nil {
			return 0, err
		}
		binary.LittleEndian.PutUint32(ptr[:], blk)
		if err := fs.store.WriteAt(ptr[:], ptrOff); err != nil {
			return 0, err
		}
	}
	return blk, nil
}

// truncate frees every block of the inode and zeroes its size.
func (fs *FS) truncate(n uint32, ino *inode) error {
	for i := 0; i < directPointers; i++ {
		if err := fs.freeBlock(ino.direct[i]); err != nil {
			return err
		}
		ino.direct[i] = 0
	}
	if ino.indirect != 0 {
		var ptr [ptrSize]byte
		for i := 0; i < ptrsPerBlock; i++ {
			if err := fs.store.ReadAt(ptr[:], int64(ino.indirect)*BlockSize+int64(i)*ptrSize); err != nil {
				return err
			}
			if err := fs.freeBlock(binary.LittleEndian.Uint32(ptr[:])); err != nil {
				return err
			}
		}
		if err := fs.freeBlock(ino.indirect); err != nil {
			return err
		}
		ino.indirect = 0
	}
	ino.size = 0
	return fs.writeInode(n, ino)
}
