package nvfs

import (
	"bytes"
	"fmt"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// The §3 scenario end-to-end: a file system volume hosted in
// Viyojit-managed NV-DRAM, file traffic bounded by a small dirty budget,
// a power failure, and a remount over the recovered bytes with the whole
// tree intact.
func TestFilesystemSurvivesPowerFailure(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := mgr.Map("volume", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Format(mapping)
	if err != nil {
		t.Fatal(err)
	}

	// Build a tree and write more data than the budget covers.
	if err := fs.Mkdir("/logs"); err != nil {
		t.Fatal(err)
	}
	files := map[string][]byte{}
	for i := 0; i < 20; i++ {
		path := fmt.Sprintf("/logs/app-%02d.log", i)
		if err := fs.Create(path); err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 60*1024) // 60 KiB each
		if err := fs.WriteFile(path, data, 0); err != nil {
			t.Fatal(err)
		}
		files[path] = data
		mgr.Pump()
		if mgr.DirtyCount() > 128 {
			t.Fatalf("budget violated: %d", mgr.DirtyCount())
		}
	}

	pm := power.Default()
	joules := pm.FlushWatts(region.Size()) * (dev.FlushTimeFor(128) + 5*sim.Millisecond).Seconds()
	report := mgr.PowerFail(pm, joules)
	if !report.Survived {
		t.Fatalf("flush not covered: %+v", report)
	}
	if err := mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}

	// Reboot: rebuild the region from the SSD, remount, verify the tree.
	clock2 := sim.NewClock()
	events2 := sim.NewQueue()
	region2, err := nvdram.New(clock2, nvdram.Config{Size: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < region2.NumPages(); p++ {
		if data, ok := dev.Durable(mmu.PageID(p)); ok {
			if err := region2.RestorePage(mmu.PageID(p), data); err != nil {
				t.Fatal(err)
			}
		}
	}
	dev2 := ssd.New(clock2, events2, ssd.Config{})
	mgr2, err := core.NewManager(clock2, events2, region2, dev2, core.Config{DirtyBudgetPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	mapping2, err := mgr2.Map("volume", 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Open(mapping2)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fs2.ReadDir("/logs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("remounted /logs has %d entries, want 20", len(entries))
	}
	for path, want := range files {
		got := make([]byte, len(want))
		if err := fs2.ReadFile(path, got, 0); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s contents corrupted across power cycle", path)
		}
	}
	// The remounted volume is fully writable.
	if err := fs2.Create("/logs/after-reboot.log"); err != nil {
		t.Fatal(err)
	}
	if err := fs2.WriteFile("/logs/after-reboot.log", []byte("back up"), 0); err != nil {
		t.Fatal(err)
	}
}
