package nvfs

import (
	"encoding/binary"
	"fmt"
)

// FileInfo describes one file or directory.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
}

// --- directory internals -------------------------------------------------

// dirLookup scans dir (inode number dn, state dir) for name, returning
// the child inode and the entry's byte offset within the directory file.
func (fs *FS) dirLookup(dn uint32, dir *inode, name string) (uint32, int64, error) {
	var entry [dirEntrySize]byte
	for off := int64(0); off < int64(dir.size); off += dirEntrySize {
		if err := fs.readFileAt(dn, dir, entry[:], off); err != nil {
			return 0, 0, err
		}
		child := binary.LittleEndian.Uint32(entry[0:])
		nameLen := int(entry[4])
		if nameLen == 0 {
			continue // free slot
		}
		if string(entry[5:5+nameLen]) == name {
			return child, off, nil
		}
	}
	return 0, 0, fmt.Errorf("%w: %s", ErrNotExist, name)
}

// dirInsert adds an entry, reusing a free slot or extending the
// directory file.
func (fs *FS) dirInsert(dn uint32, dir *inode, name string, child uint32) error {
	var entry [dirEntrySize]byte
	slot := int64(dir.size)
	for off := int64(0); off < int64(dir.size); off += dirEntrySize {
		if err := fs.readFileAt(dn, dir, entry[:], off); err != nil {
			return err
		}
		if entry[4] == 0 {
			slot = off
			break
		}
	}
	entry = [dirEntrySize]byte{}
	binary.LittleEndian.PutUint32(entry[0:], child)
	entry[4] = byte(len(name))
	copy(entry[5:], name)
	return fs.writeFileAt(dn, dir, entry[:], slot)
}

// dirRemove clears the entry at off.
func (fs *FS) dirRemove(dn uint32, dir *inode, off int64) error {
	var zero [dirEntrySize]byte
	return fs.writeFileAt(dn, dir, zero[:], off)
}

// dirEmpty reports whether the directory has no live entries.
func (fs *FS) dirEmpty(dn uint32, dir *inode) (bool, error) {
	var entry [dirEntrySize]byte
	for off := int64(0); off < int64(dir.size); off += dirEntrySize {
		if err := fs.readFileAt(dn, dir, entry[:], off); err != nil {
			return false, err
		}
		if entry[4] != 0 {
			return false, nil
		}
	}
	return true, nil
}

// --- raw file IO against an inode ---------------------------------------

// readFileAt fills p from the file's byte offset off; holes read as
// zeros.
func (fs *FS) readFileAt(n uint32, ino *inode, p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(ino.size) {
		return fmt.Errorf("nvfs: read [%d,%d) outside file of %d bytes", off, off+int64(len(p)), ino.size)
	}
	for len(p) > 0 {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(p) {
			chunk = len(p)
		}
		blk, err := fs.blockFor(n, ino, bi, false)
		if err != nil {
			return err
		}
		if blk == 0 {
			for i := 0; i < chunk; i++ {
				p[i] = 0
			}
		} else if err := fs.store.ReadAt(p[:chunk], int64(blk)*BlockSize+int64(bo)); err != nil {
			return err
		}
		p = p[chunk:]
		off += int64(chunk)
	}
	return nil
}

// writeFileAt stores p at the file's byte offset off, allocating blocks
// and growing the size as needed.
func (fs *FS) writeFileAt(n uint32, ino *inode, p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("nvfs: negative offset %d", off)
	}
	if off+int64(len(p)) > MaxFileSize {
		return ErrFileTooBig
	}
	end := off + int64(len(p))
	for len(p) > 0 {
		bi := int(off / BlockSize)
		bo := int(off % BlockSize)
		chunk := BlockSize - bo
		if chunk > len(p) {
			chunk = len(p)
		}
		blk, err := fs.blockFor(n, ino, bi, true)
		if err != nil {
			return err
		}
		if err := fs.store.WriteAt(p[:chunk], int64(blk)*BlockSize+int64(bo)); err != nil {
			return err
		}
		p = p[chunk:]
		off += int64(chunk)
	}
	if end > int64(ino.size) {
		ino.size = uint32(end)
		return fs.writeInode(n, ino)
	}
	return nil
}

// --- public API -----------------------------------------------------------

// Create makes an empty file at path. The parent directory must exist.
func (fs *FS) Create(path string) error {
	dn, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	if _, _, err := fs.dirLookup(dn, dir, name); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	// Order: inode first, directory entry last — a crash between the two
	// leaks an inode but never publishes a dangling name.
	child, err := fs.allocInode(kindFile)
	if err != nil {
		return err
	}
	return fs.dirInsert(dn, dir, name, child)
}

// Mkdir makes an empty directory at path.
func (fs *FS) Mkdir(path string) error {
	dn, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	if _, _, err := fs.dirLookup(dn, dir, name); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, path)
	}
	child, err := fs.allocInode(kindDir)
	if err != nil {
		return err
	}
	return fs.dirInsert(dn, dir, name, child)
}

// WriteFile writes p at offset off in the file at path.
func (fs *FS) WriteFile(path string, p []byte, off int64) error {
	n, ino, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if ino.kind == kindDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return fs.writeFileAt(n, ino, p, off)
}

// ReadFile fills p from offset off in the file at path.
func (fs *FS) ReadFile(path string, p []byte, off int64) error {
	n, ino, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if ino.kind == kindDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return fs.readFileAt(n, ino, p, off)
}

// Stat describes the file or directory at path.
func (fs *FS) Stat(path string) (FileInfo, error) {
	_, ino, err := fs.resolve(path)
	if err != nil {
		return FileInfo{}, err
	}
	parts, _ := splitPath(path)
	name := "/"
	if len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return FileInfo{Name: name, Size: int64(ino.size), IsDir: ino.kind == kindDir}, nil
}

// ReadDir lists the entries of the directory at path.
func (fs *FS) ReadDir(path string) ([]FileInfo, error) {
	dn, dir, err := fs.resolve(path)
	if err != nil {
		return nil, err
	}
	if dir.kind != kindDir {
		return nil, fmt.Errorf("%w: %s", ErrNotDir, path)
	}
	var out []FileInfo
	var entry [dirEntrySize]byte
	for off := int64(0); off < int64(dir.size); off += dirEntrySize {
		if err := fs.readFileAt(dn, dir, entry[:], off); err != nil {
			return nil, err
		}
		nameLen := int(entry[4])
		if nameLen == 0 {
			continue
		}
		child := binary.LittleEndian.Uint32(entry[0:])
		ino, err := fs.readInode(child)
		if err != nil {
			return nil, err
		}
		out = append(out, FileInfo{
			Name:  string(entry[5 : 5+nameLen]),
			Size:  int64(ino.size),
			IsDir: ino.kind == kindDir,
		})
	}
	return out, nil
}

// Remove deletes the file or empty directory at path.
func (fs *FS) Remove(path string) error {
	dn, dir, name, err := fs.resolveParent(path)
	if err != nil {
		return err
	}
	child, entryOff, err := fs.dirLookup(dn, dir, name)
	if err != nil {
		return err
	}
	ino, err := fs.readInode(child)
	if err != nil {
		return err
	}
	if ino.kind == kindDir {
		empty, err := fs.dirEmpty(child, ino)
		if err != nil {
			return err
		}
		if !empty {
			return fmt.Errorf("%w: %s", ErrNotEmpty, path)
		}
	}
	// Order: unpublish the name first; a crash after this leaks blocks
	// but never exposes freed state under a live name.
	if err := fs.dirRemove(dn, dir, entryOff); err != nil {
		return err
	}
	if err := fs.truncate(child, ino); err != nil {
		return err
	}
	ino.kind = kindFree
	return fs.writeInode(child, ino)
}

// Truncate resets the file at path to zero bytes.
func (fs *FS) Truncate(path string) error {
	n, ino, err := fs.resolve(path)
	if err != nil {
		return err
	}
	if ino.kind == kindDir {
		return fmt.Errorf("%w: %s", ErrIsDir, path)
	}
	return fs.truncate(n, ino)
}

// Rename moves the file or directory at oldPath to newPath (which must
// not exist). Both parents must already exist. The entry is inserted at
// the destination before the source name is removed, so a crash between
// the two leaves the object reachable (possibly under both names) rather
// than lost.
func (fs *FS) Rename(oldPath, newPath string) error {
	odn, odir, oname, err := fs.resolveParent(oldPath)
	if err != nil {
		return err
	}
	child, oldOff, err := fs.dirLookup(odn, odir, oname)
	if err != nil {
		return err
	}
	ndn, ndir, nname, err := fs.resolveParent(newPath)
	if err != nil {
		return err
	}
	if _, _, err := fs.dirLookup(ndn, ndir, nname); err == nil {
		return fmt.Errorf("%w: %s", ErrExist, newPath)
	}
	if err := fs.dirInsert(ndn, ndir, nname, child); err != nil {
		return err
	}
	// Re-read the source directory state: if source and destination share
	// a parent, the insert may have grown it.
	if odn == ndn {
		odir = ndir
	}
	return fs.dirRemove(odn, odir, oldOff)
}
