// Package scaling models the technology-growth gap that motivates the
// paper (§2.2, Fig 1): DRAM capacity per rack unit has grown more than
// four orders of magnitude since 1990 while lithium battery energy
// density grew only ~3.3×, so batteries sized to back up all of DRAM
// cannot keep scaling. It also provides the §2.2 worked sizing example
// (4 TB server → ~300 KJ → ~10× a phone battery, ≥25× after real-world
// deratings).
package scaling

import (
	"fmt"
	"math"

	"viyojit/internal/battery"
	"viyojit/internal/power"
)

// Fig-1 anchor points from the paper: over 1990–2015, DRAM GB/RU grew
// more than 50,000× and Li-ion J/volume ≈ 3.3×.
const (
	baseYear        = 1990
	anchorYear      = 2015
	dramGrowth25y   = 50_000.0
	lithiumGrowth25 = 3.3
)

// annualRate converts a 25-year growth factor into a per-year rate.
func annualRate(growth25 float64) float64 {
	return math.Pow(growth25, 1.0/float64(anchorYear-baseYear))
}

// DRAMRelativeGrowth returns DRAM capacity per rack unit in year,
// relative to 1990 (=1.0). Years beyond 2015 are projected on the same
// trend, as Fig 1 does.
func DRAMRelativeGrowth(year int) float64 {
	return math.Pow(annualRate(dramGrowth25y), float64(year-baseYear))
}

// LithiumRelativeGrowth returns Li-ion energy density in year, relative
// to 1990 (=1.0).
func LithiumRelativeGrowth(year int) float64 {
	return math.Pow(annualRate(lithiumGrowth25), float64(year-baseYear))
}

// GrowthPoint is one Fig-1 sample.
type GrowthPoint struct {
	Year      int
	DRAM      float64
	Lithium   float64
	Projected bool
}

// GrowthSeries returns Fig 1's two curves over [from, to] in steps of
// step years. Points after 2015 are flagged as projected.
func GrowthSeries(from, to, step int) ([]GrowthPoint, error) {
	if from < baseYear || to < from || step <= 0 {
		return nil, fmt.Errorf("scaling: bad series range [%d, %d] step %d", from, to, step)
	}
	var out []GrowthPoint
	for y := from; y <= to; y += step {
		out = append(out, GrowthPoint{
			Year:      y,
			DRAM:      DRAMRelativeGrowth(y),
			Lithium:   LithiumRelativeGrowth(y),
			Projected: y > anchorYear,
		})
	}
	return out, nil
}

// Reference constants for the sizing example.
const (
	// PhoneBatteryJoules is a typical 2000 mAh, 3.7 V smartphone battery.
	PhoneBatteryJoules = 2000.0 / 1000 * 3.7 * 3600 // ≈ 26.6 KJ

	// DatacenterDensityPenalty: datacenter batteries use ~30% less dense
	// material to support higher power levels (§2.2).
	DatacenterDensityPenalty = 0.7
)

// SizingReport is the §2.2 worked example for a given server.
type SizingReport struct {
	DRAMBytes         int64
	SSDWriteBandwidth int64
	FlushSeconds      float64
	FlushWatts        float64
	EnergyJoules      float64 // raw energy to flush all DRAM
	PhoneBatteryRatio float64 // raw volume as a multiple of a phone battery
	EffectiveRatio    float64 // after DoD, derating, and density penalty
	ProvisionedJoules float64 // nameplate joules to provision
	EstimatedCostUSD  float64
}

// SizeFullBackup computes what a *full-DRAM* battery backup costs for a
// server: the quantity Viyojit's dirty budget replaces. dod and derating
// follow battery.Config semantics (0 selects 0.5 and 1.0).
func SizeFullBackup(pm power.Model, dramBytes, ssdWriteBandwidth int64, dod, derating float64) SizingReport {
	cfg := battery.ProvisionFor(pm, dramBytes, ssdWriteBandwidth, dramBytes, dod, derating)
	energy := pm.FlushEnergyJoules(dramBytes, ssdWriteBandwidth, dramBytes)
	flushSecs := power.FlushTime(dramBytes, ssdWriteBandwidth).Seconds()
	return SizingReport{
		DRAMBytes:         dramBytes,
		SSDWriteBandwidth: ssdWriteBandwidth,
		FlushSeconds:      flushSecs,
		FlushWatts:        pm.FlushWatts(dramBytes),
		EnergyJoules:      energy,
		PhoneBatteryRatio: energy / PhoneBatteryJoules,
		// Volume multiple after nameplate over-provisioning and the
		// lower-density datacenter cells.
		EffectiveRatio:    cfg.CapacityJoules / DatacenterDensityPenalty / PhoneBatteryJoules,
		ProvisionedJoules: cfg.CapacityJoules,
		// §2.2: "each server's battery may cost over 250$" for the 4 TB
		// example; scale linearly with provisioned energy.
		EstimatedCostUSD: 250 * cfg.CapacityJoules / referenceProvisionedJoules(pm),
	}
}

// referenceProvisionedJoules is the §2.2 reference point (4 TB at 4 GB/s,
// DoD 0.5) the $250 estimate is anchored to.
func referenceProvisionedJoules(pm power.Model) float64 {
	return battery.ProvisionFor(pm, 4<<40, 4<<30, 4<<40, 0.5, 1.0).CapacityJoules
}

// ViyojitBatteryRatio returns the battery reduction Viyojit achieves: the
// energy for flushing budgetFraction of the DRAM relative to flushing all
// of it. (Linear in the fraction — the point is that the *fraction* can
// be ~0.11 per the paper's evaluation.)
func ViyojitBatteryRatio(budgetFraction float64) float64 {
	if budgetFraction < 0 {
		return 0
	}
	if budgetFraction > 1 {
		return 1
	}
	return budgetFraction
}
