package scaling

import (
	"math"
	"testing"

	"viyojit/internal/power"
)

func TestGrowthAnchors(t *testing.T) {
	if got := DRAMRelativeGrowth(1990); got != 1.0 {
		t.Fatalf("DRAM 1990 = %v, want 1", got)
	}
	if got := LithiumRelativeGrowth(1990); got != 1.0 {
		t.Fatalf("Li 1990 = %v, want 1", got)
	}
	// The paper's anchors: 50,000× vs 3.3× over 1990–2015.
	if got := DRAMRelativeGrowth(2015); math.Abs(got-50000)/50000 > 0.01 {
		t.Fatalf("DRAM 2015 = %v, want ~50000", got)
	}
	if got := LithiumRelativeGrowth(2015); math.Abs(got-3.3)/3.3 > 0.01 {
		t.Fatalf("Li 2015 = %v, want ~3.3", got)
	}
}

func TestGrowthGapWidens(t *testing.T) {
	gap2000 := DRAMRelativeGrowth(2000) / LithiumRelativeGrowth(2000)
	gap2020 := DRAMRelativeGrowth(2020) / LithiumRelativeGrowth(2020)
	if gap2020 <= gap2000 {
		t.Fatalf("gap did not widen: %v vs %v", gap2000, gap2020)
	}
}

func TestGrowthSeries(t *testing.T) {
	pts, err := GrowthSeries(1990, 2020, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 7 {
		t.Fatalf("got %d points, want 7", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].DRAM <= pts[i-1].DRAM || pts[i].Lithium <= pts[i-1].Lithium {
			t.Fatal("series not increasing")
		}
	}
	if pts[5].Year != 2015 && pts[5].Projected {
		t.Fatal("2015 flagged as projected")
	}
	if !pts[6].Projected {
		t.Fatal("2020 not flagged as projected")
	}
	if _, err := GrowthSeries(2000, 1990, 5); err == nil {
		t.Fatal("reversed range accepted")
	}
	if _, err := GrowthSeries(1990, 2000, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

// The §2.2 worked example: a 4 TB server at 4 GB/s needs ~300 KJ of raw
// flush energy, ~10× a phone battery's volume, and ≥25× after DoD and
// density deratings.
func TestSizingMatchesPaperExample(t *testing.T) {
	r := SizeFullBackup(power.Default(), 4<<40, 4<<30, 0.5, 1.0)
	if r.EnergyJoules < 250e3 || r.EnergyJoules > 350e3 {
		t.Fatalf("raw energy = %v J, want ~300 KJ", r.EnergyJoules)
	}
	if r.PhoneBatteryRatio < 8 || r.PhoneBatteryRatio > 14 {
		t.Fatalf("raw phone-battery ratio = %v, want ~10", r.PhoneBatteryRatio)
	}
	if r.EffectiveRatio < 25 {
		t.Fatalf("derated ratio = %v, want >= 25", r.EffectiveRatio)
	}
	if r.FlushSeconds < 900 || r.FlushSeconds > 1100 {
		t.Fatalf("flush time = %v s, want ~1024", r.FlushSeconds)
	}
	if r.EstimatedCostUSD < 200 || r.EstimatedCostUSD > 300 {
		t.Fatalf("cost = $%v, want ~$250 at the reference point", r.EstimatedCostUSD)
	}
}

func TestSizingScalesWithDRAM(t *testing.T) {
	pm := power.Default()
	small := SizeFullBackup(pm, 1<<40, 4<<30, 0.5, 1.0)
	large := SizeFullBackup(pm, 4<<40, 4<<30, 0.5, 1.0)
	if large.EnergyJoules <= small.EnergyJoules {
		t.Fatal("energy did not grow with DRAM")
	}
	if large.EstimatedCostUSD <= small.EstimatedCostUSD {
		t.Fatal("cost did not grow with DRAM")
	}
}

func TestViyojitBatteryRatio(t *testing.T) {
	if ViyojitBatteryRatio(0.11) != 0.11 {
		t.Fatal("fraction not preserved")
	}
	if ViyojitBatteryRatio(-1) != 0 || ViyojitBatteryRatio(2) != 1 {
		t.Fatal("clamping broken")
	}
}
