// Package nvdram models a byte-addressable battery-backed DRAM region on
// top of the software MMU. Reads and writes go through the page table, so
// write-protection faults, dirty-bit updates, and TLB behaviour all apply,
// exactly as they would for an mmap'ed NV-DRAM region in the paper's
// implementation.
package nvdram

import (
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

// DefaultPageSize is the x86-64 base page size used throughout the paper.
const DefaultPageSize = 4096

// Config describes an NV-DRAM region.
type Config struct {
	// Size is the region size in bytes. It must be a positive multiple of
	// PageSize.
	Size int64
	// PageSize is the tracking granularity; 0 selects DefaultPageSize.
	PageSize int
	// TLBEntries bounds the MMU's TLB model; 0 selects the MMU default.
	TLBEntries int
	// Costs is the MMU cost model; the zero value selects
	// mmu.DefaultCosts.
	Costs mmu.Costs
	// CopyPerPage is the virtual-time cost of moving one full page of
	// data between a buffer and the region (DRAM bandwidth). Partial-page
	// transfers are charged proportionally. 0 selects a default of 400 ns
	// per 4 KiB (≈10 GB/s).
	CopyPerPage sim.Duration
}

// Region is an NV-DRAM region: backing bytes plus the page table that
// mediates access to them. It is not safe for concurrent use.
type Region struct {
	clock       *sim.Clock
	pt          *mmu.PageTable
	data        []byte
	pageSize    int
	copyPerPage sim.Duration
}

// New creates an NV-DRAM region. All pages start writable and clean; a
// Viyojit manager write-protects them before exposing the region (paper
// §5.1 step 1).
func New(clock *sim.Clock, cfg Config) (*Region, error) {
	ps := cfg.PageSize
	if ps == 0 {
		ps = DefaultPageSize
	}
	if ps <= 0 {
		return nil, fmt.Errorf("nvdram: page size %d must be positive", cfg.PageSize)
	}
	if cfg.Size <= 0 || cfg.Size%int64(ps) != 0 {
		return nil, fmt.Errorf("nvdram: size %d must be a positive multiple of page size %d", cfg.Size, ps)
	}
	costs := cfg.Costs
	if costs == (mmu.Costs{}) {
		costs = mmu.DefaultCosts()
	}
	cpp := cfg.CopyPerPage
	if cpp == 0 {
		cpp = sim.Duration(400*int64(ps)) / DefaultPageSize * sim.Nanosecond
	}
	numPages := int(cfg.Size / int64(ps))
	return &Region{
		clock:       clock,
		pt:          mmu.NewPageTable(clock, costs, numPages, cfg.TLBEntries),
		data:        make([]byte, cfg.Size),
		pageSize:    ps,
		copyPerPage: cpp,
	}, nil
}

// Size returns the region size in bytes.
func (r *Region) Size() int64 { return int64(len(r.data)) }

// PageSize returns the tracking granularity in bytes.
func (r *Region) PageSize() int { return r.pageSize }

// NumPages returns the number of pages in the region.
func (r *Region) NumPages() int { return r.pt.NumPages() }

// PageTable exposes the underlying page table; the Viyojit manager uses it
// to protect pages and scan dirty bits.
func (r *Region) PageTable() *mmu.PageTable { return r.pt }

// PageOf returns the page containing byte offset off.
func (r *Region) PageOf(off int64) mmu.PageID {
	return mmu.PageID(off / int64(r.pageSize))
}

func (r *Region) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > int64(len(r.data)) {
		return fmt.Errorf("nvdram: range [%d, %d) outside region of %d bytes", off, off+int64(n), len(r.data))
	}
	return nil
}

// chargeCopy charges DRAM-bandwidth time for moving n bytes.
func (r *Region) chargeCopy(n int) {
	if n <= 0 {
		return
	}
	d := sim.Duration(int64(r.copyPerPage) * int64(n) / int64(r.pageSize))
	r.clock.Advance(d)
}

// WriteAt stores p at byte offset off. Each page the write touches goes
// through the MMU write path: a protected page faults to the registered
// handler before the bytes land. The error, if any, comes from an
// unresolved protection fault or an out-of-range access; on error no
// caller-visible guarantee is made about partially written pages.
func (r *Region) WriteAt(p []byte, off int64) error {
	if err := r.checkRange(off, len(p)); err != nil {
		return err
	}
	for len(p) > 0 {
		page := r.PageOf(off)
		pageOff := int(off % int64(r.pageSize))
		n := r.pageSize - pageOff
		if n > len(p) {
			n = len(p)
		}
		if err := r.pt.Write(page); err != nil {
			return fmt.Errorf("nvdram: write at offset %d: %w", off, err)
		}
		copy(r.data[off:off+int64(n)], p[:n])
		r.chargeCopy(n)
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// ReadAt fills p from byte offset off. Reads never fault: Viyojit keeps
// every page readable at DRAM latency (paper §4.2).
func (r *Region) ReadAt(p []byte, off int64) error {
	if err := r.checkRange(off, len(p)); err != nil {
		return err
	}
	for len(p) > 0 {
		page := r.PageOf(off)
		pageOff := int(off % int64(r.pageSize))
		n := r.pageSize - pageOff
		if n > len(p) {
			n = len(p)
		}
		r.pt.Read(page)
		copy(p[:n], r.data[off:off+int64(n)])
		r.chargeCopy(n)
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// PageData returns a copy of the page's current contents. It is the
// transfer path used when a page is written out to the SSD; the copy cost
// is charged to the clock.
func (r *Region) PageData(page mmu.PageID) []byte {
	start := int64(page) * int64(r.pageSize)
	if err := r.checkRange(start, r.pageSize); err != nil {
		panic(err)
	}
	buf := make([]byte, r.pageSize)
	copy(buf, r.data[start:start+int64(r.pageSize)])
	r.chargeCopy(r.pageSize)
	return buf
}

// RestorePage overwrites a page's contents without going through the MMU
// write path: the recovery flow uses it to reload durable contents from
// the SSD after a power cycle, where the restored page is by definition
// clean and must not enter the dirty set. Copy bandwidth is charged.
func (r *Region) RestorePage(page mmu.PageID, data []byte) error {
	if len(data) != r.pageSize {
		return fmt.Errorf("nvdram: restore of %d bytes to page of %d", len(data), r.pageSize)
	}
	start := int64(page) * int64(r.pageSize)
	if err := r.checkRange(start, r.pageSize); err != nil {
		return err
	}
	copy(r.data[start:], data)
	r.chargeCopy(r.pageSize)
	return nil
}

// RawPage returns the live backing bytes of a page without charging time
// or touching MMU state. It exists for durability verification in tests
// and the power-failure checker, not for application access.
func (r *Region) RawPage(page mmu.PageID) []byte {
	start := int64(page) * int64(r.pageSize)
	return r.data[start : start+int64(r.pageSize)]
}
