package nvdram

import (
	"bytes"
	"testing"
	"testing/quick"

	"viyojit/internal/mmu"
	"viyojit/internal/sim"
)

func newTestRegion(t *testing.T, size int64, pageSize int) (*Region, *sim.Clock) {
	t.Helper()
	c := sim.NewClock()
	r, err := New(c, Config{Size: size, PageSize: pageSize})
	if err != nil {
		t.Fatal(err)
	}
	return r, c
}

func TestNewValidation(t *testing.T) {
	c := sim.NewClock()
	cases := []Config{
		{Size: 0},
		{Size: -4096},
		{Size: 5000, PageSize: 4096}, // not a multiple
		{Size: 4096, PageSize: -1},
	}
	for _, cfg := range cases {
		if _, err := New(c, cfg); err == nil {
			t.Errorf("New(%+v) succeeded, want error", cfg)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r, _ := newTestRegion(t, 16*4096, 4096)
	data := []byte("hello, battery-backed world")
	if err := r.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := r.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestWriteSpanningPages(t *testing.T) {
	r, _ := newTestRegion(t, 4*4096, 4096)
	data := make([]byte, 4096+100)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := int64(4096 - 50) // starts 50 bytes before a page boundary
	if err := r.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := r.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spanning write corrupted data")
	}
	// Pages 0, 1, 2 were touched by the write.
	pt := r.PageTable()
	for p := mmu.PageID(0); p <= 2; p++ {
		if !pt.IsDirty(p) {
			t.Errorf("page %d not dirty after spanning write", p)
		}
	}
	if pt.IsDirty(3) {
		t.Error("page 3 dirty without being written")
	}
}

func TestWriteFaultsOnProtectedPage(t *testing.T) {
	r, _ := newTestRegion(t, 4*4096, 4096)
	pt := r.PageTable()
	pt.Protect(1)
	faults := 0
	pt.SetFaultHandler(func(p mmu.PageID) {
		faults++
		pt.Unprotect(p)
	})
	if err := r.WriteAt([]byte{1, 2, 3}, 4096+10); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("faults = %d, want 1", faults)
	}
}

func TestWriteErrorOnUnresolvedFault(t *testing.T) {
	r, _ := newTestRegion(t, 4*4096, 4096)
	r.PageTable().Protect(0)
	if err := r.WriteAt([]byte{1}, 0); err == nil {
		t.Fatal("write to protected page without handler succeeded")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	r, _ := newTestRegion(t, 2*4096, 4096)
	if err := r.WriteAt([]byte{1}, 2*4096); err == nil {
		t.Fatal("write past end succeeded")
	}
	if err := r.ReadAt(make([]byte, 10), -1); err == nil {
		t.Fatal("read at negative offset succeeded")
	}
	if err := r.WriteAt(make([]byte, 4097), 4096); err == nil {
		t.Fatal("write overflowing region succeeded")
	}
}

func TestReadsNeverDirty(t *testing.T) {
	r, _ := newTestRegion(t, 4*4096, 4096)
	buf := make([]byte, 4096)
	if err := r.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if r.PageTable().IsDirty(0) {
		t.Fatal("read dirtied a page")
	}
}

func TestPageDataMatchesContents(t *testing.T) {
	r, _ := newTestRegion(t, 4*4096, 4096)
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	if err := r.WriteAt(payload, 4096); err != nil {
		t.Fatal(err)
	}
	got := r.PageData(1)
	if !bytes.Equal(got, payload) {
		t.Fatal("PageData does not match written contents")
	}
	// Mutating the copy must not affect the region.
	got[0] = 0xFF
	if r.RawPage(1)[0] != 0xAB {
		t.Fatal("PageData returned aliased memory")
	}
}

func TestAccessChargesTime(t *testing.T) {
	r, c := newTestRegion(t, 4*4096, 4096)
	t0 := c.Now()
	if err := r.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	writeCost := c.Now().Sub(t0)
	if writeCost <= 0 {
		t.Fatal("full-page write charged no time")
	}
	t1 := c.Now()
	if err := r.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	smallCost := c.Now().Sub(t1)
	if smallCost >= writeCost {
		t.Fatalf("8-byte write (%v) cost at least as much as 4 KiB write (%v)", smallCost, writeCost)
	}
}

func TestPageOf(t *testing.T) {
	r, _ := newTestRegion(t, 8*4096, 4096)
	cases := []struct {
		off  int64
		want mmu.PageID
	}{{0, 0}, {4095, 0}, {4096, 1}, {5 * 4096, 5}}
	for _, tc := range cases {
		if got := r.PageOf(tc.off); got != tc.want {
			t.Errorf("PageOf(%d) = %d, want %d", tc.off, got, tc.want)
		}
	}
}

// Property: any sequence of in-range writes followed by reads returns what
// was written last at every byte.
func TestWriteReadProperty(t *testing.T) {
	r, _ := newTestRegion(t, 16*4096, 4096)
	shadow := make([]byte, 16*4096)
	f := func(seed uint64, nOps uint8) bool {
		rng := sim.NewRNG(seed)
		for i := 0; i < int(nOps)%40+1; i++ {
			off := rng.Int63n(int64(len(shadow)))
			n := rng.Intn(9000)
			if off+int64(n) > int64(len(shadow)) {
				n = int(int64(len(shadow)) - off)
			}
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(rng.Uint64())
			}
			if err := r.WriteAt(buf, off); err != nil {
				return false
			}
			copy(shadow[off:], buf)
		}
		got := make([]byte, len(shadow))
		if err := r.ReadAt(got, 0); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
