// Package experiments assembles the full systems under test and drives
// every table and figure in the paper's evaluation: the YCSB sweeps over
// dirty budgets (Figs 7–10), the trace analyses (Figs 2–4), the Zipf
// scaling analysis (Fig 5), the technology-growth and battery-sizing
// tables (Fig 1, §2.2), the availability model (§8), and the ablations
// (§6.3 TLB flushing; victim policies; epoch length; queue depth).
//
// Everything here is deterministic: same seed, same numbers.
package experiments

import (
	"fmt"

	"viyojit/internal/baseline"
	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/ycsb"
)

// BudgetFractions are the x-axis of Figs 7–9: the paper sweeps dirty
// budgets of 2–18 GB against a 17.5 GB initial heap, i.e. 11 %…103 %.
var BudgetFractions = []float64{0.11, 0.23, 0.34, 0.46, 0.57, 0.69, 0.80, 0.91, 1.03}

// SummaryFractions are the subset the paper's summary panels (Figs 7f,
// 8f, 10) report.
var SummaryFractions = []float64{0.11, 0.23, 0.46}

// YCSBConfig parameterises one system-under-test execution.
type YCSBConfig struct {
	Workload ycsb.Workload
	// HeapBytes is the initial persistent heap (the paper's 17.5 GB,
	// scaled). The dirty budget is expressed as a fraction of it.
	HeapBytes int64
	// RegionBytes is the total NV-DRAM (the paper's 60 GB, scaled). Must
	// exceed HeapBytes; the surplus models the other tenants' capacity
	// whose protection Viyojit must keep regardless.
	RegionBytes int64
	// RecordCount / OperationCount / ValueSize follow ycsb.Config.
	RecordCount    int
	OperationCount int
	ValueSize      int
	Seed           uint64
	// Epoch, DisableTLBFlush, Policy pass through to core.Config.
	Epoch           sim.Duration
	DisableTLBFlush bool
	Policy          core.VictimPolicy
	// HardwareAssist selects the §5.4 MMU-offload design (no first-write
	// traps; see core.Config.HardwareAssist).
	HardwareAssist bool
	// EWMAWeight overrides the pressure estimator's weight (0 = paper's
	// 0.75).
	EWMAWeight float64
	// TLBEntries overrides the TLB model's capacity (0 = MMU default).
	// The §6.3 ablation runs with a TLB large enough to keep the write
	// working set resident — the regime of servers using huge-page
	// mappings or large second-level TLBs, where translations (and their
	// cached dirty flags) persist and unflushed dirty bits go stale.
	TLBEntries int
	// SSD overrides the backing-device model (zero value = defaults).
	SSD ssd.Config
	// Obs, when set, is the observability registry the run's manager and
	// device record onto — the hook the golden-export determinism tests
	// use. nil leaves the subsystems on their private registries.
	Obs *obs.Registry
}

func (c YCSBConfig) withDefaults() YCSBConfig {
	if c.HeapBytes == 0 {
		c.HeapBytes = DefaultHeapBytes
	}
	if c.RegionBytes == 0 {
		c.RegionBytes = c.HeapBytes * 2
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.RecordCount == 0 {
		// Fill ~70 % of the heap with records: value + key + entry
		// header lands in the next power-of-two class.
		entryBytes := int64(2 * c.ValueSize)
		c.RecordCount = int(c.HeapBytes * 7 / 10 / entryBytes)
	}
	if c.OperationCount == 0 {
		c.OperationCount = 50_000
	}
	return c
}

// DefaultHeapBytes stands in for the paper's 17.5 GB initial heap. All
// results are reported against budget *fractions* of the heap, so the
// absolute scale cancels (DESIGN.md §5).
const DefaultHeapBytes = 32 << 20

// Point is one measured (budget, workload) cell of Figs 7–9.
type Point struct {
	System           string // "viyojit" or "nv-dram"
	Workload         string
	DirtyBudgetPages int
	BudgetFraction   float64
	Result           ycsb.Result
	// WriteRateMBps is Fig 9's metric: bytes copied to the SSD during
	// the run (including the end-of-experiment full flush, as the paper
	// notes) divided by the run duration.
	WriteRateMBps float64
	// CopyRateMBps is the run-phase component alone (proactive + forced
	// cleaning traffic, excluding the final heap flush). At the paper's
	// 10M-operation scale the two are close; at this repository's short
	// runs the final flush dominates at large budgets, so the split keeps
	// the mechanism visible (see EXPERIMENTS.md).
	CopyRateMBps float64
	// Manager statistics (zero for the baseline).
	ManagerStats core.Stats
	FaultsTaken  uint64
	// SSD accounting for the §7 reduction ablation.
	SSDLogicalBytes uint64
	SSDReduction    ssd.ReductionStats
}

// ThroughputOverheadPercent returns the throughput loss of p relative to
// the baseline point base, in percent (Fig 7f's metric).
func ThroughputOverheadPercent(p, base Point) float64 {
	if base.Result.Throughput == 0 {
		return 0
	}
	return (1 - p.Result.Throughput/base.Result.Throughput) * 100
}

// LatencyOverheadPercent returns the mean-latency increase of p's primary
// operation relative to base, in percent (Fig 8f's metric).
func LatencyOverheadPercent(p, base Point, op ycsb.OpKind) float64 {
	b := base.Result.LatencyOf(op).Mean()
	if b == 0 {
		return 0
	}
	v := p.Result.LatencyOf(op).Mean()
	return (float64(v)/float64(b) - 1) * 100
}

// BudgetPages converts a budget fraction of the heap into pages.
func BudgetPages(cfg YCSBConfig, fraction float64) int {
	cfg = cfg.withDefaults()
	pages := int(float64(cfg.HeapBytes) * fraction / float64(nvdram.DefaultPageSize))
	if pages < 1 {
		pages = 1
	}
	return pages
}

// RunViyojit builds a Viyojit-managed system with the given dirty budget
// and runs the workload. The returned Point carries throughput, latency
// histograms, SSD write rate, and manager statistics.
func RunViyojit(cfg YCSBConfig, dirtyBudgetPages int) (Point, error) {
	cfg = cfg.withDefaults()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: cfg.RegionBytes, TLBEntries: cfg.TLBEntries})
	if err != nil {
		return Point{}, err
	}
	dev := ssd.New(clock, events, cfg.SSD)
	dev.AttachObs(cfg.Obs)
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{
		DirtyBudgetPages: dirtyBudgetPages,
		Epoch:            cfg.Epoch,
		DisableTLBFlush:  cfg.DisableTLBFlush,
		Policy:           cfg.Policy,
		HardwareAssist:   cfg.HardwareAssist,
		EWMAWeight:       cfg.EWMAWeight,
		Obs:              cfg.Obs,
	})
	if err != nil {
		return Point{}, err
	}
	mapping, err := mgr.Map("redis-heap", cfg.HeapBytes)
	if err != nil {
		return Point{}, err
	}
	store, err := newStore(mapping)
	if err != nil {
		return Point{}, err
	}
	target := ycsb.Target{Store: store, Clock: clock, Pump: mgr.Pump}

	ycfg := ycsb.Config{
		Workload:       cfg.Workload,
		RecordCount:    cfg.RecordCount,
		OperationCount: cfg.OperationCount,
		ValueSize:      cfg.ValueSize,
		Seed:           cfg.Seed,
	}
	if err := ycsb.Load(ycfg, target); err != nil {
		return Point{}, err
	}

	// Fig 9 counts data copied out during the run plus the final
	// heap flush, so snapshot the SSD byte counter after the load.
	bytesBefore := dev.Stats().BytesWritten
	res, err := ycsb.Run(ycfg, target)
	if err != nil {
		return Point{}, err
	}
	runElapsed := res.Elapsed
	bytesRunOnly := dev.Stats().BytesWritten - bytesBefore
	mgr.FlushAll()
	bytesCopied := dev.Stats().BytesWritten - bytesBefore

	p := Point{
		System:           "viyojit",
		Workload:         cfg.Workload.Name,
		DirtyBudgetPages: dirtyBudgetPages,
		BudgetFraction:   float64(dirtyBudgetPages) * nvdram.DefaultPageSize / float64(cfg.HeapBytes),
		Result:           res,
		ManagerStats:     mgr.Stats(),
		FaultsTaken:      region.PageTable().Stats().Faults,
	}
	p.SSDLogicalBytes = dev.Stats().BytesWritten
	p.SSDReduction = dev.ReductionStats()
	if runElapsed > 0 {
		p.WriteRateMBps = float64(bytesCopied) / (1 << 20) / runElapsed.Seconds()
		p.CopyRateMBps = float64(bytesRunOnly) / (1 << 20) / runElapsed.Seconds()
	}
	if err := mgr.VerifyDurability(); err != nil {
		return Point{}, fmt.Errorf("experiments: durability violated after %s run: %w", cfg.Workload.Name, err)
	}
	mgr.Close()
	return p, nil
}

// RunBaseline builds the full-battery NV-DRAM system and runs the same
// workload: Fig 7/8's horizontal reference lines.
func RunBaseline(cfg YCSBConfig) (Point, error) {
	cfg = cfg.withDefaults()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: cfg.RegionBytes})
	if err != nil {
		return Point{}, err
	}
	dev := ssd.New(clock, events, cfg.SSD)
	mgr, err := baseline.NewManager(clock, events, region, dev)
	if err != nil {
		return Point{}, err
	}
	mapping, err := mgr.Map("redis-heap", cfg.HeapBytes)
	if err != nil {
		return Point{}, err
	}
	store, err := newStore(mapping)
	if err != nil {
		return Point{}, err
	}
	target := ycsb.Target{Store: store, Clock: clock, Pump: mgr.Pump}

	ycfg := ycsb.Config{
		Workload:       cfg.Workload,
		RecordCount:    cfg.RecordCount,
		OperationCount: cfg.OperationCount,
		ValueSize:      cfg.ValueSize,
		Seed:           cfg.Seed,
	}
	if err := ycsb.Load(ycfg, target); err != nil {
		return Point{}, err
	}
	res, err := ycsb.Run(ycfg, target)
	if err != nil {
		return Point{}, err
	}
	return Point{
		System:         "nv-dram",
		Workload:       cfg.Workload.Name,
		BudgetFraction: 1.0,
		Result:         res,
	}, nil
}
