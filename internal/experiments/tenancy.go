package experiments

import (
	"fmt"
	"io"

	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/tenancy"
)

// TenancyResult compares a static half-and-half battery split against the
// §6.3 pooled allocation under an asymmetric (bursty + quiet) tenant
// pair.
type TenancyResult struct {
	// Forced cleans suffered by the bursty tenant (writes that blocked
	// on the SSD because its budget was exhausted).
	StaticForcedCleans uint64
	PooledForcedCleans uint64
	// Fault-path waiting time of the bursty tenant.
	StaticFaultWait sim.Duration
	PooledFaultWait sim.Duration
	// Final grants under pooling (the multiplexing at work).
	PooledBurstyGrant int
	PooledQuietGrant  int
	Rebalances        uint64
}

// tenantStack is one tenant's region + manager on a shared simulation.
type tenantStack struct {
	region *nvdram.Region
	mgr    *core.Manager
}

func newTenantStack(clock *sim.Clock, events *sim.Queue, pages, budget int) (*tenantStack, error) {
	region, err := nvdram.New(clock, nvdram.Config{Size: int64(pages) * nvdram.DefaultPageSize})
	if err != nil {
		return nil, err
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		return nil, err
	}
	return &tenantStack{region: region, mgr: mgr}, nil
}

// driveTenants runs the asymmetric workload: the bursty tenant writes in
// heavy phases separated by idle ones; the quiet tenant writes a trickle.
// Returns after `steps` one-millisecond steps.
func driveTenants(clock *sim.Clock, events *sim.Queue, bursty, quiet *tenantStack, seed uint64, steps int) error {
	rng := sim.NewRNG(seed)
	const pages = 1024
	bp, qp := 0, 0
	for step := 0; step < steps; step++ {
		inBurst := (step/20)%2 == 0 // 20 ms on, 20 ms off
		writesThisStep := 1
		if inBurst {
			writesThisStep = 12
		}
		for i := 0; i < writesThisStep; i++ {
			p := bp % pages
			if rng.Intn(3) > 0 { // mostly fresh pages during bursts
				bp++
			}
			if err := bursty.region.WriteAt([]byte{byte(step + i + 1)}, int64(p)*nvdram.DefaultPageSize); err != nil {
				return err
			}
		}
		// Quiet tenant: one small write per step.
		if err := quiet.region.WriteAt([]byte{byte(step + 1)}, int64(qp%pages)*nvdram.DefaultPageSize); err != nil {
			return err
		}
		if step%7 == 0 {
			qp++
		}
		clock.Advance(sim.Millisecond)
		events.RunUntil(clock, clock.Now())
	}
	return nil
}

// RunTenancyExperiment measures the statistical-multiplexing benefit:
// the same workload pair under a static split and under the pooled,
// pressure-driven allocation.
func RunTenancyExperiment(seed uint64, steps int) (TenancyResult, error) {
	const (
		tenantPages = 1024
		totalBudget = 256
		floor       = 32
	)
	if steps == 0 {
		steps = 400
	}
	var res TenancyResult

	// Static: each tenant owns half the battery forever.
	{
		clock := sim.NewClock()
		events := sim.NewQueue()
		bursty, err := newTenantStack(clock, events, tenantPages, totalBudget/2)
		if err != nil {
			return res, err
		}
		quiet, err := newTenantStack(clock, events, tenantPages, totalBudget/2)
		if err != nil {
			return res, err
		}
		if err := driveTenants(clock, events, bursty, quiet, seed, steps); err != nil {
			return res, err
		}
		res.StaticForcedCleans = bursty.mgr.Stats().ForcedCleans
		res.StaticFaultWait = bursty.mgr.Stats().FaultWaitTotal
	}

	// Pooled: the same total battery, reallocated by pressure.
	{
		clock := sim.NewClock()
		events := sim.NewQueue()
		bursty, err := newTenantStack(clock, events, tenantPages, totalBudget/2)
		if err != nil {
			return res, err
		}
		quiet, err := newTenantStack(clock, events, tenantPages, totalBudget/2)
		if err != nil {
			return res, err
		}
		pool, err := tenancy.NewPool(clock, events, totalBudget, 5*sim.Millisecond)
		if err != nil {
			return res, err
		}
		tb, err := pool.Attach("bursty", bursty.mgr, floor)
		if err != nil {
			return res, err
		}
		tq, err := pool.Attach("quiet", quiet.mgr, floor)
		if err != nil {
			return res, err
		}
		if err := driveTenants(clock, events, bursty, quiet, seed, steps); err != nil {
			return res, err
		}
		res.PooledForcedCleans = bursty.mgr.Stats().ForcedCleans
		res.PooledFaultWait = bursty.mgr.Stats().FaultWaitTotal
		res.PooledBurstyGrant = tb.Granted()
		res.PooledQuietGrant = tq.Granted()
		res.Rebalances = pool.Stats().Rebalances
		pool.Close()
	}
	return res, nil
}

// FprintTenancy writes the multiplexing comparison.
func FprintTenancy(w io.Writer, r TenancyResult) {
	fmt.Fprintln(w, "§6.3 extension: battery as a schedulable resource (bursty + quiet tenants)")
	fmt.Fprintf(w, "%-28s %14s %14s\n", "", "Static split", "Pooled")
	fmt.Fprintf(w, "%-28s %14d %14d\n", "Bursty forced cleans", r.StaticForcedCleans, r.PooledForcedCleans)
	fmt.Fprintf(w, "%-28s %14v %14v\n", "Bursty fault-wait time", r.StaticFaultWait, r.PooledFaultWait)
	fmt.Fprintf(w, "final grants: bursty %d pages, quiet %d pages after %d rebalances\n",
		r.PooledBurstyGrant, r.PooledQuietGrant, r.Rebalances)
}
