package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"viyojit/internal/sim"
	"viyojit/internal/trace"
	"viyojit/internal/ycsb"
)

// testOps keeps the integration tests fast while preserving shapes.
const testOps = 15_000

func TestViyojitMatchesPaperShapeAcrossWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	type band struct{ min, max float64 }
	// Calibration bands around the paper's Fig 7 summary at an 11 %
	// budget: 25 % for YCSB-A down to 7 % for the read-heavy workloads.
	bands := map[string]band{
		"YCSB-A": {10, 35},
		"YCSB-B": {3, 15},
		"YCSB-C": {2, 12},
		"YCSB-D": {2, 15},
		"YCSB-F": {10, 35},
	}
	overheads := map[string]float64{}
	for _, w := range ycsb.StandardWorkloads() {
		cfg := YCSBConfig{Workload: w, Seed: 1, OperationCount: testOps}
		base, err := RunBaseline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := RunViyojit(cfg, BudgetPages(cfg, 0.11))
		if err != nil {
			t.Fatal(err)
		}
		ov := ThroughputOverheadPercent(p, base)
		overheads[w.Name] = ov
		b := bands[w.Name]
		if ov < b.min || ov > b.max {
			t.Errorf("%s overhead at 11%% budget = %.1f%%, want in [%v, %v]", w.Name, ov, b.min, b.max)
		}
		// The tail latency of the primary op must sit above the baseline
		// at every budget (paper Fig 8).
		op := w.PrimaryOp
		if p.Result.LatencyOf(op).Quantile(0.99) <= base.Result.LatencyOf(op).Quantile(0.99) {
			t.Errorf("%s: Viyojit p99 not above baseline", w.Name)
		}
	}
	// Write-heavy workloads must hurt more than read-heavy ones.
	if overheads["YCSB-A"] <= overheads["YCSB-C"] {
		t.Errorf("YCSB-A overhead (%.1f%%) not above YCSB-C (%.1f%%)", overheads["YCSB-A"], overheads["YCSB-C"])
	}
	if overheads["YCSB-F"] <= overheads["YCSB-B"] {
		t.Errorf("YCSB-F overhead (%.1f%%) not above YCSB-B (%.1f%%)", overheads["YCSB-F"], overheads["YCSB-B"])
	}
}

func TestOverheadShrinksWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	cfg := YCSBConfig{Workload: ycsb.WorkloadA, Seed: 1, OperationCount: testOps}
	base, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = 1e9
	for _, f := range []float64{0.11, 0.46, 1.03} {
		p, err := RunViyojit(cfg, BudgetPages(cfg, f))
		if err != nil {
			t.Fatal(err)
		}
		ov := ThroughputOverheadPercent(p, base)
		if ov > prev+2 { // small tolerance for noise
			t.Errorf("overhead at %.0f%% budget (%.1f%%) exceeds smaller budget's (%.1f%%)", f*100, ov, prev)
		}
		prev = ov
	}
	if prev > 6 {
		t.Errorf("overhead at 103%% budget = %.1f%%, want near baseline", prev)
	}
}

func TestWriteRateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	// Fig 9: write-heavy workloads copy more to the SSD than read-heavy
	// ones, and the rates stay within what a modern SSD sustains.
	cfgA := YCSBConfig{Workload: ycsb.WorkloadA, Seed: 1, OperationCount: testOps}
	cfgC := YCSBConfig{Workload: ycsb.WorkloadC, Seed: 1, OperationCount: testOps}
	a, err := RunViyojit(cfgA, BudgetPages(cfgA, 0.11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunViyojit(cfgC, BudgetPages(cfgC, 0.11))
	if err != nil {
		t.Fatal(err)
	}
	if a.WriteRateMBps <= c.WriteRateMBps {
		t.Errorf("YCSB-A write rate (%.1f MB/s) not above YCSB-C (%.1f MB/s)", a.WriteRateMBps, c.WriteRateMBps)
	}
	if a.WriteRateMBps > 2048 {
		t.Errorf("write rate %.1f MB/s exceeds device bandwidth", a.WriteRateMBps)
	}
}

func TestFig10OverheadShrinksWithHeapScale(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	rows, err := RunFig10(SweepOptions{
		Workloads:      []ycsb.Workload{ycsb.WorkloadA},
		OperationCount: testOps,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Compare each fraction's overhead across the two scales. At laptop
	// scale the effect is small (see EXPERIMENTS.md), so assert the
	// direction with a half-point tolerance at the paper's lowest
	// highlighted fraction.
	byScale := map[int64]map[float64]float64{}
	for _, r := range rows {
		if byScale[r.HeapBytes] == nil {
			byScale[r.HeapBytes] = map[float64]float64{}
		}
		byScale[r.HeapBytes][r.BudgetFraction] = r.OverheadPercent
	}
	if len(byScale) != 2 {
		t.Fatalf("expected 2 heap scales, got %d", len(byScale))
	}
	var small, large int64 = 1 << 62, 0
	for hb := range byScale {
		if hb < small {
			small = hb
		}
		if hb > large {
			large = hb
		}
	}
	if byScale[large][0.11] > byScale[small][0.11]+0.5 {
		t.Errorf("11%% overhead grew with heap scale: %v MiB → %.1f%%, %v MiB → %.1f%%",
			small>>20, byScale[small][0.11], large>>20, byScale[large][0.11])
	}
}

func TestTLBAblationShowsPrecisionLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	rows, err := RunTLBAblation(SweepOptions{
		Fractions:      []float64{0.11},
		OperationCount: 60_000,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// The mechanism must show: stale dirty bits cause extra faults and
	// extra cleaning traffic. (The throughput magnitude is implementation
	// dependent — see EXPERIMENTS.md.)
	if r.WithoutFlushFaults <= r.WithFlushFaults {
		t.Errorf("faults without flush (%d) not above with flush (%d)", r.WithoutFlushFaults, r.WithFlushFaults)
	}
	if r.WithoutFlushCleans <= r.WithFlushCleans {
		t.Errorf("cleans without flush (%d) not above with flush (%d)", r.WithoutFlushCleans, r.WithFlushCleans)
	}
}

func TestPolicyAblationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	rows, err := RunPolicyAblation(SweepOptions{OperationCount: testOps, Seed: 1}, 0.11)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PolicyRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	// The adversarial MRU policy must be clearly worst.
	if byName["mru-update"].ThroughputKOps >= byName["lru-update"].ThroughputKOps*0.95 {
		t.Errorf("mru-update (%.1fK) not clearly below lru-update (%.1fK)",
			byName["mru-update"].ThroughputKOps, byName["lru-update"].ThroughputKOps)
	}
	if byName["mru-update"].Faults <= byName["lru-update"].Faults {
		t.Errorf("mru-update faults (%d) not above lru-update (%d)",
			byName["mru-update"].Faults, byName["lru-update"].Faults)
	}
}

func TestBatteryRetune(t *testing.T) {
	r, err := RunBatteryRetune(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReducedBudget >= r.InitialBudget {
		t.Errorf("budget did not shrink: %d -> %d", r.InitialBudget, r.ReducedBudget)
	}
	if r.DirtyAfter > r.ReducedBudget {
		t.Errorf("dirty %d exceeds retuned budget %d", r.DirtyAfter, r.ReducedBudget)
	}
	if r.RetuneCleans == 0 {
		t.Error("no synchronous retune cleans")
	}
	if !r.SurvivedOnHalf {
		t.Error("power failure on halved battery lost data")
	}
}

func TestSweepAndPrinters(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	s, err := RunSweep(QuickSweepOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Workloads) != 2 || len(s.Workloads[0].Points) != 3 {
		t.Fatalf("sweep shape wrong: %d workloads", len(s.Workloads))
	}
	if s.find("YCSB-A") == nil || s.find("nope") != nil {
		t.Fatal("sweep find broken")
	}
	var buf bytes.Buffer
	FprintFig7(&buf, s)
	FprintFig8(&buf, s)
	FprintFig9(&buf, s)
	for _, want := range []string{"Figure 7", "Figure 8", "Figure 9", "YCSB-A", "Summary"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
}

func TestStaticFigurePrinters(t *testing.T) {
	var buf bytes.Buffer
	if err := FprintFig1(&buf); err != nil {
		t.Fatal(err)
	}
	FprintBatterySizing(&buf)
	FprintFig5(&buf)
	if err := FprintAvailability(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := RunBatteryRetune(2)
	if err != nil {
		t.Fatal(err)
	}
	FprintBatteryRetune(&buf, r)
	for _, want := range []string{"Figure 1", "Battery sizing", "Figure 5", "availability", "retuning"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("static output missing %q", want)
		}
	}
}

func TestTracePrinters(t *testing.T) {
	if testing.Short() {
		t.Skip("trace generation is moderately slow")
	}
	apps, err := trace.Applications(1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	FprintFig2(&buf, apps)
	FprintFig3(&buf, apps)
	FprintFig4(&buf, apps)
	out := buf.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4", "Cosmos", "Azure blob storage"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q", want)
		}
	}
}

func TestParamAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	opts := SweepOptions{OperationCount: 8_000, Seed: 1}
	epochs, err := RunEpochAblation(opts, 0.11, []sim.Duration{sim.Millisecond, 4 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 2 || epochs[0].ThroughputKOps <= 0 {
		t.Fatalf("epoch ablation rows: %+v", epochs)
	}
	depths, err := RunQueueDepthAblation(opts, 0.11, []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(depths) != 2 || depths[1].ThroughputKOps <= 0 {
		t.Fatalf("depth ablation rows: %+v", depths)
	}
	var buf bytes.Buffer
	FprintParamRows(&buf, "epoch", epochs)
	FprintTLBAblation(&buf, []TLBAblationRow{{BudgetFraction: 0.11}})
	FprintPolicyAblation(&buf, []PolicyRow{{Policy: "lru-update"}})
	FprintFig10(&buf, []Fig10Row{{Workload: "YCSB-A"}})
	if buf.Len() == 0 {
		t.Fatal("printer output empty")
	}
}

func TestRunViyojitDeterministic(t *testing.T) {
	cfg := YCSBConfig{Workload: ycsb.WorkloadA, Seed: 9, OperationCount: 5_000}
	a, err := RunViyojit(cfg, BudgetPages(cfg, 0.23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunViyojit(cfg, BudgetPages(cfg, 0.23))
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Throughput != b.Result.Throughput || a.FaultsTaken != b.FaultsTaken {
		t.Fatal("same-seed runs diverged")
	}
}

func TestBudgetPages(t *testing.T) {
	cfg := YCSBConfig{HeapBytes: 32 << 20}
	if got := BudgetPages(cfg, 0.5); got != 4096 {
		t.Fatalf("BudgetPages(0.5 of 32 MiB) = %d, want 4096", got)
	}
	if got := BudgetPages(cfg, 0.0000001); got != 1 {
		t.Fatalf("tiny fraction should clamp to 1 page, got %d", got)
	}
}

func TestHWAssistReducesOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	rows, err := RunHWAssistAblation(SweepOptions{
		Fractions:      []float64{0.11},
		OperationCount: testOps,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// §5.4's claim: offloading to the MMU removes first-write traps, so
	// throughput rises and the tail shrinks at low budgets.
	if r.HWKOps <= r.SWKOps {
		t.Errorf("hardware assist (%.1fK) not above software (%.1fK)", r.HWKOps, r.SWKOps)
	}
	if r.HWP99 >= r.SWP99 {
		t.Errorf("hardware p99 (%v) not below software (%v)", r.HWP99, r.SWP99)
	}
	if r.HWInterrupts >= r.SWFaults {
		t.Errorf("hardware interrupts (%d) not far below software faults (%d)", r.HWInterrupts, r.SWFaults)
	}
}

func TestGranularityComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	small, err := RunGranularityComparison(1, 64, 1500)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunGranularityComparison(1, 4096, 1500)
	if err != nil {
		t.Fatal(err)
	}
	// §7's prediction: byte granularity needs much less battery and SSD
	// traffic for small writes, and the advantage vanishes at page-size
	// writes.
	if small.BatteryRatio > 0.5 {
		t.Errorf("64B battery ratio = %.2f, want ≪ 1", small.BatteryRatio)
	}
	if small.TrafficRatio > 0.3 {
		t.Errorf("64B traffic ratio = %.2f, want ≪ 1", small.TrafficRatio)
	}
	if big.BatteryRatio < 0.9 {
		t.Errorf("4KiB battery ratio = %.2f, want ≈ 1", big.BatteryRatio)
	}
	if small.BatteryRatio >= big.BatteryRatio {
		t.Error("battery advantage did not shrink with write size")
	}
}

func TestTenancyMultiplexingHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	r, err := RunTenancyExperiment(1, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Pooling must reduce the bursty tenant's budget stalls versus the
	// static half-split of the same battery.
	if r.PooledForcedCleans >= r.StaticForcedCleans {
		t.Errorf("pooled forced cleans (%d) not below static (%d)", r.PooledForcedCleans, r.StaticForcedCleans)
	}
	if r.PooledFaultWait >= r.StaticFaultWait {
		t.Errorf("pooled fault wait (%v) not below static (%v)", r.PooledFaultWait, r.StaticFaultWait)
	}
	if r.PooledBurstyGrant <= r.PooledQuietGrant {
		t.Errorf("pool did not shift budget toward the bursty tenant: %d vs %d", r.PooledBurstyGrant, r.PooledQuietGrant)
	}
	if r.Rebalances == 0 {
		t.Error("no rebalances recorded")
	}
}

func TestSSDReductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	rows, err := RunSSDReductionAblation(SweepOptions{OperationCount: testOps, Seed: 1}, 0.11)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]ReductionRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if byLabel["plain"].TransferRatio != 1.0 {
		t.Errorf("plain ratio = %v", byLabel["plain"].TransferRatio)
	}
	if byLabel["dedup"].TransferRatio >= 1.0 || byLabel["dedup"].DedupHits == 0 {
		t.Errorf("dedup saved nothing: %+v", byLabel["dedup"])
	}
	if byLabel["compress"].TransferRatio >= byLabel["dedup"].TransferRatio {
		t.Errorf("compression (%v) not stronger than dedup (%v) on structured values",
			byLabel["compress"].TransferRatio, byLabel["dedup"].TransferRatio)
	}
	if byLabel["both"].TransferRatio > byLabel["compress"].TransferRatio+0.01 {
		t.Errorf("both (%v) worse than compression alone (%v)",
			byLabel["both"].TransferRatio, byLabel["compress"].TransferRatio)
	}
}

func TestEWMAAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	rows, err := RunEWMAAblation(SweepOptions{OperationCount: 8_000, Seed: 1}, 0.11, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ThroughputKOps <= 0 || r.P99 <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
}

func TestWriteSweepJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	opts := QuickSweepOptions()
	opts.OperationCount = 4000
	s, err := RunSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var decoded SweepJSON
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 2 workloads × (1 baseline + 3 budget points).
	if len(decoded.Points) != 8 {
		t.Fatalf("exported %d points, want 8", len(decoded.Points))
	}
	for _, p := range decoded.Points {
		if p.ThroughputKOps <= 0 || p.Workload == "" {
			t.Fatalf("degenerate point: %+v", p)
		}
		if len(p.Latencies) == 0 {
			t.Fatalf("point without latencies: %+v", p)
		}
	}
}
