package experiments

import (
	"viyojit/internal/kvstore"
	"viyojit/internal/pheap"
)

// mappingStore is the pheap.Store shape both managers' mappings satisfy.
type mappingStore interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

// newStore formats a persistent heap on the mapping and creates a KV
// store sized like the paper's Redis: one bucket per expected ~4 records.
func newStore(mapping mappingStore) (*kvstore.Store, error) {
	heap, err := pheap.Format(mapping)
	if err != nil {
		return nil, err
	}
	buckets := int(mapping.Size() / 8192)
	if buckets < 64 {
		buckets = 64
	}
	return kvstore.Create(heap, buckets)
}
