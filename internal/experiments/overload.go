package experiments

import (
	"fmt"
	"io"

	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/serve"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/ycsb"
)

// OverloadConfig parameterises the goodput-vs-offered-load experiment:
// the serving front-end is driven open-loop at multiples of its own
// measured saturation throughput, and the curve must plateau (shedding)
// instead of collapsing.
type OverloadConfig struct {
	Workload ycsb.Workload
	// HeapBytes / RegionBytes follow YCSBConfig (zero = defaults).
	HeapBytes   int64
	RegionBytes int64
	// DirtyBudgetPages is the manager's budget; 0 selects 11 % of the
	// heap — the paper's headline configuration, where cleaning
	// pressure is visible.
	DirtyBudgetPages int
	RecordCount      int
	OperationCount   int
	ValueSize        int
	Seed             uint64
	// Clients is the client-goroutine count; 0 selects 8.
	Clients int
	// Deadline is the per-request virtual deadline in open-loop runs;
	// 0 selects 2 ms.
	Deadline sim.Duration
	// LowPriorityFraction of open-loop requests are sheddable-first;
	// 0 selects 0.2.
	LowPriorityFraction float64
	// Multipliers are the offered loads as fractions of measured
	// saturation; nil selects {0.25, 0.5, 1, 1.5, 2}.
	Multipliers []float64
	// Serve tunes the front-end (zero = serve defaults).
	Serve serve.Config
	// SSD overrides the backing-device model.
	SSD ssd.Config
	// Obs, when set, is the observability registry the point's manager,
	// front-end, and device record onto. nil leaves them on their
	// private registries.
	Obs *obs.Registry
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.HeapBytes == 0 {
		c.HeapBytes = DefaultHeapBytes / 4
	}
	if c.RegionBytes == 0 {
		c.RegionBytes = c.HeapBytes * 2
	}
	if c.DirtyBudgetPages == 0 {
		c.DirtyBudgetPages = int(float64(c.HeapBytes) * 0.11 / float64(nvdram.DefaultPageSize))
		if c.DirtyBudgetPages < 1 {
			c.DirtyBudgetPages = 1
		}
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.RecordCount == 0 {
		c.RecordCount = int(c.HeapBytes * 7 / 10 / int64(2*c.ValueSize))
	}
	if c.OperationCount == 0 {
		c.OperationCount = 20_000
	}
	if c.Workload.Name == "" {
		c.Workload = ycsb.WorkloadA
	}
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.Deadline == 0 {
		c.Deadline = 2 * sim.Millisecond
	}
	if c.LowPriorityFraction == 0 {
		c.LowPriorityFraction = 0.2
	}
	if c.Multipliers == nil {
		c.Multipliers = []float64{0.25, 0.5, 1, 1.5, 2}
	}
	return c
}

// OverloadPoint is one measured offered-load cell.
type OverloadPoint struct {
	// Multiplier is the offered load as a fraction of saturation
	// (0 marks the closed-loop saturation run itself).
	Multiplier float64
	ycsb.ConcurrentResult
}

// OverloadResult is the full goodput-vs-offered-load curve.
type OverloadResult struct {
	// Saturation is the closed-loop goodput in ops per virtual second —
	// the denominator of the multipliers.
	Saturation float64
	// PeakGoodput is the best goodput across all open-loop points.
	PeakGoodput float64
	Points      []OverloadPoint
}

// RunOverloadCurve measures saturation closed-loop, then sweeps
// open-loop offered loads. Each point runs on a fresh system so
// residual dirty state never leaks between points.
func RunOverloadCurve(cfg OverloadConfig) (OverloadResult, error) {
	cfg = cfg.withDefaults()
	sat, err := RunOverloadPoint(cfg, 0)
	if err != nil {
		return OverloadResult{}, fmt.Errorf("experiments: saturation run: %w", err)
	}
	if sat.Goodput <= 0 {
		return OverloadResult{}, fmt.Errorf("experiments: saturation run completed nothing")
	}
	res := OverloadResult{Saturation: sat.Goodput}
	res.Points = append(res.Points, OverloadPoint{Multiplier: 0, ConcurrentResult: sat})
	for _, m := range cfg.Multipliers {
		p, err := RunOverloadPoint(cfg, m*sat.Goodput)
		if err != nil {
			return OverloadResult{}, fmt.Errorf("experiments: offered %.2fx: %w", m, err)
		}
		res.Points = append(res.Points, OverloadPoint{Multiplier: m, ConcurrentResult: p})
		if p.Goodput > res.PeakGoodput {
			res.PeakGoodput = p.Goodput
		}
	}
	return res, nil
}

// RunOverloadPoint assembles a fresh Viyojit stack, loads the store
// single-threaded, starts the serving front-end, and drives it with
// concurrent clients at the given offered load (0 = closed loop).
func RunOverloadPoint(cfg OverloadConfig, offered float64) (ycsb.ConcurrentResult, error) {
	cfg = cfg.withDefaults()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: cfg.RegionBytes})
	if err != nil {
		return ycsb.ConcurrentResult{}, err
	}
	dev := ssd.New(clock, events, cfg.SSD)
	dev.AttachObs(cfg.Obs)
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{
		DirtyBudgetPages: cfg.DirtyBudgetPages,
		Obs:              cfg.Obs,
	})
	if err != nil {
		return ycsb.ConcurrentResult{}, err
	}
	mapping, err := mgr.Map("redis-heap", cfg.HeapBytes)
	if err != nil {
		return ycsb.ConcurrentResult{}, err
	}
	store, err := newStore(mapping)
	if err != nil {
		return ycsb.ConcurrentResult{}, err
	}

	ycfg := ycsb.Config{
		Workload:       cfg.Workload,
		RecordCount:    cfg.RecordCount,
		OperationCount: cfg.OperationCount,
		ValueSize:      cfg.ValueSize,
		Seed:           cfg.Seed,
	}
	if err := ycsb.Load(ycfg, ycsb.Target{Store: store, Clock: clock, Pump: mgr.Pump}); err != nil {
		return ycsb.ConcurrentResult{}, err
	}

	scfg := cfg.Serve
	if scfg.Obs == nil {
		scfg.Obs = cfg.Obs
	}
	srv, err := serve.New(clock, events, mgr, store, scfg)
	if err != nil {
		return ycsb.ConcurrentResult{}, err
	}
	if err := srv.Start(); err != nil {
		return ycsb.ConcurrentResult{}, err
	}
	ccfg := ycsb.ConcurrentConfig{
		Config:              ycfg,
		Clients:             cfg.Clients,
		OfferedLoad:         offered,
		LowPriorityFraction: cfg.LowPriorityFraction,
	}
	if offered > 0 {
		ccfg.Deadline = cfg.Deadline
	}
	res, runErr := ycsb.RunConcurrent(ccfg, srv)
	srv.Stop()
	// The dispatch goroutine is gone; this goroutine owns the sim again.
	mgr.Close()
	if runErr != nil {
		return ycsb.ConcurrentResult{}, runErr
	}
	return res, nil
}

// FprintOverload writes the goodput-vs-offered-load table — the
// overload experiment's deliverable.
func FprintOverload(w io.Writer, r OverloadResult) {
	fmt.Fprintf(w, "Overload & shedding: goodput vs offered load (saturation %.1f K-ops/s)\n", r.Saturation/1000)
	fmt.Fprintf(w, "%-9s %9s %9s %8s %8s %8s %8s %8s %9s %9s\n",
		"offered", "ops/s", "goodput", "done", "shedOver", "shedDL", "shedRO", "other", "p50", "p99")
	for _, p := range r.Points {
		label := "closed"
		if p.Multiplier > 0 {
			label = fmt.Sprintf("%.2fx", p.Multiplier)
		}
		fmt.Fprintf(w, "%-9s %9.0f %9.0f %8d %8d %8d %8d %8d %9v %9v\n",
			label, p.Offered, p.Goodput, p.Completed,
			p.ShedOverload, p.ShedDeadline, p.ShedReadOnly, p.OtherErrors+p.Cancelled,
			p.P50, p.P99)
	}
}
