package experiments

import (
	"encoding/json"
	"io"

	"viyojit/internal/ycsb"
)

// JSON export of a sweep, for plotting pipelines (gnuplot/matplotlib
// readers of the figure data). The schema is purpose-built and stable:
// one object per (workload, budget) cell plus the workload's baseline.

// LatencyJSON is one operation's latency summary in microseconds.
type LatencyJSON struct {
	Op    string  `json:"op"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_us"`
	P50   float64 `json:"p50_us"`
	P90   float64 `json:"p90_us"`
	P99   float64 `json:"p99_us"`
	P999  float64 `json:"p999_us"`
}

// PointJSON is one measured cell.
type PointJSON struct {
	System          string        `json:"system"`
	Workload        string        `json:"workload"`
	BudgetPages     int           `json:"budget_pages"`
	BudgetFraction  float64       `json:"budget_fraction"`
	ThroughputKOps  float64       `json:"throughput_kops"`
	OverheadPercent float64       `json:"overhead_percent"`
	WriteRateMBps   float64       `json:"write_rate_mbps"`
	CopyRateMBps    float64       `json:"copy_rate_mbps"`
	Faults          uint64        `json:"faults"`
	ForcedCleans    uint64        `json:"forced_cleans"`
	ProactiveCleans uint64        `json:"proactive_cleans"`
	Latencies       []LatencyJSON `json:"latencies"`
}

// SweepJSON is the export root.
type SweepJSON struct {
	Figure string      `json:"figure"`
	Points []PointJSON `json:"points"`
}

func latencies(r ycsb.Result) []LatencyJSON {
	var out []LatencyJSON
	for _, op := range []ycsb.OpKind{ycsb.OpRead, ycsb.OpUpdate, ycsb.OpInsert, ycsb.OpReadModifyWrite} {
		h := r.LatencyOf(op)
		if h.Count() == 0 {
			continue
		}
		s := h.Snapshot()
		out = append(out, LatencyJSON{
			Op:    op.String(),
			Count: s.Count,
			Mean:  s.Mean.Microseconds(),
			P50:   s.P50.Microseconds(),
			P90:   s.P90.Microseconds(),
			P99:   s.P99.Microseconds(),
			P999:  s.P999.Microseconds(),
		})
	}
	return out
}

func pointJSON(p Point, base Point) PointJSON {
	return PointJSON{
		System:          p.System,
		Workload:        p.Workload,
		BudgetPages:     p.DirtyBudgetPages,
		BudgetFraction:  p.BudgetFraction,
		ThroughputKOps:  p.Result.ThroughputKOps(),
		OverheadPercent: ThroughputOverheadPercent(p, base),
		WriteRateMBps:   p.WriteRateMBps,
		CopyRateMBps:    p.CopyRateMBps,
		Faults:          p.FaultsTaken,
		ForcedCleans:    p.ManagerStats.ForcedCleans,
		ProactiveCleans: p.ManagerStats.ProactiveCleans,
		Latencies:       latencies(p.Result),
	}
}

// WriteSweepJSON serialises the full sweep (baselines included) as
// indented JSON.
func WriteSweepJSON(w io.Writer, s *Sweep) error {
	out := SweepJSON{Figure: "ycsb-budget-sweep (figs 7-9)"}
	for _, ws := range s.Workloads {
		out.Points = append(out.Points, pointJSON(ws.Baseline, ws.Baseline))
		for _, p := range ws.Points {
			out.Points = append(out.Points, pointJSON(p, ws.Baseline))
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
