package experiments

import (
	"fmt"

	"viyojit/internal/obs"
	"viyojit/internal/sim"
	"viyojit/internal/ycsb"
)

// SweepOptions parameterises the Fig 7/8/9 budget sweep. One sweep's
// runs feed all three figures, exactly as one set of experiments does in
// the paper.
type SweepOptions struct {
	// Workloads to run; nil selects the paper's five (A, B, C, D, F).
	Workloads []ycsb.Workload
	// Fractions of the initial heap to sweep the dirty budget over; nil
	// selects BudgetFractions (11 %…103 %).
	Fractions []float64
	// OperationCount per run; 0 selects 50 000.
	OperationCount int
	// HeapBytes scales the initial heap; 0 selects DefaultHeapBytes.
	HeapBytes int64
	Seed      uint64
	// Epoch and DisableTLBFlush pass through (ablations).
	Epoch           sim.Duration
	DisableTLBFlush bool
	// Obs, when set, is the registry every Viyojit run in the sweep
	// records onto (counters accumulate across runs).
	Obs *obs.Registry
}

func (o SweepOptions) withDefaults() SweepOptions {
	if o.Workloads == nil {
		o.Workloads = ycsb.StandardWorkloads()
	}
	if o.Fractions == nil {
		o.Fractions = BudgetFractions
	}
	return o
}

// QuickSweepOptions returns a reduced sweep (three fractions, two
// workloads, fewer ops) for tests and -short benchmarks.
func QuickSweepOptions() SweepOptions {
	return SweepOptions{
		Workloads:      []ycsb.Workload{ycsb.WorkloadA, ycsb.WorkloadC},
		Fractions:      SummaryFractions,
		OperationCount: 15_000,
		Seed:           1,
	}
}

// WorkloadSweep is one workload's row of the sweep: its baseline plus one
// point per budget fraction.
type WorkloadSweep struct {
	Workload ycsb.Workload
	Baseline Point
	Points   []Point
}

// Sweep holds the full Fig 7/8/9 data set.
type Sweep struct {
	Options   SweepOptions
	Workloads []WorkloadSweep
}

// RunSweep executes the budget sweep: for each workload, one baseline
// run and one Viyojit run per budget fraction.
func RunSweep(opts SweepOptions) (*Sweep, error) {
	opts = opts.withDefaults()
	sweep := &Sweep{Options: opts}
	for _, w := range opts.Workloads {
		cfg := YCSBConfig{
			Workload:        w,
			HeapBytes:       opts.HeapBytes,
			OperationCount:  opts.OperationCount,
			Seed:            opts.Seed,
			Epoch:           opts.Epoch,
			DisableTLBFlush: opts.DisableTLBFlush,
			Obs:             opts.Obs,
		}
		base, err := RunBaseline(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: baseline %s: %w", w.Name, err)
		}
		ws := WorkloadSweep{Workload: w, Baseline: base}
		for _, frac := range opts.Fractions {
			p, err := RunViyojit(cfg, BudgetPages(cfg, frac))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s at %.0f%%: %w", w.Name, frac*100, err)
			}
			ws.Points = append(ws.Points, p)
		}
		sweep.Workloads = append(sweep.Workloads, ws)
	}
	return sweep, nil
}

// find returns the sweep row for a workload name.
func (s *Sweep) find(name string) *WorkloadSweep {
	for i := range s.Workloads {
		if s.Workloads[i].Workload.Name == name {
			return &s.Workloads[i]
		}
	}
	return nil
}
