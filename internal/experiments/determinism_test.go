package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"viyojit/internal/sim"
	"viyojit/internal/ycsb"
)

// Every experiment entry point must be a pure function of its seed: the
// whole evaluation pipeline replays bit-for-bit, which is what makes a
// reported figure (or a crash point in the fault-injection harness) a
// reproducible artifact. Each test runs an entry point twice with the
// same inputs and requires deeply equal results.

// smallOpts keeps the determinism runs cheap: one workload, one
// fraction, few operations.
func smallOpts() SweepOptions {
	return SweepOptions{
		Workloads:      []ycsb.Workload{ycsb.WorkloadA},
		Fractions:      []float64{0.23},
		OperationCount: 3_000,
		Seed:           7,
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	a, err := RunSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunSweep diverged across same-seed runs")
	}
}

func TestRunBaselineDeterministic(t *testing.T) {
	cfg := YCSBConfig{Workload: ycsb.WorkloadA, Seed: 11, OperationCount: 3_000}
	a, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("RunBaseline diverged across same-seed runs")
	}
}

func TestAblationsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full runs")
	}
	opts := smallOpts()
	run := map[string]func() (any, error){
		"TLB": func() (any, error) { return RunTLBAblation(opts) },
		"policy": func() (any, error) { return RunPolicyAblation(opts, 0.23) },
		"epoch": func() (any, error) {
			return RunEpochAblation(opts, 0.23, []sim.Duration{sim.Millisecond})
		},
		"queue-depth": func() (any, error) { return RunQueueDepthAblation(opts, 0.23, []int{8}) },
		"EWMA":        func() (any, error) { return RunEWMAAblation(opts, 0.23, []float64{0.5}) },
		"HW-assist":   func() (any, error) { return RunHWAssistAblation(opts) },
		"reduction":   func() (any, error) { return RunSSDReductionAblation(opts, 0.23) },
		"fig10":       func() (any, error) { return RunFig10(opts) },
	}
	for name, fn := range run {
		a, err := fn()
		if err != nil {
			t.Fatalf("%s (first): %v", name, err)
		}
		b, err := fn()
		if err != nil {
			t.Fatalf("%s (second): %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s ablation diverged across same-seed runs", name)
		}
	}
}

func TestScenarioRunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full runs")
	}
	run := map[string]func() (any, error){
		"battery-retune": func() (any, error) { return RunBatteryRetune(5) },
		"granularity":    func() (any, error) { return RunGranularityComparison(5, 64, 3_000) },
		"tenancy":        func() (any, error) { return RunTenancyExperiment(5, 40) },
	}
	for name, fn := range run {
		a, err := fn()
		if err != nil {
			t.Fatalf("%s (first): %v", name, err)
		}
		b, err := fn()
		if err != nil {
			t.Fatalf("%s (second): %v", name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s diverged across same-seed runs", name)
		}
	}
}

// TestPrintersDeterministic renders the figure printers twice into
// buffers and requires identical bytes (no map-iteration or timestamp
// leakage into the reports).
func TestPrintersDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep-backed printer comparison")
	}
	s, err := RunSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		var buf bytes.Buffer
		if err := FprintFig1(&buf); err != nil {
			t.Fatal(err)
		}
		FprintBatterySizing(&buf)
		FprintFig5(&buf)
		FprintFig7(&buf, s)
		FprintFig8(&buf, s)
		FprintFig9(&buf, s)
		if err := FprintAvailability(&buf); err != nil {
			t.Fatal(err)
		}
		if err := FprintWarmup(&buf, 3); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("figure printers produced different bytes for the same data")
	}
}

func TestWriteSweepJSONDeterministic(t *testing.T) {
	s, err := RunSweep(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := WriteSweepJSON(&a, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteSweepJSON(&b, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSON export not byte-stable")
	}
}
