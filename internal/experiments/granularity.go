package experiments

import (
	"fmt"
	"io"

	"viyojit/internal/core"
	"viyojit/internal/mondrian"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// GranularityResult compares page-granularity Viyojit against the §7
// Mondrian-style byte-granularity variant under the same small-write
// workload.
type GranularityResult struct {
	WriteSize int
	Writes    int
	// PageDirtyBytes is what the page-granularity battery must cover at
	// peak (max dirty pages × page size); ByteDirtyBytes is the
	// byte-granularity equivalent (max dirty sectors × sector size).
	PageDirtyBytes int64
	ByteDirtyBytes int64
	// SSD bytes written by cleaning + final flush under each granularity.
	PageSSDBytes uint64
	ByteSSDBytes uint64
	// BatteryRatio = ByteDirtyBytes / PageDirtyBytes (the §7 utilisation
	// win; smaller is better).
	BatteryRatio float64
	// TrafficRatio = ByteSSDBytes / PageSSDBytes.
	TrafficRatio float64
}

// RunGranularityComparison drives an identical stream of small scattered
// writes (writeSize bytes each, uniform over the region) through both
// trackers and reports the battery-utilisation and SSD-traffic ratios §7
// predicts to favour byte granularity.
func RunGranularityComparison(seed uint64, writeSize, writes int) (GranularityResult, error) {
	const (
		regionSize = 16 << 20
		budgetFrac = 8 // budget = region/8, in each granularity's units
	)
	res := GranularityResult{WriteSize: writeSize, Writes: writes}

	// Offsets are shared so both systems see the same byte stream.
	offs := make([]int64, writes)
	rng := sim.NewRNG(seed)
	for i := range offs {
		offs[i] = rng.Int63n(regionSize - int64(writeSize))
	}
	buf := make([]byte, writeSize)
	for i := range buf {
		buf[i] = byte(rng.Uint64()) | 1
	}

	// Page granularity: the standard manager.
	{
		clock := sim.NewClock()
		events := sim.NewQueue()
		region, err := nvdram.New(clock, nvdram.Config{Size: regionSize})
		if err != nil {
			return res, err
		}
		dev := ssd.New(clock, events, ssd.Config{})
		mgr, err := core.NewManager(clock, events, region, dev, core.Config{
			DirtyBudgetPages: region.NumPages() / budgetFrac,
		})
		if err != nil {
			return res, err
		}
		for _, off := range offs {
			if err := region.WriteAt(buf, off); err != nil {
				return res, err
			}
			mgr.Pump()
		}
		res.PageDirtyBytes = int64(mgr.Stats().MaxDirtyObserved) * int64(region.PageSize())
		mgr.FlushAll()
		res.PageSSDBytes = dev.Stats().BytesWritten
		mgr.Close()
	}

	// Byte granularity: the Mondrian tracker.
	{
		clock := sim.NewClock()
		events := sim.NewQueue()
		tr, err := mondrian.New(clock, events, mondrian.Config{
			Size:        regionSize,
			BudgetBytes: regionSize / budgetFrac,
		})
		if err != nil {
			return res, err
		}
		for _, off := range offs {
			if err := tr.WriteAt(buf, off); err != nil {
				return res, err
			}
			tr.Pump()
		}
		res.ByteDirtyBytes = int64(tr.Stats().MaxDirtyObserved) * int64(tr.SectorSize())
		tr.FlushAll()
		res.ByteSSDBytes = tr.SSD().Stats().BytesWritten
		tr.Close()
	}

	if res.PageDirtyBytes > 0 {
		res.BatteryRatio = float64(res.ByteDirtyBytes) / float64(res.PageDirtyBytes)
	}
	if res.PageSSDBytes > 0 {
		res.TrafficRatio = float64(res.ByteSSDBytes) / float64(res.PageSSDBytes)
	}
	return res, nil
}

// FprintGranularity writes the §7 comparison across write sizes.
func FprintGranularity(w io.Writer, rows []GranularityResult) {
	fmt.Fprintln(w, "§7 extension: page vs byte (Mondrian) granularity under small scattered writes")
	fmt.Fprintf(w, "%-10s %14s %14s %12s %14s %14s %12s\n",
		"Write", "Page battery", "Byte battery", "Battery×", "Page SSD", "Byte SSD", "Traffic×")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11d KB %11d KB %11.2f %11d KB %11d KB %11.2f\n",
			fmt.Sprintf("%d B", r.WriteSize),
			r.PageDirtyBytes>>10, r.ByteDirtyBytes>>10, r.BatteryRatio,
			r.PageSSDBytes>>10, r.ByteSSDBytes>>10, r.TrafficRatio)
	}
}
