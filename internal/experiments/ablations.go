package experiments

import (
	"fmt"
	"io"

	"viyojit/internal/battery"
	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/ycsb"
)

// TLBAblationRow is one cell of the §6.3 ablation: the same low-budget
// run with and without epoch TLB flushing.
type TLBAblationRow struct {
	BudgetFraction   float64
	WithFlushKOps    float64
	WithoutFlushKOps float64
	// DropPercent is the throughput lost by disabling the flush.
	DropPercent float64
	// Fault counts expose the mechanism: stale dirty bits mis-rank hot
	// pages, which get cleaned and immediately re-fault.
	WithFlushFaults    uint64
	WithoutFlushFaults uint64
	// Cleans similarly rise with imprecision (extra SSD traffic).
	WithFlushCleans    uint64
	WithoutFlushCleans uint64
}

// RunTLBAblation reproduces §6.3's finding: with stale dirty bits the
// least-recently-updated list is imprecise, hot pages get cleaned, and
// throughput collapses at low budgets.
//
// Both arms run with a TLB large enough to keep the write working set
// resident (the huge-page / large-STLB server regime). That is the
// regime where staleness matters: with a small, churning TLB, evictions
// keep re-walking the page table and freshen dirty bits as a side
// effect, masking the precision loss the paper measured.
func RunTLBAblation(opts SweepOptions) ([]TLBAblationRow, error) {
	opts = opts.withDefaults()
	cfg := YCSBConfig{
		Workload:       ycsb.WorkloadA,
		HeapBytes:      opts.HeapBytes,
		OperationCount: opts.OperationCount,
		Seed:           opts.Seed,
		TLBEntries:     1 << 20, // hot set fully resident
	}
	fractions := opts.Fractions
	var rows []TLBAblationRow
	for _, f := range fractions {
		pages := BudgetPages(cfg, f)
		withFlush, err := RunViyojit(cfg, pages)
		if err != nil {
			return nil, err
		}
		cfgNoFlush := cfg
		cfgNoFlush.DisableTLBFlush = true
		withoutFlush, err := RunViyojit(cfgNoFlush, pages)
		if err != nil {
			return nil, err
		}
		row := TLBAblationRow{
			BudgetFraction:     f,
			WithFlushKOps:      withFlush.Result.ThroughputKOps(),
			WithoutFlushKOps:   withoutFlush.Result.ThroughputKOps(),
			WithFlushFaults:    withFlush.FaultsTaken,
			WithoutFlushFaults: withoutFlush.FaultsTaken,
			WithFlushCleans:    withFlush.ManagerStats.CleansCompleted,
			WithoutFlushCleans: withoutFlush.ManagerStats.CleansCompleted,
		}
		if row.WithFlushKOps > 0 {
			row.DropPercent = (1 - row.WithoutFlushKOps/row.WithFlushKOps) * 100
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintTLBAblation writes the §6.3 comparison.
func FprintTLBAblation(w io.Writer, rows []TLBAblationRow) {
	fmt.Fprintln(w, "§6.3 ablation: epoch TLB flushing on/off (YCSB-A, hot-set-resident TLB)")
	fmt.Fprintf(w, "%-10s %12s %14s %8s %18s %18s\n",
		"Budget", "With flush", "Without flush", "Drop", "Faults (w/ → w/o)", "Cleans (w/ → w/o)")
	for _, r := range rows {
		fmt.Fprintf(w, "%9.0f%% %11.1fK %13.1fK %7.1f%% %8d → %7d %8d → %7d\n",
			r.BudgetFraction*100, r.WithFlushKOps, r.WithoutFlushKOps, r.DropPercent,
			r.WithFlushFaults, r.WithoutFlushFaults, r.WithFlushCleans, r.WithoutFlushCleans)
	}
}

// PolicyRow is one victim-policy ablation cell.
type PolicyRow struct {
	Policy         string
	BudgetFraction float64
	ThroughputKOps float64
	ForcedCleans   uint64
	Faults         uint64
}

// RunPolicyAblation compares victim-selection policies at a low budget:
// the design-choice validation DESIGN.md calls out. LRU-update (the
// paper's choice) should beat FIFO and random, and MRU-update should be
// the floor.
func RunPolicyAblation(opts SweepOptions, fraction float64) ([]PolicyRow, error) {
	opts = opts.withDefaults()
	policies := []core.VictimPolicy{
		core.LRUUpdate{}, core.FIFO{}, core.LFU{}, core.NewRandom(opts.Seed), core.MRUUpdate{},
	}
	var rows []PolicyRow
	for _, pol := range policies {
		cfg := YCSBConfig{
			Workload:       ycsb.WorkloadA,
			HeapBytes:      opts.HeapBytes,
			OperationCount: opts.OperationCount,
			Seed:           opts.Seed,
			Policy:         pol,
		}
		p, err := RunViyojit(cfg, BudgetPages(cfg, fraction))
		if err != nil {
			return nil, err
		}
		rows = append(rows, PolicyRow{
			Policy:         pol.Name(),
			BudgetFraction: fraction,
			ThroughputKOps: p.Result.ThroughputKOps(),
			ForcedCleans:   p.ManagerStats.ForcedCleans,
			Faults:         p.FaultsTaken,
		})
	}
	return rows, nil
}

// FprintPolicyAblation writes the victim-policy comparison.
func FprintPolicyAblation(w io.Writer, rows []PolicyRow) {
	fmt.Fprintln(w, "Ablation: victim-selection policy (YCSB-A)")
	fmt.Fprintf(w, "%-12s %10s %12s %14s %10s\n", "Policy", "Budget", "Throughput", "Forced cleans", "Faults")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %9.0f%% %10.1fK %14d %10d\n",
			r.Policy, r.BudgetFraction*100, r.ThroughputKOps, r.ForcedCleans, r.Faults)
	}
}

// ParamRow is one cell of a scalar-parameter ablation.
type ParamRow struct {
	Label          string
	ThroughputKOps float64
	P99            sim.Duration
}

// RunEpochAblation sweeps the epoch length at a low budget. The paper
// fixes 1 ms and reports insensitivity nearby; very long epochs should
// degrade (stale histories, late pressure estimates).
func RunEpochAblation(opts SweepOptions, fraction float64, epochs []sim.Duration) ([]ParamRow, error) {
	opts = opts.withDefaults()
	var rows []ParamRow
	for _, e := range epochs {
		cfg := YCSBConfig{
			Workload:       ycsb.WorkloadA,
			HeapBytes:      opts.HeapBytes,
			OperationCount: opts.OperationCount,
			Seed:           opts.Seed,
			Epoch:          e,
		}
		p, err := RunViyojit(cfg, BudgetPages(cfg, fraction))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParamRow{
			Label:          e.String(),
			ThroughputKOps: p.Result.ThroughputKOps(),
			P99:            p.Result.LatencyOf(ycsb.OpUpdate).Quantile(0.99),
		})
	}
	return rows, nil
}

// RunQueueDepthAblation sweeps the SSD's outstanding-IO bound (the paper
// fixes 16 and reports insensitivity).
func RunQueueDepthAblation(opts SweepOptions, fraction float64, depths []int) ([]ParamRow, error) {
	opts = opts.withDefaults()
	var rows []ParamRow
	for _, d := range depths {
		cfg := YCSBConfig{
			Workload:       ycsb.WorkloadA,
			HeapBytes:      opts.HeapBytes,
			OperationCount: opts.OperationCount,
			Seed:           opts.Seed,
			SSD:            ssd.Config{MaxOutstanding: d},
		}
		p, err := RunViyojit(cfg, BudgetPages(cfg, fraction))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParamRow{
			Label:          fmt.Sprintf("%d IOs", d),
			ThroughputKOps: p.Result.ThroughputKOps(),
			P99:            p.Result.LatencyOf(ycsb.OpUpdate).Quantile(0.99),
		})
	}
	return rows, nil
}

// FprintParamRows writes a scalar ablation table.
func FprintParamRows(w io.Writer, title string, rows []ParamRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "Setting", "Throughput", "p99 update")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.1fK %12v\n", r.Label, r.ThroughputKOps, r.P99)
	}
}

// RetuneReport records the §8 battery-failure demonstration.
type RetuneReport struct {
	InitialBudget  int
	ReducedBudget  int
	DirtyAfter     int
	RetuneCleans   uint64
	SurvivedOnHalf bool
	// Flush accounting from the post-retune power failure.
	FlushTime             sim.Duration
	EnergyUsedJoules      float64
	EnergyAvailableJoules float64
	DurabilityOK          bool
}

// RunBatteryRetune demonstrates §8's battery-cell-failure handling: a
// server loses half its battery mid-run, the manager retunes the dirty
// budget immediately, and a subsequent power failure still survives on
// the reduced energy.
func RunBatteryRetune(seed uint64) (RetuneReport, error) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 64 << 20})
	if err != nil {
		return RetuneReport{}, err
	}
	dev := ssd.New(clock, events, ssd.Config{})
	pm := power.Default()

	// Provision a battery for an initial budget. Following §5.1, the
	// budget derivation uses a *conservative* estimate of the SSD write
	// bandwidth (80 % of nominal here), which leaves the margin that
	// absorbs per-IO latency during the real flush.
	const wantBudget = 2048
	conservativeBW := dev.Config().WriteBandwidth * 8 / 10
	joules := battery.JoulesForPages(pm, wantBudget, conservativeBW, region.Size(), region.PageSize())
	batt := battery.MustNew(battery.Config{CapacityJoules: joules / 0.5, DepthOfDischarge: 0.5})

	budgetForJoules := func(j float64) int {
		bytes := pm.SustainableBytes(j, conservativeBW, region.Size())
		pages := int(bytes / int64(region.PageSize()))
		if pages < 1 {
			pages = 1
		}
		return pages
	}
	budgetFor := func(b *battery.Battery) int { return budgetForJoules(b.EffectiveJoules()) }
	initialBudget := budgetFor(batt)
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: initialBudget})
	if err != nil {
		return RetuneReport{}, err
	}
	// Safe shrink: drain down to what the *projected* capacity covers
	// before the cells actually drop out, so a power failure at any
	// instant — including during the retune — stays within the energy
	// actually available.
	batt.OnShrink(func(_ *battery.Battery, projected float64) {
		_ = mgr.SetDirtyBudgetSync(budgetForJoules(projected))
	})
	batt.OnChange(func(b *battery.Battery) {
		_ = mgr.SetDirtyBudget(budgetFor(b))
	})

	// Dirty pages up to the initial budget.
	rng := sim.NewRNG(seed)
	for i := 0; i < initialBudget; i++ {
		if err := region.WriteAt([]byte{byte(rng.Uint64()) | 1}, int64(i)*int64(region.PageSize())); err != nil {
			return RetuneReport{}, err
		}
		mgr.Pump()
	}

	// Half the battery cells fail.
	if err := batt.SetCapacityJoules(batt.NameplateJoules() / 2); err != nil {
		return RetuneReport{}, err
	}
	report := RetuneReport{
		InitialBudget: initialBudget,
		ReducedBudget: mgr.DirtyBudget(),
		DirtyAfter:    mgr.DirtyCount(),
		RetuneCleans:  mgr.Stats().RetuneCleans,
	}

	// Power failure on the reduced battery must still survive.
	pf := mgr.PowerFail(pm, batt.EffectiveJoules())
	report.FlushTime = pf.FlushTime
	report.EnergyUsedJoules = pf.EnergyUsedJoules
	report.EnergyAvailableJoules = pf.EnergyAvailableJoules
	report.DurabilityOK = mgr.VerifyDurability() == nil
	report.SurvivedOnHalf = pf.Survived && report.DurabilityOK
	return report, nil
}

// FprintBatteryRetune writes the retune demonstration.
func FprintBatteryRetune(w io.Writer, r RetuneReport) {
	fmt.Fprintln(w, "§8 battery-cell failure: runtime dirty-budget retuning")
	fmt.Fprintf(w, "initial budget: %d pages\n", r.InitialBudget)
	fmt.Fprintf(w, "budget after losing half the battery: %d pages\n", r.ReducedBudget)
	fmt.Fprintf(w, "dirty pages after retune: %d (cleaned %d synchronously)\n", r.DirtyAfter, r.RetuneCleans)
	fmt.Fprintf(w, "power failure on reduced battery survived: %v\n", r.SurvivedOnHalf)
}

// HWAssistRow is one cell of the §5.4 comparison: software
// write-protection traps versus the proposed MMU offload.
type HWAssistRow struct {
	BudgetFraction float64
	SWKOps, HWKOps float64
	SWAvg, HWAvg   sim.Duration
	SWP99, HWP99   sim.Duration
	SWFaults       uint64
	HWInterrupts   uint64
}

// RunHWAssistAblation reproduces §5.4's hypothesis: offloading dirty
// counting to the MMU removes first-write traps, so the tail latency the
// software implementation pays (Fig 8's consistently elevated 99th
// percentile) largely disappears, and only the at-budget stalls remain.
func RunHWAssistAblation(opts SweepOptions) ([]HWAssistRow, error) {
	opts = opts.withDefaults()
	var rows []HWAssistRow
	for _, f := range opts.Fractions {
		cfg := YCSBConfig{
			Workload:       ycsb.WorkloadA,
			HeapBytes:      opts.HeapBytes,
			OperationCount: opts.OperationCount,
			Seed:           opts.Seed,
		}
		pages := BudgetPages(cfg, f)
		sw, err := RunViyojit(cfg, pages)
		if err != nil {
			return nil, err
		}
		cfgHW := cfg
		cfgHW.HardwareAssist = true
		hw, err := RunViyojit(cfgHW, pages)
		if err != nil {
			return nil, err
		}
		swLat := sw.Result.LatencyOf(ycsb.OpUpdate)
		hwLat := hw.Result.LatencyOf(ycsb.OpUpdate)
		rows = append(rows, HWAssistRow{
			BudgetFraction: f,
			SWKOps:         sw.Result.ThroughputKOps(),
			HWKOps:         hw.Result.ThroughputKOps(),
			SWAvg:          swLat.Mean(),
			HWAvg:          hwLat.Mean(),
			SWP99:          swLat.Quantile(0.99),
			HWP99:          hwLat.Quantile(0.99),
			SWFaults:       sw.FaultsTaken,
			HWInterrupts:   hw.ManagerStats.Faults,
		})
	}
	return rows, nil
}

// FprintHWAssistAblation writes the §5.4 comparison.
func FprintHWAssistAblation(w io.Writer, rows []HWAssistRow) {
	fmt.Fprintln(w, "§5.4 ablation: software traps vs MMU offload (YCSB-A, update latency)")
	fmt.Fprintf(w, "%-10s %10s %10s %12s %12s %12s %12s\n",
		"Budget", "SW K-ops", "HW K-ops", "SW avg", "HW avg", "SW p99", "HW p99")
	for _, r := range rows {
		fmt.Fprintf(w, "%9.0f%% %10.1f %10.1f %12v %12v %12v %12v\n",
			r.BudgetFraction*100, r.SWKOps, r.HWKOps, r.SWAvg, r.HWAvg, r.SWP99, r.HWP99)
	}
}

// ReductionRow is one cell of the §7 SSD-traffic-reduction comparison.
type ReductionRow struct {
	Label            string
	ThroughputKOps   float64
	TransferRatio    float64 // bus bytes vs the plain configuration
	DedupHits        uint64
	CompressionSaved uint64
}

// RunSSDReductionAblation quantifies §7's final suggestion — "the write
// bandwidth to secondary storage could be further reduced by using
// compression and de-duplication" — by running YCSB-A at a low budget
// with each reduction enabled on the backing device.
func RunSSDReductionAblation(opts SweepOptions, fraction float64) ([]ReductionRow, error) {
	opts = opts.withDefaults()
	configs := []struct {
		label       string
		dedup, comp bool
	}{
		{"plain", false, false},
		{"dedup", true, false},
		{"compress", false, true},
		{"both", true, true},
	}
	var rows []ReductionRow
	var plainBytes uint64
	for _, c := range configs {
		cfg := YCSBConfig{
			Workload:       ycsb.WorkloadA,
			HeapBytes:      opts.HeapBytes,
			OperationCount: opts.OperationCount,
			Seed:           opts.Seed,
			SSD:            ssd.Config{Dedup: c.dedup, Compression: c.comp},
		}
		p, err := RunViyojit(cfg, BudgetPages(cfg, fraction))
		if err != nil {
			return nil, err
		}
		// Logical bytes are identical across configs; the savings counters
		// capture what stayed off the bus.
		logical := p.SSDLogicalBytes
		transferred := logical - p.SSDReduction.DedupBytesSaved - p.SSDReduction.CompressionSaved
		row := ReductionRow{
			Label:            c.label,
			ThroughputKOps:   p.Result.ThroughputKOps(),
			DedupHits:        p.SSDReduction.DedupHits,
			CompressionSaved: p.SSDReduction.CompressionSaved,
		}
		if c.label == "plain" {
			plainBytes = logical
		}
		if plainBytes > 0 {
			row.TransferRatio = float64(transferred) / float64(plainBytes)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FprintSSDReduction writes the §7 reduction comparison.
func FprintSSDReduction(w io.Writer, rows []ReductionRow) {
	fmt.Fprintln(w, "§7 extension: SSD write-traffic reduction (YCSB-A, 11% budget)")
	fmt.Fprintf(w, "%-10s %12s %12s %12s %16s\n", "Device", "Throughput", "Bus bytes×", "Dedup hits", "Compress saved")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10.1fK %12.2f %12d %13d KB\n",
			r.Label, r.ThroughputKOps, r.TransferRatio, r.DedupHits, r.CompressionSaved>>10)
	}
}

// RunEWMAAblation sweeps the dirty-page-pressure weight (the paper fixes
// 0.75 on the current epoch's observation, §5.3). Low weights react
// slowly to bursts (more forced cleans); a weight of 1 forgets history
// entirely.
func RunEWMAAblation(opts SweepOptions, fraction float64, weights []float64) ([]ParamRow, error) {
	opts = opts.withDefaults()
	var rows []ParamRow
	for _, w := range weights {
		cfg := YCSBConfig{
			Workload:       ycsb.WorkloadA,
			HeapBytes:      opts.HeapBytes,
			OperationCount: opts.OperationCount,
			Seed:           opts.Seed,
		}
		cfg.EWMAWeight = w
		p, err := RunViyojit(cfg, BudgetPages(cfg, fraction))
		if err != nil {
			return nil, err
		}
		rows = append(rows, ParamRow{
			Label:          fmt.Sprintf("w=%.2f", w),
			ThroughputKOps: p.Result.ThroughputKOps(),
			P99:            p.Result.LatencyOf(ycsb.OpUpdate).Quantile(0.99),
		})
	}
	return rows, nil
}
