package experiments

import (
	"fmt"
	"io"

	"viyojit/internal/dist"
	"viyojit/internal/power"
	"viyojit/internal/recovery"
	"viyojit/internal/scaling"
	"viyojit/internal/sim"
	"viyojit/internal/trace"
)

// FprintFig1 writes Fig 1's series: DRAM vs lithium relative growth,
// 1990–2020.
func FprintFig1(w io.Writer) error {
	pts, err := scaling.GrowthSeries(1990, 2020, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: DRAM growth is out-pacing Lithium's (relative to 1990)")
	fmt.Fprintf(w, "%-6s %14s %10s %s\n", "Year", "DRAM (GB/RU)", "Li (J/vol)", "")
	for _, p := range pts {
		note := ""
		if p.Projected {
			note = "projected"
		}
		fmt.Fprintf(w, "%-6d %14.1f %10.2f %s\n", p.Year, p.DRAM, p.Lithium, note)
	}
	return nil
}

// FprintBatterySizing writes the §2.2 worked example for a range of
// server DRAM sizes.
func FprintBatterySizing(w io.Writer) {
	pm := power.Default()
	fmt.Fprintln(w, "Battery sizing for full-DRAM backup (§2.2; SSD at 4 GB/s, DoD 50%)")
	fmt.Fprintf(w, "%-8s %10s %10s %12s %14s %10s\n",
		"DRAM", "Flush (s)", "Energy", "Phone-batt×", "Derated vol×", "Cost ($)")
	for _, tb := range []int{1, 2, 4, 8} {
		r := scaling.SizeFullBackup(pm, int64(tb)<<40, 4<<30, 0.5, 1.0)
		fmt.Fprintf(w, "%-8s %10.0f %9.0fKJ %12.1f %14.1f %10.0f\n",
			fmt.Sprintf("%d TB", tb), r.FlushSeconds, r.EnergyJoules/1000,
			r.PhoneBatteryRatio, r.EffectiveRatio, r.EstimatedCostUSD)
	}
}

// TracePercentiles are the write percentiles Figs 3 and 4 report.
var TracePercentiles = []float64{0.90, 0.95, 0.99}

// FprintFig2 writes the worst-interval written fractions per volume for
// 1-minute, 10-minute and 1-hour intervals.
func FprintFig2(w io.Writer, apps []trace.Application) {
	fmt.Fprintln(w, "Figure 2: worst-interval data written (% of volume size)")
	for _, app := range apps {
		fmt.Fprintf(w, "-- %s --\n", app.Name)
		fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "Volume", "One Minute", "Ten Minutes", "One Hour")
		for _, v := range app.Volumes {
			fmt.Fprintf(w, "%-8s %11.2f%% %11.2f%% %11.2f%%\n",
				v.Spec.Name,
				v.WorstIntervalWrittenFraction(60*sim.Second)*100,
				v.WorstIntervalWrittenFraction(600*sim.Second)*100,
				v.WorstIntervalWrittenFraction(trace.Hour)*100)
		}
	}
}

// FprintFig3 writes the pages-as-%-of-touched skew analysis.
func FprintFig3(w io.Writer, apps []trace.Application) {
	fprintSkew(w, apps, "Figure 3: pages needed (% of pages TOUCHED) per write percentile", func(v *trace.Volume) []float64 {
		return v.SkewTouched(TracePercentiles)
	})
}

// FprintFig4 writes the pages-as-%-of-total skew analysis.
func FprintFig4(w io.Writer, apps []trace.Application) {
	fprintSkew(w, apps, "Figure 4: pages needed (% of TOTAL pages) per write percentile", func(v *trace.Volume) []float64 {
		return v.SkewTotal(TracePercentiles)
	})
}

func fprintSkew(w io.Writer, apps []trace.Application, title string, metric func(*trace.Volume) []float64) {
	fmt.Fprintln(w, title)
	for _, app := range apps {
		fmt.Fprintf(w, "-- %s --\n", app.Name)
		fmt.Fprintf(w, "%-8s %10s %10s %10s\n", "Volume", "90th %-ile", "95th %-ile", "99th %-ile")
		for _, v := range app.Volumes {
			f := metric(v)
			fmt.Fprintf(w, "%-8s %9.1f%% %9.1f%% %9.1f%%\n", v.Spec.Name, f[0]*100, f[1]*100, f[2]*100)
		}
	}
}

// Fig5ItemCounts are the page-count x-axis of Fig 5.
var Fig5ItemCounts = []int64{10_000, 100_000, 1_000_000, 10_000_000}

// FprintFig5 writes the Zipf coverage-shrinkage analysis.
func FprintFig5(w io.Writer) {
	series := dist.ZipfCoverageSeries(Fig5ItemCounts, dist.ZipfianConstant, TracePercentiles)
	fmt.Fprintln(w, "Figure 5: fraction of pages covering write percentiles under Zipf (θ=0.99)")
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "Total pages", "90th %-ile", "95th %-ile", "99th %-ile")
	for i, n := range Fig5ItemCounts {
		fmt.Fprintf(w, "%-12d %11.2f%% %11.2f%% %11.2f%%\n",
			n, series[0][i].Fraction*100, series[1][i].Fraction*100, series[2][i].Fraction*100)
	}
}

// FprintFig7 writes throughput-vs-budget per workload plus the summary
// panel (overhead at the paper's three highlighted fractions).
func FprintFig7(w io.Writer, s *Sweep) {
	fmt.Fprintln(w, "Figure 7: YCSB throughput vs dirty budget (K-ops/sec)")
	for _, ws := range s.Workloads {
		fmt.Fprintf(w, "-- %s (NV-DRAM baseline: %.1f K-ops/s) --\n", ws.Workload.Name, ws.Baseline.Result.ThroughputKOps())
		fmt.Fprintf(w, "%-10s %10s %12s %10s\n", "Budget", "Pages", "Throughput", "Overhead")
		for _, p := range ws.Points {
			fmt.Fprintf(w, "%9.0f%% %10d %10.1fK %9.1f%%\n",
				p.BudgetFraction*100, p.DirtyBudgetPages,
				p.Result.ThroughputKOps(), ThroughputOverheadPercent(p, ws.Baseline))
		}
	}
	fmt.Fprintln(w, "-- Summary: throughput overhead (%) --")
	fmt.Fprintf(w, "%-10s", "Workload")
	for _, f := range SummaryFractions {
		fmt.Fprintf(w, " %8.0f%%", f*100)
	}
	fmt.Fprintln(w)
	for _, ws := range s.Workloads {
		fmt.Fprintf(w, "%-10s", ws.Workload.Name)
		for _, f := range SummaryFractions {
			if p, ok := pointAt(ws, f); ok {
				fmt.Fprintf(w, " %8.1f%%", ThroughputOverheadPercent(p, ws.Baseline))
			} else {
				fmt.Fprintf(w, " %9s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// FprintFig8 writes average and 99th-percentile latency of each
// workload's primary operation vs budget.
func FprintFig8(w io.Writer, s *Sweep) {
	fmt.Fprintln(w, "Figure 8: primary-operation latency vs dirty budget")
	for _, ws := range s.Workloads {
		op := ws.Workload.PrimaryOp
		b := ws.Baseline.Result.LatencyOf(op)
		fmt.Fprintf(w, "-- %s %s (baseline avg %v, 99%%-ile %v) --\n",
			ws.Workload.Name, op, b.Mean(), b.Quantile(0.99))
		fmt.Fprintf(w, "%-10s %12s %12s\n", "Budget", "Average", "99th %-ile")
		for _, p := range ws.Points {
			l := p.Result.LatencyOf(op)
			fmt.Fprintf(w, "%9.0f%% %12v %12v\n", p.BudgetFraction*100, l.Mean(), l.Quantile(0.99))
		}
	}
	fmt.Fprintln(w, "-- Summary: average latency overhead (%) --")
	fmt.Fprintf(w, "%-10s", "Workload")
	for _, f := range SummaryFractions {
		fmt.Fprintf(w, " %8.0f%%", f*100)
	}
	fmt.Fprintln(w)
	for _, ws := range s.Workloads {
		fmt.Fprintf(w, "%-10s", ws.Workload.Name)
		for _, f := range SummaryFractions {
			if p, ok := pointAt(ws, f); ok {
				fmt.Fprintf(w, " %8.1f%%", LatencyOverheadPercent(p, ws.Baseline, ws.Workload.PrimaryOp))
			} else {
				fmt.Fprintf(w, " %9s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// FprintFig9 writes the average SSD write rate during the run per
// budget. The first number per cell matches the paper's metric (run
// copying plus the final heap flush); the parenthesised number is the
// run-phase cleaning traffic alone, which carries the paper's
// decreasing-with-budget shape at this repository's short run lengths.
func FprintFig9(w io.Writer, s *Sweep) {
	fmt.Fprintln(w, "Figure 9: average SSD write rate, total incl. final flush (run-phase only), MB/s")
	fmt.Fprintf(w, "%-10s", "Budget")
	for _, ws := range s.Workloads {
		fmt.Fprintf(w, " %15s", ws.Workload.Name)
	}
	fmt.Fprintln(w)
	if len(s.Workloads) == 0 {
		return
	}
	for i := range s.Workloads[0].Points {
		fmt.Fprintf(w, "%9.0f%%", s.Workloads[0].Points[i].BudgetFraction*100)
		for _, ws := range s.Workloads {
			fmt.Fprintf(w, " %7.1f (%5.1f)", ws.Points[i].WriteRateMBps, ws.Points[i].CopyRateMBps)
		}
		fmt.Fprintln(w)
	}
}

// pointAt finds the sweep point closest to a budget fraction (within one
// percentage point).
func pointAt(ws WorkloadSweep, fraction float64) (Point, bool) {
	for _, p := range ws.Points {
		d := p.BudgetFraction - fraction
		if d < 0.01 && d > -0.01 {
			return p, true
		}
	}
	return Point{}, false
}

// Fig10Row is one (workload, heap scale, fraction) cell of Fig 10.
type Fig10Row struct {
	Workload        string
	HeapBytes       int64
	BudgetFraction  float64
	OverheadPercent float64
}

// RunFig10 runs the heap-scaling experiment: the same budget *fractions*
// against a base heap and an 8× heap (standing in for the paper's 17.5
// vs 52.5 GB), for YCSB A, B, C and F (D overflows the region at scale,
// as in the paper). Overheads should shrink — if only slightly at laptop
// scale — at the larger size; EXPERIMENTS.md discusses the magnitude.
func RunFig10(opts SweepOptions) ([]Fig10Row, error) {
	opts = opts.withDefaults()
	heap := opts.HeapBytes
	if heap == 0 {
		heap = 8 << 20 // smaller base so the 8× point stays affordable
	}
	var rows []Fig10Row
	for _, w := range opts.Workloads {
		if w.Name == "YCSB-D" {
			continue // grows past the region at scale, as in the paper
		}
		for _, scale := range []int64{1, 8} {
			ops := opts.OperationCount
			if ops == 0 {
				ops = 20_000
			}
			// Scale the operation count with the heap so both scales sit
			// at the same operations-per-page operating point. (The paper
			// kept 10 M ops for both sizes, but its datasets are three
			// orders of magnitude larger than ours, so both of its runs
			// sit in the hot-mass-dominated regime; at laptop scale the
			// fixed-ops variant conflates dataset growth with
			// coupon-collector exploration.)
			cfg := YCSBConfig{
				Workload:       w,
				HeapBytes:      heap * scale,
				OperationCount: ops * int(scale),
				Seed:           opts.Seed,
			}
			base, err := RunBaseline(cfg)
			if err != nil {
				return nil, err
			}
			for _, f := range SummaryFractions {
				p, err := RunViyojit(cfg, BudgetPages(cfg, f))
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig10Row{
					Workload:        w.Name,
					HeapBytes:       heap * scale,
					BudgetFraction:  f,
					OverheadPercent: ThroughputOverheadPercent(p, base),
				})
			}
		}
	}
	return rows, nil
}

// FprintFig10 writes the heap-scaling comparison.
func FprintFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10: throughput overhead (%) across heap scales at equal budget fractions")
	fmt.Fprintf(w, "%-10s %12s %10s %10s\n", "Workload", "Heap", "Budget", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %9d MiB %9.0f%% %9.1f%%\n",
			r.Workload, r.HeapBytes>>20, r.BudgetFraction*100, r.OverheadPercent)
	}
}

// FprintWarmup writes the §8 on-demand start-up comparison for one
// representative volume.
func FprintWarmup(w io.Writer, seed uint64) error {
	v, err := trace.Generate(trace.VolumeSpec{
		Name:                   "warmup-demo",
		SizeBytes:              64 << 20,
		WorstHourWriteFraction: 0.10,
		Skew:                   trace.SkewZipf,
		Theta:                  0.9,
		TouchedFraction:        0.5,
	}, trace.Hour, seed)
	if err != nil {
		return err
	}
	rep, err := recovery.WarmupComparison(v, 3<<30, 100*sim.Microsecond)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "§8 start-up: sequential reload vs on-demand faulting (64 MiB volume, 3 GB/s reads)")
	fmt.Fprintf(w, "sequential reload ready after: %v\n", rep.SequentialReady)
	fmt.Fprintf(w, "on-demand first request served after: %v (gain %v)\n", rep.OnDemandFirstAccess, rep.AvailabilityGain)
	fmt.Fprintf(w, "on-demand penalty until warm: %v across %d of %d accesses\n",
		rep.OnDemandPenalty, rep.PenalisedAccesses, rep.TotalAccesses)
	return nil
}

// FprintAvailability writes the §8 reboot-time comparison.
func FprintAvailability(w io.Writer) error {
	fmt.Fprintln(w, "§8 availability: shutdown flush time, full DRAM vs bounded dirty set (SSD 4 GB/s)")
	fmt.Fprintf(w, "%-8s %12s %16s %16s %8s\n", "DRAM", "Budget", "Full shutdown", "Bounded", "Speedup")
	for _, c := range []struct {
		dram, budget int64
	}{
		{4 << 40, 64 << 30},
		{4 << 40, 256 << 30},
		{1 << 40, 64 << 30},
	} {
		r, err := recovery.Availability(c.dram, c.budget, 4<<30, 4<<30)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s %9d GB %16v %16v %7.1fx\n",
			fmt.Sprintf("%d TB", c.dram>>40), c.budget>>30,
			r.FullShutdownFlush, r.BoundedShutdownFlush, r.SpeedUp)
	}
	return nil
}
