// Package ptx provides atomic, durable transactions over NV-DRAM — the
// third application class the paper's introduction motivates (persistent
// transactional memories: NV-Heaps, Mnemosyne, NVML; its refs [24, 26,
// 30, 58, 59]). Viyojit guarantees that bytes written to NV-DRAM survive
// power failure; ptx adds all-or-nothing semantics on top with classic
// undo logging:
//
//   - the store is partitioned into an undo log (a wal.Log) and a data
//     area;
//   - inside Update, the first write to each range appends the range's
//     OLD bytes to the undo log before the in-place write;
//   - commit resets the log; abort (or crash) rolls the undo records
//     back in reverse order.
//
// A power failure at ANY point leaves the data area either fully
// pre-transaction (log replayed backwards on Open) or fully
// post-transaction (log already reset) — never a torn mix.
package ptx

import (
	"encoding/binary"
	"errors"
	"fmt"

	"viyojit/internal/wal"
)

// Store is the NV-DRAM surface (same shape as pheap.Store).
type Store interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

// subStore exposes a byte range of a Store as its own Store.
type subStore struct {
	base Store
	off  int64
	size int64
}

func (s *subStore) Size() int64 { return s.size }

func (s *subStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("ptx: sub-store range [%d,%d) outside %d", off, off+int64(len(p)), s.size)
	}
	return s.base.ReadAt(p, s.off+off)
}

func (s *subStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > s.size {
		return fmt.Errorf("ptx: sub-store range [%d,%d) outside %d", off, off+int64(len(p)), s.size)
	}
	return s.base.WriteAt(p, s.off+off)
}

// Heap is a transactional persistent data area.
type Heap struct {
	data *subStore
	log  *wal.Log
}

// ErrTxTooLarge is returned when a transaction's undo records overflow
// the log partition.
var ErrTxTooLarge = errors.New("ptx: transaction exceeds undo-log capacity")

// Create partitions the store into logBytes of undo log followed by the
// data area, and initialises both.
func Create(store Store, logBytes int64) (*Heap, error) {
	if logBytes < 8192 {
		return nil, fmt.Errorf("ptx: log partition %d bytes too small", logBytes)
	}
	if logBytes >= store.Size() {
		return nil, fmt.Errorf("ptx: log partition %d consumes the whole store (%d)", logBytes, store.Size())
	}
	logStore := &subStore{base: store, off: 0, size: logBytes}
	l, err := wal.Create(logStore)
	if err != nil {
		return nil, err
	}
	return &Heap{
		data: &subStore{base: store, off: logBytes, size: store.Size() - logBytes},
		log:  l,
	}, nil
}

// Open reattaches after a restart. If the undo log holds records, a
// transaction was in flight when power failed: the records are rolled
// back in reverse order, restoring the pre-transaction image, and the
// log is reset.
func Open(store Store, logBytes int64) (*Heap, error) {
	if logBytes >= store.Size() {
		return nil, fmt.Errorf("ptx: log partition %d consumes the whole store (%d)", logBytes, store.Size())
	}
	logStore := &subStore{base: store, off: 0, size: logBytes}
	l, err := wal.Open(logStore)
	if err != nil {
		return nil, err
	}
	h := &Heap{
		data: &subStore{base: store, off: logBytes, size: store.Size() - logBytes},
		log:  l,
	}
	if err := h.rollback(); err != nil {
		return nil, err
	}
	return h, nil
}

// DataSize returns the transactional data area's size.
func (h *Heap) DataSize() int64 { return h.data.Size() }

// undo record payload: [off u64][old bytes].
func encodeUndo(off int64, old []byte) []byte {
	buf := make([]byte, 8+len(old))
	binary.LittleEndian.PutUint64(buf, uint64(off))
	copy(buf[8:], old)
	return buf
}

func decodeUndo(p []byte) (int64, []byte, error) {
	if len(p) < 8 {
		return 0, nil, fmt.Errorf("ptx: corrupt undo record of %d bytes", len(p))
	}
	return int64(binary.LittleEndian.Uint64(p)), p[8:], nil
}

// rollback applies the undo log in reverse and resets it.
func (h *Heap) rollback() error {
	var undos [][]byte
	if err := h.log.Replay(func(_ uint64, payload []byte) error {
		undos = append(undos, append([]byte(nil), payload...))
		return nil
	}); err != nil {
		return err
	}
	for i := len(undos) - 1; i >= 0; i-- {
		off, old, err := decodeUndo(undos[i])
		if err != nil {
			return err
		}
		if err := h.data.WriteAt(old, off); err != nil {
			return err
		}
	}
	return h.log.Reset()
}

// Tx is one in-flight transaction. It is only valid inside Update.
type Tx struct {
	h    *Heap
	dead bool
}

// Read fills p from the data area (reads see the transaction's own
// writes, since writes are in place).
func (tx *Tx) Read(p []byte, off int64) error {
	if tx.dead {
		return fmt.Errorf("ptx: use of finished transaction")
	}
	return tx.h.data.ReadAt(p, off)
}

// Write stores p at off transactionally: the range's old contents are
// appended to the undo log first.
func (tx *Tx) Write(p []byte, off int64) error {
	if tx.dead {
		return fmt.Errorf("ptx: use of finished transaction")
	}
	if len(p) == 0 {
		return nil
	}
	old := make([]byte, len(p))
	if err := tx.h.data.ReadAt(old, off); err != nil {
		return err
	}
	if _, err := tx.h.log.Append(encodeUndo(off, old)); err != nil {
		if errors.Is(err, wal.ErrFull) {
			return ErrTxTooLarge
		}
		return err
	}
	return tx.h.data.WriteAt(p, off)
}

// Update runs fn atomically: if fn returns nil the writes commit (the
// undo log is reset); if fn returns an error — or the process dies at
// any point — every write rolls back.
func (h *Heap) Update(fn func(tx *Tx) error) error {
	tx := &Tx{h: h}
	err := fn(tx)
	tx.dead = true
	if err != nil {
		if rbErr := h.rollback(); rbErr != nil {
			return fmt.Errorf("ptx: rollback after %v failed: %w", err, rbErr)
		}
		return err
	}
	// Commit: the data writes are already in NV-DRAM; dropping the undo
	// log makes them permanent.
	return h.log.Reset()
}

// View runs fn with read-only access (no log activity).
func (h *Heap) View(fn func(tx *Tx) error) error {
	tx := &Tx{h: h}
	defer func() { tx.dead = true }()
	return fn(tx)
}
