package ptx

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

type memStore struct{ data []byte }

func newMemStore(size int) *memStore { return &memStore{data: make([]byte, size)} }

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(m.data[off:], p)
	return nil
}

const logPart = 64 << 10

func newTestHeap(t testing.TB, size int) (*Heap, *memStore) {
	t.Helper()
	ms := newMemStore(size)
	h, err := Create(ms, logPart)
	if err != nil {
		t.Fatal(err)
	}
	return h, ms
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(newMemStore(1<<20), 100); err == nil {
		t.Fatal("tiny log accepted")
	}
	if _, err := Create(newMemStore(1<<20), 1<<20); err == nil {
		t.Fatal("log consuming whole store accepted")
	}
}

func TestCommitPersists(t *testing.T) {
	h, ms := newTestHeap(t, 1<<20)
	if err := h.Update(func(tx *Tx) error {
		if err := tx.Write([]byte("alpha"), 100); err != nil {
			return err
		}
		return tx.Write([]byte("beta"), 5000)
	}); err != nil {
		t.Fatal(err)
	}
	// Visible through a fresh handle over the same bytes.
	h2, err := Open(ms, logPart)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if err := h2.View(func(tx *Tx) error { return tx.Read(got, 100) }); err != nil {
		t.Fatal(err)
	}
	if string(got) != "alpha" {
		t.Fatalf("committed data = %q", got)
	}
}

func TestAbortRollsBack(t *testing.T) {
	h, _ := newTestHeap(t, 1<<20)
	if err := h.Update(func(tx *Tx) error {
		return tx.Write([]byte("original"), 0)
	}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := h.Update(func(tx *Tx) error {
		if err := tx.Write([]byte("clobbered"), 0); err != nil {
			return err
		}
		// The tx sees its own write...
		probe := make([]byte, 9)
		if err := tx.Read(probe, 0); err != nil {
			return err
		}
		if string(probe) != "clobbered" {
			t.Fatal("tx did not see its own write")
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// ...but the abort restored the old bytes.
	got := make([]byte, 8)
	if err := h.View(func(tx *Tx) error { return tx.Read(got, 0) }); err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("after abort = %q, want original", got)
	}
}

func TestCrashMidTransactionRollsBackOnOpen(t *testing.T) {
	h, ms := newTestHeap(t, 1<<20)
	if err := h.Update(func(tx *Tx) error {
		return tx.Write(bytes.Repeat([]byte{0xAA}, 1000), 0)
	}); err != nil {
		t.Fatal(err)
	}
	// Run a transaction but "crash" before commit: write through the tx
	// machinery, then abandon the heap without Update returning.
	tx := &Tx{h: h}
	if err := tx.Write(bytes.Repeat([]byte{0xBB}, 1000), 0); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write([]byte{0xCC}, 2000); err != nil {
		t.Fatal(err)
	}
	// The raw bytes currently hold the torn state.
	h2, err := Open(ms, logPart) // recovery rolls back
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if err := h2.View(func(tx *Tx) error { return tx.Read(got, 0) }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xAA}, 1000)) {
		t.Fatal("crash recovery did not restore the committed image")
	}
	probe := make([]byte, 1)
	if err := h2.View(func(tx *Tx) error { return tx.Read(probe, 2000) }); err != nil {
		t.Fatal(err)
	}
	if probe[0] != 0 {
		t.Fatal("uncommitted write at 2000 survived recovery")
	}
}

func TestTxTooLarge(t *testing.T) {
	ms := newMemStore(1 << 20)
	h, err := Create(ms, 8192)
	if err != nil {
		t.Fatal(err)
	}
	err = h.Update(func(tx *Tx) error {
		for i := 0; i < 100; i++ {
			if err := tx.Write(make([]byte, 1024), int64(i)*1024); err != nil {
				return err
			}
		}
		return nil
	})
	if !errors.Is(err, ErrTxTooLarge) {
		t.Fatalf("oversized tx: %v", err)
	}
	// And the partial writes rolled back.
	got := make([]byte, 1024)
	if err := h.View(func(tx *Tx) error { return tx.Read(got, 0) }); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("partial oversized tx not rolled back")
		}
	}
}

func TestFinishedTxRejected(t *testing.T) {
	h, _ := newTestHeap(t, 1<<20)
	var leaked *Tx
	if err := h.Update(func(tx *Tx) error {
		leaked = tx
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := leaked.Write([]byte{1}, 0); err == nil {
		t.Fatal("write through finished tx succeeded")
	}
	if err := leaked.Read(make([]byte, 1), 0); err == nil {
		t.Fatal("read through finished tx succeeded")
	}
}

// Property: for any interleaving of committed, aborted, and crashed
// transactions, the data area equals the shadow of committed
// transactions only.
func TestAtomicityProperty(t *testing.T) {
	f := func(seed uint64, nTxs uint8) bool {
		ms := newMemStore(1 << 20)
		h, err := Create(ms, logPart)
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		shadow := make([]byte, h.DataSize())
		for i := 0; i < int(nTxs)%25+1; i++ {
			// Build a candidate set of writes.
			type w struct {
				off  int64
				data []byte
			}
			var writes []w
			for j := 0; j < rng.Intn(5)+1; j++ {
				n := rng.Intn(300) + 1
				off := rng.Int63n(h.DataSize() - int64(n))
				data := make([]byte, n)
				for k := range data {
					data[k] = byte(rng.Uint64()) | 1
				}
				writes = append(writes, w{off, data})
			}
			outcome := rng.Intn(3) // 0 commit, 1 abort, 2 crash
			switch outcome {
			case 0:
				if err := h.Update(func(tx *Tx) error {
					for _, wr := range writes {
						if err := tx.Write(wr.data, wr.off); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return false
				}
				for _, wr := range writes {
					copy(shadow[wr.off:], wr.data)
				}
			case 1:
				abort := errors.New("abort")
				if err := h.Update(func(tx *Tx) error {
					for _, wr := range writes {
						if err := tx.Write(wr.data, wr.off); err != nil {
							return err
						}
					}
					return abort
				}); !errors.Is(err, abort) {
					return false
				}
			case 2:
				// Crash: raw tx writes, then recovery via Open.
				tx := &Tx{h: h}
				for _, wr := range writes {
					if err := tx.Write(wr.data, wr.off); err != nil {
						return false
					}
				}
				h2, err := Open(ms, logPart)
				if err != nil {
					return false
				}
				h = h2
			}
		}
		got := make([]byte, h.DataSize())
		if err := h.View(func(tx *Tx) error { return tx.Read(got, 0) }); err != nil {
			return false
		}
		return bytes.Equal(got, shadow)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
