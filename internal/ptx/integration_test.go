package ptx

import (
	"encoding/binary"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// Transactions on an actual Viyojit mapping: in-place updates and undo
// records both flow through the dirty-budget machinery, power fails
// between transactions, and the reopened heap shows exactly the
// committed state.
func TestTransactionsSurviveViyojitPowerFailure(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := mgr.Map("txheap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	h, err := Create(mapping, 64<<10)
	if err != nil {
		t.Fatal(err)
	}

	// A balance table: 128 accounts × 8 bytes, transfers as atomic txs.
	put := func(tx *Tx, acct int, v uint64) error {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		return tx.Write(b[:], int64(acct)*8)
	}
	get := func(tx *Tx, acct int) (uint64, error) {
		var b [8]byte
		err := tx.Read(b[:], int64(acct)*8)
		return binary.LittleEndian.Uint64(b[:]), err
	}
	if err := h.Update(func(tx *Tx) error {
		for a := 0; a < 128; a++ {
			if err := put(tx, a, 1000); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(7)
	for i := 0; i < 500; i++ {
		from, to := rng.Intn(128), rng.Intn(128)
		if from == to {
			continue // a self-transfer's two writes would alias
		}
		amt := uint64(rng.Intn(50) + 1)
		if err := h.Update(func(tx *Tx) error {
			fb, err := get(tx, from)
			if err != nil {
				return err
			}
			tb, err := get(tx, to)
			if err != nil {
				return err
			}
			if err := put(tx, from, fb-amt); err != nil {
				return err
			}
			return put(tx, to, tb+amt)
		}); err != nil {
			t.Fatal(err)
		}
		mgr.Pump()
	}

	pm := power.Default()
	joules := pm.FlushWatts(region.Size()) * (dev.FlushTimeFor(64) + 5*sim.Millisecond).Seconds()
	if rep := mgr.PowerFail(pm, joules); !rep.Survived {
		t.Fatalf("flush not covered: %+v", rep)
	}
	if err := mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}

	// Reboot and check conservation: total money is invariant under
	// transfers, so the sum proves no transaction tore.
	clock2 := sim.NewClock()
	events2 := sim.NewQueue()
	region2, err := nvdram.New(clock2, nvdram.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < region2.NumPages(); p++ {
		if data, ok := dev.Durable(region2.PageOf(int64(p) * 4096)); ok {
			if err := region2.RestorePage(region2.PageOf(int64(p)*4096), data); err != nil {
				t.Fatal(err)
			}
		}
	}
	dev2 := ssd.New(clock2, events2, ssd.Config{})
	mgr2, err := core.NewManager(clock2, events2, region2, dev2, core.Config{DirtyBudgetPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	mapping2, err := mgr2.Map("txheap", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Open(mapping2, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	if err := h2.View(func(tx *Tx) error {
		for a := 0; a < 128; a++ {
			v, err := get(tx, a)
			if err != nil {
				return err
			}
			total += v
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 128*1000 {
		t.Fatalf("money not conserved across power cycle: %d", total)
	}
}
