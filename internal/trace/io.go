package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"viyojit/internal/sim"
)

// Volume traces serialise to a compact binary format so operators can
// capture real file-system traces externally, convert them, and feed
// them to the analysis tools (cmd/trace-analysis, cmd/provision) and the
// replay example. The format is versioned and self-describing:
//
//	magic  "VIYTRACE"           8 bytes
//	version u32                 (currently 1)
//	name    u16 len + bytes
//	sizeBytes, pageSize, duration, eventCount (u64 each)
//	events: eventCount × (at u64, page u64, bytes u32, flags u8)
//
// All integers are little endian.

const (
	traceMagic   = "VIYTRACE"
	traceVersion = 1
	flagWrite    = 1
)

// WriteTo serialises the volume. It returns the number of bytes written.
func (v *Volume) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(data any) error {
		if err := binary.Write(bw, binary.LittleEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}

	if _, err := bw.WriteString(traceMagic); err != nil {
		return n, err
	}
	n += int64(len(traceMagic))
	if err := write(uint32(traceVersion)); err != nil {
		return n, err
	}
	name := []byte(v.Spec.Name)
	if len(name) > 1<<16-1 {
		return n, fmt.Errorf("trace: volume name %d bytes too long", len(name))
	}
	if err := write(uint16(len(name))); err != nil {
		return n, err
	}
	if _, err := bw.Write(name); err != nil {
		return n, err
	}
	n += int64(len(name))
	header := []uint64{
		uint64(v.Spec.SizeBytes),
		uint64(v.Spec.PageSize),
		uint64(v.Duration),
		uint64(len(v.Events)),
	}
	for _, h := range header {
		if err := write(h); err != nil {
			return n, err
		}
	}
	for _, e := range v.Events {
		if err := write(uint64(e.At)); err != nil {
			return n, err
		}
		if err := write(uint64(e.Page)); err != nil {
			return n, err
		}
		if err := write(uint32(e.Bytes)); err != nil {
			return n, err
		}
		var flags uint8
		if e.Write {
			flags |= flagWrite
		}
		if err := write(flags); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadVolume deserialises a volume written by WriteTo, validating the
// header and every event against the declared geometry.
func ReadVolume(r io.Reader) (*Volume, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q; not a trace file", magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	var nameLen uint16
	if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var size, pageSize, duration, count uint64
	for _, p := range []*uint64{&size, &pageSize, &duration, &count} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if pageSize == 0 || size == 0 || size%pageSize != 0 {
		return nil, fmt.Errorf("trace: corrupt geometry size=%d pageSize=%d", size, pageSize)
	}
	const maxEvents = 1 << 28
	if count > maxEvents {
		return nil, fmt.Errorf("trace: event count %d exceeds sanity bound", count)
	}
	v := &Volume{
		Spec: VolumeSpec{
			Name:      string(name),
			SizeBytes: int64(size),
			PageSize:  int(pageSize),
		},
		Duration: sim.Duration(duration),
		Events:   make([]Event, 0, count),
	}
	totalPages := int64(size / pageSize)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		var at, page uint64
		var bytes uint32
		var flags uint8
		if err := binary.Read(br, binary.LittleEndian, &at); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &page); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &bytes); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return nil, err
		}
		if at < prev {
			return nil, fmt.Errorf("trace: event %d out of time order", i)
		}
		prev = at
		if int64(page) >= totalPages {
			return nil, fmt.Errorf("trace: event %d page %d outside %d-page volume", i, page, totalPages)
		}
		v.Events = append(v.Events, Event{
			At:    sim.Time(at),
			Page:  int64(page),
			Bytes: int(bytes),
			Write: flags&flagWrite != 0,
		})
	}
	return v, nil
}
