package trace

import (
	"testing"

	"viyojit/internal/sim"
)

func mustGenerate(t testing.TB, s VolumeSpec, d sim.Duration, seed uint64) *Volume {
	t.Helper()
	v, err := Generate(s, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGenerateValidation(t *testing.T) {
	bad := []VolumeSpec{
		{Name: "zero-size", WorstHourWriteFraction: 0.1, TouchedFraction: 0.5},
		{Name: "bad-frac", SizeBytes: 1 << 20, WorstHourWriteFraction: 0, TouchedFraction: 0.5},
		{Name: "bad-frac2", SizeBytes: 1 << 20, WorstHourWriteFraction: 1.5, TouchedFraction: 0.5},
		{Name: "bad-touch", SizeBytes: 1 << 20, WorstHourWriteFraction: 0.1, TouchedFraction: 0},
		{Name: "bad-skew", SizeBytes: 1 << 20, WorstHourWriteFraction: 0.1, TouchedFraction: 0.5, Skew: SkewKind(9)},
		{Name: "unaligned", SizeBytes: 4097, WorstHourWriteFraction: 0.1, TouchedFraction: 0.5},
	}
	for _, s := range bad {
		if _, err := Generate(s, Hour, 1); err == nil {
			t.Errorf("Generate(%s) succeeded, want error", s.Name)
		}
	}
	good := spec("ok", 0.1, SkewZipf, 0.9, 0, 0.5)
	if _, err := Generate(good, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestGenerateEventsWellFormed(t *testing.T) {
	v := mustGenerate(t, spec("v", 0.10, SkewZipf, 0.9, 0, 0.5), 2*Hour, 7)
	if len(v.Events) == 0 {
		t.Fatal("no events generated")
	}
	totalPages := v.TotalPages()
	var prev sim.Time
	writes := 0
	for _, e := range v.Events {
		if e.At < prev {
			t.Fatal("events out of time order")
		}
		prev = e.At
		if e.At >= sim.Time(v.Duration) {
			t.Fatalf("event at %v beyond duration %v", e.At, v.Duration)
		}
		if e.Page < 0 || e.Page >= totalPages {
			t.Fatalf("event page %d outside volume of %d pages", e.Page, totalPages)
		}
		if e.Bytes <= 0 {
			t.Fatal("event with non-positive size")
		}
		if e.Write {
			writes++
		}
	}
	if writes == 0 || writes == len(v.Events) {
		t.Fatalf("writes = %d of %d events; want a mix", writes, len(v.Events))
	}
}

func TestWorstHourFractionRoughlyMatchesSpec(t *testing.T) {
	const want = 0.10
	v := mustGenerate(t, spec("v", want, SkewZipf, 0.9, 0, 0.5), 6*Hour, 3)
	got := v.WorstIntervalWrittenFraction(Hour)
	if got < want/2 || got > want*2 {
		t.Fatalf("worst-hour fraction = %v, want ~%v", got, want)
	}
}

func TestIntervalFractionsOrdered(t *testing.T) {
	// Fig 2's structure: shorter intervals carry smaller absolute
	// fractions, but bursts make the minute fraction exceed 1/60 of the
	// hour fraction.
	v := mustGenerate(t, spec("v", 0.12, SkewZipf, 0.9, 0, 0.5), 6*Hour, 11)
	min1 := v.WorstIntervalWrittenFraction(60 * sim.Second)
	min10 := v.WorstIntervalWrittenFraction(600 * sim.Second)
	hour := v.WorstIntervalWrittenFraction(Hour)
	if !(min1 <= min10 && min10 <= hour) {
		t.Fatalf("interval fractions not ordered: %v, %v, %v", min1, min10, hour)
	}
	if min1 < hour/60 {
		t.Fatalf("1-minute fraction %v below uniform share %v; bursts missing", min1, hour/60)
	}
}

func TestSkewZipfConcentrates(t *testing.T) {
	zipf := mustGenerate(t, spec("z", 0.3, SkewZipf, 0.99, 0, 0.5), 4*Hour, 5)
	uniq := mustGenerate(t, spec("u", 0.3, SkewUnique, 0, 0, 0.5), 4*Hour, 5)
	pz := zipf.SkewTouched([]float64{0.90})[0]
	pu := uniq.SkewTouched([]float64{0.90})[0]
	if pz >= pu {
		t.Fatalf("zipf coverage %v not tighter than unique %v", pz, pu)
	}
}

func TestSkewHotMatchesHotFraction(t *testing.T) {
	v := mustGenerate(t, spec("h", 0.5, SkewHot, 0, 0.10, 0.8), 4*Hour, 9)
	// 99% of writes land in 10% of the touched pages, so the 99th
	// percentile coverage should be near 0.1 (Fig 3's Cosmos volume F).
	p99 := v.SkewTouched([]float64{0.99})[0]
	if p99 > 0.25 {
		t.Fatalf("hot-skew 99%% coverage = %v, want ~0.1", p99)
	}
}

func TestSkewTotalBelowTouched(t *testing.T) {
	v := mustGenerate(t, spec("v", 0.2, SkewZipf, 0.9, 0, 0.5), 4*Hour, 13)
	pcts := []float64{0.90, 0.95, 0.99}
	touched := v.SkewTouched(pcts)
	total := v.SkewTotal(pcts)
	for i := range pcts {
		if total[i] > touched[i] {
			t.Fatalf("total-denominator fraction %v exceeds touched %v at pct %v", total[i], touched[i], pcts[i])
		}
	}
	// Both must be monotone in percentile.
	for i := 1; i < len(pcts); i++ {
		if touched[i] < touched[i-1] || total[i] < total[i-1] {
			t.Fatal("coverage not monotone in percentile")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := mustGenerate(t, spec("v", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 17)
	b := mustGenerate(t, spec("v", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 17)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestApplicationsCatalogue(t *testing.T) {
	apps, err := Applications(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 4 {
		t.Fatalf("got %d applications, want 4", len(apps))
	}
	wantVolumes := map[string]int{
		"Azure blob storage":   8,
		"Cosmos":               7,
		"Page rank":            6,
		"Search index serving": 6,
	}
	for _, app := range apps {
		if got := len(app.Volumes); got != wantVolumes[app.Name] {
			t.Errorf("%s has %d volumes, want %d", app.Name, got, wantVolumes[app.Name])
		}
		for _, v := range app.Volumes {
			if len(v.Events) == 0 {
				t.Errorf("%s volume %s has no events", app.Name, v.Spec.Name)
			}
		}
	}
	// Cosmos runs the paper's shorter 3.5-hour window.
	if apps[1].Name != "Cosmos" || apps[1].Duration >= 4*Hour {
		t.Errorf("Cosmos duration = %v, want 3.5h", apps[1].Duration)
	}
}

// The §3 headline: for the majority of volumes, data written within an
// hour is below 15% of the volume.
func TestMajorityUnder15Percent(t *testing.T) {
	apps, err := Applications(1)
	if err != nil {
		t.Fatal(err)
	}
	total, under := 0, 0
	for _, app := range apps {
		for _, v := range app.Volumes {
			total++
			if v.WorstIntervalWrittenFraction(Hour) < 0.15 {
				under++
			}
		}
	}
	if under*2 <= total {
		t.Fatalf("only %d/%d volumes under 15%%; paper expects a majority", under, total)
	}
}

func TestWorstIntervalPanicsOnBadInterval(t *testing.T) {
	v := mustGenerate(t, spec("v", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero interval")
		}
	}()
	v.WorstIntervalWrittenFraction(0)
}

func TestHelperCounters(t *testing.T) {
	v := mustGenerate(t, spec("v", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 1)
	if v.WriteEvents() == 0 {
		t.Fatal("no write events counted")
	}
	if v.TouchedPages() == 0 {
		t.Fatal("no touched pages counted")
	}
	if v.TouchedPages() > int(v.TotalPages()) {
		t.Fatal("touched pages exceed volume pages")
	}
}
