package trace

import (
	"fmt"

	"viyojit/internal/sim"
)

// Application is one of the four data-center applications §3 analyses,
// with its per-machine file-system volumes.
type Application struct {
	Name     string
	Duration sim.Duration
	Volumes  []*Volume
}

// Hour is one hour of virtual time.
const Hour = 3600 * sim.Second

// defaultVolumeSize keeps the synthetic volumes laptop-sized; every Fig
// 2–4 metric is a fraction of volume size, so the scale cancels.
const defaultVolumeSize = 64 << 20

// spec is a terse VolumeSpec constructor for the catalogue below.
func spec(name string, worstHour float64, skew SkewKind, theta, hotFrac, touched float64) VolumeSpec {
	return VolumeSpec{
		Name:                   name,
		SizeBytes:              defaultVolumeSize,
		WorstHourWriteFraction: worstHour,
		Skew:                   skew,
		Theta:                  theta,
		HotFraction:            hotFrac,
		TouchedFraction:        touched,
	}
}

// applicationSpecs is the catalogue: per-volume parameters chosen to
// reproduce the category structure of Figures 2–4 —
//
//   - Azure blob storage (8 volumes): written fractions mostly under
//     15 %/hour; several volumes write mostly unique pages (Fig 3a's
//     high bars), others moderately skewed.
//   - Cosmos (7 volumes, 3.5 h trace): B and C have few, highly skewed
//     writes (category 2, Viyojit's best case); E writes ~80 % of the
//     volume to unique pages (category 4, the worst case); F writes
//     ~70 % but 99 % of its writes hit ~10 % of pages (category 3).
//   - Page rank (6 volumes): up to ~30 %/hour, mixed skew.
//   - Search index serving (6 volumes): under ~16 %/hour, mixed skew.
func applicationSpecs() []struct {
	name     string
	duration sim.Duration
	specs    []VolumeSpec
} {
	return []struct {
		name     string
		duration sim.Duration
		specs    []VolumeSpec
	}{
		{
			name:     "Azure blob storage",
			duration: 24 * Hour,
			specs: []VolumeSpec{
				spec("A", 0.005, SkewUnique, 0, 0, 0.40),
				spec("B", 0.02, SkewZipf, 0.60, 0, 0.50),
				spec("C", 0.04, SkewUnique, 0, 0, 0.45),
				spec("D", 0.13, SkewZipf, 0.90, 0, 0.60),
				spec("E", 0.06, SkewZipf, 0.70, 0, 0.55),
				spec("F", 0.03, SkewUnique, 0, 0, 0.35),
				spec("G", 0.09, SkewZipf, 0.80, 0, 0.65),
				spec("H", 0.015, SkewUnique, 0, 0, 0.30),
			},
		},
		{
			name:     "Cosmos",
			duration: sim.Duration(3.5 * float64(Hour)),
			specs: []VolumeSpec{
				spec("A", 0.05, SkewZipf, 0.80, 0, 0.50),
				spec("B", 0.08, SkewZipf, 0.99, 0, 0.45),
				spec("C", 0.10, SkewZipf, 0.99, 0, 0.50),
				spec("D", 0.30, SkewZipf, 0.70, 0, 0.60),
				spec("E", 0.80, SkewUnique, 0, 0, 0.90),
				spec("F", 0.70, SkewHot, 0, 0.10, 0.80),
				spec("G", 0.20, SkewZipf, 0.90, 0, 0.55),
			},
		},
		{
			name:     "Page rank",
			duration: 24 * Hour,
			specs: []VolumeSpec{
				spec("A", 0.03, SkewZipf, 0.85, 0, 0.45),
				spec("B", 0.25, SkewZipf, 0.75, 0, 0.70),
				spec("C", 0.08, SkewUnique, 0, 0, 0.50),
				spec("D", 0.30, SkewHot, 0, 0.15, 0.75),
				spec("E", 0.12, SkewZipf, 0.90, 0, 0.55),
				spec("F", 0.05, SkewUnique, 0, 0, 0.40),
			},
		},
		{
			name:     "Search index serving",
			duration: 24 * Hour,
			specs: []VolumeSpec{
				spec("A", 0.02, SkewZipf, 0.80, 0, 0.40),
				spec("B", 0.14, SkewZipf, 0.90, 0, 0.60),
				spec("C", 0.06, SkewUnique, 0, 0, 0.45),
				spec("D", 0.16, SkewHot, 0, 0.20, 0.65),
				spec("E", 0.04, SkewZipf, 0.70, 0, 0.35),
				spec("F", 0.10, SkewUnique, 0, 0, 0.55),
			},
		},
	}
}

// Applications generates the full four-application trace suite
// deterministically from seed.
func Applications(seed uint64) ([]Application, error) {
	catalogue := applicationSpecs()
	out := make([]Application, 0, len(catalogue))
	rng := sim.NewRNG(seed)
	for _, app := range catalogue {
		a := Application{Name: app.name, Duration: app.duration}
		for _, vs := range app.specs {
			v, err := Generate(vs, app.duration, rng.Uint64())
			if err != nil {
				return nil, fmt.Errorf("trace: generating %s volume %s: %w", app.name, vs.Name, err)
			}
			a.Volumes = append(a.Volumes, v)
		}
		out = append(out, a)
	}
	return out, nil
}
