// Package trace models the file-system volume traces behind the paper's
// §3 analysis. The original inputs are proprietary Microsoft production
// traces (Azure blob storage, Cosmos, Page rank, Search index serving);
// per the substitution rule, this package generates synthetic per-volume
// event streams parameterised to the four skew categories §3 identifies:
//
//  1. low write fraction, writes mostly to unique pages;
//  2. low write fraction, writes further skewed (the best case for
//     Viyojit);
//  3. high write fraction, writes highly skewed;
//  4. high write fraction, writes to mostly unique pages (the worst
//     case).
//
// The analyses (worst-interval written fraction; pages covering a write
// percentile, relative to touched and to total pages) are the same
// computations Figures 2, 3, and 4 report.
package trace

import (
	"fmt"

	"viyojit/internal/dist"
	"viyojit/internal/sim"
)

// Event is one file-system access in a volume trace.
type Event struct {
	// At is the event time within the trace.
	At sim.Time
	// Page is the logical page in the volume the access touches.
	Page int64
	// Bytes is the access size.
	Bytes int
	// Write distinguishes writes from reads.
	Write bool
}

// SkewKind selects how a volume's writes distribute over its pages.
type SkewKind int

// Skew kinds matching §3's categories.
const (
	// SkewUnique spreads writes over mostly unique pages (log-structured
	// behaviour; §3's conservative assumption).
	SkewUnique SkewKind = iota
	// SkewZipf concentrates writes zipfian-ly with the spec's Theta.
	SkewZipf
	// SkewHot sends 99% of writes to the spec's HotFraction of pages.
	SkewHot
)

// VolumeSpec parameterises one synthetic volume.
type VolumeSpec struct {
	Name string
	// SizeBytes is the volume size.
	SizeBytes int64
	// PageSize is the tracking granularity; 0 selects 4096.
	PageSize int
	// WorstHourWriteFraction is the data written in the busiest hour as
	// a fraction of the volume size — the quantity Fig 2 plots.
	WorstHourWriteFraction float64
	// Skew selects the write distribution.
	Skew SkewKind
	// Theta is the zipf exponent for SkewZipf.
	Theta float64
	// HotFraction is the hot set size for SkewHot.
	HotFraction float64
	// TouchedFraction is the fraction of volume pages touched (read or
	// written) over the whole trace — the denominator of Fig 3.
	TouchedFraction float64
	// ReadWriteRatio is reads per write in the event stream.
	ReadWriteRatio float64
}

// Volume is a generated trace.
type Volume struct {
	Spec     VolumeSpec
	Duration sim.Duration
	Events   []Event
}

// burstCycle shapes the arrival process: each 10-minute window has one
// hot minute at burstHigh× the base rate and nine at burstLow×, averaging
// 1×. This reproduces Fig 2's sublinearity (the worst minute carries far
// more than 1/60 of the worst hour).
const (
	burstHigh = 6.0
	burstLow  = (10.0 - burstHigh) / 9.0
)

// rateMultiplier returns the burst multiplier at time t.
func rateMultiplier(t sim.Time) float64 {
	minute := int64(t) / int64(sim.Second*60)
	if minute%10 == 0 {
		return burstHigh
	}
	return burstLow
}

// Generate builds a volume trace of the given duration.
func Generate(spec VolumeSpec, duration sim.Duration, seed uint64) (*Volume, error) {
	if spec.PageSize == 0 {
		spec.PageSize = 4096
	}
	if spec.SizeBytes <= 0 || spec.SizeBytes%int64(spec.PageSize) != 0 {
		return nil, fmt.Errorf("trace: volume %s size %d not a positive multiple of page size %d", spec.Name, spec.SizeBytes, spec.PageSize)
	}
	if spec.WorstHourWriteFraction <= 0 || spec.WorstHourWriteFraction > 1 {
		return nil, fmt.Errorf("trace: volume %s worst-hour fraction %v outside (0,1]", spec.Name, spec.WorstHourWriteFraction)
	}
	if spec.TouchedFraction <= 0 || spec.TouchedFraction > 1 {
		return nil, fmt.Errorf("trace: volume %s touched fraction %v outside (0,1]", spec.Name, spec.TouchedFraction)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("trace: non-positive duration %v", duration)
	}

	rng := sim.NewRNG(seed)
	totalPages := spec.SizeBytes / int64(spec.PageSize)
	touchedPages := int64(float64(totalPages) * spec.TouchedFraction)
	if touchedPages < 1 {
		touchedPages = 1
	}

	var writeDist dist.Generator
	switch spec.Skew {
	case SkewUnique:
		// Sequential unique pages (log-structured): handled inline.
	case SkewZipf:
		theta := spec.Theta
		if theta == 0 {
			theta = dist.ZipfianConstant
		}
		writeDist = dist.NewScrambledZipfian(rng.Fork(), touchedPages, theta)
	case SkewHot:
		hot := spec.HotFraction
		if hot == 0 {
			hot = 0.1
		}
		writeDist = dist.NewHotSpot(rng.Fork(), touchedPages, hot, 0.99)
	default:
		return nil, fmt.Errorf("trace: volume %s has unknown skew kind %d", spec.Name, spec.Skew)
	}

	// Average write size: mixed 4–64 KiB extents.
	const avgWriteBytes = 24 * 1024
	// The burst cycle averages 1×, and the worst hour carries roughly the
	// average hourly volume (every hour shares the same cycle), so base
	// the rate on the worst-hour fraction directly.
	bytesPerHour := spec.WorstHourWriteFraction * float64(spec.SizeBytes)
	writesPerHour := bytesPerHour / avgWriteBytes
	if writesPerHour < 1 {
		writesPerHour = 1
	}
	baseInterval := sim.Duration(float64(sim.Second*3600) / writesPerHour)

	readRatio := spec.ReadWriteRatio
	if readRatio == 0 {
		readRatio = 2
	}
	readDist := dist.NewUniform(rng.Fork(), touchedPages)

	v := &Volume{Spec: spec, Duration: duration}
	var seq int64 // sequential page cursor for SkewUnique
	now := sim.Time(0)
	for now < sim.Time(duration) {
		// Write event.
		var page int64
		if spec.Skew == SkewUnique {
			page = seq % touchedPages
			seq++
		} else {
			page = writeDist.Next()
		}
		size := (4 + rng.Intn(44)) * 1024 // 4..48 KiB, mean ≈ avgWriteBytes
		v.Events = append(v.Events, Event{At: now, Page: page, Bytes: size, Write: true})

		// Interleaved reads keep the touched-page set realistic.
		nReads := int(readRatio)
		if rng.Float64() < readRatio-float64(nReads) {
			nReads++
		}
		for r := 0; r < nReads; r++ {
			v.Events = append(v.Events, Event{At: now, Page: readDist.Next(), Bytes: 4096, Write: false})
		}

		step := sim.Duration(float64(baseInterval) / rateMultiplier(now))
		if step < 1 {
			step = 1
		}
		now = now.Add(step)
	}
	return v, nil
}

// TotalPages returns the number of pages in the volume.
func (v *Volume) TotalPages() int64 { return v.Spec.SizeBytes / int64(v.Spec.PageSize) }
