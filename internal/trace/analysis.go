package trace

import (
	"fmt"

	"viyojit/internal/dist"
	"viyojit/internal/sim"
)

// WorstIntervalWrittenFraction slices the trace into intervals of the
// given length and returns the worst interval's written bytes as a
// fraction of the volume size — the Fig 2 metric. Each write is treated
// as landing on unique NV-DRAM pages (the paper's conservative,
// log-structured-file-system assumption), so the written data is simply
// the sum of write sizes.
func (v *Volume) WorstIntervalWrittenFraction(interval sim.Duration) float64 {
	if interval <= 0 {
		panic(fmt.Sprintf("trace: non-positive interval %v", interval))
	}
	nIntervals := int(int64(v.Duration)/int64(interval)) + 1
	written := make([]int64, nIntervals)
	for _, e := range v.Events {
		if !e.Write {
			continue
		}
		idx := int(int64(e.At) / int64(interval))
		written[idx] += int64(e.Bytes)
	}
	var worst int64
	for _, w := range written {
		if w > worst {
			worst = w
		}
	}
	frac := float64(worst) / float64(v.Spec.SizeBytes)
	if frac > 1 {
		frac = 1
	}
	return frac
}

// writeCounts tallies writes per logical page and the set of touched
// pages (read or written).
func (v *Volume) writeCounts() (writes map[int64]uint64, touched map[int64]struct{}) {
	writes = make(map[int64]uint64)
	touched = make(map[int64]struct{})
	for _, e := range v.Events {
		touched[e.Page] = struct{}{}
		if e.Write {
			writes[e.Page]++
		}
	}
	return writes, touched
}

// SkewTouched returns, for each percentile, the number of pages needed to
// account for that percentile of all writes as a fraction of the pages
// *touched* during the trace — the Fig 3 metric.
func (v *Volume) SkewTouched(percentiles []float64) []float64 {
	writes, touched := v.writeCounts()
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		out[i] = dist.EmpiricalCoverage(writes, int64(len(touched)), p)
	}
	return out
}

// SkewTotal is SkewTouched with the volume's *total* page count as the
// denominator — the Fig 4 metric (always ≤ the Fig 3 value).
func (v *Volume) SkewTotal(percentiles []float64) []float64 {
	writes, _ := v.writeCounts()
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		out[i] = dist.EmpiricalCoverage(writes, v.TotalPages(), p)
	}
	return out
}

// TouchedPages returns the number of distinct pages read or written.
func (v *Volume) TouchedPages() int {
	_, touched := v.writeCounts()
	return len(touched)
}

// WriteEvents returns the number of write events in the trace.
func (v *Volume) WriteEvents() int {
	n := 0
	for _, e := range v.Events {
		if e.Write {
			n++
		}
	}
	return n
}
