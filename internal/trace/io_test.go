package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestVolumeRoundTrip(t *testing.T) {
	orig := mustGenerate(t, spec("round-trip", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 5)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, buffer holds %d", n, buf.Len())
	}
	got, err := ReadVolume(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Name != orig.Spec.Name || got.Spec.SizeBytes != orig.Spec.SizeBytes ||
		got.Spec.PageSize != orig.Spec.PageSize || got.Duration != orig.Duration {
		t.Fatalf("header mismatch: %+v vs %+v", got.Spec, orig.Spec)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("event counts: %d vs %d", len(got.Events), len(orig.Events))
	}
	for i := range got.Events {
		if got.Events[i] != orig.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, got.Events[i], orig.Events[i])
		}
	}
	// The analyses must agree on the round-tripped volume.
	if a, b := orig.WorstIntervalWrittenFraction(Hour), got.WorstIntervalWrittenFraction(Hour); a != b {
		t.Fatalf("analysis diverged after round trip: %v vs %v", a, b)
	}
}

func TestReadVolumeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOTATRACEFILE_____________",
	}
	for name, data := range cases {
		if _, err := ReadVolume(strings.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadVolumeRejectsCorruptGeometry(t *testing.T) {
	orig := mustGenerate(t, spec("v", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 5)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the size field (right after magic+version+name).
	off := len(traceMagic) + 4 + 2 + len(orig.Spec.Name)
	for i := 0; i < 8; i++ {
		raw[off+i] = 0xFF
	}
	if _, err := ReadVolume(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt geometry accepted")
	}
}

func TestReadVolumeRejectsTruncated(t *testing.T) {
	orig := mustGenerate(t, spec("v", 0.1, SkewZipf, 0.9, 0, 0.5), Hour, 5)
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadVolume(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestReadVolumeRejectsOutOfRangePage(t *testing.T) {
	v := &Volume{
		Spec:     VolumeSpec{Name: "x", SizeBytes: 8192, PageSize: 4096},
		Duration: Hour,
		Events:   []Event{{At: 0, Page: 99, Bytes: 100, Write: true}},
	}
	var buf bytes.Buffer
	if _, err := v.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVolume(&buf); err == nil {
		t.Fatal("out-of-range page accepted")
	}
}
