package trace

import (
	"bytes"
	"testing"
)

// FuzzReadVolume hardens the trace-file parser against corrupt and
// adversarial inputs: it must return an error or a valid volume, never
// panic or allocate unboundedly. Run with `go test -fuzz=FuzzReadVolume`;
// the seeds below also run as regular tests.
func FuzzReadVolume(f *testing.F) {
	// Seed with a valid trace, a truncation, and junk.
	valid := func() []byte {
		v, err := Generate(spec("fuzz", 0.1, SkewZipf, 0.9, 0, 0.5), Hour/4, 1)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := v.WriteTo(&buf); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte("VIYTRACE garbage follows"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := ReadVolume(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted volumes must be internally consistent: the analyses
		// must run without panicking.
		if v.Spec.PageSize <= 0 || v.Spec.SizeBytes <= 0 {
			t.Fatalf("accepted inconsistent volume: %+v", v.Spec)
		}
		_ = v.WorstIntervalWrittenFraction(Hour)
		_ = v.SkewTouched([]float64{0.9})
	})
}
