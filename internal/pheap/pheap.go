// Package pheap is a persistent heap allocator over an NV-DRAM mapping —
// the role Intel's PMEM library plays for the paper's modified Redis
// (§6.1). All allocator metadata lives inside the mapping itself, so
// every allocation, free, and header update is a store into NV-DRAM that
// goes through Viyojit's fault path and dirties pages, exactly like the
// application data. (This is why even YCSB-C, nominally read-only, makes
// the paper's Redis perform stores: heap and record metadata are updated
// on the read path.)
//
// The allocator is a segregated-fit design: power-of-two size classes
// from 32 B to 64 KiB, per-class free lists threaded through the freed
// blocks, and a bump pointer for fresh space. Freed blocks are reused
// within their class but never coalesced; that matches the fixed-record
// workloads the evaluation runs and keeps the persistent layout simple.
//
// Crash consistency of in-flight allocator updates is out of scope, as it
// is in the paper: Viyojit guarantees page durability (the bytes reach
// the SSD), while transactional atomicity above it is the application's
// concern.
package pheap

import (
	"encoding/binary"
	"fmt"
)

// Store is the NV-DRAM surface the heap lives in. core.Mapping and
// baseline.Mapping both satisfy it.
type Store interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

// Ptr is a heap-relative pointer (byte offset of a block's payload).
// The zero Ptr is the persistent equivalent of nil.
type Ptr int64

const (
	magic = 0x56495930_4A495431 // "VIY0JIT1"

	// Size classes: 32, 64, ..., 65536.
	minClassShift = 5
	maxClassShift = 16
	numClasses    = maxClassShift - minClassShift + 1

	// Layout of the heap header at offset 0.
	offMagic   = 0
	offSize    = 8
	offBump    = 16
	offRoot    = 24
	offFree    = 32
	headerSize = offFree + 8*numClasses

	// Each block is prefixed by an 8-byte header: class index | allocated
	// flag.
	blockHeaderSize = 8
	allocatedFlag   = uint64(1) << 63
)

// MaxAlloc is the largest supported allocation.
const MaxAlloc = 1 << maxClassShift

// Heap is a persistent heap over a Store. The struct itself holds no
// state beyond the store handle: everything lives in NV-DRAM, so a Heap
// can be reopened over recovered contents.
type Heap struct {
	store Store
}

// classFor returns the size-class index for an allocation of n bytes.
func classFor(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pheap: alloc of %d bytes", n)
	}
	if n > MaxAlloc {
		return 0, fmt.Errorf("pheap: alloc of %d bytes exceeds maximum %d", n, MaxAlloc)
	}
	c := 0
	size := 1 << minClassShift
	for size < n {
		size <<= 1
		c++
	}
	return c, nil
}

// classSize returns the payload size of class c.
func classSize(c int) int { return 1 << (minClassShift + c) }

// Format initialises a fresh heap across the whole store and returns it.
// Any previous contents are ignored.
func Format(store Store) (*Heap, error) {
	if store.Size() < headerSize+blockHeaderSize+(1<<minClassShift) {
		return nil, fmt.Errorf("pheap: store of %d bytes too small", store.Size())
	}
	h := &Heap{store: store}
	if err := h.writeU64(offMagic, magic); err != nil {
		return nil, err
	}
	if err := h.writeU64(offSize, uint64(store.Size())); err != nil {
		return nil, err
	}
	if err := h.writeU64(offBump, uint64(headerSize)); err != nil {
		return nil, err
	}
	if err := h.writeU64(offRoot, 0); err != nil {
		return nil, err
	}
	for c := 0; c < numClasses; c++ {
		if err := h.writeU64(offFree+int64(8*c), 0); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Open attaches to an existing heap (e.g. after power-failure recovery),
// validating the magic number and recorded size.
func Open(store Store) (*Heap, error) {
	h := &Heap{store: store}
	m, err := h.readU64(offMagic)
	if err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("pheap: bad magic %#x; store is not a formatted heap", m)
	}
	size, err := h.readU64(offSize)
	if err != nil {
		return nil, err
	}
	if int64(size) != store.Size() {
		return nil, fmt.Errorf("pheap: header records %d bytes but store is %d", size, store.Size())
	}
	return h, nil
}

func (h *Heap) readU64(off int64) (uint64, error) {
	var buf [8]byte
	if err := h.store.ReadAt(buf[:], off); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func (h *Heap) writeU64(off int64, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return h.store.WriteAt(buf[:], off)
}

// Alloc allocates n bytes and returns a pointer to the payload. The
// payload's previous contents are undefined (reused blocks keep stale
// bytes; callers overwrite what they use).
func (h *Heap) Alloc(n int) (Ptr, error) {
	c, err := classFor(n)
	if err != nil {
		return 0, err
	}
	// Reuse from the class free list if possible.
	headOff := int64(offFree + 8*c)
	head, err := h.readU64(headOff)
	if err != nil {
		return 0, err
	}
	if head != 0 {
		// Pop: the freed block's payload holds the next-free pointer.
		next, err := h.readU64(int64(head))
		if err != nil {
			return 0, err
		}
		if err := h.writeU64(headOff, next); err != nil {
			return 0, err
		}
		if err := h.writeU64(int64(head)-blockHeaderSize, uint64(c)|allocatedFlag); err != nil {
			return 0, err
		}
		return Ptr(head), nil
	}
	// Bump-allocate fresh space.
	bump, err := h.readU64(offBump)
	if err != nil {
		return 0, err
	}
	need := int64(blockHeaderSize + classSize(c))
	if int64(bump)+need > h.store.Size() {
		return 0, fmt.Errorf("pheap: out of space allocating %d bytes (class %d)", n, classSize(c))
	}
	if err := h.writeU64(offBump, bump+uint64(need)); err != nil {
		return 0, err
	}
	payload := int64(bump) + blockHeaderSize
	if err := h.writeU64(int64(bump), uint64(c)|allocatedFlag); err != nil {
		return 0, err
	}
	return Ptr(payload), nil
}

// blockClass reads and validates the header of the block at p, returning
// its class and allocation state.
func (h *Heap) blockClass(p Ptr) (class int, allocated bool, err error) {
	if p < headerSize+blockHeaderSize {
		return 0, false, fmt.Errorf("pheap: pointer %d below heap base", p)
	}
	hdr, err := h.readU64(int64(p) - blockHeaderSize)
	if err != nil {
		return 0, false, err
	}
	c := int(hdr &^ allocatedFlag)
	if c >= numClasses {
		return 0, false, fmt.Errorf("pheap: corrupt block header %#x at %d", hdr, p)
	}
	return c, hdr&allocatedFlag != 0, nil
}

// Free returns p's block to its class free list. Freeing the zero Ptr is
// a no-op; freeing an unallocated or corrupt block is an error.
func (h *Heap) Free(p Ptr) error {
	if p == 0 {
		return nil
	}
	c, allocated, err := h.blockClass(p)
	if err != nil {
		return err
	}
	if !allocated {
		return fmt.Errorf("pheap: double free of block at %d", p)
	}
	headOff := int64(offFree + 8*c)
	head, err := h.readU64(headOff)
	if err != nil {
		return err
	}
	// Thread onto the free list: payload's first word = old head.
	if err := h.writeU64(int64(p), head); err != nil {
		return err
	}
	if err := h.writeU64(int64(p)-blockHeaderSize, uint64(c)); err != nil {
		return err
	}
	return h.writeU64(headOff, uint64(p))
}

// UsableSize returns the capacity of the block at p (its class size),
// which may exceed the requested allocation size.
func (h *Heap) UsableSize(p Ptr) (int, error) {
	c, allocated, err := h.blockClass(p)
	if err != nil {
		return 0, err
	}
	if !allocated {
		return 0, fmt.Errorf("pheap: UsableSize of free block at %d", p)
	}
	return classSize(c), nil
}

// Write stores data into the block at p, starting at byte off within the
// payload, bounds-checked against the block's usable size.
func (h *Heap) Write(p Ptr, off int, data []byte) error {
	size, err := h.UsableSize(p)
	if err != nil {
		return err
	}
	if off < 0 || off+len(data) > size {
		return fmt.Errorf("pheap: write of %d bytes at +%d exceeds block size %d", len(data), off, size)
	}
	return h.store.WriteAt(data, int64(p)+int64(off))
}

// Read fills buf from the block at p starting at byte off within the
// payload.
func (h *Heap) Read(p Ptr, off int, buf []byte) error {
	size, err := h.UsableSize(p)
	if err != nil {
		return err
	}
	if off < 0 || off+len(buf) > size {
		return fmt.Errorf("pheap: read of %d bytes at +%d exceeds block size %d", len(buf), off, size)
	}
	return h.store.ReadAt(buf, int64(p)+int64(off))
}

// SetRoot records the application's root object pointer in the heap
// header, so a reopened heap (after recovery) can find its data. The
// zero Ptr clears the root.
func (h *Heap) SetRoot(p Ptr) error { return h.writeU64(offRoot, uint64(p)) }

// Root returns the recorded root pointer (zero if none was set).
func (h *Heap) Root() (Ptr, error) {
	v, err := h.readU64(offRoot)
	return Ptr(v), err
}

// Stats describes heap occupancy.
type Stats struct {
	// BumpOffset is the high-water mark of fresh allocation.
	BumpOffset int64
	// HeapSize is the store size.
	HeapSize int64
	// FreeBlocks counts blocks on the per-class free lists.
	FreeBlocks [numClasses]int
}

// NumClasses reports the number of size classes (for tooling).
func NumClasses() int { return numClasses }

// ClassSize reports the payload size of class c (for tooling).
func ClassSize(c int) int { return classSize(c) }

// Stats walks the free lists and returns occupancy numbers.
func (h *Heap) Stats() (Stats, error) {
	var s Stats
	bump, err := h.readU64(offBump)
	if err != nil {
		return s, err
	}
	s.BumpOffset = int64(bump)
	s.HeapSize = h.store.Size()
	for c := 0; c < numClasses; c++ {
		head, err := h.readU64(offFree + int64(8*c))
		if err != nil {
			return s, err
		}
		for head != 0 {
			s.FreeBlocks[c]++
			next, err := h.readU64(int64(head))
			if err != nil {
				return s, err
			}
			head = next
		}
	}
	return s, nil
}
