package pheap

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

// memStore is a plain in-memory Store for allocator-only tests (the
// integration with NV-DRAM mappings is exercised in the kvstore and
// harness tests).
type memStore struct {
	data []byte
}

func newMemStore(size int) *memStore { return &memStore{data: make([]byte, size)} }

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(m.data[off:], p)
	return nil
}

func TestFormatAndOpen(t *testing.T) {
	s := newMemStore(1 << 16)
	if _, err := Format(s); err != nil {
		t.Fatal(err)
	}
	h, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(100); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsUnformatted(t *testing.T) {
	if _, err := Open(newMemStore(1 << 16)); err == nil {
		t.Fatal("Open of unformatted store succeeded")
	}
}

func TestFormatRejectsTinyStore(t *testing.T) {
	if _, err := Format(newMemStore(32)); err == nil {
		t.Fatal("Format of tiny store succeeded")
	}
}

func TestAllocWriteReadRoundTrip(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	p, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("key=value persistent record")
	if err := h.Write(p, 0, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := h.Read(p, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
}

func TestAllocSizeClasses(t *testing.T) {
	h, _ := Format(newMemStore(1 << 20))
	cases := []struct{ n, wantClassSize int }{
		{1, 32}, {32, 32}, {33, 64}, {100, 128}, {4096, 4096}, {4097, 8192}, {65536, 65536},
	}
	for _, tc := range cases {
		p, err := h.Alloc(tc.n)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", tc.n, err)
		}
		size, err := h.UsableSize(p)
		if err != nil {
			t.Fatal(err)
		}
		if size != tc.wantClassSize {
			t.Errorf("Alloc(%d) usable size = %d, want %d", tc.n, size, tc.wantClassSize)
		}
	}
}

func TestAllocRejectsBadSizes(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	if _, err := h.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
	if _, err := h.Alloc(-1); err == nil {
		t.Fatal("Alloc(-1) succeeded")
	}
	if _, err := h.Alloc(MaxAlloc + 1); err == nil {
		t.Fatal("oversized alloc succeeded")
	}
}

func TestFreeAndReuse(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	p1, _ := h.Alloc(100)
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	p2, _ := h.Alloc(100)
	if p2 != p1 {
		t.Fatalf("freed block not reused: got %d, want %d", p2, p1)
	}
}

func TestFreeZeroPtrIsNoop(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	if err := h.Free(0); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	p, _ := h.Alloc(64)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err == nil {
		t.Fatal("double free succeeded")
	}
}

func TestBadPointerRejected(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	if err := h.Free(3); err == nil {
		t.Fatal("free of sub-header pointer succeeded")
	}
	if _, err := h.UsableSize(Ptr(headerSize + blockHeaderSize + 99999)); err == nil {
		t.Fatal("UsableSize of wild pointer succeeded")
	}
}

func TestWriteBoundsChecked(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	p, _ := h.Alloc(32)
	if err := h.Write(p, 0, make([]byte, 33)); err == nil {
		t.Fatal("overflowing write succeeded")
	}
	if err := h.Write(p, -1, []byte{1}); err == nil {
		t.Fatal("negative-offset write succeeded")
	}
	if err := h.Read(p, 30, make([]byte, 10)); err == nil {
		t.Fatal("overflowing read succeeded")
	}
}

func TestOutOfSpace(t *testing.T) {
	h, _ := Format(newMemStore(1 << 12)) // 4 KiB total
	var last error
	for i := 0; i < 1000; i++ {
		if _, err := h.Alloc(256); err != nil {
			last = err
			break
		}
	}
	if last == nil {
		t.Fatal("allocator never ran out of a 4 KiB store")
	}
}

func TestStats(t *testing.T) {
	h, _ := Format(newMemStore(1 << 16))
	p1, _ := h.Alloc(32)
	p2, _ := h.Alloc(32)
	if err := h.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p2); err != nil {
		t.Fatal(err)
	}
	s, err := h.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.FreeBlocks[0] != 2 {
		t.Fatalf("free blocks in class 0 = %d, want 2", s.FreeBlocks[0])
	}
	if s.BumpOffset <= headerSize {
		t.Fatalf("bump offset = %d", s.BumpOffset)
	}
}

func TestReopenPreservesData(t *testing.T) {
	s := newMemStore(1 << 16)
	h1, _ := Format(s)
	p, _ := h1.Alloc(64)
	if err := h1.Write(p, 0, []byte("survives reopen")); err != nil {
		t.Fatal(err)
	}
	h2, err := Open(s)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 15)
	if err := h2.Read(p, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "survives reopen" {
		t.Fatalf("reopened read = %q", got)
	}
	// Allocations continue from the recorded bump pointer, not over data.
	p2, err := h2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p2 == p {
		t.Fatal("reopened heap reallocated a live block")
	}
}

// Property: an arbitrary interleaving of allocs, writes, and frees never
// lets two live blocks overlap and never corrupts stored data.
func TestNoOverlapProperty(t *testing.T) {
	type live struct {
		p    Ptr
		data []byte
	}
	f := func(seed uint64, steps uint8) bool {
		h, err := Format(newMemStore(1 << 18))
		if err != nil {
			return false
		}
		rng := sim.NewRNG(seed)
		var blocks []live
		for i := 0; i < int(steps)%120+1; i++ {
			if len(blocks) > 0 && rng.Intn(3) == 0 {
				// Free a random block.
				j := rng.Intn(len(blocks))
				if h.Free(blocks[j].p) != nil {
					return false
				}
				blocks = append(blocks[:j], blocks[j+1:]...)
				continue
			}
			n := rng.Intn(600) + 1
			p, err := h.Alloc(n)
			if err != nil {
				continue // heap full is fine
			}
			data := make([]byte, n)
			for k := range data {
				data[k] = byte(rng.Uint64())
			}
			if h.Write(p, 0, data) != nil {
				return false
			}
			blocks = append(blocks, live{p: p, data: data})
		}
		// Every live block still holds exactly its data.
		for _, b := range blocks {
			got := make([]byte, len(b.data))
			if h.Read(b.p, 0, got) != nil || !bytes.Equal(got, b.data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestClassHelpers(t *testing.T) {
	if NumClasses() != numClasses {
		t.Fatal("NumClasses mismatch")
	}
	if ClassSize(0) != 32 {
		t.Fatalf("ClassSize(0) = %d", ClassSize(0))
	}
	for c := 1; c < NumClasses(); c++ {
		if ClassSize(c) != 2*ClassSize(c-1) {
			t.Fatalf("class sizes not doubling at %d", c)
		}
	}
}

func ExampleHeap() {
	h, _ := Format(newMemStore(1 << 16))
	p, _ := h.Alloc(64)
	_ = h.Write(p, 0, []byte("hello"))
	buf := make([]byte, 5)
	_ = h.Read(p, 0, buf)
	fmt.Println(string(buf))
	// Output: hello
}
