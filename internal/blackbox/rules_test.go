package blackbox

import (
	"fmt"
	"strings"
	"testing"
)

// Every record kind must render a distinct, non-"unknown" name — the
// dump exposition depends on it — and unknown kinds must say so rather
// than alias a real one.
func TestKindStringCoversEveryKind(t *testing.T) {
	kinds := []uint16{
		KindBoot, KindRecover, KindDirty, KindBudget, KindLadder,
		KindLadderEv, KindHealth, KindSensor, KindServe, KindCursor,
		KindSpan, KindMark,
	}
	seen := map[string]uint16{}
	for _, k := range kinds {
		s := KindString(k)
		if s == "unknown" || s == "" {
			t.Errorf("KindString(%d) = %q; every defined kind needs a real name", k, s)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("KindString maps both %d and %d to %q", prev, k, s)
		}
		seen[s] = k
	}
	if got := KindString(999); got != "unknown" {
		t.Errorf("KindString(999) = %q, want unknown", got)
	}
}

// Every (kind, code) pair the rules can emit must render a name, and
// kinds without a code refinement must render empty — WriteText keys
// its "/code" suffix on that.
func TestCodeStringCoversEmittedPairs(t *testing.T) {
	for name, ev := range DefaultRules() {
		switch ev.Kind {
		case KindDirty, KindBudget, KindLadder:
			// Codeless kinds (the ladder's code is the state ordinal,
			// covered below).
		default:
			if CodeString(ev.Kind, ev.Code) == "" {
				t.Errorf("rule %q emits (%d,%d) with no CodeString name", name, ev.Kind, ev.Code)
			}
		}
	}
	for name, code := range DefaultSpanRules() {
		if got := CodeString(KindSpan, code); got != name {
			t.Errorf("span rule %q renders as %q; the dump must echo the span name", name, got)
		}
	}
	// Ladder state ordinals all render.
	for st := uint16(0); st < 4; st++ {
		if CodeString(KindLadder, st) == "" {
			t.Errorf("ladder state %d has no name", st)
		}
	}
	for _, code := range []uint16{CodeSpanClean, CodeSpanFlush, CodeSpanServe} {
		if CodeString(KindSpan, code) == "" {
			t.Errorf("span code %d has no name", code)
		}
	}
	if got := CodeString(KindDirty, 0); got != "" {
		t.Errorf("CodeString(KindDirty, 0) = %q, want empty (no code refinement)", got)
	}
	if got := CodeString(KindSensor, 999); got != "" {
		t.Errorf("CodeString(KindSensor, 999) = %q, want empty for unknown code", got)
	}
}

// The sensor and remaining code spaces render every defined constant.
func TestCodeStringCoversDefinedConstants(t *testing.T) {
	cases := []struct {
		kind  uint16
		codes []uint16
	}{
		{KindLadderEv, []uint16{CodeEmergencyEnter, CodeReadOnlyEnter, CodeResume}},
		{KindHealth, []uint16{CodeDerivedBudgetPages, CodeBudgetMilliJoules, CodeEffectiveMilliJ,
			CodeHealthEmergency, CodeReadOnlyFall, CodeHealthRecovery, CodeScrubDegrade}},
		{KindSensor, []uint16{CodeRejectBounds, CodeRejectRate, CodeRejectStale,
			CodeRejectDisagree, CodeSoloSample, CodeBlindSample, CodeRetrust}},
		{KindServe, []uint16{CodeShedOverload, CodeShedDeadline, CodeShedReadOnly, CodeStallPredicted}},
		{KindCursor, []uint16{CodeCursorAdvance, CodeCursorResume, CodeCursorFallback}},
	}
	for _, c := range cases {
		seen := map[string]bool{}
		for _, code := range c.codes {
			s := CodeString(c.kind, code)
			if s == "" {
				t.Errorf("CodeString(%s, %d) is empty", KindString(c.kind), code)
			}
			if seen[s] {
				t.Errorf("CodeString(%s, %d) = %q duplicates another code", KindString(c.kind), code, s)
			}
			seen[s] = true
		}
	}
}

func TestSlotsReportsRingCapacity(t *testing.T) {
	r, _, _ := testRecorder(t, 16)
	if got := r.Slots(); got != 16 {
		t.Errorf("Slots() = %d, want 16", got)
	}
}

// failStore errors on read: ReadAndWalk must surface it, not walk junk.
type failStore struct{}

func (failStore) WriteAt(p []byte, off int64) error { return nil }
func (failStore) ReadAt(p []byte, off int64) error  { return fmt.Errorf("injected read error") }
func (failStore) Size() int64                       { return 4 * SlotBytes }

func TestReadAndWalkErrors(t *testing.T) {
	if _, err := ReadAndWalk(nil); err == nil {
		t.Error("ReadAndWalk(nil) did not error")
	}
	if _, err := ReadAndWalk(failStore{}); err == nil || !strings.Contains(err.Error(), "injected read error") {
		t.Errorf("ReadAndWalk(failStore) err = %v, want the injected read error", err)
	}
}
