package blackbox

// Event classifies one instrument into the ring's (kind, code) space.
type Event struct {
	Kind uint16
	Code uint16
}

// Ladder-event codes (KindLadderEv).
const (
	CodeEmergencyEnter uint16 = 1
	CodeReadOnlyEnter  uint16 = 2
	CodeResume         uint16 = 3
)

// Health codes (KindHealth).
const (
	CodeDerivedBudgetPages uint16 = 1
	CodeBudgetMilliJoules  uint16 = 2
	CodeEffectiveMilliJ    uint16 = 3
	CodeHealthEmergency    uint16 = 4
	CodeReadOnlyFall       uint16 = 5
	CodeHealthRecovery     uint16 = 6
	CodeScrubDegrade       uint16 = 7
)

// Sensor codes (KindSensor).
const (
	CodeRejectBounds   uint16 = 1
	CodeRejectRate     uint16 = 2
	CodeRejectStale    uint16 = 3
	CodeRejectDisagree uint16 = 4
	CodeSoloSample     uint16 = 5
	CodeBlindSample    uint16 = 6
	CodeRetrust        uint16 = 7
)

// Serve codes (KindServe).
const (
	CodeShedOverload   uint16 = 1
	CodeShedDeadline   uint16 = 2
	CodeShedReadOnly   uint16 = 3
	CodeStallPredicted uint16 = 4
)

// Cursor codes (KindCursor).
const (
	CodeCursorAdvance  uint16 = 1
	CodeCursorResume   uint16 = 2
	CodeCursorFallback uint16 = 3
)

// Span codes (KindSpan).
const (
	CodeSpanClean uint16 = 1
	CodeSpanFlush uint16 = 2
	CodeSpanServe uint16 = 3
)

// DefaultRules maps the system's load-bearing instruments to ring
// events. Anything not listed is ignored by the tee — the ring records
// decisions, not every sample. The map is consulted on the hot path;
// map reads with string keys do not allocate.
func DefaultRules() map[string]Event {
	return map[string]Event{
		// core: the budget contract itself.
		"core_dirty_pages":            {KindDirty, 0},
		"core_dirty_budget_pages":     {KindBudget, 0},
		"core_health_state":           {KindLadder, 0},
		"core_emergency_enters_total": {KindLadderEv, CodeEmergencyEnter},
		"core_readonly_enters_total":  {KindLadderEv, CodeReadOnlyEnter},
		"core_resumes_total":          {KindLadderEv, CodeResume},

		// health: budget re-derivations, fused energy, ladder causes.
		"health_derived_budget_pages":   {KindHealth, CodeDerivedBudgetPages},
		"health_budget_millijoules":     {KindHealth, CodeBudgetMilliJoules},
		"battery_effective_millijoules": {KindHealth, CodeEffectiveMilliJ},
		"health_emergency_enters_total": {KindHealth, CodeHealthEmergency},
		"health_readonly_falls_total":   {KindHealth, CodeReadOnlyFall},
		"health_recoveries_total":       {KindHealth, CodeHealthRecovery},
		"health_scrub_degrades_total":   {KindHealth, CodeScrubDegrade},

		// sensor: fault-episode verdicts and fusion degradations.
		"sensor_rejects_bounds_total":   {KindSensor, CodeRejectBounds},
		"sensor_rejects_rate_total":     {KindSensor, CodeRejectRate},
		"sensor_rejects_stale_total":    {KindSensor, CodeRejectStale},
		"sensor_rejects_disagree_total": {KindSensor, CodeRejectDisagree},
		"sensor_solo_samples_total":     {KindSensor, CodeSoloSample},
		"sensor_blind_samples_total":    {KindSensor, CodeBlindSample},
		"sensor_retrusts_total":         {KindSensor, CodeRetrust},

		// serve: shed and overload decisions.
		"serve_shed_overload_total":   {KindServe, CodeShedOverload},
		"serve_shed_deadline_total":   {KindServe, CodeShedDeadline},
		"serve_shed_readonly_total":   {KindServe, CodeShedReadOnly},
		"serve_stall_predicted_total": {KindServe, CodeStallPredicted},

		// recovery: cursor movement.
		"recovery_cursor_advances_total":  {KindCursor, CodeCursorAdvance},
		"recovery_resumes_total":          {KindCursor, CodeCursorResume},
		"recovery_cursor_fallbacks_total": {KindCursor, CodeCursorFallback},
	}
}

// DefaultSpanRules maps finished-span names to KindSpan codes: the
// clean and power-fail flush operations whose start/finish bracket the
// moments forensics care about.
func DefaultSpanRules() map[string]uint16 {
	return map[string]uint16{
		"core.clean":           CodeSpanClean,
		"core.powerfail_flush": CodeSpanFlush,
	}
}

// KindString names a record kind for the dump exposition.
func KindString(kind uint16) string {
	switch kind {
	case KindBoot:
		return "boot"
	case KindRecover:
		return "recover"
	case KindDirty:
		return "dirty"
	case KindBudget:
		return "budget"
	case KindLadder:
		return "ladder"
	case KindLadderEv:
		return "ladder_ev"
	case KindHealth:
		return "health"
	case KindSensor:
		return "sensor"
	case KindServe:
		return "serve"
	case KindCursor:
		return "cursor"
	case KindSpan:
		return "span"
	case KindMark:
		return "mark"
	}
	return "unknown"
}

// CodeString names a record's code within its kind; empty when the kind
// has no code refinement.
func CodeString(kind, code uint16) string {
	switch kind {
	case KindLadder:
		switch code {
		case 0:
			return "healthy"
		case 1:
			return "degraded"
		case 2:
			return "emergency_flush"
		case 3:
			return "read_only"
		}
	case KindLadderEv:
		switch code {
		case CodeEmergencyEnter:
			return "emergency_enter"
		case CodeReadOnlyEnter:
			return "readonly_enter"
		case CodeResume:
			return "resume"
		}
	case KindHealth:
		switch code {
		case CodeDerivedBudgetPages:
			return "derived_budget_pages"
		case CodeBudgetMilliJoules:
			return "budget_millijoules"
		case CodeEffectiveMilliJ:
			return "effective_millijoules"
		case CodeHealthEmergency:
			return "emergency"
		case CodeReadOnlyFall:
			return "readonly_fall"
		case CodeHealthRecovery:
			return "recovery"
		case CodeScrubDegrade:
			return "scrub_degrade"
		}
	case KindSensor:
		switch code {
		case CodeRejectBounds:
			return "reject_bounds"
		case CodeRejectRate:
			return "reject_rate"
		case CodeRejectStale:
			return "reject_stale"
		case CodeRejectDisagree:
			return "reject_disagree"
		case CodeSoloSample:
			return "solo"
		case CodeBlindSample:
			return "blind"
		case CodeRetrust:
			return "retrust"
		}
	case KindServe:
		switch code {
		case CodeShedOverload:
			return "shed_overload"
		case CodeShedDeadline:
			return "shed_deadline"
		case CodeShedReadOnly:
			return "shed_readonly"
		case CodeStallPredicted:
			return "stall_predicted"
		}
	case KindCursor:
		switch code {
		case CodeCursorAdvance:
			return "advance"
		case CodeCursorResume:
			return "resume"
		case CodeCursorFallback:
			return "fallback"
		}
	case KindSpan:
		switch code {
		case CodeSpanClean:
			return "core.clean"
		case CodeSpanFlush:
			return "core.powerfail_flush"
		case CodeSpanServe:
			return "serve.request"
		}
	}
	return ""
}
