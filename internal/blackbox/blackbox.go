// Package blackbox is the flight recorder: a small, checksummed ring of
// fixed-size binary event records that lives in battery-backed pages
// and survives power failure alongside the heap it describes. Viyojit's
// core bet — a bounded dirty set is flushable on battery — funds the
// system's own observability: a couple of budget-accounted pages buy a
// crash-persistent record of the load-bearing decisions (budget
// re-derivations, ladder transitions, clean/flush spans, sensor
// verdicts, shed decisions, recovery cursor advances), so that after a
// failure the machine can explain itself instead of leaving the audit
// entirely to an external harness.
//
// Three properties shape the design, each inherited from a neighbour:
//
//   - Torn-tail tolerance (from internal/recovery's cursor): every
//     64-byte slot carries an FNV-1a checksum and its own sequence
//     number, and the sequence fixes the slot ((seq-1) mod nslots), so
//     Walk adopts exactly the set of intact records, drops a torn tail,
//     and can never invent or resurrect a record into the wrong place.
//
//   - Budget honesty (from internal/core): the ring's pages are Map'd
//     like any heap page and charged against the same dirty budget.
//     The recorder never blocks and never forces a clean — when the
//     budget is tight or writes are blocked, Append degrades to
//     sampling: the attempt is counted in a drop counter that rides in
//     every later record, so the walk knows the gaps are gaps.
//
//   - Zero-allocation appends (from internal/obs): the encode path is
//     a fixed buffer and atomics; the recorder is an obs.Sink, so the
//     existing registry tees instrument deltas into the ring with no
//     new call-site plumbing anywhere in the system.
package blackbox

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

// SlotBytes is the fixed on-media size of one record.
//
// Layout (little-endian):
//
//	[0:8)   seq      — 1-based, monotone across reboots, fixes the slot
//	[8:16)  at       — virtual time, ns
//	[16:18) kind     — event family (KindDirty, KindLadder, …)
//	[18:20) code     — event detail within the family
//	[20:24) drops    — cumulative dropped appends at write time
//	[24:56) arg0..3  — four int64 event arguments
//	[56:64) checksum — FNV-1a over bytes [0,56)
const SlotBytes = 64

// Event kinds. The code column refines each kind; see rules.go for the
// instrument-name mapping and KindString/CodeString for the decoding.
const (
	KindBoot     uint16 = 1  // recorder (re)armed: arg0=nslots, arg1=budget pages
	KindRecover  uint16 = 2  // ring adopted after a crash: arg0=adopted seq, arg1=torn slots
	KindDirty    uint16 = 3  // dirty-page gauge: arg0=pages
	KindBudget   uint16 = 4  // effective dirty-budget gauge: arg0=pages
	KindLadder   uint16 = 5  // ladder state change: code=new state ordinal
	KindLadderEv uint16 = 6  // ladder transition cause counters
	KindHealth   uint16 = 7  // health monitor re-derivations and verdicts
	KindSensor   uint16 = 8  // fused-sensor rejections and episodes
	KindServe    uint16 = 9  // serve shed/stall decisions
	KindCursor   uint16 = 10 // recovery cursor movement
	KindSpan     uint16 = 11 // finished trace span: arg0=start ns, arg1=end ns
	KindMark     uint16 = 12 // caller-supplied milestone
)

// Record is one decoded ring entry.
type Record struct {
	Seq   uint64
	At    sim.Time
	Kind  uint16
	Code  uint16
	Drops uint32
	Args  [4]int64
}

const (
	fnvOffset = 0xCBF29CE484222325
	fnvPrime  = 0x100000001B3
)

func checksum(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func encodeRecord(buf []byte, r Record) {
	binary.LittleEndian.PutUint64(buf[0:], r.Seq)
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.At))
	binary.LittleEndian.PutUint16(buf[16:], r.Kind)
	binary.LittleEndian.PutUint16(buf[18:], r.Code)
	binary.LittleEndian.PutUint32(buf[20:], r.Drops)
	for i, a := range r.Args {
		binary.LittleEndian.PutUint64(buf[24+8*i:], uint64(a))
	}
	binary.LittleEndian.PutUint64(buf[56:], checksum(buf[:56]))
}

// decodeRecord validates one slot. ok is false for never-written
// (all-zero), torn, or corrupted slots.
func decodeRecord(buf []byte) (Record, bool) {
	if binary.LittleEndian.Uint64(buf[56:]) != checksum(buf[:56]) {
		return Record{}, false
	}
	var r Record
	r.Seq = binary.LittleEndian.Uint64(buf[0:])
	if r.Seq == 0 {
		return Record{}, false
	}
	r.At = sim.Time(binary.LittleEndian.Uint64(buf[8:]))
	r.Kind = binary.LittleEndian.Uint16(buf[16:])
	r.Code = binary.LittleEndian.Uint16(buf[18:])
	r.Drops = binary.LittleEndian.Uint32(buf[20:])
	for i := range r.Args {
		r.Args[i] = int64(binary.LittleEndian.Uint64(buf[24+8*i:]))
	}
	return r, true
}

// Store is the byte-addressed battery-backed window the ring lives in —
// the shape of *core.Mapping (and wal.Store).
type Store interface {
	WriteAt(p []byte, off int64) error
	ReadAt(p []byte, off int64) error
	Size() int64
}

// Gate decides whether the recorder may touch [off, off+n) of its store
// right now without blocking or breaking the dirty budget. A false
// verdict turns the append into a counted drop. Nil means always-yes.
type Gate func(off, n int64) bool

// Recorder appends records to the ring. Appends are serialised by a
// try-lock: a nested append (a gauge tee firing from inside an
// append's own ring-page fault) or a racing one loses the lock — the
// recorder never blocks and never recurses. A lock-loser's record is
// parked in a one-slot deferral buffer and appended by the lock
// holder right after it releases the ring; only when that slot is
// already taken is the event dropped and counted.
type Recorder struct {
	store  Store
	now    func() sim.Time
	gate   Gate
	nslots uint64
	rules  map[string]Event
	spans  map[string]uint16

	busy   atomic.Bool
	sealed atomic.Bool
	paused atomic.Bool
	drops  atomic.Uint32
	seq    atomic.Uint64 // last successfully appended seq
	buf    [SlotBytes]byte

	// The deferral buffer. pmu guards pending; pendingSet is the
	// occupancy flag lock-losers CAS on.
	pmu        sync.Mutex
	pendingSet atomic.Bool
	pending    pendingRec
}

// pendingRec is a parked append awaiting the ring lock.
type pendingRec struct {
	kind, code uint16
	args       [4]int64
}

// Options configures New.
type Options struct {
	// Now supplies virtual time for each record. Required.
	Now func() sim.Time
	// Gate is consulted before every write; nil admits everything.
	Gate Gate
	// Rules maps instrument names to events for the obs.Sink tee; nil
	// installs DefaultRules.
	Rules map[string]Event
	// SpanRules maps finished-span names to KindSpan codes; nil
	// installs DefaultSpanRules.
	SpanRules map[string]uint16
}

// New arms a recorder over store. The ring geometry is derived from the
// store size (one slot per 64 bytes); the store must hold at least two
// slots. New writes nothing — the caller appends a Boot record once
// wiring is done, or adopts an existing ring via Adopt after recovery.
func New(store Store, opts Options) (*Recorder, error) {
	if store == nil {
		return nil, fmt.Errorf("blackbox: nil store")
	}
	nslots := uint64(store.Size() / SlotBytes)
	if nslots < 2 {
		return nil, fmt.Errorf("blackbox: store of %d bytes holds %d slots, need >= 2", store.Size(), nslots)
	}
	if opts.Now == nil {
		return nil, fmt.Errorf("blackbox: Options.Now is required")
	}
	r := &Recorder{
		store:  store,
		now:    opts.Now,
		gate:   opts.Gate,
		nslots: nslots,
		rules:  opts.Rules,
		spans:  opts.SpanRules,
	}
	if r.rules == nil {
		r.rules = DefaultRules()
	}
	if r.spans == nil {
		r.spans = DefaultSpanRules()
	}
	return r, nil
}

// Slots returns the ring capacity in records.
func (r *Recorder) Slots() uint64 { return r.nslots }

// LastSeq returns the sequence number of the most recent successful
// append (0 before any).
func (r *Recorder) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Dropped returns the cumulative count of appends the recorder shed —
// lost try-locks, gate refusals, and store errors.
func (r *Recorder) Dropped() uint32 {
	if r == nil {
		return 0
	}
	return r.drops.Load()
}

// Adopt continues an existing ring: subsequent appends extend the walk's
// adopted sequence, keeping seq monotone across reboots so post-crash
// records sort after pre-crash ones.
func (r *Recorder) Adopt(w WalkResult) {
	r.seq.Store(w.LastSeq)
}

// Append writes one record. It never blocks: if the slot's page cannot
// be touched right now (gate) or the store errors, the event is
// dropped and counted; if another append holds the ring — almost
// always the tee of this recorder's OWN ring-page fault (dirtying a
// clean ring slot page moves the dirty gauge, which tees back here
// while the lock is held) — the record is parked and the lock holder
// appends it right after its own, so the structural re-entry costs
// ordering, not data. Only a second lock-loser, arriving while the
// deferral slot is full, is dropped. The cumulative drop count rides
// in every subsequent record, so a forensic walk sees the gaps.
// Nil-safe, like the obs instruments.
func (r *Recorder) Append(kind, code uint16, a0, a1, a2, a3 int64) {
	if r == nil || r.sealed.Load() {
		return
	}
	if r.paused.Load() {
		r.drops.Add(1)
		return
	}
	if !r.busy.CompareAndSwap(false, true) {
		r.park(kind, code, a0, a1, a2, a3)
		return
	}
	r.appendLocked(kind, code, a0, a1, a2, a3)
	r.busy.Store(false)
	// Drain the deferral buffer. Bounded: a drained append's own page
	// fault can park at most one more record, and the ring has finitely
	// many pages to fault on.
	for r.pendingSet.Load() {
		r.pmu.Lock()
		p := r.pending
		r.pendingSet.Store(false)
		r.pmu.Unlock()
		if !r.busy.CompareAndSwap(false, true) {
			r.drops.Add(1) // a racing thread owns the ring now
			return
		}
		r.appendLocked(p.kind, p.code, p.args[0], p.args[1], p.args[2], p.args[3])
		r.busy.Store(false)
	}
}

// park stashes a lock-loser's record for the lock holder to drain.
func (r *Recorder) park(kind, code uint16, a0, a1, a2, a3 int64) {
	if r.pendingSet.CompareAndSwap(false, true) {
		r.pmu.Lock()
		r.pending = pendingRec{kind: kind, code: code, args: [4]int64{a0, a1, a2, a3}}
		r.pmu.Unlock()
		return
	}
	r.drops.Add(1)
}

// appendLocked writes one record; the caller holds busy.
func (r *Recorder) appendLocked(kind, code uint16, a0, a1, a2, a3 int64) {
	seq := r.seq.Load() + 1
	off := int64((seq-1)%r.nslots) * SlotBytes
	if r.gate != nil && !r.gate(off, SlotBytes) {
		r.drops.Add(1)
		return
	}
	encodeRecord(r.buf[:], Record{
		Seq:   seq,
		At:    r.now(),
		Kind:  kind,
		Code:  code,
		Drops: r.drops.Load(),
		Args:  [4]int64{a0, a1, a2, a3},
	})
	if err := r.store.WriteAt(r.buf[:], off); err != nil {
		r.drops.Add(1)
	} else {
		r.seq.Store(seq)
	}
}

// Seal permanently stops the recorder. The facade calls it at the
// instant power fails: the flush's own bookkeeping (the dirty gauge
// collapsing, the flush span finishing) must not mutate ring pages
// after the energy audit began, or the restored ring would disagree
// with what the SSD holds. Sealed appends vanish silently — power is
// off; there is no later record left to carry a drop count. Nil-safe.
func (r *Recorder) Seal() {
	if r != nil {
		r.sealed.Store(true)
	}
}

// Quiesce pauses the recorder until the returned resume func runs;
// paused appends become counted drops. It exists for whole-set drains
// (FlushAll): the dirty gauge falling as each clean completes would
// tee an append that re-dirties a ring page, and the drain loop —
// which runs until the dirty set is empty — would chase its own
// telemetry forever. Not reentrant; nil-safe.
func (r *Recorder) Quiesce() (resume func()) {
	if r == nil {
		return func() {}
	}
	r.paused.Store(true)
	return func() { r.paused.Store(false) }
}

// Boot appends the arming record.
func (r *Recorder) Boot(budgetPages int64) {
	if r == nil {
		return
	}
	r.Append(KindBoot, 0, int64(r.nslots), budgetPages, 0, 0)
}

// Mark appends a caller-labelled milestone (code is caller-defined).
func (r *Recorder) Mark(code uint16, a0, a1 int64) {
	r.Append(KindMark, code, a0, a1, 0, 0)
}

// CounterAdd implements obs.Sink: counters named in the rules table
// become records carrying (total, delta).
func (r *Recorder) CounterAdd(name string, delta, total uint64) {
	ev, ok := r.rules[name]
	if !ok {
		return
	}
	r.Append(ev.Kind, ev.Code, int64(total), int64(delta), 0, 0)
}

// GaugeSet implements obs.Sink: gauges named in the rules table become
// records carrying the new level. Ladder records additionally carry the
// state ordinal in the code column so a forensic walk can name the
// final state without consulting the args.
func (r *Recorder) GaugeSet(name string, v int64) {
	ev, ok := r.rules[name]
	if !ok {
		return
	}
	code := ev.Code
	if ev.Kind == KindLadder && v >= 0 && v <= 0xFFFF {
		code = uint16(v)
	}
	r.Append(ev.Kind, code, v, 0, 0, 0)
}

// SpanFinished implements obs.Sink: spans named in the span-rules table
// become KindSpan records carrying (start, end).
func (r *Recorder) SpanFinished(rec obs.SpanRecord) {
	code, ok := r.spans[rec.Name]
	if !ok {
		return
	}
	r.Append(KindSpan, code, int64(rec.Start), int64(rec.End), 0, 0)
}

var _ obs.Sink = (*Recorder)(nil)
