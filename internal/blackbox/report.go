package blackbox

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"viyojit/internal/sim"
)

// WalkResult is what a raw ring image yields: every intact record, in
// sequence order, plus the damage accounting.
type WalkResult struct {
	// Records holds the adopted records in ascending sequence order.
	// Honest rings yield a consecutive run (minus slots destroyed by a
	// torn write); Walk never invents, reorders, or duplicates.
	Records []Record
	// LastSeq is the newest adopted sequence number (0 for an empty or
	// unreadable ring).
	LastSeq uint64
	// Torn counts slots that held bytes but failed validation — a torn
	// tail write, or corruption.
	Torn int
	// Dropped is the recorder's cumulative shed count as of the newest
	// record: the number of events that are known gaps, not losses the
	// walk silently absorbed.
	Dropped uint32
}

// Walk scans a raw ring image and adopts every intact record: checksum
// valid, nonzero sequence, and sequence bound to the slot it sits in
// ((seq-1) mod nslots). A torn tail — the write that was in flight when
// power failed — fails its checksum and is dropped; the slot's previous
// occupant is gone too, so the adopted run may have at most that one
// hole near the tail. Walk never panics on arbitrary bytes and never
// yields a record it did not fully validate. Trailing bytes that do not
// fill a slot are ignored.
func Walk(data []byte) WalkResult {
	var w WalkResult
	nslots := uint64(len(data)) / SlotBytes
	if nslots == 0 {
		return w
	}
	for slot := uint64(0); slot < nslots; slot++ {
		b := data[slot*SlotBytes : (slot+1)*SlotBytes]
		rec, ok := decodeRecord(b)
		if !ok {
			if !allZero(b) {
				w.Torn++
			}
			continue
		}
		if (rec.Seq-1)%nslots != slot {
			// A record can only live in the slot its sequence names;
			// anything else is corruption wearing a valid checksum.
			w.Torn++
			continue
		}
		w.Records = append(w.Records, rec)
	}
	sort.Slice(w.Records, func(i, j int) bool { return w.Records[i].Seq < w.Records[j].Seq })
	if n := len(w.Records); n > 0 {
		newest := w.Records[n-1]
		w.LastSeq = newest.Seq
		w.Dropped = newest.Drops
	}
	return w
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// ReadAndWalk pulls the full ring image out of a store and walks it.
func ReadAndWalk(store Store) (WalkResult, error) {
	if store == nil {
		return WalkResult{}, fmt.Errorf("blackbox: nil store")
	}
	data := make([]byte, store.Size())
	if err := store.ReadAt(data, 0); err != nil {
		return WalkResult{}, fmt.Errorf("blackbox: reading ring: %w", err)
	}
	return Walk(data), nil
}

// Point is one step of a reconstructed trajectory.
type Point struct {
	At    sim.Time
	Value int64
}

// Report is the post-failure forensic reconstruction: what the system
// said about itself, read back out of the battery-backed ring.
type Report struct {
	Walk WalkResult

	// CrashAt is the virtual time of the newest record — the last thing
	// the system managed to say (the crash instant, to within one
	// record).
	CrashAt sim.Time

	// Dirty and Budget are the recorded trajectories of the dirty-page
	// count and the effective dirty budget over the ring's window.
	Dirty  []Point
	Budget []Point

	// CrashDirty, CrashBudget, and FinalLadder are the last recorded
	// values of each — the crash-instant snapshot. -1 means the ring's
	// window holds no record of that series AND the history is
	// incomplete (the boot record aged out), so the value is unknowable.
	// When the boot record is still in the window the history is
	// complete since arming, and a series with no record simply never
	// left its initial value: dirty 0, ladder healthy (0), budget as the
	// boot record carries it.
	CrashDirty  int64
	CrashBudget int64
	FinalLadder int64

	// Complete reports that the walk still contains the boot record, so
	// the trajectories cover the system's whole life, not a window.
	Complete bool
}

// BuildReport reconstructs the forensic view from a walked ring.
func BuildReport(w WalkResult) Report {
	r := Report{Walk: w, CrashDirty: -1, CrashBudget: -1, FinalLadder: -1}
	for _, rec := range w.Records {
		switch rec.Kind {
		case KindDirty:
			r.Dirty = append(r.Dirty, Point{At: rec.At, Value: rec.Args[0]})
			r.CrashDirty = rec.Args[0]
		case KindBudget:
			r.Budget = append(r.Budget, Point{At: rec.At, Value: rec.Args[0]})
			r.CrashBudget = rec.Args[0]
		case KindLadder:
			r.FinalLadder = int64(rec.Code)
		case KindBoot:
			// Complete history: series with no later record are still at
			// their boot values. arg1 carries the budget the system
			// booted with; dirty is 0 and the ladder healthy at arming.
			r.Complete = true
			if r.CrashBudget == -1 && rec.Args[1] > 0 {
				r.CrashBudget = rec.Args[1]
			}
			if r.CrashDirty == -1 {
				r.CrashDirty = 0
			}
			if r.FinalLadder == -1 {
				r.FinalLadder = 0
			}
		}
		if rec.At > r.CrashAt {
			r.CrashAt = rec.At
		}
	}
	return r
}

// Timeline returns the last n records (all of them if n <= 0 or the
// window is smaller).
func (r Report) Timeline(n int) []Record {
	recs := r.Walk.Records
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// WriteText renders the report: a summary header, the crash-instant
// snapshot, and the timeline of the last n events (everything if n<=0).
func (r Report) WriteText(w io.Writer, n int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "blackbox: %d records adopted, last seq %d, %d torn slots, %d dropped appends\n",
		len(r.Walk.Records), r.Walk.LastSeq, r.Walk.Torn, r.Walk.Dropped)
	fmt.Fprintf(bw, "crash instant: t=%v dirty=%s budget=%s ladder=%s\n",
		sim.Duration(r.CrashAt), fmtVal(r.CrashDirty), fmtVal(r.CrashBudget), fmtLadder(r.FinalLadder))
	tl := r.Timeline(n)
	fmt.Fprintf(bw, "timeline (%d events):\n", len(tl))
	for _, rec := range tl {
		code := CodeString(rec.Kind, rec.Code)
		if code != "" {
			code = "/" + code
		}
		fmt.Fprintf(bw, "  seq=%-6d t=%-12v %s%s args=[%d %d %d %d] drops=%d\n",
			rec.Seq, sim.Duration(rec.At), KindString(rec.Kind), code,
			rec.Args[0], rec.Args[1], rec.Args[2], rec.Args[3], rec.Drops)
	}
	return bw.Flush()
}

func fmtVal(v int64) string {
	if v < 0 {
		return "?"
	}
	return fmt.Sprintf("%d", v)
}

func fmtLadder(v int64) string {
	if v < 0 {
		return "?"
	}
	if s := CodeString(KindLadder, uint16(v)); s != "" {
		return s
	}
	return fmt.Sprintf("%d", v)
}
