package blackbox

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

// memStore is a plain in-memory Store for recorder unit tests.
type memStore struct {
	b []byte
	// onWrite, when set, runs before the copy — used to simulate a
	// reentrant tee firing from inside the write path.
	onWrite func(off int64)
	fail    bool
}

func newMemStore(n int) *memStore { return &memStore{b: make([]byte, n)} }

func (m *memStore) WriteAt(p []byte, off int64) error {
	if m.onWrite != nil {
		m.onWrite(off)
	}
	if m.fail {
		return fmt.Errorf("memStore: injected write error")
	}
	copy(m.b[off:], p)
	return nil
}

func (m *memStore) ReadAt(p []byte, off int64) error {
	copy(p, m.b[off:])
	return nil
}

func (m *memStore) Size() int64 { return int64(len(m.b)) }

// testRecorder arms a recorder over n slots with a settable clock.
func testRecorder(t *testing.T, nslots int) (*Recorder, *memStore, *sim.Time) {
	t.Helper()
	st := newMemStore(nslots * SlotBytes)
	now := new(sim.Time)
	r, err := New(st, Options{Now: func() sim.Time { return *now }})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return r, st, now
}

func TestAppendWalkRoundTrip(t *testing.T) {
	r, st, now := testRecorder(t, 32)
	for i := 0; i < 20; i++ {
		*now = sim.Time(100 * (i + 1))
		r.Append(KindDirty, 0, int64(i), int64(-i), int64(i*i), 7)
	}
	w := Walk(st.b)
	if len(w.Records) != 20 || w.LastSeq != 20 || w.Torn != 0 || w.Dropped != 0 {
		t.Fatalf("walk: got %d records, last %d, torn %d, dropped %d",
			len(w.Records), w.LastSeq, w.Torn, w.Dropped)
	}
	for i, rec := range w.Records {
		want := Record{
			Seq:  uint64(i + 1),
			At:   sim.Time(100 * (i + 1)),
			Kind: KindDirty,
			Args: [4]int64{int64(i), int64(-i), int64(i * i), 7},
		}
		if rec != want {
			t.Fatalf("record %d: got %+v want %+v", i, rec, want)
		}
	}
}

func TestWrapKeepsNewestWindow(t *testing.T) {
	const nslots = 16
	r, st, now := testRecorder(t, nslots)
	const total = 3*nslots + 5
	for i := 0; i < total; i++ {
		*now = sim.Time(i)
		r.Append(KindMark, 1, int64(i), 0, 0, 0)
	}
	w := Walk(st.b)
	if len(w.Records) != nslots || w.LastSeq != total {
		t.Fatalf("walk after wrap: %d records, last %d", len(w.Records), w.LastSeq)
	}
	for i, rec := range w.Records {
		if want := uint64(total - nslots + 1 + i); rec.Seq != want {
			t.Fatalf("record %d: seq %d, want %d", i, rec.Seq, want)
		}
	}
}

// TestSealStopsAppends: a sealed recorder writes nothing and counts
// nothing — power is off; the ring must stay exactly as the flush saw
// it.
func TestSealStopsAppends(t *testing.T) {
	r, st, now := testRecorder(t, 8)
	*now = 10
	r.Append(KindDirty, 0, 1, 0, 0, 0)
	frozen := append([]byte(nil), st.b...)
	r.Seal()
	r.Append(KindDirty, 0, 2, 0, 0, 0)
	r.Boot(5)
	r.Mark(1, 0, 0)
	if !bytes.Equal(st.b, frozen) {
		t.Fatal("sealed recorder mutated the ring")
	}
	if r.LastSeq() != 1 || r.Dropped() != 0 {
		t.Fatalf("sealed recorder: seq %d dropped %d, want 1/0", r.LastSeq(), r.Dropped())
	}
	var nilRec *Recorder
	nilRec.Seal() // nil-safe
}

// TestQuiesceCountsDrops: unlike Seal, a quiesced recorder keeps the
// honesty ledger — paused appends are counted, and appends resume.
func TestQuiesceCountsDrops(t *testing.T) {
	r, st, now := testRecorder(t, 8)
	*now = 10
	r.Append(KindDirty, 0, 1, 0, 0, 0)
	resume := r.Quiesce()
	r.Append(KindDirty, 0, 2, 0, 0, 0)
	r.Append(KindDirty, 0, 3, 0, 0, 0)
	if r.LastSeq() != 1 || r.Dropped() != 2 {
		t.Fatalf("quiesced: seq %d dropped %d, want 1/2", r.LastSeq(), r.Dropped())
	}
	resume()
	r.Append(KindDirty, 0, 4, 0, 0, 0)
	w := Walk(st.b)
	if w.LastSeq != 2 || w.Dropped != 2 {
		t.Fatalf("after resume: walk last %d dropped %d, want 2/2", w.LastSeq, w.Dropped)
	}
	var nilRec *Recorder
	nilRec.Quiesce()() // nil-safe, resume callable
}

func TestGateRefusalDegradesToSampling(t *testing.T) {
	st := newMemStore(16 * SlotBytes)
	open := true
	r, err := New(st, Options{
		Now:  func() sim.Time { return 0 },
		Gate: func(off, n int64) bool { return open },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Append(KindMark, 1, 1, 0, 0, 0)
	open = false
	for i := 0; i < 3; i++ {
		r.Append(KindMark, 1, 2, 0, 0, 0) // all shed
	}
	open = true
	r.Append(KindMark, 1, 3, 0, 0, 0)
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	w := Walk(st.b)
	if len(w.Records) != 2 || w.LastSeq != 2 {
		t.Fatalf("walk: %d records, last %d", len(w.Records), w.LastSeq)
	}
	// The surviving record advertises the gap.
	if w.Dropped != 3 {
		t.Fatalf("walk sees %d drops, want 3", w.Dropped)
	}
}

func TestStoreErrorCountsAsDrop(t *testing.T) {
	r, st, _ := testRecorder(t, 8)
	st.fail = true
	r.Append(KindMark, 1, 1, 0, 0, 0)
	if r.LastSeq() != 0 || r.Dropped() != 1 {
		t.Fatalf("after failed write: seq %d drops %d", r.LastSeq(), r.Dropped())
	}
	st.fail = false
	r.Append(KindMark, 1, 2, 0, 0, 0)
	if r.LastSeq() != 1 {
		t.Fatalf("seq after recovery append: %d", r.LastSeq())
	}
}

// TestReentrantAppendIsDeferred proves the never-blocks/never-recurses
// property: an append fired from inside the write path (the shape of a
// gauge tee raised by the ring page's own fault) is parked, never
// executed recursively, and lands right after the append that was
// holding the ring — while a second nested arrival, finding the
// deferral slot full, is counted as a drop.
func TestReentrantAppendIsDeferred(t *testing.T) {
	r, st, _ := testRecorder(t, 8)
	fired := false
	st.onWrite = func(int64) {
		if !fired {
			fired = true
			r.Append(KindMark, 9, 99, 0, 0, 0) // nested: parked
			r.Append(KindMark, 9, 98, 0, 0, 0) // deferral slot full: dropped
		}
	}
	r.Append(KindMark, 1, 1, 0, 0, 0)
	if r.LastSeq() != 2 {
		t.Fatalf("outer + deferred appends did not land: seq %d", r.LastSeq())
	}
	if r.Dropped() != 1 {
		t.Fatalf("second nested append not shed exactly once: drops %d", r.Dropped())
	}
	w := Walk(st.b)
	if len(w.Records) != 2 || w.Records[0].Args[0] != 1 || w.Records[1].Args[0] != 99 {
		t.Fatalf("ring order wrong: %+v", w.Records)
	}
	// Cascading deferral terminates: a drained append's own write parks
	// one more, and the chain drains to empty without recursion.
	depth := 0
	st.onWrite = func(int64) {
		if depth < 3 {
			depth++
			r.Append(KindMark, 9, int64(100+depth), 0, 0, 0)
		}
	}
	r.Append(KindMark, 1, 2, 0, 0, 0)
	if r.LastSeq() != 6 {
		t.Fatalf("cascade did not drain: seq %d", r.LastSeq())
	}
	if r.Dropped() != 1 {
		t.Fatalf("cascade dropped records: drops %d", r.Dropped())
	}
}

func TestAdoptContinuesSequence(t *testing.T) {
	r, st, now := testRecorder(t, 16)
	for i := 0; i < 5; i++ {
		r.Append(KindMark, 1, int64(i), 0, 0, 0)
	}
	w := Walk(st.b)

	// "Reboot": new recorder over the restored image adopts the walk.
	r2, err := New(st, Options{Now: func() sim.Time { return *now }})
	if err != nil {
		t.Fatal(err)
	}
	r2.Adopt(w)
	r2.Append(KindRecover, 0, int64(w.LastSeq), int64(w.Torn), 0, 0)
	w2 := Walk(st.b)
	if w2.LastSeq != 6 || len(w2.Records) != 6 {
		t.Fatalf("after adopt+append: last %d, %d records", w2.LastSeq, len(w2.Records))
	}
}

// buildRing appends n records over nslots slots and returns the raw
// image plus a seq-indexed copy of every record's slot bytes.
func buildRing(t *testing.T, nslots, n int) (data []byte, slotOf map[uint64][]byte) {
	t.Helper()
	st := newMemStore(nslots * SlotBytes)
	now := sim.Time(0)
	r, err := New(st, Options{Now: func() sim.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		now = sim.Time(i * 10)
		r.Append(KindDirty, 0, int64(i%13), int64(i), 0, 0)
	}
	data = append([]byte(nil), st.b...)
	slotOf = make(map[uint64][]byte)
	for _, rec := range Walk(data).Records {
		slot := (rec.Seq - 1) % uint64(nslots)
		slotOf[rec.Seq] = append([]byte(nil), data[slot*SlotBytes:(slot+1)*SlotBytes]...)
	}
	return data, slotOf
}

// verifyNoInvention checks every adopted record byte-equals the slot it
// claims in the (possibly damaged) image — Walk cannot yield a record
// that is not literally present and intact.
func verifyNoInvention(t *testing.T, data []byte, w WalkResult) {
	t.Helper()
	nslots := uint64(len(data)) / SlotBytes
	var buf [SlotBytes]byte
	for _, rec := range w.Records {
		slot := (rec.Seq - 1) % nslots
		encodeRecord(buf[:], rec)
		if !bytes.Equal(buf[:], data[slot*SlotBytes:(slot+1)*SlotBytes]) {
			t.Fatalf("invented record: seq %d does not byte-match slot %d", rec.Seq, slot)
		}
	}
}

// TestWalkEveryTruncationOffset zeroes the tail of the image from every
// offset — every possible torn-write suffix — and requires the walk to
// adopt exactly the fully intact slots: nothing invented, nothing
// intact dropped, no panic.
func TestWalkEveryTruncationOffset(t *testing.T) {
	for _, tc := range []struct{ nslots, n int }{
		{16, 10},     // partial ring
		{16, 16 * 2}, // wrapped ring
	} {
		data, _ := buildRing(t, tc.nslots, tc.n)
		orig := append([]byte(nil), data...)
		for k := 0; k <= len(data); k++ {
			tr := append([]byte(nil), orig[:k]...)
			tr = append(tr, make([]byte, len(orig)-k)...)
			w := Walk(tr)
			verifyNoInvention(t, tr, w)
			// Every slot untouched by the truncation must be adopted.
			want := 0
			for s := 0; s+SlotBytes <= len(orig); s += SlotBytes {
				if s+SlotBytes <= k && !allZero(orig[s:s+SlotBytes]) {
					want++
				}
			}
			got := 0
			for _, rec := range w.Records {
				slot := int((rec.Seq - 1) % uint64(tc.nslots))
				if (slot+1)*SlotBytes <= k {
					got++
				}
			}
			if got != want {
				t.Fatalf("nslots=%d n=%d trunc=%d: adopted %d intact slots, want %d",
					tc.nslots, tc.n, k, got, want)
			}
		}
	}
}

// TestWalkEverySingleByteCorruption flips each byte of the image in
// turn: exactly the slot containing the flip must vanish (FNV-1a's
// XOR-and-multiply steps are bijective, so any single-byte change is
// always detected), every other slot must survive intact, and nothing
// may be invented.
func TestWalkEverySingleByteCorruption(t *testing.T) {
	const nslots, n = 16, 12
	data, _ := buildRing(t, nslots, n)
	base := Walk(data)
	if len(base.Records) != n {
		t.Fatalf("base walk: %d records", len(base.Records))
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xA5
		w := Walk(mut)
		verifyNoInvention(t, mut, w)
		hitSlot := i / SlotBytes
		for _, rec := range w.Records {
			if int((rec.Seq-1)%uint64(nslots)) == hitSlot {
				t.Fatalf("byte %d: corrupted slot %d still adopted (seq %d)", i, hitSlot, rec.Seq)
			}
		}
		wantLost := 0
		if hitSlot < n { // flips inside a written slot lose that one record
			wantLost = 1
		}
		if len(w.Records) != n-wantLost {
			t.Fatalf("byte %d: %d records adopted, want %d", i, len(w.Records), n-wantLost)
		}
	}
}

func TestWalkOddLengthsAndEmpty(t *testing.T) {
	for _, n := range []int{0, 1, SlotBytes - 1, SlotBytes + 3} {
		w := Walk(make([]byte, n))
		if len(w.Records) != 0 || w.LastSeq != 0 {
			t.Fatalf("len %d: unexpected records", n)
		}
	}
}

func TestSinkTeeRules(t *testing.T) {
	r, st, now := testRecorder(t, 64)
	reg := obs.NewRegistry()
	reg.SetSink(r)

	*now = 50
	reg.Gauge("core_dirty_pages").Set(7)
	reg.Gauge("core_dirty_pages").Set(7) // no change: no record
	reg.Gauge("core_dirty_budget_pages").Set(8)
	reg.Gauge("core_health_state").Set(2)
	reg.Counter("serve_shed_overload_total").Inc()
	reg.Counter("unrelated_total").Inc() // not in the rules: ignored
	reg.Gauge("unrelated_gauge").Set(3)  // ignored
	tr := reg.Tracer()
	sp := tr.Begin("core.clean", 10)
	tr.Finish(sp, 40, "ok")
	sp2 := tr.Begin("serve.request", 10) // span not in rules: ignored
	tr.Finish(sp2, 20, "ok")

	w := Walk(st.b)
	type ev struct {
		kind, code uint16
		a0         int64
	}
	var got []ev
	for _, rec := range w.Records {
		got = append(got, ev{rec.Kind, rec.Code, rec.Args[0]})
	}
	want := []ev{
		{KindDirty, 0, 7},
		{KindBudget, 0, 8},
		{KindLadder, 2, 2},
		{KindServe, CodeShedOverload, 1},
		{KindSpan, CodeSpanClean, 10},
	}
	if len(got) != len(want) {
		t.Fatalf("teed %d records, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestLadderRecordCarriesStateInCode(t *testing.T) {
	r, st, _ := testRecorder(t, 16)
	reg := obs.NewRegistry()
	reg.SetSink(r)
	reg.Gauge("core_health_state").Set(3) // ReadOnly
	w := Walk(st.b)
	if len(w.Records) != 1 || w.Records[0].Kind != KindLadder || w.Records[0].Code != 3 {
		t.Fatalf("ladder record: %+v", w.Records)
	}
	rep := BuildReport(w)
	if rep.FinalLadder != 3 {
		t.Fatalf("FinalLadder = %d", rep.FinalLadder)
	}
}

func TestBuildReportTrajectories(t *testing.T) {
	r, st, now := testRecorder(t, 64)
	r.Boot(8)
	series := []struct {
		at     sim.Time
		dirty  int64
		budget int64
	}{{10, 1, 8}, {20, 3, 8}, {30, 5, 6}, {40, 6, 6}}
	for _, s := range series {
		*now = s.at
		r.Append(KindDirty, 0, s.dirty, 0, 0, 0)
		r.Append(KindBudget, 0, s.budget, 0, 0, 0)
	}
	*now = 45
	r.Append(KindLadder, 1, 1, 0, 0, 0)

	w, err := ReadAndWalk(st)
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(w)
	if len(rep.Dirty) != 4 || len(rep.Budget) != 4 {
		t.Fatalf("trajectories: %d dirty, %d budget points", len(rep.Dirty), len(rep.Budget))
	}
	if rep.CrashDirty != 6 || rep.CrashBudget != 6 || rep.FinalLadder != 1 || rep.CrashAt != 45 {
		t.Fatalf("crash instant: dirty=%d budget=%d ladder=%d at=%d",
			rep.CrashDirty, rep.CrashBudget, rep.FinalLadder, rep.CrashAt)
	}
	if rep.Dirty[2].Value != 5 || rep.Dirty[2].At != 30 {
		t.Fatalf("dirty[2] = %+v", rep.Dirty[2])
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf, 5); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"crash instant:", "dirty=6", "budget=6", "ladder=degraded", "timeline (5 events):"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("report text missing %q:\n%s", frag, out)
		}
	}
}

func TestReportEmptyRing(t *testing.T) {
	rep := BuildReport(Walk(make([]byte, 4*SlotBytes)))
	if rep.CrashDirty != -1 || rep.CrashBudget != -1 || rep.FinalLadder != -1 {
		t.Fatalf("empty ring report: %+v", rep)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dirty=? budget=? ladder=?") {
		t.Fatalf("empty report text:\n%s", buf.String())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{Now: func() sim.Time { return 0 }}); err == nil {
		t.Fatal("nil store accepted")
	}
	if _, err := New(newMemStore(SlotBytes), Options{Now: func() sim.Time { return 0 }}); err == nil {
		t.Fatal("one-slot store accepted")
	}
	if _, err := New(newMemStore(4*SlotBytes), Options{}); err == nil {
		t.Fatal("missing Now accepted")
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Append(KindMark, 1, 1, 2, 3, 4)
	r.Boot(1)
	if r.LastSeq() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}
}

// TestAppendZeroAlloc is the benchmark-asserted hot-path property: an
// append, and the sink paths that feed it, allocate nothing.
func TestAppendZeroAlloc(t *testing.T) {
	r, _, _ := testRecorder(t, 64)
	if n := testing.AllocsPerRun(200, func() {
		r.Append(KindDirty, 0, 1, 2, 3, 4)
	}); n != 0 {
		t.Fatalf("Append allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		r.GaugeSet("core_dirty_pages", 5)
		r.CounterAdd("serve_shed_overload_total", 1, 9)
	}); n != 0 {
		t.Fatalf("sink path allocates %.1f/op", n)
	}
}

func BenchmarkBlackBoxAppend(b *testing.B) {
	st := newMemStore(128 * SlotBytes)
	r, err := New(st, Options{Now: func() sim.Time { return 0 }})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Append(KindDirty, 0, int64(i), 0, 0, 0)
	}
}

// FuzzBlackBoxWalk feeds arbitrary bytes to the walk: it must never
// panic, never adopt a record that is not literally intact in the
// image, and keep sequences strictly increasing.
func FuzzBlackBoxWalk(f *testing.F) {
	seedData := func(nslots, n int) []byte {
		st := newMemStore(nslots * SlotBytes)
		r, _ := New(st, Options{Now: func() sim.Time { return 0 }})
		for i := 0; i < n; i++ {
			r.Append(KindDirty, 0, int64(i), 0, 0, 0)
		}
		return st.b
	}
	f.Add([]byte{})
	f.Add(make([]byte, 3*SlotBytes))
	f.Add(seedData(8, 5))
	f.Add(seedData(8, 20))
	torn := seedData(8, 5)
	copy(torn[4*SlotBytes+30:], make([]byte, 20))
	f.Add(torn)
	f.Fuzz(func(t *testing.T, data []byte) {
		w := Walk(data)
		nslots := uint64(len(data)) / SlotBytes
		if uint64(len(w.Records)) > nslots {
			t.Fatalf("more records than slots: %d > %d", len(w.Records), nslots)
		}
		var buf [SlotBytes]byte
		var prev uint64
		for _, rec := range w.Records {
			if rec.Seq <= prev {
				t.Fatalf("sequence not strictly increasing: %d after %d", rec.Seq, prev)
			}
			prev = rec.Seq
			slot := (rec.Seq - 1) % nslots
			encodeRecord(buf[:], rec)
			if !bytes.Equal(buf[:], data[slot*SlotBytes:(slot+1)*SlotBytes]) {
				t.Fatalf("adopted record seq %d not literally present in slot %d", rec.Seq, slot)
			}
		}
		// The report builder must also hold on arbitrary walks.
		rep := BuildReport(w)
		var sink bytes.Buffer
		if err := rep.WriteText(&sink, 10); err != nil {
			t.Fatal(err)
		}
	})
}
