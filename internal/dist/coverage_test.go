package dist

import (
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

func TestZipfCoverageBasics(t *testing.T) {
	// Covering 100% of draws needs all items that have mass — for zipf,
	// that's every item.
	if got := ZipfCoverage(100, 0.99, 1.0); got != 1.0 {
		t.Fatalf("100%% coverage = %v, want 1.0", got)
	}
	// Covering 90% needs far fewer than 90% of items.
	got := ZipfCoverage(100000, 0.99, 0.90)
	if got > 0.5 {
		t.Fatalf("90%% coverage of zipf = %v items fraction; not skewed enough", got)
	}
}

// Fig 5's central claim: the fraction needed for a fixed percentile
// SHRINKS as the total item count grows.
func TestZipfCoverageShrinksWithScale(t *testing.T) {
	small := ZipfCoverage(10_000, 0.99, 0.90)
	medium := ZipfCoverage(100_000, 0.99, 0.90)
	large := ZipfCoverage(1_000_000, 0.99, 0.90)
	if !(small > medium && medium > large) {
		t.Fatalf("coverage fractions did not shrink with scale: %v, %v, %v", small, medium, large)
	}
}

func TestZipfCoverageMonotoneInPercentile(t *testing.T) {
	p90 := ZipfCoverage(100_000, 0.99, 0.90)
	p95 := ZipfCoverage(100_000, 0.99, 0.95)
	p99 := ZipfCoverage(100_000, 0.99, 0.99)
	if !(p90 < p95 && p95 < p99) {
		t.Fatalf("coverage not monotone in percentile: %v, %v, %v", p90, p95, p99)
	}
}

func TestZipfCoverageSeriesShape(t *testing.T) {
	counts := []int64{1_000, 10_000, 100_000}
	pcts := []float64{0.90, 0.99}
	series := ZipfCoverageSeries(counts, 0.99, pcts)
	if len(series) != 2 || len(series[0]) != 3 {
		t.Fatalf("series shape = %dx%d", len(series), len(series[0]))
	}
	for pi := range series {
		for ni := 1; ni < len(series[pi]); ni++ {
			if series[pi][ni].Fraction >= series[pi][ni-1].Fraction {
				t.Fatalf("series %d not decreasing at point %d", pi, ni)
			}
		}
	}
}

func TestZipfCoveragePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { ZipfCoverage(0, 0.99, 0.9) },
		func() { ZipfCoverage(10, 0.99, 0) },
		func() { ZipfCoverage(10, 0.99, 1.1) },
		func() { EmpiricalCoverage(nil, 0, 0.9) },
		func() { EmpiricalCoverage(map[int64]uint64{1: 1}, 10, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestEmpiricalCoverageKnownCase(t *testing.T) {
	// Item 0: 90 draws; items 1..10: 1 draw each. 90% of 100 draws is
	// covered by exactly the first item.
	counts := map[int64]uint64{0: 90}
	for i := int64(1); i <= 10; i++ {
		counts[i] = 1
	}
	got := EmpiricalCoverage(counts, 100, 0.90)
	if got != 1.0/100 {
		t.Fatalf("coverage = %v, want 0.01", got)
	}
	// 99% needs the top item plus 9 of the singletons.
	got = EmpiricalCoverage(counts, 100, 0.99)
	if got != 10.0/100 {
		t.Fatalf("99%% coverage = %v, want 0.10", got)
	}
}

func TestEmpiricalCoverageEmpty(t *testing.T) {
	if got := EmpiricalCoverage(map[int64]uint64{}, 10, 0.9); got != 0 {
		t.Fatalf("empty coverage = %v", got)
	}
}

// The analytic and empirical computations must agree on sampled zipf
// draws.
func TestAnalyticMatchesEmpirical(t *testing.T) {
	rng := sim.NewRNG(11)
	const n = 10000
	z := NewZipfian(rng, n, 0.99)
	counts := make(map[int64]uint64)
	for i := 0; i < 500000; i++ {
		counts[z.Next()]++
	}
	analytic := ZipfCoverage(n, 0.99, 0.90)
	empirical := EmpiricalCoverage(counts, n, 0.90)
	ratio := empirical / analytic
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("analytic %v vs empirical %v diverge", analytic, empirical)
	}
}

// Property: EmpiricalCoverage is in [0, 1] and monotone in percentile for
// arbitrary count multisets.
func TestEmpiricalCoverageProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make(map[int64]uint64)
		for i, c := range raw {
			if c > 0 {
				counts[int64(i)] = uint64(c)
			}
		}
		n := int64(len(raw) + 1)
		c90 := EmpiricalCoverage(counts, n, 0.90)
		c99 := EmpiricalCoverage(counts, n, 0.99)
		return c90 >= 0 && c99 <= 1 && c90 <= c99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortDescending(t *testing.T) {
	a := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	sortDescending(a)
	for i := 1; i < len(a); i++ {
		if a[i] > a[i-1] {
			t.Fatalf("not descending: %v", a)
		}
	}
	sortDescending(nil) // must not panic
}
