// Package dist implements the request distributions the paper's
// evaluation depends on: the classic YCSB Zipfian generator (Gray et
// al.'s algorithm, θ = 0.99), its scrambled variant (hot keys spread over
// the keyspace), the "latest" distribution (YCSB-D's recency bias),
// hotspot, and uniform — plus the analytic Zipf coverage computation
// behind Fig 5.
package dist

import (
	"fmt"
	"math"

	"viyojit/internal/sim"
)

// Generator produces item indices in [0, n) for some item count n fixed
// at construction (Latest supports growth; see AddItem).
type Generator interface {
	Next() int64
}

// Uniform draws uniformly from [0, n).
type Uniform struct {
	rng *sim.RNG
	n   int64
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(rng *sim.RNG, n int64) *Uniform {
	if n <= 0 {
		panic(fmt.Sprintf("dist: NewUniform with n=%d", n))
	}
	return &Uniform{rng: rng, n: n}
}

// Next implements Generator.
func (u *Uniform) Next() int64 { return u.rng.Int63n(u.n) }

// ZipfianConstant is YCSB's default skew parameter.
const ZipfianConstant = 0.99

// Zipfian draws from a Zipf distribution over [0, n): item i is drawn
// with probability proportional to 1/(i+1)^θ, so low indices are hot.
// This is the standard YCSB generator (Gray et al., "Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94).
type Zipfian struct {
	rng   *sim.RNG
	items int64
	theta float64

	alpha, zetan, eta, zeta2theta float64
	countForZeta                  int64
}

// NewZipfian returns a Zipfian generator over [0, items) with skew theta
// in (0, 1).
func NewZipfian(rng *sim.RNG, items int64, theta float64) *Zipfian {
	if items <= 0 {
		panic(fmt.Sprintf("dist: NewZipfian with items=%d", items))
	}
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("dist: NewZipfian with theta=%v outside (0,1)", theta))
	}
	z := &Zipfian{rng: rng, items: items, theta: theta}
	z.zeta2theta = zetaStatic(2, theta)
	z.zetan = zetaStatic(items, theta)
	z.countForZeta = items
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = z.etaNow()
	return z
}

func (z *Zipfian) etaNow() float64 {
	return (1 - math.Pow(2.0/float64(z.items), 1-z.theta)) / (1 - z.zeta2theta/z.zetan)
}

// zetaStatic computes the generalized harmonic number sum_{i=1..n} 1/i^θ.
func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements Generator.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.items) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// grow extends the item count, updating zetan incrementally (YCSB's
// ZetaIncrementally); used by Latest when records are inserted.
func (z *Zipfian) grow(items int64) {
	if items <= z.items {
		return
	}
	for i := z.countForZeta + 1; i <= items; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.countForZeta = items
	z.items = items
	z.eta = z.etaNow()
}

// fnvOffset64 and fnvPrime64 are the FNV-1a constants used by YCSB's
// scrambled generator.
const (
	fnvOffset64 = 0xCBF29CE484222325
	fnvPrime64  = 0x100000001B3
)

// fnvHash64 is YCSB's 64-bit FNV-1a over the integer's bytes.
func fnvHash64(v uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		octet := v & 0xFF
		v >>= 8
		h ^= octet
		h *= fnvPrime64
	}
	return h
}

// ScrambledZipfian draws Zipf-skewed indices whose popular items are
// scattered across [0, n) rather than clustered at 0 — the distribution
// YCSB actually uses for workloads A/B/C/F, and the right model for "hot
// pages spread over the heap".
type ScrambledZipfian struct {
	z *Zipfian
	n int64
}

// NewScrambledZipfian returns a scrambled Zipfian generator over [0, n).
func NewScrambledZipfian(rng *sim.RNG, n int64, theta float64) *ScrambledZipfian {
	return &ScrambledZipfian{z: NewZipfian(rng, n, theta), n: n}
}

// Next implements Generator.
func (s *ScrambledZipfian) Next() int64 {
	return int64(fnvHash64(uint64(s.z.Next())) % uint64(s.n))
}

// Latest biases toward recently inserted items (YCSB-D: "read latest").
// Next returns max−1−zipf, so the newest item is the hottest. AddItem
// grows the window as records are inserted.
type Latest struct {
	z     *Zipfian
	items int64
}

// NewLatest returns a latest-biased generator over an initial [0, items).
func NewLatest(rng *sim.RNG, items int64, theta float64) *Latest {
	return &Latest{z: NewZipfian(rng, items, theta), items: items}
}

// AddItem extends the item window after an insert.
func (l *Latest) AddItem() {
	l.items++
	l.z.grow(l.items)
}

// Items returns the current window size.
func (l *Latest) Items() int64 { return l.items }

// Next implements Generator.
func (l *Latest) Next() int64 {
	v := l.items - 1 - l.z.Next()
	if v < 0 {
		// The underlying zipf can (rarely) return items-… beyond the
		// window due to float rounding; clamp.
		v = 0
	}
	return v
}

// HotSpot sends hotOpFraction of draws to the first hotSetFraction of the
// keyspace, uniformly within each side — a simple two-level skew model
// used by the trace generators.
type HotSpot struct {
	rng           *sim.RNG
	n             int64
	hotItems      int64
	hotOpFraction float64
}

// NewHotSpot returns a hotspot generator over [0, n) where hotOpFraction
// of draws land in the first hotSetFraction·n items.
func NewHotSpot(rng *sim.RNG, n int64, hotSetFraction, hotOpFraction float64) *HotSpot {
	if n <= 0 {
		panic(fmt.Sprintf("dist: NewHotSpot with n=%d", n))
	}
	if hotSetFraction <= 0 || hotSetFraction > 1 || hotOpFraction < 0 || hotOpFraction > 1 {
		panic(fmt.Sprintf("dist: NewHotSpot fractions (%v, %v) out of range", hotSetFraction, hotOpFraction))
	}
	hot := int64(float64(n) * hotSetFraction)
	if hot < 1 {
		hot = 1
	}
	return &HotSpot{rng: rng, n: n, hotItems: hot, hotOpFraction: hotOpFraction}
}

// Next implements Generator.
func (h *HotSpot) Next() int64 {
	if h.rng.Float64() < h.hotOpFraction {
		return h.rng.Int63n(h.hotItems)
	}
	if h.hotItems == h.n {
		return h.rng.Int63n(h.n)
	}
	return h.hotItems + h.rng.Int63n(h.n-h.hotItems)
}
