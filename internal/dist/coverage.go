package dist

import (
	"fmt"
	"math"
)

// ZipfCoverage returns the fraction of items (of n total) needed to
// account for the given percentile of draws under a Zipf distribution
// with skew theta — analytically, from the generalized harmonic numbers,
// so Fig 5 is exact rather than sampled.
//
// percentile is in (0, 1], e.g. 0.90 for "90% of the writes".
func ZipfCoverage(n int64, theta, percentile float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dist: ZipfCoverage with n=%d", n))
	}
	if percentile <= 0 || percentile > 1 {
		panic(fmt.Sprintf("dist: ZipfCoverage percentile %v outside (0,1]", percentile))
	}
	total := zetaStatic(n, theta)
	target := percentile * total
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
		if sum >= target {
			return float64(i) / float64(n)
		}
	}
	return 1.0
}

// CoveragePoint is one (totalItems → coverage fraction) sample in a Fig-5
// series.
type CoveragePoint struct {
	TotalItems int64
	Fraction   float64
}

// ZipfCoverageSeries computes Fig 5's series: for each item count, the
// fraction of items covering each percentile of draws. The result is
// indexed [percentile][point].
func ZipfCoverageSeries(itemCounts []int64, theta float64, percentiles []float64) [][]CoveragePoint {
	out := make([][]CoveragePoint, len(percentiles))
	for pi, p := range percentiles {
		series := make([]CoveragePoint, len(itemCounts))
		for ni, n := range itemCounts {
			series[ni] = CoveragePoint{TotalItems: n, Fraction: ZipfCoverage(n, theta, p)}
		}
		out[pi] = series
	}
	return out
}

// EmpiricalCoverage computes the same quantity from observed draw counts:
// the fraction of distinct items (of total n) whose cumulative count
// reaches the percentile of all draws, counting the most-drawn items
// first. It is the measurement the trace analysis (Figs 3–4) applies to
// real event streams.
func EmpiricalCoverage(counts map[int64]uint64, n int64, percentile float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("dist: EmpiricalCoverage with n=%d", n))
	}
	if percentile <= 0 || percentile > 1 {
		panic(fmt.Sprintf("dist: EmpiricalCoverage percentile %v outside (0,1]", percentile))
	}
	if len(counts) == 0 {
		return 0
	}
	var total uint64
	all := make([]uint64, 0, len(counts))
	for _, c := range counts {
		all = append(all, c)
		total += c
	}
	// Sort descending by count.
	sortDescending(all)
	target := percentile * float64(total)
	var cum uint64
	for i, c := range all {
		cum += c
		if float64(cum) >= target {
			return float64(i+1) / float64(n)
		}
	}
	return float64(len(all)) / float64(n)
}

// sortDescending sorts counts high-to-low without pulling in sort's
// interface machinery for a hot analysis loop (simple introsort via
// stdlib would be fine too; this keeps the dependency footprint minimal
// and is easily testable).
func sortDescending(a []uint64) {
	// Heapsort: O(n log n), in place, deterministic.
	n := len(a)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMin(a, i, n)
	}
	for end := n - 1; end > 0; end-- {
		a[0], a[end] = a[end], a[0]
		siftDownMin(a, 0, end)
	}
}

// siftDownMin maintains a min-heap so the heapsort above yields
// descending order.
func siftDownMin(a []uint64, start, end int) {
	root := start
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && a[child+1] < a[child] {
			child++
		}
		if a[root] <= a[child] {
			return
		}
		a[root], a[child] = a[child], a[root]
		root = child
	}
}
