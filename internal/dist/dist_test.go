package dist

import (
	"testing"

	"viyojit/internal/sim"
)

func drawCounts(g Generator, n int64, draws int) map[int64]uint64 {
	counts := make(map[int64]uint64)
	for i := 0; i < draws; i++ {
		v := g.Next()
		counts[v]++
	}
	return counts
}

func assertInRange(t *testing.T, g Generator, n int64, draws int) map[int64]uint64 {
	t.Helper()
	counts := drawCounts(g, n, draws)
	for v := range counts {
		if v < 0 || v >= n {
			t.Fatalf("draw %d outside [0,%d)", v, n)
		}
	}
	return counts
}

func TestUniformRangeAndSpread(t *testing.T) {
	rng := sim.NewRNG(1)
	counts := assertInRange(t, NewUniform(rng, 100), 100, 50000)
	if len(counts) < 95 {
		t.Fatalf("uniform over 100 items hit only %d distinct", len(counts))
	}
	for v, c := range counts {
		if c > 1200 { // expected 500 ± noise
			t.Fatalf("uniform item %d drawn %d times; too skewed", v, c)
		}
	}
}

func TestZipfianHeadIsHot(t *testing.T) {
	rng := sim.NewRNG(2)
	counts := assertInRange(t, NewZipfian(rng, 1000, ZipfianConstant), 1000, 100000)
	// Item 0 must dominate: classic zipf head.
	if counts[0] < counts[500]*10 {
		t.Fatalf("item 0 drawn %d times vs item 500 %d; head not hot", counts[0], counts[500])
	}
	// The top 20% of items should cover well over half the draws.
	var headSum, total uint64
	for v, c := range counts {
		total += c
		if v < 200 {
			headSum += c
		}
	}
	if float64(headSum)/float64(total) < 0.6 {
		t.Fatalf("head coverage = %v, want > 0.6", float64(headSum)/float64(total))
	}
}

func TestZipfianPanicsOnBadArgs(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, fn := range []func(){
		func() { NewZipfian(rng, 0, 0.99) },
		func() { NewZipfian(rng, 10, 0) },
		func() { NewZipfian(rng, 10, 1) },
		func() { NewUniform(rng, 0) },
		func() { NewHotSpot(rng, 0, 0.2, 0.8) },
		func() { NewHotSpot(rng, 10, 0, 0.8) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestScrambledZipfianSpreadsHotKeys(t *testing.T) {
	rng := sim.NewRNG(3)
	const n = 1000
	counts := assertInRange(t, NewScrambledZipfian(rng, n, ZipfianConstant), n, 100000)
	// Still skewed: some item dominates.
	var max uint64
	var hot int64
	for v, c := range counts {
		if c > max {
			max, hot = c, v
		}
	}
	if max < 5000 {
		t.Fatalf("scrambled zipfian max count %d; lost its skew", max)
	}
	// But the hottest item is scattered, not item 0 (with overwhelming
	// probability under FNV).
	if hot == 0 {
		t.Log("hottest item is 0; possible but unlikely — check scrambling")
	}
	// Spread check: the top-10 hottest items should not all be in the
	// first 1% of the keyspace.
	inHead := 0
	for v, c := range counts {
		if c > max/100 && v < n/100 {
			inHead++
		}
	}
	if inHead > 5 {
		t.Fatalf("%d very hot items clustered in the first 1%% of the keyspace", inHead)
	}
}

func TestLatestFavoursNewest(t *testing.T) {
	rng := sim.NewRNG(4)
	l := NewLatest(rng, 1000, ZipfianConstant)
	counts := drawCounts(l, 1000, 100000)
	if counts[999] < counts[100]*5 {
		t.Fatalf("newest item drawn %d vs old item %d; recency bias missing", counts[999], counts[100])
	}
}

func TestLatestGrowsWithInserts(t *testing.T) {
	rng := sim.NewRNG(5)
	l := NewLatest(rng, 100, ZipfianConstant)
	for i := 0; i < 100; i++ {
		l.AddItem()
	}
	if l.Items() != 200 {
		t.Fatalf("items = %d, want 200", l.Items())
	}
	counts := drawCounts(l, 200, 50000)
	for v := range counts {
		if v < 0 || v >= 200 {
			t.Fatalf("draw %d outside grown window", v)
		}
	}
	// The newly inserted tail must now be the hot region.
	var newHalf, oldHalf uint64
	for v, c := range counts {
		if v >= 100 {
			newHalf += c
		} else {
			oldHalf += c
		}
	}
	if newHalf < oldHalf {
		t.Fatalf("new half drawn %d vs old half %d; window did not shift", newHalf, oldHalf)
	}
}

func TestHotSpotFractions(t *testing.T) {
	rng := sim.NewRNG(6)
	const n = 1000
	h := NewHotSpot(rng, n, 0.1, 0.9)
	counts := assertInRange(t, h, n, 100000)
	var hot, cold uint64
	for v, c := range counts {
		if v < 100 {
			hot += c
		} else {
			cold += c
		}
	}
	frac := float64(hot) / float64(hot+cold)
	if frac < 0.87 || frac > 0.93 {
		t.Fatalf("hot fraction = %v, want ~0.9", frac)
	}
}

func TestHotSpotFullHotSet(t *testing.T) {
	rng := sim.NewRNG(7)
	h := NewHotSpot(rng, 10, 1.0, 0.5)
	for i := 0; i < 1000; i++ {
		if v := h.Next(); v < 0 || v >= 10 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}

func TestDeterminismAcrossGenerators(t *testing.T) {
	mk := func() []int64 {
		rng := sim.NewRNG(42)
		g := NewScrambledZipfian(rng, 500, ZipfianConstant)
		out := make([]int64, 100)
		for i := range out {
			out[i] = g.Next()
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}
