package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"viyojit/internal/sim"
)

// memStore mirrors the pheap test store.
type memStore struct{ data []byte }

func newMemStore(size int) *memStore { return &memStore{data: make([]byte, size)} }

func (m *memStore) Size() int64 { return int64(len(m.data)) }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(p, m.data[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.data)) {
		return errors.New("memStore: out of range")
	}
	copy(m.data[off:], p)
	return nil
}

func TestCreateValidation(t *testing.T) {
	if _, err := Create(newMemStore(100)); err == nil {
		t.Fatal("tiny store accepted")
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Create(newMemStore(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		payload := []byte(fmt.Sprintf("txn-%03d", i))
		want = append(want, payload)
		seq, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	var got [][]byte
	if err := l.Replay(func(seq uint64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendRejectsEmptyAndFull(t *testing.T) {
	l, err := Create(newMemStore(recordBase + 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := l.Append(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(make([]byte, 64)); !errors.Is(err, ErrFull) {
		t.Fatalf("overfull append: %v, want ErrFull", err)
	}
}

func TestOpenRecoversCommittedRecords(t *testing.T) {
	ms := newMemStore(1 << 16)
	l1, err := Create(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l1.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l2, err := Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("recovered %d records, want 10", n)
	}
	// Appends continue with the right sequence.
	seq, err := l2.Append([]byte("post-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("post-recovery seq = %d, want 11", seq)
	}
}

func TestOpenRejectsNonLog(t *testing.T) {
	if _, err := Open(newMemStore(1 << 16)); err == nil {
		t.Fatal("unformatted store accepted")
	}
}

func TestTornRecordStopsReplay(t *testing.T) {
	ms := newMemStore(1 << 16)
	l, err := Create(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a torn append: record bytes partially written, header
	// already advanced (the worst case). Corrupt the last record's
	// payload in place.
	ms.data[l.Head()-1] ^= 0xFF
	l2, err := Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("replay returned %d records, want 4 (prefix before the torn one)", n)
	}
}

func TestTornHeaderRebuilds(t *testing.T) {
	ms := newMemStore(1 << 16)
	l, err := Create(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// Tear the header's head field completely.
	for i := 0; i < 8; i++ {
		ms.data[offHead+i] = 0xFF
	}
	l2, err := Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	n, err := l2.Records()
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Fatalf("rebuilt log has %d records, want 7", n)
	}
	if seq, err := l2.Append([]byte("after")); err != nil || seq != 8 {
		t.Fatalf("append after rebuild: seq=%d err=%v", seq, err)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	l, err := Create(newMemStore(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("boom")
	if err := l.Replay(func(uint64, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("replay error = %v, want boom", err)
	}
}

func TestReset(t *testing.T) {
	ms := newMemStore(1 << 16)
	l, err := Create(ms)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append([]byte("old")); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	n, err := l.Records()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("records after reset = %d", n)
	}
	// New appends start at seq 1 and old bytes never resurface.
	if seq, err := l.Append([]byte("new")); err != nil || seq != 1 {
		t.Fatalf("append after reset: seq=%d err=%v", seq, err)
	}
	l2, err := Open(ms)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l2.Records(); n != 1 {
		t.Fatalf("reopened log has %d records, want 1", n)
	}
}

// A reused log must not report the pre-reset torn tail: Reset clears
// the StopReason along with the head, so recovery code keying off
// LastStop sees a clean log.
func TestResetClearsStopReason(t *testing.T) {
	ms := newMemStore(1 << 16)
	l, err := Create(ms)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: bytes of a second record, header never advanced,
	// then a corrupted header so the scan sees garbage.
	if err := ms.WriteAt([]byte{0xFF, 0xFF, 0xFF, 0x7F}, l.Head()); err != nil {
		t.Fatal(err)
	}
	l.head = -1 // force a full scan, like Open's rebuild after a torn header
	if err := l.Replay(func(uint64, []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if l.LastStop() != StopTorn {
		t.Fatalf("setup: LastStop = %v, want StopTorn", l.LastStop())
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.LastStop() != StopHead {
		t.Fatalf("LastStop after Reset = %v, want StopHead (stale StopReason leaked)", l.LastStop())
	}
}

// Property: crash at any byte boundary during an append sequence loses at
// most the in-flight record; the committed prefix always replays intact.
func TestCrashPrefixProperty(t *testing.T) {
	f := func(seed uint64, nRecords uint8, cut uint16) bool {
		rng := sim.NewRNG(seed)
		ms := newMemStore(1 << 16)
		l, err := Create(ms)
		if err != nil {
			return false
		}
		var committed [][]byte
		for i := 0; i < int(nRecords)%30+1; i++ {
			payload := make([]byte, rng.Intn(100)+1)
			for j := range payload {
				payload[j] = byte(rng.Uint64())
			}
			if _, err := l.Append(payload); err != nil {
				return false
			}
			committed = append(committed, payload)
		}
		// Crash: zero a suffix of the store starting at a random point
		// AFTER the last committed record (modelling a torn in-flight
		// append beyond the head).
		start := l.Head() + int64(cut)%256
		if start < int64(len(ms.data)) {
			for i := start; i < int64(len(ms.data)); i++ {
				ms.data[i] = 0
			}
		}
		l2, err := Open(ms)
		if err != nil {
			return false
		}
		var got [][]byte
		if err := l2.Replay(func(_ uint64, p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(committed) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], committed[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
