package wal

import (
	"fmt"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// The log on an actual Viyojit mapping: appends run through the fault
// path and dirty budgeting, a power failure flushes the dirty pages, and
// the reopened log replays every committed transaction.
func TestLogSurvivesViyojitPowerFailure(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := mgr.Map("txlog", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	log, err := Create(mapping)
	if err != nil {
		t.Fatal(err)
	}

	const txns = 2000 // spans far more pages than the 64-page budget
	for i := 0; i < txns; i++ {
		if _, err := log.Append([]byte(fmt.Sprintf("UPDATE account SET balance=%06d", i))); err != nil {
			t.Fatal(err)
		}
		mgr.Pump()
	}
	if mgr.DirtyCount() > 64 {
		t.Fatalf("budget violated by log appends: %d", mgr.DirtyCount())
	}

	pm := power.Default()
	joules := pm.FlushWatts(region.Size()) * (dev.FlushTimeFor(64) + 5*sim.Millisecond).Seconds()
	report := mgr.PowerFail(pm, joules)
	if !report.Survived {
		t.Fatalf("power failure not covered: %+v", report)
	}
	if err := mgr.VerifyDurability(); err != nil {
		t.Fatal(err)
	}

	// Reboot: restore NV-DRAM from the SSD and reopen the log over the
	// recovered bytes.
	clock2 := sim.NewClock()
	events2 := sim.NewQueue()
	region2, err := nvdram.New(clock2, nvdram.Config{Size: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Restore every durable page into the new region (the same physical
	// SSD survived the power cycle).
	for p := 0; p < region2.NumPages(); p++ {
		page := region2.PageOf(int64(p) * 4096)
		if data, ok := dev.Durable(page); ok {
			if err := region2.RestorePage(page, data); err != nil {
				t.Fatal(err)
			}
		}
	}
	dev2 := ssd.New(clock2, events2, ssd.Config{})
	mgr2, err := core.NewManager(clock2, events2, region2, dev2, core.Config{DirtyBudgetPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	mapping2, err := mgr2.Map("txlog", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	log2, err := Open(mapping2)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := log2.Replay(func(seq uint64, payload []byte) error {
		want := fmt.Sprintf("UPDATE account SET balance=%06d", n)
		if string(payload) != want {
			return fmt.Errorf("record %d = %q, want %q", n, payload, want)
		}
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != txns {
		t.Fatalf("replayed %d transactions, want %d", n, txns)
	}
}
