// Package wal is a write-ahead log on Viyojit-managed NV-DRAM — the
// application-level companion the paper's introduction motivates: NVM's
// byte addressability makes database logging fast (the paper's refs [36]
// and [38] on storage-class-memory logging), and Viyojit makes the log's
// NV-DRAM affordable.
//
// Viyojit guarantees that every NV-DRAM *byte* survives power failure;
// it does not order application writes. The log provides the
// crash-consistency layer on top: records carry length, sequence number
// and an FNV checksum; a record's bytes are written before the head
// pointer advances; and Replay stops at the first torn or corrupt
// record. A power failure in the middle of an append therefore loses at
// most the in-flight record, never a committed prefix.
//
// Layout within the store:
//
//	header (first headerSize bytes):
//	  magic u64 | head u64 | sequence u64
//	records from recordBase:
//	  length u32 | seq u64 | checksum u64 | payload bytes
//
// The store is any pheap.Store-shaped surface: a Viyojit mapping, a
// baseline mapping, or a Mondrian tracker.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Store is the NV-DRAM surface the log lives in (same shape as
// pheap.Store).
type Store interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
}

const (
	magic = 0x56494A4C4F475631 // "VIJLOGV1"

	offMagic = 0
	offHead  = 8
	offSeq   = 16

	headerSize = 24
	recordBase = 4096 // records start on the second page

	recordHeaderSize = 4 + 8 + 8 // length u32, seq u64, checksum u64
)

// ErrFull is returned by Append when the log has no room for the record.
var ErrFull = errors.New("wal: log full")

// StopReason says why the most recent Replay stopped.
type StopReason int

const (
	// StopHead: the replay reached the committed head cleanly — every
	// record the header promised was present and valid.
	StopHead StopReason = iota
	// StopTorn: a record failed validation (zero length, out-of-order
	// sequence, bad checksum, or a length running past the store) — the
	// signature of a write torn by power failure. The valid prefix was
	// replayed; the torn tail was rejected, never mis-replayed.
	StopTorn
	// StopEnd: the scan ran out of store space without hitting the head
	// or an invalid record.
	StopEnd
)

func (r StopReason) String() string {
	switch r {
	case StopHead:
		return "head"
	case StopTorn:
		return "torn"
	case StopEnd:
		return "end"
	}
	return "unknown"
}

// Log is the append-only record log. It is not safe for concurrent use.
type Log struct {
	store Store
	head  int64  // next append offset
	seq   uint64 // next sequence number

	lastStop StopReason // why the most recent Replay stopped
}

// checksum is FNV-1a over seq and the payload.
func checksum(seq uint64, payload []byte) uint64 {
	h := uint64(0xCBF29CE484222325)
	var seqBytes [8]byte
	binary.LittleEndian.PutUint64(seqBytes[:], seq)
	for _, b := range seqBytes {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	for _, b := range payload {
		h ^= uint64(b)
		h *= 0x100000001B3
	}
	return h
}

// Create formats a fresh, empty log across the store.
func Create(store Store) (*Log, error) {
	if store.Size() < recordBase+recordHeaderSize+1 {
		return nil, fmt.Errorf("wal: store of %d bytes too small", store.Size())
	}
	l := &Log{store: store, head: recordBase, seq: 1}
	if err := l.writeHeader(); err != nil {
		return nil, err
	}
	var m [8]byte
	binary.LittleEndian.PutUint64(m[:], magic)
	if err := store.WriteAt(m[:], offMagic); err != nil {
		return nil, err
	}
	return l, nil
}

// Open attaches to an existing log (the recovery path), restoring the
// head and sequence from the persisted header and validating the magic.
// If the header's head itself was torn (it is 8 bytes, but be paranoid),
// Open falls back to scanning records from the base.
func Open(store Store) (*Log, error) {
	var m [8]byte
	if err := store.ReadAt(m[:], offMagic); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(m[:]) != magic {
		return nil, fmt.Errorf("wal: bad magic; store is not a log")
	}
	var hdr [16]byte
	if err := store.ReadAt(hdr[:], offHead); err != nil {
		return nil, err
	}
	l := &Log{
		store: store,
		head:  int64(binary.LittleEndian.Uint64(hdr[0:])),
		seq:   binary.LittleEndian.Uint64(hdr[8:]),
	}
	if l.head < recordBase || l.head > store.Size() || l.seq == 0 {
		// Corrupt header: rebuild by scanning.
		if err := l.rebuild(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// rebuild scans records from the base to find the true head. The
// sentinel head disables Replay's head-bound so the scan runs to the
// first invalid record.
func (l *Log) rebuild() error {
	l.head = -1
	l.seq = 1
	return l.Replay(func(uint64, []byte) error { return nil })
}

func (l *Log) writeHeader() error {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(l.head))
	binary.LittleEndian.PutUint64(hdr[8:], l.seq)
	return l.store.WriteAt(hdr[:], offHead)
}

// Append commits one record. The payload bytes and checksum are written
// first, the head pointer after — the ordering that makes a mid-append
// power failure lose only this record.
func (l *Log) Append(payload []byte) (seq uint64, err error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("wal: empty payload")
	}
	need := int64(recordHeaderSize + len(payload))
	if l.head+need > l.store.Size() {
		return 0, ErrFull
	}
	buf := make([]byte, need)
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:], l.seq)
	binary.LittleEndian.PutUint64(buf[12:], checksum(l.seq, payload))
	copy(buf[recordHeaderSize:], payload)
	if err := l.store.WriteAt(buf, l.head); err != nil {
		return 0, err
	}
	seq = l.seq
	l.head += need
	l.seq++
	if err := l.writeHeader(); err != nil {
		return 0, err
	}
	return seq, nil
}

// Replay invokes fn for every committed record in order, stopping
// cleanly at the head (or, after a crash that tore the header, at the
// first record that fails validation). fn returning an error aborts the
// replay with that error.
func (l *Log) Replay(fn func(seq uint64, payload []byte) error) error {
	off := int64(recordBase)
	expect := uint64(1)
	l.lastStop = StopEnd
	for off+recordHeaderSize <= l.store.Size() {
		if l.head >= recordBase && off >= l.head {
			l.lastStop = StopHead
			break // reached the committed head
		}
		var hdr [recordHeaderSize]byte
		if err := l.store.ReadAt(hdr[:], off); err != nil {
			return err
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		seq := binary.LittleEndian.Uint64(hdr[4:])
		sum := binary.LittleEndian.Uint64(hdr[12:])
		if length == 0 || seq != expect || off+recordHeaderSize+int64(length) > l.store.Size() {
			l.lastStop = StopTorn
			break // torn or never written
		}
		payload := make([]byte, length)
		if err := l.store.ReadAt(payload, off+recordHeaderSize); err != nil {
			return err
		}
		if checksum(seq, payload) != sum {
			l.lastStop = StopTorn
			break // torn record
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
		off += recordHeaderSize + int64(length)
		expect = seq + 1
	}
	// Synchronise in-memory state with what was actually valid (used by
	// rebuild; harmless otherwise).
	l.head = off
	l.seq = expect
	return nil
}

// LastStop reports why the most recent Replay stopped: cleanly at the
// committed head, or at a torn/corrupt record (the crash-recovery
// signal). Meaningful only after a Replay (directly or via Open's
// rebuild or Records).
func (l *Log) LastStop() StopReason { return l.lastStop }

// Records returns the number of committed records (by replaying the
// metadata only; O(records)).
func (l *Log) Records() (int, error) {
	n := 0
	err := l.Replay(func(uint64, []byte) error {
		n++
		return nil
	})
	return n, err
}

// Head returns the next append offset (for occupancy accounting).
func (l *Log) Head() int64 { return l.head }

// Reset truncates the log to empty (e.g. after checkpointing the state
// the log protects).
func (l *Log) Reset() error {
	l.head = recordBase
	l.seq = 1
	// A reused log starts with a clean history: without this, a Replay
	// of the pre-reset log that stopped on a torn tail would keep
	// reporting StopTorn after the reset, and recovery code keying off
	// LastStop would treat the fresh log as crash-damaged.
	l.lastStop = StopHead
	// Invalidate the first record header so a replay after reset stops
	// immediately even if old bytes follow.
	var zero [recordHeaderSize]byte
	if err := l.store.WriteAt(zero[:], recordBase); err != nil {
		return err
	}
	return l.writeHeader()
}
