package wal

import (
	"testing"
)

// FuzzOpenReplay hardens log recovery against arbitrary store contents:
// Open/Replay must never panic, and whatever replays must be
// self-consistent (sequence numbers strictly increasing from 1).
func FuzzOpenReplay(f *testing.F) {
	// Seed with a valid log image and mutations of it.
	valid := func() []byte {
		ms := newMemStore(recordBase + 4096)
		l, err := Create(ms)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]byte("seed-record")); err != nil {
				f.Fatal(err)
			}
		}
		return ms.data
	}()
	f.Add(valid)
	mutated := append([]byte(nil), valid...)
	mutated[recordBase+3] ^= 0xFF
	f.Add(mutated)
	f.Add(make([]byte, recordBase+64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < recordBase+recordHeaderSize+1 {
			return
		}
		ms := &memStore{data: append([]byte(nil), data...)}
		l, err := Open(ms)
		if err != nil {
			return
		}
		expect := uint64(1)
		if err := l.Replay(func(seq uint64, payload []byte) error {
			if seq != expect {
				t.Fatalf("replayed seq %d, expected %d", seq, expect)
			}
			if len(payload) == 0 {
				t.Fatal("replayed empty payload")
			}
			expect++
			return nil
		}); err != nil {
			t.Fatalf("replay errored on accepted log: %v", err)
		}
	})
}
