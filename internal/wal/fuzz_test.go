package wal

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzOpenReplay hardens log recovery against arbitrary store contents:
// Open/Replay must never panic, and whatever replays must be
// self-consistent (sequence numbers strictly increasing from 1).
func FuzzOpenReplay(f *testing.F) {
	// Seed with a valid log image and mutations of it.
	valid := func() []byte {
		ms := newMemStore(recordBase + 4096)
		l, err := Create(ms)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			if _, err := l.Append([]byte("seed-record")); err != nil {
				f.Fatal(err)
			}
		}
		return ms.data
	}()
	f.Add(valid)
	mutated := append([]byte(nil), valid...)
	mutated[recordBase+3] ^= 0xFF
	f.Add(mutated)
	f.Add(make([]byte, recordBase+64))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < recordBase+recordHeaderSize+1 {
			return
		}
		ms := &memStore{data: append([]byte(nil), data...)}
		l, err := Open(ms)
		if err != nil {
			return
		}
		expect := uint64(1)
		if err := l.Replay(func(seq uint64, payload []byte) error {
			if seq != expect {
				t.Fatalf("replayed seq %d, expected %d", seq, expect)
			}
			if len(payload) == 0 {
				t.Fatal("replayed empty payload")
			}
			expect++
			return nil
		}); err != nil {
			t.Fatalf("replay errored on accepted log: %v", err)
		}
	})
}

// FuzzReplay is the crash-corruption property test: build a known-good
// log, let the fuzzer corrupt or truncate an arbitrary byte range (the
// image a torn SSD write or mid-append power failure leaves behind), and
// require that whatever Replay accepts is an exact prefix of the records
// originally appended — corrupted tails are detected and rejected, never
// mis-replayed as different data.
func FuzzReplay(f *testing.F) {
	// The reference log: payloads of varied lengths so record boundaries
	// land at irregular offsets.
	var payloads [][]byte
	for i := 0; i < 8; i++ {
		p := bytes.Repeat([]byte{byte('A' + i)}, 5+i*9)
		binary.LittleEndian.PutUint32(p[:4], uint32(i))
		payloads = append(payloads, p)
	}
	pristine := func(tb testing.TB) []byte {
		ms := newMemStore(recordBase + 2048)
		l, err := Create(ms)
		if err != nil {
			tb.Fatal(err)
		}
		for _, p := range payloads {
			if _, err := l.Append(p); err != nil {
				tb.Fatal(err)
			}
		}
		return ms.data
	}
	img := pristine(f)
	f.Add(uint32(recordBase), uint8(7), uint8(200))  // clobber first record
	f.Add(uint32(offHead), uint8(8), uint8(0x55))    // tear the header head field
	f.Add(uint32(len(img)-40), uint8(40), uint8(1))  // tail corruption
	f.Add(uint32(recordBase+100), uint8(1), uint8(0x80)) // single bit-ish flip mid-log

	f.Fuzz(func(t *testing.T, off uint32, length uint8, xor uint8) {
		data := pristine(t)
		// Corrupt [off, off+length) with the xor pattern; clamp to the
		// image. xor==0 leaves the log intact (the identity case must
		// replay everything).
		start := int(off) % len(data)
		end := start + int(length)
		if end > len(data) {
			end = len(data)
		}
		for i := start; i < end; i++ {
			data[i] ^= xor
		}
		ms := &memStore{data: data}
		l, err := Open(ms)
		if err != nil {
			return // rejected outright: fine
		}
		var got [][]byte
		if err := l.Replay(func(_ uint64, payload []byte) error {
			got = append(got, append([]byte(nil), payload...))
			return nil
		}); err != nil {
			t.Fatalf("replay errored instead of stopping: %v", err)
		}
		if len(got) > len(payloads) {
			t.Fatalf("replayed %d records, only %d were ever appended", len(got), len(payloads))
		}
		for i, p := range got {
			if !bytes.Equal(p, payloads[i]) {
				t.Fatalf("record %d replayed as %q, appended %q — corruption mis-replayed", i, p, payloads[i])
			}
		}
		if xor == 0 && len(got) != len(payloads) {
			t.Fatalf("uncorrupted log replayed %d of %d records", len(got), len(payloads))
		}
	})
}
