// Package serve_test holds the serving-layer tests that exercise the
// full public stack (they import the viyojit root, which internal/serve
// cannot without a cycle): the goroutine-leak checker and the
// concurrency chaos test.
package serve_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"viyojit"
)

// checkLeaks snapshots the goroutine count and returns a verifier to
// defer: it fails the test (with full stacks) if the count has not
// returned to the baseline within a grace window. Hand-rolled on
// runtime.NumGoroutine so it needs no dependencies; the retry loop
// absorbs goroutines that are mid-exit when the test body returns.
func checkLeaks(t *testing.T) func() {
	t.Helper()
	runtime.GC()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			runtime.GC()
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				m := runtime.Stack(buf, true)
				t.Fatalf("goroutine leak: %d live, baseline %d\n%s", n, base, buf[:m])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func newSystem(t *testing.T) *viyojit.System {
	t.Helper()
	sys, err := viyojit.New(viyojit.Config{
		NVDRAMSize:           4 << 20,
		DisableHealthMonitor: true,
		DisableScrubber:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestServeStartStopNoLeak(t *testing.T) {
	verify := checkLeaks(t)
	sys := newSystem(t)
	store, err := sys.NewStore("leak", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sys.Serve(store, viyojit.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit(context.Background(), viyojit.ServeRequest{
		Write: true,
		Op: func(e viyojit.ServeExec) (any, error) {
			return nil, e.Store.Put([]byte("k"), []byte("v"))
		},
	}); err != nil {
		t.Fatal(err)
	}
	srv.Stop()
	sys.Close()
	verify()
}

func TestSystemLifecycleNoLeak(t *testing.T) {
	// The scrubber and health monitor are event-driven (no goroutines of
	// their own); the dispatch loop is the only goroutine the full stack
	// spawns, and Close must take it down even with work queued.
	verify := checkLeaks(t)
	sys, err := viyojit.New(viyojit.Config{NVDRAMSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	store, err := sys.NewStore("leak2", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Serve(store, viyojit.ServeConfig{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_, err := sys.Submit(context.Background(), viyojit.ServeRequest{
				Write: true,
				Op: func(e viyojit.ServeExec) (any, error) {
					return nil, e.Store.Put([]byte("key"), []byte("value"))
				},
			})
			if err != nil {
				return // ErrServerClosed once Close lands — expected
			}
		}
	}()
	time.Sleep(5 * time.Millisecond) // let some submits land
	sys.Close()
	<-done
	verify()
}

func TestRepeatedServeCyclesNoLeak(t *testing.T) {
	verify := checkLeaks(t)
	for i := 0; i < 10; i++ {
		sys := newSystem(t)
		store, err := sys.NewStore("cycle", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := sys.Serve(store, viyojit.ServeConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Submit(context.Background(), viyojit.ServeRequest{
			Op: func(e viyojit.ServeExec) (any, error) {
				_, _, err := e.Store.Get([]byte("missing"))
				return nil, err
			},
		}); err != nil {
			t.Fatal(err)
		}
		sys.Close() // stops the server too
	}
	verify()
}
