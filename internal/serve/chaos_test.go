package serve_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viyojit"
	"viyojit/internal/sim"
)

// chaosSeed returns the run's seed: SERVE_CHAOS_SEED when set (the CI
// matrix sweeps several), otherwise a fixed default so the test always
// runs and stays reproducible.
func chaosSeed(t *testing.T) uint64 {
	env := os.Getenv("SERVE_CHAOS_SEED")
	if env == "" {
		return 0x5EED
	}
	seed, err := strconv.ParseUint(env, 0, 64)
	if err != nil {
		t.Fatalf("SERVE_CHAOS_SEED %q: %v", env, err)
	}
	return seed
}

// TestChaosConcurrentClients hammers the serving front-end from many
// goroutines with randomized priorities, deadlines, and context
// cancellations, and asserts the robustness contract: every rejection is
// typed, the admission queue stays bounded, the dirty set never exceeds
// the budget, accounting adds up, and no goroutines leak. Run it with
// -race; the CI stress job does, across a seed matrix.
func TestChaosConcurrentClients(t *testing.T) {
	seed := chaosSeed(t)
	verify := checkLeaks(t)

	sys, err := viyojit.New(viyojit.Config{
		NVDRAMSize:           8 << 20,
		DisableHealthMonitor: true,
		DisableScrubber:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := sys.NewStore("chaos", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	const maxQueue = 64
	srv, err := sys.Serve(store, viyojit.ServeConfig{MaxQueue: maxQueue})
	if err != nil {
		t.Fatal(err)
	}

	const keySpace = 256
	key := func(i int) []byte { return []byte(fmt.Sprintf("chaos%06d", i)) }
	// Preload through the server so every heap access happens on the
	// dispatch goroutine.
	for i := 0; i < keySpace; i++ {
		k := key(i)
		if _, err := srv.Submit(context.Background(), viyojit.ServeRequest{
			Write: true,
			Op: func(e viyojit.ServeExec) (any, error) {
				return nil, e.Store.Put(k, []byte("initial-value-0000"))
			},
		}); err != nil {
			t.Fatalf("preload %d: %v", i, err)
		}
	}

	const (
		clients   = 48
		opsEach   = 120
		waitEvery = 16 // every Nth op paces with WaitUntil instead
	)
	var (
		wg        sync.WaitGroup
		untyped   atomic.Int64
		completed atomic.Int64
		firstBad  atomic.Value // string
	)
	typed := func(err error) bool {
		return err == nil ||
			errors.Is(err, viyojit.ErrOverloaded) ||
			errors.Is(err, viyojit.ErrDeadlineExceeded) ||
			errors.Is(err, viyojit.ErrReadOnly) ||
			errors.Is(err, viyojit.ErrServerClosed) ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded)
	}

	// Observability reader: hammer the registry's consistent-read paths
	// concurrently with the dispatch loop and every client goroutine —
	// the race the metrics layer exists to make safe (run with -race).
	stopSnap := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		reg := sys.Metrics()
		for {
			select {
			case <-stopSnap:
				return
			default:
				snap := reg.Snapshot()
				for i := 1; i < len(snap.Counters); i++ {
					if snap.Counters[i-1].Name >= snap.Counters[i].Name {
						firstBad.CompareAndSwap(nil, "Snapshot counters unsorted")
						untyped.Add(1)
						return
					}
				}
				var sink discardWriter
				if err := reg.Export().WriteText(&sink); err != nil {
					firstBad.CompareAndSwap(nil, fmt.Sprintf("WriteText: %v", err))
					untyped.Add(1)
					return
				}
			}
		}
	}()

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(c)*7919))
			for op := 0; op < opsEach; op++ {
				if op%waitEvery == waitEvery-1 {
					// Pacing path: nudge virtual time forward.
					_ = srv.WaitUntil(srv.Now().Add(sim.Duration(rng.Intn(200)) * sim.Microsecond))
					continue
				}
				if op%37 == 36 {
					// Observer path: sample manager state concurrently.
					if _, err := srv.ManagerStats(context.Background()); err != nil && !typed(err) {
						untyped.Add(1)
						firstBad.CompareAndSwap(nil, fmt.Sprintf("ManagerStats: %v", err))
					}
					continue
				}

				req := viyojit.ServeRequest{}
				switch p := rng.Float64(); {
				case p < 0.2:
					req.Priority = viyojit.PriorityLow
				case p < 0.9:
					req.Priority = viyojit.PriorityNormal
				default:
					req.Priority = viyojit.PriorityHigh
				}
				if rng.Float64() < 0.5 {
					req.Timeout = sim.Duration(100+rng.Intn(5000)) * sim.Microsecond
				}
				k := key(rng.Intn(keySpace))
				if rng.Float64() < 0.35 {
					v := []byte(fmt.Sprintf("value-%d-%d", c, op))
					req.Write = true
					req.Op = func(e viyojit.ServeExec) (any, error) {
						return nil, e.Store.Put(k, v)
					}
				} else {
					req.Op = func(e viyojit.ServeExec) (any, error) {
						_, _, err := e.Store.Get(k)
						return nil, err
					}
				}

				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Float64() < 0.1 {
					// Real-time cancellation racing the virtual-time op.
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(500))*time.Microsecond)
				}
				_, err := srv.Submit(ctx, req)
				if cancel != nil {
					cancel()
				}
				if err == nil {
					completed.Add(1)
				} else if !typed(err) {
					untyped.Add(1)
					firstBad.CompareAndSwap(nil, fmt.Sprintf("Submit: %v", err))
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopSnap)
	<-snapDone

	if n := untyped.Load(); n > 0 {
		t.Fatalf("%d untyped errors escaped, first: %v", n, firstBad.Load())
	}
	if completed.Load() == 0 {
		t.Fatal("chaos run completed nothing — the server starved all clients")
	}

	st := srv.Stats()
	if st.MaxQueueObserved > maxQueue {
		t.Fatalf("queue occupancy %d exceeded bound %d", st.MaxQueueObserved, maxQueue)
	}
	// Loose accounting: a context-cancelled request may still execute
	// (dispatch already held it), so the retired counters can exceed
	// Submitted only by at most Cancelled.
	retired := st.Completed + st.Failed + uint64(st.Shed())
	if retired > st.Submitted {
		t.Fatalf("retired %d > submitted %d", retired, st.Submitted)
	}
	if st.Submitted > retired+st.Cancelled {
		t.Fatalf("accounting leak: submitted %d, retired %d + cancelled %d", st.Submitted, retired, st.Cancelled)
	}

	// The core invariant the whole system exists for: the dirty set
	// never ends up above the budget.
	if dirty, budget := sys.DirtyCount(), sys.DirtyBudget(); dirty > budget {
		t.Fatalf("dirty pages %d exceed budget %d", dirty, budget)
	}

	// The registry's instruments ARE the server's counters (one atomic
	// source, no scattered stats): now that the run has quiesced, the
	// snapshot must agree with Stats exactly.
	snap := sys.Metrics().Snapshot()
	counterValue := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		t.Fatalf("counter %s missing from snapshot", name)
		return 0
	}
	if got := counterValue("serve_submitted_total"); got != st.Submitted {
		t.Fatalf("serve_submitted_total %d != Stats().Submitted %d", got, st.Submitted)
	}
	if got := counterValue("serve_completed_total"); got != st.Completed {
		t.Fatalf("serve_completed_total %d != Stats().Completed %d", got, st.Completed)
	}

	sys.Close()
	verify()
}

// discardWriter sinks export bytes without retaining them.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
