package serve

import (
	"errors"

	"viyojit/internal/intent"
)

// The typed rejection taxonomy. Every request the server refuses carries
// exactly one of these (possibly wrapped), so clients can distinguish
// "back off and retry" (ErrOverloaded), "retry with a looser deadline"
// (ErrDeadlineExceeded), "stop writing until the system recovers"
// (ErrReadOnly), and "the server is gone" (ErrClosed). Match with
// errors.Is.
var (
	// ErrOverloaded means admission control shed the request: the queue
	// was full, occupancy crossed the low-priority watermark, or the
	// degradation ladder called for shedding this priority class.
	ErrOverloaded = errors.New("serve: overloaded, request shed")

	// ErrDeadlineExceeded means the request's virtual-time deadline
	// passed while it waited in the queue, or a predicted clean-stall
	// (the dirty set at budget, every admission paying an SSD clean)
	// would push completion past the deadline. The request was NOT
	// executed.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")

	// ErrReadOnly means the degradation ladder has writes blocked
	// (EmergencyFlush or ReadOnly rung); the write was rejected or, if
	// it raced the escalation, failed with mmu.ErrProtected underneath.
	ErrReadOnly = errors.New("serve: system is read-only (degradation ladder)")

	// ErrClosed means the server was stopped before the request ran.
	ErrClosed = errors.New("serve: server closed")

	// ErrPowerFailure means a simulated power failure killed the
	// dispatch loop: the request (queued or in flight) got no ack, and
	// its effects are exactly what recovery replays — an intent-journal
	// retry against the recovered server is safe and will not
	// double-apply.
	ErrPowerFailure = errors.New("serve: power failure, request outcome unknown")

	// ErrRetriesExhausted means a RetryingClient gave up: every attempt
	// drew a retryable rejection and the attempt or deadline budget ran
	// out. The wrapped error chain carries the last rejection.
	ErrRetriesExhausted = errors.New("serve: retries exhausted")

	// ErrStaleSeq re-exports intent.ErrStaleSeq: the retried sequence
	// number fell below the client's dedup window, which only happens if
	// the client retries a request whose ack it already processed.
	ErrStaleSeq = intent.ErrStaleSeq

	// ErrSeqReuse re-exports intent.ErrSeqReuse: a sequence number was
	// reused for a different operation.
	ErrSeqReuse = intent.ErrSeqReuse
)

// ErrServerClosed is the canonical name for the stopped-server
// rejection (ErrClosed is the historical alias; they are the same
// value, so errors.Is matches either).
var ErrServerClosed = ErrClosed

// Retryable reports whether an error is safe to retry under the
// exactly-once protocol: overload and deadline rejections mean the op
// was never executed, and a power-failure disconnect means the intent
// journal will dedup the retry after recovery. Closed servers and
// protocol violations (stale seq, seq reuse) are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrOverloaded) ||
		errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, ErrPowerFailure)
}
