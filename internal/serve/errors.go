package serve

import "errors"

// The typed rejection taxonomy. Every request the server refuses carries
// exactly one of these (possibly wrapped), so clients can distinguish
// "back off and retry" (ErrOverloaded), "retry with a looser deadline"
// (ErrDeadlineExceeded), "stop writing until the system recovers"
// (ErrReadOnly), and "the server is gone" (ErrClosed). Match with
// errors.Is.
var (
	// ErrOverloaded means admission control shed the request: the queue
	// was full, occupancy crossed the low-priority watermark, or the
	// degradation ladder called for shedding this priority class.
	ErrOverloaded = errors.New("serve: overloaded, request shed")

	// ErrDeadlineExceeded means the request's virtual-time deadline
	// passed while it waited in the queue, or a predicted clean-stall
	// (the dirty set at budget, every admission paying an SSD clean)
	// would push completion past the deadline. The request was NOT
	// executed.
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded")

	// ErrReadOnly means the degradation ladder has writes blocked
	// (EmergencyFlush or ReadOnly rung); the write was rejected or, if
	// it raced the escalation, failed with mmu.ErrProtected underneath.
	ErrReadOnly = errors.New("serve: system is read-only (degradation ladder)")

	// ErrClosed means the server was stopped before the request ran.
	ErrClosed = errors.New("serve: server closed")
)
