package serve

import (
	"context"
	"errors"
	"fmt"

	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
)

// IdemKind selects the mutation an IdemOp performs.
type IdemKind uint8

const (
	// IdemPut writes Value under Key.
	IdemPut IdemKind = iota
	// IdemDelete removes Key.
	IdemDelete
	// IdemRMW reads Key and writes Modify's return value (nil deletes).
	// The journal records the *computed* image, so a post-crash retry
	// re-applies exactly the bytes the original attempt decided on —
	// Modify is never re-run against already-mutated state.
	IdemRMW
)

// IdemOp is an idempotently-executed mutation.
type IdemOp struct {
	Kind  IdemKind
	Key   []byte
	Value []byte // IdemPut only
	// Modify computes the new value for IdemRMW from the old one (nil,
	// ok=false when the key is absent). Returning nil deletes the key.
	// It must be pure: it runs at most once per (client, seq).
	Modify func(old []byte, ok bool) []byte
	// Tag folds extra identity into the op checksum so two ops with the
	// same key that are nonetheless different (e.g. two RMWs, whose
	// closures the checksum cannot see) are distinguishable when a
	// client erroneously reuses a sequence number.
	Tag uint64
}

// Result codes carried in IdemResult.Code (and cached in the journal).
const (
	// IdemApplied: the mutation landed (Put/RMW wrote, Delete removed
	// an existing key).
	IdemApplied byte = 0
	// IdemNotFound: a Delete whose key did not exist. Still
	// exactly-once: the cached code makes the retry see the same answer.
	IdemNotFound byte = 1
)

// IdemResult is the outcome of an idempotent request.
type IdemResult struct {
	// Code is the small result the journal caches for dedup.
	Code byte
	// Value is the image the op wrote (nil for deletes) — the RMW
	// return path.
	Value []byte
	// Deduped: this request was already complete; the result came from
	// the journal's cache and nothing was re-applied.
	Deduped bool
	// Redone: the request was found in-flight from before a crash and
	// its recorded redo image was (re-)applied.
	Redone bool
}

// SubmitIdempotent runs op exactly once for (clientID, seq), however
// many times it is retried across overloads, deadline sheds, and power
// failures. Requires Config.Journal.
func (s *Server) SubmitIdempotent(ctx context.Context, clientID, seq uint64, op IdemOp, opts Request) (IdemResult, error) {
	opts.ClientID = clientID
	opts.RequestSeq = seq
	opts.Idem = &op
	opts.Op = nil
	opts.Write = true
	res, err := s.Submit(ctx, opts)
	if err != nil {
		return IdemResult{}, err
	}
	ir, ok := res.Value.(IdemResult)
	if !ok {
		return IdemResult{}, fmt.Errorf("serve: idempotent op returned %T", res.Value)
	}
	return ir, nil
}

// opSum derives the op checksum recorded with the intent: retrying the
// same logical op reproduces it; reusing the seq for a different op
// does not (up to Tag for RMW closures).
func opSum(op *IdemOp) uint64 {
	return intent.Checksum(op.Key, op.Value, uint64(op.Kind)<<32^op.Tag)
}

// execIdem is the dispatch-goroutine half of the exactly-once protocol:
//
//	dedup lookup → (cached result | redo re-apply | fresh execution)
//
// Fresh execution journals intent+redo BEFORE touching the store and
// the result code after, so every crash window resolves correctly:
//
//	crash before the intent lands   → journal has nothing; the retry is
//	                                  fresh, and the store was untouched
//	crash after intent, before apply → ReplayPending re-applies the redo
//	                                  at recovery (no-op twice over:
//	                                  blind Put/Delete)
//	crash after apply, before result → ReplayPending re-applies the same
//	                                  image idempotently — the
//	                                  double-apply window this journal
//	                                  exists to close
//	crash after result               → retry is deduped from cache
//
// The StateInFlight branch below is the retry-time fallback for a server
// recovered without ReplayPending; it is sound only until other
// mutations touch the same key, which recovery-time replay avoids.
func (s *Server) execIdem(e Exec, req Request) (any, error) {
	j := s.cfg.Journal
	if j == nil {
		return nil, fmt.Errorf("serve: idempotent request but server has no intent journal")
	}
	if e.Store == nil {
		return nil, fmt.Errorf("serve: idempotent request but server fronts no store")
	}
	op := req.Idem
	sum := opSum(op)
	client, seq := req.ClientID, req.RequestSeq

	ent, state := j.Lookup(client, seq)
	switch state {
	case intent.StateDone:
		if ent.OpSum != sum {
			return nil, fmt.Errorf("%w: client %d seq %d", ErrSeqReuse, client, seq)
		}
		s.st.idemDedup.Inc()
		return IdemResult{Code: ent.Code, Value: cloneBytes(ent.Result), Deduped: true}, nil

	case intent.StateInFlight:
		if ent.OpSum != sum {
			return nil, fmt.Errorf("%w: client %d seq %d", ErrSeqReuse, client, seq)
		}
		code, err := applyImage(e.Store, ent.RedoKey, ent.RedoVal, ent.Tombstone)
		if err != nil {
			return nil, err
		}
		s.crashPoint() // redo applied, completion record not yet durable
		resVal := cloneBytes(ent.RedoVal)
		if err := j.Complete(client, seq, code, resVal); err != nil && !errors.Is(err, intent.ErrJournalFull) {
			return nil, err
		}
		s.st.idemRedo.Inc()
		return IdemResult{Code: code, Value: resVal, Redone: true}, nil

	case intent.StateBelowWindow:
		return nil, fmt.Errorf("%w: client %d seq %d", ErrStaleSeq, client, seq)
	}

	// Fresh request: compute the redo image.
	var image []byte
	tombstone := false
	switch op.Kind {
	case IdemPut:
		image = op.Value
	case IdemDelete:
		tombstone = true
	case IdemRMW:
		if op.Modify == nil {
			return nil, fmt.Errorf("serve: IdemRMW without Modify")
		}
		old, ok, err := e.Store.Get(op.Key)
		if err != nil {
			return nil, err
		}
		image = op.Modify(old, ok)
		if image == nil {
			tombstone = true
		}
	default:
		return nil, fmt.Errorf("serve: unknown IdemKind %d", op.Kind)
	}

	// Intent (with redo) must be durable-ordered before the mutation.
	if err := j.Begin(client, seq, sum, op.Key, image, tombstone); err != nil {
		if errors.Is(err, intent.ErrJournalFull) {
			// The journal needs live entries to retire; the request was
			// NOT executed, so backing off and retrying is safe.
			return nil, fmt.Errorf("%w: intent journal full", ErrOverloaded)
		}
		return nil, err
	}
	s.crashPoint() // intent durable, mutation not yet applied
	code, err := applyImage(e.Store, op.Key, image, tombstone)
	if err != nil {
		// Intent stands, mutation state unknown — exactly the situation
		// the redo record repairs on the next retry of this seq.
		return nil, err
	}
	s.crashPoint() // mutation applied, completion record not yet durable
	resVal := cloneBytes(image)
	if err := j.Complete(client, seq, code, resVal); err != nil && !errors.Is(err, intent.ErrJournalFull) {
		return nil, err
	}
	return IdemResult{Code: code, Value: resVal}, nil
}

// ReplayPending resolves every journaled intent whose result never
// committed: the ops that were in flight when power failed. It applies
// each one's redo image to the store and completes it in the journal, so
// by the time the server takes traffic every entry is Done and a retry
// can only dedup.
//
// Call it during recovery, after intent.Open and BEFORE serving resumes.
// The ordering matters for correctness, not just hygiene: a redo image
// is the post-state of the crashed attempt, so re-applying it is only
// sound while the store still holds pre-crash state. Once new mutations
// land on the same key, a late redo would rewind them — which is why the
// in-flight resolution lives here and not in the retry path. (execIdem
// keeps a retry-time redo as a fallback for servers recovered without
// this call, with exactly that caveat.)
//
// Returns the number of intents redone. Under a serially-dispatched
// server at most one intent can be in flight per crash; the loop handles
// any number for journals with other producers. Redos run in the
// journal's deterministic (client, seq) order; ReplayPendingWith is the
// restartable, budget-aware form.
func ReplayPending(store *kvstore.Store, j *intent.Journal) (int, error) {
	stats, err := ReplayPendingWith(store, j, ReplayOptions{})
	return stats.Redone, err
}

// applyImage blindly applies a redo image — the idempotent primitive
// everything above reduces to.
func applyImage(st *kvstore.Store, key, image []byte, tombstone bool) (byte, error) {
	if tombstone {
		found, err := st.Delete(key)
		if err != nil {
			return 0, err
		}
		if !found {
			return IdemNotFound, nil
		}
		return IdemApplied, nil
	}
	if err := st.Put(key, image); err != nil {
		return 0, err
	}
	return IdemApplied, nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
