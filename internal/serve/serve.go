// Package serve is the concurrent request front-end for the Viyojit
// core. Everything below it — sim.Clock, sim.Queue, core.Manager,
// kvstore.Store — is single-goroutine by design, so this package is an
// actor: one dispatch goroutine owns the whole stack and drains a
// bounded admission queue that many client goroutines submit into.
//
// The front door is where production systems survive overload, so
// admission is where all the policy lives:
//
//   - Bounded queue: occupancy can never exceed Config.MaxQueue; a full
//     queue sheds with ErrOverloaded instead of building unbounded
//     backlog.
//   - Priority + class scheduling: three priorities × two classes
//     (client traffic vs. scrub/drain/repair background work), served
//     highest-priority-first, client-before-background within a
//     priority, FIFO within a bucket.
//   - Deadline propagation in virtual time: a request's deadline covers
//     queue wait AND the clean-stall it would pay if admitted while the
//     dirty set is at budget; a request that cannot make its deadline is
//     rejected with ErrDeadlineExceeded before any work is wasted.
//   - Ladder-driven shedding: Degraded sheds low-priority writes first;
//     EmergencyFlush/ReadOnly reject client writes with ErrReadOnly
//     while reads keep flowing.
//   - A watchdog scheduled in virtual time detects a dispatch loop that
//     pumps events without retiring requests (a clean-retry storm
//     against a failing SSD) and trips the ladder's emergency flush.
//
// Clients never touch the clock or the manager directly: the server
// publishes virtual now and the health state through atomics, and
// WaitUntil lets an open-loop client pace its arrivals in virtual time.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"viyojit/internal/core"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/mmu"
	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

// Class separates client traffic from the system's own background work
// (scrub, drain, repair, stats collection) so admission can prefer the
// traffic the system exists to serve while never starving remediation.
type Class uint8

const (
	// ClassClient is application traffic.
	ClassClient Class = iota
	// ClassBackground is system work: scrubs, drains, repairs,
	// synchronized stats reads.
	ClassBackground
)

// Priority orders requests within the admission queue and selects who
// gets shed first under pressure.
type Priority uint8

const (
	// PriorityLow is best-effort traffic: first to shed at the
	// occupancy watermark and under the Degraded rung.
	PriorityLow Priority = iota
	// PriorityNormal is the default.
	PriorityNormal
	// PriorityHigh is latency-critical traffic, served first.
	PriorityHigh
)

// Exec is the execution context handed to a request's Op on the
// dispatch goroutine. Everything in it is single-goroutine state that
// must not escape the Op call.
type Exec struct {
	// Store is the KV store the server fronts (nil if the server was
	// built without one).
	Store *kvstore.Store
	// Mgr is the dirty-budget manager.
	Mgr *core.Manager
	// Now is the virtual time at which the op started executing.
	Now sim.Time
}

// Request is one unit of admission.
type Request struct {
	// Class and Priority drive scheduling and shedding; zero values are
	// ClassClient/PriorityLow — explicitly pick PriorityNormal for
	// ordinary traffic.
	Class    Class
	Priority Priority
	// Write marks ops that mutate NV-DRAM. Write requests are the ones
	// the degradation ladder sheds; reads flow on every rung.
	Write bool
	// Timeout is the virtual-time deadline measured from admission;
	// 0 means no deadline. It covers queue wait, predicted clean-stall,
	// and service time.
	Timeout sim.Duration
	// Op runs on the dispatch goroutine. Its return value is delivered
	// through Result.Value.
	Op func(Exec) (any, error)

	// ClientID and RequestSeq identify a request for exactly-once
	// execution through the intent journal. Both must be non-zero when
	// Idem is set; RequestSeq must be issued in order per client with at
	// most the journal's window outstanding.
	ClientID   uint64
	RequestSeq uint64
	// Idem, when non-nil, replaces Op: the server runs the operation
	// under the intent-journal protocol (dedup lookup, intent+redo
	// journaling, result caching) and delivers an IdemResult. Requires
	// Config.Journal.
	Idem *IdemOp
}

// Result is the outcome of a completed request.
type Result struct {
	// Value is whatever the Op returned.
	Value any
	// Wait is the virtual time the request spent queued.
	Wait sim.Duration
	// Latency is virtual admission-to-completion time.
	Latency sim.Duration
}

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// MaxQueue bounds admission-queue occupancy; a full queue sheds
	// with ErrOverloaded. 0 selects 256.
	MaxQueue int
	// ShedWatermark is the occupancy fraction of MaxQueue above which
	// PriorityLow requests are shed preemptively. 0 selects 0.75.
	ShedWatermark float64
	// OpServiceTime is the fixed virtual service cost charged per
	// executed request (network, parsing, dispatch around the store).
	// 0 selects 20 µs, matching the YCSB runner.
	OpServiceTime sim.Duration
	// WatchdogInterval is the virtual period of the stall detector.
	// 0 selects 1 ms (the manager's epoch).
	WatchdogInterval sim.Duration
	// WatchdogStrikes is how many consecutive no-progress intervals
	// (non-empty queue, no request retired) trip the emergency flush.
	// 0 selects 8.
	WatchdogStrikes int
	// DisableWatchdog turns the stall detector off.
	DisableWatchdog bool
	// Obs is the observability registry the server publishes its
	// counters, per-priority latency histograms, and request spans onto.
	// nil creates a private registry; pass the manager's (viyojit.System
	// does) so request spans parent the core's clean spans.
	Obs *obs.Registry
	// Journal is the intent journal idempotent requests run through.
	// Its store must live inside the battery-backed region so journal
	// writes are budget-accounted and survive power failure. nil
	// disables SubmitIdempotent.
	Journal *intent.Journal
	// RecoverCrash classifies a panic escaping the dispatch loop. When
	// it returns true (a simulated power failure from
	// faultinject.Crasher — use faultinject.AsCrash), the server fails
	// in-flight and queued requests with ErrPowerFailure instead of
	// crashing the process; the panic value is re-raised otherwise. nil
	// means every panic propagates.
	RecoverCrash func(v any) bool
	// CrashPoints opens each idempotent op's durability windows to a
	// step-armed fault injector: the Begin→apply→Complete critical
	// section fires queue events only on the manager's narrow
	// in-flight-clean wait path, so a simulated power failure almost
	// always strikes between ops — rarely in the window where an intent
	// is durable but its completion is not, the exact state recovery's
	// redo phase exists to repair. When set, the server fires one no-op
	// queue event after the intent record lands and another after the
	// mutation applies, giving a crash harness two deterministic strike
	// instants per op. Off in production: the markers cost an event
	// fire each and widen nothing but the crash lattice.
	CrashPoints bool
}

func (c Config) withDefaults() Config {
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.ShedWatermark == 0 {
		c.ShedWatermark = 0.75
	}
	if c.OpServiceTime == 0 {
		c.OpServiceTime = 20 * sim.Microsecond
	}
	if c.WatchdogInterval == 0 {
		c.WatchdogInterval = sim.Millisecond
	}
	if c.WatchdogStrikes == 0 {
		c.WatchdogStrikes = 8
	}
	return c
}

// Stats are the server's counters. Every Submit resolves into exactly
// one of Completed, Failed, ShedOverload, ShedDeadline, ShedReadOnly,
// or Cancelled.
type Stats struct {
	// Submitted counts every Submit call with a valid Op.
	Submitted uint64
	// Completed counts ops that executed and returned nil error.
	Completed uint64
	// Failed counts ops that executed and returned a non-typed error.
	Failed uint64
	// ShedOverload / ShedDeadline / ShedReadOnly count the typed
	// rejections (at admission or at dequeue).
	ShedOverload uint64
	ShedDeadline uint64
	ShedReadOnly uint64
	// Cancelled counts requests abandoned via context before a result
	// was delivered.
	Cancelled uint64
	// StallPredicted counts the ShedDeadline subset rejected by the
	// clean-stall predictor rather than observed queue wait.
	StallPredicted uint64
	// WatchdogTrips counts emergency flushes the stall detector forced.
	WatchdogTrips uint64
	// MaxQueueObserved is the high-water mark of queue occupancy.
	MaxQueueObserved int
}

// Shed returns the total typed rejections.
func (s Stats) Shed() uint64 { return s.ShedOverload + s.ShedDeadline + s.ShedReadOnly }

type outcome struct {
	res Result
	err error
}

type item struct {
	req        Request
	enqueuedAt sim.Time
	deadline   sim.Time // 0 = none
	cancelled  atomic.Bool
	delivered  bool         // outcome sent; dispatch-goroutine only
	done       chan outcome // buffered(1): dispatch never blocks on it
}

type waiter struct {
	target sim.Time
	ch     chan error
}

// numBuckets = 3 priorities × 2 classes; lower index pops first.
const numBuckets = 6

func bucketOf(r Request) int {
	b := int(PriorityHigh-r.Priority) * 2
	if r.Class == ClassBackground {
		b++
	}
	return b
}

// Server is the actor front-end. Construct with New, wire with Start,
// submit from any goroutine.
type Server struct {
	clock  *sim.Clock
	events *sim.Queue
	mgr    *core.Manager
	store  *kvstore.Store
	cfg    Config

	mu       sync.Mutex
	cond     *sync.Cond
	buckets  [numBuckets][]*item
	waiters  []*waiter
	started  bool
	stopping bool
	crashed  bool // a power failure killed the dispatch loop

	// inflight is the item currently inside serveOne, tracked so the
	// crash-recovery path can fail it with ErrPowerFailure. Dispatch
	// goroutine only.
	inflight *item

	// Mirrors published for lock-free reading by clients and watchdog.
	occupancy atomic.Int64
	pops      atomic.Uint64 // dequeues; the watchdog's progress signal
	pubNow    atomic.Int64  // sim.Time
	pubState  atomic.Int32  // core.HealthState

	// Watchdog state, touched only on the dispatch goroutine.
	wdEvent  *sim.Event
	wdStrike int
	wdLast   uint64
	wdDead   atomic.Bool // stops rescheduling after Stop
	wdTrip   atomic.Bool // trip requested; executed at the next request boundary

	loopDone chan struct{}

	// st holds the registry-backed atomic counters, gauges, and
	// per-priority latency histograms; tr records request spans.
	st *instruments
	tr *obs.Tracer
}

// instruments is the server's registry-backed metric storage. Counters
// the Stats struct used to hold as raw atomics now live on obs
// instruments, so the same numbers show up in Stats() and in a registry
// Snapshot/export without double bookkeeping.
type instruments struct {
	submitted      *obs.Counter
	completed      *obs.Counter
	failed         *obs.Counter
	shedOverload   *obs.Counter
	shedDeadline   *obs.Counter
	shedReadOnly   *obs.Counter
	cancelled      *obs.Counter
	stallPredicted *obs.Counter
	watchdogTrips  *obs.Counter
	powerFailures  *obs.Counter
	idemDedup      *obs.Counter
	idemRedo       *obs.Counter

	queueDepth *obs.Gauge
	queueMax   *obs.Gauge

	queueWait *obs.Histogram
	// latency is indexed by Priority: admission-to-completion time of
	// completed requests, per priority class.
	latency [int(PriorityHigh) + 1]*obs.Histogram
}

func newInstruments(r *obs.Registry) *instruments {
	return &instruments{
		submitted:      r.Counter("serve_submitted_total"),
		completed:      r.Counter("serve_completed_total"),
		failed:         r.Counter("serve_failed_total"),
		shedOverload:   r.Counter("serve_shed_overload_total"),
		shedDeadline:   r.Counter("serve_shed_deadline_total"),
		shedReadOnly:   r.Counter("serve_shed_readonly_total"),
		cancelled:      r.Counter("serve_cancelled_total"),
		stallPredicted: r.Counter("serve_stall_predicted_total"),
		watchdogTrips:  r.Counter("serve_watchdog_trips_total"),
		powerFailures:  r.Counter("serve_power_failures_total"),
		idemDedup:      r.Counter("serve_idem_dedup_total"),
		idemRedo:       r.Counter("serve_idem_redo_total"),
		queueDepth:     r.Gauge("serve_queue_depth"),
		queueMax:       r.Gauge("serve_queue_max"),
		queueWait:      r.Histogram("serve_queue_wait_ns"),
		latency: [int(PriorityHigh) + 1]*obs.Histogram{
			PriorityLow:    r.Histogram("serve_latency_low_ns"),
			PriorityNormal: r.Histogram("serve_latency_normal_ns"),
			PriorityHigh:   r.Histogram("serve_latency_high_ns"),
		},
	}
}

// New builds a server over an assembled stack. store may be nil when
// ops only need the manager. The server takes ownership of the clock
// and event queue once Start is called: no other goroutine may pump,
// advance time, or touch the manager until Stop returns.
func New(clock *sim.Clock, events *sim.Queue, mgr *core.Manager, store *kvstore.Store, cfg Config) (*Server, error) {
	if clock == nil || events == nil || mgr == nil {
		return nil, fmt.Errorf("serve: clock, events, and manager are required")
	}
	cfg = cfg.withDefaults()
	if cfg.MaxQueue < 1 {
		return nil, fmt.Errorf("serve: MaxQueue %d must be positive", cfg.MaxQueue)
	}
	if cfg.ShedWatermark <= 0 || cfg.ShedWatermark > 1 {
		return nil, fmt.Errorf("serve: ShedWatermark %v outside (0,1]", cfg.ShedWatermark)
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		clock:    clock,
		events:   events,
		mgr:      mgr,
		store:    store,
		cfg:      cfg,
		loopDone: make(chan struct{}),
		st:       newInstruments(reg),
		tr:       reg.Tracer(),
	}
	s.cond = sync.NewCond(&s.mu)
	return s, nil
}

// Config returns the effective configuration (defaults applied).
func (s *Server) Config() Config { return s.cfg }

// Start launches the dispatch goroutine and the watchdog. It errors if
// called twice.
func (s *Server) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("serve: already started")
	}
	s.started = true
	s.mu.Unlock()
	s.publish()
	if !s.cfg.DisableWatchdog {
		s.wdLast = s.pops.Load()
		s.wdEvent = s.events.Schedule(s.clock.Now().Add(s.cfg.WatchdogInterval), s.watchdogTick)
	}
	go s.loop()
	return nil
}

// Stop shuts the server down: queued requests are rejected with
// ErrClosed, waiters wake with ErrClosed, and the dispatch goroutine
// exits. Stop blocks until the loop is gone and is idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if !s.started {
		s.started, s.stopping = true, true // never started: nothing to join
		s.mu.Unlock()
		close(s.loopDone)
		return
	}
	if s.stopping {
		s.mu.Unlock()
		<-s.loopDone
		return
	}
	s.stopping = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.loopDone
	// The dispatch goroutine is gone; this goroutine is now the sole
	// owner of the event queue, so cancelling the watchdog is safe.
	s.wdDead.Store(true)
	if s.wdEvent != nil {
		s.events.Cancel(s.wdEvent)
	}
}

// Now returns the published virtual time — safe from any goroutine,
// possibly a beat behind the dispatch loop's live clock.
func (s *Server) Now() sim.Time { return sim.Time(s.pubNow.Load()) }

// HealthState returns the published degradation-ladder rung.
func (s *Server) HealthState() core.HealthState { return core.HealthState(s.pubState.Load()) }

// QueueLen returns current admission-queue occupancy.
func (s *Server) QueueLen() int { return int(s.occupancy.Load()) }

// Stats returns a snapshot of the counters. Safe from any goroutine:
// every field is an atomic load off the registry instruments.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:        s.st.submitted.Value(),
		Completed:        s.st.completed.Value(),
		Failed:           s.st.failed.Value(),
		ShedOverload:     s.st.shedOverload.Value(),
		ShedDeadline:     s.st.shedDeadline.Value(),
		ShedReadOnly:     s.st.shedReadOnly.Value(),
		Cancelled:        s.st.cancelled.Value(),
		StallPredicted:   s.st.stallPredicted.Value(),
		WatchdogTrips:    s.st.watchdogTrips.Value(),
		MaxQueueObserved: int(s.st.queueMax.Value()),
	}
}

// Submit admits req and blocks until it completes, is shed, or ctx is
// done. Rejections are typed: match with errors.Is against
// ErrOverloaded, ErrDeadlineExceeded, ErrReadOnly, ErrClosed.
func (s *Server) Submit(ctx context.Context, req Request) (Result, error) {
	h, err := s.SubmitAsync(req)
	if err != nil {
		return Result{}, err
	}
	return h.Wait(ctx)
}

// Handle is an in-flight request admitted by SubmitAsync.
type Handle struct {
	s  *Server
	it *item
}

// Wait blocks until the request completes, is shed at dequeue, or ctx is
// done. It must be called exactly once.
func (h *Handle) Wait(ctx context.Context) (Result, error) {
	select {
	case out := <-h.it.done:
		return out.res, out.err
	case <-ctx.Done():
		h.it.cancelled.Store(true)
		h.s.st.cancelled.Inc()
		return Result{}, ctx.Err()
	}
}

// SubmitAsync runs admission control synchronously on the calling
// goroutine — every admission rejection (queue full, watermark, ladder)
// returns here, typed — and enqueues the request without waiting for it
// to execute. Open-loop load generators need this split: the pacing
// goroutine must have the arrival *enqueued* before it sleeps again,
// or an idle dispatch loop advances virtual time past the next arrival
// while the submission is still in flight on some other goroutine.
func (s *Server) SubmitAsync(req Request) (*Handle, error) {
	if req.Op == nil && req.Idem == nil {
		return nil, fmt.Errorf("serve: request has no Op")
	}
	if req.Idem != nil {
		if req.Op != nil {
			return nil, fmt.Errorf("serve: request has both Op and Idem")
		}
		if req.ClientID == 0 || req.RequestSeq == 0 {
			return nil, fmt.Errorf("serve: idempotent request needs non-zero ClientID and RequestSeq")
		}
		if !req.Write {
			return nil, fmt.Errorf("serve: idempotent requests are writes; set Write")
		}
		if s.cfg.Journal == nil {
			return nil, fmt.Errorf("serve: idempotent request but server has no intent journal")
		}
	}
	if req.Priority > PriorityHigh {
		return nil, fmt.Errorf("serve: invalid priority %d", req.Priority)
	}
	s.st.submitted.Inc()
	now := sim.Time(s.pubNow.Load())
	state := core.HealthState(s.pubState.Load())

	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: server lost power", ErrPowerFailure)
	}
	if s.stopping {
		s.mu.Unlock()
		return nil, ErrServerClosed
	}
	occ := int(s.occupancy.Load())
	if occ >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.st.shedOverload.Inc()
		return nil, fmt.Errorf("%w: queue full (%d)", ErrOverloaded, s.cfg.MaxQueue)
	}
	if req.Priority == PriorityLow && float64(occ) >= s.cfg.ShedWatermark*float64(s.cfg.MaxQueue) {
		s.mu.Unlock()
		s.st.shedOverload.Inc()
		return nil, fmt.Errorf("%w: low-priority shed at watermark", ErrOverloaded)
	}
	if req.Write && req.Class == ClassClient {
		switch {
		case state >= core.StateEmergencyFlush:
			s.mu.Unlock()
			s.st.shedReadOnly.Inc()
			return nil, fmt.Errorf("%w: ladder at %v", ErrReadOnly, state)
		case state == core.StateDegraded && req.Priority == PriorityLow:
			s.mu.Unlock()
			s.st.shedOverload.Inc()
			return nil, fmt.Errorf("%w: low-priority write shed while %v", ErrOverloaded, state)
		}
	}
	it := &item{req: req, enqueuedAt: now, done: make(chan outcome, 1)}
	if req.Timeout > 0 {
		it.deadline = now.Add(req.Timeout)
	}
	s.buckets[bucketOf(req)] = append(s.buckets[bucketOf(req)], it)
	n := s.occupancy.Add(1)
	s.st.queueDepth.Set(n)
	s.st.queueMax.SetMax(n)
	s.cond.Signal()
	s.mu.Unlock()
	return &Handle{s: s, it: it}, nil
}

// WaitUntil blocks the calling goroutine until virtual time reaches t —
// the open-loop pacing primitive. When the dispatch loop is idle it
// advances the clock to the earliest waiter's target, so sleeping
// clients are what moves virtual time forward on an unloaded system.
func (s *Server) WaitUntil(t sim.Time) error {
	if sim.Time(s.pubNow.Load()) >= t {
		return nil
	}
	s.mu.Lock()
	if s.crashed {
		s.mu.Unlock()
		return fmt.Errorf("%w: server lost power", ErrPowerFailure)
	}
	if s.stopping {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if sim.Time(s.pubNow.Load()) >= t {
		s.mu.Unlock()
		return nil
	}
	w := &waiter{target: t, ch: make(chan error, 1)}
	s.waiters = append(s.waiters, w)
	s.cond.Signal()
	s.mu.Unlock()
	return <-w.ch
}

// loop is the dispatch goroutine: the sole owner of the clock, event
// queue, manager, and store from Start to Stop.
func (s *Server) loop() {
	defer close(s.loopDone)
	// Power-failure containment: a faultinject crash panic can surface
	// from any event pump — inside serveOne, inside an idle advance,
	// even inside the manager's cleaning machinery. Config.RecoverCrash
	// decides whether the panic is a simulated power failure; if so the
	// server dies cleanly (clients get ErrPowerFailure, Stop still
	// joins) instead of taking the process down. Registered after
	// loopDone's close so noteCrash finishes before Stop unblocks.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if s.cfg.RecoverCrash == nil || !s.cfg.RecoverCrash(r) {
			panic(r)
		}
		s.noteCrash()
	}()
	for {
		s.mu.Lock()
		for {
			if s.stopping {
				s.failAllLocked()
				s.mu.Unlock()
				return
			}
			if it := s.popLocked(); it != nil {
				s.mu.Unlock()
				s.inflight = it
				s.serveOne(it)
				s.inflight = nil
				break
			}
			if t, ok := s.earliestWaiterLocked(); ok {
				s.mu.Unlock()
				s.advanceTo(t)
				break
			}
			s.cond.Wait()
		}
		// A watchdog trip requested mid-op runs here, at a request
		// boundary, where the manager is quiescent.
		s.maybeTrip()
		// Wake any waiter whose target the last op or advance passed.
		s.mu.Lock()
		s.wakeWaitersLocked(nil)
		s.mu.Unlock()
	}
}

func (s *Server) popLocked() *item {
	for b := 0; b < numBuckets; b++ {
		q := s.buckets[b]
		if len(q) == 0 {
			continue
		}
		it := q[0]
		q[0] = nil
		s.buckets[b] = q[1:]
		if len(s.buckets[b]) == 0 {
			s.buckets[b] = nil // let the backing array go
		}
		s.st.queueDepth.Set(s.occupancy.Add(-1))
		s.pops.Add(1)
		return it
	}
	return nil
}

func (s *Server) earliestWaiterLocked() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, w := range s.waiters {
		if !found || w.target < best {
			best, found = w.target, true
		}
	}
	return best, found
}

// wakeWaitersLocked releases every waiter whose target has been reached
// (or all of them with err non-nil, at shutdown).
func (s *Server) wakeWaitersLocked(err error) {
	now := sim.Time(s.pubNow.Load())
	kept := s.waiters[:0]
	for _, w := range s.waiters {
		if err != nil {
			w.ch <- err
		} else if w.target <= now {
			w.ch <- nil
		} else {
			kept = append(kept, w)
			continue
		}
	}
	for i := len(kept); i < len(s.waiters); i++ {
		s.waiters[i] = nil
	}
	s.waiters = kept
}

// deliver sends an item's outcome exactly once. The channel is
// buffered(1) so the send never blocks, but a crash-recovery path that
// re-failed an already-answered item would: the delivered flag (dispatch
// goroutine only) makes delivery idempotent.
func (s *Server) deliver(it *item, out outcome) {
	if it.delivered {
		return
	}
	it.delivered = true
	if it.cancelled.Load() {
		return // client already gone
	}
	it.done <- out
}

// failAllLocked rejects everything still queued and wakes all waiters
// with ErrClosed — the shutdown path.
func (s *Server) failAllLocked() {
	for b := range s.buckets {
		for _, it := range s.buckets[b] {
			s.deliver(it, outcome{err: ErrServerClosed})
			s.st.queueDepth.Set(s.occupancy.Add(-1))
		}
		s.buckets[b] = nil
	}
	s.wakeWaitersLocked(ErrServerClosed)
}

// noteCrash is the power-failure epilogue, run on the dying dispatch
// goroutine: every request the server ever acknowledged is already
// journaled; everything still in the building gets ErrPowerFailure so
// clients know to retry against the recovered system.
func (s *Server) noteCrash() {
	s.wdDead.Store(true)
	s.st.powerFailures.Inc()
	s.mu.Lock()
	s.crashed = true
	s.stopping = true
	if it := s.inflight; it != nil {
		s.deliver(it, outcome{err: fmt.Errorf("%w: failed mid-request", ErrPowerFailure)})
		s.inflight = nil
	}
	for b := range s.buckets {
		for _, it := range s.buckets[b] {
			s.deliver(it, outcome{err: fmt.Errorf("%w: queued at failure", ErrPowerFailure)})
			s.st.queueDepth.Set(s.occupancy.Add(-1))
		}
		s.buckets[b] = nil
	}
	s.wakeWaitersLocked(fmt.Errorf("%w: server lost power", ErrPowerFailure))
	s.mu.Unlock()
}

// PowerFailed reports whether a simulated power failure killed the
// dispatch loop (see Config.RecoverCrash).
func (s *Server) PowerFailed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// publish refreshes the atomic mirrors clients read.
func (s *Server) publish() {
	s.pubNow.Store(int64(s.clock.Now()))
	s.pubState.Store(int32(s.mgr.HealthState()))
}

// pump delivers pending background events (epoch ticks, IO completions,
// health-monitor ticks, the watchdog) and republishes.
func (s *Server) pump() {
	s.events.RunUntil(s.clock, s.clock.Now())
	s.publish()
}

// advanceTo moves virtual time to t, firing everything due on the way —
// "the system is idle until the next client arrival".
func (s *Server) advanceTo(t sim.Time) {
	s.events.RunUntil(s.clock, t)
	s.publish()
}

// crashPoint fires one no-op queue event at the current instant when
// Config.CrashPoints is set: a strike point for a step-armed fault
// injector inside an idempotent op's durability window (see the Config
// field). A crash panic raised here unwinds to the dispatch loop's
// containment, leaving the journaled intent durably in flight.
func (s *Server) crashPoint() {
	if !s.cfg.CrashPoints {
		return
	}
	s.events.Schedule(s.clock.Now(), func(sim.Time) {})
	s.events.RunUntil(s.clock, s.clock.Now())
}

// stallEstimate predicts the synchronous clean time a write admitted
// right now would pay: with the dirty set at (or drained below) the
// effective budget, the fault handler cleans one victim per admission,
// so the stall is at least one page's SSD write; during a budget drain
// it is the full excess.
func (s *Server) stallEstimate() sim.Duration {
	excess := s.mgr.DirtyCount() - s.mgr.EffectiveDirtyBudget() + 1
	if excess <= 0 {
		return 0
	}
	dev := s.mgr.SSD()
	bw := dev.MeasuredWriteBandwidth()
	if bw <= 0 {
		bw = dev.EffectiveWriteBandwidth()
	}
	if bw <= 0 {
		bw = 1
	}
	cfg := dev.Config()
	perPage := cfg.PerIOLatency + sim.Duration(int64(cfg.PageSize)*int64(sim.Second)/bw)
	return sim.Duration(excess) * perPage
}

// serveOne applies the dequeue-time policy and executes the op. The
// request span covers admission to completion; cleans the op triggers
// inside the manager nest under it via the tracer scope.
func (s *Server) serveOne(it *item) {
	if it.cancelled.Load() {
		return // client already gone; drop silently
	}
	now := s.clock.Now()
	sp := s.tr.Begin("serve.request", it.enqueuedAt)
	if it.deadline != 0 && now > it.deadline {
		s.st.shedDeadline.Inc()
		s.tr.Finish(sp, now, "shed_deadline")
		s.deliver(it, outcome{err: fmt.Errorf("%w: queued %v past deadline", ErrDeadlineExceeded, now.Sub(it.deadline))})
		return
	}
	if it.req.Write && it.req.Class == ClassClient {
		// Re-check the ladder with the live state: it may have
		// escalated while the request was queued.
		if s.mgr.WritesBlocked() {
			s.st.shedReadOnly.Inc()
			s.tr.Finish(sp, now, "shed_readonly")
			s.deliver(it, outcome{err: fmt.Errorf("%w: ladder at %v", ErrReadOnly, s.mgr.HealthState())})
			return
		}
		if s.mgr.HealthState() == core.StateDegraded && it.req.Priority == PriorityLow {
			s.st.shedOverload.Inc()
			s.tr.Finish(sp, now, "shed_overload")
			s.deliver(it, outcome{err: fmt.Errorf("%w: low-priority write shed while Degraded", ErrOverloaded)})
			return
		}
		if it.deadline != 0 {
			if stall := s.stallEstimate(); stall > 0 && now.Add(stall+s.cfg.OpServiceTime) > it.deadline {
				s.st.shedDeadline.Inc()
				s.st.stallPredicted.Inc()
				s.tr.Finish(sp, now, "shed_stall_predicted")
				s.deliver(it, outcome{err: fmt.Errorf("%w: predicted clean-stall %v misses deadline", ErrDeadlineExceeded, stall)})
				return
			}
		}
	}
	wait := now.Sub(it.enqueuedAt)
	if wait < 0 {
		wait = 0
	}
	s.st.queueWait.Record(wait)
	prevScope := s.tr.SetScope(sp.ID)
	s.clock.Advance(s.cfg.OpServiceTime)
	ex := Exec{Store: s.store, Mgr: s.mgr, Now: s.clock.Now()}
	var val any
	var err error
	if it.req.Idem != nil {
		val, err = s.execIdem(ex, it.req)
	} else {
		val, err = it.req.Op(ex)
	}
	s.pump()
	s.tr.SetScope(prevScope)
	if err != nil {
		// A write racing a ladder escalation surfaces mmu.ErrProtected
		// from deep inside the store; give the client the typed error.
		if errors.Is(err, mmu.ErrProtected) {
			err = errors.Join(ErrReadOnly, err)
			s.st.shedReadOnly.Inc()
			s.tr.Finish(sp, s.clock.Now(), "shed_readonly")
		} else {
			s.st.failed.Inc()
			s.tr.Finish(sp, s.clock.Now(), "failed")
		}
		s.deliver(it, outcome{err: err})
		return
	}
	s.st.completed.Inc()
	lat := s.clock.Now().Sub(it.enqueuedAt)
	if lat < 0 {
		lat = 0
	}
	s.st.latency[it.req.Priority].Record(lat)
	s.tr.Finish(sp, s.clock.Now(), "ok")
	s.deliver(it, outcome{res: Result{Value: val, Wait: wait, Latency: lat}})
}

// watchdogTick runs as a virtual-time event on the dispatch goroutine
// (events are only ever pumped there), so it fires even while the loop
// is "stuck" inside a virtually-blocking clean — exactly the stall it
// exists to catch: a non-empty queue across WatchdogStrikes intervals
// with no request retired.
func (s *Server) watchdogTick(now sim.Time) {
	if s.wdDead.Load() {
		return
	}
	pops := s.pops.Load()
	if s.occupancy.Load() > 0 && pops == s.wdLast {
		s.wdStrike++
		if s.wdStrike == s.cfg.WatchdogStrikes {
			// Request the trip; the dispatch loop executes it at the next
			// request boundary. The tick itself may be firing from a Step
			// nested deep inside the manager's own cleaning machinery
			// (e.g. an SSD submit stall), where re-entering the manager
			// with EnterEmergencyFlush would corrupt its in-flight
			// accounting — so the handler only ever sets a flag.
			s.wdTrip.Store(true)
		}
	} else {
		s.wdStrike = 0
	}
	s.wdLast = pops
	s.wdEvent = s.events.Schedule(now.Add(s.cfg.WatchdogInterval), s.watchdogTick)
}

// maybeTrip executes a watchdog-requested ladder trip. It runs on the
// dispatch goroutine between requests — the only point where calling
// into the manager's drain machinery is safe. Blocking writes and
// force-draining the dirty set frees the capacity the stalled queue was
// waiting on; if even the bounded emergency drain cannot empty the set,
// the ladder escalates to ReadOnly.
func (s *Server) maybeTrip() {
	if !s.wdTrip.Swap(false) {
		return
	}
	s.st.watchdogTrips.Inc()
	if remaining := s.mgr.EnterEmergencyFlush(); remaining > 0 {
		s.mgr.EnterReadOnly()
	}
	s.publish()
}

// Tripped reports whether the watchdog has ever forced an emergency
// flush.
func (s *Server) Tripped() bool { return s.st.watchdogTrips.Value() > 0 }

// ManagerStats reads the manager's counters on the dispatch goroutine —
// the race-free way for a concurrent observer to sample them while the
// server owns the core.
func (s *Server) ManagerStats(ctx context.Context) (core.Stats, error) {
	res, err := s.Submit(ctx, Request{
		Class:    ClassBackground,
		Priority: PriorityHigh,
		Op:       func(e Exec) (any, error) { return e.Mgr.Stats(), nil },
	})
	if err != nil {
		return core.Stats{}, err
	}
	return res.Value.(core.Stats), nil
}

// ManagerSamples reads the dirty-footprint sample ring on the dispatch
// goroutine (see ManagerStats).
func (s *Server) ManagerSamples(ctx context.Context) ([]core.Sample, error) {
	res, err := s.Submit(ctx, Request{
		Class:    ClassBackground,
		Priority: PriorityHigh,
		Op:       func(e Exec) (any, error) { return e.Mgr.Samples(), nil },
	})
	if err != nil {
		return nil, err
	}
	return res.Value.([]core.Sample), nil
}
