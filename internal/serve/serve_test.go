package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"viyojit/internal/core"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvdram"
	"viyojit/internal/pheap"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

type harness struct {
	srv     *Server
	mgr     *core.Manager
	store   *kvstore.Store
	mapping *core.Mapping
}

// newHarness assembles a small Viyojit stack fronted by a started
// server. prep runs single-threaded before Start (e.g. to pre-set a
// ladder state).
func newHarness(t *testing.T, budget int, devCfg ssd.Config, cfg Config, prep func(*core.Manager)) *harness {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, devCfg)
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := mgr.Map("heap", 512<<10)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(mapping)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Create(heap, 64)
	if err != nil {
		t.Fatal(err)
	}
	if prep != nil {
		prep(mgr)
	}
	srv, err := New(clock, events, mgr, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	h := &harness{srv: srv, mgr: mgr, store: store, mapping: mapping}
	t.Cleanup(func() {
		h.srv.Stop()
		if !h.mgr.Closed() {
			h.mgr.Close()
		}
	})
	return h
}

func put(key, val string) Request {
	return Request{Priority: PriorityNormal, Write: true, Op: func(e Exec) (any, error) {
		return nil, e.Store.Put([]byte(key), []byte(val))
	}}
}

func get(key string) Request {
	return Request{Priority: PriorityNormal, Op: func(e Exec) (any, error) {
		v, ok, err := e.Store.Get([]byte(key))
		if err != nil || !ok {
			return nil, err
		}
		return string(v), err
	}}
}

// gate submits a request whose Op signals entry and then blocks until
// released — the deterministic way to hold the dispatch loop busy while
// the test arranges queue contents.
func gate(t *testing.T, srv *Server) (entered chan struct{}, release chan struct{}, done chan error) {
	t.Helper()
	entered = make(chan struct{})
	release = make(chan struct{})
	done = make(chan error, 1)
	go func() {
		_, err := srv.Submit(context.Background(), Request{
			Class:    ClassBackground,
			Priority: PriorityHigh,
			Op: func(Exec) (any, error) {
				close(entered)
				<-release
				return nil, nil
			},
		})
		done <- err
	}()
	<-entered
	return entered, release, done
}

// waitQueueLen polls until occupancy reaches want (real-time bounded).
func waitQueueLen(t *testing.T, srv *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.QueueLen() < want {
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d (at %d)", want, srv.QueueLen())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitPutGet(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	ctx := context.Background()
	if _, err := h.srv.Submit(ctx, put("k1", "v1")); err != nil {
		t.Fatalf("put: %v", err)
	}
	res, err := h.srv.Submit(ctx, get("k1"))
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if res.Value != "v1" {
		t.Fatalf("get returned %v, want v1", res.Value)
	}
	if res.Latency <= 0 {
		t.Fatalf("latency %v, want > 0", res.Latency)
	}
	st := h.srv.Stats()
	if st.Completed != 2 || st.Submitted != 2 || st.Shed() != 0 {
		t.Fatalf("stats %+v, want 2 submitted/completed, 0 shed", st)
	}
}

func TestQueueFullShedsOverloaded(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{MaxQueue: 4, ShedWatermark: 1.0}, nil)
	_, release, done := gate(t, h.srv)

	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := h.srv.Submit(context.Background(), get("missing"))
			results <- err
		}()
	}
	waitQueueLen(t, h.srv, 4)

	// Queue is at MaxQueue: the next submit sheds synchronously.
	_, err := h.srv.Submit(context.Background(), get("missing"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit at full queue: %v, want ErrOverloaded", err)
	}
	if st := h.srv.Stats(); st.ShedOverload != 1 {
		t.Fatalf("ShedOverload = %d, want 1", st.ShedOverload)
	}
	if st := h.srv.Stats(); st.MaxQueueObserved > 4 {
		t.Fatalf("MaxQueueObserved = %d exceeds bound 4", st.MaxQueueObserved)
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("gate op: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued op %d: %v", i, err)
		}
	}
}

func TestWatermarkShedsLowPriorityOnly(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{MaxQueue: 8, ShedWatermark: 0.5}, nil)
	_, release, done := gate(t, h.srv)

	results := make(chan error, 5)
	for i := 0; i < 4; i++ {
		go func() {
			_, err := h.srv.Submit(context.Background(), get("missing"))
			results <- err
		}()
	}
	waitQueueLen(t, h.srv, 4)

	// Occupancy 4 ≥ 0.5×8: low priority sheds, normal still admitted.
	low := get("missing")
	low.Priority = PriorityLow
	if _, err := h.srv.Submit(context.Background(), low); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low-priority at watermark: %v, want ErrOverloaded", err)
	}
	go func() {
		_, err := h.srv.Submit(context.Background(), get("missing"))
		results <- err
	}()
	waitQueueLen(t, h.srv, 5)

	close(release)
	<-done
	for i := 0; i < 5; i++ {
		if err := <-results; err != nil {
			t.Fatalf("queued op %d: %v", i, err)
		}
	}
}

func TestDeadlineMissedInQueue(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{OpServiceTime: sim.Millisecond}, nil)
	_, release, done := gate(t, h.srv)

	// Queued behind the gate with a deadline shorter than the gate's
	// own 1 ms service time: by dequeue the deadline has passed.
	r := get("missing")
	r.Timeout = 500 * sim.Microsecond
	errc := make(chan error, 1)
	go func() {
		_, err := h.srv.Submit(context.Background(), r)
		errc <- err
	}()
	waitQueueLen(t, h.srv, 1)

	close(release)
	<-done
	if err := <-errc; !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("queued past deadline: %v, want ErrDeadlineExceeded", err)
	}
	if st := h.srv.Stats(); st.ShedDeadline != 1 || st.StallPredicted != 0 {
		t.Fatalf("stats %+v, want ShedDeadline=1 via queue wait", st)
	}
}

func TestStallPredictionRejectsTightDeadline(t *testing.T) {
	// Slow SSD: ~1 MiB/s + 1 ms per IO ≈ 5 ms per page clean.
	h := newHarness(t, 4, ssd.Config{WriteBandwidth: 1 << 20, PerIOLatency: sim.Millisecond}, Config{}, nil)
	ctx := context.Background()

	// Fill the dirty set exactly to budget with raw page writes.
	for i := 0; i < 4; i++ {
		off := int64(i) * 4096
		if _, err := h.srv.Submit(ctx, Request{Priority: PriorityNormal, Write: true, Op: func(e Exec) (any, error) {
			return nil, h.mapping.WriteAt([]byte{1}, off)
		}}); err != nil {
			t.Fatalf("fill write %d: %v", i, err)
		}
	}
	if got := h.mgr.DirtyCount(); got != 4 {
		t.Fatalf("dirty = %d after fill, want 4", got)
	}

	// A write with a deadline tighter than one predicted page-clean
	// stall must be rejected without executing.
	tight := Request{Priority: PriorityNormal, Write: true, Timeout: sim.Millisecond, Op: func(e Exec) (any, error) {
		return nil, h.mapping.WriteAt([]byte{2}, 4*4096)
	}}
	if _, err := h.srv.Submit(ctx, tight); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("tight-deadline write at budget: %v, want ErrDeadlineExceeded", err)
	}
	st := h.srv.Stats()
	if st.StallPredicted != 1 || st.ShedDeadline != 1 {
		t.Fatalf("stats %+v, want StallPredicted=ShedDeadline=1", st)
	}

	// The same write with no deadline rides out the clean and succeeds.
	loose := Request{Priority: PriorityNormal, Write: true, Op: func(e Exec) (any, error) {
		return nil, h.mapping.WriteAt([]byte{2}, 4*4096)
	}}
	if _, err := h.srv.Submit(ctx, loose); err != nil {
		t.Fatalf("no-deadline write at budget: %v", err)
	}
	if got := h.mgr.DirtyCount(); got > 4 {
		t.Fatalf("dirty = %d after stalled admit, budget 4 violated", got)
	}
}

func TestReadOnlyRejectsWritesServesReads(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, func(m *core.Manager) {
		m.EnterReadOnly()
	})
	ctx := context.Background()
	if _, err := h.srv.Submit(ctx, put("k", "v")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write in ReadOnly: %v, want ErrReadOnly", err)
	}
	// Reads keep flowing (a miss touches nothing).
	if _, err := h.srv.Submit(ctx, get("missing")); err != nil {
		t.Fatalf("read in ReadOnly: %v", err)
	}
	// Background writes are the remediation path and stay admitted at
	// admission time (they may still fail underneath, typed).
	st := h.srv.Stats()
	if st.ShedReadOnly != 1 {
		t.Fatalf("ShedReadOnly = %d, want 1", st.ShedReadOnly)
	}
	if h.srv.HealthState() != core.StateReadOnly {
		t.Fatalf("published state %v, want ReadOnly", h.srv.HealthState())
	}
}

func TestDegradedShedsLowPriorityWrites(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, func(m *core.Manager) {
		m.EnterDegraded()
	})
	ctx := context.Background()
	low := put("k", "v")
	low.Priority = PriorityLow
	if _, err := h.srv.Submit(ctx, low); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("low-priority write while Degraded: %v, want ErrOverloaded", err)
	}
	if _, err := h.srv.Submit(ctx, put("k", "v")); err != nil {
		t.Fatalf("normal write while Degraded: %v", err)
	}
	lowRead := get("k")
	lowRead.Priority = PriorityLow
	if _, err := h.srv.Submit(ctx, lowRead); err != nil {
		t.Fatalf("low-priority read while Degraded: %v", err)
	}
}

func TestLadderEscalationMapsStoreErrors(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	ctx := context.Background()
	if _, err := h.srv.Submit(ctx, put("k", "v")); err != nil {
		t.Fatal(err)
	}
	// Escalate through a background request (the race-free way), then a
	// write that slipped past stale published state still comes back
	// typed, mapped from mmu.ErrProtected.
	if _, err := h.srv.Submit(ctx, Request{Class: ClassBackground, Priority: PriorityHigh, Op: func(e Exec) (any, error) {
		e.Mgr.EnterReadOnly()
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.srv.Submit(ctx, put("k", "v2")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("write after escalation: %v, want ErrReadOnly", err)
	}
}

func TestCancellationWhileQueued(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	_, release, done := gate(t, h.srv)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := h.srv.Submit(ctx, get("missing"))
		errc <- err
	}()
	waitQueueLen(t, h.srv, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit: %v, want context.Canceled", err)
	}
	close(release)
	<-done
	// The discarded item must not wedge the loop.
	if _, err := h.srv.Submit(context.Background(), get("missing")); err != nil {
		t.Fatalf("submit after cancellation: %v", err)
	}
	if st := h.srv.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

func TestStopRejectsQueuedTyped(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	_, release, done := gate(t, h.srv)

	errc := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := h.srv.Submit(context.Background(), get("missing"))
			errc <- err
		}()
	}
	waitQueueLen(t, h.srv, 2)

	stopped := make(chan struct{})
	go func() { h.srv.Stop(); close(stopped) }()
	// Wait until the stop flag is observable (new submits reject) before
	// releasing the gate, so the loop cannot drain the queue first.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		pctx, pcancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := h.srv.Submit(pctx, get("probe"))
		pcancel()
		if errors.Is(err, ErrClosed) {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("server never entered stopping state")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	<-stopped
	for i := 0; i < 2; i++ {
		if err := <-errc; !errors.Is(err, ErrClosed) {
			t.Fatalf("queued op at shutdown: %v, want ErrClosed", err)
		}
	}
	if _, err := h.srv.Submit(context.Background(), get("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after stop: %v, want ErrClosed", err)
	}
	h.srv.Stop() // idempotent
}

func TestWaitUntilAdvancesIdleClock(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	target := sim.Time(5 * sim.Millisecond)
	if err := h.srv.WaitUntil(target); err != nil {
		t.Fatalf("WaitUntil: %v", err)
	}
	if now := h.srv.Now(); now < target {
		t.Fatalf("Now() = %v after WaitUntil(%v)", now, target)
	}
	// Already-reached targets return immediately.
	if err := h.srv.WaitUntil(sim.Time(sim.Millisecond)); err != nil {
		t.Fatal(err)
	}
}

func TestWatchdogTripsOnStalledDispatch(t *testing.T) {
	// Slow SSD so a full budget drain takes many watchdog intervals.
	h := newHarness(t, 32,
		ssd.Config{WriteBandwidth: 1 << 20, PerIOLatency: sim.Millisecond},
		Config{WatchdogInterval: sim.Millisecond, WatchdogStrikes: 3}, nil)
	ctx := context.Background()

	// Dirty the full budget.
	if _, err := h.srv.Submit(ctx, Request{Priority: PriorityNormal, Write: true, Op: func(e Exec) (any, error) {
		for i := 0; i < 32; i++ {
			if err := h.mapping.WriteAt([]byte{1}, int64(i)*4096); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}}); err != nil {
		t.Fatal(err)
	}

	// A background drain op that virtually blocks for ~150 ms while a
	// low-priority client read sits queued behind it: the watchdog must
	// see a non-empty queue making no progress and trip the ladder.
	started := make(chan struct{})
	goahead := make(chan struct{})
	drainErr := make(chan error, 1)
	go func() {
		_, err := h.srv.Submit(ctx, Request{Class: ClassBackground, Priority: PriorityHigh, Op: func(e Exec) (any, error) {
			close(started)
			<-goahead
			return nil, e.Mgr.SetDirtyBudgetSync(1)
		}})
		drainErr <- err
	}()
	<-started
	queuedErr := make(chan error, 1)
	go func() {
		r := get("missing")
		r.Priority = PriorityLow
		_, err := h.srv.Submit(ctx, r)
		queuedErr <- err
	}()
	waitQueueLen(t, h.srv, 1)
	close(goahead)

	if err := <-drainErr; err != nil {
		t.Fatalf("drain op: %v", err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued read: %v", err)
	}
	if !h.srv.Tripped() {
		t.Fatal("watchdog did not trip during the stalled drain")
	}
	if st := h.srv.Stats(); st.WatchdogTrips < 1 {
		t.Fatalf("WatchdogTrips = %d, want >= 1", st.WatchdogTrips)
	}
	// The trip escalated the ladder; dirty is fully drained.
	if got := h.mgr.HealthState(); got < core.StateEmergencyFlush {
		t.Fatalf("ladder at %v after trip, want >= EmergencyFlush", got)
	}
	if got := h.mgr.DirtyCount(); got != 0 {
		t.Fatalf("dirty = %d after emergency drain, want 0", got)
	}
}

func TestManagerStatsRaceFree(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	ctx := context.Background()
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func(i int) {
			for j := 0; j < 20; j++ {
				_, err := h.srv.Submit(ctx, put("k", "v"))
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
		go func() {
			for j := 0; j < 20; j++ {
				if _, err := h.srv.ManagerStats(ctx); err != nil {
					errs <- err
					return
				}
				if _, err := h.srv.ManagerSamples(ctx); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent observer: %v", err)
		}
	}
}

func TestBadRequests(t *testing.T) {
	h := newHarness(t, 16, ssd.Config{}, Config{}, nil)
	if _, err := h.srv.Submit(context.Background(), Request{}); err == nil {
		t.Fatal("nil Op accepted")
	}
	if _, err := h.srv.Submit(context.Background(), Request{Priority: 7, Op: func(Exec) (any, error) { return nil, nil }}); err == nil {
		t.Fatal("invalid priority accepted")
	}
	if _, err := New(nil, nil, nil, nil, Config{}); err == nil {
		t.Fatal("New with nil stack accepted")
	}
}
