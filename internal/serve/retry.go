package serve

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"viyojit/internal/sim"
)

// RetryConfig tunes a RetryingClient. Zero values select defaults.
type RetryConfig struct {
	// MaxAttempts bounds tries per op (first attempt included).
	// 0 selects 16.
	MaxAttempts int
	// BaseBackoff is the virtual-time backoff after the first retryable
	// failure; it doubles per attempt. 0 selects 50 µs.
	BaseBackoff sim.Duration
	// MaxBackoff caps the exponential growth. 0 selects 5 ms.
	MaxBackoff sim.Duration
	// Deadline bounds the whole operation (all attempts and backoffs)
	// in virtual time from the first attempt; the per-attempt
	// Request.Timeout is Timeout. 0 disables either bound.
	Deadline sim.Duration
	// Timeout is the per-attempt request deadline passed to the server.
	Timeout sim.Duration
	// Priority for the submitted requests.
	Priority Priority
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 16
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * sim.Microsecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 5 * sim.Millisecond
	}
	return c
}

// RetryingClient drives idempotent ops at a server with automatic
// retries. It owns a client ID and issues sequence numbers in order, so
// its retries are exactly the ones the intent journal's window
// invariant protects. Retries fire only on typed-retryable errors (see
// Retryable): overload and deadline sheds mean the op never executed; a
// power-failure disconnect ends the loop immediately (the server is
// gone) but the op stays retryable — call Replay seqs against the
// recovered server.
//
// Not safe for concurrent use: one client, one goroutine, like a real
// connection.
type RetryingClient struct {
	srv  *Server
	id   uint64
	cfg  RetryConfig
	rng  *sim.RNG
	next uint64

	// Atomics: harnesses sample these from observer goroutines while
	// the client goroutine runs.
	attempts atomic.Uint64 // total submit attempts
	retries  atomic.Uint64 // attempts beyond the first per op
}

// NewRetryingClient builds a client. id must be non-zero and unique per
// live client; seed decorrelates the backoff jitter across clients.
func NewRetryingClient(srv *Server, id uint64, seed uint64, cfg RetryConfig) (*RetryingClient, error) {
	if srv == nil {
		return nil, fmt.Errorf("serve: retrying client needs a server")
	}
	if id == 0 {
		return nil, fmt.Errorf("serve: client id must be non-zero")
	}
	return &RetryingClient{srv: srv, id: id, cfg: cfg.withDefaults(), rng: sim.NewRNG(seed), next: 1}, nil
}

// ID returns the client's journal identity.
func (c *RetryingClient) ID() uint64 { return c.id }

// NextSeq returns the sequence number the next Do will use.
func (c *RetryingClient) NextSeq() uint64 { return c.next }

// SetNextSeq positions the sequence counter — the recovery path: a
// client resuming against a recovered server continues its own stream.
func (c *RetryingClient) SetNextSeq(seq uint64) { c.next = seq }

// Attempts and Retries report total submit attempts and how many were
// retries. Safe from any goroutine.
func (c *RetryingClient) Attempts() uint64 { return c.attempts.Load() }
func (c *RetryingClient) Retries() uint64  { return c.retries.Load() }

// Do issues the next sequence number and runs op to completion with
// retries. It returns the seq used (even on error, so a caller can
// replay it after recovery).
func (c *RetryingClient) Do(ctx context.Context, op IdemOp) (IdemResult, uint64, error) {
	seq := c.next
	c.next++
	res, err := c.DoSeq(ctx, seq, op)
	return res, seq, err
}

// DoSeq runs op under an explicit sequence number — Do's engine, and
// the replay path for seqs whose acks a power failure swallowed.
func (c *RetryingClient) DoSeq(ctx context.Context, seq uint64, op IdemOp) (IdemResult, error) {
	start := c.srv.Now()
	var deadline sim.Time
	if c.cfg.Deadline > 0 {
		deadline = start.Add(c.cfg.Deadline)
	}
	var last error
	tried := 0
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			wake := c.srv.Now().Add(c.backoff(attempt))
			if deadline != 0 && wake > deadline {
				break // the backoff alone would blow the budget
			}
			if err := c.srv.WaitUntil(wake); err != nil {
				return IdemResult{}, err
			}
		}
		c.attempts.Add(1)
		tried++
		res, err := c.srv.SubmitIdempotent(ctx, c.id, seq, op, Request{
			Priority: c.cfg.Priority,
			Timeout:  c.cfg.Timeout,
		})
		if err == nil {
			return res, nil
		}
		last = err
		if errors.Is(err, ErrPowerFailure) || errors.Is(err, ErrServerClosed) {
			// The server is gone; no attempt against *this* server can
			// succeed. The seq remains safe to replay after recovery.
			return IdemResult{}, err
		}
		if !Retryable(err) {
			return IdemResult{}, err
		}
		if deadline != 0 && c.srv.Now() >= deadline {
			break
		}
	}
	return IdemResult{}, errors.Join(fmt.Errorf("%w after %d attempts", ErrRetriesExhausted, tried), last)
}

// backoff is exponential from BaseBackoff, capped at MaxBackoff, with
// full jitter — attempt i draws uniformly from (0, min(base·2^(i−1),
// max)] so colliding clients decorrelate.
func (c *RetryingClient) backoff(attempt int) sim.Duration {
	d := c.cfg.BaseBackoff
	for i := 1; i < attempt && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	j := sim.Duration(c.rng.Int63n(int64(d))) + 1
	return j
}
