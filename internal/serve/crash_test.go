package serve

import (
	"context"
	"errors"
	"sync"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/faultinject"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvdram"
	"viyojit/internal/pheap"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// newCrashHarness builds a stack with a Crasher installed before Start
// and the server wired to recover its signal.
func newCrashHarness(t *testing.T, budget int) (*harness, *faultinject.Crasher, *sim.Queue) {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := mgr.Map("heap", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(mapping)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Create(heap, 64)
	if err != nil {
		t.Fatal(err)
	}
	crasher := faultinject.NewCrasher(events)
	srv, err := New(clock, events, mgr, store, Config{
		RecoverCrash: func(v any) bool { _, ok := faultinject.AsCrash(v); return ok },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{srv: srv, mgr: mgr, store: store, mapping: mapping}
	t.Cleanup(func() { h.srv.Stop() })
	return h, crasher, events
}

// A power failure mid-traffic must fail the in-flight request, every
// queued request, and every waiter with ErrPowerFailure — and later
// submissions must see the same typed error, while Stop still joins
// cleanly.
func TestPowerFailureFailsEverythingTyped(t *testing.T) {
	h, crasher, events := newCrashHarness(t, 64)
	crasher.ArmAt(events.Fired() + 1) // crash on the very next event that fires
	if err := h.srv.Start(); err != nil {
		t.Fatal(err)
	}

	_, release, gdone := gate(t, h.srv)
	var handles []*Handle
	// The first queued request plants a due event; serveOne's post-op
	// pump fires it and hits the armed crash — power fails after the op
	// applied but before its ack, with four requests still queued.
	hd0, err := h.srv.SubmitAsync(Request{Priority: PriorityNormal, Write: true, Op: func(e Exec) (any, error) {
		events.Schedule(e.Now, func(sim.Time) {})
		return nil, e.Store.Put([]byte("k"), []byte("v"))
	}})
	if err != nil {
		t.Fatal(err)
	}
	handles = append(handles, hd0)
	for i := 0; i < 4; i++ {
		hd, err := h.srv.SubmitAsync(put("k", "012345678901234567890123456789"))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, hd)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- h.srv.WaitUntil(h.srv.Now().Add(sim.Second)) }()
	waitQueueLen(t, h.srv, 5)
	close(release)
	if err := <-gdone; err != nil {
		t.Fatalf("gated op should have completed before the crash: %v", err)
	}

	failures := 0
	for _, hd := range handles {
		_, err := hd.Wait(context.Background())
		if err == nil {
			continue // served before the crash landed
		}
		if !errors.Is(err, ErrPowerFailure) {
			t.Fatalf("queued request err = %v, want ErrPowerFailure", err)
		}
		failures++
	}
	if failures != 5 {
		t.Fatalf("%d of 5 requests observed the power failure, want all", failures)
	}
	if err := <-waitErr; !errors.Is(err, ErrPowerFailure) {
		t.Fatalf("waiter err = %v, want ErrPowerFailure", err)
	}
	if !h.srv.PowerFailed() {
		t.Fatal("PowerFailed() = false after crash")
	}
	if _, err := h.srv.SubmitAsync(put("x", "y")); !errors.Is(err, ErrPowerFailure) {
		t.Fatalf("post-crash submit err = %v, want ErrPowerFailure", err)
	}
	if err := h.srv.WaitUntil(h.srv.Now().Add(sim.Second)); !errors.Is(err, ErrPowerFailure) {
		t.Fatalf("post-crash WaitUntil err = %v, want ErrPowerFailure", err)
	}
	if cp, crashed := crasher.Crashed(); !crashed || cp.Step == 0 {
		t.Fatalf("crasher state: %+v %v", cp, crashed)
	}
	h.srv.Stop() // must join, not hang
}

// The recovery filter must never classify a foreign panic value as a
// power failure — real bugs crash the process, they don't masquerade as
// ErrPowerFailure (the filter returning false makes loop() re-panic).
func TestAsCrashRejectsForeignPanics(t *testing.T) {
	for _, v := range []any{"boom", errors.New("bug"), 42, nil, struct{}{}} {
		if _, ok := faultinject.AsCrash(v); ok {
			t.Fatalf("AsCrash accepted %#v", v)
		}
	}
}

// Satellite regression: Submit/SubmitAsync racing Stop must always
// resolve to a typed error or success — never a hang, and never a
// misleading queue-full — and post-Stop submissions must return
// ErrServerClosed even when the queue was full at stop time.
func TestStopSubmitRace(t *testing.T) {
	h := newHarness(t, 64, ssd.Config{}, Config{MaxQueue: 4}, nil)

	// Deterministic half: gate the loop, fill the queue to the brim,
	// then Stop concurrently. stopping is checked before queue-full, so
	// the verdict must be ErrServerClosed, not ErrOverloaded.
	_, release, gdone := gate(t, h.srv)
	for i := 0; i < 4; i++ {
		if _, err := h.srv.SubmitAsync(put("k", "v")); err != nil {
			t.Fatal(err)
		}
	}
	stopDone := make(chan struct{})
	go func() { h.srv.Stop(); close(stopDone) }()
	// Wait until Stop has marked the server stopping.
	waitFor(t, func() bool {
		h.srv.mu.Lock()
		defer h.srv.mu.Unlock()
		return h.srv.stopping
	})
	if _, err := h.srv.SubmitAsync(put("k", "v")); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("submit-after-stop err = %v, want ErrServerClosed (queue full must not mask it)", err)
	}
	if !errors.Is(ErrServerClosed, ErrClosed) {
		t.Fatal("ErrServerClosed must match the historical ErrClosed")
	}
	close(release)
	<-gdone
	<-stopDone

	if _, err := h.srv.SubmitAsync(put("k", "v")); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-stop submit err = %v, want ErrServerClosed", err)
	}
	if err := h.srv.WaitUntil(h.srv.Now().Add(sim.Second)); !errors.Is(err, ErrServerClosed) {
		t.Fatalf("post-stop WaitUntil err = %v, want ErrServerClosed", err)
	}
}

// Hammer half of the satellite regression, meant for -race: many
// goroutines submitting while Stop lands mid-storm. Every outcome must
// be success or a typed rejection; everything must terminate.
func TestStopSubmitRaceHammer(t *testing.T) {
	h := newHarness(t, 64, ssd.Config{}, Config{MaxQueue: 16}, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 8*50)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := h.srv.Submit(context.Background(), put("k", "v"))
				errs <- err
			}
		}()
	}
	h.srv.Stop()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil || errors.Is(err, ErrServerClosed) || errors.Is(err, ErrOverloaded) || errors.Is(err, ErrDeadlineExceeded) {
			continue
		}
		t.Fatalf("untyped outcome from Submit/Stop race: %v", err)
	}
}
