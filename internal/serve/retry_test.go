package serve

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"viyojit/internal/intent"
)

// waitFor polls cond (real-time bounded) — for coordinating with the
// retry loop's virtual-time backoffs.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRetryingClientSucceedsAfterTransientOverload(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 8, Config{MaxQueue: 4})
	cl, err := NewRetryingClient(h.srv, 11, 0x11, RetryConfig{MaxAttempts: 50})
	if err != nil {
		t.Fatal(err)
	}

	// Hold the dispatch loop and fill the queue, so the client's first
	// attempts shed with ErrOverloaded at admission.
	_, release, gdone := gate(t, h.srv)
	var handles []*Handle
	for i := 0; i < 4; i++ {
		hd, err := h.srv.SubmitAsync(put("fill", "x"))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, hd)
	}

	type out struct {
		res IdemResult
		seq uint64
		err error
	}
	doDone := make(chan out, 1)
	go func() {
		res, seq, err := cl.Do(context.Background(), IdemOp{Kind: IdemPut, Key: []byte("rk"), Value: []byte("rv")})
		doDone <- out{res, seq, err}
	}()

	// Wait until the client has drawn at least one overload rejection,
	// then unblock the queue so a later attempt lands.
	waitFor(t, func() bool { return cl.Attempts() >= 1 && h.srv.Stats().ShedOverload >= 1 })
	close(release)
	o := <-doDone
	if o.err != nil {
		t.Fatalf("Do failed: %v (attempts %d)", o.err, cl.Attempts())
	}
	if o.seq != 1 || cl.NextSeq() != 2 {
		t.Fatalf("seq accounting: used %d next %d", o.seq, cl.NextSeq())
	}
	if cl.Retries() == 0 {
		t.Fatal("expected at least one retry")
	}
	for _, hd := range handles {
		if _, err := hd.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := storeGet(h, "rk")
	if err != nil || !ok || !bytes.Equal(v, []byte("rv")) {
		t.Fatalf("store state after retried put: %v %v %v", v, ok, err)
	}
	if err := <-gdone; err != nil {
		t.Fatal(err)
	}
}

func TestRetryingClientExhaustsOnPersistentRejection(t *testing.T) {
	// A minimum-size journal stuffed with fat in-flight intents cannot
	// accept new ones even after compaction, so every attempt draws the
	// journal-full ErrOverloaded mapping — a persistent retryable error.
	h := newIdemHarness(t, 64, intent.MinStoreBytes, 16, Config{})
	ctx := context.Background()
	fat := bytes.Repeat([]byte("z"), 1800)
	for s := uint64(1); s <= 2; s++ {
		if _, err := h.srv.SubmitIdempotent(ctx, 5, s, IdemOp{Kind: IdemPut, Key: []byte{byte(s)}, Value: fat}, Request{}); err != nil {
			t.Fatalf("setup put %d: %v", s, err)
		}
	}
	// Those two completed, so their results are cached; two fat
	// in-flight intents from a second client now brick the journal.
	// Easier: a third fat put cannot fit intent+snapshot.
	cl, err := NewRetryingClient(h.srv, 6, 0x22, RetryConfig{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, _, derr := cl.Do(ctx, IdemOp{Kind: IdemPut, Key: []byte("big"), Value: fat})
	if derr == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(derr, ErrRetriesExhausted) || !errors.Is(derr, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping ErrOverloaded", derr)
	}
	if got := cl.Attempts(); got != 4 {
		t.Fatalf("attempts = %d, want 4", got)
	}
}

func TestRetryingClientDoesNotRetryNonRetryable(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 4, Config{})
	ctx := context.Background()
	cl, err := NewRetryingClient(h.srv, 7, 0x33, RetryConfig{MaxAttempts: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := cl.Do(ctx, IdemOp{Kind: IdemPut, Key: []byte("k"), Value: []byte("v")}); err != nil {
			t.Fatal(err)
		}
	}
	// Replaying a GC'd seq is a protocol violation: typed, not retried.
	before := cl.Attempts()
	if _, err := cl.DoSeq(ctx, 1, IdemOp{Kind: IdemPut, Key: []byte("k"), Value: []byte("v")}); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("err = %v, want ErrStaleSeq", err)
	}
	if cl.Attempts() != before+1 {
		t.Fatalf("non-retryable error was retried: %d attempts", cl.Attempts()-before)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrOverloaded, true},
		{ErrDeadlineExceeded, true},
		{ErrPowerFailure, true},
		{ErrReadOnly, false},
		{ErrServerClosed, false},
		{ErrClosed, false},
		{ErrStaleSeq, false},
		{ErrSeqReuse, false},
		{errors.New("app error"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
