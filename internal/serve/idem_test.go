package serve

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvdram"
	"viyojit/internal/pheap"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// newIdemHarness is newHarness plus an intent journal in a second
// battery-backed mapping (so journal writes are budget-accounted like
// everything else).
func newIdemHarness(t *testing.T, budget int, journalBytes int64, window int, cfg Config) *harness {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := mgr.Map("heap", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(mapping)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Create(heap, 64)
	if err != nil {
		t.Fatal(err)
	}
	jm, err := mgr.Map("intent", journalBytes)
	if err != nil {
		t.Fatal(err)
	}
	j, err := intent.Create(jm, intent.Config{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Journal = j
	srv, err := New(clock, events, mgr, store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	h := &harness{srv: srv, mgr: mgr, store: store, mapping: mapping}
	t.Cleanup(func() {
		h.srv.Stop()
		if !h.mgr.Closed() {
			h.mgr.Close()
		}
	})
	return h
}

func TestIdempotentPutDedup(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 8, Config{})
	ctx := context.Background()

	res, err := h.srv.SubmitIdempotent(ctx, 1, 1, IdemOp{Kind: IdemPut, Key: []byte("k"), Value: []byte("v1")}, Request{Priority: PriorityNormal})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deduped || res.Code != IdemApplied {
		t.Fatalf("fresh put: %+v", res)
	}
	// The retry of an acked request must come from cache.
	res, err = h.srv.SubmitIdempotent(ctx, 1, 1, IdemOp{Kind: IdemPut, Key: []byte("k"), Value: []byte("v1")}, Request{Priority: PriorityNormal})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deduped {
		t.Fatalf("retry not deduped: %+v", res)
	}
	if h.srv.st.idemDedup.Value() != 1 {
		t.Fatalf("dedup counter = %d", h.srv.st.idemDedup.Value())
	}
}

func TestIdempotentRMWRunsModifyOnce(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 8, Config{})
	ctx := context.Background()
	calls := 0
	op := IdemOp{Kind: IdemRMW, Key: []byte("ctr"), Modify: func(old []byte, ok bool) []byte {
		calls++
		if !ok {
			return []byte{1}
		}
		return []byte{old[0] + 1}
	}}
	for i := 0; i < 3; i++ { // same seq, retried three times
		res, err := h.srv.SubmitIdempotent(ctx, 9, 1, op, Request{})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Value, []byte{1}) {
			t.Fatalf("attempt %d: value %v", i, res.Value)
		}
	}
	if calls != 1 {
		t.Fatalf("Modify ran %d times, want 1", calls)
	}
	v, ok, err := storeGet(h, "ctr")
	if err != nil || !ok || !bytes.Equal(v, []byte{1}) {
		t.Fatalf("store state %v %v %v", v, ok, err)
	}
	// A NEW seq increments.
	res, err := h.srv.SubmitIdempotent(ctx, 9, 2, op, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Value, []byte{2}) {
		t.Fatalf("seq 2 value %v", res.Value)
	}
}

func TestIdempotentDeleteCachesNotFound(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 8, Config{})
	ctx := context.Background()
	res, err := h.srv.SubmitIdempotent(ctx, 2, 1, IdemOp{Kind: IdemDelete, Key: []byte("ghost")}, Request{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Code != IdemNotFound {
		t.Fatalf("delete of absent key code %d", res.Code)
	}
	res, err = h.srv.SubmitIdempotent(ctx, 2, 1, IdemOp{Kind: IdemDelete, Key: []byte("ghost")}, Request{})
	if err != nil || !res.Deduped || res.Code != IdemNotFound {
		t.Fatalf("cached delete retry: %+v err %v", res, err)
	}
}

func TestSeqReuseAndStaleSeqTyped(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 4, Config{})
	ctx := context.Background()
	if _, err := h.srv.SubmitIdempotent(ctx, 3, 1, IdemOp{Kind: IdemPut, Key: []byte("a"), Value: []byte("x")}, Request{}); err != nil {
		t.Fatal(err)
	}
	// Same seq, different op → typed reuse error.
	if _, err := h.srv.SubmitIdempotent(ctx, 3, 1, IdemOp{Kind: IdemPut, Key: []byte("b"), Value: []byte("x")}, Request{}); !errors.Is(err, ErrSeqReuse) {
		t.Fatalf("err = %v, want ErrSeqReuse", err)
	}
	// Blow past the window, then retry seq 1 → typed stale error.
	for s := uint64(2); s <= 10; s++ {
		if _, err := h.srv.SubmitIdempotent(ctx, 3, s, IdemOp{Kind: IdemPut, Key: []byte("a"), Value: []byte("x")}, Request{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.srv.SubmitIdempotent(ctx, 3, 1, IdemOp{Kind: IdemPut, Key: []byte("a"), Value: []byte("x")}, Request{}); !errors.Is(err, ErrStaleSeq) {
		t.Fatalf("err = %v, want ErrStaleSeq", err)
	}
}

func TestIdemRequestValidation(t *testing.T) {
	h := newIdemHarness(t, 64, 64<<10, 8, Config{})
	bad := []Request{
		{Idem: &IdemOp{Kind: IdemPut, Key: []byte("k")}},                                              // no client/seq
		{Idem: &IdemOp{Kind: IdemPut, Key: []byte("k")}, ClientID: 1},                                 // no seq
		{Idem: &IdemOp{Kind: IdemPut, Key: []byte("k")}, ClientID: 1, RequestSeq: 1},                  // not Write
		{Idem: &IdemOp{Kind: IdemPut}, ClientID: 1, RequestSeq: 1, Write: true, Op: put("a", "b").Op}, // both
	}
	for i, r := range bad {
		if _, err := h.srv.SubmitAsync(r); err == nil {
			t.Fatalf("bad request %d accepted", i)
		}
	}
	// A server without a journal rejects idempotent requests up front.
	h2 := newHarness(t, 64, ssd.Config{}, Config{}, nil)
	if _, err := h2.srv.SubmitAsync(Request{Idem: &IdemOp{Kind: IdemPut, Key: []byte("k")}, ClientID: 1, RequestSeq: 1, Write: true}); err == nil {
		t.Fatal("journal-less idempotent request accepted")
	}
}

func storeGet(h *harness, key string) ([]byte, bool, error) {
	res, err := h.srv.Submit(context.Background(), Request{Class: ClassBackground, Priority: PriorityHigh, Op: func(e Exec) (any, error) {
		v, ok, err := e.Store.Get([]byte(key))
		if err != nil || !ok {
			return nil, err
		}
		return append([]byte(nil), v...), nil
	}})
	if err != nil {
		return nil, false, err
	}
	if res.Value == nil {
		return nil, false, nil
	}
	return res.Value.([]byte), true, nil
}
