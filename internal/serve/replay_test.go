package serve

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/nvdram"
	"viyojit/internal/obs"
	"viyojit/internal/pheap"
	"viyojit/internal/recovery"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// replayWorld is a store + journal stack with no server: the shape the
// recovery path sees.
type replayWorld struct {
	clock  *sim.Clock
	events *sim.Queue
	mgr    *core.Manager
	heapM  *core.Mapping
	jM     *core.Mapping
	store  *kvstore.Store
	j      *intent.Journal
}

func newReplayWorld(t *testing.T, budget int) *replayWorld {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	heapM, err := mgr.Map("heap", 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := pheap.Format(heapM)
	if err != nil {
		t.Fatal(err)
	}
	store, err := kvstore.Create(heap, 64)
	if err != nil {
		t.Fatal(err)
	}
	jM, err := mgr.Map("intent", 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	j, err := intent.Create(jM, intent.Config{Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := &replayWorld{clock: clock, events: events, mgr: mgr, heapM: heapM, jM: jM, store: store, j: j}
	t.Cleanup(func() {
		if !mgr.Closed() {
			mgr.Close()
		}
	})
	return w
}

// seedInFlight journals n intents and leaves them in-flight, applying
// every second one to the store first — the two crash windows redo must
// close (crash before apply, crash after apply before result).
func (w *replayWorld) seedInFlight(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		client, seq := uint64(1+i%3), uint64(1+i/3)
		key := []byte(fmt.Sprintf("key-%02d", i))
		val := []byte(fmt.Sprintf("val-%02d", i))
		tomb := i%5 == 4
		if err := w.j.Begin(client, seq, intent.Checksum(key, val, 0), key, val, tomb); err != nil {
			t.Fatalf("Begin %d: %v", i, err)
		}
		if i%2 == 0 && !tomb {
			if err := w.store.Put(key, val); err != nil {
				t.Fatalf("Put %d: %v", i, err)
			}
		}
	}
}

// heapBytes snapshots the store's entire backing mapping.
func (w *replayWorld) heapBytes(t *testing.T) []byte {
	t.Helper()
	b := make([]byte, w.heapM.Size())
	if err := w.heapM.ReadAt(b, 0); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplayPendingRunTwice is the run-twice property: replaying the
// same journal a second time changes nothing — byte-identical store
// bytes and an identical dedup table. The first replay resolves every
// in-flight intent; the second finds nothing pending and must be a pure
// no-op.
func TestReplayPendingRunTwice(t *testing.T) {
	w := newReplayWorld(t, 64)
	w.seedInFlight(t, 12)

	n1, err := ReplayPending(w.store, w.j)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	if n1 != 12 {
		t.Fatalf("first replay redid %d, want 12", n1)
	}
	state1 := w.heapBytes(t)
	table1 := w.j.Snapshot()

	n2, err := ReplayPending(w.store, w.j)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if n2 != 0 {
		t.Fatalf("second replay redid %d, want 0", n2)
	}
	if !bytes.Equal(state1, w.heapBytes(t)) {
		t.Fatalf("second replay mutated the store bytes")
	}
	if !reflect.DeepEqual(table1, w.j.Snapshot()) {
		t.Fatalf("second replay mutated the dedup table")
	}
}

// TestReplayPendingCrashBetweenRuns interleaves a crash between the two
// replays: the journal is reopened from its battery-flushed bytes (the
// crash model flushes every dirty page) and replayed again against the
// same store. Reopening must observe every intent already Done, and the
// second replay — now driven by the rebuilt table — must leave the
// store bytes and dedup table exactly as the first did.
func TestReplayPendingCrashBetweenRuns(t *testing.T) {
	w := newReplayWorld(t, 64)
	w.seedInFlight(t, 9)

	if _, err := ReplayPending(w.store, w.j); err != nil {
		t.Fatalf("first replay: %v", err)
	}
	state1 := w.heapBytes(t)
	table1 := w.j.Snapshot()

	// Crash: the mapping bytes are what survives; reopen the journal
	// from them (rebuilt dedup table) and replay again.
	j2, err := intent.Open(w.jM, nil)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	n2, err := ReplayPending(w.store, j2)
	if err != nil {
		t.Fatalf("post-crash replay: %v", err)
	}
	if n2 != 0 {
		t.Fatalf("post-crash replay redid %d, want 0", n2)
	}
	if !bytes.Equal(state1, w.heapBytes(t)) {
		t.Fatalf("post-crash replay mutated the store bytes")
	}
	if !reflect.DeepEqual(table1, j2.Snapshot()) {
		t.Fatalf("rebuilt dedup table diverged from the live one after replay")
	}
}

// TestReplayPendingCrashMidReplay crashes between the two runs while
// intents are still unresolved: the first "attempt" resolves only what
// it reaches before the (simulated) crash, the journal reopens, and the
// remaining intents replay on the second attempt. The end state must be
// identical to a never-crashed single replay on a twin world.
func TestReplayPendingCrashMidReplay(t *testing.T) {
	const n = 10
	// Twin A: one uninterrupted replay.
	a := newReplayWorld(t, 64)
	a.seedInFlight(t, n)
	if _, err := ReplayPending(a.store, a.j); err != nil {
		t.Fatalf("twin replay: %v", err)
	}
	wantState := a.heapBytes(t)

	// Twin B: replay half by hand (deterministic Pending order), crash,
	// reopen, replay the rest.
	b := newReplayWorld(t, 64)
	b.seedInFlight(t, n)
	pend := b.j.Pending()
	for _, p := range pend[:n/2] {
		code, err := applyImage(b.store, p.Entry.RedoKey, p.Entry.RedoVal, p.Entry.Tombstone)
		if err != nil {
			t.Fatalf("manual redo: %v", err)
		}
		if err := b.j.Complete(p.Client, p.Seq, code, cloneBytes(p.Entry.RedoVal)); err != nil {
			t.Fatalf("manual complete: %v", err)
		}
	}
	j2, err := intent.Open(b.jM, nil)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	n2, err := ReplayPending(b.store, j2)
	if err != nil {
		t.Fatalf("resumed replay: %v", err)
	}
	if n2 != n-n/2 {
		t.Fatalf("resumed replay redid %d, want %d", n2, n-n/2)
	}
	if !bytes.Equal(wantState, b.heapBytes(t)) {
		t.Fatalf("crash-interrupted replay diverged from uninterrupted twin")
	}
}

// TestReplayPendingWithCursorAndBudget exercises the restartable,
// budget-aware form end to end: the cursor records every redo, the
// manager enforces a budget smaller than the redo working set (forcing
// stalls), and dirty never exceeds the budget.
func TestReplayPendingWithCursorAndBudget(t *testing.T) {
	const budget = 2
	w := newReplayWorld(t, budget)
	w.seedInFlight(t, 12)
	// Drain the seeding's dirty pages so the replay starts clean, as a
	// real recovery would (restore writes bypass the manager).
	w.mgr.FlushAll()

	curM, err := w.mgr.Map("cursor", 4096)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := recovery.CreateCursor(curM, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cur.BeginRecovery(budget); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	stats, err := ReplayPendingWith(w.store, w.j, ReplayOptions{Cursor: cur, Mgr: w.mgr, Obs: reg})
	if err != nil {
		t.Fatalf("ReplayPendingWith: %v", err)
	}
	if stats.Redone != 12 || stats.StartRecord != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if got := cur.Progress(); got.Phase != recovery.PhaseIntentRedo || got.Record != 12 {
		t.Fatalf("cursor after replay: %+v", got)
	}
	if w.mgr.DirtyCount() > w.mgr.EffectiveDirtyBudget() {
		t.Fatalf("dirty %d exceeds budget %d after replay", w.mgr.DirtyCount(), w.mgr.EffectiveDirtyBudget())
	}
	if stats.BudgetStalls == 0 {
		t.Fatalf("a %d-page budget under a 12-redo replay must stall; stats %+v", budget, stats)
	}
	if got := reg.Counter("recovery_budget_stalls").Value(); got != stats.BudgetStalls {
		t.Fatalf("recovery_budget_stalls = %d, want %d", got, stats.BudgetStalls)
	}
	if got := reg.Counter("recovery_redo_pages").Value(); got != stats.PagesDirtied {
		t.Fatalf("recovery_redo_pages = %d, want %d", got, stats.PagesDirtied)
	}

	// Without BeginRecovery the cursor is refused.
	if err := cur.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayPendingWith(w.store, w.j, ReplayOptions{Cursor: cur}); err == nil {
		t.Fatalf("replay accepted a cursor outside a recovery")
	}
}
