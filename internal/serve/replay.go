package serve

import (
	"errors"
	"fmt"

	"viyojit/internal/core"
	"viyojit/internal/intent"
	"viyojit/internal/kvstore"
	"viyojit/internal/obs"
	"viyojit/internal/recovery"
)

// ReplayOptions parameterises ReplayPendingWith. Every field is
// optional; the zero value degrades to the plain ReplayPending
// behaviour.
type ReplayOptions struct {
	// Cursor, when set, makes the replay restartable: each redo's
	// completion is durably recorded (recovery.PhaseIntentRedo with the
	// incarnation-cumulative record count) before the next redo starts,
	// so a power failure mid-replay leaves monotone, durable evidence of
	// exactly how far redo progressed. The resumed attempt's pending
	// list self-prunes — journal completions are battery-flushed with
	// everything else, so durably-completed redos have already left it —
	// and any residual record (a completion lost to ErrJournalFull) is
	// re-applied blindly, which is a no-op: re-applying record k twice
	// writes the same image twice. The cursor must already be inside a
	// recovery (BeginRecovery called).
	Cursor *recovery.Cursor
	// Mgr, when set, makes the replay budget-aware: the event queue is
	// pumped between redos so the manager's inline budget enforcement
	// (forced cleans on the fault path) completes its drains, keeping
	// dirty ≤ budget at every virtual-time instant of the replay — the
	// manager's budget should already hold the post-outage, possibly
	// shrunken figure before this is called. Stall and page accounting
	// come from the manager's stats deltas.
	Mgr *core.Manager
	// Obs receives the replay instruments (recovery_redo_pages,
	// recovery_budget_stalls); nil skips them.
	Obs *obs.Registry
	// Step, when set, is invoked twice per redo — once after the
	// apply+complete and once after the cursor advance — so a crash
	// harness can plant a fault point inside each window (completion
	// durable but cursor stale, and cursor advanced). Production
	// callers leave it nil.
	Step func()
}

// ReplayStats reports what a restartable replay did.
type ReplayStats struct {
	// Redone is the number of redo images applied by THIS run.
	Redone int
	// StartRecord is the cursor's cumulative record count when this run
	// began: redos durably completed by earlier attempts of the same
	// incarnation (0 without a cursor or on a fresh incarnation).
	StartRecord uint64
	// PagesDirtied is how many page admissions the redos caused
	// (manager stats delta; 0 without Mgr).
	PagesDirtied uint64
	// BudgetStalls is how many forced synchronous cleans the redos hit
	// against the recovery budget (manager stats delta; 0 without Mgr).
	BudgetStalls uint64
}

// ReplayPendingWith is the restartable, budget-aware form of
// ReplayPending. It resolves in-flight intents in the journal's
// deterministic (client, seq) order, and:
//
//   - with a cursor: advances the cursor durably after every redo, so a
//     crash mid-replay resumes with the completed count intact — the
//     cursor-monotonicity oracle's input — and each redo stays
//     individually idempotent (blind-image application; twice is a
//     no-op);
//   - with a manager: pumps simulated time after every redo so
//     budget-forced cleans drain incrementally — dirty ≤ the (possibly
//     post-outage-shrunken) budget holds during the replay, not just
//     after it.
//
// The same ordering contract as ReplayPending applies: call after
// intent.Open and BEFORE serving resumes.
func ReplayPendingWith(store *kvstore.Store, j *intent.Journal, opts ReplayOptions) (ReplayStats, error) {
	var stats ReplayStats
	if store == nil || j == nil {
		return stats, fmt.Errorf("serve: ReplayPendingWith needs a store and a journal")
	}
	var redoPages, budgetStalls *obs.Counter
	if opts.Obs != nil {
		redoPages = opts.Obs.Counter("recovery_redo_pages")
		budgetStalls = opts.Obs.Counter("recovery_budget_stalls")
	}
	var base core.Stats
	if opts.Mgr != nil {
		base = opts.Mgr.Stats()
	}

	record := uint64(0)
	if opts.Cursor != nil {
		p := opts.Cursor.Progress()
		if !p.InRecovery() {
			return stats, fmt.Errorf("serve: replay cursor is not inside a recovery (phase %v)", p.Phase)
		}
		record = p.Record
		stats.StartRecord = record
		// Entering the redo phase is itself durable progress: a crash
		// here resumes knowing the volatile phases completed once.
		if err := opts.Cursor.Advance(recovery.PhaseIntentRedo, record); err != nil {
			return stats, fmt.Errorf("serve: entering intent-redo phase: %w", err)
		}
	}

	for _, p := range j.Pending() {
		code, err := applyImage(store, p.Entry.RedoKey, p.Entry.RedoVal, p.Entry.Tombstone)
		if err != nil {
			return stats, fmt.Errorf("serve: redo of client %d seq %d: %w", p.Client, p.Seq, err)
		}
		if err := j.Complete(p.Client, p.Seq, code, cloneBytes(p.Entry.RedoVal)); err != nil && !errors.Is(err, intent.ErrJournalFull) {
			return stats, fmt.Errorf("serve: completing redo of client %d seq %d: %w", p.Client, p.Seq, err)
		}
		stats.Redone++
		record++
		if opts.Mgr != nil {
			// Let budget-forced cleans finish before the next redo
			// dirties more pages: the incremental drain that keeps
			// dirty ≤ budget throughout.
			opts.Mgr.Pump()
		}
		if opts.Step != nil {
			opts.Step()
		}
		if opts.Cursor != nil {
			if err := opts.Cursor.Advance(recovery.PhaseIntentRedo, record); err != nil {
				return stats, fmt.Errorf("serve: recording redo %d: %w", record, err)
			}
		}
		if opts.Step != nil {
			opts.Step()
		}
	}

	if opts.Mgr != nil {
		cur := opts.Mgr.Stats()
		stats.PagesDirtied = cur.PagesDirtied - base.PagesDirtied
		stats.BudgetStalls = cur.ForcedCleans - base.ForcedCleans
	}
	if redoPages != nil {
		redoPages.Add(stats.PagesDirtied)
	}
	if budgetStalls != nil {
		budgetStalls.Add(stats.BudgetStalls)
	}
	return stats, nil
}
