// Package replay drives a file-system volume trace (internal/trace)
// against an NV-DRAM system and reports what the run cost: faults,
// cleaning traffic, peak dirty footprint, and whether the provisioned
// budget ever blocked the workload. It is the bridge between §3's
// offline analysis and the live system — the experiment an operator runs
// to validate a cmd/provision recommendation before deployment.
//
// Three system kinds can replay the same trace: the page-granularity
// Viyojit manager, the full-battery baseline, and the §7 byte-granularity
// Mondrian tracker.
package replay

import (
	"fmt"

	"viyojit/internal/baseline"
	"viyojit/internal/core"
	"viyojit/internal/mondrian"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/trace"
)

// SystemKind selects the system under replay.
type SystemKind int

// The three replayable systems.
const (
	Viyojit SystemKind = iota
	Baseline
	Mondrian
)

func (k SystemKind) String() string {
	switch k {
	case Viyojit:
		return "viyojit"
	case Baseline:
		return "nv-dram"
	case Mondrian:
		return "mondrian"
	default:
		return fmt.Sprintf("SystemKind(%d)", int(k))
	}
}

// Options tunes a replay.
type Options struct {
	// System selects the manager kind.
	System SystemKind
	// BudgetPages is the dirty budget for Viyojit (pages) — and, times
	// the page size, the byte budget for Mondrian. Ignored by the
	// baseline. 0 selects 1/8 of the volume.
	BudgetPages int
	// MaxIdle compresses gaps between trace events to at most this
	// duration, so day-long traces replay quickly while background
	// epochs still run. 0 selects 2 ms.
	MaxIdle sim.Duration
	// SSD overrides the device model.
	SSD ssd.Config
}

// Report is the outcome of one replay.
type Report struct {
	System        string
	Volume        string
	Events        int
	VirtualTime   sim.Duration
	Faults        uint64
	ForcedCleans  uint64
	Proactive     uint64
	PeakDirty     int   // pages (or sectors for Mondrian)
	PeakDirtyByte int64 // peak dirty footprint in bytes
	SSDBytes      uint64
	// BudgetPages echoes the budget used (pages or sectors).
	BudgetPages int
}

// Run replays the volume and returns the report. The replay writes the
// traced byte counts at the traced offsets (clamped to one page per
// event, the tracking granularity) and probes reads, advancing virtual
// time along the (compressed) trace timeline.
func Run(v *trace.Volume, opts Options) (Report, error) {
	if v == nil || len(v.Events) == 0 {
		return Report{}, fmt.Errorf("replay: empty volume")
	}
	if opts.MaxIdle == 0 {
		opts.MaxIdle = 2 * sim.Millisecond
	}
	pageSize := v.Spec.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}
	totalPages := int(v.Spec.SizeBytes / int64(pageSize))
	if opts.BudgetPages == 0 {
		opts.BudgetPages = totalPages / 8
	}
	if opts.BudgetPages < 1 {
		opts.BudgetPages = 1
	}

	clock := sim.NewClock()
	events := sim.NewQueue()
	rep := Report{
		System:      opts.System.String(),
		Volume:      v.Spec.Name,
		Events:      len(v.Events),
		BudgetPages: opts.BudgetPages,
	}

	// writer abstracts the three systems behind one replay loop.
	type writer interface {
		WriteAt(p []byte, off int64) error
		ReadAt(p []byte, off int64) error
	}
	var (
		w      writer
		pump   func()
		finish func()
	)
	switch opts.System {
	case Viyojit:
		region, err := nvdram.New(clock, nvdram.Config{Size: v.Spec.SizeBytes, PageSize: pageSize})
		if err != nil {
			return rep, err
		}
		dev := ssd.New(clock, events, opts.SSD)
		mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: opts.BudgetPages})
		if err != nil {
			return rep, err
		}
		mp, err := mgr.Map(v.Spec.Name, v.Spec.SizeBytes)
		if err != nil {
			return rep, err
		}
		w, pump = mp, mgr.Pump
		finish = func() {
			s := mgr.Stats()
			rep.Faults = s.Faults
			rep.ForcedCleans = s.ForcedCleans
			rep.Proactive = s.ProactiveCleans
			rep.PeakDirty = s.MaxDirtyObserved
			rep.PeakDirtyByte = int64(s.MaxDirtyObserved) * int64(pageSize)
			rep.SSDBytes = dev.Stats().BytesWritten
			mgr.Close()
		}
	case Baseline:
		region, err := nvdram.New(clock, nvdram.Config{Size: v.Spec.SizeBytes, PageSize: pageSize})
		if err != nil {
			return rep, err
		}
		dev := ssd.New(clock, events, opts.SSD)
		mgr, err := baseline.NewManager(clock, events, region, dev)
		if err != nil {
			return rep, err
		}
		mp, err := mgr.Map(v.Spec.Name, v.Spec.SizeBytes)
		if err != nil {
			return rep, err
		}
		w, pump = mp, mgr.Pump
		finish = func() {
			rep.PeakDirty = mgr.DirtyCount()
			rep.PeakDirtyByte = int64(mgr.DirtyCount()) * int64(pageSize)
			rep.SSDBytes = dev.Stats().BytesWritten
		}
	case Mondrian:
		tr, err := mondrian.New(clock, events, mondrian.Config{
			Size:        v.Spec.SizeBytes,
			BudgetBytes: int64(opts.BudgetPages) * int64(pageSize),
			SSD:         opts.SSD,
		})
		if err != nil {
			return rep, err
		}
		w, pump = tr, tr.Pump
		finish = func() {
			s := tr.Stats()
			rep.ForcedCleans = s.ForcedCleans
			rep.Proactive = s.ProactiveCleans
			rep.PeakDirty = s.MaxDirtyObserved
			rep.PeakDirtyByte = int64(s.MaxDirtyObserved) * int64(tr.SectorSize())
			rep.SSDBytes = tr.SSD().Stats().BytesWritten
			rep.BudgetPages = int(tr.BudgetBytes()) / tr.SectorSize()
			tr.Close()
		}
	default:
		return rep, fmt.Errorf("replay: unknown system kind %d", opts.System)
	}

	buf := make([]byte, pageSize)
	var prevAt sim.Time
	for i, e := range v.Events {
		if gap := e.At.Sub(prevAt); gap > 0 {
			if gap > opts.MaxIdle {
				gap = opts.MaxIdle
			}
			clock.Advance(gap)
			pump()
		}
		prevAt = e.At
		off := e.Page * int64(pageSize)
		if e.Write {
			n := e.Bytes
			if n > pageSize {
				n = pageSize
			}
			buf[0] = byte(i + 1)
			if err := w.WriteAt(buf[:n], off); err != nil {
				return rep, fmt.Errorf("replay: event %d: %w", i, err)
			}
		} else {
			if err := w.ReadAt(buf[:64], off); err != nil {
				return rep, fmt.Errorf("replay: event %d: %w", i, err)
			}
		}
		pump()
	}
	rep.VirtualTime = sim.Duration(clock.Now())
	finish()
	return rep, nil
}

// Compare replays the volume against all three systems with the same
// budget and returns the reports in Viyojit, Baseline, Mondrian order.
func Compare(v *trace.Volume, budgetPages int, devCfg ssd.Config) ([]Report, error) {
	var out []Report
	for _, kind := range []SystemKind{Viyojit, Baseline, Mondrian} {
		r, err := Run(v, Options{System: kind, BudgetPages: budgetPages, SSD: devCfg})
		if err != nil {
			return nil, fmt.Errorf("replay: %v: %w", kind, err)
		}
		out = append(out, r)
	}
	return out, nil
}
