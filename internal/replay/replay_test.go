package replay

import (
	"testing"

	"viyojit/internal/ssd"
	"viyojit/internal/trace"
)

func testVolume(t testing.TB) *trace.Volume {
	t.Helper()
	v, err := trace.Generate(trace.VolumeSpec{
		Name:                   "replay-vol",
		SizeBytes:              16 << 20,
		WorstHourWriteFraction: 0.15,
		Skew:                   trace.SkewHot,
		HotFraction:            0.1,
		TouchedFraction:        0.5,
	}, trace.Hour, 11)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("nil volume accepted")
	}
	v := testVolume(t)
	if _, err := Run(v, Options{System: SystemKind(9)}); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestViyojitReplayBoundsDirty(t *testing.T) {
	v := testVolume(t)
	budget := int(v.TotalPages()) / 8
	r, err := Run(v, Options{System: Viyojit, BudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	if r.PeakDirty > budget {
		t.Fatalf("peak dirty %d exceeds budget %d", r.PeakDirty, budget)
	}
	if r.Events != len(v.Events) || r.Faults == 0 {
		t.Fatalf("degenerate report: %+v", r)
	}
	if r.VirtualTime <= 0 {
		t.Fatal("virtual time did not advance")
	}
}

func TestBaselineReplayUnbounded(t *testing.T) {
	v := testVolume(t)
	r, err := Run(v, Options{System: Baseline})
	if err != nil {
		t.Fatal(err)
	}
	if r.Faults != 0 {
		t.Fatalf("baseline took %d faults", r.Faults)
	}
	if r.SSDBytes != 0 {
		t.Fatalf("baseline wrote %d bytes to the SSD during the run", r.SSDBytes)
	}
	// The baseline's dirty footprint is every page ever written.
	if r.PeakDirty == 0 {
		t.Fatal("baseline tracked no written pages")
	}
}

func TestMondrianReplayFinerFootprint(t *testing.T) {
	v := testVolume(t)
	budget := int(v.TotalPages()) / 8
	page, err := Run(v, Options{System: Viyojit, BudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	sector, err := Run(v, Options{System: Mondrian, BudgetPages: budget})
	if err != nil {
		t.Fatal(err)
	}
	// Byte granularity never needs a larger dirty footprint for the same
	// workload. (Events here write multi-KB extents, so the gap is small;
	// the granularity experiment covers the small-write case.)
	if sector.PeakDirtyByte > page.PeakDirtyByte {
		t.Fatalf("mondrian footprint %d exceeds page footprint %d", sector.PeakDirtyByte, page.PeakDirtyByte)
	}
}

func TestCompareRunsAllThree(t *testing.T) {
	v := testVolume(t)
	reports, err := Compare(v, int(v.TotalPages())/8, ssd.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports", len(reports))
	}
	names := map[string]bool{}
	for _, r := range reports {
		names[r.System] = true
		if r.Events != len(v.Events) {
			t.Fatalf("%s replayed %d events, want %d", r.System, r.Events, len(v.Events))
		}
	}
	for _, want := range []string{"viyojit", "nv-dram", "mondrian"} {
		if !names[want] {
			t.Fatalf("missing report for %s", want)
		}
	}
}

func TestReplayDeterministic(t *testing.T) {
	v := testVolume(t)
	a, err := Run(v, Options{System: Viyojit})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(v, Options{System: Viyojit})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same replay diverged:\n%+v\n%+v", a, b)
	}
}

func TestSystemKindString(t *testing.T) {
	if Viyojit.String() != "viyojit" || Baseline.String() != "nv-dram" || Mondrian.String() != "mondrian" {
		t.Fatal("kind names wrong")
	}
	if SystemKind(42).String() == "" {
		t.Fatal("unknown kind has empty name")
	}
}
