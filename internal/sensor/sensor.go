// Package sensor is the fault-tolerant energy-telemetry layer between
// the physical battery model and every budget consumer.
//
// Viyojit's safety argument — dirty pages ≤ what the battery can flush
// — is only as good as the energy number it is derived from. Real fuel
// gauges are not ground truth: coulomb counters drift, voltage-curve
// SoC estimators quantise and go stale, I2C links drop out, and a
// gauge that lies 30% high silently converts "flush within energy"
// into data loss. This package interposes redundant estimators and a
// conservative fusion policy so the budget chain consumes a defensible
// estimate instead of a single raw register read:
//
//   - two redundant estimators (coulomb-counting integrator and
//     voltage-curve SoC), each reading the simulated battery plus an
//     optional injected error channel (see faultinject.SensorInjector);
//   - per-estimator plausibility gating: physical bounds against the
//     nameplate capacity and a max rate-of-change gate (energy cannot
//     rise faster than MaxChargeWatts);
//   - a staleness watchdog on the sim clock that declares an estimator
//     dropped out after StaleAfter without a successful read;
//   - cross-estimator disagreement handling that falls back to the
//     conservative lower bound and re-trusts a suspect only after
//     TrustTicks consecutive agreeing samples (hysteresis);
//   - a SoloFraction safety margin when redundancy is lost, and a
//     worst-case discharge decay when the sensor is flying blind.
//
// The fused estimate may under-report true joules (costing budget
// pages, never data) but never over-reports beyond the configured
// bound: with an honest estimator usable, fused ≤ true; with only a
// lying gauge left, fused ≤ true·(1+lie)·SoloFraction.
package sensor

import (
	"math"

	"viyojit/internal/sim"
)

// Reading is one raw sample from an estimator. OK=false models a
// dropout (bus timeout, gauge reset): no value was produced at all.
type Reading struct {
	// Value is the estimated usable energy in joules.
	Value float64
	// OK reports whether the gauge answered at all.
	OK bool
}

// Corruptor injects sensor-level faults between the physical model and
// the estimator output. truth is the exact value the healthy gauge
// would have produced; the returned Reading is what the (possibly
// faulty) gauge actually reports. Implementations must be
// deterministic in (at, truth) given their own seeded state.
// faultinject.SensorInjector is the production implementation.
type Corruptor interface {
	Corrupt(at sim.Time, truth float64) Reading
}

// Estimator is one redundant gauge: a named channel that derives a
// joule estimate from the physical model and passes it through an
// optional fault corruptor.
type Estimator struct {
	name     string
	truth    func() float64
	quantum  float64
	corr     Corruptor
	reads    uint64
	dropouts uint64
}

// NewCoulombCounter models a coulomb-counting integrator: in the sim
// it tracks the battery's usable energy exactly (the integration error
// a real counter accrues is injected via the Corruptor, not modelled
// analytically). truth must return the current true usable joules.
func NewCoulombCounter(name string, truth func() float64) *Estimator {
	return &Estimator{name: name, truth: truth}
}

// NewVoltageSoC models a voltage-curve state-of-charge estimator:
// the battery voltage is read against a discharge curve whose table
// resolution quantises the answer. quantum is the joule granularity;
// readings are rounded DOWN to the nearest quantum so the
// quantisation error is conservative. quantum 0 reads exactly.
func NewVoltageSoC(name string, truth func() float64, quantum float64) *Estimator {
	if !(quantum >= 0) || math.IsInf(quantum, 0) { // also rejects NaN
		quantum = 0
	}
	return &Estimator{name: name, truth: truth, quantum: quantum}
}

// Name returns the estimator's channel name (used in detections and
// obs metric labels).
func (e *Estimator) Name() string { return e.name }

// SetCorruptor installs the fault-injection channel. nil restores a
// healthy gauge.
func (e *Estimator) SetCorruptor(c Corruptor) { e.corr = c }

// Read samples the gauge at virtual time at.
func (e *Estimator) Read(at sim.Time) Reading {
	v := e.truth()
	if e.quantum > 0 && !math.IsNaN(v) && !math.IsInf(v, 0) {
		v = math.Floor(v/e.quantum) * e.quantum
	}
	r := Reading{Value: v, OK: true}
	if e.corr != nil {
		r = e.corr.Corrupt(at, v)
	}
	e.reads++
	if !r.OK {
		e.dropouts++
	}
	return r
}

// Reads returns how many samples were taken and how many of those were
// dropouts (no reading produced).
func (e *Estimator) Reads() (total, dropouts uint64) { return e.reads, e.dropouts }
