package sensor

import (
	"errors"
	"math"
	"testing"

	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

const tick = 100 * sim.Microsecond

// corruptFn adapts a closure to Corruptor for hand-built fault shapes.
type corruptFn func(at sim.Time, truth float64) Reading

func (f corruptFn) Corrupt(at sim.Time, truth float64) Reading { return f(at, truth) }

// testRig is a fused sensor over a mutable truth value with two
// estimators, sampled on a hand-advanced clock.
type testRig struct {
	truth float64
	cap   float64
	f     *Fused
	now   sim.Time
}

func newTestRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	r := &testRig{truth: 100, cap: 400}
	var err error
	r.f, err = New(cfg, func() float64 { return r.cap },
		NewCoulombCounter("coulomb", func() float64 { return r.truth }),
		NewVoltageSoC("voltage", func() float64 { return r.truth }, 0))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *testRig) sample() float64 {
	r.now = r.now.Add(tick)
	return r.f.Sample(r.now)
}

func TestHealthyFusionIsExactlyTruth(t *testing.T) {
	r := newTestRig(t, Config{})
	for i := 0; i < 50; i++ {
		r.truth *= 0.98 // discharging
		if got := r.sample(); got != r.truth {
			t.Fatalf("sample %d: fused %v != truth %v with healthy gauges", i, got, r.truth)
		}
	}
	if st := r.f.Stats(); st.Detections != 0 || st.SoloSamples != 0 || st.BlindSamples != 0 {
		t.Fatalf("healthy run produced distrust: %+v", st)
	}
}

func TestVoltageQuantumRoundsDown(t *testing.T) {
	truth := 103.7
	e := NewVoltageSoC("v", func() float64 { return truth }, 5)
	if got := e.Read(0).Value; got != 100 {
		t.Fatalf("quantised reading %v, want 100", got)
	}
	// Quantisation under-reports — the conservative direction — so the
	// min-fusion with an exact coulomb counter picks it.
	f, err := New(Config{}, nil,
		NewCoulombCounter("c", func() float64 { return truth }), e)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Sample(sim.Time(tick)); got != 100 {
		t.Fatalf("fused %v, want quantised lower bound 100", got)
	}
}

func TestBoundsGateRejectsGarbage(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -3, 1e9} {
		r := newTestRig(t, Config{})
		r.sample() // healthy baseline
		val := bad
		r.f.Estimator(1).SetCorruptor(corruptFn(func(sim.Time, float64) Reading {
			return Reading{Value: val, OK: true}
		}))
		got := r.sample()
		// The rejected gauge's held value decays conservatively, so the
		// fused estimate may sit a hair under truth — never over.
		if got > r.truth || got < r.truth-0.1 {
			t.Fatalf("garbage %v leaked: fused %v, want ≈ truth %v from below", bad, got, r.truth)
		}
		if r.f.Stats().BoundsRejects == 0 {
			t.Fatalf("garbage %v not bounds-rejected", bad)
		}
		det := r.f.Detections()
		if len(det) == 0 || det[len(det)-1].Reason != DetectBounds || det[len(det)-1].Estimator != "voltage" {
			t.Fatalf("garbage %v: detections %v, want bounds on voltage", bad, det)
		}
	}
}

func TestRateGateCatchesLyingHighOnset(t *testing.T) {
	r := newTestRig(t, Config{})
	r.sample() // baseline accepted
	r.f.Estimator(1).SetCorruptor(corruptFn(func(_ sim.Time, truth float64) Reading {
		return Reading{Value: truth * 1.5, OK: true} // lying 50% high
	}))
	for i := 0; i < 10; i++ {
		// The liar's held value decays conservatively while rate-gated,
		// so fused tracks truth from a hair below — never above.
		if got := r.sample(); got > r.truth || got < r.truth-0.1 {
			t.Fatalf("sample %d under a lying gauge: fused %v, want ≈ truth %v from below", i, got, r.truth)
		}
	}
	if r.f.Stats().RateRejects == 0 {
		t.Fatal("lying-high onset not rate-rejected")
	}
	// MTTD: the first detection lands on the first sample after onset.
	if det := r.f.Detections()[0]; det.At != sim.Time(2*tick) || det.Reason != DetectRate {
		t.Fatalf("first detection %+v, want rate at t=%v", det, sim.Time(2*tick))
	}
}

func TestDisagreeSuspectsHigherWithoutBaseline(t *testing.T) {
	r := newTestRig(t, Config{})
	// Lying from the very first sample: no baseline, so the rate gate
	// has nothing to compare against — the disagreement gate must catch
	// it and the min-fusion must keep the honest value.
	r.f.Estimator(1).SetCorruptor(corruptFn(func(_ sim.Time, truth float64) Reading {
		return Reading{Value: truth * 1.4, OK: true}
	}))
	if got := r.sample(); got != r.truth {
		t.Fatalf("fused %v, want honest truth %v", got, r.truth)
	}
	if r.f.Stats().Disagreements == 0 {
		t.Fatal("40% divergence not flagged")
	}
	if !r.f.Suspect(1) {
		t.Fatal("the higher estimator was not suspected")
	}
	if r.f.Suspect(0) {
		t.Fatal("the honest lower estimator was suspected")
	}
}

func TestSuspectRetrustHysteresis(t *testing.T) {
	r := newTestRig(t, Config{TrustTicks: 3})
	var lying bool
	r.f.Estimator(1).SetCorruptor(corruptFn(func(_ sim.Time, truth float64) Reading {
		if lying {
			return Reading{Value: truth * 1.4, OK: true}
		}
		return Reading{Value: truth, OK: true}
	}))
	lying = true
	r.sample()
	if !r.f.Suspect(1) {
		t.Fatal("liar not suspected")
	}
	lying = false
	// One or two agreeing samples are not enough.
	r.sample()
	r.sample()
	if !r.f.Suspect(1) {
		t.Fatal("re-trusted after 2 agreeing samples, want 3 (hysteresis)")
	}
	r.sample()
	if r.f.Suspect(1) {
		t.Fatal("not re-trusted after TrustTicks agreeing samples")
	}
	if r.f.Stats().Retrusts == 0 {
		t.Fatal("retrust not counted")
	}
}

func TestStuckGaugeDetectedUnderDecliningTruth(t *testing.T) {
	r := newTestRig(t, Config{DisagreeFraction: 0.10})
	r.sample()
	// Freeze the voltage gauge at the current truth, then discharge.
	frozen := r.truth
	r.f.Estimator(1).SetCorruptor(corruptFn(func(sim.Time, float64) Reading {
		return Reading{Value: frozen, OK: true}
	}))
	onset := r.now
	samples := 0
	for r.truth > frozen*0.80 {
		r.truth *= 0.97 // ~3% per sample
		got := r.sample()
		samples++
		if got > r.truth+1e-9 {
			t.Fatalf("fused %v over-reports declining truth %v under a stuck gauge", got, r.truth)
		}
	}
	var det *Detection
	for _, d := range r.f.Detections() {
		if d.Reason == DetectDisagree && d.Estimator == "voltage" {
			det = &d
			break
		}
	}
	if det == nil {
		t.Fatalf("stuck gauge never flagged after %d samples of divergence", samples)
	}
	// MTTD bound: divergence crosses 10% after ~4 samples of 3% decay;
	// allow one extra sampling period.
	if maxAt := onset.Add(5 * tick); det.At > maxAt {
		t.Fatalf("stuck MTTD %v past bound %v", det.At.Sub(onset), sim.Duration(5*tick))
	}
}

func TestDropoutGraceStaleAndRecovery(t *testing.T) {
	r := newTestRig(t, Config{StaleAfter: 3 * tick})
	r.sample()
	var dark bool
	r.f.Estimator(1).SetCorruptor(corruptFn(func(_ sim.Time, truth float64) Reading {
		if dark {
			return Reading{}
		}
		return Reading{Value: truth, OK: true}
	}))
	dark = true
	// Within the grace window the held value keeps redundancy: no solo.
	r.sample()
	if st := r.f.Stats(); st.SoloSamples != 0 || st.StaleDropouts != 0 {
		t.Fatalf("grace window violated: %+v", st)
	}
	// Past StaleAfter the watchdog fires and fusion degrades to solo
	// (honest gauge × SoloFraction).
	for i := 0; i < 4; i++ {
		r.sample()
	}
	st := r.f.Stats()
	if st.StaleDropouts == 0 {
		t.Fatal("watchdog never declared the dark gauge stale")
	}
	if st.SoloSamples == 0 {
		t.Fatal("fusion never degraded to solo")
	}
	if got, want := r.f.EffectiveJoules(), r.truth*0.65; math.Abs(got-want) > 1e-9 {
		t.Fatalf("solo fused %v, want %v (SoloFraction margin)", got, want)
	}
	// Gauge returns: full redundancy and the exact value come back.
	dark = false
	if got := r.sample(); got != r.truth {
		t.Fatalf("fused %v after dropout cleared, want truth %v", got, r.truth)
	}
}

func TestBlindDecayIsMonotoneAndRecovers(t *testing.T) {
	r := newTestRig(t, Config{StaleAfter: tick, MaxDischargeWatts: 100})
	r.sample()
	var dark bool
	for i := 0; i < 2; i++ {
		r.f.Estimator(i).SetCorruptor(corruptFn(func(_ sim.Time, truth float64) Reading {
			if dark {
				return Reading{}
			}
			return Reading{Value: truth, OK: true}
		}))
	}
	dark = true
	prev := r.f.EffectiveJoules()
	sawBlind := false
	for i := 0; i < 10; i++ {
		got := r.sample()
		if got > prev {
			t.Fatalf("blind estimate rose %v -> %v", prev, got)
		}
		prev = got
		if r.f.Stats().BlindSamples > 0 {
			sawBlind = true
		}
	}
	if !sawBlind {
		t.Fatal("never went blind with both gauges dark")
	}
	if prev >= r.truth {
		t.Fatal("blind decay did not bite")
	}
	dark = false
	if got := r.sample(); got != r.truth {
		t.Fatalf("fused %v after gauges returned, want truth %v", got, r.truth)
	}
}

func TestSoloLiarBoundedBySoloFraction(t *testing.T) {
	truth := 100.0
	liar := NewCoulombCounter("liar", func() float64 { return truth })
	// From the first sample, so the lie IS the baseline: the worst case.
	liar.SetCorruptor(corruptFn(func(_ sim.Time, tr float64) Reading {
		return Reading{Value: tr * 1.5, OK: true}
	}))
	f, err := New(Config{}, nil, liar)
	if err != nil {
		t.Fatal(err)
	}
	got := f.Sample(sim.Time(tick))
	bound := truth * 1.5 * 0.65 // (1+lie) × SoloFraction = 0.975 × truth
	if math.Abs(got-bound) > 1e-9 {
		t.Fatalf("solo liar fused %v, want %v", got, bound)
	}
	if got > truth {
		t.Fatalf("solo 50%%-liar over-reports truth: %v > %v", got, truth)
	}
}

func TestCapacityRestoreRetrustedAfterPersistentAgreement(t *testing.T) {
	r := newTestRig(t, Config{TrustTicks: 3})
	r.sample()
	r.truth = 150 // genuine capacity restore (derating lifted)
	var acceptedAt sim.Time
	for i := 0; i < 10; i++ {
		got := r.sample()
		if got > r.truth+1e-9 {
			t.Fatalf("fused %v above truth %v", got, r.truth)
		}
		if got == r.truth && acceptedAt == 0 {
			acceptedAt = r.now
		}
	}
	if acceptedAt == 0 {
		t.Fatal("genuine capacity restore never re-trusted")
	}
	if r.f.Stats().Retrusts == 0 {
		t.Fatal("rise retrust not counted")
	}
	// Before acceptance the rise must have been held down for at least
	// TrustTicks samples of rate-gating.
	if r.f.Stats().RateRejects < 2*3 { // two estimators × TrustTicks
		t.Fatalf("RateRejects %d, want ≥ 6 before the rise was believed", r.f.Stats().RateRejects)
	}
}

func TestConfigValidation(t *testing.T) {
	truthFn := func() float64 { return 1 }
	est := NewCoulombCounter("c", truthFn)
	cases := []Config{
		{MaxChargeWatts: math.NaN()},
		{MaxChargeWatts: -1},
		{MaxDischargeWatts: math.Inf(1)},
		{DisagreeFraction: math.NaN()},
		{DisagreeFraction: 1.5},
		{SoloFraction: math.NaN()},
		{SoloFraction: 2},
		{StaleAfter: -sim.Millisecond},
		{TrustTicks: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg, nil, est); !errors.Is(err, ErrConfig) {
			t.Fatalf("case %d (%+v): err %v, want ErrConfig", i, cfg, err)
		}
	}
	if _, err := New(Config{}, nil); !errors.Is(err, ErrConfig) {
		t.Fatal("zero estimators accepted")
	}
}

func TestDetectionRingBounded(t *testing.T) {
	r := newTestRig(t, Config{MaxDetections: 4, StaleAfter: tick})
	r.f.Estimator(1).SetCorruptor(corruptFn(func(sim.Time, float64) Reading { return Reading{} }))
	for i := 0; i < 50; i++ {
		r.sample()
	}
	if got := len(r.f.Detections()); got > 4 {
		t.Fatalf("detection ring grew to %d past cap 4", got)
	}
	if st := r.f.Stats(); st.Detections <= 4 {
		t.Fatalf("Detections counter %d should keep counting past the ring cap", st.Detections)
	}
}

func TestObsInstrumentsPublished(t *testing.T) {
	reg := obs.NewRegistry()
	truth := 42.0
	f, err := New(Config{Obs: reg}, nil,
		NewCoulombCounter("coulomb", func() float64 { return truth }),
		NewVoltageSoC("voltage", func() float64 { return truth }, 0))
	if err != nil {
		t.Fatal(err)
	}
	f.Sample(sim.Time(tick))
	if got := reg.Gauge("sensor_fused_millijoules").Value(); got != 42000 {
		t.Fatalf("sensor_fused_millijoules = %d, want 42000", got)
	}
	if got := reg.Gauge("sensor_usable_estimators").Value(); got != 2 {
		t.Fatalf("sensor_usable_estimators = %d, want 2", got)
	}
	if got := reg.Counter("sensor_samples_total").Value(); got != 1 {
		t.Fatalf("sensor_samples_total = %d, want 1", got)
	}
}
