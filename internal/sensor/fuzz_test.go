package sensor_test

// The conservative-fusion property, driven by arbitrary seeded fault
// schedules from the production injector (external test package: the
// injector lives in faultinject, which imports sensor).
//
// Invariant under ANY fault schedule on the redundant estimator while
// the primary one stays honest-or-dropped-out: the fused estimate never
// exceeds true joules (plus float slack) — under-reporting is allowed
// (it costs budget pages), over-reporting never happens. And once the
// faults clear, the estimate recovers to exact truth within a couple of
// samples (the hysteresis delays re-TRUST, not re-USE: a suspect's
// value still participates in the min-fusion, so accuracy returns
// immediately while trust returns on the TrustTicks schedule).

import (
	"testing"

	"viyojit/internal/faultinject"
	"viyojit/internal/sensor"
	"viyojit/internal/sim"
)

const fuzzTick = 100 * sim.Microsecond

// runFusionProperty drives a two-estimator fused sensor for steps
// samples: estimator 0 suffers only dropouts (redundancy loss),
// estimator 1 the full fault menu with per-sample probabilities from
// probs (stuck, drift, spike, dropout, lie). Truth declines 20 W — as
// a discharging pack does — and MaxDischargeWatts is set above that,
// so the conservative bound must hold at every sample including blind
// ones.
func runFusionProperty(t *testing.T, seed uint64, probs [5]float64, steps int) {
	t.Helper()
	truth := 100.0
	cap := 400.0
	est0 := sensor.NewCoulombCounter("coulomb", func() float64 { return truth })
	est1 := sensor.NewVoltageSoC("voltage", func() float64 { return truth }, 0)
	drop := faultinject.NewSensorInjector(faultinject.SensorConfig{
		Seed:        seed ^ 0xD0,
		DropoutProb: probs[3] / 2,
	})
	full := faultinject.NewSensorInjector(faultinject.SensorConfig{
		Seed:        seed,
		StuckProb:   probs[0],
		DriftProb:   probs[1],
		SpikeProb:   probs[2],
		DropoutProb: probs[3],
		LieProb:     probs[4],
	})
	est0.SetCorruptor(drop)
	est1.SetCorruptor(full)
	f, err := sensor.New(sensor.Config{
		StaleAfter:        3 * fuzzTick,
		MaxDischargeWatts: 50,
	}, func() float64 { return cap }, est0, est1)
	if err != nil {
		t.Fatal(err)
	}

	now := sim.Time(0)
	sample := func() float64 {
		now = now.Add(fuzzTick)
		// 20 W discharge per 100 µs sample.
		truth -= 20 * sim.Duration(fuzzTick).Seconds()
		if truth < 1 {
			truth = 1
		}
		return f.Sample(now)
	}

	for i := 0; i < steps; i++ {
		got := sample()
		if got > truth*(1+1e-9)+1e-9 {
			t.Fatalf("seed %#x step %d: fused %v over-reports truth %v\nepisodes: %v\nstats: %+v",
				seed, i, got, truth, full.Episodes(), f.Stats())
		}
	}

	// Faults clear: accuracy must return within two samples even though
	// trust (suspect flags) follows the slower TrustTicks schedule.
	drop.Disable()
	full.Disable()
	sample()
	if got := sample(); got != truth {
		t.Fatalf("seed %#x: fused %v after faults cleared, want exact truth %v (stats %+v)",
			seed, got, truth, f.Stats())
	}
}

func TestSensorFusionProperty(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		probs := [5]float64{0.02, 0.02, 0.03, 0.05, 0.04}
		if seed%3 == 0 {
			probs = [5]float64{0.10, 0.05, 0.05, 0.15, 0.10} // violent schedule
		}
		runFusionProperty(t, seed, probs, 400)
	}
}

func FuzzSensorFusion(f *testing.F) {
	f.Add(uint64(1), byte(5), byte(5), byte(8), byte(13), byte(10), uint16(200))
	f.Add(uint64(0xBAD5EED), byte(26), byte(13), byte(13), byte(38), byte(26), uint16(300))
	f.Add(uint64(42), byte(0), byte(0), byte(0), byte(255), byte(255), uint16(150))
	f.Fuzz(func(t *testing.T, seed uint64, pStuck, pDrift, pSpike, pDrop, pLie byte, steps uint16) {
		n := int(steps)%500 + 10
		probs := [5]float64{
			float64(pStuck) / 255 * 0.2,
			float64(pDrift) / 255 * 0.2,
			float64(pSpike) / 255 * 0.2,
			float64(pDrop) / 255 * 0.2,
			float64(pLie) / 255 * 0.2,
		}
		runFusionProperty(t, seed, probs, n)
	})
}
