package sensor

import (
	"errors"
	"fmt"
	"math"

	"viyojit/internal/obs"
	"viyojit/internal/sim"
)

// ErrConfig is the sentinel every fusion configuration-validation
// error wraps; test with errors.Is.
var ErrConfig = errors.New("sensor: invalid config")

// DetectReason classifies why the fusion layer distrusted a sample.
type DetectReason string

const (
	// DetectBounds: reading outside physical bounds (NaN, Inf,
	// negative, or above nameplate capacity).
	DetectBounds DetectReason = "bounds"
	// DetectRate: reading rose faster than MaxChargeWatts allows —
	// catches lying-high onsets, spikes, and upward drift.
	DetectRate DetectReason = "rate"
	// DetectStale: no successful reading for longer than StaleAfter —
	// catches dropouts and hung gauges.
	DetectStale DetectReason = "stale"
	// DetectDisagree: estimators diverged by more than
	// DisagreeFraction; the higher one is suspected.
	DetectDisagree DetectReason = "disagree"
)

// Detection is one distrust event, recorded for MTTD auditing.
type Detection struct {
	At        sim.Time
	Estimator string
	Reason    DetectReason
}

// Config tunes the fusion policy. The zero value selects safe
// defaults for every field.
type Config struct {
	// MaxChargeWatts bounds how fast a reading may RISE before the
	// rate gate rejects it. A battery-backed DRAM battery does not
	// charge mid-discharge, so the default 0 rejects any rise beyond
	// numeric noise; genuine capacity restores are re-trusted via the
	// hysteresis path (all live estimators persistently agreeing on
	// the higher level). Falls are always accepted instantly — the
	// safe direction.
	MaxChargeWatts float64
	// MaxDischargeWatts is the worst-case decline assumed while the
	// sensor is blind (zero usable estimators): the fused estimate
	// decays from its last value at this rate until a gauge returns.
	// 0 selects 50 W, several times a typical flush draw.
	MaxDischargeWatts float64
	// DisagreeFraction is the relative divergence between estimators
	// above which the higher one is suspected. 0 selects 0.10.
	DisagreeFraction float64
	// TrustTicks is how many consecutive agreeing samples a suspect
	// estimator must produce before it is re-trusted, and how many
	// consecutive rate-gated rises (with cross-estimator agreement)
	// are read as a genuine capacity restore. 0 selects 3.
	TrustTicks int
	// StaleAfter is how long an estimator may go without a successful
	// reading before the watchdog declares it dropped out. While
	// within the window its last accepted value is held. 0 selects
	// 5 ms (2.5 monitor intervals at the default 2 ms).
	StaleAfter sim.Duration
	// SoloFraction is the safety margin applied when redundancy is
	// lost: with exactly one usable estimator the fused estimate is
	// its value times this fraction, so even a gauge lying 50% high
	// yields fused ≤ 0.975 × true at the default. 0 selects 0.65.
	SoloFraction float64
	// MaxDetections bounds the detection ring kept for MTTD audits.
	// 0 selects 4096; past the cap detections are counted, not stored.
	MaxDetections int
	// Obs is the registry fusion metrics are published on; nil
	// publishes nothing.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.MaxDischargeWatts == 0 {
		c.MaxDischargeWatts = 50
	}
	if c.DisagreeFraction == 0 {
		c.DisagreeFraction = 0.10
	}
	if c.TrustTicks == 0 {
		c.TrustTicks = 3
	}
	if c.StaleAfter == 0 {
		c.StaleAfter = 5 * sim.Millisecond
	}
	if c.SoloFraction == 0 {
		c.SoloFraction = 0.65
	}
	if c.MaxDetections == 0 {
		c.MaxDetections = 4096
	}
	return c
}

func (c Config) validate() error {
	bad := func(field string, v float64) error {
		return fmt.Errorf("%w: %s %v must be finite and non-negative", ErrConfig, field, v)
	}
	if math.IsNaN(c.MaxChargeWatts) || math.IsInf(c.MaxChargeWatts, 0) || c.MaxChargeWatts < 0 {
		return bad("MaxChargeWatts", c.MaxChargeWatts)
	}
	if math.IsNaN(c.MaxDischargeWatts) || math.IsInf(c.MaxDischargeWatts, 0) || c.MaxDischargeWatts < 0 {
		return bad("MaxDischargeWatts", c.MaxDischargeWatts)
	}
	if math.IsNaN(c.DisagreeFraction) || math.IsInf(c.DisagreeFraction, 0) || c.DisagreeFraction <= 0 || c.DisagreeFraction >= 1 {
		return fmt.Errorf("%w: DisagreeFraction %v must be in (0,1)", ErrConfig, c.DisagreeFraction)
	}
	if math.IsNaN(c.SoloFraction) || c.SoloFraction <= 0 || c.SoloFraction > 1 {
		return fmt.Errorf("%w: SoloFraction %v must be in (0,1]", ErrConfig, c.SoloFraction)
	}
	if c.StaleAfter < 0 {
		return fmt.Errorf("%w: StaleAfter %v must be non-negative", ErrConfig, c.StaleAfter)
	}
	if c.TrustTicks < 0 {
		return fmt.Errorf("%w: TrustTicks %d must be non-negative", ErrConfig, c.TrustTicks)
	}
	return nil
}

// Stats are the fusion layer's counters.
type Stats struct {
	// Samples counts Sample calls.
	Samples uint64
	// BoundsRejects / RateRejects count per-estimator gate trips.
	BoundsRejects uint64
	RateRejects   uint64
	// StaleDropouts counts estimator-samples lost to the staleness
	// watchdog (past the StaleAfter grace window).
	StaleDropouts uint64
	// Disagreements counts samples where cross-estimator divergence
	// exceeded DisagreeFraction.
	Disagreements uint64
	// Retrusts counts suspects restored to trust after TrustTicks
	// agreeing samples, plus hysteresis-accepted capacity rises.
	Retrusts uint64
	// SoloSamples / BlindSamples count samples taken with exactly one
	// / zero usable estimators.
	SoloSamples  uint64
	BlindSamples uint64
	// Detections counts every distrust event (also ring-recorded up
	// to MaxDetections).
	Detections uint64
}

// estState is the fusion layer's per-estimator trust state.
type estState struct {
	lastOKAt    sim.Time
	hasOK       bool
	accepted    float64
	acceptedAt  sim.Time
	hasAccepted bool
	suspect     bool
	agreeStreak int
	riseStreak  int
	lastRaw     Reading
	rateHeld    bool // this sample's raw was rate-rejected and held
}

// Fused is the conservative fusion of redundant energy estimators.
// It is not goroutine-safe: like the rest of the sim it runs on the
// single event-dispatch goroutine.
type Fused struct {
	cfg  Config
	cap  func() float64 // physical upper bound (nameplate · DoD · derating ceiling); nil = unbounded
	ests []*Estimator
	st   []estState

	lastFused float64
	lastAt    sim.Time
	haveFused bool

	detections []Detection
	stats      Stats
	ins        fusedInstruments
}

// New builds a fused sensor over the given estimators. capBound, when
// non-nil, is the physical upper bound readings are gated against
// (typically the battery's nameplate-derived ceiling); estimators must
// be non-empty.
func New(cfg Config, capBound func() float64, ests ...*Estimator) (*Fused, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(ests) == 0 {
		return nil, fmt.Errorf("%w: need at least one estimator", ErrConfig)
	}
	f := &Fused{cfg: cfg, cap: capBound, ests: ests, st: make([]estState, len(ests))}
	f.ins.attach(cfg.Obs, ests)
	return f, nil
}

// Estimator returns the i'th estimator (for installing corruptors).
func (f *Fused) Estimator(i int) *Estimator { return f.ests[i] }

// EffectiveJoules returns the last fused estimate without taking a new
// sample. Callers that own the clock should prefer Sample; this is the
// drop-in for code paths that previously read battery.EffectiveJoules.
// Returns 0 before the first Sample.
func (f *Fused) EffectiveJoules() float64 { return f.lastFused }

// LastSampleAt returns the virtual time of the last Sample.
func (f *Fused) LastSampleAt() sim.Time { return f.lastAt }

// Stats returns a copy of the fusion counters.
func (f *Fused) Stats() Stats { return f.stats }

// Detections returns the recorded distrust events, oldest first.
func (f *Fused) Detections() []Detection {
	out := make([]Detection, len(f.detections))
	copy(out, f.detections)
	return out
}

func (f *Fused) detect(at sim.Time, est string, reason DetectReason) {
	f.stats.Detections++
	if len(f.detections) < f.cfg.MaxDetections {
		f.detections = append(f.detections, Detection{At: at, Estimator: est, Reason: reason})
	}
	f.ins.detect(reason)
}

// riseEps is the numeric slack the rate gate tolerates on top of the
// MaxChargeWatts allowance, so exact re-reads of the same value never
// trip it.
func riseEps(v float64) float64 { return 1e-9 + 1e-9*math.Abs(v) }

// Sample reads every estimator at virtual time at, applies the gates,
// fuses, and returns the new conservative estimate.
func (f *Fused) Sample(at sim.Time) float64 {
	f.stats.Samples++

	usable := make([]int, 0, len(f.ests))
	vals := make([]float64, 0, len(f.ests))
	live := 0 // estimators that produced an OK raw this sample

	for i, e := range f.ests {
		s := &f.st[i]
		s.rateHeld = false
		r := e.Read(at)
		s.lastRaw = r
		if r.OK {
			s.lastOKAt = at
			s.hasOK = true
			live++
		}

		// holdAccepted: within the staleness grace window the last
		// accepted value still speaks for this estimator.
		holdAccepted := func() bool {
			return s.hasAccepted && at.Sub(s.acceptedAt) <= f.cfg.StaleAfter
		}
		// held is the accepted value decayed at the worst-case
		// discharge rate for the time it has been stale: a held value
		// is old information, and the pack may have discharged the
		// whole while — extrapolating down is the only direction that
		// keeps "fused never over-reports" when EVERY usable input is
		// a held one.
		held := func() float64 {
			v := s.accepted - f.cfg.MaxDischargeWatts*at.Sub(s.acceptedAt).Seconds()
			if v < 0 {
				v = 0
			}
			return v
		}

		if !r.OK {
			if !s.hasOK || at.Sub(s.lastOKAt) > f.cfg.StaleAfter {
				f.stats.StaleDropouts++
				f.detect(at, e.Name(), DetectStale)
				s.riseStreak = 0
				continue
			}
			if holdAccepted() {
				usable = append(usable, i)
				vals = append(vals, held())
			}
			continue
		}

		v := r.Value
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 ||
			(f.cap != nil && v > f.cap()*(1+1e-9)+riseEps(f.cap())) {
			f.stats.BoundsRejects++
			f.detect(at, e.Name(), DetectBounds)
			s.suspect = true
			s.agreeStreak = 0
			s.riseStreak = 0
			if holdAccepted() {
				usable = append(usable, i)
				vals = append(vals, held())
			}
			continue
		}

		if s.hasAccepted {
			dt := at.Sub(s.acceptedAt).Seconds()
			allowed := s.accepted + f.cfg.MaxChargeWatts*dt + riseEps(s.accepted)
			if v > allowed {
				f.stats.RateRejects++
				f.detect(at, e.Name(), DetectRate)
				s.riseStreak++
				s.rateHeld = true
				// Hold the last accepted (lower, safe) value — but only
				// within the staleness window: a gauge pinned high
				// forever is dead, and past StaleAfter it stops speaking
				// so fusion degrades to the solo margin instead of
				// dragging an ever-decaying ghost value around.
				if holdAccepted() {
					usable = append(usable, i)
					vals = append(vals, held())
				}
				continue
			}
		}
		s.riseStreak = 0
		s.accepted = v
		s.acceptedAt = at
		s.hasAccepted = true
		usable = append(usable, i)
		vals = append(vals, v)
	}

	f.maybeAcceptRise(at, usable, vals, live)
	fused := f.fuse(at, usable, vals)

	if f.cap != nil {
		if c := f.cap(); fused > c {
			fused = c
		}
	}
	if fused < 0 || math.IsNaN(fused) {
		fused = 0
	}
	f.lastFused = fused
	f.lastAt = at
	f.haveFused = true
	f.ins.sample(f, usable)
	return fused
}

// maybeAcceptRise implements hysteretic re-trust of a genuine capacity
// restore: with MaxChargeWatts 0 the rate gate pins every estimator to
// its last accepted value forever, so a real upward step (derating
// lifted, capacity re-provisioned) needs an escape hatch. A rise is
// believed only when EVERY live estimator has been rate-gated on a
// rise for TrustTicks consecutive samples AND their raw readings
// mutually agree within DisagreeFraction (redundant confirmation). A
// single surviving estimator has no witness, so it must persist twice
// as long — and still lands under the SoloFraction margin.
func (f *Fused) maybeAcceptRise(at sim.Time, usable []int, vals []float64, live int) {
	if live == 0 {
		return
	}
	held := 0
	need := f.cfg.TrustTicks
	if live == 1 {
		need = 2 * f.cfg.TrustTicks
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range f.ests {
		s := &f.st[i]
		if !s.lastRaw.OK {
			continue
		}
		if !s.rateHeld || s.riseStreak < need {
			return
		}
		held++
		if s.lastRaw.Value < lo {
			lo = s.lastRaw.Value
		}
		if s.lastRaw.Value > hi {
			hi = s.lastRaw.Value
		}
	}
	if held == 0 {
		return
	}
	if held > 1 && hi > 0 && (hi-lo)/hi > f.cfg.DisagreeFraction {
		return
	}
	// Believe the rise: promote every live estimator's raw to accepted
	// and refresh the fused inputs.
	for i := range f.ests {
		s := &f.st[i]
		if !s.lastRaw.OK {
			continue
		}
		s.accepted = s.lastRaw.Value
		s.acceptedAt = at
		s.riseStreak = 0
		s.rateHeld = false
		for j, ui := range usable {
			if ui == i {
				vals[j] = s.accepted
			}
		}
	}
	f.stats.Retrusts++
}

func (f *Fused) fuse(at sim.Time, usable []int, vals []float64) float64 {
	switch len(usable) {
	case 0:
		// Blind: decay the last estimate at the worst-case discharge
		// rate. Conservative as long as true capacity is not collapsing
		// faster than MaxDischargeWatts while every gauge is dark.
		f.stats.BlindSamples++
		if !f.haveFused {
			return 0
		}
		dec := f.lastFused - f.cfg.MaxDischargeWatts*at.Sub(f.lastAt).Seconds()
		if dec < 0 {
			dec = 0
		}
		return dec
	case 1:
		f.stats.SoloSamples++
		return vals[0] * f.cfg.SoloFraction
	}

	minV, maxV, maxIdx := vals[0], vals[0], usable[0]
	for j := 1; j < len(vals); j++ {
		if vals[j] < minV {
			minV = vals[j]
		}
		if vals[j] > maxV {
			maxV = vals[j]
			maxIdx = usable[j]
		}
	}
	if maxV > 0 && (maxV-minV)/maxV > f.cfg.DisagreeFraction {
		f.stats.Disagreements++
		s := &f.st[maxIdx]
		if !s.suspect {
			s.suspect = true
		}
		s.agreeStreak = 0
		f.detect(at, f.ests[maxIdx].Name(), DetectDisagree)
	} else {
		for _, i := range usable {
			s := &f.st[i]
			if s.suspect {
				s.agreeStreak++
				if s.agreeStreak >= f.cfg.TrustTicks {
					s.suspect = false
					s.agreeStreak = 0
					f.stats.Retrusts++
				}
			}
		}
	}
	return minV
}

// Suspect reports whether estimator i is currently distrusted.
func (f *Fused) Suspect(i int) bool { return f.st[i].suspect }

// fusedInstruments mirrors fusion state onto an obs.Registry. All
// methods are nil-safe: a Fused built without Obs skips publication.
type fusedInstruments struct {
	fusedMilli *obs.Gauge
	usableEst  *obs.Gauge
	samples    *obs.Counter
	solo       *obs.Counter
	blind      *obs.Counter
	retrusts   *obs.Counter
	byReason   map[DetectReason]*obs.Counter
	estMilli   []*obs.Gauge
	estSuspect []*obs.Gauge
}

func (ins *fusedInstruments) attach(reg *obs.Registry, ests []*Estimator) {
	if reg == nil {
		return
	}
	ins.fusedMilli = reg.Gauge("sensor_fused_millijoules")
	ins.usableEst = reg.Gauge("sensor_usable_estimators")
	ins.samples = reg.Counter("sensor_samples_total")
	ins.solo = reg.Counter("sensor_solo_samples_total")
	ins.blind = reg.Counter("sensor_blind_samples_total")
	ins.retrusts = reg.Counter("sensor_retrusts_total")
	ins.byReason = map[DetectReason]*obs.Counter{
		DetectBounds:   reg.Counter("sensor_rejects_bounds_total"),
		DetectRate:     reg.Counter("sensor_rejects_rate_total"),
		DetectStale:    reg.Counter("sensor_rejects_stale_total"),
		DetectDisagree: reg.Counter("sensor_rejects_disagree_total"),
	}
	for _, e := range ests {
		ins.estMilli = append(ins.estMilli, reg.Gauge("sensor_est_"+e.Name()+"_millijoules"))
		ins.estSuspect = append(ins.estSuspect, reg.Gauge("sensor_est_"+e.Name()+"_suspect"))
	}
}

func (ins *fusedInstruments) detect(reason DetectReason) {
	if ins.byReason == nil {
		return
	}
	if c, ok := ins.byReason[reason]; ok {
		c.Inc()
	}
}

func (ins *fusedInstruments) sample(f *Fused, usable []int) {
	if ins.fusedMilli == nil {
		return
	}
	ins.fusedMilli.Set(int64(f.lastFused * 1000))
	ins.usableEst.Set(int64(len(usable)))
	ins.samples.Inc()
	switch len(usable) {
	case 0:
		ins.blind.Inc()
	case 1:
		ins.solo.Inc()
	}
	ins.retrusts.Add(f.stats.Retrusts - ins.retrusts.Value())
	for i := range f.ests {
		s := &f.st[i]
		if s.hasAccepted {
			ins.estMilli[i].Set(int64(s.accepted * 1000))
		}
		if s.suspect {
			ins.estSuspect[i].Set(1)
		} else {
			ins.estSuspect[i].Set(0)
		}
	}
}
