// Package baseline implements the comparison system in the paper's
// evaluation: state-of-the-art battery-backed DRAM with the battery
// provisioned for the *entire* NV-DRAM capacity. No pages are ever
// write-protected, no traps occur, nothing is proactively copied — on
// power failure the whole region (every page ever written) is flushed,
// which is exactly what the full battery pays for.
package baseline

import (
	"bytes"
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// Manager is the full-battery NV-DRAM manager. It tracks which pages have
// ever been written (so the power-fail flush knows what to write out) but
// imposes no bound and no write-path overhead beyond the raw MMU access
// cost.
type Manager struct {
	clock  *sim.Clock
	events *sim.Queue
	region *nvdram.Region
	dev    *ssd.SSD

	everDirty map[mmu.PageID]struct{}

	// mmap-like allocator, mirroring the Viyojit manager's API so the
	// same workload code drives both systems.
	nextPage int64
}

// NewManager creates a baseline manager over region and dev. Unlike the
// Viyojit manager it leaves every page writable.
func NewManager(clock *sim.Clock, events *sim.Queue, region *nvdram.Region, dev *ssd.SSD) (*Manager, error) {
	if dev.Config().PageSize != region.PageSize() {
		return nil, fmt.Errorf("baseline: SSD page size %d != region page size %d", dev.Config().PageSize, region.PageSize())
	}
	m := &Manager{
		clock:     clock,
		events:    events,
		region:    region,
		dev:       dev,
		everDirty: make(map[mmu.PageID]struct{}),
	}
	// Track written pages through the dirty bits: scan lazily at flush
	// time is not enough because epoch-less scans would miss cleared
	// bits, so record on each write via the fault-free path below.
	return m, nil
}

// Region returns the managed region.
func (m *Manager) Region() *nvdram.Region { return m.region }

// SSD returns the backing device.
func (m *Manager) SSD() *ssd.SSD { return m.dev }

// Mapping is a named range of the baseline region.
type Mapping struct {
	mgr  *Manager
	name string
	base int64
	size int64
}

// Map allocates a page-aligned mapping (bump allocation; the baseline
// never frees because its experiments don't unmap mid-run).
func (m *Manager) Map(name string, size int64) (*Mapping, error) {
	if size <= 0 {
		return nil, fmt.Errorf("baseline: Map %q with size %d", name, size)
	}
	ps := int64(m.region.PageSize())
	pages := (size + ps - 1) / ps
	if (m.nextPage+pages)*ps > m.region.Size() {
		return nil, fmt.Errorf("baseline: Map %q: region exhausted", name)
	}
	mp := &Mapping{mgr: m, name: name, base: m.nextPage * ps, size: size}
	m.nextPage += pages
	return mp, nil
}

// Name returns the mapping's name.
func (mp *Mapping) Name() string { return mp.name }

// Size returns the mapping's size in bytes.
func (mp *Mapping) Size() int64 { return mp.size }

// WriteAt stores p at off. There is no protection and no budget; the only
// bookkeeping is remembering that the touched pages will need flushing on
// power failure.
func (mp *Mapping) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > mp.size {
		return fmt.Errorf("baseline: mapping %q: range [%d,%d) outside size %d", mp.name, off, off+int64(len(p)), mp.size)
	}
	abs := mp.base + off
	first := mp.mgr.region.PageOf(abs)
	last := mp.mgr.region.PageOf(abs + int64(len(p)) - 1)
	for page := first; page <= last; page++ {
		mp.mgr.everDirty[page] = struct{}{}
	}
	return mp.mgr.region.WriteAt(p, abs)
}

// ReadAt fills p from off.
func (mp *Mapping) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > mp.size {
		return fmt.Errorf("baseline: mapping %q: range [%d,%d) outside size %d", mp.name, off, off+int64(len(p)), mp.size)
	}
	return mp.mgr.region.ReadAt(p, mp.base+off)
}

// Pump delivers due events (IO completions).
func (m *Manager) Pump() { m.events.RunUntil(m.clock, m.clock.Now()) }

// DirtyCount returns the number of pages that would need flushing on a
// power failure right now.
func (m *Manager) DirtyCount() int { return len(m.everDirty) }

// PowerFailReport mirrors core.PowerFailReport for the baseline flush.
type PowerFailReport struct {
	PagesFlushed          int
	FlushTime             sim.Duration
	EnergyUsedJoules      float64
	EnergyAvailableJoules float64
	Survived              bool
}

// PowerFail flushes every written page — the whole point of the full
// battery — and reports whether availableJoules covered it.
func (m *Manager) PowerFail(pm power.Model, availableJoules float64) PowerFailReport {
	start := m.clock.Now()
	batch := make(map[mmu.PageID][]byte, len(m.everDirty))
	for page := range m.everDirty {
		// RawPage: the DRAM-side copy DMAs concurrently with the device
		// stream (see core's power-fail path); WriteBatch copies.
		batch[page] = m.region.RawPage(page)
	}
	n := len(batch)
	m.dev.WriteBatch(batch)
	ft := m.clock.Now().Sub(start)
	used := pm.FlushWatts(m.region.Size()) * ft.Seconds()
	return PowerFailReport{
		PagesFlushed:          n,
		FlushTime:             ft,
		EnergyUsedJoules:      used,
		EnergyAvailableJoules: availableJoules,
		Survived:              used <= availableJoules,
	}
}

// FullBatteryJoules returns the energy a baseline deployment must
// provision: enough to flush the entire region (paper §2.2's coupling of
// battery and DRAM capacity).
func (m *Manager) FullBatteryJoules(pm power.Model) float64 {
	return pm.FlushEnergyJoules(m.region.Size(), m.dev.Config().WriteBandwidth, m.region.Size())
}

// VerifyDurability checks that the SSD holds the latest contents of every
// page, as core.Manager.VerifyDurability does.
func (m *Manager) VerifyDurability() error {
	for p := 0; p < m.region.NumPages(); p++ {
		page := mmu.PageID(p)
		live := m.region.RawPage(page)
		durable, ok := m.dev.Durable(page)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("baseline: page %d diverges from durable copy", page)
			}
			continue
		}
		for _, b := range live {
			if b != 0 {
				return fmt.Errorf("baseline: page %d has data but no durable copy", page)
			}
		}
	}
	return nil
}
