package baseline

import (
	"bytes"
	"testing"

	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

func newBaseline(t testing.TB, pages int) (*Manager, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, err := nvdram.New(clock, nvdram.Config{Size: int64(pages) * 4096})
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	m, err := NewManager(clock, events, region, dev)
	if err != nil {
		t.Fatal(err)
	}
	return m, clock
}

func TestNoFaultsEver(t *testing.T) {
	m, _ := newBaseline(t, 16)
	mp, err := m.Map("heap", 8*4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := mp.WriteAt([]byte{byte(i)}, int64(i%8)*4096); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Region().PageTable().Stats().Faults; got != 0 {
		t.Fatalf("baseline took %d faults, want 0", got)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, _ := newBaseline(t, 8)
	mp, _ := m.Map("m", 2*4096)
	data := []byte("no battery limits here")
	if err := mp.WriteAt(data, 123); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := mp.ReadAt(got, 123); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestBoundsChecked(t *testing.T) {
	m, _ := newBaseline(t, 8)
	mp, _ := m.Map("m", 4096)
	if err := mp.WriteAt([]byte{1}, 4096); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := mp.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative read succeeded")
	}
	if _, err := m.Map("too-big", 100*4096); err == nil {
		t.Fatal("oversized map succeeded")
	}
	if _, err := m.Map("zero", 0); err == nil {
		t.Fatal("zero map succeeded")
	}
}

func TestDirtyCountGrowsUnbounded(t *testing.T) {
	m, _ := newBaseline(t, 64)
	mp, _ := m.Map("m", 64*4096)
	for p := 0; p < 64; p++ {
		if err := mp.WriteAt([]byte{1}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
	}
	// The baseline has no budget: all 64 pages are pending flush.
	if m.DirtyCount() != 64 {
		t.Fatalf("dirty count = %d, want 64", m.DirtyCount())
	}
}

func TestPowerFailFlushesEverything(t *testing.T) {
	m, _ := newBaseline(t, 32)
	mp, _ := m.Map("m", 32*4096)
	for p := 0; p < 20; p++ {
		if err := mp.WriteAt([]byte{byte(p + 1)}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
	}
	pm := power.Default()
	full := m.FullBatteryJoules(pm) * 10 // generous full battery
	report := m.PowerFail(pm, full)
	if report.PagesFlushed != 20 {
		t.Fatalf("flushed %d pages, want 20", report.PagesFlushed)
	}
	if !report.Survived {
		t.Fatal("full battery flush did not survive")
	}
	if err := m.VerifyDurability(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFailWithSmallBatteryFails(t *testing.T) {
	m, _ := newBaseline(t, 32)
	mp, _ := m.Map("m", 32*4096)
	for p := 0; p < 32; p++ {
		if err := mp.WriteAt([]byte{1}, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
	}
	report := m.PowerFail(power.Default(), 1e-12)
	if report.Survived {
		t.Fatal("tiny battery reported survival — the baseline needs a full battery")
	}
}

func TestFullBatteryScalesWithRegion(t *testing.T) {
	small, _ := newBaseline(t, 16)
	large, _ := newBaseline(t, 256)
	pm := power.Default()
	if large.FullBatteryJoules(pm) <= small.FullBatteryJoules(pm) {
		t.Fatal("full-battery energy did not scale with DRAM capacity")
	}
}

func TestPageSizeMismatchRejected(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	region, _ := nvdram.New(clock, nvdram.Config{Size: 4 * 4096})
	dev := ssd.New(clock, events, ssd.Config{PageSize: 8192})
	if _, err := NewManager(clock, events, region, dev); err == nil {
		t.Fatal("mismatched page sizes accepted")
	}
}
