// Package recovery implements the power-cycle and reboot flows of §8:
// restoring NV-DRAM contents from the SSD after a power failure (so
// applications restart warm), and the availability model showing that
// bounding dirty pages bounds shutdown flush time.
package recovery

import (
	"bytes"
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/wal"
)

// RestoreReport describes a region restore.
type RestoreReport struct {
	PagesRestored int
	RestoreTime   sim.Duration
	// BudgetPages is the dirty budget the recovered system came up
	// under, re-derived from the battery charge actually available at
	// recovery time (possibly sagged below what the failed run enjoyed;
	// see health.RecoveryBudget). 0 when the restore path does not
	// derive one.
	BudgetPages int
	// Integrity is the verify-on-restore outcome: every durable page's
	// checksum verdict and what was done about failures.
	Integrity IntegrityReport
}

// IntegrityReport is the per-page repair/quarantine accounting of a
// verified restore. The invariant it witnesses: no page's bytes were
// handed back to the application without either passing checksum
// verification, being repaired from an authoritative source, or being
// excluded and listed here.
type IntegrityReport struct {
	// PagesVerified counts durable pages checked (intact + repaired +
	// quarantined).
	PagesVerified int
	// Repaired lists pages whose SSD copy failed verification but were
	// restored from the RepairSource. Their durable copies are still
	// bad: the caller must re-persist them (core.Manager.RepairPage /
	// re-dirtying) before trusting the SSD again.
	Repaired []mmu.PageID
	// Quarantined lists pages whose SSD copy failed verification with
	// no good copy available. They are NOT restored — the region keeps
	// zeroes — because returning plausible-but-corrupt bytes is the one
	// outcome a verified restore exists to prevent.
	Quarantined []mmu.PageID
}

// Clean reports whether every verified page was intact.
func (r IntegrityReport) Clean() bool {
	return len(r.Repaired) == 0 && len(r.Quarantined) == 0
}

// RepairSource supplies authoritative page contents during a verified
// restore, returning false when it has none for the page. A warm reboot
// (NV-DRAM contents survived) can offer the live region; after a true
// power cycle there is usually nothing, and corrupt pages quarantine.
type RepairSource func(page mmu.PageID) ([]byte, bool)

// RestoreRegion builds a fresh NV-DRAM region of the given configuration
// and reloads every durable page from the SSD — the sequential-read
// restore path after a power cycle. SSD read bandwidth is charged, so the
// returned report carries the realistic warm-up time. Every page is
// checksum-verified on the way through (equivalent to
// RestoreRegionVerified with no repair source): corrupt pages are
// quarantined in the report, never silently restored.
func RestoreRegion(clock *sim.Clock, dev *ssd.SSD, cfg nvdram.Config) (*nvdram.Region, RestoreReport, error) {
	return RestoreRegionVerified(clock, dev, cfg, nil)
}

// RestoreRegionVerified is the verify-on-restore path: it walks every
// page the device has a durable claim about (stored contents or an
// acked checksum — a fully lost write must be detected, not skipped),
// verifies each against its recorded checksum, and restores only bytes
// that pass. Failures are repaired from repair when it has the page, or
// quarantined (left zero, listed in the report) when it doesn't.
func RestoreRegionVerified(clock *sim.Clock, dev *ssd.SSD, cfg nvdram.Config, repair RepairSource) (*nvdram.Region, RestoreReport, error) {
	region, err := nvdram.New(clock, cfg)
	if err != nil {
		return nil, RestoreReport{}, err
	}
	if dev.Config().PageSize != region.PageSize() {
		return nil, RestoreReport{}, fmt.Errorf("recovery: SSD page size %d != region page size %d", dev.Config().PageSize, region.PageSize())
	}
	start := clock.Now()
	restored := 0
	var integ IntegrityReport
	for _, page := range dev.DurablePageList() {
		if int(page) >= region.NumPages() {
			return nil, RestoreReport{}, fmt.Errorf("recovery: durable page %d outside region of %d pages", page, region.NumPages())
		}
		integ.PagesVerified++
		data, verr := dev.ReadPageVerified(page)
		if verr == nil {
			if err := region.RestorePage(page, data); err != nil {
				return nil, RestoreReport{}, err
			}
			restored++
			continue
		}
		if repair != nil {
			if good, ok := repair(page); ok {
				if err := region.RestorePage(page, good); err != nil {
					return nil, RestoreReport{}, err
				}
				restored++
				integ.Repaired = append(integ.Repaired, page)
				continue
			}
		}
		integ.Quarantined = append(integ.Quarantined, page)
	}
	return region, RestoreReport{
		PagesRestored: restored,
		RestoreTime:   clock.Now().Sub(start),
		Integrity:     integ,
	}, nil
}

// VerifyRestored checks, byte for byte, that region matches the durable
// store it was restored from: every durable page must equal the region's
// copy, and every page without a durable copy must still be all zero.
// It is the post-restore half of the durability invariant (the pre-flush
// half is core.Manager.VerifyDurability) and is what the crash-point
// sweep asserts after every injected power failure.
func VerifyRestored(region *nvdram.Region, dev *ssd.SSD) error {
	for p := 0; p < region.NumPages(); p++ {
		page := mmu.PageID(p)
		live := region.RawPage(page)
		durable, ok := dev.Durable(page)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("recovery: restored page %d diverges from durable copy", page)
			}
			continue
		}
		for _, b := range live {
			if b != 0 {
				return fmt.Errorf("recovery: restored page %d has data but no durable copy", page)
			}
		}
	}
	return nil
}

// VerifyRestoredWith is VerifyRestored made aware of a verified
// restore's outcome: repaired pages are excluded from the byte-equality
// check (the region holds the authoritative copy, the SSD still holds
// the corrupt one until a re-clean lands), and quarantined pages are
// excluded entirely (unrestored by design, durable copy untrusted).
// Every other page must satisfy the plain invariant.
func VerifyRestoredWith(region *nvdram.Region, dev *ssd.SSD, report IntegrityReport) error {
	skip := make(map[mmu.PageID]struct{}, len(report.Repaired)+len(report.Quarantined))
	for _, p := range report.Repaired {
		skip[p] = struct{}{}
	}
	for _, p := range report.Quarantined {
		skip[p] = struct{}{}
	}
	for p := 0; p < region.NumPages(); p++ {
		page := mmu.PageID(p)
		if _, ok := skip[page]; ok {
			continue
		}
		live := region.RawPage(page)
		durable, ok := dev.Durable(page)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("recovery: restored page %d diverges from durable copy", page)
			}
			continue
		}
		for _, b := range live {
			if b != 0 {
				return fmt.Errorf("recovery: restored page %d has data but no durable copy", page)
			}
		}
	}
	return nil
}

// regionWindow adapts a byte range of a restored region to the wal.Store
// surface, so a log that lived in a mapping can be re-opened after a
// power cycle without reconstructing the manager's allocator state.
type regionWindow struct {
	region *nvdram.Region
	base   int64
	size   int64
}

func (w regionWindow) ReadAt(p []byte, off int64) error  { return w.region.ReadAt(p, w.base+off) }
func (w regionWindow) WriteAt(p []byte, off int64) error { return w.region.WriteAt(p, w.base+off) }
func (w regionWindow) Size() int64                       { return w.size }

// RestoredWAL opens and replays a write-ahead log that lived at [base,
// base+size) of a restored region: the application-level half of crash
// recovery. It returns the committed payloads in order and whether the
// replay stopped at a torn record (a write in flight when power failed)
// rather than cleanly at the committed head. Torn tails are detected and
// rejected, never mis-replayed (wal package checksums).
func RestoredWAL(region *nvdram.Region, base, size int64) (payloads [][]byte, torn bool, err error) {
	l, err := wal.Open(regionWindow{region: region, base: base, size: size})
	if err != nil {
		return nil, false, err
	}
	err = l.Replay(func(_ uint64, payload []byte) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		payloads = append(payloads, cp)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return payloads, l.LastStop() == wal.StopTorn, nil
}

// AvailabilityReport compares reboot downtime with and without dirty
// bounding (§8's "increased availability" argument).
type AvailabilityReport struct {
	DRAMBytes        int64
	DirtyBudgetBytes int64
	// FullShutdownFlush is the worst-case shutdown flush with no
	// bounding: the whole DRAM goes to the SSD (the paper's 4 TB at
	// 4 GB/s ≈ 17 minutes).
	FullShutdownFlush sim.Duration
	// BoundedShutdownFlush is the worst case with Viyojit: at most the
	// dirty budget is flushed.
	BoundedShutdownFlush sim.Duration
	// FullReload is the sequential reload of the whole DRAM at startup
	// (optimisable with on-demand faulting, unlike shutdown).
	FullReload sim.Duration
	// SpeedUp is FullShutdownFlush / BoundedShutdownFlush.
	SpeedUp float64
}

// Availability computes the §8 comparison for a server with dramBytes of
// NV-DRAM, a dirty budget of budgetBytes, and the given SSD bandwidths.
func Availability(dramBytes, budgetBytes, writeBandwidth, readBandwidth int64) (AvailabilityReport, error) {
	if dramBytes <= 0 || budgetBytes <= 0 || budgetBytes > dramBytes {
		return AvailabilityReport{}, fmt.Errorf("recovery: bad sizes dram=%d budget=%d", dramBytes, budgetBytes)
	}
	if writeBandwidth <= 0 || readBandwidth <= 0 {
		return AvailabilityReport{}, fmt.Errorf("recovery: bad bandwidths write=%d read=%d", writeBandwidth, readBandwidth)
	}
	secs := func(bytes, bw int64) sim.Duration {
		return sim.Duration(float64(bytes) / float64(bw) * float64(sim.Second))
	}
	r := AvailabilityReport{
		DRAMBytes:            dramBytes,
		DirtyBudgetBytes:     budgetBytes,
		FullShutdownFlush:    secs(dramBytes, writeBandwidth),
		BoundedShutdownFlush: secs(budgetBytes, writeBandwidth),
		FullReload:           secs(dramBytes, readBandwidth),
	}
	r.SpeedUp = float64(r.FullShutdownFlush) / float64(r.BoundedShutdownFlush)
	return r, nil
}
