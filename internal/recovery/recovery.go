// Package recovery implements the power-cycle and reboot flows of §8:
// restoring NV-DRAM contents from the SSD after a power failure (so
// applications restart warm), and the availability model showing that
// bounding dirty pages bounds shutdown flush time.
package recovery

import (
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
)

// RestoreReport describes a region restore.
type RestoreReport struct {
	PagesRestored int
	RestoreTime   sim.Duration
}

// RestoreRegion builds a fresh NV-DRAM region of the given configuration
// and reloads every durable page from the SSD — the sequential-read
// restore path after a power cycle. SSD read bandwidth is charged, so the
// returned report carries the realistic warm-up time.
func RestoreRegion(clock *sim.Clock, dev *ssd.SSD, cfg nvdram.Config) (*nvdram.Region, RestoreReport, error) {
	region, err := nvdram.New(clock, cfg)
	if err != nil {
		return nil, RestoreReport{}, err
	}
	if dev.Config().PageSize != region.PageSize() {
		return nil, RestoreReport{}, fmt.Errorf("recovery: SSD page size %d != region page size %d", dev.Config().PageSize, region.PageSize())
	}
	start := clock.Now()
	restored := 0
	for p := 0; p < region.NumPages(); p++ {
		page := mmu.PageID(p)
		if _, ok := dev.Durable(page); !ok {
			continue
		}
		data := dev.ReadPage(page)
		if err := region.RestorePage(page, data); err != nil {
			return nil, RestoreReport{}, err
		}
		restored++
	}
	return region, RestoreReport{PagesRestored: restored, RestoreTime: clock.Now().Sub(start)}, nil
}

// AvailabilityReport compares reboot downtime with and without dirty
// bounding (§8's "increased availability" argument).
type AvailabilityReport struct {
	DRAMBytes        int64
	DirtyBudgetBytes int64
	// FullShutdownFlush is the worst-case shutdown flush with no
	// bounding: the whole DRAM goes to the SSD (the paper's 4 TB at
	// 4 GB/s ≈ 17 minutes).
	FullShutdownFlush sim.Duration
	// BoundedShutdownFlush is the worst case with Viyojit: at most the
	// dirty budget is flushed.
	BoundedShutdownFlush sim.Duration
	// FullReload is the sequential reload of the whole DRAM at startup
	// (optimisable with on-demand faulting, unlike shutdown).
	FullReload sim.Duration
	// SpeedUp is FullShutdownFlush / BoundedShutdownFlush.
	SpeedUp float64
}

// Availability computes the §8 comparison for a server with dramBytes of
// NV-DRAM, a dirty budget of budgetBytes, and the given SSD bandwidths.
func Availability(dramBytes, budgetBytes, writeBandwidth, readBandwidth int64) (AvailabilityReport, error) {
	if dramBytes <= 0 || budgetBytes <= 0 || budgetBytes > dramBytes {
		return AvailabilityReport{}, fmt.Errorf("recovery: bad sizes dram=%d budget=%d", dramBytes, budgetBytes)
	}
	if writeBandwidth <= 0 || readBandwidth <= 0 {
		return AvailabilityReport{}, fmt.Errorf("recovery: bad bandwidths write=%d read=%d", writeBandwidth, readBandwidth)
	}
	secs := func(bytes, bw int64) sim.Duration {
		return sim.Duration(float64(bytes) / float64(bw) * float64(sim.Second))
	}
	r := AvailabilityReport{
		DRAMBytes:            dramBytes,
		DirtyBudgetBytes:     budgetBytes,
		FullShutdownFlush:    secs(dramBytes, writeBandwidth),
		BoundedShutdownFlush: secs(budgetBytes, writeBandwidth),
		FullReload:           secs(dramBytes, readBandwidth),
	}
	r.SpeedUp = float64(r.FullShutdownFlush) / float64(r.BoundedShutdownFlush)
	return r, nil
}
