// Package recovery implements the power-cycle and reboot flows of §8:
// restoring NV-DRAM contents from the SSD after a power failure (so
// applications restart warm), and the availability model showing that
// bounding dirty pages bounds shutdown flush time.
package recovery

import (
	"bytes"
	"fmt"

	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/wal"
)

// RestoreReport describes a region restore.
type RestoreReport struct {
	PagesRestored int
	RestoreTime   sim.Duration
}

// RestoreRegion builds a fresh NV-DRAM region of the given configuration
// and reloads every durable page from the SSD — the sequential-read
// restore path after a power cycle. SSD read bandwidth is charged, so the
// returned report carries the realistic warm-up time.
func RestoreRegion(clock *sim.Clock, dev *ssd.SSD, cfg nvdram.Config) (*nvdram.Region, RestoreReport, error) {
	region, err := nvdram.New(clock, cfg)
	if err != nil {
		return nil, RestoreReport{}, err
	}
	if dev.Config().PageSize != region.PageSize() {
		return nil, RestoreReport{}, fmt.Errorf("recovery: SSD page size %d != region page size %d", dev.Config().PageSize, region.PageSize())
	}
	start := clock.Now()
	restored := 0
	for p := 0; p < region.NumPages(); p++ {
		page := mmu.PageID(p)
		if _, ok := dev.Durable(page); !ok {
			continue
		}
		data := dev.ReadPage(page)
		if err := region.RestorePage(page, data); err != nil {
			return nil, RestoreReport{}, err
		}
		restored++
	}
	return region, RestoreReport{PagesRestored: restored, RestoreTime: clock.Now().Sub(start)}, nil
}

// VerifyRestored checks, byte for byte, that region matches the durable
// store it was restored from: every durable page must equal the region's
// copy, and every page without a durable copy must still be all zero.
// It is the post-restore half of the durability invariant (the pre-flush
// half is core.Manager.VerifyDurability) and is what the crash-point
// sweep asserts after every injected power failure.
func VerifyRestored(region *nvdram.Region, dev *ssd.SSD) error {
	for p := 0; p < region.NumPages(); p++ {
		page := mmu.PageID(p)
		live := region.RawPage(page)
		durable, ok := dev.Durable(page)
		if ok {
			if !bytes.Equal(live, durable) {
				return fmt.Errorf("recovery: restored page %d diverges from durable copy", page)
			}
			continue
		}
		for _, b := range live {
			if b != 0 {
				return fmt.Errorf("recovery: restored page %d has data but no durable copy", page)
			}
		}
	}
	return nil
}

// regionWindow adapts a byte range of a restored region to the wal.Store
// surface, so a log that lived in a mapping can be re-opened after a
// power cycle without reconstructing the manager's allocator state.
type regionWindow struct {
	region *nvdram.Region
	base   int64
	size   int64
}

func (w regionWindow) ReadAt(p []byte, off int64) error  { return w.region.ReadAt(p, w.base+off) }
func (w regionWindow) WriteAt(p []byte, off int64) error { return w.region.WriteAt(p, w.base+off) }
func (w regionWindow) Size() int64                       { return w.size }

// RestoredWAL opens and replays a write-ahead log that lived at [base,
// base+size) of a restored region: the application-level half of crash
// recovery. It returns the committed payloads in order and whether the
// replay stopped at a torn record (a write in flight when power failed)
// rather than cleanly at the committed head. Torn tails are detected and
// rejected, never mis-replayed (wal package checksums).
func RestoredWAL(region *nvdram.Region, base, size int64) (payloads [][]byte, torn bool, err error) {
	l, err := wal.Open(regionWindow{region: region, base: base, size: size})
	if err != nil {
		return nil, false, err
	}
	err = l.Replay(func(_ uint64, payload []byte) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		payloads = append(payloads, cp)
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return payloads, l.LastStop() == wal.StopTorn, nil
}

// AvailabilityReport compares reboot downtime with and without dirty
// bounding (§8's "increased availability" argument).
type AvailabilityReport struct {
	DRAMBytes        int64
	DirtyBudgetBytes int64
	// FullShutdownFlush is the worst-case shutdown flush with no
	// bounding: the whole DRAM goes to the SSD (the paper's 4 TB at
	// 4 GB/s ≈ 17 minutes).
	FullShutdownFlush sim.Duration
	// BoundedShutdownFlush is the worst case with Viyojit: at most the
	// dirty budget is flushed.
	BoundedShutdownFlush sim.Duration
	// FullReload is the sequential reload of the whole DRAM at startup
	// (optimisable with on-demand faulting, unlike shutdown).
	FullReload sim.Duration
	// SpeedUp is FullShutdownFlush / BoundedShutdownFlush.
	SpeedUp float64
}

// Availability computes the §8 comparison for a server with dramBytes of
// NV-DRAM, a dirty budget of budgetBytes, and the given SSD bandwidths.
func Availability(dramBytes, budgetBytes, writeBandwidth, readBandwidth int64) (AvailabilityReport, error) {
	if dramBytes <= 0 || budgetBytes <= 0 || budgetBytes > dramBytes {
		return AvailabilityReport{}, fmt.Errorf("recovery: bad sizes dram=%d budget=%d", dramBytes, budgetBytes)
	}
	if writeBandwidth <= 0 || readBandwidth <= 0 {
		return AvailabilityReport{}, fmt.Errorf("recovery: bad bandwidths write=%d read=%d", writeBandwidth, readBandwidth)
	}
	secs := func(bytes, bw int64) sim.Duration {
		return sim.Duration(float64(bytes) / float64(bw) * float64(sim.Second))
	}
	r := AvailabilityReport{
		DRAMBytes:            dramBytes,
		DirtyBudgetBytes:     budgetBytes,
		FullShutdownFlush:    secs(dramBytes, writeBandwidth),
		BoundedShutdownFlush: secs(budgetBytes, writeBandwidth),
		FullReload:           secs(dramBytes, readBandwidth),
	}
	r.SpeedUp = float64(r.FullShutdownFlush) / float64(r.BoundedShutdownFlush)
	return r, nil
}
