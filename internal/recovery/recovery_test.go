package recovery

import (
	"bytes"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/trace"
)

func TestRestoreRegionRoundTrip(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	regionCfg := nvdram.Config{Size: 32 * 4096}
	region, err := nvdram.New(clock, regionCfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Write recognisable data across several pages.
	for p := 0; p < 12; p++ {
		payload := bytes.Repeat([]byte{byte(p + 1)}, 100)
		if err := region.WriteAt(payload, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		mgr.Pump()
	}

	// Power failure with a battery that covers the budget.
	pm := power.Default()
	joules := pm.FlushWatts(region.Size()) * (dev.FlushTimeFor(8) + 10*sim.Millisecond).Seconds()
	report := mgr.PowerFail(pm, joules)
	if !report.Survived {
		t.Fatal("power-fail flush did not survive")
	}

	// Reboot: restore a fresh region from the SSD.
	clock2 := sim.NewClock()
	restored, rr, err := RestoreRegion(clock2, dev, regionCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.PagesRestored == 0 || rr.RestoreTime <= 0 {
		t.Fatalf("restore report = %+v", rr)
	}
	for p := 0; p < 12; p++ {
		got := restored.RawPage(mmu.PageID(p))[:100]
		want := bytes.Repeat([]byte{byte(p + 1)}, 100)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d contents lost across power cycle", p)
		}
	}
}

func TestRestoreRegionPageSizeMismatch(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	dev := ssd.New(clock, events, ssd.Config{PageSize: 8192})
	if _, _, err := RestoreRegion(clock, dev, nvdram.Config{Size: 16 * 4096}); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
}

func TestRestoreEmptySSD(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	dev := ssd.New(clock, events, ssd.Config{})
	region, rr, err := RestoreRegion(clock, dev, nvdram.Config{Size: 8 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	if rr.PagesRestored != 0 {
		t.Fatalf("restored %d pages from an empty SSD", rr.PagesRestored)
	}
	for _, b := range region.RawPage(0) {
		if b != 0 {
			t.Fatal("fresh region not zeroed")
		}
	}
}

func TestAvailabilityMatchesPaperExample(t *testing.T) {
	// §8: 4 TB at 4 GB/s ≈ 17 minutes of shutdown flush.
	r, err := Availability(4<<40, 256<<30, 4<<30, 4<<30)
	if err != nil {
		t.Fatal(err)
	}
	mins := r.FullShutdownFlush.Seconds() / 60
	if mins < 16 || mins > 18 {
		t.Fatalf("full shutdown = %v minutes, want ~17", mins)
	}
	// Bounding to 1/16 of DRAM must cut the flush 16×.
	if r.SpeedUp < 15.9 || r.SpeedUp > 16.1 {
		t.Fatalf("speed-up = %v, want 16", r.SpeedUp)
	}
	if r.BoundedShutdownFlush >= r.FullShutdownFlush {
		t.Fatal("bounded flush not shorter")
	}
}

func TestAvailabilityValidation(t *testing.T) {
	cases := []struct{ dram, budget, wbw, rbw int64 }{
		{0, 1, 1, 1},
		{10, 0, 1, 1},
		{10, 20, 1, 1}, // budget > dram
		{10, 5, 0, 1},
		{10, 5, 1, 0},
	}
	for _, c := range cases {
		if _, err := Availability(c.dram, c.budget, c.wbw, c.rbw); err == nil {
			t.Errorf("Availability(%+v) accepted", c)
		}
	}
}

func TestWarmupComparison(t *testing.T) {
	v, err := trace.Generate(trace.VolumeSpec{
		Name:                   "warmup",
		SizeBytes:              64 << 20,
		WorstHourWriteFraction: 0.1,
		Skew:                   trace.SkewZipf,
		Theta:                  0.9,
		TouchedFraction:        0.5,
	}, trace.Hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := WarmupComparison(v, 3<<30, 100*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// On-demand answers its first request long before the sequential
	// reload finishes (§8's availability argument).
	if rep.OnDemandFirstAccess >= rep.SequentialReady {
		t.Fatalf("on-demand first access %v not before sequential ready %v",
			rep.OnDemandFirstAccess, rep.SequentialReady)
	}
	if rep.AvailabilityGain <= 0 {
		t.Fatal("no availability gain computed")
	}
	// The penalty is bounded: at most one fetch per access.
	if rep.PenalisedAccesses > rep.TotalAccesses {
		t.Fatalf("penalised %d of %d accesses", rep.PenalisedAccesses, rep.TotalAccesses)
	}
	if rep.OnDemandPenalty != sim.Duration(rep.PenalisedAccesses)*100*sim.Microsecond {
		t.Fatal("penalty accounting inconsistent")
	}
}

func TestWarmupValidation(t *testing.T) {
	if _, err := WarmupComparison(nil, 1, 1); err == nil {
		t.Fatal("nil volume accepted")
	}
	v, err := trace.Generate(trace.VolumeSpec{
		Name: "w", SizeBytes: 1 << 20, WorstHourWriteFraction: 0.1,
		Skew: trace.SkewZipf, Theta: 0.9, TouchedFraction: 0.5,
	}, trace.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WarmupComparison(v, 0, 1); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := WarmupComparison(v, 1, 0); err == nil {
		t.Fatal("zero latency accepted")
	}
}
