package recovery

import (
	"bytes"
	"testing"

	"viyojit/internal/core"
	"viyojit/internal/mmu"
	"viyojit/internal/nvdram"
	"viyojit/internal/power"
	"viyojit/internal/sim"
	"viyojit/internal/ssd"
	"viyojit/internal/trace"
)

func TestRestoreRegionRoundTrip(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	regionCfg := nvdram.Config{Size: 32 * 4096}
	region, err := nvdram.New(clock, regionCfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := ssd.New(clock, events, ssd.Config{})
	mgr, err := core.NewManager(clock, events, region, dev, core.Config{DirtyBudgetPages: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Write recognisable data across several pages.
	for p := 0; p < 12; p++ {
		payload := bytes.Repeat([]byte{byte(p + 1)}, 100)
		if err := region.WriteAt(payload, int64(p)*4096); err != nil {
			t.Fatal(err)
		}
		mgr.Pump()
	}

	// Power failure with a battery that covers the budget.
	pm := power.Default()
	joules := pm.FlushWatts(region.Size()) * (dev.FlushTimeFor(8) + 10*sim.Millisecond).Seconds()
	report := mgr.PowerFail(pm, joules)
	if !report.Survived {
		t.Fatal("power-fail flush did not survive")
	}

	// Reboot: restore a fresh region from the SSD.
	clock2 := sim.NewClock()
	restored, rr, err := RestoreRegion(clock2, dev, regionCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rr.PagesRestored == 0 || rr.RestoreTime <= 0 {
		t.Fatalf("restore report = %+v", rr)
	}
	for p := 0; p < 12; p++ {
		got := restored.RawPage(mmu.PageID(p))[:100]
		want := bytes.Repeat([]byte{byte(p + 1)}, 100)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d contents lost across power cycle", p)
		}
	}
}

func TestRestoreRegionPageSizeMismatch(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	dev := ssd.New(clock, events, ssd.Config{PageSize: 8192})
	if _, _, err := RestoreRegion(clock, dev, nvdram.Config{Size: 16 * 4096}); err == nil {
		t.Fatal("page-size mismatch accepted")
	}
}

func TestRestoreEmptySSD(t *testing.T) {
	clock := sim.NewClock()
	events := sim.NewQueue()
	dev := ssd.New(clock, events, ssd.Config{})
	region, rr, err := RestoreRegion(clock, dev, nvdram.Config{Size: 8 * 4096})
	if err != nil {
		t.Fatal(err)
	}
	if rr.PagesRestored != 0 {
		t.Fatalf("restored %d pages from an empty SSD", rr.PagesRestored)
	}
	for _, b := range region.RawPage(0) {
		if b != 0 {
			t.Fatal("fresh region not zeroed")
		}
	}
}

func TestAvailabilityMatchesPaperExample(t *testing.T) {
	// §8: 4 TB at 4 GB/s ≈ 17 minutes of shutdown flush.
	r, err := Availability(4<<40, 256<<30, 4<<30, 4<<30)
	if err != nil {
		t.Fatal(err)
	}
	mins := r.FullShutdownFlush.Seconds() / 60
	if mins < 16 || mins > 18 {
		t.Fatalf("full shutdown = %v minutes, want ~17", mins)
	}
	// Bounding to 1/16 of DRAM must cut the flush 16×.
	if r.SpeedUp < 15.9 || r.SpeedUp > 16.1 {
		t.Fatalf("speed-up = %v, want 16", r.SpeedUp)
	}
	if r.BoundedShutdownFlush >= r.FullShutdownFlush {
		t.Fatal("bounded flush not shorter")
	}
}

func TestAvailabilityValidation(t *testing.T) {
	cases := []struct{ dram, budget, wbw, rbw int64 }{
		{0, 1, 1, 1},
		{10, 0, 1, 1},
		{10, 20, 1, 1}, // budget > dram
		{10, 5, 0, 1},
		{10, 5, 1, 0},
	}
	for _, c := range cases {
		if _, err := Availability(c.dram, c.budget, c.wbw, c.rbw); err == nil {
			t.Errorf("Availability(%+v) accepted", c)
		}
	}
}

func TestWarmupComparison(t *testing.T) {
	v, err := trace.Generate(trace.VolumeSpec{
		Name:                   "warmup",
		SizeBytes:              64 << 20,
		WorstHourWriteFraction: 0.1,
		Skew:                   trace.SkewZipf,
		Theta:                  0.9,
		TouchedFraction:        0.5,
	}, trace.Hour, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := WarmupComparison(v, 3<<30, 100*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	// On-demand answers its first request long before the sequential
	// reload finishes (§8's availability argument).
	if rep.OnDemandFirstAccess >= rep.SequentialReady {
		t.Fatalf("on-demand first access %v not before sequential ready %v",
			rep.OnDemandFirstAccess, rep.SequentialReady)
	}
	if rep.AvailabilityGain <= 0 {
		t.Fatal("no availability gain computed")
	}
	// The penalty is bounded: at most one fetch per access.
	if rep.PenalisedAccesses > rep.TotalAccesses {
		t.Fatalf("penalised %d of %d accesses", rep.PenalisedAccesses, rep.TotalAccesses)
	}
	if rep.OnDemandPenalty != sim.Duration(rep.PenalisedAccesses)*100*sim.Microsecond {
		t.Fatal("penalty accounting inconsistent")
	}
}

func TestWarmupValidation(t *testing.T) {
	if _, err := WarmupComparison(nil, 1, 1); err == nil {
		t.Fatal("nil volume accepted")
	}
	v, err := trace.Generate(trace.VolumeSpec{
		Name: "w", SizeBytes: 1 << 20, WorstHourWriteFraction: 0.1,
		Skew: trace.SkewZipf, Theta: 0.9, TouchedFraction: 0.5,
	}, trace.Hour, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WarmupComparison(v, 0, 1); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := WarmupComparison(v, 1, 0); err == nil {
		t.Fatal("zero latency accepted")
	}
}

// seedDevice writes n recognisable pages synchronously and returns the
// device plus its sim plumbing.
func seedDevice(t *testing.T, n int) (*ssd.SSD, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	events := sim.NewQueue()
	dev := ssd.New(clock, events, ssd.Config{})
	for p := 0; p < n; p++ {
		if _, err := dev.WritePageSync(mmu.PageID(p), bytes.Repeat([]byte{byte(p + 1)}, 4096)); err != nil {
			t.Fatalf("seed write %d: %v", p, err)
		}
	}
	return dev, clock
}

// TestVerifiedRestoreQuarantinesCorruptPage: a silently corrupted page
// must never be restored as good data — it stays zero and is listed.
func TestVerifiedRestoreQuarantinesCorruptPage(t *testing.T) {
	dev, _ := seedDevice(t, 6)
	if !dev.CorruptPage(4, 1000, 0x80) {
		t.Fatal("nothing to corrupt")
	}
	restored, rr, err := RestoreRegionVerified(sim.NewClock(), dev, nvdram.Config{Size: 8 * 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	integ := rr.Integrity
	if integ.PagesVerified != 6 || len(integ.Quarantined) != 1 || integ.Quarantined[0] != 4 {
		t.Fatalf("integrity report %+v", integ)
	}
	if integ.Clean() {
		t.Fatal("report claims clean with a quarantined page")
	}
	if rr.PagesRestored != 5 {
		t.Fatalf("restored %d pages, want 5", rr.PagesRestored)
	}
	for _, b := range restored.RawPage(4) {
		if b != 0 {
			t.Fatal("quarantined page carries restored bytes")
		}
	}
	// The plain invariant fails (the corrupt durable copy diverges); the
	// report-aware one knows the divergence was detected and excluded.
	if VerifyRestored(restored, dev) == nil {
		t.Fatal("plain VerifyRestored ignored the quarantined divergence")
	}
	if err := VerifyRestoredWith(restored, dev, integ); err != nil {
		t.Fatalf("VerifyRestoredWith: %v", err)
	}
}

// TestVerifiedRestoreRepairsFromSource: with an authoritative copy
// available (warm reboot), the corrupt page is repaired, not lost.
func TestVerifiedRestoreRepairsFromSource(t *testing.T) {
	dev, _ := seedDevice(t, 4)
	want := bytes.Repeat([]byte{3}, 4096) // page 2's original contents
	dev.CorruptPage(2, 9, 0x01)
	source := func(page mmu.PageID) ([]byte, bool) {
		if page == 2 {
			return want, true
		}
		return nil, false
	}
	restored, rr, err := RestoreRegionVerified(sim.NewClock(), dev, nvdram.Config{Size: 8 * 4096}, source)
	if err != nil {
		t.Fatal(err)
	}
	integ := rr.Integrity
	if len(integ.Repaired) != 1 || integ.Repaired[0] != 2 || len(integ.Quarantined) != 0 {
		t.Fatalf("integrity report %+v", integ)
	}
	if !bytes.Equal(restored.RawPage(2), want) {
		t.Fatal("repaired page does not carry the source's bytes")
	}
	if rr.PagesRestored != 4 {
		t.Fatalf("restored %d pages, want 4", rr.PagesRestored)
	}
	if err := VerifyRestoredWith(restored, dev, integ); err != nil {
		t.Fatalf("VerifyRestoredWith: %v", err)
	}
}

// TestVerifiedRestoreDetectsLostWrite: a page the device acked but never
// stored (fully lost write) must surface at restore as a quarantined
// page, not be silently skipped.
func TestVerifiedRestoreDetectsLostWrite(t *testing.T) {
	dev, _ := seedDevice(t, 2)
	dev.SetFaultInjector(lostInjector{})
	if _, err := dev.WritePageSync(5, bytes.Repeat([]byte{0x5A}, 4096)); err != nil {
		t.Fatalf("lost write acked with error: %v", err)
	}
	dev.SetFaultInjector(nil)
	_, rr, err := RestoreRegionVerified(sim.NewClock(), dev, nvdram.Config{Size: 8 * 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}
	integ := rr.Integrity
	if integ.PagesVerified != 3 {
		t.Fatalf("verified %d pages, want 3 (lost page must be visited)", integ.PagesVerified)
	}
	if len(integ.Quarantined) != 1 || integ.Quarantined[0] != 5 {
		t.Fatalf("lost write not quarantined: %+v", integ)
	}
}

// lostInjector loses every write.
type lostInjector struct{}

func (lostInjector) WriteFault(mmu.PageID, []byte) ssd.FaultDecision {
	return ssd.FaultDecision{Fault: ssd.FaultLost}
}
