// progress.go is the persistent recovery cursor: the small,
// battery-backed record of how far a recovery has durably progressed, so
// a power failure striking *during* recovery — the cascading-outage
// regime, where restores run on a sagging battery that browns out again
// mid-replay — resumes instead of silently re-running work.
//
// The cursor lives in an ordinary NV-DRAM mapping, so its writes are
// dirty-budget-accounted and flushed by the same power-fail path as the
// data whose recovery it tracks. Durability is two-slot atomic: each
// write encodes a full checksummed snapshot into the slot its sequence
// number selects (alternating), so a write torn by yet another outage
// leaves the other slot valid. A cursor whose both slots fail
// verification is not an error: OpenCursor falls back to a fresh cursor
// and the caller runs a full from-scratch recovery — the one behaviour
// that is always safe — rather than ever trusting a partial record.
//
// Monotonicity contract (the nested crash sweep's cursor-regression
// oracle):
//
//   - Seq strictly increases on every durable write.
//   - Incarnation (one per outage being recovered from) never decreases.
//   - Within an incarnation, Attempt (one per recovery attempt; cascaded
//     re-crashes restart attempts) never decreases.
//   - Within an attempt, (Phase, Record) never regresses lexicographically.
//   - Within an incarnation, Record — the count of redo records durably
//     completed — never decreases, even across attempts. Volatile phases
//     (region restore, journal-table rebuild) re-run on every attempt
//     because their effects live in DRAM; Record only tracks durable
//     replay work, which is exactly what must never be re-applied
//     blindly or skipped.
package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"

	"viyojit/internal/obs"
	"viyojit/internal/wal"
)

// CursorStore is the NV-DRAM surface the cursor lives in (same shape as
// wal.Store — typically a dedicated one-page core.Manager mapping).
type CursorStore = wal.Store

// Phase is a recovery pipeline stage. Phases are ordered: recovery
// advances PhaseRestore → PhaseWALReplay → PhaseIntentRedo → PhaseDrain
// → PhaseDone within an attempt, and a cascaded re-crash restarts the
// next attempt at PhaseRestore (restore's effects are volatile).
type Phase uint8

const (
	// PhaseNone: formatted, no recovery has ever run.
	PhaseNone Phase = iota
	// PhaseRestore: reloading NV-DRAM pages from the SSD.
	PhaseRestore
	// PhaseWALReplay: replaying log records to rebuild volatile tables
	// (the intent journal's dedup table, application WALs).
	PhaseWALReplay
	// PhaseIntentRedo: applying redo images of in-flight intents — the
	// only phase with durable per-record effects; Record counts them.
	PhaseIntentRedo
	// PhaseDrain: draining the re-dirtied set to the SSD so recovery
	// ends with a clean durable state before serving resumes.
	PhaseDrain
	// PhaseDone: recovery complete.
	PhaseDone
)

func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseRestore:
		return "restore"
	case PhaseWALReplay:
		return "wal-replay"
	case PhaseIntentRedo:
		return "intent-redo"
	case PhaseDrain:
		return "drain"
	case PhaseDone:
		return "done"
	}
	return "unknown"
}

// Progress is one durable cursor record.
type Progress struct {
	// Seq is the monotone write counter; it also selects the slot.
	Seq uint64
	// Incarnation counts outages recovered from; BeginRecovery bumps it
	// when starting fresh (PhaseNone or PhaseDone).
	Incarnation uint64
	// Attempt counts recovery attempts within the incarnation; a
	// re-crash mid-recovery bumps it on resume.
	Attempt uint64
	// Phase is the stage the recovery is in.
	Phase Phase
	// Record is the number of redo records durably completed this
	// incarnation (cumulative across attempts).
	Record uint64
	// BudgetPages is the dirty budget this attempt runs under — the
	// post-outage, possibly shrunken figure, recorded for audit.
	BudgetPages uint64
}

// InRecovery reports whether the progress describes an unfinished
// recovery (a resume candidate).
func (p Progress) InRecovery() bool { return p.Phase > PhaseNone && p.Phase < PhaseDone }

// Less orders two progress records by the monotonicity contract:
// (Incarnation, Attempt, Phase, Record), with Seq as the final
// tie-break. A cursor regresses iff a later observation is Less than an
// earlier one.
func (p Progress) Less(q Progress) bool {
	if p.Incarnation != q.Incarnation {
		return p.Incarnation < q.Incarnation
	}
	if p.Attempt != q.Attempt {
		return p.Attempt < q.Attempt
	}
	if p.Phase != q.Phase {
		return p.Phase < q.Phase
	}
	if p.Record != q.Record {
		return p.Record < q.Record
	}
	return p.Seq < q.Seq
}

const (
	cursorMagic uint64 = 0x56494A5243555253 // "VIJRCURS"

	slotBytes = 64
	// MinCursorBytes is the smallest store a cursor accepts: two slots.
	MinCursorBytes = 2 * slotBytes
)

// Typed errors. Match with errors.Is.
var (
	// ErrCursorRegression: an Advance would move the cursor backwards —
	// always a recovery-logic bug, never applied.
	ErrCursorRegression = errors.New("recovery: cursor advance would regress progress")
	// ErrNotRecovering: Advance/Finish without a BeginRecovery.
	ErrNotRecovering = errors.New("recovery: cursor is not inside a recovery (call BeginRecovery)")
)

// Cursor is the persistent recovery cursor. Single-goroutine, like the
// rest of the simulated stack.
type Cursor struct {
	store    CursorStore
	cur      Progress
	resumed  bool // Open found an unfinished recovery
	fellBack bool // Open found a corrupt cursor and formatted fresh

	advances  *obs.Counter
	resumes   *obs.Counter
	fallbacks *obs.Counter
}

func newCursor(store CursorStore, reg *obs.Registry) *Cursor {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Cursor{
		store:     store,
		advances:  reg.Counter("recovery_cursor_advances_total"),
		resumes:   reg.Counter("recovery_resumes_total"),
		fallbacks: reg.Counter("recovery_cursor_fallbacks_total"),
	}
}

// cursorSum is FNV-1a over a slot's first 56 bytes (everything but the
// checksum word itself).
func cursorSum(b []byte) uint64 {
	h := uint64(0xCBF29CE484222325)
	for _, c := range b[:slotBytes-8] {
		h ^= uint64(c)
		h *= 0x100000001B3
	}
	return h
}

func encodeSlot(p Progress) []byte {
	var b [slotBytes]byte
	binary.LittleEndian.PutUint64(b[0:], cursorMagic)
	binary.LittleEndian.PutUint64(b[8:], p.Seq)
	binary.LittleEndian.PutUint64(b[16:], p.Incarnation)
	binary.LittleEndian.PutUint64(b[24:], p.Attempt)
	binary.LittleEndian.PutUint64(b[32:], uint64(p.Phase))
	binary.LittleEndian.PutUint64(b[40:], p.Record)
	binary.LittleEndian.PutUint64(b[48:], p.BudgetPages)
	binary.LittleEndian.PutUint64(b[56:], cursorSum(b[:]))
	return b[:]
}

// decodeSlot validates one slot. ok is false for bad magic, bad
// checksum, or a phase outside the enum — anything a torn write, a bit
// flip, or a truncated store could produce.
func decodeSlot(b []byte) (Progress, bool) {
	if len(b) < slotBytes {
		return Progress{}, false
	}
	if binary.LittleEndian.Uint64(b[0:]) != cursorMagic {
		return Progress{}, false
	}
	if binary.LittleEndian.Uint64(b[56:]) != cursorSum(b) {
		return Progress{}, false
	}
	phase := binary.LittleEndian.Uint64(b[32:])
	if phase > uint64(PhaseDone) {
		return Progress{}, false
	}
	return Progress{
		Seq:         binary.LittleEndian.Uint64(b[8:]),
		Incarnation: binary.LittleEndian.Uint64(b[16:]),
		Attempt:     binary.LittleEndian.Uint64(b[24:]),
		Phase:       Phase(phase),
		Record:      binary.LittleEndian.Uint64(b[40:]),
		BudgetPages: binary.LittleEndian.Uint64(b[48:]),
	}, true
}

// CreateCursor formats a fresh cursor across the store. reg may be nil.
func CreateCursor(store CursorStore, reg *obs.Registry) (*Cursor, error) {
	if store.Size() < MinCursorBytes {
		return nil, fmt.Errorf("recovery: cursor store of %d bytes too small (min %d)", store.Size(), MinCursorBytes)
	}
	c := newCursor(store, reg)
	c.cur = Progress{Seq: 1, Phase: PhaseNone}
	// Invalidate the other slot first so stale bytes from a previous
	// tenant of the store can never outrank the fresh record.
	var zero [slotBytes]byte
	if err := store.WriteAt(zero[:], slotBytes); err != nil {
		return nil, err
	}
	if err := c.write(); err != nil {
		return nil, err
	}
	return c, nil
}

// OpenCursor attaches to an existing cursor (the recovery path). It
// reads both slots, validates each, and adopts the one with the higher
// sequence number; a write torn by a mid-recovery outage therefore costs
// at most that one write, never the cursor. If neither slot validates —
// truncated store, bit flips, or bytes that were never a cursor — it
// falls back to formatting a fresh cursor (FellBack reports this) so the
// caller runs a full from-scratch recovery instead of trusting a partial
// record. reg may be nil.
func OpenCursor(store CursorStore, reg *obs.Registry) (*Cursor, error) {
	if store.Size() < MinCursorBytes {
		return nil, fmt.Errorf("recovery: cursor store of %d bytes too small (min %d)", store.Size(), MinCursorBytes)
	}
	var raw [2 * slotBytes]byte
	if err := store.ReadAt(raw[:], 0); err != nil {
		return nil, err
	}
	p0, ok0 := decodeSlot(raw[:slotBytes])
	p1, ok1 := decodeSlot(raw[slotBytes:])
	c := newCursor(store, reg)
	switch {
	case ok0 && ok1:
		if p1.Seq > p0.Seq {
			c.cur = p1
		} else {
			c.cur = p0
		}
	case ok0:
		c.cur = p0
	case ok1:
		c.cur = p1
	default:
		// Corrupt beyond recovery: format fresh and force a full
		// from-scratch recovery. Never resume from a record that did not
		// verify.
		c.fellBack = true
		c.fallbacks.Inc()
		c.cur = Progress{Seq: 1, Phase: PhaseNone}
		var zero [slotBytes]byte
		if err := store.WriteAt(zero[:], slotBytes); err != nil {
			return nil, err
		}
		if err := c.write(); err != nil {
			return nil, err
		}
		return c, nil
	}
	if c.cur.InRecovery() {
		c.resumed = true
		c.resumes.Inc()
	}
	return c, nil
}

// write persists the current progress into the slot its Seq selects.
func (c *Cursor) write() error {
	return c.store.WriteAt(encodeSlot(c.cur), int64(c.cur.Seq%2)*slotBytes)
}

// Progress returns the cursor's current durable record.
func (c *Cursor) Progress() Progress { return c.cur }

// Resumed reports whether OpenCursor found an unfinished recovery — the
// signature of a crash during a previous recovery attempt.
func (c *Cursor) Resumed() bool { return c.resumed }

// FellBack reports whether OpenCursor found a corrupt cursor and
// formatted fresh, forcing a full from-scratch recovery.
func (c *Cursor) FellBack() bool { return c.fellBack }

// BeginRecovery opens a recovery attempt under the given dirty budget
// and returns the durable progress the attempt starts from. Starting
// fresh (PhaseNone or PhaseDone) opens a new incarnation at attempt 1
// with Record reset; resuming an unfinished recovery bumps Attempt,
// preserves Record (the redos already durably completed), and restarts
// the phase ladder at PhaseRestore — restore's effects are volatile and
// must re-run. The returned resumed flag distinguishes the two.
func (c *Cursor) BeginRecovery(budgetPages int) (Progress, bool, error) {
	if budgetPages < 0 {
		budgetPages = 0
	}
	resumed := c.cur.InRecovery()
	next := c.cur
	next.Seq++
	next.BudgetPages = uint64(budgetPages)
	next.Phase = PhaseRestore
	if resumed {
		next.Attempt++
	} else {
		next.Incarnation++
		next.Attempt = 1
		next.Record = 0
	}
	c.cur = next
	if err := c.write(); err != nil {
		return Progress{}, false, err
	}
	c.advances.Inc()
	return c.cur, resumed, nil
}

// Advance durably records that recovery reached (phase, record). It is
// idempotent — re-recording the current position is a no-op write with a
// fresh Seq — and refuses regressions: a smaller phase, a smaller record
// within the phase, or any shrink of the incarnation-cumulative Record
// returns ErrCursorRegression with the cursor unchanged.
func (c *Cursor) Advance(phase Phase, record uint64) error {
	if !c.cur.InRecovery() {
		return ErrNotRecovering
	}
	if phase < c.cur.Phase || (phase == c.cur.Phase && record < c.cur.Record) || record < c.cur.Record {
		return fmt.Errorf("%w: at %v/%d, asked %v/%d", ErrCursorRegression, c.cur.Phase, c.cur.Record, phase, record)
	}
	if phase >= PhaseDone {
		return fmt.Errorf("recovery: use Finish to complete a recovery, not Advance(%v)", phase)
	}
	next := c.cur
	next.Seq++
	next.Phase = phase
	next.Record = record
	c.cur = next
	if err := c.write(); err != nil {
		return err
	}
	c.advances.Inc()
	return nil
}

// Finish durably marks the recovery complete (PhaseDone). The next
// BeginRecovery opens a fresh incarnation.
func (c *Cursor) Finish() error {
	if !c.cur.InRecovery() {
		return ErrNotRecovering
	}
	next := c.cur
	next.Seq++
	next.Phase = PhaseDone
	c.cur = next
	if err := c.write(); err != nil {
		return err
	}
	c.advances.Inc()
	return nil
}
