package recovery

import (
	"bytes"
	"testing"
)

// FuzzRecoveryCursor throws arbitrary bytes — truncations, bit flips,
// torn slot writes — at OpenCursor and checks the resume contract: the
// cursor either resumes from a record that round-trips verification, or
// falls back to a fresh from-scratch cursor. It must never surface a
// progress record that did not decode cleanly (the "partial redo applied
// silently" failure ISSUE 8 forbids), and the post-open cursor must
// always be durable and usable.
func FuzzRecoveryCursor(f *testing.F) {
	// Seeds: a legitimate mid-recovery cursor, its torn/flipped
	// variants, and degenerate stores.
	mk := func(mut func(b []byte)) []byte {
		st := newMemStore(MinCursorBytes)
		c, err := CreateCursor(st, nil)
		if err != nil {
			f.Fatalf("seed CreateCursor: %v", err)
		}
		if _, _, err := c.BeginRecovery(8); err != nil {
			f.Fatalf("seed BeginRecovery: %v", err)
		}
		if err := c.Advance(PhaseIntentRedo, 7); err != nil {
			f.Fatalf("seed Advance: %v", err)
		}
		if mut != nil {
			mut(st.b)
		}
		return st.b
	}
	f.Add(mk(nil))
	f.Add(mk(func(b []byte) { b[12] ^= 0x01 }))           // bit flip in slot 0
	f.Add(mk(func(b []byte) { b[slotBytes+12] ^= 0x80 })) // bit flip in slot 1
	f.Add(mk(func(b []byte) { copy(b[slotBytes:], make([]byte, 32)) }))
	f.Add(make([]byte, MinCursorBytes))    // all zeros
	f.Add(bytes.Repeat([]byte{0xFF}, 200)) // all ones, odd size
	f.Add([]byte{1, 2, 3})                 // truncated below minimum

	f.Fuzz(func(t *testing.T, raw []byte) {
		st := &memStore{b: append([]byte(nil), raw...)}
		c, err := OpenCursor(st, nil)
		if st.Size() < MinCursorBytes {
			if err == nil {
				t.Fatalf("OpenCursor accepted undersized store of %d bytes", st.Size())
			}
			return
		}
		if err != nil {
			t.Fatalf("OpenCursor on %d-byte store: %v", st.Size(), err)
		}

		p := c.Progress()
		if c.FellBack() {
			// Fallback must mean from-scratch: nothing to resume.
			if c.Resumed() || p.InRecovery() || p.Incarnation != 0 || p.Record != 0 {
				t.Fatalf("fallback cursor still carries state: resumed=%v %+v", c.Resumed(), p)
			}
		} else {
			// The adopted record must be one that verifies: re-decode the
			// slot its Seq selects and demand an exact match. This is the
			// "never trust a partial record" property.
			var slot [slotBytes]byte
			if err := st.ReadAt(slot[:], int64(p.Seq%2)*slotBytes); err != nil {
				t.Fatalf("re-read adopted slot: %v", err)
			}
			dec, ok := decodeSlot(slot[:])
			if !ok || dec != p {
				t.Fatalf("cursor adopted a record that does not verify: %+v (decoded ok=%v %+v)", p, ok, dec)
			}
			if c.Resumed() != p.InRecovery() {
				t.Fatalf("resumed=%v disagrees with progress %+v", c.Resumed(), p)
			}
		}
		if p.Phase > PhaseDone {
			t.Fatalf("out-of-range phase surfaced: %+v", p)
		}

		// Whatever Open decided, the cursor must now be usable: a full
		// begin→advance→finish pass succeeds and survives reopen.
		prev := p
		np, resumed, err := c.BeginRecovery(4)
		if err != nil {
			t.Fatalf("BeginRecovery after open: %v", err)
		}
		if resumed != prev.InRecovery() {
			t.Fatalf("BeginRecovery resumed=%v, but prior progress %+v", resumed, prev)
		}
		if resumed && np.Record != prev.Record {
			t.Fatalf("resume lost Record: %+v -> %+v", prev, np)
		}
		if prev.Less(np) == false && np != prev {
			t.Fatalf("BeginRecovery regressed: %+v -> %+v", prev, np)
		}
		if err := c.Advance(PhaseIntentRedo, np.Record+1); err != nil {
			t.Fatalf("Advance after open: %v", err)
		}
		if err := c.Finish(); err != nil {
			t.Fatalf("Finish after open: %v", err)
		}
		c2, err := OpenCursor(st, nil)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if got := c2.Progress(); got != c.Progress() {
			t.Fatalf("reopen does not round-trip: wrote %+v, read %+v", c.Progress(), got)
		}
	})
}
