package recovery

import (
	"errors"
	"testing"

	"viyojit/internal/obs"
)

// memStore is a trivial in-memory CursorStore for unit tests.
type memStore struct{ b []byte }

func newMemStore(n int) *memStore { return &memStore{b: make([]byte, n)} }

func (m *memStore) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.b)) {
		return errors.New("memStore: read out of range")
	}
	copy(p, m.b[off:])
	return nil
}

func (m *memStore) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > int64(len(m.b)) {
		return errors.New("memStore: write out of range")
	}
	copy(m.b[off:], p)
	return nil
}

func (m *memStore) Size() int64 { return int64(len(m.b)) }

func TestCursorFreshLifecycle(t *testing.T) {
	st := newMemStore(4096)
	c, err := CreateCursor(st, nil)
	if err != nil {
		t.Fatalf("CreateCursor: %v", err)
	}
	if got := c.Progress(); got.Phase != PhaseNone || got.InRecovery() {
		t.Fatalf("fresh cursor: got %+v, want PhaseNone", got)
	}
	if c.Resumed() || c.FellBack() {
		t.Fatalf("fresh cursor claims resumed=%v fellBack=%v", c.Resumed(), c.FellBack())
	}

	p, resumed, err := c.BeginRecovery(8)
	if err != nil || resumed {
		t.Fatalf("BeginRecovery: %+v resumed=%v err=%v", p, resumed, err)
	}
	if p.Incarnation != 1 || p.Attempt != 1 || p.Phase != PhaseRestore || p.Record != 0 || p.BudgetPages != 8 {
		t.Fatalf("first attempt progress: %+v", p)
	}

	steps := []struct {
		phase Phase
		rec   uint64
	}{
		{PhaseWALReplay, 0},
		{PhaseIntentRedo, 0},
		{PhaseIntentRedo, 3},
		{PhaseIntentRedo, 3}, // idempotent re-record
		{PhaseDrain, 3},
	}
	for _, s := range steps {
		if err := c.Advance(s.phase, s.rec); err != nil {
			t.Fatalf("Advance(%v,%d): %v", s.phase, s.rec, err)
		}
	}
	if err := c.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got := c.Progress(); got.Phase != PhaseDone || got.Record != 3 {
		t.Fatalf("after Finish: %+v", got)
	}

	// Reopen: a finished recovery is not a resume candidate.
	c2, err := OpenCursor(st, nil)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	if c2.Resumed() || c2.FellBack() {
		t.Fatalf("done cursor claims resumed=%v fellBack=%v", c2.Resumed(), c2.FellBack())
	}
	// A new outage opens incarnation 2 with Record reset.
	p2, resumed, err := c2.BeginRecovery(4)
	if err != nil || resumed {
		t.Fatalf("BeginRecovery after done: %+v resumed=%v err=%v", p2, resumed, err)
	}
	if p2.Incarnation != 2 || p2.Attempt != 1 || p2.Record != 0 || p2.BudgetPages != 4 {
		t.Fatalf("second incarnation: %+v", p2)
	}
}

func TestCursorResumePreservesRecord(t *testing.T) {
	st := newMemStore(MinCursorBytes)
	c, err := CreateCursor(st, nil)
	if err != nil {
		t.Fatalf("CreateCursor: %v", err)
	}
	if _, _, err := c.BeginRecovery(8); err != nil {
		t.Fatalf("BeginRecovery: %v", err)
	}
	if err := c.Advance(PhaseIntentRedo, 5); err != nil {
		t.Fatalf("Advance: %v", err)
	}

	// Simulated re-crash: reopen from the same bytes.
	reg := obs.NewRegistry()
	c2, err := OpenCursor(st, reg)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	if !c2.Resumed() {
		t.Fatalf("expected Resumed after mid-recovery reopen; progress %+v", c2.Progress())
	}
	if got := reg.Counter("recovery_resumes_total").Value(); got != 1 {
		t.Fatalf("recovery_resumes_total = %d, want 1", got)
	}
	p, resumed, err := c2.BeginRecovery(4)
	if err != nil || !resumed {
		t.Fatalf("resume BeginRecovery: %+v resumed=%v err=%v", p, resumed, err)
	}
	if p.Incarnation != 1 || p.Attempt != 2 || p.Record != 5 || p.Phase != PhaseRestore {
		t.Fatalf("resumed attempt should preserve Record and restart phases: %+v", p)
	}
	// Record must stay cumulative across the re-run: re-recording
	// phases below the preserved Record count is a regression.
	if err := c2.Advance(PhaseIntentRedo, 4); !errors.Is(err, ErrCursorRegression) {
		t.Fatalf("Advance shrinking Record: err=%v, want ErrCursorRegression", err)
	}
	if err := c2.Advance(PhaseIntentRedo, 7); err != nil {
		t.Fatalf("Advance growing Record: %v", err)
	}
}

func TestCursorRejectsRegression(t *testing.T) {
	st := newMemStore(MinCursorBytes)
	c, _ := CreateCursor(st, nil)
	if err := c.Advance(PhaseWALReplay, 0); !errors.Is(err, ErrNotRecovering) {
		t.Fatalf("Advance before BeginRecovery: err=%v, want ErrNotRecovering", err)
	}
	if err := c.Finish(); !errors.Is(err, ErrNotRecovering) {
		t.Fatalf("Finish before BeginRecovery: err=%v, want ErrNotRecovering", err)
	}
	if _, _, err := c.BeginRecovery(8); err != nil {
		t.Fatalf("BeginRecovery: %v", err)
	}
	if err := c.Advance(PhaseIntentRedo, 2); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	before := c.Progress()
	if err := c.Advance(PhaseWALReplay, 2); !errors.Is(err, ErrCursorRegression) {
		t.Fatalf("phase regression: err=%v, want ErrCursorRegression", err)
	}
	if err := c.Advance(PhaseIntentRedo, 1); !errors.Is(err, ErrCursorRegression) {
		t.Fatalf("record regression: err=%v, want ErrCursorRegression", err)
	}
	if err := c.Advance(PhaseDone, 2); err == nil {
		t.Fatalf("Advance(PhaseDone) must be rejected in favour of Finish")
	}
	if got := c.Progress(); got != before {
		t.Fatalf("rejected advances mutated the cursor: %+v -> %+v", before, got)
	}
}

func TestCursorTornWriteKeepsPriorSlot(t *testing.T) {
	st := newMemStore(MinCursorBytes)
	c, _ := CreateCursor(st, nil)
	if _, _, err := c.BeginRecovery(8); err != nil {
		t.Fatalf("BeginRecovery: %v", err)
	}
	if err := c.Advance(PhaseIntentRedo, 9); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	want := c.Progress()

	// Tear the *next* write: Advance writes the other slot; shred it
	// mid-write by corrupting whichever slot the next Seq selects.
	if err := c.Advance(PhaseDrain, 9); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	tornSlot := int64(c.Progress().Seq%2) * slotBytes
	for i := int64(8); i < 24; i++ { // shred seq+incarnation words
		st.b[tornSlot+i] ^= 0xFF
	}

	c2, err := OpenCursor(st, nil)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	if c2.FellBack() {
		t.Fatalf("torn single slot must not force a fallback")
	}
	if got := c2.Progress(); got != want {
		t.Fatalf("after torn write: got %+v, want prior slot %+v", got, want)
	}
}

func TestCursorCorruptFallsBackFresh(t *testing.T) {
	st := newMemStore(MinCursorBytes)
	c, _ := CreateCursor(st, nil)
	if _, _, err := c.BeginRecovery(8); err != nil {
		t.Fatalf("BeginRecovery: %v", err)
	}
	if err := c.Advance(PhaseIntentRedo, 3); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	for i := range st.b {
		st.b[i] ^= 0xA5
	}
	reg := obs.NewRegistry()
	c2, err := OpenCursor(st, reg)
	if err != nil {
		t.Fatalf("OpenCursor: %v", err)
	}
	if !c2.FellBack() || c2.Resumed() {
		t.Fatalf("corrupt cursor: fellBack=%v resumed=%v, want fallback", c2.FellBack(), c2.Resumed())
	}
	if got := reg.Counter("recovery_cursor_fallbacks_total").Value(); got != 1 {
		t.Fatalf("recovery_cursor_fallbacks_total = %d, want 1", got)
	}
	if got := c2.Progress(); got.Phase != PhaseNone || got.InRecovery() {
		t.Fatalf("fallback cursor must start from scratch: %+v", got)
	}
	// And the fallback is durable: reopening sees the fresh cursor.
	c3, err := OpenCursor(st, nil)
	if err != nil {
		t.Fatalf("reopen after fallback: %v", err)
	}
	if c3.FellBack() || c3.Progress().Phase != PhaseNone {
		t.Fatalf("fallback was not persisted: fellBack=%v %+v", c3.FellBack(), c3.Progress())
	}
}

func TestCursorTooSmall(t *testing.T) {
	if _, err := CreateCursor(newMemStore(MinCursorBytes-1), nil); err == nil {
		t.Fatalf("CreateCursor on undersized store must fail")
	}
	if _, err := OpenCursor(newMemStore(MinCursorBytes-1), nil); err == nil {
		t.Fatalf("OpenCursor on undersized store must fail")
	}
}

func TestProgressLess(t *testing.T) {
	base := Progress{Incarnation: 2, Attempt: 2, Phase: PhaseIntentRedo, Record: 5, Seq: 10}
	lesser := []Progress{
		{Incarnation: 1, Attempt: 9, Phase: PhaseDone, Record: 99, Seq: 99},
		{Incarnation: 2, Attempt: 1, Phase: PhaseDone, Record: 99, Seq: 99},
		{Incarnation: 2, Attempt: 2, Phase: PhaseWALReplay, Record: 99, Seq: 99},
		{Incarnation: 2, Attempt: 2, Phase: PhaseIntentRedo, Record: 4, Seq: 99},
		{Incarnation: 2, Attempt: 2, Phase: PhaseIntentRedo, Record: 5, Seq: 9},
	}
	for _, p := range lesser {
		if !p.Less(base) {
			t.Errorf("%+v should be Less than %+v", p, base)
		}
		if base.Less(p) {
			t.Errorf("%+v should not be Less than %+v", base, p)
		}
	}
	if base.Less(base) {
		t.Errorf("Less must be irreflexive")
	}
}
