package recovery

import (
	"fmt"

	"viyojit/internal/sim"
	"viyojit/internal/trace"
)

// §8 of the paper notes that while shutdown flush time has "no respite"
// without dirty bounding, start-up CAN be optimised "by fetching pages
// from SSD to DRAM on demand while sequentially reading data in the
// background after the OS boots". WarmupComparison quantifies that
// optimisation for a given access pattern: how long until the
// application serves its first request, and what per-access penalty it
// pays until the background reload completes.

// WarmupReport compares the two restore strategies for one access trace.
type WarmupReport struct {
	DRAMBytes int64
	// SequentialReady is when the application can start under the naive
	// strategy: after the full sequential reload.
	SequentialReady sim.Duration
	// OnDemandFirstAccess is when the first request completes under
	// on-demand faulting (immediately, plus one page fetch).
	OnDemandFirstAccess sim.Duration
	// OnDemandPenalty is the total extra time requests spent waiting for
	// on-demand page fetches before the background reload caught up.
	OnDemandPenalty sim.Duration
	// PenalisedAccesses counts accesses that had to fetch their page.
	PenalisedAccesses int
	// TotalAccesses is the trace length considered.
	TotalAccesses int
	// AvailabilityGain is SequentialReady − OnDemandFirstAccess: how much
	// sooner the service answers its first request.
	AvailabilityGain sim.Duration
}

// WarmupComparison models both restore strategies for a volume's access
// trace. readBandwidth is the SSD's sequential read bandwidth;
// pageFetchLatency the cost of one random on-demand page read.
func WarmupComparison(v *trace.Volume, readBandwidth int64, pageFetchLatency sim.Duration) (WarmupReport, error) {
	if v == nil || len(v.Events) == 0 {
		return WarmupReport{}, fmt.Errorf("recovery: empty volume trace")
	}
	if readBandwidth <= 0 {
		return WarmupReport{}, fmt.Errorf("recovery: non-positive read bandwidth %d", readBandwidth)
	}
	if pageFetchLatency <= 0 {
		return WarmupReport{}, fmt.Errorf("recovery: non-positive fetch latency %v", pageFetchLatency)
	}
	pageSize := v.Spec.PageSize
	if pageSize == 0 {
		pageSize = 4096
	}

	rep := WarmupReport{
		DRAMBytes:     v.Spec.SizeBytes,
		TotalAccesses: len(v.Events),
	}
	rep.SequentialReady = sim.Duration(float64(v.Spec.SizeBytes) / float64(readBandwidth) * float64(sim.Second))
	rep.OnDemandFirstAccess = pageFetchLatency

	// The background reload sweeps pages in order at readBandwidth; an
	// access to a page the sweep has not reached yet pays the fetch
	// latency (the fetched page is then resident).
	perPage := sim.Duration(float64(pageSize) / float64(readBandwidth) * float64(sim.Second))
	resident := make(map[int64]bool)
	for _, e := range v.Events {
		// Pages the sweep has loaded by this event's (trace) time.
		sweepFront := int64(0)
		if perPage > 0 {
			sweepFront = int64(e.At) / int64(perPage)
		}
		if e.Page < sweepFront || resident[e.Page] {
			continue
		}
		rep.OnDemandPenalty += pageFetchLatency
		rep.PenalisedAccesses++
		resident[e.Page] = true
	}
	rep.AvailabilityGain = rep.SequentialReady - rep.OnDemandFirstAccess
	return rep, nil
}
